// Sandpile fractal: reproduce the paper's Figure 1 — the two stable
// configurations over 128x128 sandpiles (25,000 grains in the center
// cell; 4 grains in every cell) — and cross-check every engine
// variant against the sequential oracle on the way.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/engine"
	"repro/internal/img"
	"repro/internal/sandpile"
)

func run(name string, cfg sandpile.Config, png string) {
	const n = 128
	oracle := cfg.Build(n, n, nil)
	sandpile.StabilizeAsyncSeq(oracle)

	fmt.Printf("%s (%s, %dx%d):\n", name, cfg.Name, n, n)
	for _, variant := range engine.Names() {
		g := cfg.Build(n, n, nil)
		start := time.Now()
		res, err := engine.Run(variant, g, engine.Params{TileH: 16, TileW: 16, Workers: 4})
		if err != nil {
			log.Fatal(err)
		}
		status := "matches oracle"
		if !g.Equal(oracle) {
			status = "MISMATCH — Abelian property violated"
		}
		fmt.Printf("  %-18s %8d iterations  %10s  %s\n",
			variant, res.Iterations, time.Since(start).Round(time.Microsecond), status)
	}

	h := oracle.Histogram(4)
	fmt.Printf("  stable histogram: black(0)=%d green(1)=%d blue(2)=%d red(3)=%d\n",
		h[0], h[1], h[2], h[3])
	if err := img.SavePNG(png, img.Sandpile(oracle, 4)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  wrote %s\n\n", png)
}

func main() {
	run("Fig 1a", sandpile.Center(25000), "fig1a.png")
	run("Fig 1b", sandpile.Uniform(4), "fig1b.png")
}
