// Quickstart: stabilize a small Abelian sandpile with the parallel
// lazy engine and write the fractal as a PNG — the shortest path
// through the library's sandpile API.
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/img"
	"repro/internal/sandpile"
)

func main() {
	// Drop 10,000 grains on the center cell of a 128x128 grid.
	g := sandpile.Center(10000).Build(128, 128, nil)

	// Run the lazy tiled variant with defaults (32x32 tiles, one
	// worker per CPU). Every variant produces the exact same stable
	// configuration — Dhar's theorem — so pick by performance.
	res, err := engine.Run("lazy-sync", g, engine.Params{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stabilized in %d iterations (%d cell updates)\n", res.Iterations, res.Topples)

	h := g.Histogram(4)
	fmt.Printf("cells by grain count: 0:%d 1:%d 2:%d 3:%d\n", h[0], h[1], h[2], h[3])

	if err := img.SavePNG("quickstart.png", img.Sandpile(g, 4)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart.png (black=0, green=1, blue=2, red=3 grains)")
}
