// Carbon workflow: walk through both tabs of the third assignment the
// way a student would — baseline, binary searches, the boss heuristic,
// cloud placement, and finally the exhaustive optimum the paper lists
// as future work.
package main

import (
	"fmt"

	"repro/internal/wfsched"
)

func main() {
	base, ps := wfsched.Tab1Base()
	fmt.Printf("workflow: %s, %d tasks, %.1f GB data\n\n",
		base.Workflow.Name, base.Workflow.NumTasks(), base.Workflow.TotalBytes()/1e9)

	// ---- Tab 1, Q1: the high-performance baseline. ----
	t1 := wfsched.SimulateCluster(base, ps, wfsched.ClusterConfig{Nodes: 1, PState: 6})
	t64 := wfsched.SimulateCluster(base, ps, wfsched.ClusterConfig{Nodes: 64, PState: 6})
	fmt.Printf("Tab1 Q1: 64 nodes @ p6: %.1fs, %.1f gCO2e (speedup %.1f, efficiency %.0f%%)\n",
		t64.Makespan, t64.CO2, t1.Makespan/t64.Makespan, 100*t1.Makespan/t64.Makespan/64)

	// ---- Tab 1, Q2: two pure options under the 3-minute bound. ----
	bound := wfsched.Tab1BoundSec
	offCfg, offOut, _ := wfsched.MinNodesUnderBound(base, ps, 6, 64, bound)
	downCfg, downOut, _ := wfsched.MinPStateUnderBound(base, ps, 64, bound)
	fmt.Printf("Tab1 Q2: power off  -> %v: %.1fs, %.1f gCO2e\n", offCfg, offOut.Makespan, offOut.CO2)
	fmt.Printf("Tab1 Q2: downclock  -> %v: %.1fs, %.1f gCO2e\n", downCfg, downOut.Makespan, downOut.CO2)

	// ---- Tab 1, Q3: the boss's combined heuristic. ----
	bossCfg, bossOut, _ := wfsched.BossHeuristic(base, ps, 64, bound)
	fmt.Printf("Tab1 Q3: boss combo -> %v: %.1fs, %.1f gCO2e", bossCfg, bossOut.Makespan, bossOut.CO2)
	if bossOut.CO2 <= offOut.CO2 && bossOut.CO2 <= downOut.CO2 {
		fmt.Println("  (beats both pure options, as the paper reports)")
	} else {
		fmt.Println()
	}

	// ---- Tab 2: add the green cloud. ----
	sc := wfsched.Tab2Scenario()
	fmt.Printf("\nTab2 platform: %d local nodes @ p0 + %d green VMs, %.0f MB/s link\n",
		wfsched.Tab2LocalNodes, wfsched.Tab2CloudVMs, wfsched.Tab2LinkBandwidth/1e6)
	al := wfsched.Simulate(sc, wfsched.AllLocal)
	ac := wfsched.Simulate(sc, wfsched.AllCloud)
	fmt.Printf("Tab2 Q1: all local: %.1fs, %.1f gCO2e\n", al.Makespan, al.CO2)
	fmt.Printf("Tab2 Q1: all cloud: %.1fs, %.1f gCO2e (%.2f GB over the link)\n",
		ac.Makespan, ac.CO2, ac.BytesTransferred/1e9)

	// Q2: three options for the first two levels.
	depth := len(sc.Workflow.Levels)
	for _, opt := range []struct {
		name   string
		l0, l1 float64
	}{
		{"L0+L1 local", 0, 0}, {"L0 cloud, L1 local", 1, 0}, {"L0+L1 cloud", 1, 1},
	} {
		fr := make([]float64, depth)
		fr[0], fr[1] = opt.l0, opt.l1
		out := wfsched.Simulate(sc, wfsched.LevelFractions(sc.Workflow, fr))
		fmt.Printf("Tab2 Q2: %-20s %.1fs, %.1f gCO2e, %.2f GB moved\n",
			opt.name+":", out.Makespan, out.CO2, out.BytesTransferred/1e9)
	}

	// Q3-5: the treasure hunt, then the exhaustive optimum (the
	// paper's future work).
	gr, sims := wfsched.GreedyFractions(sc, wfsched.Tab2Choices(sc.Workflow))
	fmt.Printf("Tab2 hunt: greedy (%d sims): %v -> %.1f gCO2e\n", sims, gr.Fractions, gr.Outcome.CO2)
	best := wfsched.ExhaustiveFractions(sc, wfsched.Tab2Choices(sc.Workflow))
	fmt.Printf("Tab2 hunt: exhaustive optimum: %v -> %.1f gCO2e (%.1fs)\n",
		best.Fractions, best.Outcome.CO2, best.Outcome.Makespan)
	fmt.Printf("\nthe actual optimal CO2 emission is %.1f gCO2e — %.0f%% below all-local, %.0f%% below all-cloud\n",
		best.Outcome.CO2, 100*(1-best.Outcome.CO2/al.CO2), 100*(1-best.Outcome.CO2/ac.CO2))
}
