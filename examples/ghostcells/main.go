// Ghost cells: the distributed-memory sandpile of the fourth
// assignment. Simulated MPI ranks (goroutines + channels) stabilize a
// large pile with the Ghost Cell Pattern, sweeping the ghost-zone
// width K to expose the paper's trade-off: wider ghost zones mean
// fewer, larger messages at the price of redundant computation.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/ghost"
	"repro/internal/sandpile"
)

func main() {
	// A 30k-grain center pile on 256x256: large enough that its
	// avalanche crosses every rank boundary, small enough that the
	// K sweep below runs in seconds.
	const n = 256
	init := sandpile.Center(30000).Build(n, n, nil)

	// Sequential oracle for correctness.
	oracle := init.Clone()
	sandpile.StabilizeSyncSeq(oracle)

	fmt.Printf("distributed sandpile, %dx%d, 4 ranks (simulated MPI), 30,000-grain center pile\n\n", n, n)
	fmt.Printf("%3s  %10s  %9s  %11s  %15s  %9s  %s\n",
		"K", "exchanges", "messages", "bytes", "redundant cells", "time", "correct")
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		g := init.Clone()
		start := time.Now()
		rep, err := ghost.New(g, ghost.WithRanks(4), ghost.WithWidth(k)).Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d  %10d  %9d  %11d  %15d  %9s  %v\n",
			k, rep.Exchanges, rep.Messages, rep.BytesSent, rep.RedundantCells,
			time.Since(start).Round(time.Millisecond), g.Equal(oracle))
	}
	fmt.Println("\neach doubling of K halves the message count and grows the redundant ghost-band")
	fmt.Println("recomputation — the 'trade redundant computation for less-frequent communication'")
	fmt.Println("solution the assignment asks students to develop")

	// The same run under a 2-D block decomposition (the general Ghost
	// Cell Pattern): corners flow through the two-phase exchange.
	fmt.Printf("\n2-D block decomposition (2x2 ranks):\n")
	for _, k := range []int{1, 4, 16} {
		g := init.Clone()
		start := time.Now()
		rep, err := ghost.New(g, ghost.WithProcessGrid(2, 2), ghost.WithWidth(k)).Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("K=%2d: %d messages, %d redundant cells, %s, correct=%v\n",
			k, rep.Messages, rep.RedundantCells, time.Since(start).Round(time.Millisecond), g.Equal(oracle))
	}
}
