// Warming stripes: the full four-phase data-science workflow of the
// second assignment — (1) acquire a DWD-like dataset, (2) pre-process
// both file layouts into canonical records, (3) analyze with
// MapReduce, (4) validate — and render the Figure 6 image, including
// the incomplete-final-year pitfall the course teaches.
package main

import (
	"fmt"
	"log"

	"repro/internal/climate"
	"repro/internal/img"
	"repro/internal/mapreduce"
	"repro/internal/stripes"
)

func main() {
	// Phase 1 — acquisition. The real assignment downloads monthly
	// state averages from Deutscher Wetterdienst; we synthesize a
	// dataset with the same shape, including three missing months at
	// the end (what students saw downloading 2020 data in late 2020).
	data := climate.Generate(climate.Params{
		Seed: 42, StartYear: 1881, EndYear: 2020, MissingFinalMonths: 3,
	})
	fmt.Printf("phase 1: %d observations, %d states, %d-%d\n",
		len(data.Records), len(climate.States), 1881, 2020)

	// Phase 2+3 — pre-processing and MapReduce analysis, over both
	// file layouts to demonstrate format invariance.
	cfg := mapreduce.Config[string]{MapTasks: 8, ReduceTasks: 4, Parallelism: 4}
	byMonth, stats, err := stripes.ComputeSeries(stripes.MonthLayout, climate.MonthFiles(data), cfg)
	if err != nil {
		log.Fatal(err)
	}
	byStation, _, err := stripes.ComputeSeries(stripes.StationLayout, climate.StationFiles(data), cfg)
	if err != nil {
		log.Fatal(err)
	}
	identical := true
	for y := 1881; y <= 2020; y++ {
		if byMonth.Year(y) != byStation.Year(y) {
			identical = false
		}
	}
	fmt.Printf("phase 2+3: %d map inputs -> %d year groups; layouts identical: %v\n",
		stats.MapInputs, stats.ReduceGroups, identical)

	// Phase 4 — validation: 2020 is incomplete and biased warm.
	v := stripes.Validate(byMonth)
	fmt.Printf("phase 4: suspect years %v (expected %d observations/year)\n",
		v.SuspectYears, v.ExpectedCount)
	fmt.Printf("         2019 mean %.2f °C vs incomplete 2020 'mean' %.2f °C (winter months missing!)\n",
		byMonth.Year(2019), byMonth.Year(2020))
	clean := byMonth.Exclude(v.SuspectYears)

	// Render Figure 6 from the validated series.
	lo, hi := stripes.ColorScale(clean)
	fmt.Printf("render: colorbar %.2f..%.2f °C (whole-span mean ± 1.5)\n", lo, hi)
	if err := img.SavePNG("warming_stripes.png", stripes.Render(clean, 4, 120)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote warming_stripes.png")
}
