// MapReduce lab: drive the Hadoop-analog engine directly — word
// count (the canonical three-phase example), an inverted index, a
// combiner's effect on shuffle volume, and speculative execution
// rescuing an injected straggler. This is the "Hello World!" layer
// the warming-stripes assignment builds on.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/mapreduce"
)

var documents = []string{
	"the abelian sandpile reaches a unique stable configuration",
	"warming stripes visualize the trend in annual temperatures",
	"the workflow scheduler minimizes the carbon footprint",
	"sandpile topplings are abelian so any schedule is correct",
	"mapreduce forces a three phase formulation of the problem",
}

func main() {
	// --- Word count -------------------------------------------------
	wc := &mapreduce.Job[string, string, int, mapreduce.KV[string, int]]{
		Name: "wordcount",
		Map: func(line string, emit func(string, int)) error {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
			return nil
		},
		Reduce: func(w string, counts []int, emit func(mapreduce.KV[string, int])) error {
			total := 0
			for _, c := range counts {
				total += c
			}
			emit(mapreduce.KV[string, int]{Key: w, Value: total})
			return nil
		},
		Config: mapreduce.Config[string]{MapTasks: 3, ReduceTasks: 2},
	}
	counts, stats, err := wc.Run(documents)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("word count: %d words -> %d distinct (%d map tasks, %d reducers)\n",
		stats.MapOutputs, stats.ReduceGroups, stats.MapTasks, stats.ReduceTasks)
	top := ""
	best := 0
	for _, kv := range counts {
		if kv.Value > best {
			best, top = kv.Value, kv.Key
		}
	}
	fmt.Printf("most frequent: %q x%d\n\n", top, best)

	// --- Inverted index ----------------------------------------------
	type posting struct {
		Doc int
	}
	idx := &mapreduce.Job[int, string, posting, string]{
		Name: "inverted-index",
		Map: func(doc int, emit func(string, posting)) error {
			for _, w := range strings.Fields(documents[doc]) {
				emit(w, posting{doc})
			}
			return nil
		},
		Reduce: func(w string, ps []posting, emit func(string)) error {
			seen := map[int]bool{}
			var docs []int
			for _, p := range ps {
				if !seen[p.Doc] {
					seen[p.Doc] = true
					docs = append(docs, p.Doc)
				}
			}
			emit(fmt.Sprintf("%s -> %v", w, docs))
			return nil
		},
		Config: mapreduce.Config[string]{MapTasks: 5, ReduceTasks: 3},
	}
	docIDs := []int{0, 1, 2, 3, 4}
	postings, _, err := idx.Run(docIDs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inverted index (entries containing 'abelian' and 'the'):")
	for _, line := range postings {
		if strings.HasPrefix(line, "abelian ") || strings.HasPrefix(line, "the ") {
			fmt.Println("  " + line)
		}
	}

	// --- Combiner ----------------------------------------------------
	_, plain, _ := wc.Run(documents)
	withComb := *wc
	withComb.Combine = func(w string, counts []int) ([]int, error) {
		total := 0
		for _, c := range counts {
			total += c
		}
		return []int{total}, nil
	}
	_, combined, err := withComb.Run(documents)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncombiner: shuffle shrank from %d to %d pairs, result unchanged\n",
		plain.CombineOutputs, combined.CombineOutputs)

	// --- Speculative execution ---------------------------------------
	start := time.Now()
	_, spec, err := wc.RunSpeculative(documents, mapreduce.SpecConfig{
		SpeculationAfter: 10 * time.Millisecond,
		InjectDelay: func(task, attempt int) time.Duration {
			if task == 0 && attempt == 0 {
				return 3 * time.Second // the injected straggler
			}
			return 0
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speculation: straggler rescued in %s (%d backups launched, %d won)\n",
		time.Since(start).Round(time.Millisecond), spec.BackupsLaunched, spec.BackupsWon)
}
