#!/usr/bin/env bash
# Fleet smoke test: the end-to-end proof for the process-fleet
# transport (internal/net). Boots the chaos driver in -fleet mode on
# the ghost2d workload — a coordinator in the driver plus 4 worker
# subprocesses joined over unix sockets — SIGKILLs two workers
# mid-run, and asserts:
#
#   1. the run converges and its state bytes are identical to the
#      clean in-process run (the driver itself enforces this and
#      prints "state identical"),
#   2. the kills really landed (driver reports them delivered),
#   3. the reconnection is observable: the driver's SSE /events
#      stream carries the coordinator's "worker rejoined" event.
#
# Exits nonzero with a diagnostic on the first failed assertion.
set -u -o pipefail

cd "$(dirname "$0")/.."

SCRATCH="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$SCRATCH"
}
trap cleanup EXIT

fail() {
  echo "fleet-smoke: FAIL: $*" >&2
  exit 1
}

echo "fleet-smoke: building chaos"
go build -o "$SCRATCH/chaos" ./cmd/chaos || fail "build"

echo "fleet-smoke: 4-rank ghost2d fleet over unix sockets, 2 SIGKILLs"
"$SCRATCH/chaos" -fleet -workload ghost2d -transport unix -quick \
  -kills 2 -seed 3 -dir "$SCRATCH/fleet" -obs-listen 127.0.0.1:0 \
  >"$SCRATCH/stdout" 2>"$SCRATCH/stderr" &
DRIVER=$!
PIDS+=("$DRIVER")

# The driver announces its telemetry address on stderr; attach to the
# SSE event stream while the run is live so we see the rejoin happen.
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's#.*live telemetry on http://\([^ ]*\) .*#\1#p' "$SCRATCH/stderr")
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || fail "driver never announced its telemetry address (stderr: $(cat "$SCRATCH/stderr"))"
curl -sSN --max-time 120 "http://$ADDR/events" >"$SCRATCH/events" &
PIDS+=("$!")

wait "$DRIVER" || fail "driver exited nonzero (stdout: $(cat "$SCRATCH/stdout"); stderr: $(tail -c 800 "$SCRATCH/stderr"))"
sleep 0.2 # let the SSE tail flush

grep -q 'fleet-ghost2d: PASS' "$SCRATCH/stdout" \
  || fail "no PASS line: $(cat "$SCRATCH/stdout")"
grep -q 'state identical' "$SCRATCH/stdout" \
  || fail "byte-equality not asserted: $(cat "$SCRATCH/stdout")"
grep -q '2 kills delivered' "$SCRATCH/stdout" \
  || fail "expected 2 SIGKILLs delivered: $(cat "$SCRATCH/stdout")"
grep -q 'worker rejoined' "$SCRATCH/events" \
  || fail "SSE /events stream carried no reconnection event: $(head -c 600 "$SCRATCH/events")"

echo "fleet-smoke: $(grep -c 'worker rejoined' "$SCRATCH/events") rejoin events streamed"
echo "fleet-smoke: PASS"
