#!/usr/bin/env bash
# Job-service smoke test: boot a real peachyd, drive it the way a
# client would, and assert the tentpole guarantees end to end:
#
#   - one job of each kind (sandpile, mapreduce, wfsim) submits over
#     HTTP and runs to succeeded,
#   - the result document served at /v1/jobs/{id}/result is
#     byte-identical to the same spec run through `peachyd -oneshot`
#     (the CLI code path),
#   - the per-job SSE stream carries state, progress, and result
#     events,
#   - /metrics exports the jobs_* counters,
#   - a SIGKILLed server restarted on the same -state directory
#     re-admits its queued job and runs it to completion.
set -eu -o pipefail

cd "$(dirname "$0")/.."

SCRATCH=$(mktemp -d "${TMPDIR:-/tmp}/peachyd-smoke.XXXXXX")
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$SCRATCH"
}
trap cleanup EXIT
fail() { echo "peachyd-smoke: FAIL: $*" >&2; exit 1; }

echo "peachyd-smoke: building peachyd"
go build -o "$SCRATCH/peachyd" ./cmd/peachyd || fail "build"

# Launch a server and block until it announces its bound API address
# on stdout (port 0 so parallel CI jobs never collide). Sets ADDR,
# OBS_ADDR (from the telemetry banner on stderr) and SERVER.
start_server() { # args: log-prefix, then extra peachyd flags
  local prefix="$1"
  shift
  "$SCRATCH/peachyd" -listen 127.0.0.1:0 -obs-listen 127.0.0.1:0 "$@" \
    >"$SCRATCH/$prefix.stdout" 2>"$SCRATCH/$prefix.stderr" &
  SERVER=$!
  PIDS+=("$SERVER")
  ADDR="" OBS_ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^peachyd: listening on \(.*\)$/\1/p' "$SCRATCH/$prefix.stdout")
    OBS_ADDR=$(sed -n 's#.*live telemetry on http://\([^ ]*\) .*#\1#p' "$SCRATCH/$prefix.stderr")
    [ -n "$ADDR" ] && [ -n "$OBS_ADDR" ] && break
    sleep 0.1
  done
  [ -n "$ADDR" ] || fail "server never announced its API address ($(cat "$SCRATCH/$prefix.stderr"))"
}

submit() { # args: spec JSON; prints the job id
  local out code
  out=$(curl -sS --max-time 5 -w '\n%{http_code}' \
    -d "$1" "http://$ADDR/v1/jobs") || fail "submit failed: $1"
  code=${out##*$'\n'}
  [ "$code" = 202 ] || fail "submit returned $code: $out"
  printf '%s' "$out" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -1
}

wait_state() { # args: job id, want state
  local state=""
  for _ in $(seq 1 300); do
    state=$(curl -fsS --max-time 5 "http://$ADDR/v1/jobs/$1" \
      | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -1)
    [ "$state" = "$2" ] && return 0
    case "$state" in failed|cancelled) break ;; esac
    sleep 0.1
  done
  fail "job $1 is '$state', wanted '$2' ($(curl -fsS "http://$ADDR/v1/jobs/$1"))"
}

# ---- Phase 1: one job of each kind over HTTP ----

echo "peachyd-smoke: phase 1: one job of each kind"
start_server p1 -state "$SCRATCH/state1"

# seq-async is fully deterministic, which the byte-identity diff
# in phase 2 depends on; the other kinds are deterministic by design.
SANDPILE_SPEC='{"kind":"sandpile","tenant":"smoke","params":{"variant":"seq-async","size":64,"grains":5000}}'
SP_ID=$(submit "$SANDPILE_SPEC")
MR_ID=$(submit '{"kind":"mapreduce","tenant":"smoke","params":{"docs":100}}')
WF_ID=$(submit '{"kind":"wfsim","tenant":"smoke","priority":"high","params":{"mode":"tab2"}}')
[ -n "$SP_ID" ] && [ -n "$MR_ID" ] && [ -n "$WF_ID" ] || fail "missing job ids"

wait_state "$SP_ID" succeeded
wait_state "$MR_ID" succeeded
wait_state "$WF_ID" succeeded
echo "peachyd-smoke: phase 1 OK ($SP_ID $MR_ID $WF_ID)"

# ---- Phase 2: HTTP result is byte-identical to the CLI one-shot ----

echo "peachyd-smoke: phase 2: byte-identical HTTP vs CLI result"
curl -fsS --max-time 5 "http://$ADDR/v1/jobs/$SP_ID/result" >"$SCRATCH/http.json" \
  || fail "result endpoint"
echo "$SANDPILE_SPEC" >"$SCRATCH/spec.json"
"$SCRATCH/peachyd" -oneshot "$SCRATCH/spec.json" >"$SCRATCH/cli.raw" || fail "oneshot run"
# -oneshot prints the result plus a trailing newline; strip it for cmp.
printf '%s' "$(cat "$SCRATCH/cli.raw")" >"$SCRATCH/cli.json"
cmp "$SCRATCH/http.json" "$SCRATCH/cli.json" \
  || fail "HTTP result differs from CLI one-shot: $(cat "$SCRATCH/http.json") vs $(cat "$SCRATCH/cli.json")"
echo "peachyd-smoke: phase 2 OK"

# ---- Phase 3: SSE events and /metrics counters ----

echo "peachyd-smoke: phase 3: SSE stream and job metrics"
curl -sSN --max-time 5 "http://$ADDR/v1/jobs/$SP_ID/events" >"$SCRATCH/events" || true
grep -q '^event: state'    "$SCRATCH/events" || fail "SSE stream has no state event"
grep -q '^event: progress' "$SCRATCH/events" || fail "SSE stream has no progress event"
grep -q '^event: result'   "$SCRATCH/events" || fail "SSE stream has no result event"

METRICS=$(curl -fsS --max-time 5 "http://$OBS_ADDR/metrics") || fail "/metrics not reachable"
echo "$METRICS" | grep -q '^jobs_submitted 3'  || fail "/metrics jobs_submitted != 3: $(echo "$METRICS" | grep ^jobs_)"
echo "$METRICS" | grep -q '^jobs_completed 3'  || fail "/metrics jobs_completed != 3: $(echo "$METRICS" | grep ^jobs_)"
echo "peachyd-smoke: phase 3 OK"

kill -TERM "$SERVER" 2>/dev/null || true
wait "$SERVER" 2>/dev/null || true

# ---- Phase 4: SIGKILL with a queued job; restart resumes it ----

echo "peachyd-smoke: phase 4: kill -9 and restart on the same state dir"
# -executors -1 admits and journals but never runs, so the job is
# deterministically still queued when the KILL lands.
start_server p4a -state "$SCRATCH/state4" -executors -1
Q_ID=$(submit '{"kind":"sandpile","tenant":"smoke","params":{"size":64,"grains":2000}}')
wait_state "$Q_ID" queued
kill -9 "$SERVER"
wait "$SERVER" 2>/dev/null || true

start_server p4b -state "$SCRATCH/state4"
wait_state "$Q_ID" succeeded
echo "peachyd-smoke: phase 4 OK ($Q_ID survived the kill)"

kill -TERM "$SERVER" 2>/dev/null || true
wait "$SERVER" 2>/dev/null || true
echo "peachyd-smoke: PASS"
