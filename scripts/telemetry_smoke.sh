#!/usr/bin/env bash
# Telemetry smoke test: boots a real sandpile run with -obs-listen,
# scrapes the live endpoints the way Prometheus / an operator would,
# and asserts on the payloads. Two phases:
#
#   1. A long relaxation run: /metrics must carry engine counters,
#      runtime/* series, and histogram _bucket lines; /healthz must
#      answer 200 "ok"; /progress must report the engine stage. The
#      worker is then killed cleanly (TERM, not KILL).
#   2. A -ranks run with fault injection and checkpointing: /events
#      must stream at least one structured ckpt or fault event while
#      the run is live.
#
# Exits nonzero with a diagnostic on the first failed assertion.
set -u -o pipefail

cd "$(dirname "$0")/.."

SCRATCH="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$SCRATCH"
}
trap cleanup EXIT

fail() {
  echo "telemetry-smoke: FAIL: $*" >&2
  exit 1
}

echo "telemetry-smoke: building sandpile"
go build -o "$SCRATCH/sandpile" ./cmd/sandpile || fail "build"

# Launch a worker with -obs-listen and block until it announces its
# bound address on stderr (127.0.0.1:0 makes the kernel pick a free
# port, so parallel CI jobs never collide). Sets ADDR and WORKER.
start_worker() { # args: stderr-log, then the sandpile args
  local log="$1"
  shift
  "$SCRATCH/sandpile" -obs-listen 127.0.0.1:0 "$@" >/dev/null 2>"$log" &
  WORKER=$!
  PIDS+=("$WORKER")
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#.*live telemetry on http://\([^ ]*\) .*#\1#p' "$log")
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  [ -n "$ADDR" ] || fail "worker never announced its telemetry address (log: $(cat "$log"))"
}

# ---- Phase 1: scrape /metrics, /healthz, /progress on a live run ----

echo "telemetry-smoke: phase 1: scraping a live relaxation run"
# No -max-iters: run to stability (~36k sweeps, several seconds) so the
# endpoints stay up while we scrape them.
start_worker "$SCRATCH/p1.stderr" -size 256 -grains 2000000
sleep 0.5 # let the run get past its first iterations

METRICS=$(curl -fsS --max-time 5 "http://$ADDR/metrics") || fail "/metrics not reachable"
echo "$METRICS" | grep -q '^engine_'            || fail "/metrics has no engine_* series"
echo "$METRICS" | grep -q '^runtime_goroutines' || fail "/metrics has no runtime_* series"
echo "$METRICS" | grep -q '_bucket{le='         || fail "/metrics has no histogram _bucket lines"

HEALTH_CODE=$(curl -sS --max-time 5 -o "$SCRATCH/healthz" -w '%{http_code}' "http://$ADDR/healthz") \
  || fail "/healthz not reachable"
[ "$HEALTH_CODE" = 200 ]                 || fail "/healthz returned $HEALTH_CODE"
grep -q '"status":"ok"' "$SCRATCH/healthz" || fail "/healthz body is not ok: $(cat "$SCRATCH/healthz")"

curl -fsS --max-time 5 "http://$ADDR/progress" | grep -q '"engine"' \
  || fail "/progress has no engine stage"

kill -TERM "$WORKER" 2>/dev/null || true
wait "$WORKER" 2>/dev/null || true
echo "telemetry-smoke: phase 1 OK (addr $ADDR)"

# ---- Phase 2: /events streams ckpt + fault events during a faulty run ----

echo "telemetry-smoke: phase 2: streaming /events from a -faults -checkpoint run"
start_worker "$SCRATCH/p2.stderr" \
  -ranks 4 -size 128 -grains 400000 \
  -faults seed=7,crash=1@3 -checkpoint "$SCRATCH/ckpt" -checkpoint-every 10

# curl -N keeps the SSE stream open; cap it so the script always ends.
curl -sSN --max-time 10 "http://$ADDR/events" >"$SCRATCH/events" || true
grep -Eq '"source":"(ckpt|fault)"' "$SCRATCH/events" \
  || fail "/events streamed no ckpt/fault event: $(head -c 400 "$SCRATCH/events")"

echo "telemetry-smoke: phase 2 OK ($(grep -c '^data:' "$SCRATCH/events") events streamed)"
echo "telemetry-smoke: PASS"
