#!/usr/bin/env bash
# Job-service soak: dozens of concurrent synthetic tenants hammer one
# peachyd — mixed kinds, mixed priorities, more submissions than the
# per-tenant quota allows at once — and every job must end succeeded.
# 429 backpressure is expected under this load and handled the way a
# well-behaved client would: honor Retry-After and resubmit. What the
# soak asserts:
#
#   - no submission is lost: every job eventually admits and succeeds,
#   - admission control actually engages (the run reports how many
#     429s were absorbed),
#   - the server stays healthy throughout (/healthz) and its jobs_*
#     counters reconcile with what the tenants saw.
#
# TENANTS and JOBS_PER_TENANT scale the load; the defaults are
# CI-sized (~1 min). PEACHYD_SOAK_TENANTS=64 for a heavier run.
set -eu -o pipefail

cd "$(dirname "$0")/.."

TENANTS="${PEACHYD_SOAK_TENANTS:-24}"
JOBS_PER_TENANT="${PEACHYD_SOAK_JOBS:-3}"

SCRATCH=$(mktemp -d "${TMPDIR:-/tmp}/peachyd-soak.XXXXXX")
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$SCRATCH"
}
trap cleanup EXIT
fail() { echo "peachyd-soak: FAIL: $*" >&2; exit 1; }

echo "peachyd-soak: building peachyd"
go build -o "$SCRATCH/peachyd" ./cmd/peachyd || fail "build"

# Tight quota so the soak genuinely exercises 429 backpressure.
"$SCRATCH/peachyd" -listen 127.0.0.1:0 -obs-listen 127.0.0.1:0 \
  -state "$SCRATCH/state" -tenant-quota 2 -queue-depth 64 \
  >"$SCRATCH/server.stdout" 2>"$SCRATCH/server.stderr" &
SERVER=$!
PIDS+=("$SERVER")
ADDR="" OBS_ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^peachyd: listening on \(.*\)$/\1/p' "$SCRATCH/server.stdout")
  OBS_ADDR=$(sed -n 's#.*live telemetry on http://\([^ ]*\) .*#\1#p' "$SCRATCH/server.stderr")
  [ -n "$ADDR" ] && [ -n "$OBS_ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || fail "server never announced its address"
echo "peachyd-soak: $TENANTS tenants x $JOBS_PER_TENANT jobs against $ADDR (quota 2/tenant)"

# One synthetic tenant: submit its jobs (retrying on 429), then poll
# each to succeeded. Writes "done <retries>" to its result file, or
# "fail <reason>".
tenant() { # args: tenant index
  local idx="$1" who="tenant-$1" retries=0 out code id state
  local ids=()
  for j in $(seq 1 "$JOBS_PER_TENANT"); do
    # Mix the kinds and priorities per slot.
    local spec
    case $(( (idx * 7 + j) % 3 )) in
      0) spec='{"kind":"sandpile","tenant":"'"$who"'","params":{"size":64,"grains":4000}}' ;;
      1) spec='{"kind":"mapreduce","tenant":"'"$who"'","params":{"docs":60}}' ;;
      *) spec='{"kind":"wfsim","tenant":"'"$who"'","priority":"low","params":{"mode":"tab2"}}' ;;
    esac
    id=""
    for _ in $(seq 1 600); do
      out=$(curl -sS --max-time 10 -w '\n%{http_code}' -d "$spec" "http://$ADDR/v1/jobs") || { echo "fail submit curl" ; return; }
      code=${out##*$'\n'}
      if [ "$code" = 202 ]; then
        id=$(printf '%s' "$out" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -1)
        break
      elif [ "$code" = 429 ]; then
        retries=$((retries + 1))
        sleep 0.2
      else
        echo "fail submit code $code: $out"
        return
      fi
    done
    [ -n "$id" ] || { echo "fail submit never admitted"; return; }
    ids+=("$id")
  done
  for id in "${ids[@]}"; do
    state=""
    for _ in $(seq 1 600); do
      state=$(curl -fsS --max-time 10 "http://$ADDR/v1/jobs/$id" \
        | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -1)
      [ "$state" = succeeded ] && break
      case "$state" in failed|cancelled) break ;; esac
      sleep 0.2
    done
    [ "$state" = succeeded ] || { echo "fail job $id state $state"; return; }
  done
  echo "done $retries"
}

TPIDS=()
for t in $(seq 1 "$TENANTS"); do
  ( tenant "$t" >"$SCRATCH/t$t.result" 2>&1 ) &
  TPIDS+=("$!")
  PIDS+=("$!")
done

ok=0 total_retries=0
for pid in "${TPIDS[@]}"; do
  wait "$pid" 2>/dev/null || true
done
for t in $(seq 1 "$TENANTS"); do
  read -r verdict detail <"$SCRATCH/t$t.result" || fail "tenant $t left no result"
  if [ "$verdict" = done ]; then
    ok=$((ok + 1))
    total_retries=$((total_retries + detail))
  else
    fail "tenant $t: $(cat "$SCRATCH/t$t.result")"
  fi
done

curl -fsS --max-time 5 "http://$OBS_ADDR/healthz" | grep -q '"status":"ok"' \
  || fail "server unhealthy after soak"
METRICS=$(curl -fsS --max-time 5 "http://$OBS_ADDR/metrics") || fail "/metrics gone"
want=$((TENANTS * JOBS_PER_TENANT))
completed=$(echo "$METRICS" | sed -n 's/^jobs_completed \([0-9]*\).*/\1/p')
[ "${completed:-0}" -ge "$want" ] || fail "jobs_completed $completed < $want"

echo "peachyd-soak: $ok/$TENANTS tenants completed $want jobs; $total_retries submissions backpressured (429) and retried"
kill -TERM "$SERVER" 2>/dev/null || true
wait "$SERVER" 2>/dev/null || true
echo "peachyd-soak: PASS"
