#!/usr/bin/env bash
# External-shuffle smoke test: run the larger-than-budget word count
# under a hard GOMEMLIMIT so the out-of-core path is exercised the way
# a memory-squeezed deployment would hit it. The test itself asserts
# the invariants that matter:
#
#   - the shuffle spills (SpilledRuns/SpilledBytes > 0) and the
#     per-partition merges go multi-pass (MergePasses above the
#     in-memory run's), and
#   - the external output is byte-identical to the unconstrained
#     in-memory reference run.
#
# EXT_SMOKE_LINES scales the generated corpus (16 words/line); the
# default below shuffles far more than the budgeted fraction while
# staying CI-sized. GOMEMLIMIT keeps the GC honest about the bound —
# if the external path ever silently buffered everything, the capped
# heap plus the test's spill assertions would catch it from two sides.
set -eu -o pipefail

cd "$(dirname "$0")/.."

LINES="${EXT_SMOKE_LINES:-60000}"
LIMIT="${EXT_SMOKE_GOMEMLIMIT:-128MiB}"

echo "external-smoke: ${LINES} lines under GOMEMLIMIT=${LIMIT}"
GOMEMLIMIT="$LIMIT" EXT_SMOKE_LINES="$LINES" \
  go test ./internal/mapreduce/ -run 'TestExternalShuffleLargerThanBudget' -v -count=1 \
  | grep -v '^=== ' || exit 1
echo "external-smoke: PASS"
