// Package repro's root benchmark harness regenerates every figure and
// table of "Peachy Parallel Assignments (EduPar 2022)": one benchmark
// per paper artifact, each driving the corresponding experiment from
// internal/core (the E1-E21 index of DESIGN.md) and reporting the
// headline quantities as custom benchmark metrics.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Print the full result tables while benchmarking:
//
//	go test -bench=. -benchv
package repro

import (
	"flag"
	"testing"

	"repro/internal/core"
)

var benchVerbose = flag.Bool("benchv", false, "print experiment tables during benchmarks")

// runExperiment executes a registered experiment once per benchmark
// iteration. Quick mode keeps `go test -bench=.` runs to seconds per
// artifact; the peachy CLI runs the full-size versions.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := core.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	var last *core.Result
	for i := 0; i < b.N; i++ {
		res, err := e.Run(core.Config{Quick: true})
		if err != nil {
			b.Fatalf("%s (%s): %v", e.ID, e.Artifact, err)
		}
		last = res
	}
	if *benchVerbose && last != nil {
		b.Logf("%s (%s): %s\n%s", e.ID, e.Artifact, e.Title, last.Render())
	}
}

// --- Abelian sandpile (Section II) -----------------------------------

// BenchmarkFig1aCenter25000 regenerates Fig 1a: the stable
// configuration grown from a single center pile (E1).
func BenchmarkFig1aCenter25000(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkFig1bAll4 regenerates Fig 1b: the stable configuration from
// four grains in every cell (E2).
func BenchmarkFig1bAll4(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkKernelSyncVsAsync regenerates the Fig 2 comparison: both
// kernels reach the identical fixed point; the table reports their
// iteration counts (E3).
func BenchmarkKernelSyncVsAsync(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkSchedPolicy regenerates the first sub-assignment's study:
// OpenMP-style loop-schedule comparison on a sparse grid (E4).
func BenchmarkSchedPolicy(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkFig3TileTrace regenerates Fig 3: the traced 500th iteration
// of the lazy variant under 32x32 vs 64x64 tiles (E5).
func BenchmarkFig3TileTrace(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkTileSizeLazyVsEager regenerates the second sub-assignment's
// study: tile-size sweep and lazy-vs-eager comparison (E6).
func BenchmarkTileSizeLazyVsEager(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkInnerKernel regenerates the third sub-assignment's study:
// the specialized branch-free inner-tile kernel vs the guarded one
// (E7).
func BenchmarkInnerKernel(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkFig4HybridOwnership regenerates Fig 4: the CPU+device tile
// ownership map with stable tiles black (E8).
func BenchmarkFig4HybridOwnership(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkGhostWidth regenerates the fourth sub-assignment's study:
// the Ghost Cell Pattern's redundancy/communication trade-off (E9).
func BenchmarkGhostWidth(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkFig5SurveyTable reprints the archived Fig 5 survey data
// (non-computational artifact) (E10).
func BenchmarkFig5SurveyTable(b *testing.B) { runExperiment(b, "E10") }

// --- Warming stripes (Section III) -----------------------------------

// BenchmarkFig6WarmingStripes regenerates Fig 6: the warming-stripes
// image and its annual-mean series via MapReduce (E11).
func BenchmarkFig6WarmingStripes(b *testing.B) { runExperiment(b, "E11") }

// BenchmarkValidationSweep regenerates the data-validation study: how
// missing final months bias the annual mean (E12).
func BenchmarkValidationSweep(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkFormatInvariance regenerates the software-engineering
// study: both input layouts produce the identical series (E13).
func BenchmarkFormatInvariance(b *testing.B) { runExperiment(b, "E13") }

// --- Carbon-footprint workflows (Section IV) --------------------------

// BenchmarkTab1Q1Baseline regenerates Tab 1 Question 1: the 64-node
// top-p-state baseline with speedup and efficiency (E14).
func BenchmarkTab1Q1Baseline(b *testing.B) { runExperiment(b, "E14") }

// BenchmarkTab1Q2BinarySearch regenerates Tab 1 Question 2: the
// minimum node count and minimum p-state under the 3-minute bound
// (E15).
func BenchmarkTab1Q2BinarySearch(b *testing.B) { runExperiment(b, "E15") }

// BenchmarkTab1Q3BossHeuristic regenerates Tab 1 Question 3: the
// combined power-management heuristic beating both pure options (E16).
func BenchmarkTab1Q3BossHeuristic(b *testing.B) { runExperiment(b, "E16") }

// BenchmarkTab2Q1Baselines regenerates Tab 2 Question 1: all-local vs
// all-cloud (E17).
func BenchmarkTab2Q1Baselines(b *testing.B) { runExperiment(b, "E17") }

// BenchmarkTab2Q2FirstLevels regenerates Tab 2 Question 2: the three
// placements of the first two workflow levels (E18).
func BenchmarkTab2Q2FirstLevels(b *testing.B) { runExperiment(b, "E18") }

// BenchmarkTab2TreasureHunt regenerates Tab 2 Questions 3-5: fraction
// sweeps and the greedy hill-climb (E19).
func BenchmarkTab2TreasureHunt(b *testing.B) { runExperiment(b, "E19") }

// BenchmarkTab2Exhaustive regenerates the paper's stated future work:
// the exhaustive search for the actual optimal CO2 emission (E20).
func BenchmarkTab2Exhaustive(b *testing.B) { runExperiment(b, "E20") }

// BenchmarkTableISurvey reprints the archived Table I student-feedback
// data (non-computational artifact) (E21).
func BenchmarkTableISurvey(b *testing.B) { runExperiment(b, "E21") }

// --- Extensions beyond the paper's artifacts ---------------------------

// BenchmarkIdentityFractal regenerates the sandpile-group identity
// element, the classic extension of assignment 1 (E22).
func BenchmarkIdentityFractal(b *testing.B) { runExperiment(b, "E22") }

// BenchmarkHeterogeneousAblation regenerates the ablation of Tab 1's
// homogeneity assumption: split p-state groups vs uniform (E23).
func BenchmarkHeterogeneousAblation(b *testing.B) { runExperiment(b, "E23") }
