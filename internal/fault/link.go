package fault

import (
	"time"
)

// packet carries one payload plus the delivery metadata the receiver
// needs to dedupe duplicates and honor injected delays.
type packet[T any] struct {
	seq       uint64
	payload   T
	notBefore time.Time // zero = deliver immediately
}

// Link is one direction of a point-to-point channel between two
// simulated ranks, with the injector sitting on the wire. Sends are
// sequence-numbered; the sender retains its last payload in a
// retransmit buffer, so a receiver that times out waiting for a
// dropped message pulls the retained copy instead (counted as a
// retransmit). Duplicated deliveries are discarded by sequence
// number; delayed deliveries are held until their release time.
//
// A Link with a nil injector is a plain reliable channel. Each
// endpoint of a Link must be used by one goroutine at a time (the
// ghost ranks' usage pattern); the retransmit buffer is protected for
// the cross-goroutine receiver access.
type Link[T any] struct {
	in       *Injector
	from, to int

	ch chan packet[T]

	mu       chanMutex
	lastSeq  uint64 // sender side: last sequence sent
	last     T      // sender side: retained payload for retransmit
	haveLast bool

	recvSeq uint64 // receiver side: last sequence accepted
}

// chanMutex is a 1-slot semaphore used as a mutex so Link stays free
// of sync imports in its hot path signature. Lock with acquire,
// unlock with release.
type chanMutex chan struct{}

func (m chanMutex) acquire() { m <- struct{}{} }
func (m chanMutex) release() { <-m }

// NewLink wires one directed link from -> to through the injector
// (nil for a reliable link). cap is the channel capacity; ghost uses
// 1 plus headroom for duplicates.
func NewLink[T any](in *Injector, from, to, cap int) *Link[T] {
	if cap < 1 {
		cap = 1
	}
	return &Link[T]{
		in:   in,
		from: from,
		to:   to,
		// Every in-flight message may be duplicated, and an undrained
		// duplicate from the previous round may still sit in the
		// channel when the next round's send lands, so size the buffer
		// for the worst case — Send must never block in the barrier-
		// synchronized usage pattern.
		ch: make(chan packet[T], 2*cap+2),
		mu: make(chanMutex, 1),
	}
}

// Send transmits payload, applying the injector's fate: dropped
// messages are retained (retransmit buffer) but not delivered,
// duplicated messages are enqueued twice, delayed messages carry a
// release time the receiver honors. Send never blocks in the ghost
// usage pattern (round barrier bounds in-flight messages below cap).
// abort aborts a full-channel send (returns false).
func (l *Link[T]) Send(payload T, abort <-chan struct{}) bool {
	l.mu.acquire()
	l.lastSeq++
	seq := l.lastSeq
	l.last = payload
	l.haveLast = true
	l.mu.release()

	fate := l.in.MessageFate(l.from, l.to, seq)
	if fate == Drop {
		return true // retained for retransmit; never hits the wire
	}
	p := packet[T]{seq: seq, payload: payload}
	if fate == Delay {
		p.notBefore = time.Now().Add(l.in.MessageDelay())
	}
	n := 1
	if fate == Dup {
		n = 2
	}
	for i := 0; i < n; i++ {
		select {
		case l.ch <- p:
		case <-abort:
			return false
		}
	}
	return true
}

// Recv returns the next fresh payload. It discards duplicates, sleeps
// out injected delays, and — when timeout elapses with nothing fresh
// (the dropped-message case) — recovers the sender's retained copy
// from the retransmit buffer. A zero timeout waits forever (the
// fault-free configuration). Returns ok=false when abort closes or a
// timed-out recovery finds no retained payload (peer death).
func (l *Link[T]) Recv(timeout time.Duration, abort <-chan struct{}) (T, bool) {
	var zero T
	for {
		var timer <-chan time.Time
		var stop func() bool
		if timeout > 0 {
			t := time.NewTimer(timeout)
			timer = t.C
			stop = t.Stop
		}
		got, ok, timedOut := l.recvOne(timer, abort)
		if stop != nil {
			stop()
		}
		if timedOut {
			break
		}
		if !ok {
			return zero, false
		}
		if got != nil {
			return *got, true
		}
		// duplicate: loop and wait again with a fresh timer
	}
	// Nothing arrived within timeout: the message was dropped (pull
	// the retransmit buffer) or the peer is dead (give up and let the
	// heartbeat layer handle it).
	l.mu.acquire()
	have := l.haveLast && l.lastSeq > l.recvSeq
	var payload T
	var seq uint64
	if have {
		payload, seq = l.last, l.lastSeq
		l.recvSeq = seq
	}
	l.mu.release()
	if !have {
		return zero, false
	}
	l.in.NoteRetransmit(l.from, l.to, seq)
	return payload, true
}

// recvOne waits for one delivery: (payload, true, false) on a fresh
// message, (nil, true, false) on a discarded duplicate, (nil, false,
// false) on abort, (nil, false, true) on timeout.
func (l *Link[T]) recvOne(timer <-chan time.Time, abort <-chan struct{}) (*T, bool, bool) {
	select {
	case p := <-l.ch:
		if !p.notBefore.IsZero() {
			if d := time.Until(p.notBefore); d > 0 {
				time.Sleep(d)
			}
		}
		l.mu.acquire()
		stale := p.seq <= l.recvSeq
		if !stale {
			l.recvSeq = p.seq
		}
		l.mu.release()
		if stale {
			return nil, true, false // duplicate: already accepted
		}
		return &p.payload, true, false
	case <-timer:
		return nil, false, true
	case <-abort:
		return nil, false, false
	}
}
