// Package fault is the deterministic, seed-driven fault-injection
// layer every substrate of the reproduction can be run under: rank
// crashes at a chosen round (ghost), halo-message drop/delay/
// duplication (ghost links), simulated-device stalls (hetero),
// workflow-host failures realized as DES events (platform/wfsched),
// and map/reduce task failures (mapreduce).
//
// The design contract mirrors internal/obs: a nil *Injector is a
// valid no-faults sink, so substrates query it unconditionally; and
// every decision is a pure function of (seed, fault identity), never
// of goroutine interleaving — two runs with the same Plan produce
// byte-identical fault schedules (Injector.Schedule), which the tests
// enforce. One-shot events (a rank crash, a device stall) fire
// exactly once per run even when recovery replays the surrounding
// work.
package fault

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrInjected marks an error introduced by the injector rather than
// the computation; retry layers treat it like any transient failure.
var ErrInjected = fmt.Errorf("fault: injected failure")

// Crash schedules one simulated rank death: the rank goroutine goes
// silent at the start of the given halo round (1-based).
type Crash struct {
	Rank, Round int
}

// RetryPolicy is Parsl-style bounded exponential backoff for task
// re-execution, in simulated seconds (the DES substrates' unit).
type RetryPolicy struct {
	// BaseSec is the first retry delay; 0 means 1 s.
	BaseSec float64
	// Factor multiplies the delay per additional attempt; 0 means 2.
	Factor float64
	// MaxSec caps the delay; 0 means 60 s.
	MaxSec float64
	// MaxAttempts bounds attempts per task; 0 means unlimited.
	MaxAttempts int
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.BaseSec <= 0 {
		r.BaseSec = 1
	}
	if r.Factor <= 1 {
		r.Factor = 2
	}
	if r.MaxSec <= 0 {
		r.MaxSec = 60
	}
	return r
}

// Backoff returns the delay before re-running a task whose attempt-th
// execution just failed: Base·Factor^(attempt-1), capped at Max.
func (r RetryPolicy) Backoff(attempt int) float64 {
	r = r.withDefaults()
	d := r.BaseSec
	for i := 1; i < attempt; i++ {
		d *= r.Factor
		if d >= r.MaxSec {
			return r.MaxSec
		}
	}
	if d > r.MaxSec {
		return r.MaxSec
	}
	return d
}

// Plan declares what to inject. The zero value injects nothing; Seed
// plus the rates fully determine the fault schedule.
type Plan struct {
	// Seed drives every probabilistic decision.
	Seed int64

	// Crashes lists explicit rank deaths. CrashProb additionally
	// crashes each rank with that probability, at a round drawn
	// uniformly from [1, CrashWindow] (default window 4).
	Crashes     []Crash
	CrashProb   float64
	CrashWindow int

	// Drop, Dup, and DelayProb are per-halo-message rates; Delay is
	// the added latency when DelayProb fires (default 1ms).
	Drop, Dup, DelayProb float64
	Delay                time.Duration

	// HostFail is the per-task-attempt probability that the host
	// executing it fails mid-task; the failure point is a deterministic
	// fraction of the attempt's duration. RepairSec is how long the
	// failed slot stays down (default 5 simulated seconds).
	HostFail  float64
	RepairSec float64
	// Retry is the task re-execution backoff policy.
	Retry RetryPolicy

	// StallIter stalls the simulated accelerator at this iteration
	// (1-based; 0 = never): its in-flight tiles are reclaimed by the
	// CPU pool and the device stays offline.
	StallIter int

	// TaskFail is the per-attempt failure probability for map/reduce
	// tasks (absorbed by the mapreduce retry budget).
	TaskFail float64
}

func (p *Plan) withDefaults() Plan {
	q := *p
	if q.CrashWindow <= 0 {
		q.CrashWindow = 4
	}
	if q.Delay <= 0 {
		q.Delay = time.Millisecond
	}
	if q.RepairSec <= 0 {
		q.RepairSec = 5
	}
	return q
}

// Parse builds a Plan from the comma-separated key=value spec the
// -faults flag of every cmd accepts, e.g.
//
//	seed=7,crash=1@2+3@4,drop=0.05,delay=2ms,hostfail=0.1,stall=50
//
// Keys: seed, crash (rank@round, +-separated), crashp, crashwindow,
// drop, dup, delayp, delay, hostfail, repair, retrybase, retryfactor,
// retrymax, attempts, stall, taskfail.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("fault: empty spec")
	}
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("fault: bad spec entry %q (want key=value)", part)
		}
		key, val := kv[0], kv[1]
		if seen[key] {
			return nil, fmt.Errorf("fault: duplicate key %q (each key may appear once; join crashes with +)", key)
		}
		seen[key] = true
		num := func() (float64, error) { return strconv.ParseFloat(val, 64) }
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q", val)
			}
			p.Seed = n
		case "crash":
			for _, c := range strings.Split(val, "+") {
				rr := strings.SplitN(c, "@", 2)
				if len(rr) != 2 {
					return nil, fmt.Errorf("fault: bad crash %q (want rank@round)", c)
				}
				rank, err1 := strconv.Atoi(rr[0])
				round, err2 := strconv.Atoi(rr[1])
				if err1 != nil || err2 != nil || rank < 0 {
					return nil, fmt.Errorf("fault: bad crash %q", c)
				}
				if round < 1 {
					return nil, fmt.Errorf("fault: bad crash %q (round must be >= 1)", c)
				}
				for _, prev := range p.Crashes {
					if prev.Rank == rank && prev.Round == round {
						return nil, fmt.Errorf("fault: duplicate crash entry %q", c)
					}
				}
				p.Crashes = append(p.Crashes, Crash{Rank: rank, Round: round})
			}
		case "crashp":
			v, err := num()
			if err != nil || v < 0 || v > 1 {
				return nil, fmt.Errorf("fault: bad crashp %q (want probability in [0,1])", val)
			}
			p.CrashProb = v
		case "crashwindow":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("fault: bad crashwindow %q", val)
			}
			if n < 1 {
				return nil, fmt.Errorf("fault: bad crashwindow %q (want at least 1 iteration)", val)
			}
			p.CrashWindow = n
		case "drop", "dup", "delayp", "hostfail", "taskfail", "repair", "retrybase", "retryfactor", "retrymax":
			v, err := num()
			if err != nil || v < 0 {
				return nil, fmt.Errorf("fault: bad %s %q", key, val)
			}
			switch key {
			case "drop", "dup", "delayp", "hostfail", "taskfail":
				if v > 1 {
					return nil, fmt.Errorf("fault: bad %s %q (want probability in [0,1])", key, val)
				}
			}
			switch key {
			case "drop":
				p.Drop = v
			case "dup":
				p.Dup = v
			case "delayp":
				p.DelayProb = v
			case "hostfail":
				p.HostFail = v
			case "taskfail":
				p.TaskFail = v
			case "repair":
				p.RepairSec = v
			case "retrybase":
				p.Retry.BaseSec = v
			case "retryfactor":
				p.Retry.Factor = v
			case "retrymax":
				p.Retry.MaxSec = v
			}
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault: bad delay %q (want non-negative duration)", val)
			}
			p.Delay = d
		case "attempts":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("fault: bad attempts %q (want non-negative count)", val)
			}
			p.Retry.MaxAttempts = n
		case "stall":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("fault: bad stall %q", val)
			}
			p.StallIter = n
		default:
			return nil, fmt.Errorf("fault: unknown spec key %q", key)
		}
	}
	return p, nil
}

// Fate is the injector's verdict on one message.
type Fate int

const (
	// Deliver passes the message through untouched.
	Deliver Fate = iota
	// Drop loses the message; the receiver recovers it from the
	// sender's retransmit buffer after a timeout.
	Drop
	// Dup delivers the message twice; sequence numbers dedupe it.
	Dup
	// Delay holds delivery for Plan.Delay.
	Delay
)

// Injector answers fault queries deterministically from a Plan. A nil
// *Injector injects nothing, so substrates query it unconditionally.
// All methods are safe for concurrent use.
type Injector struct {
	plan Plan

	mu    sync.Mutex
	fired map[string]bool // one-shot events already consumed
	log   []string        // fired decisions, for Schedule()

	tr    *obs.Tracer
	track obs.TrackID
	lg    *obs.Logger

	cInjected, cCrashes, cDrop, cDelay, cDup, cRetransmit *obs.Counter
	cHostFail, cTaskRetry, cStalls, cTaskFail, cRecovery  *obs.Counter
}

// NewInjector builds an injector for the plan, reporting into the
// sink: every fired fault bumps a fault.* counter and lands as an
// instant on the "fault" trace track. A nil plan yields a nil
// (no-fault) injector.
func NewInjector(p *Plan, sink obs.Sink) *Injector {
	if p == nil {
		return nil
	}
	in := &Injector{plan: p.withDefaults(), fired: map[string]bool{}}
	if tr := sink.Tracer; tr != nil {
		in.tr = tr
		in.track = tr.Track("fault", 0, "injected faults")
	}
	in.lg = sink.Log  // nil-safe: events vanish without a logger
	m := sink.Metrics // nil registry hands out nil instruments
	in.cInjected = m.Counter("fault.injected")
	in.cCrashes = m.Counter("fault.rank.crashes")
	in.cDrop = m.Counter("fault.msg.dropped")
	in.cDelay = m.Counter("fault.msg.delayed")
	in.cDup = m.Counter("fault.msg.duplicated")
	in.cRetransmit = m.Counter("fault.msg.retransmits")
	in.cHostFail = m.Counter("fault.host.failures")
	in.cTaskRetry = m.Counter("fault.task.retries")
	in.cStalls = m.Counter("fault.device.stalls")
	in.cTaskFail = m.Counter("fault.task.failures")
	in.cRecovery = m.Counter("fault.recoveries")
	return in
}

// Plan returns the (defaulted) plan the injector runs; zero on nil.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Retry returns the plan's retry policy (defaults applied).
func (in *Injector) Retry() RetryPolicy {
	if in == nil {
		return RetryPolicy{}.withDefaults()
	}
	return in.plan.Retry.withDefaults()
}

// note records a fired fault in the schedule log, bumps counters, and
// publishes a structured warn-level event on the live /events stream.
func (in *Injector) note(c *obs.Counter, entry string) {
	in.cInjected.Inc()
	c.Inc()
	in.mu.Lock()
	in.log = append(in.log, entry)
	in.mu.Unlock()
	if in.tr != nil {
		in.tr.Instant(in.track, entry, in.tr.Now())
	}
	in.lg.Event(obs.LevelWarn, "fault", entry)
}

// fireOnce consumes a one-shot event key, reporting whether this call
// was the first to fire it.
func (in *Injector) fireOnce(key string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.fired[key] {
		return false
	}
	in.fired[key] = true
	return true
}

// CrashAt reports whether the given rank dies at the start of the
// given round. Each rank crashes at most once per run: after a crash
// fires (and the rank is later restarted from a checkpoint), replays
// of the same round proceed normally.
func (in *Injector) CrashAt(rank, round int) bool {
	if in == nil {
		return false
	}
	hit := false
	for _, c := range in.plan.Crashes {
		if c.Rank == rank && c.Round == round {
			hit = true
			break
		}
	}
	if !hit && in.plan.CrashProb > 0 &&
		in.u01("crash", rank) < in.plan.CrashProb &&
		round == 1+int(in.h("crashround", rank)%uint64(in.plan.CrashWindow)) {
		hit = true
	}
	if !hit || !in.fireOnce(fmt.Sprintf("crash:%d", rank)) {
		return false
	}
	in.note(in.cCrashes, fmt.Sprintf("crash rank=%d round=%d", rank, round))
	return true
}

// MessageFate decides what happens to the seq-th message from one
// endpoint to another. Deliver on nil.
func (in *Injector) MessageFate(from, to int, seq uint64) Fate {
	if in == nil {
		return Deliver
	}
	u := in.u01("msg", from, to, int(seq))
	switch {
	case u < in.plan.Drop:
		in.note(in.cDrop, fmt.Sprintf("msg drop %d->%d seq=%d", from, to, seq))
		return Drop
	case u < in.plan.Drop+in.plan.Dup:
		in.note(in.cDup, fmt.Sprintf("msg dup %d->%d seq=%d", from, to, seq))
		return Dup
	case u < in.plan.Drop+in.plan.Dup+in.plan.DelayProb:
		in.note(in.cDelay, fmt.Sprintf("msg delay %d->%d seq=%d", from, to, seq))
		return Delay
	}
	return Deliver
}

// MessageDelay returns the latency added to Delay-fated messages.
func (in *Injector) MessageDelay() time.Duration {
	if in == nil {
		return 0
	}
	return in.plan.Delay
}

// HostFailure decides whether the attempt-th execution of a site's
// task fails mid-run, and if so at which fraction of its duration.
// The failure is realized by the platform as a DES event.
func (in *Injector) HostFailure(site string, task, attempt int) (frac float64, fails bool) {
	frac, fails = in.HostFailureDecision(site, task, attempt)
	if fails {
		in.NoteHostFailure(site, task, attempt, frac)
	}
	return frac, fails
}

// HostFailureDecision is the pure half of HostFailure: the same
// deterministic verdict with no side effects (no schedule entry,
// counters, or live events). Speculative executors — the Time Warp
// wfsched model — query this on possibly-rolled-back paths and report
// only committed failures via NoteHostFailure, so the fired-fault
// schedule stays identical to a sequential run's.
func (in *Injector) HostFailureDecision(site string, task, attempt int) (frac float64, fails bool) {
	if in == nil || in.plan.HostFail <= 0 {
		return 0, false
	}
	key := fmt.Sprintf("hostfail:%s:%d:%d", site, task, attempt)
	if in.u01(key) >= in.plan.HostFail {
		return 0, false
	}
	// Fail somewhere in the middle 80% of the attempt, deterministically.
	frac = 0.1 + 0.8*in.u01(key+":frac")
	return frac, true
}

// NoteHostFailure records a committed host failure decided earlier by
// HostFailureDecision, producing the exact schedule entry HostFailure
// would have written.
func (in *Injector) NoteHostFailure(site string, task, attempt int, frac float64) {
	if in == nil {
		return
	}
	in.note(in.cHostFail, fmt.Sprintf("hostfail site=%s task=%d attempt=%d frac=%.3f", site, task, attempt, frac))
}

// RepairSec is the downtime of a failed host slot.
func (in *Injector) RepairSec() float64 {
	if in == nil {
		return 0
	}
	return in.plan.RepairSec
}

// DeviceStall reports whether the simulated accelerator stalls at the
// given iteration (one-shot).
func (in *Injector) DeviceStall(iter int) bool {
	if in == nil || in.plan.StallIter <= 0 || iter < in.plan.StallIter {
		return false
	}
	if !in.fireOnce("stall") {
		return false
	}
	in.note(in.cStalls, fmt.Sprintf("device stall iter=%d", iter))
	return true
}

// TaskFails decides whether the attempt-th execution of a map/reduce
// task fails; key identifies the task (phase plus indices).
func (in *Injector) TaskFails(phase string, attempt int, key ...int) bool {
	if in == nil || in.plan.TaskFail <= 0 {
		return false
	}
	parts := make([]int, 0, len(key)+1)
	parts = append(parts, attempt)
	parts = append(parts, key...)
	if in.u01("taskfail:"+phase, parts...) >= in.plan.TaskFail {
		return false
	}
	in.note(in.cTaskFail, fmt.Sprintf("taskfail phase=%s key=%v attempt=%d", phase, key, attempt))
	return true
}

// NoteRetransmit records a receiver-side retransmit recovery (the
// visible effect of a dropped message).
func (in *Injector) NoteRetransmit(from, to int, seq uint64) {
	if in == nil {
		return
	}
	in.note(in.cRetransmit, fmt.Sprintf("msg retransmit %d->%d seq=%d", from, to, seq))
}

// NoteTaskRetry records one task re-execution (host-failure recovery).
func (in *Injector) NoteTaskRetry(site string, task, attempt int) {
	if in == nil {
		return
	}
	in.note(in.cTaskRetry, fmt.Sprintf("retry site=%s task=%d attempt=%d", site, task, attempt))
}

// NoteRecovery records one coordinated recovery (checkpoint rollback
// and restart) and emits a recovery span covering it.
func (in *Injector) NoteRecovery(substrate string, start, dur time.Duration, args ...obs.Arg) {
	if in == nil {
		return
	}
	in.note(in.cRecovery, fmt.Sprintf("recovery substrate=%s", substrate))
	if in.tr != nil {
		in.tr.Span(in.track, "recovery "+substrate, start, dur, args...)
	}
	in.lg.Event(obs.LevelInfo, "fault", "recovered "+substrate, args...)
}

// Now returns the injector's trace clock offset (0 without a tracer),
// for timestamping recovery spans.
func (in *Injector) Now() time.Duration {
	if in == nil {
		return 0
	}
	return in.tr.Now()
}

// Schedule returns the fired-fault log, sorted so that concurrent
// substrates cannot perturb its order: same seed, same byte-identical
// schedule.
func (in *Injector) Schedule() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	out := append([]string(nil), in.log...)
	in.mu.Unlock()
	sort.Strings(out)
	return out
}

// h hashes the seed with a decision identity into a uniform uint64
// (FNV-1a fed into a splitmix64 finalizer). Deterministic across runs
// and platforms; independent of goroutine interleaving.
func (in *Injector) h(key string, parts ...int) uint64 {
	f := fnv.New64a()
	io.WriteString(f, key)
	for _, p := range parts {
		fmt.Fprintf(f, ":%d", p)
	}
	x := f.Sum64() ^ uint64(in.plan.Seed)*0x9E3779B97F4A7C15
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// u01 maps a decision identity to a uniform float in [0, 1).
func (in *Injector) u01(key string, parts ...int) float64 {
	return float64(in.h(key, parts...)>>11) / float64(1<<53)
}
