package fault

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestParseRoundTrip(t *testing.T) {
	p, err := Parse("seed=7,crash=1@3+2@5,crashp=0.1,crashwindow=6,drop=0.05,dup=0.02,delayp=0.1,delay=2ms,hostfail=0.1,repair=8,retrybase=0.5,retryfactor=3,retrymax=30,attempts=8,stall=50,taskfail=0.25")
	if err != nil {
		t.Fatal(err)
	}
	want := &Plan{
		Seed:        7,
		Crashes:     []Crash{{Rank: 1, Round: 3}, {Rank: 2, Round: 5}},
		CrashProb:   0.1,
		CrashWindow: 6,
		Drop:        0.05, Dup: 0.02, DelayProb: 0.1,
		Delay:     2 * time.Millisecond,
		HostFail:  0.1,
		RepairSec: 8,
		Retry:     RetryPolicy{BaseSec: 0.5, Factor: 3, MaxSec: 30, MaxAttempts: 8},
		StallIter: 50,
		TaskFail:  0.25,
	}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("Parse mismatch:\n got %+v\nwant %+v", p, want)
	}
}

// TestParseErrors is the malformed-spec contract: every bad -faults
// spec must be rejected with a descriptive error naming the offending
// key — never silently accepted (last-wins duplicates, negative
// iterations, and out-of-range probabilities were all accepted before
// PR 5).
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, spec, wantErr string
	}{
		{"empty", "", "empty spec"},
		{"noValue", "seed", "key=value"},
		{"badSeed", "seed=x", `bad seed "x"`},
		{"unknownKey", "unknown=1", `unknown spec key "unknown"`},
		{"crashNoRound", "crash=1", "rank@round"},
		{"crashBadRank", "crash=x@2", `bad crash "x@2"`},
		{"crashNegativeRank", "crash=-1@2", `bad crash "-1@2"`},
		{"crashRoundZero", "crash=1@0", "round must be >= 1"},
		{"crashRoundNegative", "crash=1@-4", "round must be >= 1"},
		{"crashDuplicateEntry", "crash=1@3+1@3", `duplicate crash entry "1@3"`},
		{"duplicateKey", "seed=1,seed=2", `duplicate key "seed"`},
		{"duplicateCrashKey", "crash=1@3,crash=2@5", `duplicate key "crash"`},
		{"duplicateProbKey", "drop=0.1,drop=0.2", `duplicate key "drop"`},
		{"dropNegative", "drop=-1", `bad drop "-1"`},
		{"dropNotANumber", "drop=x", `bad drop "x"`},
		{"dropOverOne", "drop=1.5", "probability in [0,1]"},
		{"crashpOverOne", "crashp=2", "probability in [0,1]"},
		{"crashpNegative", "crashp=-0.5", "probability in [0,1]"},
		{"taskfailOverOne", "taskfail=7", "probability in [0,1]"},
		{"crashwindowZero", "crashwindow=0", "at least 1 iteration"},
		{"crashwindowNegative", "crashwindow=-3", "at least 1 iteration"},
		{"delayNoUnit", "delay=5", `bad delay "5"`},
		{"delayNegative", "delay=-2ms", "non-negative duration"},
		{"attemptsNegative", "attempts=-1", "non-negative count"},
		{"stallNegative", "stall=-2", `bad stall "-2"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.spec)
			if err == nil {
				t.Fatalf("Parse(%q): want error containing %q, got nil", tc.spec, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Parse(%q): error %q does not mention %q", tc.spec, err, tc.wantErr)
			}
		})
	}
}

// Boundary values stay accepted: probabilities of exactly 0 and 1,
// round 1, window 1.
func TestParseBoundaryValues(t *testing.T) {
	for _, spec := range []string{
		"drop=0", "drop=1", "crashp=1,crashwindow=1", "crash=0@1", "attempts=0", "delay=0s",
	} {
		if _, err := Parse(spec); err != nil {
			t.Errorf("Parse(%q): unexpected error %v", spec, err)
		}
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	r := RetryPolicy{BaseSec: 1, Factor: 2, MaxSec: 10}
	for i, want := range []float64{1, 2, 4, 8, 10, 10} {
		if got := r.Backoff(i + 1); got != want {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, want)
		}
	}
	// Zero value takes the 1s/2x/60s defaults.
	var def RetryPolicy
	if got := def.Backoff(1); got != 1 {
		t.Errorf("default Backoff(1) = %v, want 1", got)
	}
	if got := def.Backoff(20); got != 60 {
		t.Errorf("default Backoff(20) = %v, want 60", got)
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if in.CrashAt(0, 1) || in.DeviceStall(1) || in.TaskFails("map", 1, 0) {
		t.Fatal("nil injector fired a fault")
	}
	if f := in.MessageFate(0, 1, 1); f != Deliver {
		t.Fatalf("nil injector fate = %v, want Deliver", f)
	}
	if _, fails := in.HostFailure("site", 0, 1); fails {
		t.Fatal("nil injector host failure")
	}
	if s := in.Schedule(); s != nil {
		t.Fatalf("nil injector schedule = %v", s)
	}
	if NewInjector(nil, obs.Sink{}) != nil {
		t.Fatal("NewInjector(nil) != nil")
	}
}

// drive exercises every injector decision path in a randomized
// goroutine interleaving and returns the resulting schedule.
func drive(t *testing.T, plan Plan) []string {
	t.Helper()
	in := NewInjector(&plan, obs.Sink{Metrics: obs.NewRegistry()})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 1; r <= 8; r++ {
				in.CrashAt(w, r)
			}
			for seq := uint64(1); seq <= 50; seq++ {
				in.MessageFate(w, (w+1)%4, seq)
			}
			for task := 0; task < 20; task++ {
				for attempt := 1; attempt <= 3; attempt++ {
					in.HostFailure("local", w*20+task, attempt)
					in.TaskFails("map", attempt, w, task)
				}
			}
			for iter := 1; iter <= 60; iter++ {
				in.DeviceStall(iter)
			}
		}(w)
	}
	wg.Wait()
	return in.Schedule()
}

func TestScheduleDeterministicAcrossInterleavings(t *testing.T) {
	plan := Plan{
		Seed:      42,
		Crashes:   []Crash{{Rank: 1, Round: 3}},
		CrashProb: 0.3,
		Drop:      0.1, Dup: 0.05, DelayProb: 0.1,
		HostFail: 0.15, TaskFail: 0.2, StallIter: 40,
	}
	first := drive(t, plan)
	if len(first) == 0 {
		t.Fatal("fault schedule empty; plan rates should fire")
	}
	for i := 0; i < 5; i++ {
		if got := drive(t, plan); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d schedule diverged:\n got %v\nwant %v", i, got, first)
		}
	}
	// A different seed must produce a different schedule.
	other := plan
	other.Seed = 43
	if reflect.DeepEqual(drive(t, other), first) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestOneShotEventsFireOnce(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1, Crashes: []Crash{{Rank: 2, Round: 4}}, StallIter: 10}, obs.Sink{})
	if !in.CrashAt(2, 4) {
		t.Fatal("scheduled crash did not fire")
	}
	if in.CrashAt(2, 4) {
		t.Fatal("crash fired twice (replayed round after recovery would re-kill)")
	}
	if !in.DeviceStall(10) {
		t.Fatal("stall did not fire")
	}
	if in.DeviceStall(11) {
		t.Fatal("stall fired twice")
	}
}

func TestLinkReliableWithoutInjector(t *testing.T) {
	l := NewLink[int](nil, 0, 1, 1)
	abort := make(chan struct{})
	for i := 1; i <= 10; i++ {
		if !l.Send(i, abort) {
			t.Fatal("send failed")
		}
		got, ok := l.Recv(0, abort)
		if !ok || got != i {
			t.Fatalf("recv = %d,%v, want %d,true", got, ok, i)
		}
	}
}

func TestLinkDropRecoversViaRetransmit(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1, Drop: 1}, obs.Sink{Metrics: obs.NewRegistry()})
	l := NewLink[string](in, 0, 1, 1)
	abort := make(chan struct{})
	if !l.Send("halo", abort) {
		t.Fatal("send failed")
	}
	got, ok := l.Recv(5*time.Millisecond, abort)
	if !ok || got != "halo" {
		t.Fatalf("recv = %q,%v, want halo,true (retransmit)", got, ok)
	}
	// Nothing retained and nothing sent: timeout reports peer death.
	if _, ok := l.Recv(2*time.Millisecond, abort); ok {
		t.Fatal("recv succeeded with empty link and empty retransmit buffer")
	}
}

func TestLinkDupIsDeduped(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1, Dup: 1}, obs.Sink{})
	l := NewLink[int](in, 0, 1, 1)
	abort := make(chan struct{})
	l.Send(7, abort)
	if got, ok := l.Recv(0, abort); !ok || got != 7 {
		t.Fatalf("first recv = %d,%v", got, ok)
	}
	l.Send(8, abort)
	// The duplicate of 7's successor should be skipped transparently:
	// next fresh payload is 8, not a replay of 7.
	if got, ok := l.Recv(0, abort); !ok || got != 8 {
		t.Fatalf("second recv = %d,%v, want 8,true", got, ok)
	}
}

func TestLinkDelayHonored(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1, DelayProb: 1, Delay: 10 * time.Millisecond}, obs.Sink{})
	l := NewLink[int](in, 0, 1, 1)
	abort := make(chan struct{})
	start := time.Now()
	l.Send(1, abort)
	if got, ok := l.Recv(0, abort); !ok || got != 1 {
		t.Fatalf("recv = %d,%v", got, ok)
	}
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("delayed message arrived after %v, want >= 10ms", el)
	}
}

func TestLinkAbort(t *testing.T) {
	l := NewLink[int](nil, 0, 1, 1)
	abort := make(chan struct{})
	close(abort)
	if _, ok := l.Recv(0, abort); ok {
		t.Fatal("recv succeeded on closed abort")
	}
}
