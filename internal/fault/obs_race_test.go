package fault

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestSnapshotWhileInjectingRace hammers the fault.* counters from
// concurrent injector goroutines while another goroutine repeatedly
// snapshots the registry — the snapshot-while-incrementing pattern
// the obs layer promises is safe. Run under -race; the assertions
// additionally check snapshots are internally consistent (monotone
// fault.injected across successive snapshots).
func TestSnapshotWhileInjectingRace(t *testing.T) {
	reg := obs.NewRegistry()
	in := NewInjector(&Plan{
		Seed: 99,
		Drop: 0.2, Dup: 0.2, DelayProb: 0.2,
		HostFail: 0.5, TaskFail: 0.5,
	}, obs.Sink{Metrics: reg})

	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		var prev int64 = -1
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := reg.Snapshot()
			cur := s.Counters["fault.injected"]
			if cur < prev {
				t.Errorf("fault.injected went backwards: %d -> %d", prev, cur)
				return
			}
			prev = cur
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				in.MessageFate(w, w+1, uint64(i))
				in.HostFailure("local", i, w)
				in.TaskFails("map", w, i)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	s := reg.Snapshot()
	sum := s.Counters["fault.msg.dropped"] + s.Counters["fault.msg.duplicated"] +
		s.Counters["fault.msg.delayed"] + s.Counters["fault.host.failures"] +
		s.Counters["fault.task.failures"]
	if got := s.Counters["fault.injected"]; got != sum {
		t.Fatalf("fault.injected = %d, want sum of per-kind counters %d", got, sum)
	}
	if s.Counters["fault.msg.dropped"] == 0 || s.Counters["fault.host.failures"] == 0 {
		t.Fatal("expected faults to fire at these rates")
	}
}
