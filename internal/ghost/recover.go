package ghost

// recover.go is the fault-tolerance core shared by the strip and
// block decompositions: a coordinator that drives *generations* of
// rank goroutines under coordinated checkpoint/rollback. Every round,
// each live rank reports its owned-region change count (plus, when
// fault injection is on, an in-memory checkpoint of its owned cells);
// a round commits only when every rank reported, which makes the
// stored checkpoint set globally consistent. Peer death is detected
// by heartbeat: if a round's reports stop arriving within the
// heartbeat timeout, the coordinator declares the generation dead,
// aborts the surviving ranks, and relaunches all ranks from the last
// committed checkpoint set — the classic coordinated-rollback
// recovery, which the automaton's determinism (the Abelian property)
// turns into exact replay: the recovered run reaches the same fixed
// point, with the same committed topple count, as the fault-free run.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// roundReport is one rank's per-round message to the coordinator. It
// doubles as the heartbeat (its arrival proves the rank is alive) and
// the checkpoint carrier (rows is a copy of the rank's owned cells
// after the round, present only when fault injection is on).
type roundReport struct {
	gen     int // generation that produced it (stale ones are discarded)
	id      int
	round   int
	changes int
	rows    [][]uint32
}

// generation is one launched cohort of rank goroutines plus the
// handles the coordinator needs to drive and, if necessary, kill it.
type generation struct {
	reports chan roundReport
	proceed []chan bool
	abort   chan struct{}
	wg      *sync.WaitGroup
	// harvest folds the generation's traffic/work stats into the
	// report; it must only run after wg.Wait.
	harvest func(*Report)
}

// coordinate runs the generation loop: collect a round's reports from
// all nRanks ranks, commit it (install checkpoints, accumulate
// topples), and broadcast continue/stop — or, on heartbeat timeout,
// abort the generation and relaunch from the last committed
// checkpoint set. launch builds a generation whose ranks resume after
// startRound with the given owned-cell checkpoints. ckpts must hold
// the scattered state of round startRound on entry (the initial state
// on a fresh run, the restored snapshot on a durable resume), and
// startTopples the topples already committed by those rounds. dur,
// when non-nil, persists committed rounds at its cadence. On a nil
// return the final generation has exited and its ranks hold the fixed
// point.
func coordinate(ctx context.Context, nRanks, K, maxIters int,
	inj *fault.Injector, hb time.Duration,
	launch func(genID, startRound int, ckpts [][][]uint32) *generation,
	ckpts [][][]uint32, rep *Report, dur *durable, startRound int, startTopples uint64,
	sink obs.Sink) error {

	committed := startRound
	topples := startTopples
	genID := 0
	for {
		genID++
		g := launch(genID, committed, ckpts)
		err := collectRounds(ctx, g, genID, nRanks, K, maxIters, inj, hb,
			&committed, &topples, ckpts, rep, dur, sink)
		if err == errGenerationDead {
			// Recovery: kill the survivors, then rebuild everything
			// from the checkpoint set of round `committed`.
			recTS := inj.Now()
			close(g.abort)
			g.wg.Wait()
			g.harvest(rep)
			rep.Recoveries++
			inj.NoteRecovery("ghost", recTS, inj.Now()-recTS,
				obs.Arg{Key: "round", Value: int64(committed + 1)},
				obs.Arg{Key: "generation", Value: int64(genID)})
			continue
		}
		if err != nil {
			close(g.abort)
			g.wg.Wait()
			g.harvest(rep)
			return err
		}
		g.wg.Wait()
		g.harvest(rep)
		rep.Iterations = committed * K
		rep.Topples = topples
		return nil
	}
}

// errGenerationDead is coordinate's internal signal that a heartbeat
// timed out and the current generation must be rolled back.
var errGenerationDead = fmt.Errorf("ghost: generation dead")

// collectRounds drives one generation until the run finishes (nil),
// the context is cancelled (ctx.Err()), or a heartbeat times out
// (errGenerationDead).
func collectRounds(ctx context.Context, g *generation, genID, nRanks, K, maxIters int,
	inj *fault.Injector, hb time.Duration,
	committed *int, topples *uint64, ckpts [][][]uint32, rep *Report, dur *durable,
	sink obs.Sink) error {

	for {
		round := *committed + 1
		rep.Exchanges++ // each round (including replays) opens with an exchange
		total := 0
		seen := make([]bool, nRanks)
		var rows [][][]uint32
		if inj != nil || dur != nil {
			rows = make([][][]uint32, nRanks)
		}
		var timeout <-chan time.Time
		var timer *time.Timer
		if inj != nil && hb > 0 {
			timer = time.NewTimer(hb)
			timeout = timer.C
		}
		need := nRanks
		for need > 0 {
			select {
			case r := <-g.reports:
				if r.gen != genID || r.round != round || seen[r.id] {
					continue // stale: a pre-abort straggler from a dead generation
				}
				seen[r.id] = true
				total += r.changes
				if rows != nil {
					rows[r.id] = r.rows
				}
				need--
			case <-timeout:
				// Some rank went silent for a whole heartbeat: dead.
				return errGenerationDead
			case <-ctx.Done():
				if timer != nil {
					timer.Stop()
				}
				return ctx.Err()
			}
		}
		if timer != nil {
			timer.Stop()
		}

		// All ranks reported: the round commits and its checkpoint set
		// is globally consistent.
		*committed = round
		*topples += uint64(total)
		if rows != nil {
			copy(ckpts, rows)
		}
		sink.Progress.Update("ghost",
			obs.F("round", float64(round)),
			obs.F("generation", float64(genID)),
			obs.F("changes", float64(total)),
			obs.F("topples", float64(*topples)),
			obs.F("recoveries", float64(rep.Recoveries)))
		cont := total != 0 && round*K < maxIters
		if cont {
			// Persist the committed round before releasing the ranks, so
			// the on-disk snapshot never runs ahead of the generation.
			// The finishing round is deliberately not saved (see ckpt.go).
			if err := dur.save(round, *topples); err != nil {
				return fmt.Errorf("ghost: checkpoint: %w", err)
			}
		}
		for _, ch := range g.proceed {
			ch <- cont
		}
		if !cont {
			return nil
		}
	}
}
