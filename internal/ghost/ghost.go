// Package ghost implements the fourth sandpile assignment: a
// distributed-memory run of the synchronous automaton using the Ghost
// Cell Pattern (Kjolstad & Snir 2010). MPI ranks are simulated by
// goroutines that own horizontal strips of the global grid and
// exchange halo rows over channels; no memory is shared between ranks
// except the channels.
//
// The assignment's central trade-off — redundant computation for
// less-frequent communication — is a first-class parameter here: with
// ghost-zone width K, each rank holds K extra rows per interior
// boundary, exchanges only every K iterations, and in between
// recomputes a shrinking band of its neighbors' rows. The run report
// counts messages, bytes, and redundantly computed cells so the
// trade-off can be measured rather than imagined.
package ghost

import (
	"fmt"
	"sync"

	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sandpile"
)

// Params configures a distributed run.
type Params struct {
	// Ranks is the number of simulated processes (strips). It must be
	// at least 1 and small enough that every rank owns at least
	// GhostWidth rows.
	Ranks int
	// GhostWidth K is the ghost-zone width: halo rows exchanged per
	// boundary, and the number of iterations between exchanges.
	GhostWidth int
	// MaxIters aborts runaway runs; 0 means sandpile.MaxIterations.
	MaxIters int
	// Obs attaches the observability layer: per-rank exchange/compute
	// spans on the "ghost" track and ghost.* counters (halo messages,
	// bytes, redundant cells). The zero Sink disables it.
	Obs obs.Sink
}

// Report summarizes a distributed run.
type Report struct {
	sandpile.Result
	Ranks          int
	GhostWidth     int
	Exchanges      int    // halo-exchange rounds performed
	Messages       int    // point-to-point messages sent
	BytesSent      uint64 // payload bytes across all messages
	RedundantCells uint64 // ghost-band cells recomputed beyond owned work
	OwnedCells     uint64 // owned cells computed
}

func (r Report) String() string {
	return fmt.Sprintf("ranks=%d K=%d %v exchanges=%d msgs=%d bytes=%d redundant=%d",
		r.Ranks, r.GhostWidth, r.Result, r.Exchanges, r.Messages, r.BytesSent, r.RedundantCells)
}

// message is one halo payload: K rows of W cells.
type message struct {
	rows [][]uint32
}

// rank is the per-process state of the simulated run.
type rank struct {
	id         int
	owned      int // owned rows
	globalTop  int // global index of first owned row
	topGhost   int // K if an upper neighbor exists, else 0
	botGhost   int
	cur, next  *grid.Grid
	sendUp     chan message // to rank id-1
	sendDown   chan message // to rank id+1
	recvUp     chan message // from rank id-1
	recvDown   chan message // from rank id+1
	changes    chan int     // per-round owned-row change count, to coordinator
	proceed    chan bool    // coordinator verdict: continue?
	msgs       int
	bytes      uint64
	redundant  uint64
	ownedCells uint64
	tr         *obs.Tracer // nil when tracing is off
	track      obs.TrackID
}

// Run stabilizes g with the distributed synchronous automaton and
// writes the final configuration back into g. It returns the run
// report. The result is bit-identical to the sequential solvers (the
// Abelian/determinism property), which the tests enforce.
func Run(g *grid.Grid, p Params) (Report, error) {
	if p.Ranks <= 0 {
		return Report{}, fmt.Errorf("ghost: Ranks must be >= 1, got %d", p.Ranks)
	}
	if p.GhostWidth <= 0 {
		return Report{}, fmt.Errorf("ghost: GhostWidth must be >= 1, got %d", p.GhostWidth)
	}
	if p.MaxIters <= 0 {
		p.MaxIters = sandpile.MaxIterations
	}
	minOwned := g.H() / p.Ranks
	if minOwned < p.GhostWidth {
		return Report{}, fmt.Errorf("ghost: %d ranks over %d rows leaves %d rows/rank; need >= GhostWidth (%d)",
			p.Ranks, g.H(), minOwned, p.GhostWidth)
	}

	before := g.Sum()
	K := p.GhostWidth
	W := g.W()

	// Carve strips: the first (H mod Ranks) ranks get one extra row.
	ranks := make([]*rank, p.Ranks)
	base := g.H() / p.Ranks
	extra := g.H() % p.Ranks
	top := 0
	for i := range ranks {
		owned := base
		if i < extra {
			owned++
		}
		r := &rank{
			id:        i,
			owned:     owned,
			globalTop: top,
			changes:   make(chan int, 1),
			proceed:   make(chan bool, 1),
		}
		if tr := p.Obs.Tracer; tr != nil {
			r.tr = tr
			r.track = tr.Track("ghost", i, fmt.Sprintf("rank %d", i))
		}
		if i > 0 {
			r.topGhost = K
		}
		if i < p.Ranks-1 {
			r.botGhost = K
		}
		localH := owned + r.topGhost + r.botGhost
		r.cur = grid.New(localH, W)
		r.next = grid.New(localH, W)
		// Scatter: copy owned rows from the global grid.
		for y := 0; y < owned; y++ {
			copy(r.cur.Row(r.topGhost+y), g.Row(top+y))
		}
		ranks[i] = r
		top += owned
	}
	// Wire neighbor channels (capacity 1 so send-then-receive cannot
	// deadlock).
	for i := 0; i < p.Ranks-1; i++ {
		down := make(chan message, 1) // i -> i+1
		up := make(chan message, 1)   // i+1 -> i
		ranks[i].sendDown = down
		ranks[i+1].recvUp = down
		ranks[i+1].sendUp = up
		ranks[i].recvDown = up
	}

	var wg sync.WaitGroup
	for _, r := range ranks {
		wg.Add(1)
		go func(r *rank) {
			defer wg.Done()
			r.run(K)
		}(r)
	}

	// Coordinator: sum per-round owned changes; broadcast continue
	// until a whole round changes nothing or the iteration budget is
	// exhausted.
	report := Report{Ranks: p.Ranks, GhostWidth: K}
	iters := 0
	for {
		report.Exchanges++ // each round starts with a halo exchange
		total := 0
		for _, r := range ranks {
			total += <-r.changes
		}
		iters += K
		report.Topples += uint64(total)
		cont := total != 0 && iters < p.MaxIters
		for _, r := range ranks {
			r.proceed <- cont
		}
		if !cont {
			break
		}
	}
	wg.Wait()

	// Gather: copy owned rows back into the global grid.
	for _, r := range ranks {
		for y := 0; y < r.owned; y++ {
			copy(g.Row(r.globalTop+y), r.cur.Row(r.topGhost+y))
		}
		report.Messages += r.msgs
		report.BytesSent += r.bytes
		report.RedundantCells += r.redundant
		report.OwnedCells += r.ownedCells
	}
	g.ClearHalo()
	report.Iterations = iters
	report.Absorbed = before - g.Sum()
	if m := p.Obs.Metrics; m != nil {
		m.Counter("ghost.exchanges").Add(int64(report.Exchanges))
		m.Counter("ghost.halo.messages").Add(int64(report.Messages))
		m.Counter("ghost.halo.bytes").Add(int64(report.BytesSent))
		m.Counter("ghost.cells.redundant").Add(int64(report.RedundantCells))
		m.Counter("ghost.cells.owned").Add(int64(report.OwnedCells))
	}
	return report, nil
}

// run executes one simulated rank: rounds of K synchronous steps over
// a shrinking valid band, a change report to the coordinator, and (if
// the coordinator says continue) a halo exchange.
func (r *rank) run(K int) {
	H := r.cur.H()
	for {
		// Fill (or refresh) ghost zones before the round's K steps.
		// The first exchange distributes the scattered initial state's
		// boundary rows; later ones refresh post-round state.
		exTS := r.tr.Now()
		r.exchange(K)
		if r.tr != nil {
			r.tr.Span(r.track, "exchange", exTS, r.tr.Now()-exTS,
				obs.Arg{Key: "K", Value: int64(K)})
		}
		compTS := r.tr.Now()
		roundChanges := 0
		for s := 1; s <= K; s++ {
			// Valid band shrinks by one row per step on each side that
			// has a ghost zone; sink-adjacent sides stay put.
			y0, y1 := 0, H
			if r.topGhost > 0 {
				y0 = s
			}
			if r.botGhost > 0 {
				y1 = H - s
			}
			for y := y0; y < y1; y++ {
				ch := sandpile.SyncRow(r.cur, r.next, y, 0, r.cur.W())
				if y >= r.topGhost && y < r.topGhost+r.owned {
					roundChanges += ch
					r.ownedCells += uint64(r.cur.W())
				} else {
					r.redundant += uint64(r.cur.W())
				}
			}
			r.cur, r.next = r.next, r.cur
		}
		if r.tr != nil {
			r.tr.Span(r.track, "compute", compTS, r.tr.Now()-compTS,
				obs.Arg{Key: "changes", Value: int64(roundChanges)})
		}
		r.changes <- roundChanges
		if !<-r.proceed {
			return
		}
	}
}

// exchange sends this rank's boundary-owned rows to each neighbor and
// refills its ghost zones with what the neighbors send back.
func (r *rank) exchange(K int) {
	W := r.cur.W()
	if r.sendUp != nil {
		m := message{rows: make([][]uint32, K)}
		for k := 0; k < K; k++ {
			m.rows[k] = append([]uint32(nil), r.cur.Row(r.topGhost+k)...)
		}
		r.sendUp <- m
		r.msgs++
		r.bytes += uint64(K * W * 4)
	}
	if r.sendDown != nil {
		m := message{rows: make([][]uint32, K)}
		for k := 0; k < K; k++ {
			m.rows[k] = append([]uint32(nil), r.cur.Row(r.topGhost+r.owned-K+k)...)
		}
		r.sendDown <- m
		r.msgs++
		r.bytes += uint64(K * W * 4)
	}
	if r.recvUp != nil {
		m := <-r.recvUp
		for k := 0; k < K; k++ {
			copy(r.cur.Row(k), m.rows[k])
		}
	}
	if r.recvDown != nil {
		m := <-r.recvDown
		for k := 0; k < K; k++ {
			copy(r.cur.Row(r.topGhost+r.owned+k), m.rows[k])
		}
	}
}
