// Package ghost implements the fourth sandpile assignment: a
// distributed-memory run of the synchronous automaton using the Ghost
// Cell Pattern (Kjolstad & Snir 2010). MPI ranks are simulated by
// goroutines that own horizontal strips of the global grid and
// exchange halo rows over links; no memory is shared between ranks
// except the links.
//
// The assignment's central trade-off — redundant computation for
// less-frequent communication — is a first-class parameter here: with
// ghost-zone width K, each rank holds K extra rows per interior
// boundary, exchanges only every K iterations, and in between
// recomputes a shrinking band of its neighbors' rows. The run report
// counts messages, bytes, and redundantly computed cells so the
// trade-off can be measured rather than imagined.
//
// Runs are fault-tolerant when configured with WithFaults: halo
// links absorb injected message drop/delay/duplication (internal/
// fault's retransmit + dedupe link), and rank crashes are survived by
// heartbeat detection plus coordinated checkpoint rollback
// (recover.go). Determinism makes recovery exact: the post-recovery
// fixed point and committed topple count equal the fault-free run's.
package ghost

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sandpile"
)

// Params configures a distributed run.
//
// Deprecated: prefer New with functional options (options.go), which
// also exposes fault injection and the 2-D decomposition through one
// constructor. Params remains supported as a thin equivalent.
type Params struct {
	// Ranks is the number of simulated processes (strips). It must be
	// at least 1 and small enough that every rank owns at least
	// GhostWidth rows.
	Ranks int
	// GhostWidth K is the ghost-zone width: halo rows exchanged per
	// boundary, and the number of iterations between exchanges.
	GhostWidth int
	// MaxIters aborts runaway runs; 0 means sandpile.MaxIterations.
	MaxIters int
	// Obs attaches the observability layer: per-rank exchange/compute
	// spans on the "ghost" track and ghost.* counters (halo messages,
	// bytes, redundant cells). The zero Sink disables it.
	Obs obs.Sink
}

// Report summarizes a distributed run.
type Report struct {
	sandpile.Result
	Ranks          int
	GhostWidth     int
	Exchanges      int    // halo-exchange rounds started (committed + replayed)
	Messages       int    // point-to-point messages sent (including replays)
	BytesSent      uint64 // payload bytes across all messages
	RedundantCells uint64 // ghost-band cells recomputed beyond owned work
	OwnedCells     uint64 // owned cells computed
	// Recoveries counts coordinated rollbacks (heartbeat-detected rank
	// deaths recovered by restart-from-checkpoint).
	Recoveries int
	// FaultSchedule is the injector's sorted fired-fault log — the
	// reproducibility artifact: same seed, byte-identical schedule.
	// Empty without WithFaults.
	FaultSchedule []string
}

func (r Report) String() string {
	s := fmt.Sprintf("ranks=%d K=%d %v exchanges=%d msgs=%d bytes=%d redundant=%d",
		r.Ranks, r.GhostWidth, r.Result, r.Exchanges, r.Messages, r.BytesSent, r.RedundantCells)
	if r.Recoveries > 0 {
		s += fmt.Sprintf(" recoveries=%d", r.Recoveries)
	}
	return s
}

// message is one halo payload: k segments of w cells coalesced into a
// single contiguous row-major buffer — one allocation and one copy
// per exchange instead of one per row, the batched-halo optimization.
// The receiver knows the segment geometry from its own decomposition,
// so the wire carries no shape. Senders must build a fresh buffer per
// Send: the link retains the payload for retransmission.
type message struct {
	buf []uint32
}

// rank is the per-process state of the simulated run. Ranks are
// rebuilt from checkpoints on every recovery generation, so all
// fields are generation-local.
type rank struct {
	id         int
	gen        int
	owned      int // owned rows
	globalTop  int // global index of first owned row
	topGhost   int // K if an upper neighbor exists, else 0
	botGhost   int
	cur, next  *grid.Grid
	sendUp     *fault.Link[message] // to rank id-1
	sendDown   *fault.Link[message] // to rank id+1
	recvUp     *fault.Link[message] // from rank id-1
	recvDown   *fault.Link[message] // from rank id+1
	reports    chan<- roundReport
	proceed    chan bool
	abort      chan struct{}
	inj        *fault.Injector
	linkWait   time.Duration // halo-receive timeout; 0 = block forever
	durable    bool          // attach checkpoint rows even without injection
	msgs       int
	bytes      uint64
	redundant  uint64
	ownedCells uint64
	tr         *obs.Tracer // nil when tracing is off
	track      obs.TrackID
}

// Run stabilizes g with the distributed synchronous automaton and
// writes the final configuration back into g. It returns the run
// report. The result is bit-identical to the sequential solvers (the
// Abelian/determinism property), which the tests enforce.
//
// Deprecated: prefer New(g, WithRanks(p.Ranks), ...).Run(); Run
// remains as a thin wrapper over it.
func Run(g *grid.Grid, p Params) (Report, error) {
	return RunContext(context.Background(), g, p)
}

// RunContext is Run with cancellation.
func RunContext(ctx context.Context, g *grid.Grid, p Params) (Report, error) {
	return run1d(ctx, g, config{
		ranks: p.Ranks, width: p.GhostWidth, maxIters: p.MaxIters, obs: p.Obs,
	})
}

// run1d executes the strip decomposition under the shared recovery
// coordinator.
func run1d(ctx context.Context, g *grid.Grid, cfg config) (Report, error) {
	if cfg.ranks <= 0 {
		return Report{}, fmt.Errorf("ghost: Ranks must be >= 1, got %d", cfg.ranks)
	}
	if cfg.width <= 0 {
		return Report{}, fmt.Errorf("ghost: GhostWidth must be >= 1, got %d", cfg.width)
	}
	if cfg.maxIters <= 0 {
		cfg.maxIters = sandpile.MaxIterations
	}
	minOwned := g.H() / cfg.ranks
	if minOwned < cfg.width {
		return Report{}, fmt.Errorf("ghost: %d ranks over %d rows leaves %d rows/rank; need >= GhostWidth (%d)",
			cfg.ranks, g.H(), minOwned, cfg.width)
	}

	before := g.Sum()
	K, W := cfg.width, g.W()
	// Durable resume happens before carving, so the strips below are
	// cut from the restored committed state rather than the initial
	// one. `before` stays the caller's initial sum: re-running from the
	// same initial grid therefore reports the same Absorbed total as an
	// uninterrupted run.
	startRound, startTopples := 0, uint64(0)
	var dur *durable
	if cfg.ck != nil {
		var err error
		if startRound, startTopples, err = restoreGhost(cfg.ck, g); err != nil {
			return Report{}, err
		}
		dur = &durable{ck: cfg.ck}
	}
	inj := fault.NewInjector(cfg.faults, cfg.obs)
	hb := cfg.heartbeat
	if hb <= 0 {
		hb = 2 * time.Second
	}
	var linkWait time.Duration
	if inj != nil {
		linkWait = hb / 4 // must detect a dropped halo before the coordinator gives up
	}

	// Carve strips: the first (H mod Ranks) ranks get one extra row.
	// The scattered owned rows double as the round-0 checkpoint set.
	owned := make([]int, cfg.ranks)
	tops := make([]int, cfg.ranks)
	ckpts := make([][][]uint32, cfg.ranks)
	base, extra := g.H()/cfg.ranks, g.H()%cfg.ranks
	top := 0
	for i := range owned {
		owned[i] = base
		if i < extra {
			owned[i]++
		}
		tops[i] = top
		rows := make([][]uint32, owned[i])
		for y := range rows {
			rows[y] = append([]uint32(nil), g.Row(top+y)...)
		}
		ckpts[i] = rows
		top += owned[i]
	}
	if dur != nil {
		// Strips are stacked top to bottom, so concatenating the
		// committed checkpoint rows reproduces the global grid.
		h := g.H()
		dur.encode = func(round int, topples uint64) []byte {
			var e ckpt.Enc
			encodeGhostHeader(&e, round, topples, h, W)
			for _, rows := range ckpts {
				for _, row := range rows {
					for _, v := range row {
						e.U32(v)
					}
				}
			}
			return e.Bytes()
		}
	}

	var live []*rank // the most recently launched generation
	launch := func(genID, startRound int, ckpts [][][]uint32) *generation {
		gen := &generation{
			reports: make(chan roundReport, cfg.ranks),
			proceed: make([]chan bool, cfg.ranks),
			abort:   make(chan struct{}),
			wg:      &sync.WaitGroup{},
		}
		rs := make([]*rank, cfg.ranks)
		for i := range rs {
			r := &rank{
				id: i, gen: genID,
				owned: owned[i], globalTop: tops[i],
				reports: gen.reports,
				proceed: make(chan bool, 1),
				abort:   gen.abort,
				inj:     inj, linkWait: linkWait,
				durable: dur != nil,
			}
			gen.proceed[i] = r.proceed
			if tr := cfg.obs.Tracer; tr != nil {
				r.tr = tr
				r.track = tr.Track("ghost", i, fmt.Sprintf("rank %d", i))
			}
			if i > 0 {
				r.topGhost = K
			}
			if i < cfg.ranks-1 {
				r.botGhost = K
			}
			r.cur = grid.New(r.owned+r.topGhost+r.botGhost, W)
			r.next = grid.New(r.cur.H(), W)
			for y := 0; y < r.owned; y++ {
				copy(r.cur.Row(r.topGhost+y), ckpts[i][y])
			}
			rs[i] = r
		}
		for i := 0; i < cfg.ranks-1; i++ {
			down := fault.NewLink[message](inj, i, i+1, 1)
			up := fault.NewLink[message](inj, i+1, i, 1)
			rs[i].sendDown, rs[i+1].recvUp = down, down
			rs[i+1].sendUp, rs[i].recvDown = up, up
		}
		gen.harvest = func(rep *Report) {
			for _, r := range rs {
				rep.Messages += r.msgs
				rep.BytesSent += r.bytes
				rep.RedundantCells += r.redundant
				rep.OwnedCells += r.ownedCells
			}
		}
		for _, r := range rs {
			gen.wg.Add(1)
			go func(r *rank) {
				defer gen.wg.Done()
				r.run(K, startRound)
			}(r)
		}
		live = rs
		return gen
	}

	rep := Report{Ranks: cfg.ranks, GhostWidth: K}
	if err := coordinate(ctx, cfg.ranks, K, cfg.maxIters, inj, hb, launch, ckpts, &rep, dur, startRound, startTopples, cfg.obs); err != nil {
		return rep, err
	}

	// Gather: copy owned rows back into the global grid.
	for _, r := range live {
		for y := 0; y < r.owned; y++ {
			copy(g.Row(r.globalTop+y), r.cur.Row(r.topGhost+y))
		}
	}
	g.ClearHalo()
	rep.Absorbed = before - g.Sum()
	rep.FaultSchedule = inj.Schedule()
	if m := cfg.obs.Metrics; m != nil {
		m.Counter("ghost.exchanges").Add(int64(rep.Exchanges))
		m.Counter("ghost.halo.messages").Add(int64(rep.Messages))
		m.Counter("ghost.halo.bytes").Add(int64(rep.BytesSent))
		m.Counter("ghost.cells.redundant").Add(int64(rep.RedundantCells))
		m.Counter("ghost.cells.owned").Add(int64(rep.OwnedCells))
	}
	return rep, nil
}

// run executes one simulated rank: rounds of K synchronous steps over
// a shrinking valid band, a report (heartbeat + checkpoint) to the
// coordinator, and the coordinator's continue verdict. An injected
// crash makes the rank go silent mid-protocol — exactly the failure
// mode the coordinator's heartbeat timeout exists to catch.
func (r *rank) run(K, startRound int) {
	H := r.cur.H()
	for round := startRound + 1; ; round++ {
		if r.inj.CrashAt(r.id, round) {
			return
		}
		// Fill (or refresh) ghost zones before the round's K steps.
		// The first exchange distributes the scattered initial state's
		// boundary rows; later ones refresh post-round state.
		exTS := r.tr.Now()
		if !r.exchange(K) {
			return // aborted, or a peer died and the link drained
		}
		if r.tr != nil {
			r.tr.Span(r.track, "exchange", exTS, r.tr.Now()-exTS,
				obs.Arg{Key: "K", Value: int64(K)})
		}
		compTS := r.tr.Now()
		roundChanges := 0
		for s := 1; s <= K; s++ {
			// Valid band shrinks by one row per step on each side that
			// has a ghost zone; sink-adjacent sides stay put.
			y0, y1 := 0, H
			if r.topGhost > 0 {
				y0 = s
			}
			if r.botGhost > 0 {
				y1 = H - s
			}
			for y := y0; y < y1; y++ {
				ch := sandpile.SyncRow(r.cur, r.next, y, 0, r.cur.W())
				if y >= r.topGhost && y < r.topGhost+r.owned {
					roundChanges += ch
					r.ownedCells += uint64(r.cur.W())
				} else {
					r.redundant += uint64(r.cur.W())
				}
			}
			r.cur, r.next = r.next, r.cur
		}
		if r.tr != nil {
			r.tr.Span(r.track, "compute", compTS, r.tr.Now()-compTS,
				obs.Arg{Key: "changes", Value: int64(roundChanges)})
		}
		// With fault injection or durability on, the report carries a
		// checkpoint of the owned rows; the coordinator installs it
		// once the whole round commits.
		var rows [][]uint32
		if r.inj != nil || r.durable {
			rows = make([][]uint32, r.owned)
			for y := range rows {
				rows[y] = append([]uint32(nil), r.cur.Row(r.topGhost+y)...)
			}
		}
		select {
		case r.reports <- roundReport{gen: r.gen, id: r.id, round: round, changes: roundChanges, rows: rows}:
		case <-r.abort:
			return
		}
		select {
		case cont := <-r.proceed:
			if !cont {
				return
			}
		case <-r.abort:
			return
		}
	}
}

// exchange sends this rank's boundary-owned rows to each neighbor and
// refills its ghost zones with what the neighbors send back. It
// returns false when the generation aborted or a receive found the
// peer dead (timeout with nothing to retransmit).
func (r *rank) exchange(K int) bool {
	W := r.cur.W()
	// K boundary rows coalesce into one flat K×W message per neighbor.
	pack := func(y0 int) message {
		buf := make([]uint32, 0, K*W)
		for k := 0; k < K; k++ {
			buf = append(buf, r.cur.Row(y0+k)...)
		}
		return message{buf: buf}
	}
	if r.sendUp != nil {
		if !r.sendUp.Send(pack(r.topGhost), r.abort) {
			return false
		}
		r.msgs++
		r.bytes += uint64(K * W * 4)
	}
	if r.sendDown != nil {
		if !r.sendDown.Send(pack(r.topGhost+r.owned-K), r.abort) {
			return false
		}
		r.msgs++
		r.bytes += uint64(K * W * 4)
	}
	if r.recvUp != nil {
		m, ok := r.recvUp.Recv(r.linkWait, r.abort)
		if !ok {
			return false
		}
		for k := 0; k < K; k++ {
			copy(r.cur.Row(k), m.buf[k*W:(k+1)*W])
		}
	}
	if r.recvDown != nil {
		m, ok := r.recvDown.Recv(r.linkWait, r.abort)
		if !ok {
			return false
		}
		for k := 0; k < K; k++ {
			copy(r.cur.Row(r.topGhost+r.owned+k), m.buf[k*W:(k+1)*W])
		}
	}
	return true
}
