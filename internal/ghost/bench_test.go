package ghost

import (
	"fmt"
	"testing"

	"repro/internal/sandpile"
)

// BenchmarkGhostWidthSweep measures the ghost-width trade-off
// end-to-end: each sub-benchmark stabilizes the same pile at a
// different K (experiment E9's timing axis).
func BenchmarkGhostWidthSweep(b *testing.B) {
	init := sandpile.Center(30000).Build(256, 256, nil)
	for _, k := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := init.Clone()
				b.StartTimer()
				if _, err := Run(g, Params{Ranks: 4, GhostWidth: k}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHaloExchange2D makes the coalesced-halo savings visible:
// allocs/op counts one buffer per message (K-row payloads are packed
// into a single contiguous buffer) instead of one per halo row, at a
// corner-carrying K where the per-row cost used to dominate.
func BenchmarkHaloExchange2D(b *testing.B) {
	init := sandpile.Center(40000).Build(128, 128, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := init.Clone()
		b.StartTimer()
		if _, err := New(g, WithProcessGrid(2, 2), WithWidth(8)).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRankScaling measures strong scaling over simulated ranks.
func BenchmarkRankScaling(b *testing.B) {
	init := sandpile.Center(30000).Build(256, 256, nil)
	for _, ranks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := init.Clone()
				b.StartTimer()
				if _, err := Run(g, Params{Ranks: ranks, GhostWidth: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
