package ghost

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/sandpile"
)

// testHB is a short heartbeat so injected-crash recovery doesn't
// stall the suite; compute per round on these grids is far below the
// derived link timeout (testHB/4).
const testHB = 300 * time.Millisecond

func faultGrid(t *testing.T) (*grid.Grid, *grid.Grid) {
	t.Helper()
	g := grid.New(48, 40)
	for y := 0; y < 48; y++ {
		for x := 0; x < 40; x++ {
			g.Set(y, x, uint32((y*31+x*17)%9))
		}
	}
	g.Set(24, 20, 5000)
	want := g.Clone()
	sandpile.StabilizeAsyncSeq(want)
	return g, want
}

func TestCrashRecoveryConvergesToFaultFreeFixedPoint(t *testing.T) {
	g, want := faultGrid(t)
	// Fault-free reference run for the committed-work accounting.
	ref := g.Clone()
	refRep, err := New(ref, WithRanks(4), WithWidth(2)).Run()
	if err != nil {
		t.Fatal(err)
	}

	// 2 of 4 ranks crash (the acceptance bound: <= N/2).
	plan := &fault.Plan{Seed: 11, Crashes: []fault.Crash{{Rank: 1, Round: 2}, {Rank: 3, Round: 4}}}
	rep, err := New(g, WithRanks(4), WithWidth(2), WithFaults(plan), WithHeartbeat(testHB)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatal("post-recovery grid differs from the fault-free fixed point")
	}
	if rep.Recoveries == 0 {
		t.Fatal("expected at least one coordinated recovery")
	}
	if rep.Topples != refRep.Topples || rep.Iterations != refRep.Iterations {
		t.Fatalf("committed work diverged: topples %d vs %d, iters %d vs %d",
			rep.Topples, refRep.Topples, rep.Iterations, refRep.Iterations)
	}
	if len(rep.FaultSchedule) == 0 {
		t.Fatal("fault schedule empty despite injected crashes")
	}
}

func TestCrashRecovery2D(t *testing.T) {
	g, want := faultGrid(t)
	plan := &fault.Plan{Seed: 5, Crashes: []fault.Crash{{Rank: 0, Round: 2}, {Rank: 3, Round: 3}}}
	rep, err := New(g, WithProcessGrid(2, 2), WithWidth(2),
		WithFaults(plan), WithHeartbeat(testHB)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatal("2D post-recovery grid differs from the fault-free fixed point")
	}
	if rep.Recoveries == 0 {
		t.Fatal("expected at least one coordinated recovery")
	}
}

func TestMessageFaultsAreTransparent(t *testing.T) {
	// Drop/dup/delay at aggressive rates: the link's retransmit +
	// dedupe machinery must make them invisible to the computation.
	g, want := faultGrid(t)
	plan := &fault.Plan{Seed: 3, Drop: 0.15, Dup: 0.1, DelayProb: 0.2, Delay: time.Millisecond}
	rep, err := New(g, WithRanks(4), WithWidth(2), WithFaults(plan), WithHeartbeat(testHB)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatal("grid differs from fixed point under message faults")
	}
	if rep.Recoveries != 0 {
		t.Fatalf("message faults triggered %d rollbacks; links should absorb them", rep.Recoveries)
	}
	if len(rep.FaultSchedule) == 0 {
		t.Fatal("no message faults fired at these rates")
	}
}

func TestMessageFaults2D(t *testing.T) {
	g, want := faultGrid(t)
	plan := &fault.Plan{Seed: 9, Drop: 0.1, Dup: 0.1}
	if _, err := New(g, WithProcessGrid(2, 2), WithWidth(2),
		WithFaults(plan), WithHeartbeat(testHB)).Run(); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatal("2D grid differs from fixed point under message faults")
	}
}

func TestFaultScheduleDeterministic(t *testing.T) {
	run := func() ([]string, *grid.Grid, Report) {
		g, _ := faultGrid(t)
		plan := &fault.Plan{
			Seed:    77,
			Crashes: []fault.Crash{{Rank: 2, Round: 3}},
			Drop:    0.1, Dup: 0.05,
		}
		rep, err := New(g, WithRanks(4), WithWidth(2), WithFaults(plan), WithHeartbeat(testHB)).Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.FaultSchedule, g, rep
	}
	sched1, g1, rep1 := run()
	sched2, g2, rep2 := run()
	if !reflect.DeepEqual(sched1, sched2) {
		t.Fatalf("same seed produced different fault schedules:\n%v\n%v", sched1, sched2)
	}
	if !g1.Equal(g2) {
		t.Fatal("same seed produced different post-recovery grids")
	}
	if rep1.Topples != rep2.Topples {
		t.Fatalf("same seed produced different topple counts: %d vs %d", rep1.Topples, rep2.Topples)
	}
}

func TestRunContextCancelled(t *testing.T) {
	g, _ := faultGrid(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New(g, WithRanks(4), WithWidth(2)).RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestDeprecatedWrappersStillWork(t *testing.T) {
	g, want := faultGrid(t)
	if _, err := Run(g, Params{Ranks: 4, GhostWidth: 2}); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatal("Run wrapper diverged from fixed point")
	}
	g2, _ := faultGrid(t)
	if _, err := Run2D(g2, Params2D{RankRows: 2, RankCols: 2, GhostWidth: 2}); err != nil {
		t.Fatal(err)
	}
	if !g2.Equal(want) {
		t.Fatal("Run2D wrapper diverged from fixed point")
	}
}

// Exactly N/2 ranks dying in the same round is the heartbeat's
// boundary case: half the fleet goes silent simultaneously, one
// generation timeout must catch both deaths, and a single coordinated
// rollback must restore a consistent cut for all four ranks.
func TestSimultaneousHalfFleetCrash(t *testing.T) {
	g, want := faultGrid(t)
	plan := &fault.Plan{Seed: 17, Crashes: []fault.Crash{
		{Rank: 1, Round: 2}, {Rank: 3, Round: 2},
	}}
	rep, err := New(g, WithRanks(4), WithWidth(2),
		WithFaults(plan), WithHeartbeat(testHB)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatal("post-recovery grid differs from the fault-free fixed point")
	}
	if rep.Recoveries == 0 {
		t.Fatal("expected a coordinated recovery")
	}
	if len(rep.FaultSchedule) < 2 {
		t.Fatalf("fault schedule %v, want both simultaneous crashes", rep.FaultSchedule)
	}
}

// The same boundary case on the 2-D block decomposition: two of four
// blocks die in one round.
func TestSimultaneousHalfFleetCrash2D(t *testing.T) {
	g, want := faultGrid(t)
	plan := &fault.Plan{Seed: 23, Crashes: []fault.Crash{
		{Rank: 0, Round: 3}, {Rank: 2, Round: 3},
	}}
	rep, err := New(g, WithProcessGrid(2, 2), WithWidth(2),
		WithFaults(plan), WithHeartbeat(testHB)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatal("2D post-recovery grid differs from the fault-free fixed point")
	}
	if rep.Recoveries == 0 {
		t.Fatal("expected a coordinated recovery")
	}
}

// A second crash landing in the catch-up right after a rollback: rank
// 1 dies at round 3 (rollback to the round-2 checkpoint, replay), then
// rank 2 dies at round 4 — the first post-recovery round to commit.
// Two coordinated recoveries, still the exact fault-free fixed point,
// and the durable checkpointer saving every round must stay consistent
// through both rollbacks.
func TestCrashDuringRollbackCatchUp(t *testing.T) {
	g, want := faultGrid(t)
	plan := &fault.Plan{Seed: 29, Crashes: []fault.Crash{
		{Rank: 1, Round: 3}, {Rank: 2, Round: 4},
	}}
	rep, err := New(g, WithRanks(4), WithWidth(2),
		WithFaults(plan), WithHeartbeat(testHB),
		WithCheckpoint(ghostCheckpointer(t, t.TempDir(), 1))).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatal("cascaded-crash grid differs from the fault-free fixed point")
	}
	if rep.Recoveries < 2 {
		t.Fatalf("Recoveries = %d, want 2 (crash, rollback, crash during catch-up)", rep.Recoveries)
	}
}
