package ghost

import (
	"testing"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/sandpile"
)

func ghostCheckpointer(t *testing.T, dir string, every int64) *ckpt.Checkpointer {
	t.Helper()
	store, err := ckpt.Open(dir, "ghost")
	if err != nil {
		t.Fatal(err)
	}
	return ckpt.NewCheckpointer(store, every, true)
}

// A distributed run cut short by MaxIters after saving durable round
// snapshots, then restarted from the same initial grid, must converge
// on the identical fixed point with identical Iterations/Topples/
// Absorbed totals.
func TestGhostKillResumeDeterminism(t *testing.T) {
	init := sandpile.Center(9000).Build(48, 40, nil)
	ref := init.Clone()
	want, err := New(ref, WithRanks(3), WithWidth(2)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if want.Iterations < 12 {
		t.Fatalf("reference too short to interrupt: %+v", want)
	}

	dir := t.TempDir()
	cut := init.Clone()
	if _, err := New(cut, WithRanks(3), WithWidth(2),
		WithMaxIters(want.Iterations/2),
		WithCheckpoint(ghostCheckpointer(t, dir, 1))).Run(); err != nil {
		t.Fatalf("interrupted segment: %v", err)
	}

	g := init.Clone()
	got, err := New(g, WithRanks(3), WithWidth(2),
		WithCheckpoint(ghostCheckpointer(t, dir, 1))).Run()
	if err != nil {
		t.Fatalf("resumed segment: %v", err)
	}
	if got.Iterations != want.Iterations || got.Topples != want.Topples || got.Absorbed != want.Absorbed {
		t.Fatalf("resumed totals iters=%d topples=%d absorbed=%d, want %d/%d/%d",
			got.Iterations, got.Topples, got.Absorbed,
			want.Iterations, want.Topples, want.Absorbed)
	}
	if !g.Equal(ref) {
		t.Fatalf("resumed fixed point differs: %v", g.Diff(ref, 5))
	}
}

// Snapshots are decomposition-independent: a strip run's snapshot
// resumes under a block decomposition (and a different rank count),
// because restore happens before carving.
func TestGhostResumeAcrossDecompositions(t *testing.T) {
	init := sandpile.Uniform(6).Build(36, 36, nil)
	want := oracle(init)

	dir := t.TempDir()
	cut := init.Clone()
	if _, err := New(cut, WithRanks(4), WithWidth(1),
		WithMaxIters(8),
		WithCheckpoint(ghostCheckpointer(t, dir, 2))).Run(); err != nil {
		t.Fatal(err)
	}

	g := init.Clone()
	if _, err := New(g, WithProcessGrid(2, 3), WithWidth(2),
		WithCheckpoint(ghostCheckpointer(t, dir, 2))).Run(); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatalf("strip→block resume: wrong fixed point: %v", g.Diff(want, 5))
	}
}

// Durable checkpoints compose with fault injection: the same -faults
// seed replays identically across a kill/resume because injected
// decisions are keyed by (seed, rank, round), and rounds are global.
func TestGhostKillResumeWithFaults(t *testing.T) {
	init := sandpile.Center(6000).Build(40, 40, nil)
	plan := &fault.Plan{Seed: 5, Crashes: []fault.Crash{{Rank: 1, Round: 4}}}

	ref := init.Clone()
	want, err := New(ref, WithRanks(3), WithWidth(2),
		WithFaults(plan), WithHeartbeat(testHB)).Run()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cut := init.Clone()
	if _, err := New(cut, WithRanks(3), WithWidth(2),
		WithFaults(plan), WithHeartbeat(testHB),
		WithMaxIters(want.Iterations/2),
		WithCheckpoint(ghostCheckpointer(t, dir, 1))).Run(); err != nil {
		t.Fatal(err)
	}

	g := init.Clone()
	got, err := New(g, WithRanks(3), WithWidth(2),
		WithFaults(plan), WithHeartbeat(testHB),
		WithCheckpoint(ghostCheckpointer(t, dir, 1))).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != want.Iterations || got.Topples != want.Topples {
		t.Fatalf("faulty resume: iters=%d topples=%d, want %d/%d",
			got.Iterations, got.Topples, want.Iterations, want.Topples)
	}
	if !g.Equal(ref) {
		t.Fatalf("faulty resume fixed point differs: %v", g.Diff(ref, 5))
	}
}

// A 2-D run resumes from its own snapshots too.
func TestGhost2DKillResume(t *testing.T) {
	init := sandpile.Center(8000).Build(36, 36, nil)
	ref := init.Clone()
	want, err := New(ref, WithProcessGrid(2, 2), WithWidth(2)).Run()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cut := init.Clone()
	if _, err := New(cut, WithProcessGrid(2, 2), WithWidth(2),
		WithMaxIters(want.Iterations/2),
		WithCheckpoint(ghostCheckpointer(t, dir, 1))).Run(); err != nil {
		t.Fatal(err)
	}

	g := init.Clone()
	got, err := New(g, WithProcessGrid(2, 2), WithWidth(2),
		WithCheckpoint(ghostCheckpointer(t, dir, 1))).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != want.Iterations || got.Topples != want.Topples || !g.Equal(ref) {
		t.Fatalf("2-D resume diverged: got iters=%d topples=%d want %d/%d",
			got.Iterations, got.Topples, want.Iterations, want.Topples)
	}
}

// A snapshot sized for a different grid is rejected with a clear
// error instead of silently corrupting the run.
func TestGhostResumeSizeMismatch(t *testing.T) {
	init := sandpile.Center(5000).Build(32, 32, nil)
	dir := t.TempDir()
	if _, err := New(init.Clone(), WithRanks(2), WithWidth(1),
		WithMaxIters(6),
		WithCheckpoint(ghostCheckpointer(t, dir, 1))).Run(); err != nil {
		t.Fatal(err)
	}
	other := sandpile.Center(5000).Build(24, 24, nil)
	if _, err := New(other, WithRanks(2), WithWidth(1),
		WithCheckpoint(ghostCheckpointer(t, dir, 1))).Run(); err == nil {
		t.Fatal("mismatched grid size resumed without error")
	}
}
