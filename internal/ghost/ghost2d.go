package ghost

// ghost2d.go generalizes the distributed sandpile from horizontal
// strips to a 2-D block decomposition — the full Ghost Cell Pattern of
// Kjolstad & Snir's paper, which the assignment cites. Blocks need
// corner data once the ghost width exceeds one (a cell K steps from
// a block corner depends on the diagonal neighbor's cells), which the
// classic two-phase exchange provides without diagonal messages:
// first east/west halo columns are exchanged over owned rows, then
// north/south halo rows are exchanged over the *full local width*,
// so the just-received E/W columns carry the diagonal neighbors'
// corners along.

import (
	"fmt"
	"sync"

	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sandpile"
)

// Params2D configures a 2-D distributed run.
type Params2D struct {
	// RankRows × RankCols is the process grid.
	RankRows, RankCols int
	// GhostWidth K: halo width per interior boundary and iterations
	// between exchanges.
	GhostWidth int
	// MaxIters aborts runaway runs; 0 means sandpile.MaxIterations.
	MaxIters int
	// Obs attaches the observability layer: per-rank exchange/compute
	// spans on the "ghost2d" track and the same ghost.* counters the
	// strip decomposition reports. The zero Sink disables it.
	Obs obs.Sink
}

// rank2d is one simulated process of the block decomposition.
type rank2d struct {
	pr, pc         int // position in the process grid
	ownH, ownW     int
	gTop, gBot     int // ghost extents per side (K or 0)
	gLeft, gRight  int
	globTop, globL int
	cur, next      *grid.Grid

	sendW, sendE, sendN, sendS chan message
	recvW, recvE, recvN, recvS chan message

	changes chan int
	proceed chan bool

	msgs      int
	bytes     uint64
	redundant uint64
	tr        *obs.Tracer // nil when tracing is off
	track     obs.TrackID
}

// Run2D stabilizes g with the 2-D block-decomposed synchronous
// automaton and writes the final configuration back into g.
func Run2D(g *grid.Grid, p Params2D) (Report, error) {
	if p.RankRows <= 0 || p.RankCols <= 0 {
		return Report{}, fmt.Errorf("ghost: invalid process grid %dx%d", p.RankRows, p.RankCols)
	}
	if p.GhostWidth <= 0 {
		return Report{}, fmt.Errorf("ghost: GhostWidth must be >= 1, got %d", p.GhostWidth)
	}
	if p.MaxIters <= 0 {
		p.MaxIters = sandpile.MaxIterations
	}
	K := p.GhostWidth
	if g.H()/p.RankRows < K || g.W()/p.RankCols < K {
		return Report{}, fmt.Errorf("ghost: blocks of %dx%d grid over %dx%d ranks smaller than K=%d",
			g.H(), g.W(), p.RankRows, p.RankCols, K)
	}

	before := g.Sum()
	R, C := p.RankRows, p.RankCols
	ranks := make([]*rank2d, R*C)

	rowOf := splitExtents(g.H(), R)
	colOf := splitExtents(g.W(), C)
	for pr := 0; pr < R; pr++ {
		for pc := 0; pc < C; pc++ {
			r := &rank2d{
				pr: pr, pc: pc,
				ownH: rowOf[pr+1] - rowOf[pr], ownW: colOf[pc+1] - colOf[pc],
				globTop: rowOf[pr], globL: colOf[pc],
				changes: make(chan int, 1),
				proceed: make(chan bool, 1),
			}
			if pr > 0 {
				r.gTop = K
			}
			if pr < R-1 {
				r.gBot = K
			}
			if pc > 0 {
				r.gLeft = K
			}
			if pc < C-1 {
				r.gRight = K
			}
			if tr := p.Obs.Tracer; tr != nil {
				r.tr = tr
				r.track = tr.Track("ghost2d", pr*C+pc, fmt.Sprintf("rank (%d,%d)", pr, pc))
			}
			r.cur = grid.New(r.ownH+r.gTop+r.gBot, r.ownW+r.gLeft+r.gRight)
			r.next = grid.New(r.cur.H(), r.cur.W())
			for y := 0; y < r.ownH; y++ {
				copy(r.cur.Row(r.gTop + y)[r.gLeft:r.gLeft+r.ownW],
					g.Row(r.globTop + y)[r.globL:r.globL+r.ownW])
			}
			ranks[pr*C+pc] = r
		}
	}
	// Wire neighbor channels.
	for pr := 0; pr < R; pr++ {
		for pc := 0; pc < C; pc++ {
			r := ranks[pr*C+pc]
			if pc < C-1 {
				east := ranks[pr*C+pc+1]
				toEast := make(chan message, 1)
				toWest := make(chan message, 1)
				r.sendE, east.recvW = toEast, toEast
				east.sendW, r.recvE = toWest, toWest
			}
			if pr < R-1 {
				south := ranks[(pr+1)*C+pc]
				toSouth := make(chan message, 1)
				toNorth := make(chan message, 1)
				r.sendS, south.recvN = toSouth, toSouth
				south.sendN, r.recvS = toNorth, toNorth
			}
		}
	}

	var wg sync.WaitGroup
	for _, r := range ranks {
		wg.Add(1)
		go func(r *rank2d) {
			defer wg.Done()
			r.run(K)
		}(r)
	}

	report := Report{Ranks: R * C, GhostWidth: K}
	iters := 0
	for {
		report.Exchanges++
		total := 0
		for _, r := range ranks {
			total += <-r.changes
		}
		iters += K
		report.Topples += uint64(total)
		cont := total != 0 && iters < p.MaxIters
		for _, r := range ranks {
			r.proceed <- cont
		}
		if !cont {
			break
		}
	}
	wg.Wait()

	for _, r := range ranks {
		for y := 0; y < r.ownH; y++ {
			copy(g.Row(r.globTop + y)[r.globL:r.globL+r.ownW],
				r.cur.Row(r.gTop + y)[r.gLeft:r.gLeft+r.ownW])
		}
		report.Messages += r.msgs
		report.BytesSent += r.bytes
		report.RedundantCells += r.redundant
		report.OwnedCells += uint64(r.ownH * r.ownW)
	}
	g.ClearHalo()
	report.Iterations = iters
	report.Absorbed = before - g.Sum()
	if m := p.Obs.Metrics; m != nil {
		m.Counter("ghost.exchanges").Add(int64(report.Exchanges))
		m.Counter("ghost.halo.messages").Add(int64(report.Messages))
		m.Counter("ghost.halo.bytes").Add(int64(report.BytesSent))
		m.Counter("ghost.cells.redundant").Add(int64(report.RedundantCells))
		m.Counter("ghost.cells.owned").Add(int64(report.OwnedCells))
	}
	return report, nil
}

// splitExtents returns n+1 boundaries splitting total cells into n
// near-equal extents, larger blocks first.
func splitExtents(total, n int) []int {
	out := make([]int, n+1)
	base, extra := total/n, total%n
	pos := 0
	for i := 0; i < n; i++ {
		out[i] = pos
		pos += base
		if i < extra {
			pos++
		}
	}
	out[n] = total
	return out
}

func (r *rank2d) run(K int) {
	H, W := r.cur.H(), r.cur.W()
	for {
		exTS := r.tr.Now()
		r.exchange(K)
		if r.tr != nil {
			r.tr.Span(r.track, "exchange", exTS, r.tr.Now()-exTS,
				obs.Arg{Key: "K", Value: int64(K)})
		}
		compTS := r.tr.Now()
		roundChanges := 0
		for s := 1; s <= K; s++ {
			y0, y1, x0, x1 := 0, H, 0, W
			if r.gTop > 0 {
				y0 = s
			}
			if r.gBot > 0 {
				y1 = H - s
			}
			if r.gLeft > 0 {
				x0 = s
			}
			if r.gRight > 0 {
				x1 = W - s
			}
			for y := y0; y < y1; y++ {
				if y >= r.gTop && y < r.gTop+r.ownH {
					// Owned row: compute the halo spans and the owned
					// span separately so owned changes are counted
					// exactly once.
					if x0 < r.gLeft {
						sandpile.SyncRow(r.cur, r.next, y, x0, r.gLeft)
						r.redundant += uint64(r.gLeft - x0)
					}
					roundChanges += sandpile.SyncRow(r.cur, r.next, y, r.gLeft, r.gLeft+r.ownW)
					if right := r.gLeft + r.ownW; x1 > right {
						sandpile.SyncRow(r.cur, r.next, y, right, x1)
						r.redundant += uint64(x1 - right)
					}
				} else {
					sandpile.SyncRow(r.cur, r.next, y, x0, x1)
					r.redundant += uint64(x1 - x0)
				}
			}
			r.cur, r.next = r.next, r.cur
		}
		if r.tr != nil {
			r.tr.Span(r.track, "compute", compTS, r.tr.Now()-compTS,
				obs.Arg{Key: "changes", Value: int64(roundChanges)})
		}
		r.changes <- roundChanges
		if !<-r.proceed {
			return
		}
	}
}

// exchange performs the two-phase halo exchange: E/W columns over
// owned rows first, then N/S rows over the full local width (carrying
// the corners).
func (r *rank2d) exchange(K int) {
	// Phase 1: east/west columns, owned rows only.
	colPayload := func(x0 int) message {
		m := message{rows: make([][]uint32, r.ownH)}
		for y := 0; y < r.ownH; y++ {
			m.rows[y] = append([]uint32(nil), r.cur.Row(r.gTop + y)[x0:x0+K]...)
		}
		return m
	}
	if r.sendW != nil {
		r.sendW <- colPayload(r.gLeft)
		r.msgs++
		r.bytes += uint64(K * r.ownH * 4)
	}
	if r.sendE != nil {
		r.sendE <- colPayload(r.gLeft + r.ownW - K)
		r.msgs++
		r.bytes += uint64(K * r.ownH * 4)
	}
	if r.recvW != nil {
		m := <-r.recvW
		for y := 0; y < r.ownH; y++ {
			copy(r.cur.Row(r.gTop + y)[0:K], m.rows[y])
		}
	}
	if r.recvE != nil {
		m := <-r.recvE
		for y := 0; y < r.ownH; y++ {
			copy(r.cur.Row(r.gTop + y)[r.gLeft+r.ownW:], m.rows[y])
		}
	}

	// Phase 2: north/south rows over the full local width, including
	// the halo columns just received — this is what fills corners.
	W := r.cur.W()
	rowPayload := func(y0 int) message {
		m := message{rows: make([][]uint32, K)}
		for k := 0; k < K; k++ {
			m.rows[k] = append([]uint32(nil), r.cur.Row(y0+k)...)
		}
		return m
	}
	if r.sendN != nil {
		r.sendN <- rowPayload(r.gTop)
		r.msgs++
		r.bytes += uint64(K * W * 4)
	}
	if r.sendS != nil {
		r.sendS <- rowPayload(r.gTop + r.ownH - K)
		r.msgs++
		r.bytes += uint64(K * W * 4)
	}
	if r.recvN != nil {
		m := <-r.recvN
		for k := 0; k < K; k++ {
			copy(r.cur.Row(k), m.rows[k])
		}
	}
	if r.recvS != nil {
		m := <-r.recvS
		for k := 0; k < K; k++ {
			copy(r.cur.Row(r.gTop+r.ownH+k), m.rows[k])
		}
	}
}
