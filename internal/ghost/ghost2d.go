package ghost

// ghost2d.go generalizes the distributed sandpile from horizontal
// strips to a 2-D block decomposition — the full Ghost Cell Pattern of
// Kjolstad & Snir's paper, which the assignment cites. Blocks need
// corner data once the ghost width exceeds one (a cell K steps from
// a block corner depends on the diagonal neighbor's cells), which the
// classic two-phase exchange provides without diagonal messages:
// first east/west halo columns are exchanged over owned rows, then
// north/south halo rows are exchanged over the *full local width*,
// so the just-received E/W columns carry the diagonal neighbors'
// corners along. Fault tolerance (rank crashes, message faults) is
// the same coordinated checkpoint rollback the strips use; see
// recover.go.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sandpile"
)

// Params2D configures a 2-D distributed run.
//
// Deprecated: prefer New with WithProcessGrid (options.go). Params2D
// remains supported as a thin equivalent.
type Params2D struct {
	// RankRows × RankCols is the process grid.
	RankRows, RankCols int
	// GhostWidth K: halo width per interior boundary and iterations
	// between exchanges.
	GhostWidth int
	// MaxIters aborts runaway runs; 0 means sandpile.MaxIterations.
	MaxIters int
	// Obs attaches the observability layer: per-rank exchange/compute
	// spans on the "ghost2d" track and the same ghost.* counters the
	// strip decomposition reports. The zero Sink disables it.
	Obs obs.Sink
}

// rank2d is one simulated process of the block decomposition,
// generation-local like rank.
type rank2d struct {
	id             int // linear rank index pr*C+pc
	gen            int
	pr, pc         int // position in the process grid
	ownH, ownW     int
	gTop, gBot     int // ghost extents per side (K or 0)
	gLeft, gRight  int
	globTop, globL int
	cur, next      *grid.Grid

	sendW, sendE, sendN, sendS *fault.Link[message]
	recvW, recvE, recvN, recvS *fault.Link[message]

	reports  chan<- roundReport
	proceed  chan bool
	abort    chan struct{}
	inj      *fault.Injector
	linkWait time.Duration
	durable  bool // attach checkpoint rows even without injection

	msgs      int
	bytes     uint64
	redundant uint64
	tr        *obs.Tracer // nil when tracing is off
	track     obs.TrackID
}

// Run2D stabilizes g with the 2-D block-decomposed synchronous
// automaton and writes the final configuration back into g.
//
// Deprecated: prefer New(g, WithProcessGrid(r, c), ...).Run(); Run2D
// remains as a thin wrapper over it.
func Run2D(g *grid.Grid, p Params2D) (Report, error) {
	return Run2DContext(context.Background(), g, p)
}

// Run2DContext is Run2D with cancellation.
func Run2DContext(ctx context.Context, g *grid.Grid, p Params2D) (Report, error) {
	return run2d(ctx, g, config{
		procRows: p.RankRows, procCols: p.RankCols,
		width: p.GhostWidth, maxIters: p.MaxIters, obs: p.Obs,
	})
}

// run2d executes the block decomposition under the shared recovery
// coordinator.
func run2d(ctx context.Context, g *grid.Grid, cfg config) (Report, error) {
	R, C := cfg.procRows, cfg.procCols
	if R <= 0 || C <= 0 {
		return Report{}, fmt.Errorf("ghost: invalid process grid %dx%d", R, C)
	}
	if cfg.width <= 0 {
		return Report{}, fmt.Errorf("ghost: GhostWidth must be >= 1, got %d", cfg.width)
	}
	if cfg.maxIters <= 0 {
		cfg.maxIters = sandpile.MaxIterations
	}
	K := cfg.width
	if g.H()/R < K || g.W()/C < K {
		return Report{}, fmt.Errorf("ghost: blocks of %dx%d grid over %dx%d ranks smaller than K=%d",
			g.H(), g.W(), R, C, K)
	}

	before := g.Sum()
	n := R * C
	// Durable resume before carving, exactly as in run1d: blocks are
	// cut from the restored committed state, and `before` keeps the
	// caller's initial sum so Absorbed matches an uninterrupted run.
	startRound, startTopples := 0, uint64(0)
	var dur *durable
	if cfg.ck != nil {
		var err error
		if startRound, startTopples, err = restoreGhost(cfg.ck, g); err != nil {
			return Report{}, err
		}
		dur = &durable{ck: cfg.ck}
	}
	inj := fault.NewInjector(cfg.faults, cfg.obs)
	hb := cfg.heartbeat
	if hb <= 0 {
		hb = 2 * time.Second
	}
	var linkWait time.Duration
	if inj != nil {
		linkWait = hb / 4
	}

	rowOf := splitExtents(g.H(), R)
	colOf := splitExtents(g.W(), C)
	// The scattered owned blocks double as the round-0 checkpoint set.
	ckpts := make([][][]uint32, n)
	for pr := 0; pr < R; pr++ {
		for pc := 0; pc < C; pc++ {
			ownH, ownW := rowOf[pr+1]-rowOf[pr], colOf[pc+1]-colOf[pc]
			rows := make([][]uint32, ownH)
			for y := range rows {
				rows[y] = append([]uint32(nil), g.Row(rowOf[pr] + y)[colOf[pc]:colOf[pc]+ownW]...)
			}
			ckpts[pr*C+pc] = rows
		}
	}
	if dur != nil {
		// Reassemble global rows from the committed blocks: each global
		// row crosses the C blocks of one process-grid row.
		h, w := g.H(), g.W()
		dur.encode = func(round int, topples uint64) []byte {
			var e ckpt.Enc
			encodeGhostHeader(&e, round, topples, h, w)
			for pr := 0; pr < R; pr++ {
				for y := 0; y < rowOf[pr+1]-rowOf[pr]; y++ {
					for pc := 0; pc < C; pc++ {
						for _, v := range ckpts[pr*C+pc][y] {
							e.U32(v)
						}
					}
				}
			}
			return e.Bytes()
		}
	}

	var live []*rank2d
	launch := func(genID, startRound int, ckpts [][][]uint32) *generation {
		gen := &generation{
			reports: make(chan roundReport, n),
			proceed: make([]chan bool, n),
			abort:   make(chan struct{}),
			wg:      &sync.WaitGroup{},
		}
		rs := make([]*rank2d, n)
		for pr := 0; pr < R; pr++ {
			for pc := 0; pc < C; pc++ {
				id := pr*C + pc
				r := &rank2d{
					id: id, gen: genID, pr: pr, pc: pc,
					ownH: rowOf[pr+1] - rowOf[pr], ownW: colOf[pc+1] - colOf[pc],
					globTop: rowOf[pr], globL: colOf[pc],
					reports: gen.reports,
					proceed: make(chan bool, 1),
					abort:   gen.abort,
					inj:     inj, linkWait: linkWait,
					durable: dur != nil,
				}
				gen.proceed[id] = r.proceed
				if pr > 0 {
					r.gTop = K
				}
				if pr < R-1 {
					r.gBot = K
				}
				if pc > 0 {
					r.gLeft = K
				}
				if pc < C-1 {
					r.gRight = K
				}
				if tr := cfg.obs.Tracer; tr != nil {
					r.tr = tr
					r.track = tr.Track("ghost2d", id, fmt.Sprintf("rank (%d,%d)", pr, pc))
				}
				r.cur = grid.New(r.ownH+r.gTop+r.gBot, r.ownW+r.gLeft+r.gRight)
				r.next = grid.New(r.cur.H(), r.cur.W())
				for y := 0; y < r.ownH; y++ {
					copy(r.cur.Row(r.gTop + y)[r.gLeft:r.gLeft+r.ownW], ckpts[id][y])
				}
				rs[id] = r
			}
		}
		// Wire neighbor links (endpoints are linear rank indices, so
		// message-fault decisions stay keyed to stable identities).
		for pr := 0; pr < R; pr++ {
			for pc := 0; pc < C; pc++ {
				id := pr*C + pc
				r := rs[id]
				if pc < C-1 {
					east := rs[id+1]
					toEast := fault.NewLink[message](inj, id, id+1, 1)
					toWest := fault.NewLink[message](inj, id+1, id, 1)
					r.sendE, east.recvW = toEast, toEast
					east.sendW, r.recvE = toWest, toWest
				}
				if pr < R-1 {
					south := rs[id+C]
					toSouth := fault.NewLink[message](inj, id, id+C, 1)
					toNorth := fault.NewLink[message](inj, id+C, id, 1)
					r.sendS, south.recvN = toSouth, toSouth
					south.sendN, r.recvS = toNorth, toNorth
				}
			}
		}
		gen.harvest = func(rep *Report) {
			for _, r := range rs {
				rep.Messages += r.msgs
				rep.BytesSent += r.bytes
				rep.RedundantCells += r.redundant
				rep.OwnedCells += uint64(r.ownH * r.ownW)
			}
		}
		for _, r := range rs {
			gen.wg.Add(1)
			go func(r *rank2d) {
				defer gen.wg.Done()
				r.run(K, startRound)
			}(r)
		}
		live = rs
		return gen
	}

	rep := Report{Ranks: n, GhostWidth: K}
	if err := coordinate(ctx, n, K, cfg.maxIters, inj, hb, launch, ckpts, &rep, dur, startRound, startTopples, cfg.obs); err != nil {
		return rep, err
	}

	for _, r := range live {
		for y := 0; y < r.ownH; y++ {
			copy(g.Row(r.globTop + y)[r.globL:r.globL+r.ownW],
				r.cur.Row(r.gTop + y)[r.gLeft:r.gLeft+r.ownW])
		}
	}
	g.ClearHalo()
	rep.Absorbed = before - g.Sum()
	rep.FaultSchedule = inj.Schedule()
	if m := cfg.obs.Metrics; m != nil {
		m.Counter("ghost.exchanges").Add(int64(rep.Exchanges))
		m.Counter("ghost.halo.messages").Add(int64(rep.Messages))
		m.Counter("ghost.halo.bytes").Add(int64(rep.BytesSent))
		m.Counter("ghost.cells.redundant").Add(int64(rep.RedundantCells))
		m.Counter("ghost.cells.owned").Add(int64(rep.OwnedCells))
	}
	return rep, nil
}

// splitExtents returns n+1 boundaries splitting total cells into n
// near-equal extents, larger blocks first.
func splitExtents(total, n int) []int {
	out := make([]int, n+1)
	base, extra := total/n, total%n
	pos := 0
	for i := 0; i < n; i++ {
		out[i] = pos
		pos += base
		if i < extra {
			pos++
		}
	}
	out[n] = total
	return out
}

func (r *rank2d) run(K, startRound int) {
	H, W := r.cur.H(), r.cur.W()
	for round := startRound + 1; ; round++ {
		if r.inj.CrashAt(r.id, round) {
			return
		}
		exTS := r.tr.Now()
		if !r.exchange(K) {
			return
		}
		if r.tr != nil {
			r.tr.Span(r.track, "exchange", exTS, r.tr.Now()-exTS,
				obs.Arg{Key: "K", Value: int64(K)})
		}
		compTS := r.tr.Now()
		roundChanges := 0
		for s := 1; s <= K; s++ {
			y0, y1, x0, x1 := 0, H, 0, W
			if r.gTop > 0 {
				y0 = s
			}
			if r.gBot > 0 {
				y1 = H - s
			}
			if r.gLeft > 0 {
				x0 = s
			}
			if r.gRight > 0 {
				x1 = W - s
			}
			for y := y0; y < y1; y++ {
				if y >= r.gTop && y < r.gTop+r.ownH {
					// Owned row: compute the halo spans and the owned
					// span separately so owned changes are counted
					// exactly once.
					if x0 < r.gLeft {
						sandpile.SyncRow(r.cur, r.next, y, x0, r.gLeft)
						r.redundant += uint64(r.gLeft - x0)
					}
					roundChanges += sandpile.SyncRow(r.cur, r.next, y, r.gLeft, r.gLeft+r.ownW)
					if right := r.gLeft + r.ownW; x1 > right {
						sandpile.SyncRow(r.cur, r.next, y, right, x1)
						r.redundant += uint64(x1 - right)
					}
				} else {
					sandpile.SyncRow(r.cur, r.next, y, x0, x1)
					r.redundant += uint64(x1 - x0)
				}
			}
			r.cur, r.next = r.next, r.cur
		}
		if r.tr != nil {
			r.tr.Span(r.track, "compute", compTS, r.tr.Now()-compTS,
				obs.Arg{Key: "changes", Value: int64(roundChanges)})
		}
		var rows [][]uint32
		if r.inj != nil || r.durable {
			rows = make([][]uint32, r.ownH)
			for y := range rows {
				rows[y] = append([]uint32(nil), r.cur.Row(r.gTop + y)[r.gLeft:r.gLeft+r.ownW]...)
			}
		}
		select {
		case r.reports <- roundReport{gen: r.gen, id: r.id, round: round, changes: roundChanges, rows: rows}:
		case <-r.abort:
			return
		}
		select {
		case cont := <-r.proceed:
			if !cont {
				return
			}
		case <-r.abort:
			return
		}
	}
}

// exchange performs the two-phase halo exchange: E/W columns over
// owned rows first, then N/S rows over the full local width (carrying
// the corners). Returns false on abort or peer death.
func (r *rank2d) exchange(K int) bool {
	// Phase 1: east/west columns, owned rows only, coalesced into one
	// flat ownH×K message per neighbor.
	colPayload := func(x0 int) message {
		buf := make([]uint32, 0, r.ownH*K)
		for y := 0; y < r.ownH; y++ {
			buf = append(buf, r.cur.Row(r.gTop + y)[x0:x0+K]...)
		}
		return message{buf: buf}
	}
	if r.sendW != nil {
		if !r.sendW.Send(colPayload(r.gLeft), r.abort) {
			return false
		}
		r.msgs++
		r.bytes += uint64(K * r.ownH * 4)
	}
	if r.sendE != nil {
		if !r.sendE.Send(colPayload(r.gLeft+r.ownW-K), r.abort) {
			return false
		}
		r.msgs++
		r.bytes += uint64(K * r.ownH * 4)
	}
	if r.recvW != nil {
		m, ok := r.recvW.Recv(r.linkWait, r.abort)
		if !ok {
			return false
		}
		for y := 0; y < r.ownH; y++ {
			copy(r.cur.Row(r.gTop + y)[0:K], m.buf[y*K:(y+1)*K])
		}
	}
	if r.recvE != nil {
		m, ok := r.recvE.Recv(r.linkWait, r.abort)
		if !ok {
			return false
		}
		for y := 0; y < r.ownH; y++ {
			copy(r.cur.Row(r.gTop + y)[r.gLeft+r.ownW:], m.buf[y*K:(y+1)*K])
		}
	}

	// Phase 2: north/south rows over the full local width, including
	// the halo columns just received — this is what fills corners.
	// One flat K×W message per neighbor.
	W := r.cur.W()
	rowPayload := func(y0 int) message {
		buf := make([]uint32, 0, K*W)
		for k := 0; k < K; k++ {
			buf = append(buf, r.cur.Row(y0+k)...)
		}
		return message{buf: buf}
	}
	if r.sendN != nil {
		if !r.sendN.Send(rowPayload(r.gTop), r.abort) {
			return false
		}
		r.msgs++
		r.bytes += uint64(K * W * 4)
	}
	if r.sendS != nil {
		if !r.sendS.Send(rowPayload(r.gTop+r.ownH-K), r.abort) {
			return false
		}
		r.msgs++
		r.bytes += uint64(K * W * 4)
	}
	if r.recvN != nil {
		m, ok := r.recvN.Recv(r.linkWait, r.abort)
		if !ok {
			return false
		}
		for k := 0; k < K; k++ {
			copy(r.cur.Row(k), m.buf[k*W:(k+1)*W])
		}
	}
	if r.recvS != nil {
		m, ok := r.recvS.Recv(r.linkWait, r.abort)
		if !ok {
			return false
		}
		for k := 0; k < K; k++ {
			copy(r.cur.Row(r.gTop+r.ownH+k), m.buf[k*W:(k+1)*W])
		}
	}
	return true
}
