package ghost

// fleet.go runs the distributed sandpile over real process boundaries:
// the goroutine ranks of ghost.go/ghost2d.go become fleet workers
// connected through internal/net, so a SIGKILL is a real lost peer
// detected by a heartbeat lease rather than a simulated crash.
//
// The design keeps workers stateless per round, which is what makes
// recovery trivial and exact. The coordinator owns the committed
// global grid; every round message carries a rank's owned block plus
// its ghost bands carved from that committed state, and the worker
// answers with the block's post-round cells. A worker that dies
// mid-round simply never reports; the supervisor respawns it, the
// rejoin handshake re-delivers the same round message, and the
// automaton's determinism makes the re-execution byte-identical —
// coordinated rollback degenerates to re-dispatch. A rank that stays
// dead past the respawn budget is declared lost and its block is
// computed by the coordinator itself: the run degrades to fewer
// processes, never to a wrong answer.

import (
	"context"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/grid"
	pnet "repro/internal/net"
	"repro/internal/obs"
	"repro/internal/sandpile"
)

// GhostProto names the fleet wire protocol version.
const GhostProto = "ghost/1"

// Fleet application frame types.
const (
	// msgRound (coordinator -> worker): one round of work — the rank's
	// block geometry, the round number, the owned cells, and the ghost
	// bands, all carved from the committed global state. Geometry rides
	// in every round (28 bytes) so a freshly rejoined worker needs no
	// separate setup message and no message ordering is load-bearing.
	msgRound uint8 = pnet.FrameApp + iota
	// msgReport (worker -> coordinator): the round's result — change
	// count, redundant-cell count, and the post-round owned cells.
	msgReport
	// msgStop (coordinator -> worker): the run is over; exit cleanly.
	msgStop
)

// geom is the per-rank block geometry both sides compute messages from.
type geom struct {
	K          int
	ownH, ownW int
	gTop, gBot int
	gLeft, gRh int
}

func (ge geom) localH() int { return ge.gTop + ge.ownH + ge.gBot }
func (ge geom) localW() int { return ge.gLeft + ge.ownW + ge.gRh }

// encodeRound carves rank ge's round payload out of the committed
// global grid: geometry, round number, owned block, then top/bottom
// bands over the full local width (they carry the corners), then
// left/right columns over owned rows — always in-range because a band
// only exists where a neighbor block does.
func encodeRound(g *grid.Grid, ge geom, globTop, globL, round int) []byte {
	var e ckpt.Enc
	for _, v := range []int{ge.K, ge.ownH, ge.ownW, ge.gTop, ge.gBot, ge.gLeft, ge.gRh} {
		e.U32(uint32(v))
	}
	e.U64(uint64(round))
	put := func(y0, y1, x0, x1 int) {
		for y := y0; y < y1; y++ {
			row := g.Row(y)
			for x := x0; x < x1; x++ {
				e.U32(row[x])
			}
		}
	}
	put(globTop, globTop+ge.ownH, globL, globL+ge.ownW)
	bx0, bx1 := globL-ge.gLeft, globL+ge.ownW+ge.gRh
	put(globTop-ge.gTop, globTop, bx0, bx1)
	put(globTop+ge.ownH, globTop+ge.ownH+ge.gBot, bx0, bx1)
	put(globTop, globTop+ge.ownH, bx0, globL)
	put(globTop, globTop+ge.ownH, globL+ge.ownW, bx1)
	return e.Bytes()
}

// decodeRound rebuilds the geometry and the rank-local grid (owned
// block centered in its ghost frame) from a round payload.
func decodeRound(p []byte) (round int, ge geom, local *grid.Grid, err error) {
	d := ckpt.NewDec(p)
	for _, v := range []*int{&ge.K, &ge.ownH, &ge.ownW, &ge.gTop, &ge.gBot, &ge.gLeft, &ge.gRh} {
		*v = int(d.U32())
	}
	if d.Err() != nil || ge.K <= 0 || ge.ownH <= 0 || ge.ownW <= 0 {
		return 0, geom{}, nil, fmt.Errorf("ghost: malformed round geometry")
	}
	round = int(d.U64())
	local = grid.New(ge.localH(), ge.localW())
	get := func(y0, y1, x0, x1 int) {
		for y := y0; y < y1; y++ {
			row := local.Row(y)
			for x := x0; x < x1; x++ {
				row[x] = d.U32()
			}
		}
	}
	get(ge.gTop, ge.gTop+ge.ownH, ge.gLeft, ge.gLeft+ge.ownW)
	get(0, ge.gTop, 0, ge.localW())
	get(ge.gTop+ge.ownH, ge.localH(), 0, ge.localW())
	get(ge.gTop, ge.gTop+ge.ownH, 0, ge.gLeft)
	get(ge.gTop, ge.gTop+ge.ownH, ge.gLeft+ge.ownW, ge.localW())
	if d.Err() != nil {
		return 0, geom{}, nil, fmt.Errorf("ghost: malformed round message")
	}
	return round, ge, local, nil
}

func encodeReport(round, changes int, redundant uint64, local *grid.Grid, ge geom) []byte {
	var e ckpt.Enc
	e.U64(uint64(round))
	e.U64(uint64(changes))
	e.U64(redundant)
	for y := 0; y < ge.ownH; y++ {
		row := local.Row(ge.gTop + y)
		for x := 0; x < ge.ownW; x++ {
			e.U32(row[ge.gLeft+x])
		}
	}
	return e.Bytes()
}

func decodeReport(p []byte, ge geom) (round, changes int, redundant uint64, cells []uint32, err error) {
	d := ckpt.NewDec(p)
	round = int(d.U64())
	changes = int(d.U64())
	redundant = d.U64()
	cells = make([]uint32, ge.ownH*ge.ownW)
	for i := range cells {
		cells[i] = d.U32()
	}
	if d.Err() != nil {
		return 0, 0, 0, nil, fmt.Errorf("ghost: malformed report message")
	}
	return round, changes, redundant, cells, nil
}

// computeBlock runs K synchronous steps over a rank-local grid with
// the same shrinking-valid-band rule as rank2d.run (which the 1-D
// strip decomposition is the gLeft=gRight=0 special case of). It
// returns the owned-region change count and the redundant ghost-band
// cell count; the final state ends up in the returned grid.
func computeBlock(local *grid.Grid, ge geom) (changes int, redundant uint64, final *grid.Grid) {
	cur, next := local, grid.New(local.H(), local.W())
	H, W := cur.H(), cur.W()
	for s := 1; s <= ge.K; s++ {
		y0, y1, x0, x1 := 0, H, 0, W
		if ge.gTop > 0 {
			y0 = s
		}
		if ge.gBot > 0 {
			y1 = H - s
		}
		if ge.gLeft > 0 {
			x0 = s
		}
		if ge.gRh > 0 {
			x1 = W - s
		}
		for y := y0; y < y1; y++ {
			if y >= ge.gTop && y < ge.gTop+ge.ownH {
				if x0 < ge.gLeft {
					sandpile.SyncRow(cur, next, y, x0, ge.gLeft)
					redundant += uint64(ge.gLeft - x0)
				}
				changes += sandpile.SyncRow(cur, next, y, ge.gLeft, ge.gLeft+ge.ownW)
				if right := ge.gLeft + ge.ownW; x1 > right {
					sandpile.SyncRow(cur, next, y, right, x1)
					redundant += uint64(x1 - right)
				}
			} else {
				sandpile.SyncRow(cur, next, y, x0, x1)
				redundant += uint64(x1 - x0)
			}
		}
		cur, next = next, cur
	}
	return changes, redundant, cur
}

// FleetWorker joins the fleet at cfg.Join and serves ghost rounds
// until the coordinator sends stop. It is the -worker entry point for
// fleet processes; cfg.Proto defaults to GhostProto.
func FleetWorker(ctx context.Context, cfg pnet.WorkerConfig) error {
	if cfg.Proto == "" {
		cfg.Proto = GhostProto
	}
	return pnet.RunWorker(ctx, cfg, func(m pnet.Msg, send func(pnet.Msg) error) error {
		switch m.Type {
		case msgRound:
			round, ge, local, err := decodeRound(m.Payload)
			if err != nil {
				return err
			}
			changes, redundant, final := computeBlock(local, ge)
			return send(pnet.Msg{Type: msgReport,
				Payload: encodeReport(round, changes, redundant, final, ge)})
		case msgStop:
			return pnet.ErrWorkerDone
		default:
			return fmt.Errorf("ghost: unexpected frame type %d", m.Type)
		}
	})
}

// runFleet drives the decomposition over a worker fleet. The caller's
// grid g is the committed global state throughout; on return it holds
// the fixed point, exactly as the in-process paths leave it.
func runFleet(ctx context.Context, g *grid.Grid, cfg config) (Report, error) {
	R, C := cfg.procRows, cfg.procCols
	if R <= 0 || C <= 0 {
		if cfg.ranks <= 0 {
			return Report{}, fmt.Errorf("ghost: fleet needs WithRanks or WithProcessGrid")
		}
		R, C = cfg.ranks, 1
	}
	if cfg.width <= 0 {
		return Report{}, fmt.Errorf("ghost: GhostWidth must be >= 1, got %d", cfg.width)
	}
	if cfg.maxIters <= 0 {
		cfg.maxIters = sandpile.MaxIterations
	}
	if cfg.faults != nil {
		return Report{}, fmt.Errorf("ghost: fleet mode injects no simulated faults; kill the worker processes instead")
	}
	K := cfg.width
	if (R > 1 && g.H()/R < K) || (C > 1 && g.W()/C < K) {
		return Report{}, fmt.Errorf("ghost: blocks of %dx%d grid over %dx%d ranks smaller than K=%d",
			g.H(), g.W(), R, C, K)
	}
	n := R * C

	before := g.Sum()
	startRound, startTopples := 0, uint64(0)
	var dur *durable
	if cfg.ck != nil {
		var err error
		if startRound, startTopples, err = restoreGhost(cfg.ck, g); err != nil {
			return Report{}, err
		}
		h, w := g.H(), g.W()
		dur = &durable{ck: cfg.ck, encode: func(round int, topples uint64) []byte {
			var e ckpt.Enc
			encodeGhostHeader(&e, round, topples, h, w)
			for y := 0; y < h; y++ {
				for _, v := range g.Row(y) {
					e.U32(v)
				}
			}
			return e.Bytes()
		}}
	}

	rowOf := splitExtents(g.H(), R)
	colOf := splitExtents(g.W(), C)
	geoms := make([]geom, n)
	tops := make([]int, n)
	lefts := make([]int, n)
	for pr := 0; pr < R; pr++ {
		for pc := 0; pc < C; pc++ {
			id := pr*C + pc
			ge := geom{K: K,
				ownH: rowOf[pr+1] - rowOf[pr], ownW: colOf[pc+1] - colOf[pc]}
			if pr > 0 {
				ge.gTop = K
			}
			if pr < R-1 {
				ge.gBot = K
			}
			if pc > 0 {
				ge.gLeft = K
			}
			if pc < C-1 {
				ge.gRh = K
			}
			geoms[id] = ge
			tops[id] = rowOf[pr]
			lefts[id] = colOf[pc]
		}
	}

	fc := *cfg.fleet
	fc.Workers = n
	fc.Proto = GhostProto
	if !fc.Obs.Enabled() {
		fc.Obs = cfg.obs
	}
	co, err := pnet.NewCoordinator(fc)
	if err != nil {
		return Report{}, err
	}
	defer co.Close()

	rep := Report{Ranks: n, GhostWidth: K}
	committed, topples := startRound, startTopples
	lost := make([]bool, n)

	err = func() error {
		for {
			round := committed + 1
			rep.Exchanges++
			total := 0
			seen := make([]bool, n)
			cells := make([][]uint32, n)
			need := n

			record := func(id, changes int, redundant uint64, c []uint32) {
				seen[id] = true
				cells[id] = c
				total += changes
				rep.RedundantCells += redundant
				// K steps per round, each over the whole owned block — the
				// same per-step accounting the strip decomposition reports.
				rep.OwnedCells += uint64(geoms[id].K * geoms[id].ownH * geoms[id].ownW)
				need--
			}
			local := func(id int) {
				_, _, blk, err := decodeRound(encodeRound(g, geoms[id], tops[id], lefts[id], round))
				if err != nil {
					panic(err) // encode/decode are inverses by construction
				}
				changes, redundant, final := computeBlock(blk, geoms[id])
				c := make([]uint32, 0, geoms[id].ownH*geoms[id].ownW)
				for y := 0; y < geoms[id].ownH; y++ {
					c = append(c, final.Row(geoms[id].gTop+y)[geoms[id].gLeft:geoms[id].gLeft+geoms[id].ownW]...)
				}
				record(id, changes, redundant, c)
			}
			dispatch := func(id int) {
				if seen[id] {
					return
				}
				if lost[id] {
					local(id)
					return
				}
				p := encodeRound(g, geoms[id], tops[id], lefts[id], round)
				if co.Send(id, pnet.Msg{Type: msgRound, Payload: p}) != nil {
					return // re-dispatched on the rank's next PeerJoined
				}
				rep.Messages++
				rep.BytesSent += uint64(len(p))
			}
			for id := 0; id < n; id++ {
				dispatch(id)
			}
			for need > 0 {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case ev, ok := <-co.Events():
					if !ok {
						return fmt.Errorf("ghost: fleet coordinator closed")
					}
					switch ev.Kind {
					case pnet.PeerJoined:
						dispatch(ev.Rank)
					case pnet.PeerDead:
						// The worker died mid-round; the supervisor (or the
						// worker's own reconnect loop) brings it back, and the
						// rejoin re-dispatch replays the round exactly.
						rep.Recoveries++
						if m := cfg.obs.Metrics; m != nil {
							m.Counter("fault.recoveries").Inc()
						}
						cfg.obs.Log.Event(obs.LevelWarn, "ghost", "fleet rank died",
							obs.Arg{Key: "rank", Value: int64(ev.Rank)},
							obs.Arg{Key: "round", Value: int64(round)})
					case pnet.PeerLost:
						lost[ev.Rank] = true
						cfg.obs.Log.Event(obs.LevelError, "ghost", "fleet rank lost; computing its block locally",
							obs.Arg{Key: "rank", Value: int64(ev.Rank)})
						if !seen[ev.Rank] {
							local(ev.Rank)
						}
					case pnet.PeerMsg:
						if ev.Msg.Type != msgReport {
							continue
						}
						r, changes, redundant, c, err := decodeReport(ev.Msg.Payload, geoms[ev.Rank])
						if err != nil {
							return err
						}
						rep.Messages++
						rep.BytesSent += uint64(len(ev.Msg.Payload))
						if r != round || seen[ev.Rank] {
							continue // duplicate after a redispatch race: idempotent
						}
						record(ev.Rank, changes, redundant, c)
					}
				}
			}

			// Commit: install every block's post-round cells into the
			// global grid; the committed state is globally consistent.
			for id := 0; id < n; id++ {
				ge := geoms[id]
				for y := 0; y < ge.ownH; y++ {
					copy(g.Row(tops[id]+y)[lefts[id]:lefts[id]+ge.ownW], cells[id][y*ge.ownW:(y+1)*ge.ownW])
				}
			}
			committed = round
			topples += uint64(total)
			cfg.obs.Progress.Update("ghost",
				obs.F("round", float64(round)),
				obs.F("changes", float64(total)),
				obs.F("topples", float64(topples)),
				obs.F("recoveries", float64(rep.Recoveries)))
			cont := total != 0 && round*K < cfg.maxIters
			if !cont {
				return nil
			}
			if err := dur.save(round, topples); err != nil {
				return fmt.Errorf("ghost: checkpoint: %w", err)
			}
		}
	}()
	if err != nil {
		return rep, err
	}
	for id := 0; id < n; id++ {
		co.Send(id, pnet.Msg{Type: msgStop}) // best effort
	}
	rep.Iterations = committed * K
	rep.Topples = topples
	g.ClearHalo()
	rep.Absorbed = before - g.Sum()
	if m := cfg.obs.Metrics; m != nil {
		m.Counter("ghost.exchanges").Add(int64(rep.Exchanges))
		m.Counter("ghost.halo.messages").Add(int64(rep.Messages))
		m.Counter("ghost.halo.bytes").Add(int64(rep.BytesSent))
		m.Counter("ghost.cells.redundant").Add(int64(rep.RedundantCells))
		m.Counter("ghost.cells.owned").Add(int64(rep.OwnedCells))
	}
	return rep, nil
}
