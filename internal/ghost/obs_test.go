package ghost

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/obs"
)

func centerLoaded(h, w int, v uint32) *grid.Grid {
	g := grid.New(h, w)
	g.Set(h/2, w/2, v)
	return g
}

func TestRunReportsObs(t *testing.T) {
	sink := obs.Sink{Metrics: obs.NewRegistry(), Tracer: obs.NewTracer(nil)}
	g := centerLoaded(32, 32, 4096)
	rep, err := Run(g, Params{Ranks: 2, GhostWidth: 2, Obs: sink})
	if err != nil {
		t.Fatal(err)
	}
	s := sink.Metrics.Snapshot()
	if s.Counters["ghost.halo.messages"] != int64(rep.Messages) || rep.Messages == 0 {
		t.Fatalf("halo messages counter = %d, report = %d",
			s.Counters["ghost.halo.messages"], rep.Messages)
	}
	if s.Counters["ghost.halo.bytes"] != int64(rep.BytesSent) {
		t.Fatalf("halo bytes counter = %d, report = %d",
			s.Counters["ghost.halo.bytes"], rep.BytesSent)
	}
	if s.Counters["ghost.cells.redundant"] != int64(rep.RedundantCells) {
		t.Fatalf("redundant counter = %d, report = %d",
			s.Counters["ghost.cells.redundant"], rep.RedundantCells)
	}
	// Both ranks produced exchange and compute spans on the ghost track.
	kinds := map[int]map[string]bool{}
	for _, sp := range sink.Tracer.Spans() {
		if sink.Tracer.ProcessName(sp.Track.PID) != "ghost" {
			continue
		}
		if kinds[sp.Track.TID] == nil {
			kinds[sp.Track.TID] = map[string]bool{}
		}
		kinds[sp.Track.TID][sp.Name] = true
	}
	if len(kinds) != 2 {
		t.Fatalf("spans cover %d ranks, want 2: %v", len(kinds), kinds)
	}
	for tid, k := range kinds {
		if !k["exchange"] || !k["compute"] {
			t.Fatalf("rank %d missing span kinds: %v", tid, k)
		}
	}
}

func TestRun2DReportsObs(t *testing.T) {
	sink := obs.Sink{Metrics: obs.NewRegistry(), Tracer: obs.NewTracer(nil)}
	g := centerLoaded(32, 32, 4096)
	rep, err := New(g, WithProcessGrid(2, 2), WithWidth(2), WithObs(sink)).Run()
	if err != nil {
		t.Fatal(err)
	}
	s := sink.Metrics.Snapshot()
	if s.Counters["ghost.halo.messages"] != int64(rep.Messages) || rep.Messages == 0 {
		t.Fatalf("halo messages counter = %d, report = %d",
			s.Counters["ghost.halo.messages"], rep.Messages)
	}
	ranks := map[int]bool{}
	for _, sp := range sink.Tracer.Spans() {
		if sink.Tracer.ProcessName(sp.Track.PID) == "ghost2d" {
			ranks[sp.Track.TID] = true
		}
	}
	if len(ranks) != 4 {
		t.Fatalf("spans cover %d ranks, want 4", len(ranks))
	}
}
