package ghost

// ckpt.go adds durable checkpoint/restart to the distributed runs.
// The coordinator already makes every committed round's checkpoint set
// globally consistent (recover.go); this file persists that set
// through internal/ckpt at a configurable round cadence, and restores
// the newest valid snapshot into the global grid before the strips or
// blocks are carved — so a killed process resumes from the last
// committed round instead of round zero, under either decomposition.
//
// The snapshot is decomposition-independent: it stores the committed
// global cells plus the committed round and cumulative topples. A
// snapshot written by a 4-rank strip run resumes under a 2x3 block
// run, because carving happens after restore. Rounds are global (a
// resumed generation starts at committed+1), so MaxIters needs no
// adjustment, and fault plans replay exactly: injected crash/message
// decisions are keyed by (seed, rank, round), not wall clock.
//
// Like the engine, the coordinator never saves a round that ends the
// run (zero changes or budget exhausted) — resuming from such a round
// would replay one extra round and skew the iteration count.

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/grid"
)

// ghostPayload tags distributed-run snapshots inside the ckpt frame.
const ghostPayload uint32 = 2

// durable carries the checkpointer plus the decomposition's encoder
// (built by run1d/run2d over their carved checkpoint sets). nil means
// durability is off.
type durable struct {
	ck     *ckpt.Checkpointer
	encode func(round int, topples uint64) []byte
}

// save persists the committed round when the cadence is due. Safe on
// a nil receiver.
func (d *durable) save(round int, topples uint64) error {
	if d == nil || !d.ck.Due(int64(round)) {
		return nil
	}
	return d.ck.Save(uint64(round), d.encode(round, topples))
}

// encodeGhostHeader writes the fixed snapshot prefix; the caller
// appends the h*w global cells in row-major order.
func encodeGhostHeader(e *ckpt.Enc, round int, topples uint64, h, w int) {
	e.U32(ghostPayload)
	e.U64(uint64(round))
	e.U64(topples)
	e.U32(uint32(h))
	e.U32(uint32(w))
}

// restoreGhost loads the newest valid snapshot into g and returns the
// committed round and topple count it holds. A checkpointer that is
// not resuming (or an empty store) returns round 0 with g untouched.
func restoreGhost(ck *ckpt.Checkpointer, g *grid.Grid) (round int, topples uint64, err error) {
	epoch, payload, ok, err := ck.Load()
	if err != nil || !ok {
		return 0, 0, err
	}
	dec := ckpt.NewDec(payload)
	if tag := dec.U32(); tag != ghostPayload {
		return 0, 0, fmt.Errorf("ghost: snapshot has payload tag %d, want %d", tag, ghostPayload)
	}
	r := dec.U64()
	topples = dec.U64()
	h, w := int(dec.U32()), int(dec.U32())
	if h != g.H() || w != g.W() {
		return 0, 0, fmt.Errorf("ghost: snapshot is %dx%d but the run grid is %dx%d (resume needs the same size)",
			h, w, g.H(), g.W())
	}
	for y := 0; y < h; y++ {
		row := g.Row(y)
		for x := 0; x < w; x++ {
			row[x] = dec.U32()
		}
	}
	if err := dec.Err(); err != nil {
		return 0, 0, fmt.Errorf("ghost: snapshot epoch %d: %w", epoch, err)
	}
	if r != epoch {
		return 0, 0, fmt.Errorf("ghost: snapshot epoch %d holds round %d", epoch, r)
	}
	g.ClearHalo()
	return int(r), topples, nil
}
