package ghost

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/sandpile"
)

func oracle(g *grid.Grid) *grid.Grid {
	o := g.Clone()
	sandpile.StabilizeAsyncSeq(o)
	return o
}

func TestSingleRankMatchesOracle(t *testing.T) {
	g := sandpile.Uniform(4).Build(32, 32, nil)
	want := oracle(g)
	rep, err := Run(g, Params{Ranks: 1, GhostWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatalf("fixed point differs: %v", g.Diff(want, 5))
	}
	if rep.Messages != 0 || rep.BytesSent != 0 {
		t.Fatalf("single rank sent messages: %+v", rep)
	}
}

func TestMultiRankMatchesOracleAcrossWidths(t *testing.T) {
	init := sandpile.Random(8).Build(64, 48, rand.New(rand.NewSource(4)))
	want := oracle(init)
	for _, ranks := range []int{2, 3, 4, 8} {
		for _, k := range []int{1, 2, 4, 8} {
			g := init.Clone()
			rep, err := Run(g, Params{Ranks: ranks, GhostWidth: k})
			if err != nil {
				t.Fatalf("ranks=%d k=%d: %v", ranks, k, err)
			}
			if !g.Equal(want) {
				t.Fatalf("ranks=%d k=%d: wrong fixed point: %v", ranks, k, g.Diff(want, 5))
			}
			if !sandpile.Stable(g) {
				t.Fatalf("ranks=%d k=%d: unstable result", ranks, k)
			}
			if rep.Absorbed+g.Sum() != init.Sum() {
				t.Fatalf("ranks=%d k=%d: grain accounting broken: %+v", ranks, k, rep)
			}
		}
	}
}

func TestWiderGhostMeansFewerMessagesMoreRedundancy(t *testing.T) {
	init := sandpile.Center(20000).Build(96, 96, nil)
	var prev *Report
	for _, k := range []int{1, 2, 4, 8} {
		g := init.Clone()
		rep, err := Run(g, Params{Ranks: 4, GhostWidth: k})
		if err != nil {
			t.Fatal(err)
		}
		if k > 1 {
			if rep.Messages >= prev.Messages {
				t.Fatalf("K=%d messages=%d not fewer than K=%d messages=%d",
					k, rep.Messages, k/2, prev.Messages)
			}
			if rep.RedundantCells <= prev.RedundantCells {
				t.Fatalf("K=%d redundant=%d not more than K=%d redundant=%d",
					k, rep.RedundantCells, k/2, prev.RedundantCells)
			}
		}
		if k == 1 && rep.RedundantCells != 0 {
			// With K=1 the ghost row is read but never recomputed:
			// the trade-off starts at zero redundancy.
			t.Fatalf("K=1 should have no redundant compute, got %d", rep.RedundantCells)
		}
		prev = &rep
	}
}

func TestMessageAccounting(t *testing.T) {
	g := sandpile.Uniform(4).Build(40, 40, nil)
	rep, err := Run(g, Params{Ranks: 4, GhostWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 3 interior boundaries, 2 messages each per exchange.
	if want := rep.Exchanges * 6; rep.Messages != want {
		t.Fatalf("messages = %d, want %d (%d exchanges)", rep.Messages, want, rep.Exchanges)
	}
	// Each message carries K rows of W uint32 cells.
	if want := uint64(rep.Messages) * 2 * 40 * 4; rep.BytesSent != want {
		t.Fatalf("bytes = %d, want %d", rep.BytesSent, want)
	}
}

func TestIterationsRoundedUpToK(t *testing.T) {
	init := sandpile.Random(6).Build(48, 32, rand.New(rand.NewSource(7)))
	seq := init.Clone()
	seqRes := sandpile.StabilizeSyncSeq(seq)
	for _, k := range []int{1, 3, 5} {
		g := init.Clone()
		rep, err := Run(g, Params{Ranks: 2, GhostWidth: k})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Iterations%k != 0 {
			t.Fatalf("K=%d iterations=%d not a multiple of K", k, rep.Iterations)
		}
		// The last changing step is seq-1; the run stops after the
		// first fully quiet round, i.e. at most 2K-2 steps later.
		if rep.Iterations < seqRes.Iterations-1 || rep.Iterations > seqRes.Iterations+2*k-2 {
			t.Fatalf("K=%d iterations=%d inconsistent with sequential %d",
				k, rep.Iterations, seqRes.Iterations)
		}
	}
}

func TestUnevenStripDivision(t *testing.T) {
	// 50 rows over 3 ranks: 17/17/16.
	init := sandpile.Random(8).Build(50, 30, rand.New(rand.NewSource(9)))
	want := oracle(init)
	g := init.Clone()
	if _, err := Run(g, Params{Ranks: 3, GhostWidth: 2}); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatalf("uneven strips broke the fixed point: %v", g.Diff(want, 5))
	}
}

func TestParameterValidation(t *testing.T) {
	g := grid.New(16, 16)
	if _, err := Run(g, Params{Ranks: 0, GhostWidth: 1}); err == nil {
		t.Fatal("Ranks=0 accepted")
	}
	if _, err := Run(g, Params{Ranks: 2, GhostWidth: 0}); err == nil {
		t.Fatal("GhostWidth=0 accepted")
	}
	// 16 rows over 8 ranks = 2 rows each; K=4 > 2 must be rejected.
	if _, err := Run(g, Params{Ranks: 8, GhostWidth: 4}); err == nil {
		t.Fatal("GhostWidth larger than strip accepted")
	}
}

func TestMaxItersAborts(t *testing.T) {
	g := sandpile.Center(200000).Build(64, 64, nil)
	rep, err := Run(g, Params{Ranks: 2, GhostWidth: 2, MaxIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations > 10+2 {
		t.Fatalf("MaxIters not honored: %d", rep.Iterations)
	}
	if sandpile.Stable(g) {
		t.Fatal("cannot be stable that fast")
	}
}

func TestQuickGhostAbelian(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, w := 16+rng.Intn(48), 8+rng.Intn(40)
		init := sandpile.Random(10).Build(h, w, rng)
		want := oracle(init)
		ranks := 1 + rng.Intn(4)
		maxK := h / ranks
		if maxK > 6 {
			maxK = 6
		}
		k := 1 + rng.Intn(maxK)
		g := init.Clone()
		if _, err := Run(g, Params{Ranks: ranks, GhostWidth: k}); err != nil {
			return false
		}
		return g.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReportString(t *testing.T) {
	g := sandpile.Uniform(4).Build(16, 16, nil)
	rep, err := Run(g, Params{Ranks: 2, GhostWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}
