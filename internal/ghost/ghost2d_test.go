package ghost

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/sandpile"
)

func TestRun2DSingleRankMatchesOracle(t *testing.T) {
	g := sandpile.Uniform(4).Build(24, 24, nil)
	want := oracle(g)
	rep, err := New(g, WithProcessGrid(1, 1), WithWidth(2)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatalf("fixed point differs: %v", g.Diff(want, 5))
	}
	if rep.Messages != 0 {
		t.Fatalf("single rank sent %d messages", rep.Messages)
	}
}

func TestRun2DMatchesOracleAcrossGrids(t *testing.T) {
	init := sandpile.Random(8).Build(60, 52, rand.New(rand.NewSource(14)))
	want := oracle(init)
	for _, pg := range []struct{ r, c int }{{1, 2}, {2, 1}, {2, 2}, {3, 3}, {2, 4}} {
		for _, k := range []int{1, 2, 4} {
			g := init.Clone()
			rep, err := New(g, WithProcessGrid(pg.r, pg.c), WithWidth(k)).Run()
			if err != nil {
				t.Fatalf("%dx%d K=%d: %v", pg.r, pg.c, k, err)
			}
			if !g.Equal(want) {
				t.Fatalf("%dx%d K=%d: wrong fixed point: %v", pg.r, pg.c, k, g.Diff(want, 5))
			}
			if rep.Absorbed+g.Sum() != init.Sum() {
				t.Fatalf("%dx%d K=%d: grain accounting broken", pg.r, pg.c, k)
			}
		}
	}
}

// TestRun2DCornersMatter uses a configuration whose avalanche crosses
// block corners: with K >= 2 correctness requires the two-phase
// exchange to deliver diagonal data.
func TestRun2DCornersMatter(t *testing.T) {
	g := grid.New(40, 40)
	// Pile exactly at the junction of a 2x2 block decomposition.
	g.Set(19, 19, 50000)
	want := oracle(g)
	for _, k := range []int{2, 4, 8} {
		got := grid.New(40, 40)
		got.Set(19, 19, 50000)
		if _, err := New(got, WithProcessGrid(2, 2), WithWidth(k)).Run(); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("K=%d: corner exchange broken: %v", k, got.Diff(want, 5))
		}
	}
}

func TestRun2DMatches1DOnStrips(t *testing.T) {
	init := sandpile.Center(20000).Build(64, 64, nil)
	a := init.Clone()
	b := init.Clone()
	if _, err := Run(a, Params{Ranks: 4, GhostWidth: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := New(b, WithProcessGrid(4, 1), WithWidth(2)).Run(); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("2D decomposition on strips disagrees with the 1D runtime")
	}
}

func TestRun2DValidation(t *testing.T) {
	g := grid.New(16, 16)
	if _, err := New(g, WithProcessGrid(0, 1), WithWidth(1)).Run(); err == nil {
		t.Fatal("zero rank rows accepted")
	}
	if _, err := New(g, WithProcessGrid(1, 1), WithWidth(0)).Run(); err == nil {
		t.Fatal("zero ghost width accepted")
	}
	if _, err := New(g, WithProcessGrid(4, 4), WithWidth(8)).Run(); err == nil {
		t.Fatal("K larger than block accepted")
	}
}

func TestRun2DMessageAccounting(t *testing.T) {
	g := sandpile.Uniform(4).Build(32, 32, nil)
	rep, err := New(g, WithProcessGrid(2, 2), WithWidth(2)).Run()
	if err != nil {
		t.Fatal(err)
	}
	// 2x2 grid: 2 horizontal + 2 vertical interior boundaries, 2
	// messages each per exchange.
	if want := rep.Exchanges * 8; rep.Messages != want {
		t.Fatalf("messages = %d, want %d (%d exchanges)", rep.Messages, want, rep.Exchanges)
	}
}

func TestSplitExtents(t *testing.T) {
	got := splitExtents(10, 3)
	want := []int{0, 4, 7, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitExtents(10,3) = %v, want %v", got, want)
		}
	}
}

func TestQuickRun2DAbelian(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, w := 16+rng.Intn(40), 16+rng.Intn(40)
		init := sandpile.Random(9).Build(h, w, rng)
		want := oracle(init)
		rr, rc := 1+rng.Intn(3), 1+rng.Intn(3)
		maxK := min(h/rr, w/rc)
		if maxK > 4 {
			maxK = 4
		}
		k := 1 + rng.Intn(maxK)
		g := init.Clone()
		if _, err := New(g, WithProcessGrid(rr, rc), WithWidth(k)).Run(); err != nil {
			return false
		}
		return g.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
