package ghost

// options.go is the redesigned constructor for distributed runs: a
// functional-options Runner that unifies the strip and block
// decompositions, threads context.Context through, and carries the
// fault-injection plan. The positional Params/Params2D structs and
// the package-level Run/Run2D remain as thin deprecated shims.

import (
	"context"
	"time"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/grid"
	pnet "repro/internal/net"
	"repro/internal/obs"
)

// config is the merged configuration both decompositions run from.
type config struct {
	ranks              int // strip decomposition (1-D)
	procRows, procCols int // block decomposition (2-D); set via WithProcessGrid
	width              int
	maxIters           int
	obs                obs.Sink
	faults             *fault.Plan
	heartbeat          time.Duration
	ck                 *ckpt.Checkpointer
	fleet              *pnet.FleetConfig
}

// Option configures a Runner built with New.
type Option func(*config)

// WithRanks selects the strip decomposition with n simulated ranks.
func WithRanks(n int) Option { return func(c *config) { c.ranks = n } }

// WithProcessGrid selects the 2-D block decomposition with a
// rows x cols process grid (overrides WithRanks).
func WithProcessGrid(rows, cols int) Option {
	return func(c *config) { c.procRows, c.procCols = rows, cols }
}

// WithWidth sets the ghost-zone width K: halo rows/columns exchanged
// per boundary and iterations between exchanges.
func WithWidth(k int) Option { return func(c *config) { c.width = k } }

// WithMaxIters bounds runaway runs (0 means sandpile.MaxIterations).
func WithMaxIters(n int) Option { return func(c *config) { c.maxIters = n } }

// WithObs attaches the observability layer.
func WithObs(sink obs.Sink) Option { return func(c *config) { c.obs = sink } }

// WithFaults enables deterministic fault injection under the plan:
// rank crashes and halo-message drop/delay/duplication, recovered via
// heartbeat detection and coordinated checkpoint rollback. nil
// disables injection (and checkpointing).
func WithFaults(p *fault.Plan) Option { return func(c *config) { c.faults = p } }

// WithHeartbeat sets how long the coordinator waits for a round's
// reports before declaring a rank dead (default 2s; only meaningful
// with WithFaults). Halo receives time out at a quarter of this.
func WithHeartbeat(d time.Duration) Option { return func(c *config) { c.heartbeat = d } }

// WithFleet runs the decomposition over a worker fleet (see fleet.go):
// the ranks become processes (or goroutines, on the chan transport)
// joined through fc.Transport, supervised with heartbeat leases and
// respawn. fc.Workers and fc.Proto are set by the run; everything else
// — transport, listen address, lease, backoff, Spawn hook — is the
// caller's. Mutually exclusive with WithFaults: fleet crashes are real
// process deaths, not injected ones.
func WithFleet(fc *pnet.FleetConfig) Option { return func(c *config) { c.fleet = fc } }

// WithCheckpoint enables durable checkpoint/restart (see ckpt.go):
// committed rounds are persisted through ck at its cadence, and a
// resuming checkpointer restores the newest valid snapshot before the
// run starts, continuing from the committed round it holds. nil
// disables durability.
func WithCheckpoint(ck *ckpt.Checkpointer) Option { return func(c *config) { c.ck = ck } }

// Runner is a configured distributed run over one grid.
type Runner struct {
	g   *grid.Grid
	cfg config
}

// New builds a distributed run of g, e.g.
//
//	ghost.New(g, ghost.WithRanks(4), ghost.WithWidth(2), ghost.WithFaults(plan))
//
// This is the preferred constructor; Run(g, Params) and
// Run2D(g, Params2D) are the legacy positional forms.
func New(g *grid.Grid, opts ...Option) *Runner {
	r := &Runner{g: g, cfg: config{width: 1}}
	for _, opt := range opts {
		opt(&r.cfg)
	}
	return r
}

// Run executes the configured run to the fixed point.
func (r *Runner) Run() (Report, error) { return r.RunContext(context.Background()) }

// RunContext is Run with cancellation: the coordinator stops
// launching rounds once ctx is cancelled and returns ctx.Err().
func (r *Runner) RunContext(ctx context.Context) (Report, error) {
	if r.cfg.fleet != nil {
		return runFleet(ctx, r.g, r.cfg)
	}
	if r.cfg.procRows > 0 || r.cfg.procCols > 0 {
		return run2d(ctx, r.g, r.cfg)
	}
	return run1d(ctx, r.g, r.cfg)
}
