package ghost

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/grid"
	pnet "repro/internal/net"
	"repro/internal/sandpile"
)

// fleetGrid builds the deterministic test workload used throughout.
func fleetGrid(h, w int) *grid.Grid {
	g := grid.New(h, w)
	for y := 0; y < h; y++ {
		row := g.Row(y)
		for x := 0; x < w; x++ {
			row[x] = uint32((y*31 + x*17) % 9)
		}
	}
	g.Row(h/2)[w/2] = 64
	return g
}

// runFleetCase solves the workload over a goroutine fleet on the chan
// transport and checks the result byte-matches the sequential solver.
func runFleetCase(t *testing.T, opts []Option, workers func(ctx context.Context, addr string)) Report {
	t.Helper()
	ref := fleetGrid(24, 18)
	want := sandpile.StabilizeSyncSeq(ref)

	g := fleetGrid(24, 18)
	tr, _ := pnet.New("chan")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fc := &pnet.FleetConfig{
		Transport: tr,
		Listen:    fmt.Sprintf("ghost-fleet-%s", t.Name()),
		Lease:     300 * time.Millisecond,
	}
	if workers != nil {
		var started sync.Once
		fc.Spawn = func(rank int, addr string) error {
			// One spawn call is enough: the helper launches all ranks.
			started.Do(func() { workers(ctx, addr) })
			return nil
		}
		// The helper's workers redial on their own; let the supervisor
		// wait patiently rather than re-invoking Spawn.
		fc.JoinTimeout = 10 * time.Second
	}
	rep, err := New(g, append(opts, WithFleet(fc))...).RunContext(ctx)
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if !g.Equal(ref) {
		t.Fatal("fleet fixed point differs from the sequential solver")
	}
	if rep.Topples != want.Topples {
		t.Fatalf("fleet topples %d, want %d", rep.Topples, want.Topples)
	}
	return rep
}

// spawnWorkers launches n rank worker goroutines that dial addr.
func spawnWorkers(tr pnet.Transport, n int) func(ctx context.Context, addr string) {
	return func(ctx context.Context, addr string) {
		for r := 0; r < n; r++ {
			go FleetWorker(ctx, pnet.WorkerConfig{
				Transport: tr, Join: addr, Rank: r,
				Backoff:         pnet.Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond},
				MaxDialAttempts: 1000,
			})
		}
	}
}

func TestFleet1DMatchesSequential(t *testing.T) {
	tr, _ := pnet.New("chan")
	rep := runFleetCase(t, []Option{WithRanks(3), WithWidth(2)}, spawnWorkers(tr, 3))
	if rep.Ranks != 3 || rep.Recoveries != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.OwnedCells == 0 || rep.RedundantCells == 0 {
		t.Fatalf("work accounting missing: %+v", rep)
	}
}

func TestFleet2DMatchesSequential(t *testing.T) {
	tr, _ := pnet.New("chan")
	rep := runFleetCase(t, []Option{WithProcessGrid(2, 3), WithWidth(2)}, spawnWorkers(tr, 6))
	if rep.Ranks != 6 {
		t.Fatalf("report: %+v", rep)
	}
}

// TestFleetMatchesInProcessRun pins the tentpole equality: the fleet
// run and the classic goroutine-rank run agree on every reported
// quantity that is defined for both.
func TestFleetMatchesInProcessRun(t *testing.T) {
	gIn := fleetGrid(24, 18)
	inRep, err := New(gIn, WithRanks(3), WithWidth(2)).Run()
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := pnet.New("chan")
	rep := runFleetCase(t, []Option{WithRanks(3), WithWidth(2)}, spawnWorkers(tr, 3))
	if rep.Iterations != inRep.Iterations || rep.Topples != inRep.Topples ||
		rep.Absorbed != inRep.Absorbed || rep.Exchanges != inRep.Exchanges {
		t.Fatalf("fleet %+v != in-process %+v", rep, inRep)
	}
	// Same decomposition, same rounds: the redundant-compute accounting
	// must agree too.
	if rep.RedundantCells != inRep.RedundantCells || rep.OwnedCells != inRep.OwnedCells {
		t.Fatalf("work accounting: fleet %+v != in-process %+v", rep, inRep)
	}
}

// TestFleetWorkerDeathAndRejoin kills worker incarnations mid-run (by
// cancelling their contexts — the goroutine analogue of SIGKILL) and
// relies on respawn + rejoin re-dispatch; the fixed point must still
// match the sequential solver exactly.
func TestFleetWorkerDeathAndRejoin(t *testing.T) {
	// A tall center pile takes many rounds to spread, so kills land
	// mid-run rather than after the fixed point.
	mk := func() *grid.Grid {
		g := grid.New(40, 30)
		g.Row(20)[15] = 200000
		return g
	}
	ref := mk()
	want := sandpile.StabilizeSyncSeq(ref)

	tr, _ := pnet.New("chan")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var kills atomic.Int64
	var launched sync.Once
	fc := &pnet.FleetConfig{
		Transport:   tr,
		Listen:      "ghost-fleet-death",
		Lease:       500 * time.Millisecond,
		JoinTimeout: 10 * time.Second,
		Spawn: func(rank int, addr string) error {
			launched.Do(func() { launchCrashyWorkers(ctx, tr, addr, &kills) })
			return nil
		},
	}
	g := mk()
	rep, err := New(g, WithRanks(3), WithWidth(1), WithMaxIters(10_000_000),
		WithFleet(fc)).RunContext(ctx)
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if !g.Equal(ref) || rep.Topples != want.Topples {
		t.Fatalf("post-crash run diverged: topples %d want %d", rep.Topples, want.Topples)
	}
	if kills.Load() == 0 {
		t.Skip("run finished before any kill landed; nothing exercised")
	}
	if rep.Recoveries == 0 {
		t.Fatalf("killed %d worker incarnations but Recoveries=0", kills.Load())
	}
}

// launchCrashyWorkers starts 3 rank workers; rank 1's first three
// incarnations are killed shortly after starting.
func launchCrashyWorkers(ctx context.Context, tr pnet.Transport, addr string, kills *atomic.Int64) {
	for r := 0; r < 3; r++ {
		go func(rank int) {
			for incarnation := 1; ctx.Err() == nil; incarnation++ {
				wctx, wcancel := context.WithCancel(ctx)
				if rank == 1 && incarnation <= 3 {
					go func(delay time.Duration) {
						time.Sleep(delay)
						kills.Add(1)
						wcancel()
					}(time.Duration(incarnation) * 3 * time.Millisecond)
				}
				FleetWorker(wctx, pnet.WorkerConfig{
					Transport: tr, Join: addr, Rank: rank,
					Backoff:         pnet.Backoff{Base: time.Millisecond, Max: 20 * time.Millisecond},
					MaxDialAttempts: 1000,
				})
				wcancel()
				if rank != 1 || incarnation > 3 {
					return
				}
			}
		}(r)
	}
}

// TestFleetLostRankFallsBackLocally spawns no process for rank 1:
// after MaxRespawns join timeouts the coordinator must declare it lost
// and compute its strip itself, still reaching the exact fixed point.
func TestFleetLostRankFallsBackLocally(t *testing.T) {
	ref := fleetGrid(24, 18)
	want := sandpile.StabilizeSyncSeq(ref)
	g := fleetGrid(24, 18)
	tr, _ := pnet.New("chan")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fc := &pnet.FleetConfig{
		Transport:   tr,
		Listen:      "ghost-fleet-lost",
		Lease:       200 * time.Millisecond,
		JoinTimeout: 50 * time.Millisecond,
		MaxRespawns: 2,
		Backoff:     pnet.Backoff{Base: 2 * time.Millisecond, Max: 10 * time.Millisecond},
		Spawn: func(rank int, addr string) error {
			if rank == 1 {
				return nil // never comes up
			}
			go FleetWorker(ctx, pnet.WorkerConfig{
				Transport: tr, Join: addr, Rank: rank,
				Backoff:         pnet.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
				MaxDialAttempts: 1000,
			})
			return nil
		},
	}
	rep, err := New(g, WithRanks(3), WithWidth(2), WithFleet(fc)).RunContext(ctx)
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if !g.Equal(ref) || rep.Topples != want.Topples {
		t.Fatalf("degraded run diverged: topples %d want %d", rep.Topples, want.Topples)
	}
}

func TestFleetRejectsFaultInjection(t *testing.T) {
	tr, _ := pnet.New("chan")
	g := fleetGrid(12, 12)
	_, err := New(g, WithRanks(2), WithWidth(1),
		WithFleet(&pnet.FleetConfig{Transport: tr, Listen: "ghost-fleet-inj"}),
		WithFaults(&fault.Plan{Seed: 1})).Run()
	if err == nil {
		t.Fatal("fleet+faults accepted")
	}
}
