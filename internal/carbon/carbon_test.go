package carbon

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJoulesToKWh(t *testing.T) {
	if !almost(JoulesToKWh(3.6e6), 1) {
		t.Fatalf("3.6MJ = %v kWh, want 1", JoulesToKWh(3.6e6))
	}
	if !almost(JoulesToKWh(0), 0) {
		t.Fatal("0 J != 0 kWh")
	}
}

func TestEmissionsMatchesPaperPlant(t *testing.T) {
	// 1 kWh at the paper's 291 gCO2e/kWh plant.
	if got := Emissions(3.6e6, LocalGrid); !almost(got, 291) {
		t.Fatalf("1 kWh local = %v g, want 291", got)
	}
	if Emissions(3.6e6, GreenCloud) >= Emissions(3.6e6, LocalGrid)/10 {
		t.Fatal("green cloud should be far cleaner than the local grid")
	}
}

func TestMeterAccumulation(t *testing.T) {
	m := NewMeter()
	m.Register("cluster", LocalGrid)
	m.Register("cloud", GreenCloud)
	m.Add("cluster", 1.8e6) // 0.5 kWh
	m.Add("cluster", 1.8e6) // +0.5 kWh
	m.Add("cloud", 3.6e6)   // 1 kWh
	if !almost(m.EnergyKWh("cluster"), 1) {
		t.Fatalf("cluster kWh = %v", m.EnergyKWh("cluster"))
	}
	if !almost(m.SourceEmissions("cluster"), 291) {
		t.Fatalf("cluster emissions = %v", m.SourceEmissions("cluster"))
	}
	if !almost(m.SourceEmissions("cloud"), 5) {
		t.Fatalf("cloud emissions = %v", m.SourceEmissions("cloud"))
	}
	if !almost(m.TotalEmissions(), 296) {
		t.Fatalf("total = %v, want 296", m.TotalEmissions())
	}
	if !almost(m.TotalEnergyKWh(), 2) {
		t.Fatalf("total kWh = %v, want 2", m.TotalEnergyKWh())
	}
}

func TestMeterGuards(t *testing.T) {
	m := NewMeter()
	m.Register("a", 100)
	m.Register("a", 100) // same intensity: fine
	for name, fn := range map[string]func(){
		"negative energy":     func() { m.Add("a", -1) },
		"unregistered source": func() { m.Add("ghost", 1) },
		"conflicting reregister": func() {
			m.Register("a", 200)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMeterZeroSource(t *testing.T) {
	m := NewMeter()
	m.Register("a", 100)
	if m.Energy("a") != 0 || m.SourceEmissions("a") != 0 {
		t.Fatal("fresh source not zero")
	}
}

// quick-check: emissions are additive and linear in energy.
func TestQuickEmissionsLinear(t *testing.T) {
	f := func(aRaw, bRaw uint32) bool {
		a, b := float64(aRaw), float64(bRaw)
		sum := Emissions(a+b, LocalGrid)
		parts := Emissions(a, LocalGrid) + Emissions(b, LocalGrid)
		return math.Abs(sum-parts) < 1e-6*(1+sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
