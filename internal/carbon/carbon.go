// Package carbon provides the energy and CO2-equivalent accounting
// used by the workflow assignment: joules integrate into kWh, kWh
// multiply by a source's carbon intensity (gCO2e/kWh) into emissions.
// The local cluster of the assignment is powered at 291 gCO2e/kWh;
// the remote cloud is green.
package carbon

import "fmt"

// Intensity is a power source's carbon intensity in gCO2e per kWh.
type Intensity float64

// The assignment's power sources.
const (
	// LocalGrid is the paper's non-green power plant: 291 gCO2e/kWh.
	LocalGrid Intensity = 291
	// GreenCloud approximates the remote cloud's green source; a
	// small non-zero floor accounts for embodied/transmission
	// emissions so "all cloud" is cheap but not magically free.
	GreenCloud Intensity = 5
)

// JoulesToKWh converts energy in joules to kilowatt-hours.
func JoulesToKWh(j float64) float64 { return j / 3.6e6 }

// Emissions returns gCO2e for the given energy at the given intensity.
func Emissions(joules float64, i Intensity) float64 {
	return JoulesToKWh(joules) * float64(i)
}

// Meter accumulates energy per named source and reports emissions.
type Meter struct {
	joules    map[string]float64
	intensity map[string]Intensity
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{joules: map[string]float64{}, intensity: map[string]Intensity{}}
}

// Register declares a source with its carbon intensity. Re-registering
// a source with a different intensity panics: accounting would become
// ambiguous.
func (m *Meter) Register(source string, i Intensity) {
	if prev, ok := m.intensity[source]; ok && prev != i {
		panic(fmt.Sprintf("carbon: source %q re-registered with intensity %v (was %v)", source, i, prev))
	}
	m.intensity[source] = i
}

// Add charges joules of energy to a registered source. Negative
// energy panics.
func (m *Meter) Add(source string, joules float64) {
	if joules < 0 {
		panic(fmt.Sprintf("carbon: negative energy %v for %q", joules, source))
	}
	if _, ok := m.intensity[source]; !ok {
		panic(fmt.Sprintf("carbon: unregistered source %q", source))
	}
	m.joules[source] += joules
}

// Energy returns the accumulated joules for a source.
func (m *Meter) Energy(source string) float64 { return m.joules[source] }

// EnergyKWh returns the accumulated kWh for a source.
func (m *Meter) EnergyKWh(source string) float64 { return JoulesToKWh(m.joules[source]) }

// SourceEmissions returns gCO2e accumulated by one source.
func (m *Meter) SourceEmissions(source string) float64 {
	return Emissions(m.joules[source], m.intensity[source])
}

// TotalEmissions returns gCO2e summed over all sources.
func (m *Meter) TotalEmissions() float64 {
	var total float64
	for s, j := range m.joules {
		total += Emissions(j, m.intensity[s])
	}
	return total
}

// TotalEnergyKWh returns total energy over all sources in kWh.
func (m *Meter) TotalEnergyKWh() float64 {
	var total float64
	for _, j := range m.joules {
		total += j
	}
	return JoulesToKWh(total)
}
