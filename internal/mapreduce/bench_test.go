package mapreduce

import (
	"fmt"
	"strings"
	"testing"
)

// Engine throughput benchmarks, including the combiner's effect on
// shuffle volume.

func benchCorpus(lines int) []string {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	out := make([]string, lines)
	for i := range out {
		var sb strings.Builder
		for j := 0; j < 8; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(words[(i+j)%len(words)])
		}
		out[i] = sb.String()
	}
	return out
}

func benchWordCount(b *testing.B, cfg Config[string], combine bool) {
	b.Helper()
	lines := benchCorpus(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := wordCountJobForBench(cfg)
		if combine {
			job.Combine = func(key string, values []int) ([]int, error) {
				sum := 0
				for _, v := range values {
					sum += v
				}
				return []int{sum}, nil
			}
		}
		if _, _, err := job.Run(lines); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(lines[0]) * len(lines)))
}

func wordCountJobForBench(cfg Config[string]) *Job[string, string, int, KV[string, int]] {
	return &Job[string, string, int, KV[string, int]]{
		Name:   "bench-wordcount",
		Config: cfg,
		Map: func(line string, emit func(string, int)) error {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
			return nil
		},
		Reduce: func(key string, values []int, emit func(KV[string, int])) error {
			sum := 0
			for _, v := range values {
				sum += v
			}
			emit(KV[string, int]{key, sum})
			return nil
		},
	}
}

func BenchmarkWordCountSerial(b *testing.B) {
	benchWordCount(b, Config[string]{MapTasks: 1, ReduceTasks: 1, Parallelism: 1}, false)
}

func BenchmarkWordCountParallel(b *testing.B) {
	benchWordCount(b, Config[string]{MapTasks: 8, ReduceTasks: 4, Parallelism: 4}, false)
}

func BenchmarkWordCountWithCombiner(b *testing.B) {
	benchWordCount(b, Config[string]{MapTasks: 8, ReduceTasks: 4, Parallelism: 4}, true)
}

func BenchmarkShuffleManyKeys(b *testing.B) {
	inputs := make([]int, 5000)
	for i := range inputs {
		inputs[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := &Job[int, string, int, int]{
			Map: func(v int, emit func(string, int)) error {
				emit(fmt.Sprintf("key-%d", v%1000), v)
				return nil
			},
			Reduce: func(key string, values []int, emit func(int)) error {
				emit(len(values))
				return nil
			},
			Config: Config[string]{MapTasks: 8, ReduceTasks: 4, Parallelism: 4},
		}
		if _, _, err := job.Run(inputs); err != nil {
			b.Fatal(err)
		}
	}
}
