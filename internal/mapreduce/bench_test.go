package mapreduce

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// Engine throughput benchmarks, including the combiner's effect on
// shuffle volume.

func benchCorpus(lines int) []string {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	out := make([]string, lines)
	for i := range out {
		var sb strings.Builder
		for j := 0; j < 8; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(words[(i+j)%len(words)])
		}
		out[i] = sb.String()
	}
	return out
}

func benchWordCount(b *testing.B, cfg Config[string], combine bool) {
	b.Helper()
	lines := benchCorpus(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := wordCountJobForBench(cfg)
		if combine {
			job.Combine = func(key string, values []int) ([]int, error) {
				sum := 0
				for _, v := range values {
					sum += v
				}
				return []int{sum}, nil
			}
		}
		if _, _, err := job.Run(lines); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(lines[0]) * len(lines)))
}

func wordCountJobForBench(cfg Config[string]) *Job[string, string, int, KV[string, int]] {
	return &Job[string, string, int, KV[string, int]]{
		Name:   "bench-wordcount",
		Config: cfg,
		Map: func(line string, emit func(string, int)) error {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
			return nil
		},
		Reduce: func(key string, values []int, emit func(KV[string, int])) error {
			sum := 0
			for _, v := range values {
				sum += v
			}
			emit(KV[string, int]{key, sum})
			return nil
		},
	}
}

func BenchmarkWordCountSerial(b *testing.B) {
	benchWordCount(b, Config[string]{MapTasks: 1, ReduceTasks: 1, Parallelism: 1}, false)
}

func BenchmarkWordCountParallel(b *testing.B) {
	benchWordCount(b, Config[string]{MapTasks: 8, ReduceTasks: 4, Parallelism: 4}, false)
}

func BenchmarkWordCountWithCombiner(b *testing.B) {
	benchWordCount(b, Config[string]{MapTasks: 8, ReduceTasks: 4, Parallelism: 4}, true)
}

// --- million-record suite ------------------------------------------
// The headline numbers for the sorted-run shuffle: 1M input lines
// (3M intermediate pairs), uniform (~50k distinct keys, shuffle-bound)
// and high-skew (Zipf, a few hot keys with huge value groups). Each
// benchmark has a *Naive twin running the retained hash-group shuffle
// (Config.ReferenceShuffle), so the speedup and allocs/op cut are
// recorded side by side in the BENCH_pr4.json snapshot.

var corpus1M struct {
	uniformOnce, skewOnce sync.Once
	uniform, skewed       []string
}

func uniformCorpus1M() []string {
	corpus1M.uniformOnce.Do(func() {
		rng := rand.New(rand.NewSource(42))
		lines := make([]string, 1_000_000)
		for i := range lines {
			lines[i] = fmt.Sprintf("w%d w%d w%d", rng.Intn(50000), rng.Intn(50000), rng.Intn(50000))
		}
		corpus1M.uniform = lines
	})
	return corpus1M.uniform
}

func skewedCorpus1M() []string {
	corpus1M.skewOnce.Do(func() {
		rng := rand.New(rand.NewSource(43))
		zipf := rand.NewZipf(rng, 1.3, 1, 50000)
		lines := make([]string, 1_000_000)
		for i := range lines {
			lines[i] = fmt.Sprintf("z%d z%d z%d", zipf.Uint64(), zipf.Uint64(), zipf.Uint64())
		}
		corpus1M.skewed = lines
	})
	return corpus1M.skewed
}

func config1M(naive bool) Config[string] {
	return Config[string]{MapTasks: 32, ReduceTasks: 8, ReferenceShuffle: naive}
}

func benchWordCount1M(b *testing.B, lines []string, naive bool) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := wordCountJobForBench(config1M(naive)).Run(lines); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWordCount1M(b *testing.B)      { benchWordCount1M(b, uniformCorpus1M(), false) }
func BenchmarkWordCount1MNaive(b *testing.B) { benchWordCount1M(b, uniformCorpus1M(), true) }

func BenchmarkWordCount1MHighSkew(b *testing.B)      { benchWordCount1M(b, skewedCorpus1M(), false) }
func BenchmarkWordCount1MHighSkewNaive(b *testing.B) { benchWordCount1M(b, skewedCorpus1M(), true) }

// benchShuffle1M isolates the shuffle+reduce phase: the map output is
// materialized once outside the timer, and each iteration pays only
// reducePhase — the measurement behind the "shuffle phase >=3x"
// acceptance gate.
func benchShuffle1M(b *testing.B, naive bool) {
	b.Helper()
	cfg := config1M(naive).withDefaults()
	job := wordCountJobForBench(cfg)
	splits := splitInputs(uniformCorpus1M(), cfg.MapTasks)
	mapOut := make([][]run[string, int], len(splits))
	for t, split := range splits {
		out, _, _, err := job.runMapTask(context.Background(), t, split, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		mapOut[t] = out
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := job.reducePhase(context.Background(), mapOut, cfg, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShuffle1M(b *testing.B)      { benchShuffle1M(b, false) }
func BenchmarkShuffle1MNaive(b *testing.B) { benchShuffle1M(b, true) }

// The out-of-core twins: the same 1M word count with the shuffle
// budgeted to a fraction of its resident footprint, so every iteration
// spills and multi-pass-merges through disk. The delta against
// BenchmarkWordCount1M is the measured price of running beyond RAM.
func benchWordCount1MExternal(b *testing.B, budget int64, fanIn int) {
	b.Helper()
	lines := uniformCorpus1M()
	dir := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := config1M(false)
		cfg.MaxShuffleBytes = budget
		cfg.MergeFanIn = fanIn
		job := wordCountJobForBench(cfg)
		job.External = NewStringIntExternal(dir, "bench")
		_, stats, err := job.Run(lines)
		if err != nil {
			b.Fatal(err)
		}
		if stats.SpilledRuns == 0 {
			b.Fatalf("budget %d spilled nothing", budget)
		}
	}
}

func BenchmarkWordCount1MExternal(b *testing.B) {
	benchWordCount1MExternal(b, 8<<20, 16)
}

func BenchmarkWordCount1MExternalTightBudget(b *testing.B) {
	benchWordCount1MExternal(b, 1<<20, 4)
}

func BenchmarkShuffleManyKeys(b *testing.B) {
	inputs := make([]int, 5000)
	for i := range inputs {
		inputs[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := &Job[int, string, int, int]{
			Map: func(v int, emit func(string, int)) error {
				emit(fmt.Sprintf("key-%d", v%1000), v)
				return nil
			},
			Reduce: func(key string, values []int, emit func(int)) error {
				emit(len(values))
				return nil
			},
			Config: Config[string]{MapTasks: 8, ReduceTasks: 4, Parallelism: 4},
		}
		if _, _, err := job.Run(inputs); err != nil {
			b.Fatal(err)
		}
	}
}
