package mapreduce

// speculative.go implements Hadoop-style speculative execution: when a
// map task straggles, a backup attempt of the same task is launched
// and the first attempt to finish wins. Because mappers are required
// to be pure functions of their split, both attempts produce identical
// output and the race is benign — the classic tail-latency defense of
// Dean & Ghemawat's original MapReduce paper, which the course's
// "somewhat dated but still the methodological basis" framing makes
// worth teaching.
//
// Stragglers do not occur naturally in an in-memory engine, so the
// config exposes an injection hook (InjectDelay) used by tests and
// benchmarks to create them deterministically.

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// SpecConfig tunes speculative execution.
type SpecConfig struct {
	// SpeculationAfter launches a backup attempt for any map task
	// still running after this long. Zero disables speculation.
	SpeculationAfter time.Duration
	// InjectDelay, when non-nil, sleeps the given duration before a
	// map-task attempt runs: attempt 0 is the original, 1 the backup.
	// It exists to create stragglers deterministically in tests.
	InjectDelay func(task, attempt int) time.Duration
}

// SpecStats extends Stats with speculation accounting.
type SpecStats struct {
	Stats
	// BackupsLaunched counts speculative attempts started.
	BackupsLaunched int
	// BackupsWon counts tasks whose backup finished first.
	BackupsWon int
}

// RunSpeculative executes the job like Job.Run but with speculative
// backup attempts for straggling map tasks. The result is identical
// to Job.Run's (mappers must be pure); only the wall-clock behavior
// differs. Both attempts of a task produce the same sorted runs, so
// whichever wins feeds the merge shuffle identically.
func (j *Job[I, K, V, O]) RunSpeculative(inputs []I, spec SpecConfig) ([]O, SpecStats, error) {
	cfg := j.Config.withDefaults()
	if j.Map == nil || j.Reduce == nil {
		return nil, SpecStats{}, fmt.Errorf("mapreduce: job needs both Map and Reduce")
	}
	if j.Counters == nil {
		j.Counters = NewCounters()
	}
	splits := splitInputs(inputs, cfg.MapTasks)
	stats := SpecStats{Stats: Stats{MapTasks: len(splits), ReduceTasks: cfg.ReduceTasks}}

	type taskResult struct {
		parts   []run[K, V]
		emitted int
		err     error
		attempt int
	}
	results := make([]taskResult, len(splits))
	var (
		wg      sync.WaitGroup
		sem     = make(chan struct{}, cfg.Parallelism+len(splits)) // backups must not starve
		mu      sync.Mutex
		settled = make([]bool, len(splits))
	)

	runAttempt := func(t int, attempt int, done chan<- struct{}) {
		sem <- struct{}{}
		defer func() { <-sem }()
		if spec.InjectDelay != nil {
			if d := spec.InjectDelay(t, attempt); d > 0 {
				time.Sleep(d)
			}
		}
		parts, emitted, _, err := j.runMapTask(context.Background(), t, splits[t], cfg, nil)
		mu.Lock()
		if !settled[t] {
			settled[t] = true
			results[t] = taskResult{parts, emitted, err, attempt}
		}
		mu.Unlock()
		select {
		case done <- struct{}{}:
		default:
		}
	}

	for t := range splits {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			done := make(chan struct{}, 2)
			go runAttempt(t, 0, done)
			if spec.SpeculationAfter <= 0 {
				<-done
				return
			}
			select {
			case <-done:
				return
			case <-time.After(spec.SpeculationAfter):
				mu.Lock()
				stats.BackupsLaunched++
				mu.Unlock()
				go runAttempt(t, 1, done)
				<-done
			}
		}(t)
	}
	wg.Wait()

	// Aggregate, honoring the winner of each race.
	mapOut := make([][]run[K, V], len(splits))
	for t, r := range results {
		if r.err != nil {
			return nil, stats, fmt.Errorf("mapreduce: map task %d: %w", t, r.err)
		}
		mapOut[t] = r.parts
		stats.MapOutputs += r.emitted
		stats.MapInputs += len(splits[t])
		if r.attempt == 1 {
			stats.BackupsWon++
		}
		j.Counters.Add("map.outputs", int64(r.emitted))
	}

	outs, redStats, err := j.reducePhase(context.Background(), mapOut, cfg, nil, nil)
	if err != nil {
		return nil, stats, err
	}
	stats.CombineOutputs = redStats.CombineOutputs
	stats.ReduceGroups = redStats.ReduceGroups
	stats.Outputs = len(outs)
	return outs, stats, nil
}
