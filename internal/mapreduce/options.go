package mapreduce

// options.go gives Config the same functional-options constructor the
// other substrates grew (sched.New, ghost.New, hetero.New), so a job
// submission decoded from the wire maps field-for-field onto option
// calls instead of a positional literal. Config remains exported and
// a plain literal keeps working; NewConfig is the preferred spelling.

import (
	"cmp"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Option mutates a Config under construction. The type parameter
// mirrors Config's: options for a string-keyed job are
// Option[string].
type Option[K cmp.Ordered] func(*Config[K])

// NewConfig assembles a Config from options. Zero-value semantics are
// identical to a zero Config literal — defaults are applied by the
// job run, not here — so NewConfig() is exactly Config[K]{}.
func NewConfig[K cmp.Ordered](opts ...Option[K]) Config[K] {
	var c Config[K]
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithMapTasks sets the number of map tasks the input is split into.
func WithMapTasks[K cmp.Ordered](n int) Option[K] {
	return func(c *Config[K]) { c.MapTasks = n }
}

// WithReduceTasks sets the number of reduce partitions.
func WithReduceTasks[K cmp.Ordered](n int) Option[K] {
	return func(c *Config[K]) { c.ReduceTasks = n }
}

// WithParallelism bounds concurrently running tasks.
func WithParallelism[K cmp.Ordered](n int) Option[K] {
	return func(c *Config[K]) { c.Parallelism = n }
}

// WithMaxAttempts sets the per-task retry budget.
func WithMaxAttempts[K cmp.Ordered](n int) Option[K] {
	return func(c *Config[K]) { c.MaxAttempts = n }
}

// WithRetryBackoff sets the base sleep between task attempts.
func WithRetryBackoff[K cmp.Ordered](d time.Duration) Option[K] {
	return func(c *Config[K]) { c.RetryBackoff = d }
}

// WithPartitioner overrides the key-to-partition routing.
func WithPartitioner[K cmp.Ordered](p Partitioner[K]) Option[K] {
	return func(c *Config[K]) { c.Partitioner = p }
}

// WithObs attaches the observability layer.
func WithObs[K cmp.Ordered](sink obs.Sink) Option[K] {
	return func(c *Config[K]) { c.Obs = sink }
}

// WithFaults enables deterministic task-failure injection.
func WithFaults[K cmp.Ordered](plan *fault.Plan) Option[K] {
	return func(c *Config[K]) { c.Faults = plan }
}

// WithReferenceShuffle selects the retained naive shuffle oracle.
func WithReferenceShuffle[K cmp.Ordered]() Option[K] {
	return func(c *Config[K]) { c.ReferenceShuffle = true }
}

// WithMaxShuffleBytes caps resident shuffle bytes, spilling past it.
func WithMaxShuffleBytes[K cmp.Ordered](n int64) Option[K] {
	return func(c *Config[K]) { c.MaxShuffleBytes = n }
}

// WithMergeFanIn caps runs streamed per external merge pass.
func WithMergeFanIn[K cmp.Ordered](n int) Option[K] {
	return func(c *Config[K]) { c.MergeFanIn = n }
}
