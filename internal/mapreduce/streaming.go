package mapreduce

// streaming.go is the Hadoop-Streaming-analog front end the assignment
// uses: records are text lines, mappers and reducers exchange
// tab-separated "key<TAB>value" lines, and inputs arrive as readers
// (files). The typed engine underneath does the actual work.

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// StreamMapper consumes one input line and emits key/value string
// pairs, mirroring a streaming mapper reading stdin and printing
// "key\tvalue" lines.
type StreamMapper func(line string, emit func(key, value string)) error

// StreamReducer consumes one key and all its values (the group-by-keys
// phase output) and emits output lines.
type StreamReducer func(key string, values []string, emit func(line string)) error

// StreamJob is a line-oriented MapReduce job.
type StreamJob struct {
	Name     string
	Map      StreamMapper
	Reduce   StreamReducer
	Config   Config[string]
	Counters *Counters
}

// RunLines executes the job over in-memory input lines and returns
// output lines in deterministic (partition, key) order.
func (s *StreamJob) RunLines(lines []string) ([]string, Stats, error) {
	job := &Job[string, string, string, string]{
		Name:     s.Name,
		Counters: s.Counters,
		Config:   s.Config,
		Map: func(line string, emit func(string, string)) error {
			return s.Map(line, emit)
		},
		Reduce: func(key string, values []string, emit func(string)) error {
			return s.Reduce(key, values, emit)
		},
	}
	out, st, err := job.Run(lines)
	s.Counters = job.Counters
	return out, st, err
}

// RunReaders reads every input reader fully (one logical input file
// each, newline-separated) and executes the job over the concatenated
// lines, preserving file order — the moral equivalent of pointing a
// streaming job at an input directory.
func (s *StreamJob) RunReaders(readers ...io.Reader) ([]string, Stats, error) {
	var lines []string
	for i, r := range readers {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		if err := sc.Err(); err != nil {
			return nil, Stats{}, fmt.Errorf("mapreduce: reading input %d: %w", i, err)
		}
	}
	return s.RunLines(lines)
}

// ParseKV splits a "key<TAB>value" line produced by a streaming
// mapper. Lines without a tab yield the whole line as key and an
// empty value, matching Hadoop Streaming's convention.
func ParseKV(line string) (key, value string) {
	if i := strings.IndexByte(line, '\t'); i >= 0 {
		return line[:i], line[i+1:]
	}
	return line, ""
}

// FormatKV renders a "key<TAB>value" line.
func FormatKV(key, value string) string {
	return key + "\t" + value
}
