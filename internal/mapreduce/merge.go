package mapreduce

// merge.go is the shuffle's data plane: sorted, span-compressed runs
// and the k-way merge over them. Each map task hands the reduce phase
// one run per partition (sorted at map-task granularity, inside the
// already-parallel map phase, combiner applied during span building),
// and the shuffle merges a partition's runs in a single streaming
// pass that feeds equal keys directly into the reducer. Nothing is
// re-grouped through a hash map and nothing is globally re-sorted —
// the per-run sort plus a stable merge is the whole shuffle, exactly
// Hadoop's sort-merge design.
//
// Two representation choices carry the performance:
//
//   - Runs are span-compressed: distinct ascending keys, each owning a
//     contiguous slice of a shared values array. The merge moves one
//     span (a bulk append) per step instead of touching every pair, so
//     per-pair work — and the cache miss of chasing every key's string
//     bytes — drops out of the shuffle entirely.
//   - Every key carries an 8-byte order-preserving prefix. For short
//     strings and all integer widths the prefix is EXACT: prefix
//     equality proves key equality, so both the map-side sort and the
//     merge run on nothing but inline uint64 compares — no string
//     bytes are touched at all unless keys are 8+ characters and share
//     their first 7.
//
// The merge itself comes in two shapes. For small fan-in (the common
// case: one run per map task) a linear scan of the cursor heads finds
// each group — k inline integer compares beat a heap's O(log k)
// generic-function comparisons by a wide margin on modern cores. A
// binary min-heap of cursors takes over past scanMaxRuns, restoring
// O(log k) per step for very wide merges.
//
// Stability argument (why outputs are byte-identical to the old
// hash-group shuffle): within a run, equal keys keep emission order
// because the map-side sort breaks key ties by emission sequence;
// across runs, the merge drains a key's spans in task-index order, so
// a group's values appear in (map-task, emission) order — the same
// order the old shuffle produced by concatenating task outputs before
// grouping.

import "cmp"

// Prefix exactness classes: what a prefix tie proves about the keys.
const (
	// prefExactTotal: the prefix is a bijective order-embedding, so
	// prefix equality alone proves key equality (all integer widths).
	prefExactTotal = iota
	// prefExactMarked: prefix equality proves key equality unless the
	// prefix's low byte is the 0xFF saturation marker (strings — see
	// keyPrefix for the 7-bytes-plus-length encoding).
	prefExactMarked
	// prefInexact: prefix ties prove nothing; always fall back to
	// comparing keys (floats, defined types).
	prefInexact
)

// prefixClass reports the exactness class of keyPrefix for K.
func prefixClass[K cmp.Ordered]() int {
	var z K
	switch any(z).(type) {
	case int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64, uintptr:
		return prefExactTotal
	case string:
		return prefExactMarked
	default:
		return prefInexact
	}
}

// prefProvesEqual reports whether, for K's class, equality of this
// prefix value alone proves the underlying keys are equal.
func prefProvesEqual(class int, pref uint64) bool {
	return class == prefExactTotal || (class == prefExactMarked && pref&0xFF != 0xFF)
}

// keyPrefix returns an order-preserving 8-byte accelerator for k:
// keyPrefix(a) < keyPrefix(b) implies a < b, and a < b implies
// keyPrefix(a) <= keyPrefix(b), so comparisons may trust a prefix
// difference and only fall back to cmp.Compare on prefix ties.
//
// Integers embed bijectively (sign bit flipped so the unsigned order
// matches the signed one), making every prefix exact. Strings pack
// their first 7 bytes big-endian into the top 56 bits and the length
// into the low byte — 0..7 for short strings, 0xFF saturated for 8+.
// The length byte both orders prefix-of relationships correctly
// (including keys with embedded NULs: "ab" < "ab\x00") and marks short
// strings' prefixes as exact, so a prefix tie between them proves the
// keys equal and no byte comparison is ever needed. Types without a
// cheap order-preserving embedding (floats) return 0 and always fall
// back.
func keyPrefix[K cmp.Ordered](k K) uint64 {
	const signFlip = 1 << 63
	switch v := any(k).(type) {
	case string:
		p := uint64(0xFF)
		if len(v) < 8 {
			p = uint64(len(v))
		}
		for i := 0; i < len(v) && i < 7; i++ {
			p |= uint64(v[i]) << (56 - 8*i)
		}
		return p
	case int:
		return uint64(v) ^ signFlip
	case int8:
		return uint64(v) ^ signFlip
	case int16:
		return uint64(v) ^ signFlip
	case int32:
		return uint64(v) ^ signFlip
	case int64:
		return uint64(v) ^ signFlip
	case uint:
		return uint64(v)
	case uint8:
		return uint64(v)
	case uint16:
		return uint64(v)
	case uint32:
		return uint64(v)
	case uint64:
		return v
	case uintptr:
		return uint64(v)
	default:
		return 0
	}
}

// run is one map task's sorted, span-compressed output for one reduce
// partition: keys holds the task's distinct keys in ascending order,
// vals[offs[i]:offs[i+1]] holds keys[i]'s values in emission order,
// and prefs[i] is keys[i]'s comparison accelerator.
type run[K cmp.Ordered, V any] struct {
	keys  []K
	prefs []uint64
	offs  []int32 // len(keys)+1 span boundaries into vals
	vals  []V
}

func (r *run[K, V]) pairs() int { return len(r.vals) }

// prefKV is the map side's sortable pair: the key's prefix, the
// emission sequence (the stable-sort tie-break, so an unstable — and
// faster — sort yields a stable order), and the pair itself.
type prefKV[K cmp.Ordered, V any] struct {
	pref uint64
	seq  int32
	kv   KV[K, V]
}

// pairCmp returns the map-side sort order for prefKVs: (prefix, key,
// emission sequence) — never 0 for distinct elements, which is what
// makes the unstable sort stable. The key compare is skipped entirely
// when the prefix tie already proves the keys equal.
func pairCmp[K cmp.Ordered, V any]() func(a, b prefKV[K, V]) int {
	class := prefixClass[K]()
	return func(a, b prefKV[K, V]) int {
		if a.pref != b.pref {
			if a.pref < b.pref {
				return -1
			}
			return 1
		}
		if !prefProvesEqual(class, a.pref) {
			if c := cmp.Compare(a.kv.Key, b.kv.Key); c != 0 {
				return c
			}
		}
		return cmp.Compare(a.seq, b.seq)
	}
}

// sameKey reports whether two adjacent sorted pairs share a key.
func sameKey[K cmp.Ordered, V any](class int, a, b *prefKV[K, V]) bool {
	return a.pref == b.pref && (prefProvesEqual(class, a.pref) || a.kv.Key == b.kv.Key)
}

// buildRun span-compresses sorted pairs into a run, applying the
// combiner (when non-nil) to each key's values as the span is formed.
// A combiner returning zero values drops its key from the run.
func buildRun[K cmp.Ordered, V any](pairs []prefKV[K, V], combine Combiner[K, V]) (run[K, V], error) {
	var r run[K, V]
	if len(pairs) == 0 {
		return r, nil
	}
	class := prefixClass[K]()
	nk := countSpans(class, pairs)
	r.keys = make([]K, 0, nk)
	r.prefs = make([]uint64, 0, nk)
	r.offs = make([]int32, 1, nk+1)
	r.vals = make([]V, 0, len(pairs))
	var values []V // combiner scratch
	for i := 0; i < len(pairs); {
		j := i + 1
		for j < len(pairs) && sameKey(class, &pairs[j], &pairs[i]) {
			j++
		}
		if combine == nil {
			for _, p := range pairs[i:j] {
				r.vals = append(r.vals, p.kv.Value)
			}
		} else {
			values = values[:0]
			for _, p := range pairs[i:j] {
				values = append(values, p.kv.Value)
			}
			vs, err := combine(pairs[i].kv.Key, values)
			if err != nil {
				return run[K, V]{}, err
			}
			if len(vs) == 0 {
				i = j
				continue
			}
			r.vals = append(r.vals, vs...)
		}
		r.keys = append(r.keys, pairs[i].kv.Key)
		r.prefs = append(r.prefs, pairs[i].pref)
		r.offs = append(r.offs, int32(len(r.vals)))
		i = j
	}
	return r, nil
}

// countSpans counts the distinct keys of sorted pairs, sizing
// buildRun's allocations exactly.
func countSpans[K cmp.Ordered, V any](class int, pairs []prefKV[K, V]) int {
	n := 0
	for i := 0; i < len(pairs); {
		j := i + 1
		for j < len(pairs) && sameKey(class, &pairs[j], &pairs[i]) {
			j++
		}
		n++
		i = j
	}
	return n
}

// cursor is one run's read position (a span index) inside a merge.
// task is the run's position in the merge's input order (map-task
// order), used to break key ties so the merge is stable.
type cursor[K cmp.Ordered, V any] struct {
	r    *run[K, V]
	pos  int
	task int
}

// scanMaxRuns is the fan-in up to which the merge scans cursor heads
// linearly instead of maintaining a heap. Head scanning is k inline
// integer compares per group; the heap is O(log k) calls through a
// generic comparison — the crossover sits far above typical map-task
// counts. Variable so tests can force the heap path.
var scanMaxRuns = 64

// mergeRuns merges the sorted runs of one reduce partition, calling
// group once per distinct key with that key's values in (task,
// emission) order and gi the 0-based ordinal of the group in
// ascending-key order — the same ordinal the pre-merge shuffle used,
// which keeps deterministic fault-injection schedules identical. The
// values slice is reused between calls; group implementations must
// not retain it (the Reducer contract). It returns the number of
// pairs consumed and groups formed before stopping (all of them
// unless group errors).
func mergeRuns[K cmp.Ordered, V any](runs []*run[K, V], group func(key K, values []V, gi int) error) (pairs, groups int, err error) {
	switch len(runs) {
	case 0:
		return 0, 0, nil
	case 1:
		// Single run: every span is already a complete group.
		var values []V
		r := runs[0]
		for i, key := range r.keys {
			values = values[:0]
			values = append(values, r.vals[r.offs[i]:r.offs[i+1]]...)
			pairs += len(values)
			gi := groups
			groups++
			if err := group(key, values, gi); err != nil {
				return pairs, groups, err
			}
		}
		return pairs, groups, nil
	}

	class := prefixClass[K]()
	cs := make([]cursor[K, V], 0, len(runs))
	for t, r := range runs {
		if len(r.keys) > 0 {
			cs = append(cs, cursor[K, V]{r: r, task: t})
		}
	}
	if len(cs) <= scanMaxRuns {
		return scanMerge(cs, class, group)
	}
	return heapMerge(cs, class, group)
}

// scanMerge is the small-fan-in merge: each group is found by scanning
// every cursor head for the minimum prefix, then drained in task order
// (cs is task-ordered and stays that way). All the work in the common
// case is inline uint64 compares and bulk span appends.
func scanMerge[K cmp.Ordered, V any](cs []cursor[K, V], class int, group func(key K, values []V, gi int) error) (pairs, groups int, err error) {
	var values []V
	for len(cs) > 0 {
		minPref := cs[0].r.prefs[cs[0].pos]
		for i := 1; i < len(cs); i++ {
			if p := cs[i].r.prefs[cs[i].pos]; p < minPref {
				minPref = p
			}
		}
		// An order-preserving prefix guarantees the minimum key sits
		// under the minimum prefix; on an exact tie any holder's key is
		// THE key, otherwise the tied heads' keys must be compared.
		exact := prefProvesEqual(class, minPref)
		var key K
		found := false
		for i := range cs {
			c := &cs[i]
			if c.r.prefs[c.pos] != minPref {
				continue
			}
			k := c.r.keys[c.pos]
			if !found || (!exact && k < key) {
				key, found = k, true
				if exact {
					break
				}
			}
		}
		values = values[:0]
		drained := false
		for i := range cs {
			c := &cs[i]
			if c.r.prefs[c.pos] != minPref || (!exact && c.r.keys[c.pos] != key) {
				continue
			}
			values = append(values, c.r.vals[c.r.offs[c.pos]:c.r.offs[c.pos+1]]...)
			c.pos++
			if c.pos == len(c.r.keys) {
				drained = true
			}
		}
		pairs += len(values)
		gi := groups
		groups++
		if err := group(key, values, gi); err != nil {
			return pairs, groups, err
		}
		if drained {
			n := 0
			for i := range cs {
				if cs[i].pos < len(cs[i].r.keys) {
					cs[n] = cs[i]
					n++
				}
			}
			cs = cs[:n]
		}
	}
	return pairs, groups, nil
}

// cursorLess orders cursors by (head prefix, head key, task), the
// heap-merge invariant. The key compare is skipped when the prefix
// tie already proves the keys equal.
func cursorLess[K cmp.Ordered, V any](a, b *cursor[K, V], class int) bool {
	pa, pb := a.r.prefs[a.pos], b.r.prefs[b.pos]
	if pa != pb {
		return pa < pb
	}
	if !prefProvesEqual(class, pa) {
		if c := cmp.Compare(a.r.keys[a.pos], b.r.keys[b.pos]); c != 0 {
			return c < 0
		}
	}
	return a.task < b.task
}

// siftDown restores the heap invariant for the subtree rooted at i.
// The heap is hand-rolled rather than container/heap so the merge
// inner loop pays no interface boxing or per-element allocation.
func siftDown[K cmp.Ordered, V any](h []cursor[K, V], i, class int) {
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(h) && cursorLess(&h[l], &h[least], class) {
			least = l
		}
		if r < len(h) && cursorLess(&h[r], &h[least], class) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// heapMerge is the wide-fan-in merge: a binary min-heap of cursors
// keeps each step O(log k) when k is too large for head scanning.
func heapMerge[K cmp.Ordered, V any](h []cursor[K, V], class int, group func(key K, values []V, gi int) error) (pairs, groups int, err error) {
	var values []V
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i, class)
	}
	for len(h) > 0 {
		c := &h[0]
		key, pref := c.r.keys[c.pos], c.r.prefs[c.pos]
		values = values[:0]
		// Drain every run's span for this key, lowest task first: the
		// heap's tie-break surfaces contributing runs in task order.
		for {
			c := &h[0]
			values = append(values, c.r.vals[c.r.offs[c.pos]:c.r.offs[c.pos+1]]...)
			c.pos++
			if c.pos == len(c.r.keys) {
				h[0] = h[len(h)-1]
				h = h[:len(h)-1]
			}
			siftDown(h, 0, class)
			if len(h) == 0 {
				break
			}
			c = &h[0]
			if c.r.prefs[c.pos] != pref || (!prefProvesEqual(class, pref) && c.r.keys[c.pos] != key) {
				break
			}
		}
		pairs += len(values)
		gi := groups
		groups++
		if err := group(key, values, gi); err != nil {
			return pairs, groups, err
		}
	}
	return pairs, groups, nil
}
