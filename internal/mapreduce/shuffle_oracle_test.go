package mapreduce

import (
	"cmp"
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"repro/internal/fault"
)

// The shuffle-equivalence oracle: the sorted-run merge pipeline must
// be observationally identical to the retained naive hash-group
// shuffle (Config.ReferenceShuffle) — same outputs byte for byte,
// same Stats, same errors — across random jobs varying key skew,
// task counts, combiner use, and injected task faults. The reducer
// prints the full values slice, so any value-reordering bug in the
// merge's stability shows up in the diff, not just miscounts.

// oracleJob maps each input record to 1-3 (key, value) pairs. Keys are
// drawn from a vocabulary with optional skew (a few hot keys absorb
// most records); values carry the record index so value order is
// observable in the output.
func oracleJob(vocab, hot int, combine bool, cfg Config[string]) *Job[int, string, int, string] {
	keyFor := func(r, i int) string {
		h := (r*2654435761 + i*40503) & 0x7fffffff
		if hot > 0 && h%100 < 80 { // 80% of pairs land on `hot` keys
			return fmt.Sprintf("hot-%d", h%hot)
		}
		return fmt.Sprintf("w-%d", h%vocab)
	}
	j := &Job[int, string, int, string]{
		Name:   "oracle",
		Config: cfg,
		Map: func(r int, emit func(string, int)) error {
			n := 1 + r%3
			for i := 0; i < n; i++ {
				emit(keyFor(r, i), r)
			}
			return nil
		},
		Reduce: func(key string, values []int, emit func(string)) error {
			emit(fmt.Sprintf("%s=%v", key, values))
			return nil
		},
	}
	if combine {
		// Emits two values per span (sum and count), exercising
		// combiners that expand as well as shrink a group.
		j.Combine = func(key string, values []int) ([]int, error) {
			sum := 0
			for _, v := range values {
				sum += v
			}
			return []int{sum, len(values)}, nil
		}
	}
	return j
}

func TestShuffleOracleRandomizedEquivalence(t *testing.T) {
	defer func(old int) { scanMaxRuns = old }(scanMaxRuns)
	rng := rand.New(rand.NewSource(1938))
	for trial := 0; trial < 60; trial++ {
		scanMaxRuns = 64
		if trial%3 == 0 {
			scanMaxRuns = 1 // drive the heap path through whole jobs too
		}
		records := rng.Intn(400)
		inputs := make([]int, records)
		for i := range inputs {
			inputs[i] = rng.Intn(1 << 20)
		}
		vocab := 1 + rng.Intn(200)
		hot := 0
		if rng.Intn(2) == 1 { // high-skew half of the trials
			hot = 1 + rng.Intn(3)
		}
		combine := rng.Intn(2) == 1
		cfg := Config[string]{
			MapTasks:    rng.Intn(10),
			ReduceTasks: 1 + rng.Intn(8),
			Parallelism: 1 + rng.Intn(4),
		}
		if rng.Intn(2) == 1 { // fault-injected half of the trials
			cfg.Faults = &fault.Plan{Seed: int64(trial), TaskFail: 0.2}
			cfg.MaxAttempts = 10
		}

		desc := fmt.Sprintf("trial %d (records=%d vocab=%d hot=%d combine=%v cfg=%+v)",
			trial, records, vocab, hot, combine, cfg)

		merged, mStats, mErr := oracleJob(vocab, hot, combine, cfg).Run(inputs)
		refCfg := cfg
		refCfg.ReferenceShuffle = true
		naive, nStats, nErr := oracleJob(vocab, hot, combine, refCfg).Run(inputs)

		if (mErr == nil) != (nErr == nil) {
			t.Fatalf("%s: error mismatch: merge=%v naive=%v", desc, mErr, nErr)
		}
		if mErr != nil {
			continue // both failed identically (deterministic injection)
		}
		if !reflect.DeepEqual(merged, naive) {
			for i := range merged {
				if i >= len(naive) || merged[i] != naive[i] {
					t.Fatalf("%s: outputs diverge at %d:\n merge: %q\n naive: %q", desc, i, merged[i], naive[i])
				}
			}
			t.Fatalf("%s: output lengths diverge: merge=%d naive=%d", desc, len(merged), len(naive))
		}
		// The merge-only accounting fields have no naive counterpart;
		// everything else must agree exactly, retries included.
		mStats.ShuffleRuns, mStats.MergePasses = 0, 0
		if mStats != nStats {
			t.Fatalf("%s: stats diverge:\n merge: %+v\n naive: %+v", desc, mStats, nStats)
		}
	}
}

// makeRun builds a span-compressed run from raw (unsorted) pairs the
// way the map side does: prefix + emission sequence, sort, compress.
func makeRun[K cmp.Ordered, V any](pairs []KV[K, V]) run[K, V] {
	fp := make([]prefKV[K, V], len(pairs))
	for i, kv := range pairs {
		fp[i] = prefKV[K, V]{pref: keyPrefix(kv.Key), seq: int32(i), kv: kv}
	}
	slices.SortFunc(fp, pairCmp[K, V]())
	r, err := buildRun(fp, nil)
	if err != nil {
		panic(err)
	}
	return r
}

// The oracle above runs jobs end to end; this pins the merge itself
// against a trivial per-partition reference (concatenate runs in task
// order, group with a hash map, sort keys) over adversarial run
// shapes: empty runs, single-run partitions, all-equal keys. Both
// merge shapes are driven: the head-scanning path (default) and the
// heap path (scanMaxRuns forced to 1).
func TestMergeRunsMatchesReferenceGrouping(t *testing.T) {
	defer func(old int) { scanMaxRuns = old }(scanMaxRuns)
	for _, scanMaxRuns = range []int{64, 1} {
		t.Run(fmt.Sprintf("scanMaxRuns=%d", scanMaxRuns), testMergeRunsMatchesReferenceGrouping)
	}
}

func testMergeRunsMatchesReferenceGrouping(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nRuns := rng.Intn(6)
		var flat [][]KV[int, int]
		runs := make([]*run[int, int], 0, nRuns)
		type ref struct{ vals []int }
		want := map[int]*ref{}
		var keys []int
		next := 0
		for r := 0; r < nRuns; r++ {
			n := rng.Intn(20)
			pairs := make([]KV[int, int], n)
			for i := range pairs {
				pairs[i] = KV[int, int]{Key: rng.Intn(5), Value: next}
				next++
			}
			sr := makeRun(pairs)
			flat = append(flat, pairs)
			runs = append(runs, &sr)
		}
		for _, pairs := range flat { // reference: task order, then key-sorted emission order
			byKey := map[int][]int{}
			for _, kv := range pairs {
				byKey[kv.Key] = append(byKey[kv.Key], kv.Value)
			}
			for k := 0; k < 5; k++ {
				if vs, ok := byKey[k]; ok {
					if want[k] == nil {
						want[k] = &ref{}
						keys = append(keys, k)
					}
					want[k].vals = append(want[k].vals, vs...)
				}
			}
		}

		var gotKeys []int
		pairs, groups, err := mergeRuns(runs, func(key int, values []int, gi int) error {
			if gi != len(gotKeys) {
				t.Fatalf("trial %d: gi = %d, want %d", trial, gi, len(gotKeys))
			}
			if len(gotKeys) > 0 && key <= gotKeys[len(gotKeys)-1] {
				t.Fatalf("trial %d: keys not strictly ascending: %d after %d", trial, key, gotKeys[len(gotKeys)-1])
			}
			gotKeys = append(gotKeys, key)
			if !reflect.DeepEqual(values, want[key].vals) {
				t.Fatalf("trial %d key %d: values = %v, want %v", trial, key, values, want[key].vals)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if groups != len(keys) || len(gotKeys) != len(keys) {
			t.Fatalf("trial %d: %d groups, want %d", trial, groups, len(keys))
		}
		total := 0
		for _, r := range runs {
			total += r.pairs()
		}
		if pairs != total {
			t.Fatalf("trial %d: %d pairs consumed, want %d", trial, pairs, total)
		}
	}
}

// adversarialKeys stresses every corner of the string prefix encoding:
// empty and NUL-bearing keys, prefix-of pairs straddling the 7-byte
// boundary, and 8+ byte keys sharing their first 7 bytes (the 0xFF
// saturation marker, where prefix ties must fall back to real
// comparisons).
var adversarialKeys = []string{
	"", "\x00", "\x00\x00", "a", "ab", "ab\x00", "ab\x00c", "abc",
	"abcdef", "abcdefg", "abcdefg\x00", "abcdefgh", "abcdefgh\x00",
	"abcdefghi", "abcdefgZ", "abcdefg0", "abcdefg00", "abcdefzzzzzz",
	"zzzzzzzz", "\xff\xff\xff\xff\xff\xff\xff\xff\xff", "\xff", "é", "éé",
}

// TestKeyPrefixContract checks the two properties every comparison in
// the pipeline relies on: a prefix difference decides the order, and
// an exact prefix tie proves key equality.
func TestKeyPrefixContract(t *testing.T) {
	class := prefixClass[string]()
	for _, a := range adversarialKeys {
		for _, b := range adversarialKeys {
			pa, pb := keyPrefix(a), keyPrefix(b)
			if (pa < pb && a >= b) || (pa > pb && a <= b) {
				t.Errorf("prefix misorders %q (%#x) vs %q (%#x)", a, pa, b, pb)
			}
			if pa == pb && prefProvesEqual(class, pa) && a != b {
				t.Errorf("exact prefix tie %#x on distinct keys %q vs %q", pa, a, b)
			}
		}
	}
	for _, k := range []int{-1 << 62, -2, -1, 0, 1, 2, 1 << 62} {
		for _, l := range []int{-1 << 62, -2, -1, 0, 1, 2, 1 << 62} {
			if cmpPref, cmpKey := cmp.Compare(keyPrefix(k), keyPrefix(l)), cmp.Compare(k, l); cmpPref != cmpKey {
				t.Errorf("int prefix misorders %d vs %d", k, l)
			}
		}
	}
}

// TestMergeRunsAdversarialStringKeys merges runs drawn from the
// adversarial key set — where prefix ties on distinct keys actually
// occur — against the same reference grouping, on both merge paths.
func TestMergeRunsAdversarialStringKeys(t *testing.T) {
	defer func(old int) { scanMaxRuns = old }(scanMaxRuns)
	for _, scanMaxRuns = range []int{64, 1} {
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 100; trial++ {
			nRuns := 1 + rng.Intn(6)
			var flat [][]KV[string, int]
			runs := make([]*run[string, int], 0, nRuns)
			next := 0
			for r := 0; r < nRuns; r++ {
				n := rng.Intn(30)
				pairs := make([]KV[string, int], n)
				for i := range pairs {
					pairs[i] = KV[string, int]{Key: adversarialKeys[rng.Intn(len(adversarialKeys))], Value: next}
					next++
				}
				sr := makeRun(pairs)
				flat = append(flat, pairs)
				runs = append(runs, &sr)
			}
			want := map[string][]int{}
			var keys []string
			for _, pairs := range flat {
				byKey := map[string][]int{}
				for _, kv := range pairs {
					byKey[kv.Key] = append(byKey[kv.Key], kv.Value)
				}
				for _, k := range adversarialKeys {
					if vs, ok := byKey[k]; ok {
						if _, seen := want[k]; !seen {
							keys = append(keys, k)
						}
						want[k] = append(want[k], vs...)
					}
				}
			}
			slices.Sort(keys)

			gi := 0
			_, groups, err := mergeRuns(runs, func(key string, values []int, g int) error {
				if g != gi || gi >= len(keys) || key != keys[gi] {
					t.Fatalf("trial %d group %d: key %q, want %q", trial, g, key, keys[min(gi, len(keys)-1)])
				}
				if !reflect.DeepEqual(values, want[key]) {
					t.Fatalf("trial %d key %q: values = %v, want %v", trial, key, values, want[key])
				}
				gi++
				return nil
			})
			if err != nil || groups != len(keys) {
				t.Fatalf("trial %d: groups=%d err=%v, want %d groups", trial, groups, err, len(keys))
			}
		}
	}
}
