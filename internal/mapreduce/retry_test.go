package mapreduce

import (
	"context"
	"errors"
	"testing"
	"time"
)

// The satellite-2 contract: an exponential-backoff sleep between task
// attempts must abort immediately when the context is cancelled, not
// finish the sleep. The always-fail mapper cancels the job on its
// first attempt; with a 10s base backoff the job must still return in
// well under a second, with ctx.Err() as the error.
func TestRetryBackoffAbortsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	job := &Job[int, string, int, string]{
		Map: func(rec int, emit func(string, int)) error {
			cancel()
			return boom
		},
		Reduce: func(k string, vs []int, emit func(string)) error { return nil },
		Config: Config[string]{
			MapTasks:     1,
			MaxAttempts:  5,
			RetryBackoff: 10 * time.Second,
		},
	}
	start := time.Now()
	_, _, err := job.RunContext(ctx, []int{1, 2, 3})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("job took %v — the backoff sleep ignored cancellation", elapsed)
	}
}

// With a live context the backoff actually waits between attempts and
// the retry budget still wins.
func TestRetryBackoffDelaysAttempts(t *testing.T) {
	var stamps []time.Time
	job := &Job[int, string, int, string]{
		Map: func(rec int, emit func(string, int)) error {
			stamps = append(stamps, time.Now())
			if len(stamps) < 3 {
				return errors.New("transient")
			}
			emit("k", 1)
			return nil
		},
		Reduce: func(k string, vs []int, emit func(string)) error {
			emit("ok")
			return nil
		},
		Config: Config[string]{
			MapTasks:     1,
			MaxAttempts:  3,
			RetryBackoff: 20 * time.Millisecond,
		},
	}
	out, stats, err := job.Run([]int{1})
	if err != nil || len(out) != 1 {
		t.Fatalf("out=%v stats=%+v err=%v", out, stats, err)
	}
	if len(stamps) != 3 || stats.TaskRetries != 2 {
		t.Fatalf("attempts=%d retries=%d, want 3 attempts / 2 retries", len(stamps), stats.TaskRetries)
	}
	// Exponential: gap1 >= base, gap2 >= 2·base.
	if g := stamps[1].Sub(stamps[0]); g < 20*time.Millisecond {
		t.Fatalf("first backoff gap %v < base", g)
	}
	if g := stamps[2].Sub(stamps[1]); g < 40*time.Millisecond {
		t.Fatalf("second backoff gap %v < 2·base", g)
	}
}

func TestBackoffDelayCap(t *testing.T) {
	base := 10 * time.Millisecond
	for attempt, want := range map[int]time.Duration{
		1: base, 2: 2 * base, 3: 4 * base, 6: 32 * base, 9: 32 * base,
	} {
		if got := backoffDelay(base, attempt); got != want {
			t.Errorf("backoffDelay(base, %d) = %v, want %v", attempt, got, want)
		}
	}
	if got := backoffDelay(0, 3); got != 0 {
		t.Errorf("zero base gave %v", got)
	}
}
