package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// The satellite-2 contract: an exponential-backoff sleep between task
// attempts must abort immediately when the context is cancelled, not
// finish the sleep. The always-fail mapper cancels the job on its
// first attempt; with a 10s base backoff the job must still return in
// well under a second, with ctx.Err() as the error.
func TestRetryBackoffAbortsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	job := &Job[int, string, int, string]{
		Map: func(rec int, emit func(string, int)) error {
			cancel()
			return boom
		},
		Reduce: func(k string, vs []int, emit func(string)) error { return nil },
		Config: Config[string]{
			MapTasks:     1,
			MaxAttempts:  5,
			RetryBackoff: 10 * time.Second,
		},
	}
	start := time.Now()
	_, _, err := job.RunContext(ctx, []int{1, 2, 3})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("job took %v — the backoff sleep ignored cancellation", elapsed)
	}
}

// With a live context the backoff actually waits between attempts and
// the retry budget still wins.
func TestRetryBackoffDelaysAttempts(t *testing.T) {
	var stamps []time.Time
	job := &Job[int, string, int, string]{
		Map: func(rec int, emit func(string, int)) error {
			stamps = append(stamps, time.Now())
			if len(stamps) < 3 {
				return errors.New("transient")
			}
			emit("k", 1)
			return nil
		},
		Reduce: func(k string, vs []int, emit func(string)) error {
			emit("ok")
			return nil
		},
		Config: Config[string]{
			MapTasks:     1,
			MaxAttempts:  3,
			RetryBackoff: 20 * time.Millisecond,
		},
	}
	out, stats, err := job.Run([]int{1})
	if err != nil || len(out) != 1 {
		t.Fatalf("out=%v stats=%+v err=%v", out, stats, err)
	}
	if len(stamps) != 3 || stats.TaskRetries != 2 {
		t.Fatalf("attempts=%d retries=%d, want 3 attempts / 2 retries", len(stamps), stats.TaskRetries)
	}
	// Exponential with jitter in [0.5, 1.0): gap1 >= base/2,
	// gap2 >= 2·base/2 = base.
	if g := stamps[1].Sub(stamps[0]); g < 10*time.Millisecond {
		t.Fatalf("first backoff gap %v < base/2", g)
	}
	if g := stamps[2].Sub(stamps[1]); g < 20*time.Millisecond {
		t.Fatalf("second backoff gap %v < base", g)
	}
}

// backoffDelay keeps the exponential envelope — the attempt'th delay
// lands in [e/2, e) for e = base·2^(attempt-1) capped at 32·base —
// and is a pure function of (seed, key, attempt).
func TestBackoffDelayEnvelopeAndDeterminism(t *testing.T) {
	base := 10 * time.Millisecond
	for attempt, env := range map[int]time.Duration{
		1: base, 2: 2 * base, 3: 4 * base, 6: 32 * base, 9: 32 * base,
	} {
		got := backoffDelay(base, 7, "map:3", attempt)
		if got < env/2 || got >= env {
			t.Errorf("backoffDelay(base, 7, map:3, %d) = %v, outside [%v, %v)", attempt, got, env/2, env)
		}
		if again := backoffDelay(base, 7, "map:3", attempt); again != got {
			t.Errorf("attempt %d not deterministic: %v then %v", attempt, got, again)
		}
	}
	if got := backoffDelay(0, 7, "map:3", 3); got != 0 {
		t.Errorf("zero base gave %v", got)
	}
}

// The jitter's point: a wave of tasks failing together must not sleep
// the same amount. 16 task identities on the same attempt should
// spread across the [e/2, e) window rather than collapse.
func TestBackoffDelaySpreadsTasks(t *testing.T) {
	base := 10 * time.Millisecond
	distinct := map[time.Duration]bool{}
	for task := 0; task < 16; task++ {
		key := fmt.Sprintf("map:%d", task)
		distinct[backoffDelay(base, 1, key, 2)] = true
	}
	if len(distinct) < 12 {
		t.Fatalf("16 tasks produced only %d distinct delays", len(distinct))
	}
	// Different seeds decorrelate the same task identity.
	if backoffDelay(base, 1, "map:0", 2) == backoffDelay(base, 2, "map:0", 2) {
		t.Fatal("seed does not influence the delay")
	}
}
