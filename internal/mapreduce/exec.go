package mapreduce

// exec.go completes the Hadoop Streaming analogy: real Hadoop
// Streaming runs arbitrary executables as mappers and reducers,
// feeding them lines on stdin and reading "key<TAB>value" lines from
// stdout. ExecMapper and ExecReducer adapt external commands to the
// StreamJob interface, so a job can mix Go functions and subprocess
// stages — the exact wire protocol the course's Python mappers speak.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os/exec"
	"slices"
	"strings"
)

// runCommand feeds input lines to the command's stdin and returns its
// stdout lines. Any stderr output is attached to errors.
func runCommand(argv []string, input []string) ([]string, error) {
	if len(argv) == 0 {
		return nil, fmt.Errorf("mapreduce: empty command")
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stdin = strings.NewReader(strings.Join(input, "\n") + "\n")
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("mapreduce: %v: %w (stderr: %s)", argv, err, strings.TrimSpace(errBuf.String()))
	}
	var lines []string
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			lines = append(lines, sc.Text())
		}
	}
	return lines, sc.Err()
}

// ExecMapper wraps an external command as a StreamMapper. Hadoop
// Streaming semantics: the command receives input lines on stdin and
// prints "key<TAB>value" lines; a line without a tab is a key with an
// empty value. The command is invoked once per input line, which
// keeps the adapter simple at the cost of process-launch overhead —
// batching lives in ExecMapperBatched.
func ExecMapper(argv ...string) StreamMapper {
	return func(line string, emit func(key, value string)) error {
		out, err := runCommand(argv, []string{line})
		if err != nil {
			return err
		}
		for _, l := range out {
			k, v := ParseKV(l)
			emit(k, v)
		}
		return nil
	}
}

// ExecReducer wraps an external command as a StreamReducer. The
// command receives the group's "key<TAB>value" lines on stdin (the
// sorted-input contract of Hadoop Streaming reducers) and every
// stdout line becomes a job output line.
func ExecReducer(argv ...string) StreamReducer {
	return func(key string, values []string, emit func(string)) error {
		input := make([]string, len(values))
		for i, v := range values {
			input[i] = FormatKV(key, v)
		}
		out, err := runCommand(argv, input)
		if err != nil {
			return err
		}
		for _, l := range out {
			emit(l)
		}
		return nil
	}
}

// RunStreamingPipeline executes a full streaming job whose mapper and
// reducer are external commands, invoked once per map split / reduce
// group batch rather than per record: the mapper command receives the
// whole split on stdin (exactly how Hadoop Streaming launches one
// process per task), so per-process overhead is amortized.
func RunStreamingPipeline(inputs []string, mapperArgv, reducerArgv []string, cfg Config[string]) ([]string, Stats, error) {
	cfg = cfg.withDefaults()
	splits := splitInputs(inputs, cfg.MapTasks)
	var stats Stats
	stats.MapTasks = len(splits)
	stats.ReduceTasks = cfg.ReduceTasks

	// Map phase: one subprocess per split.
	mapOut := make([][]run[string, string], len(splits))
	for t, split := range splits {
		lines, err := runCommand(mapperArgv, split)
		if err != nil {
			return nil, stats, fmt.Errorf("mapreduce: map task %d: %w", t, err)
		}
		stats.MapInputs += len(split)
		stats.MapOutputs += len(lines)
		flat := make([][]prefKV[string, string], cfg.ReduceTasks)
		for i, l := range lines {
			k, v := ParseKV(l)
			p := cfg.Partitioner(k, cfg.ReduceTasks)
			if p < 0 || p >= cfg.ReduceTasks {
				return nil, stats, fmt.Errorf("mapreduce: partitioner returned %d", p)
			}
			flat[p] = append(flat[p], prefKV[string, string]{pref: keyPrefix(k), seq: int32(i), kv: KV[string, string]{k, v}})
		}
		// The shuffle merges sorted runs; subprocess output arrives in
		// print order, so sort and span-compress it here, exactly as
		// runMapTask does for Go mappers.
		parts := make([]run[string, string], cfg.ReduceTasks)
		cmpPairs := pairCmp[string, string]()
		for p, fp := range flat {
			slices.SortFunc(fp, cmpPairs)
			r, err := buildRun(fp, nil)
			if err != nil {
				return nil, stats, err
			}
			parts[p] = r
		}
		mapOut[t] = parts
	}

	// Shuffle + reduce via the engine's shared phase, with the
	// external reducer adapted per group.
	job := &Job[string, string, string, string]{
		Reduce: func(key string, values []string, emit func(string)) error {
			return ExecReducer(reducerArgv...)(key, values, emit)
		},
		Counters: NewCounters(),
	}
	out, redStats, err := job.reducePhase(context.Background(), mapOut, cfg, nil, nil)
	if err != nil {
		return nil, stats, err
	}
	stats.CombineOutputs = redStats.CombineOutputs
	stats.ReduceGroups = redStats.ReduceGroups
	stats.Outputs = len(out)
	return out, stats, nil
}
