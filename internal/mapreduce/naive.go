package mapreduce

// naive.go retains the pre-sorted-run shuffle — a serial per-partition
// hash-group (map[K]int index) followed by a post-hoc sort.Slice —
// behind Config.ReferenceShuffle. It is the oracle the randomized
// equivalence test diffs the merge pipeline against, and the baseline
// the BenchmarkWordCount1M*Naive benchmarks measure the speedup over.
// It produces byte-identical outputs (its grouping is insensitive to
// the map side now handing it sorted runs) but pays the costs the
// sorted-run pipeline was built to remove: one goroutine doing every
// partition's grouping, a hash-map index per partition, a materialized
// group table, and a full re-sort of keys the runs already had in
// order.

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/obs"
)

func (j *Job[I, K, V, O]) naiveReducePhase(ctx context.Context, mapOut [][]run[K, V], cfg Config[K], inj *fault.Injector) ([]O, Stats, error) {
	var stats Stats
	type group struct {
		key    K
		values []V
	}
	tr := cfg.Obs.Tracer
	hGroup := cfg.Obs.Metrics.Histogram("mapreduce.group_size", nil) // nil-safe
	shufTS := tr.Now()
	partGroups := make([][]group, cfg.ReduceTasks)
	for p := 0; p < cfg.ReduceTasks; p++ {
		idx := map[K]int{}
		var groups []group
		for t := range mapOut {
			r := &mapOut[t][p]
			for si, key := range r.keys {
				g, ok := idx[key]
				if !ok {
					g = len(groups)
					idx[key] = g
					groups = append(groups, group{key: key})
				}
				span := r.vals[r.offs[si]:r.offs[si+1]]
				groups[g].values = append(groups[g].values, span...)
				stats.CombineOutputs += len(span)
			}
		}
		sort.Slice(groups, func(a, b int) bool { return groups[a].key < groups[b].key })
		partGroups[p] = groups
		stats.ReduceGroups += len(groups)
		for _, g := range groups {
			hGroup.Observe(float64(len(g.values)))
		}
	}
	if tr != nil {
		tr.Span(tr.Track("mapreduce-shuffle", 0, "shuffle"),
			"shuffle", shufTS, tr.Now()-shufTS,
			obs.Arg{Key: "groups", Value: int64(stats.ReduceGroups)})
	}

	var (
		retries int64
		statsMu sync.Mutex
	)
	partOut := make([][]O, cfg.ReduceTasks)
	err := runTasks(ctx, cfg.ReduceTasks, cfg.Parallelism, func(p int) error {
		redTS := tr.Now()
		defer func() {
			if tr != nil {
				tr.Span(tr.Track("mapreduce-reduce", p, fmt.Sprintf("reduce %d", p)),
					"reduce", redTS, tr.Now()-redTS,
					obs.Arg{Key: "groups", Value: int64(len(partGroups[p]))})
			}
		}()
		var out []O
		emit := func(o O) { out = append(out, o) }
		for gi, g := range partGroups[p] {
			attempts, err := retryTask(ctx, cfg.MaxAttempts, cfg.RetryBackoff,
				retrySeed(cfg), fmt.Sprintf("reduce:%d:%d", p, gi), func(attempt int) error {
				if inj.TaskFails("reduce", attempt, p, gi) {
					return fault.ErrInjected
				}
				checkpoint := len(out)
				if err := j.Reduce(g.key, g.values, emit); err != nil {
					out = out[:checkpoint] // discard partial emissions
					return err
				}
				return nil
			})
			statsMu.Lock()
			retries += int64(attempts - 1)
			statsMu.Unlock()
			if err != nil {
				return fmt.Errorf("mapreduce: reduce partition %d key %v: %w", p, g.key, err)
			}
		}
		partOut[p] = out
		return nil
	})
	if err != nil {
		stats.TaskRetries = int(retries)
		return nil, stats, err
	}

	var out []O
	for _, po := range partOut {
		out = append(out, po...)
	}
	stats.TaskRetries = int(retries)
	return out, stats, nil
}
