package mapreduce

// fleet.go distributes a job over real process boundaries: map tasks
// and reduce partitions are shipped to fleet workers over internal/net
// instead of goroutines, with the shuffle's sorted runs serialized
// across the wire. The coordinator is a plain task dispatcher — a task
// is idempotent (deterministic map/reduce over deterministic input),
// so a worker SIGKILLed mid-task is handled by re-dispatching the task
// after the rejoin, and a rank that never comes back has its tasks
// reassigned to the survivors. If every worker is lost the coordinator
// inlines the remaining tasks itself: degraded, never wrong. Output
// is byte-identical to Job.Run — the fleet changes where tasks
// execute, not what they compute.

import (
	"cmp"
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	pnet "repro/internal/net"
	"repro/internal/obs"
)

// MRProto names the fleet wire protocol version.
const MRProto = "mapreduce/1"

// Fleet application frame types.
const (
	// mrMap (coordinator -> worker): one map task — task id, reduce
	// partition count, and the split's input records.
	mrMap uint8 = pnet.FrameApp + iota
	// mrMapDone (worker -> coordinator): the task's per-partition
	// sorted runs plus the raw emission count.
	mrMapDone
	// mrReduce (coordinator -> worker): one reduce partition — its id
	// and every map task's non-empty run for it, in task order.
	mrReduce
	// mrReduceDone (worker -> coordinator): the partition's outputs
	// plus pair/group counts.
	mrReduceDone
	// mrStop (coordinator -> worker): the job is over; exit cleanly.
	mrStop
)

// Wire bundles the codec functions a fleet job needs to move records,
// intermediate pairs, and outputs between processes. Append functions
// extend a buffer; Read functions consume their encoding and return
// the remainder (the same inverse contract as External's codecs).
type Wire[I any, K cmp.Ordered, V, O any] struct {
	AppendIn  func([]byte, I) []byte
	ReadIn    func([]byte) (I, []byte, error)
	AppendKey func([]byte, K) []byte
	ReadKey   func([]byte) (K, []byte, error)
	AppendVal func([]byte, V) []byte
	ReadVal   func([]byte) (V, []byte, error)
	AppendOut func([]byte, O) []byte
	ReadOut   func([]byte) (O, []byte, error)
}

func (w *Wire[I, K, V, O]) check() error {
	if w == nil || w.AppendIn == nil || w.ReadIn == nil ||
		w.AppendKey == nil || w.ReadKey == nil ||
		w.AppendVal == nil || w.ReadVal == nil ||
		w.AppendOut == nil || w.ReadOut == nil {
		return errors.New("mapreduce: fleet wire needs all eight codec functions")
	}
	return nil
}

// StringIntWire is the ready-made wire for jobs with string records,
// string keys, int values, and KV[string, int] outputs — word count
// and friends.
func StringIntWire() *Wire[string, string, int, KV[string, int]] {
	return &Wire[string, string, int, KV[string, int]]{
		AppendIn: AppendString, ReadIn: ReadString,
		AppendKey: AppendString, ReadKey: ReadString,
		AppendVal: AppendInt, ReadVal: ReadInt,
		AppendOut: func(buf []byte, kv KV[string, int]) []byte {
			return AppendInt(AppendString(buf, kv.Key), kv.Value)
		},
		ReadOut: func(buf []byte) (KV[string, int], []byte, error) {
			k, rest, err := ReadString(buf)
			if err != nil {
				return KV[string, int]{}, rest, err
			}
			v, rest, err := ReadInt(rest)
			return KV[string, int]{k, v}, rest, err
		},
	}
}

// appendRun serializes one sorted run. Prefixes are not shipped — the
// receiver recomputes them from the keys, keeping the wire format
// independent of the accelerator encoding.
func appendRun[I any, K cmp.Ordered, V, O any](buf []byte, r *run[K, V], w *Wire[I, K, V, O]) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.keys)))
	for _, k := range r.keys {
		buf = w.AppendKey(buf, k)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.offs)))
	for _, off := range r.offs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(off))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.vals)))
	for _, v := range r.vals {
		buf = w.AppendVal(buf, v)
	}
	return buf
}

func readRun[I any, K cmp.Ordered, V, O any](buf []byte, w *Wire[I, K, V, O]) (run[K, V], []byte, error) {
	var r run[K, V]
	u32 := func() (uint32, error) {
		if len(buf) < 4 {
			return 0, errors.New("mapreduce: truncated run")
		}
		v := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		return v, nil
	}
	nk, err := u32()
	if err != nil {
		return r, buf, err
	}
	r.keys = make([]K, nk)
	r.prefs = make([]uint64, nk)
	for i := range r.keys {
		if r.keys[i], buf, err = w.ReadKey(buf); err != nil {
			return r, buf, err
		}
		r.prefs[i] = keyPrefix(r.keys[i])
	}
	no, err := u32()
	if err != nil {
		return r, buf, err
	}
	r.offs = make([]int32, no)
	for i := range r.offs {
		v, err := u32()
		if err != nil {
			return r, buf, err
		}
		r.offs[i] = int32(v)
	}
	nv, err := u32()
	if err != nil {
		return r, buf, err
	}
	r.vals = make([]V, nv)
	for i := range r.vals {
		if r.vals[i], buf, err = w.ReadVal(buf); err != nil {
			return r, buf, err
		}
	}
	return r, buf, nil
}

// FleetWorker joins the fleet at cfg.Join and executes map and reduce
// tasks until the coordinator sends stop. The worker process must
// construct the same Job (same Map/Combine/Reduce and Partitioner) the
// coordinator runs — only data crosses the wire, never code.
func (j *Job[I, K, V, O]) FleetWorker(ctx context.Context, cfg pnet.WorkerConfig, w *Wire[I, K, V, O]) error {
	if err := w.check(); err != nil {
		return err
	}
	if cfg.Proto == "" {
		cfg.Proto = MRProto
	}
	return pnet.RunWorker(ctx, cfg, func(m pnet.Msg, send func(pnet.Msg) error) error {
		switch m.Type {
		case mrMap:
			buf := m.Payload
			if len(buf) < 12 {
				return errors.New("mapreduce: truncated map message")
			}
			task := int(binary.LittleEndian.Uint32(buf))
			nReduce := int(binary.LittleEndian.Uint32(buf[4:]))
			nRec := int(binary.LittleEndian.Uint32(buf[8:]))
			buf = buf[12:]
			records := make([]I, nRec)
			var err error
			for i := range records {
				if records[i], buf, err = w.ReadIn(buf); err != nil {
					return err
				}
			}
			cfg := j.Config.withDefaults()
			cfg.ReduceTasks = nReduce
			out, emitted, _, err := j.runMapTask(ctx, task, records, cfg, nil)
			if err != nil {
				return err
			}
			reply := binary.LittleEndian.AppendUint32(nil, uint32(task))
			reply = binary.LittleEndian.AppendUint32(reply, uint32(emitted))
			reply = binary.LittleEndian.AppendUint32(reply, uint32(len(out)))
			for p := range out {
				reply = appendRun(reply, &out[p], w)
			}
			return send(pnet.Msg{Type: mrMapDone, Payload: reply})
		case mrReduce:
			buf := m.Payload
			if len(buf) < 8 {
				return errors.New("mapreduce: truncated reduce message")
			}
			p := int(binary.LittleEndian.Uint32(buf))
			nRuns := int(binary.LittleEndian.Uint32(buf[4:]))
			buf = buf[8:]
			runs := make([]*run[K, V], nRuns)
			for i := range runs {
				var r run[K, V]
				var err error
				if r, buf, err = readRun(buf, w); err != nil {
					return err
				}
				runs[i] = &r
			}
			var outs []O
			emit := func(o O) { outs = append(outs, o) }
			pairs, groups, err := mergeRuns(runs, func(key K, values []V, gi int) error {
				return j.Reduce(key, values, emit)
			})
			if err != nil {
				return err
			}
			reply := binary.LittleEndian.AppendUint32(nil, uint32(p))
			reply = binary.LittleEndian.AppendUint32(reply, uint32(pairs))
			reply = binary.LittleEndian.AppendUint32(reply, uint32(groups))
			reply = binary.LittleEndian.AppendUint32(reply, uint32(len(outs)))
			for _, o := range outs {
				reply = w.AppendOut(reply, o)
			}
			return send(pnet.Msg{Type: mrReduceDone, Payload: reply})
		case mrStop:
			return pnet.ErrWorkerDone
		default:
			return fmt.Errorf("mapreduce: unexpected frame type %d", m.Type)
		}
	})
}

// fleetPhase dispatches tasks [0, n) across the fleet: every idle
// worker gets a task, a dead worker's task goes back to the pending
// pool (re-dispatched to whoever is free — the deterministic task
// makes duplicate execution harmless, and completion is recorded only
// once), and when every rank is lost the coordinator inlines the rest.
// retries counts re-dispatches caused by deaths.
func fleetPhase(ctx context.Context, co *pnet.Coordinator, workers int, n int,
	mkMsg func(task int) pnet.Msg,
	done func(task int, payload []byte) error,
	inline func(task int) error,
	doneType uint8, lost []bool, sink obs.Sink) (retries int, err error) {

	if n == 0 {
		return 0, nil
	}
	pending := make([]int, n)
	for i := range pending {
		pending[i] = n - 1 - i // pop order = task order
	}
	assigned := make([]int, workers) // rank -> task, -1 = idle
	for i := range assigned {
		assigned[i] = -1
	}
	completed := make([]bool, n)
	remaining := n

	allLost := func() bool {
		for _, l := range lost {
			if !l {
				return false
			}
		}
		return true
	}
	inlineRest := func() error {
		for t := 0; t < n; t++ {
			if completed[t] {
				continue
			}
			if err := inline(t); err != nil {
				return err
			}
			completed[t] = true
			remaining--
		}
		return nil
	}
	assign := func(rank int) {
		if lost[rank] || assigned[rank] >= 0 {
			return
		}
		for len(pending) > 0 {
			t := pending[len(pending)-1]
			pending = pending[:len(pending)-1]
			if completed[t] {
				continue
			}
			if co.Send(rank, mkMsg(t)) == nil {
				assigned[rank] = t
			} else {
				pending = append(pending, t)
			}
			return
		}
	}
	release := func(rank int) {
		if t := assigned[rank]; t >= 0 {
			assigned[rank] = -1
			if !completed[t] {
				pending = append(pending, t)
				retries++
			}
		}
	}

	for r := 0; r < workers; r++ {
		assign(r)
	}
	for remaining > 0 {
		if allLost() {
			sink.Log.Event(obs.LevelError, "mapreduce", "all fleet workers lost; finishing inline",
				obs.Arg{Key: "remaining", Value: int64(remaining)})
			return retries, inlineRest()
		}
		select {
		case <-ctx.Done():
			return retries, ctx.Err()
		case ev, ok := <-co.Events():
			if !ok {
				return retries, errors.New("mapreduce: fleet coordinator closed")
			}
			switch ev.Kind {
			case pnet.PeerJoined:
				// A rejoining rank lost its in-flight task with its
				// process; hand it (or the next pending one) out again.
				release(ev.Rank)
				assign(ev.Rank)
			case pnet.PeerDead:
				release(ev.Rank)
				sink.Log.Event(obs.LevelWarn, "mapreduce", "fleet worker died",
					obs.Arg{Key: "rank", Value: int64(ev.Rank)})
				// Reassign to an idle survivor right away rather than
				// waiting for the respawn.
				for r := 0; r < workers; r++ {
					assign(r)
				}
			case pnet.PeerLost:
				lost[ev.Rank] = true
				release(ev.Rank)
				for r := 0; r < workers; r++ {
					assign(r)
				}
			case pnet.PeerMsg:
				if ev.Msg.Type != doneType || len(ev.Msg.Payload) < 4 {
					continue
				}
				t := int(binary.LittleEndian.Uint32(ev.Msg.Payload))
				if t < 0 || t >= n {
					return retries, fmt.Errorf("mapreduce: fleet done for unknown task %d", t)
				}
				if assigned[ev.Rank] == t {
					assigned[ev.Rank] = -1
				}
				if completed[t] {
					assign(ev.Rank) // duplicate after a re-dispatch race
					continue
				}
				if err := done(t, ev.Msg.Payload[4:]); err != nil {
					return retries, err
				}
				completed[t] = true
				remaining--
				assign(ev.Rank)
			}
		}
	}
	return retries, nil
}

// RunFleet executes the job over a worker fleet and returns outputs in
// the same deterministic order as Run: reduce partitions in index
// order, keys ascending within each. Spill, External, ReferenceShuffle
// and fault injection are single-process features and are rejected
// here; fleet crashes are real worker deaths.
func (j *Job[I, K, V, O]) RunFleet(ctx context.Context, inputs []I, fc *pnet.FleetConfig, w *Wire[I, K, V, O]) ([]O, Stats, error) {
	if err := w.check(); err != nil {
		return nil, Stats{}, err
	}
	if j.Map == nil || j.Reduce == nil {
		return nil, Stats{}, errors.New("mapreduce: job needs both Map and Reduce")
	}
	if j.Config.Faults != nil || j.Spill != nil || j.Config.MaxShuffleBytes > 0 || j.Config.ReferenceShuffle {
		return nil, Stats{}, errors.New("mapreduce: fleet mode excludes Faults/Spill/External/ReferenceShuffle")
	}
	if j.Counters == nil {
		j.Counters = NewCounters()
	}
	cfg := j.Config.withDefaults()
	splits := splitInputs(inputs, cfg.MapTasks)
	stats := Stats{MapTasks: len(splits), ReduceTasks: cfg.ReduceTasks}
	for _, s := range splits {
		stats.MapInputs += len(s)
	}

	conf := *fc
	conf.Proto = MRProto
	if conf.Workers <= 0 {
		return nil, stats, errors.New("mapreduce: fleet needs FleetConfig.Workers >= 1")
	}
	if !conf.Obs.Enabled() {
		conf.Obs = cfg.Obs
	}
	co, err := pnet.NewCoordinator(conf)
	if err != nil {
		return nil, stats, err
	}
	defer co.Close()
	lost := make([]bool, conf.Workers)
	pr := cfg.Obs.Progress
	pr.Update("mapreduce",
		obs.F("map_tasks", float64(len(splits))),
		obs.F("map_done", 0),
		obs.F("reduce_tasks", float64(cfg.ReduceTasks)),
		obs.F("reduce_done", 0))

	// ---- Map phase over the fleet -----------------------------------
	mapOut := make([][]run[K, V], len(splits))
	mapDone := 0
	mapRetries, err := fleetPhase(ctx, co, conf.Workers, len(splits),
		func(t int) pnet.Msg {
			buf := binary.LittleEndian.AppendUint32(nil, uint32(t))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(cfg.ReduceTasks))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(splits[t])))
			for _, rec := range splits[t] {
				buf = w.AppendIn(buf, rec)
			}
			return pnet.Msg{Type: mrMap, Payload: buf}
		},
		func(t int, payload []byte) error {
			if len(payload) < 8 {
				return errors.New("mapreduce: truncated map reply")
			}
			emitted := int(binary.LittleEndian.Uint32(payload))
			nParts := int(binary.LittleEndian.Uint32(payload[4:]))
			buf := payload[8:]
			if nParts != cfg.ReduceTasks {
				return fmt.Errorf("mapreduce: map reply has %d partitions, want %d", nParts, cfg.ReduceTasks)
			}
			out := make([]run[K, V], nParts)
			var err error
			for p := range out {
				if out[p], buf, err = readRun(buf, w); err != nil {
					return err
				}
			}
			mapOut[t] = out
			stats.MapOutputs += emitted
			j.Counters.Add("map.outputs", int64(emitted))
			mapDone++
			pr.Update("mapreduce", obs.F("map_done", float64(mapDone)))
			return nil
		},
		func(t int) error {
			out, emitted, _, err := j.runMapTask(ctx, t, splits[t], cfg, nil)
			if err != nil {
				return fmt.Errorf("mapreduce: map task %d: %w", t, err)
			}
			mapOut[t] = out
			stats.MapOutputs += emitted
			j.Counters.Add("map.outputs", int64(emitted))
			mapDone++
			pr.Update("mapreduce", obs.F("map_done", float64(mapDone)))
			return nil
		},
		mrMapDone, lost, cfg.Obs)
	if err != nil {
		return nil, stats, err
	}

	// ---- Reduce phase over the fleet --------------------------------
	partRuns := make([][]*run[K, V], cfg.ReduceTasks)
	for p := 0; p < cfg.ReduceTasks; p++ {
		for t := range mapOut {
			if p < len(mapOut[t]) && len(mapOut[t][p].keys) > 0 {
				partRuns[p] = append(partRuns[p], &mapOut[t][p])
			}
		}
		stats.ShuffleRuns += len(partRuns[p])
		if len(partRuns[p]) > 0 {
			stats.MergePasses++
		}
	}
	partOut := make([][]O, cfg.ReduceTasks)
	redDone := 0
	record := func(p, pairs, groups int, outs []O) {
		partOut[p] = outs
		stats.CombineOutputs += pairs
		stats.ReduceGroups += groups
		redDone++
		pr.Update("mapreduce", obs.F("reduce_done", float64(redDone)))
	}
	redRetries, err := fleetPhase(ctx, co, conf.Workers, cfg.ReduceTasks,
		func(p int) pnet.Msg {
			buf := binary.LittleEndian.AppendUint32(nil, uint32(p))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(partRuns[p])))
			for _, r := range partRuns[p] {
				buf = appendRun(buf, r, w)
			}
			return pnet.Msg{Type: mrReduce, Payload: buf}
		},
		func(p int, payload []byte) error {
			if len(payload) < 12 {
				return errors.New("mapreduce: truncated reduce reply")
			}
			pairs := int(binary.LittleEndian.Uint32(payload))
			groups := int(binary.LittleEndian.Uint32(payload[4:]))
			nOut := int(binary.LittleEndian.Uint32(payload[8:]))
			buf := payload[12:]
			outs := make([]O, nOut)
			var err error
			for i := range outs {
				if outs[i], buf, err = w.ReadOut(buf); err != nil {
					return err
				}
			}
			record(p, pairs, groups, outs)
			return nil
		},
		func(p int) error {
			var outs []O
			emit := func(o O) { outs = append(outs, o) }
			pairs, groups, err := mergeRuns(partRuns[p], func(key K, values []V, gi int) error {
				return j.Reduce(key, values, emit)
			})
			if err != nil {
				return fmt.Errorf("mapreduce: reduce partition %d: %w", p, err)
			}
			record(p, pairs, groups, outs)
			return nil
		},
		mrReduceDone, lost, cfg.Obs)
	if err != nil {
		return nil, stats, err
	}

	for r := 0; r < conf.Workers; r++ {
		co.Send(r, pnet.Msg{Type: mrStop}) // best effort
	}
	stats.TaskRetries = mapRetries + redRetries
	var out []O
	for _, po := range partOut {
		out = append(out, po...)
	}
	stats.Outputs = len(out)
	if m := cfg.Obs.Metrics; m != nil {
		m.Counter("mapreduce.tasks.map").Add(int64(stats.MapTasks))
		m.Counter("mapreduce.tasks.reduce").Add(int64(stats.ReduceTasks))
		m.Counter("mapreduce.records.in").Add(int64(stats.MapInputs))
		m.Counter("mapreduce.records.out").Add(int64(stats.Outputs))
		m.Counter("mapreduce.groups").Add(int64(stats.ReduceGroups))
		m.Counter("mapreduce.retries").Add(int64(stats.TaskRetries))
		m.Counter("mapreduce.shuffle.runs").Add(int64(stats.ShuffleRuns))
		m.Counter("mapreduce.shuffle.merge_passes").Add(int64(stats.MergePasses))
	}
	return out, stats, nil
}
