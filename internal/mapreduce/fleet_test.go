package mapreduce

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	pnet "repro/internal/net"
)

// fleetCorpus is large enough that map tasks are in flight while kills
// land, and deterministic so every run agrees.
func fleetCorpus(lines int) []string {
	words := []string{"grain", "pile", "topple", "halo", "rank", "lease", "frame", "rejoin"}
	out := make([]string, lines)
	for i := range out {
		a := words[i%len(words)]
		b := words[(i*7+3)%len(words)]
		c := words[(i*13+5)%len(words)]
		out[i] = a + " " + b + " " + c + " " + a
	}
	return out
}

// runFleetWordCount runs the corpus over a goroutine fleet on the chan
// transport and returns outputs + stats.
func runFleetWordCount(t *testing.T, cfg Config[string], lines []string,
	spawn func(ctx context.Context, addr string)) ([]KV[string, int], Stats) {
	t.Helper()
	tr, _ := pnet.New("chan")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	fc := &pnet.FleetConfig{
		Transport:   tr,
		Listen:      "mr-fleet-" + t.Name(),
		Workers:     3,
		Lease:       300 * time.Millisecond,
		JoinTimeout: 10 * time.Second,
		Spawn: func(rank int, addr string) error {
			once.Do(func() { spawn(ctx, addr) })
			return nil
		},
	}
	out, stats, err := wordCountJob(cfg).RunFleet(ctx, lines, fc, StringIntWire())
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	return out, stats
}

// fleetWorkers launches n wordcount fleet workers as goroutines.
func fleetWorkers(tr pnet.Transport, cfg Config[string], n int) func(ctx context.Context, addr string) {
	return func(ctx context.Context, addr string) {
		for r := 0; r < n; r++ {
			go wordCountJob(cfg).FleetWorker(ctx, pnet.WorkerConfig{
				Transport: tr, Join: addr, Rank: r,
				Backoff:         pnet.Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond},
				MaxDialAttempts: 1000,
			}, StringIntWire())
		}
	}
}

// TestFleetWordCountMatchesRun pins the tentpole equality: the fleet
// run returns the exact output slice Run produces — same order, same
// values — and the shared stats agree.
func TestFleetWordCountMatchesRun(t *testing.T) {
	cfg := Config[string]{MapTasks: 4, ReduceTasks: 3}
	lines := fleetCorpus(200)
	want, wantStats, err := wordCountJob(cfg).Run(lines)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := pnet.New("chan")
	got, stats := runFleetWordCount(t, cfg, lines, fleetWorkers(tr, cfg, 3))
	if len(got) != len(want) {
		t.Fatalf("fleet produced %d outputs, Run produced %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if stats.MapTasks != wantStats.MapTasks || stats.ReduceTasks != wantStats.ReduceTasks ||
		stats.MapInputs != wantStats.MapInputs || stats.MapOutputs != wantStats.MapOutputs ||
		stats.ReduceGroups != wantStats.ReduceGroups || stats.Outputs != wantStats.Outputs ||
		stats.ShuffleRuns != wantStats.ShuffleRuns {
		t.Fatalf("fleet stats %+v != run stats %+v", stats, wantStats)
	}
}

// TestFleetWorkerDeathAndReassignment kills worker incarnations while
// tasks are in flight; re-dispatch must keep the output identical.
func TestFleetWorkerDeathAndReassignment(t *testing.T) {
	cfg := Config[string]{MapTasks: 12, ReduceTasks: 4}
	lines := fleetCorpus(3000)
	want, _, err := wordCountJob(cfg).Run(lines)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := pnet.New("chan")
	var kills atomic.Int64
	got, stats := runFleetWordCount(t, cfg, lines, func(ctx context.Context, addr string) {
		for r := 0; r < 3; r++ {
			go func(rank int) {
				for incarnation := 1; ctx.Err() == nil; incarnation++ {
					wctx, wcancel := context.WithCancel(ctx)
					if rank == 1 && incarnation <= 2 {
						go func(delay time.Duration) {
							time.Sleep(delay)
							kills.Add(1)
							wcancel()
						}(time.Duration(incarnation) * 2 * time.Millisecond)
					}
					wordCountJob(cfg).FleetWorker(wctx, pnet.WorkerConfig{
						Transport: tr, Join: addr, Rank: rank,
						Backoff:         pnet.Backoff{Base: time.Millisecond, Max: 20 * time.Millisecond},
						MaxDialAttempts: 1000,
					}, StringIntWire())
					wcancel()
					if rank != 1 || incarnation > 2 {
						return
					}
				}
			}(r)
		}
	})
	if len(got) != len(want) {
		t.Fatalf("fleet produced %d outputs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if kills.Load() > 0 && stats.TaskRetries == 0 {
		// Kills can land between tasks; only a kill mid-task forces a
		// retry, so this is informational rather than fatal.
		t.Logf("killed %d incarnations without forcing a re-dispatch", kills.Load())
	}
}

// TestFleetAllWorkersLostFallsBackInline spawns nothing: after the
// supervisor gives up on every rank the coordinator must finish the
// job inline with identical output.
func TestFleetAllWorkersLostFallsBackInline(t *testing.T) {
	cfg := Config[string]{MapTasks: 3, ReduceTasks: 2}
	lines := fleetCorpus(50)
	want, _, err := wordCountJob(cfg).Run(lines)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := pnet.New("chan")
	fc := &pnet.FleetConfig{
		Transport:   tr,
		Listen:      "mr-fleet-lost",
		Workers:     2,
		Lease:       200 * time.Millisecond,
		JoinTimeout: 30 * time.Millisecond,
		MaxRespawns: 2,
		Backoff:     pnet.Backoff{Base: 2 * time.Millisecond, Max: 10 * time.Millisecond},
		Spawn:       func(rank int, addr string) error { return nil },
	}
	got, _, err := wordCountJob(cfg).RunFleet(context.Background(), lines, fc, StringIntWire())
	if err != nil {
		t.Fatalf("degraded fleet run: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("inline fallback produced %d outputs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestFleetRejectsSingleProcessFeatures: fault injection, spilling and
// the reference shuffle are single-process concerns.
func TestFleetRejectsSingleProcessFeatures(t *testing.T) {
	tr, _ := pnet.New("chan")
	fc := &pnet.FleetConfig{Transport: tr, Listen: "mr-fleet-rej", Workers: 1}
	for name, cfg := range map[string]Config[string]{
		"faults":    {Faults: &fault.Plan{Seed: 1}},
		"reference": {ReferenceShuffle: true},
		"external":  {MaxShuffleBytes: 1 << 20},
	} {
		_, _, err := wordCountJob(cfg).RunFleet(context.Background(), fleetCorpus(4), fc, StringIntWire())
		if err == nil {
			t.Fatalf("%s: accepted in fleet mode", name)
		}
	}
}

// TestRunRoundTrip pins the wire codec for runs, including the
// recomputed prefixes.
func TestRunRoundTrip(t *testing.T) {
	w := StringIntWire()
	kvs := []KV[string, int]{{"alpha", 1}, {"alpha", 2}, {"beta", 7}, {"longerkeythanprefix", 3}}
	pairs := make([]prefKV[string, int], len(kvs))
	for i, kv := range kvs {
		pairs[i] = prefKV[string, int]{pref: keyPrefix(kv.Key), seq: int32(i), kv: kv}
	}
	r, err := buildRun(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := appendRun(nil, &r, w)
	got, rest, err := readRun(buf, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if len(got.keys) != len(r.keys) || len(got.offs) != len(r.offs) || len(got.vals) != len(r.vals) {
		t.Fatalf("shape mismatch: %+v vs %+v", got, r)
	}
	for i := range r.keys {
		if got.keys[i] != r.keys[i] || got.prefs[i] != r.prefs[i] {
			t.Fatalf("key %d mismatch", i)
		}
	}
	for i := range r.vals {
		if got.vals[i] != r.vals[i] {
			t.Fatalf("val %d mismatch", i)
		}
	}
	// Empty run round-trips too.
	empty, rest, err := readRun(appendRun(nil, &run[string, int]{}, w), w)
	if err != nil || len(rest) != 0 || len(empty.keys) != 0 {
		t.Fatalf("empty run: %v %d %d", err, len(rest), len(empty.keys))
	}
}
