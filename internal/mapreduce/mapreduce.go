// Package mapreduce implements the three-phase MapReduce programming
// model (Dean & Ghemawat 2008) that the Warming-Stripes assignment
// teaches: a map phase over input splits, a group-by-keys shuffle, and
// a reduce phase — plus the pieces a real runtime has and the course
// discusses: hash partitioning, combiners, counters, configurable map
// and reduce parallelism, and bounded task retry.
//
// The shuffle is Hadoop's sort-merge design: each map task emits
// per-partition sorted runs (sorted inside the parallel map phase,
// combiner applied to the run), and the reduce phase k-way merges a
// partition's runs in one streaming pass that feeds equal keys
// directly into the reducer — partitions concurrently, no hash-map
// grouping, no global re-sort (merge.go; the retired hash-group
// shuffle survives in naive.go as a validation oracle).
//
// The engine is deliberately deterministic: reduce input groups are
// ordered by key, and within a group values appear in (map-task,
// emission) order, so every job result is reproducible regardless of
// the worker interleaving. A Hadoop-Streaming-style line-oriented
// front end is provided in streaming.go.
package mapreduce

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	pnet "repro/internal/net"
	"repro/internal/obs"
)

// KV is one key/value pair flowing between phases.
type KV[K cmp.Ordered, V any] struct {
	Key   K
	Value V
}

// Mapper transforms one input record into zero or more intermediate
// pairs via emit. Returning an error fails the map task (it will be
// retried up to Config.MaxAttempts times).
type Mapper[I any, K cmp.Ordered, V any] func(record I, emit func(K, V)) error

// Reducer folds all values of one key into zero or more outputs via
// emit. The values slice is owned by the caller; reducers must not
// retain it.
type Reducer[K cmp.Ordered, V, O any] func(key K, values []V, emit func(O)) error

// Combiner locally pre-reduces the values a single map task emitted
// for one key, producing the (smaller) value list actually shuffled.
// It must be semantically idempotent with respect to the reducer —
// the classic MapReduce combiner contract.
type Combiner[K cmp.Ordered, V any] func(key K, values []V) ([]V, error)

// Partitioner assigns a key to one of nReduce partitions. It must be
// deterministic and return a value in [0, nReduce).
type Partitioner[K cmp.Ordered] func(key K, nReduce int) int

// HashPartitioner is the default: FNV-1a over the key's string form,
// Hadoop's HashPartitioner in spirit.
func HashPartitioner[K cmp.Ordered](key K, nReduce int) int {
	h := fnv.New32a()
	fmt.Fprintf(h, "%v", key)
	return int(h.Sum32() % uint32(nReduce))
}

// Config tunes a job run.
type Config[K cmp.Ordered] struct {
	// MapTasks is the number of map tasks the input is split into;
	// 0 means one task per input chunk as provided.
	MapTasks int
	// ReduceTasks is the number of reduce partitions; 0 means 1.
	ReduceTasks int
	// Parallelism bounds concurrently running tasks; 0 means
	// GOMAXPROCS.
	Parallelism int
	// MaxAttempts is the per-task retry budget; 0 means 1 (no retry).
	MaxAttempts int
	// RetryBackoff is the base sleep between task attempts, growing
	// exponentially (base, 2·base, 4·base, … capped at 32·base) and
	// jittered into the top half of each step so simultaneous failures
	// do not retry in lockstep. The jitter is deterministic per
	// (seed, task, attempt), keeping fault replays exact. The sleep is
	// context-aware — cancellation aborts it immediately.
	// 0 retries back-to-back.
	RetryBackoff time.Duration
	// Partitioner routes keys to reduce partitions; nil means
	// HashPartitioner.
	Partitioner Partitioner[K]
	// Obs attaches the observability layer: map/shuffle/reduce task
	// spans on the "mapreduce-*" tracks, mapreduce.* counters, and a
	// group-size histogram. The zero Sink disables it.
	Obs obs.Sink
	// Faults enables deterministic task-failure injection: map and
	// reduce task attempts fail with the plan's TaskFail probability
	// and are absorbed by the ordinary retry budget (injection
	// defaults MaxAttempts to 3 when left zero). Same seed, same
	// failure schedule, same final output — the retries are invisible
	// except in Stats.TaskRetries. nil disables.
	Faults *fault.Plan
	// ReferenceShuffle selects the retained naive shuffle (serial
	// hash-group per partition plus a post-hoc sort, the pre-sorted-run
	// implementation) instead of the parallel k-way merge pipeline.
	// It exists for validation (the randomized equivalence oracle) and
	// benchmarking; outputs are identical either way. Incompatible with
	// MaxShuffleBytes — the naive shuffle cannot run out-of-core.
	ReferenceShuffle bool
	// MaxShuffleBytes caps the approximate bytes of map output held
	// resident for the shuffle. Once a completed map task would push
	// the account past the cap, its runs are spilled to disk and the
	// reduce phase switches that partition to the multi-pass external
	// merge (external.go). Requires Job.External for the scratch dir
	// and wire codecs. 0 keeps the whole shuffle in memory. Output is
	// byte-identical either way.
	MaxShuffleBytes int64
	// MergeFanIn caps how many runs one external merge pass streams at
	// once (intermediate merged runs are re-spilled until the final
	// pass fits); 0 means 16, values below 2 are treated as 0. Only
	// consulted when MaxShuffleBytes forces spilling.
	MergeFanIn int
}

func (c Config[K]) withDefaults() Config[K] {
	if c.ReduceTasks <= 0 {
		c.ReduceTasks = 1
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
		if c.Faults != nil && c.Faults.TaskFail > 0 {
			// Injected failures need retry headroom: the plan's own
			// attempts budget when given, else a small default.
			c.MaxAttempts = 3
			if n := c.Faults.Retry.MaxAttempts; n > 0 {
				c.MaxAttempts = n
			}
		}
	}
	if c.Partitioner == nil {
		c.Partitioner = HashPartitioner[K]
	}
	return c
}

// Counters collect named int64 metrics across tasks, like Hadoop job
// counters. Safe for concurrent use.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: map[string]int64{}} }

// Add increments counter name by delta.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the value of counter name (0 if never touched).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Stats describes an executed job.
type Stats struct {
	MapTasks        int
	ReduceTasks     int
	MapInputs       int // records consumed by mappers
	MapOutputs      int // pairs emitted by mappers
	CombineOutputs  int // pairs after combining (== MapOutputs without a combiner)
	ReduceGroups    int // distinct keys reduced
	Outputs         int // records emitted by reducers
	TaskRetries     int // failed task attempts that were retried
	ShuffleRuns     int // non-empty sorted runs fed to the shuffle merges (0 with ReferenceShuffle)
	MergePasses     int // per-partition k-way merge passes executed (0 with ReferenceShuffle)
	MapTasksResumed int // map tasks restored from spill files instead of executed (0 without Job.Spill)
	SpilledRuns     int // sorted runs written to external run files under the MaxShuffleBytes budget
	// SpilledBytes counts external run-file bytes written, including
	// intermediate multi-pass merge output (0 when nothing spilled).
	SpilledBytes int64
}

// Job binds the phases of one MapReduce computation.
type Job[I any, K cmp.Ordered, V, O any] struct {
	Name     string
	Map      Mapper[I, K, V]
	Combine  Combiner[K, V] // optional
	Reduce   Reducer[K, V, O]
	Config   Config[K]
	Counters *Counters // optional; created on demand
	// Spill makes map-task output durable: completed tasks persist
	// their sorted runs to Spill.Dir and a re-run of the same job
	// resumes from the first unfinished task (see spill.go). nil
	// keeps everything in memory.
	Spill *Spill[K, V]
	// External supplies the scratch directory and wire codecs for the
	// out-of-core shuffle (external.go); required when
	// Config.MaxShuffleBytes > 0 and ignored otherwise.
	External *External[K, V]
}

// Run executes the job over the input records and returns the reduce
// outputs in deterministic order (reduce partitions in index order,
// keys ascending within each partition).
func (j *Job[I, K, V, O]) Run(inputs []I) ([]O, Stats, error) {
	return j.RunContext(context.Background(), inputs)
}

// RunContext is Run with cancellation: queued tasks are skipped once
// ctx is cancelled and ctx.Err() is returned (already-running task
// attempts finish — map and reduce functions are not interrupted
// mid-record).
func (j *Job[I, K, V, O]) RunContext(ctx context.Context, inputs []I) ([]O, Stats, error) {
	cfg := j.Config.withDefaults()
	if j.Map == nil || j.Reduce == nil {
		return nil, Stats{}, errors.New("mapreduce: job needs both Map and Reduce")
	}
	if j.Counters == nil {
		j.Counters = NewCounters()
	}
	inj := fault.NewInjector(cfg.Faults, cfg.Obs)
	if j.Spill != nil {
		if err := j.Spill.prepare(); err != nil {
			return nil, Stats{}, err
		}
	}

	splits := splitInputs(inputs, cfg.MapTasks)
	stats := Stats{MapTasks: len(splits), ReduceTasks: cfg.ReduceTasks}

	var ext *extShuffle[K, V]
	if cfg.MaxShuffleBytes > 0 {
		if j.External == nil {
			return nil, stats, errors.New("mapreduce: Config.MaxShuffleBytes needs Job.External (scratch dir + shuffle codecs)")
		}
		if cfg.ReferenceShuffle {
			return nil, stats, errors.New("mapreduce: ReferenceShuffle cannot run out-of-core; unset Config.MaxShuffleBytes")
		}
		var eerr error
		ext, eerr = newExtShuffle(j.External, cfg.MaxShuffleBytes, cfg.MergeFanIn, len(splits), cfg.ReduceTasks)
		if eerr != nil {
			return nil, stats, eerr
		}
		defer ext.cleanup()
	}

	// ---- Map phase -------------------------------------------------
	// mapOut[task][partition] holds the sorted run task t routed to
	// partition p, kept per-task so the shuffle merge can break key
	// ties by task index for deterministic value ordering.
	mapOut := make([][]run[K, V], len(splits))
	var (
		retries int64
		statsMu sync.Mutex
		mapDone atomic.Int64
	)
	tr := cfg.Obs.Tracer
	pr := cfg.Obs.Progress
	pr.Update("mapreduce",
		obs.F("map_tasks", float64(len(splits))),
		obs.F("map_done", 0),
		obs.F("reduce_tasks", float64(cfg.ReduceTasks)),
		obs.F("reduce_done", 0))
	err := runTasks(ctx, len(splits), cfg.Parallelism, func(t int) error {
		split := splits[t]
		mapTS := tr.Now()
		if j.Spill != nil {
			if out, emitted, ok := j.Spill.load(t, cfg.ReduceTasks); ok {
				mapOut[t] = out
				if ext != nil {
					if err := ext.admit(t, mapOut[t]); err != nil {
						return err
					}
				}
				statsMu.Lock()
				stats.MapOutputs += emitted
				stats.MapTasksResumed++
				statsMu.Unlock()
				j.Counters.Add("map.outputs", int64(emitted))
				if m := cfg.Obs.Metrics; m != nil {
					m.Counter("ckpt.spill_resumed").Inc()
				}
				if tr != nil {
					tr.Span(tr.Track("mapreduce-map", t, fmt.Sprintf("map task %d", t)),
						"map(resumed)", mapTS, tr.Now()-mapTS,
						obs.Arg{Key: "emitted", Value: int64(emitted)})
				}
				pr.Update("mapreduce", obs.F("map_done", float64(mapDone.Add(1))))
				return nil
			}
		}
		out, emitted, attempts, err := j.runMapTask(ctx, t, split, cfg, inj)
		if tr != nil {
			tr.Span(tr.Track("mapreduce-map", t, fmt.Sprintf("map task %d", t)),
				"map", mapTS, tr.Now()-mapTS,
				obs.Arg{Key: "records", Value: int64(len(split))},
				obs.Arg{Key: "emitted", Value: int64(emitted)})
		}
		if err != nil {
			return fmt.Errorf("mapreduce: map task %d: %w", t, err)
		}
		if j.Spill != nil {
			if err := j.Spill.save(t, out, emitted); err != nil {
				return fmt.Errorf("mapreduce: map task %d spill: %w", t, err)
			}
			if m := cfg.Obs.Metrics; m != nil {
				m.Counter("ckpt.spill_saves").Inc()
			}
		}
		mapOut[t] = out
		if ext != nil {
			if err := ext.admit(t, mapOut[t]); err != nil {
				return err
			}
		}
		statsMu.Lock()
		retries += int64(attempts - 1)
		stats.MapOutputs += emitted
		statsMu.Unlock()
		j.Counters.Add("map.outputs", int64(emitted))
		pr.Update("mapreduce", obs.F("map_done", float64(mapDone.Add(1))))
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	for _, split := range splits {
		stats.MapInputs += len(split)
	}

	out, redStats, err := j.reducePhase(ctx, mapOut, cfg, inj, ext)
	if err != nil {
		return nil, stats, err
	}
	stats.CombineOutputs = redStats.CombineOutputs
	stats.ReduceGroups = redStats.ReduceGroups
	stats.Outputs = len(out)
	stats.TaskRetries = int(retries) + redStats.TaskRetries
	stats.ShuffleRuns = redStats.ShuffleRuns
	stats.MergePasses = redStats.MergePasses
	if ext != nil {
		stats.SpilledRuns = int(ext.spilledRuns.Load())
		stats.SpilledBytes = ext.spilledBytes.Load()
	}
	if m := cfg.Obs.Metrics; m != nil {
		m.Counter("mapreduce.tasks.map").Add(int64(stats.MapTasks))
		m.Counter("mapreduce.tasks.reduce").Add(int64(stats.ReduceTasks))
		m.Counter("mapreduce.records.in").Add(int64(stats.MapInputs))
		m.Counter("mapreduce.records.out").Add(int64(stats.Outputs))
		m.Counter("mapreduce.groups").Add(int64(stats.ReduceGroups))
		m.Counter("mapreduce.retries").Add(int64(stats.TaskRetries))
		m.Counter("mapreduce.shuffle.runs").Add(int64(stats.ShuffleRuns))
		m.Counter("mapreduce.shuffle.merge_passes").Add(int64(stats.MergePasses))
		if ext != nil {
			m.Counter("mapreduce.shuffle.spilled_runs").Add(int64(stats.SpilledRuns))
			m.Counter("mapreduce.shuffle.spilled_bytes").Add(stats.SpilledBytes)
		}
	}
	return out, stats, nil
}

// reducePhase runs the shuffle and reduce over already-partitioned,
// per-task-sorted map output. Partitions are processed concurrently
// under cfg.Parallelism; within a partition the k-way merge of the
// task runs streams each key's values (in map-task order) directly
// into the reducer — shuffle and reduce are one fused pass with no
// group materialization. The returned Stats carries only the fields
// this phase owns: CombineOutputs, ReduceGroups, TaskRetries,
// ShuffleRuns, MergePasses. A non-nil ext routes partitions with
// spilled runs through the multi-pass external merge; output and
// group ordinals are identical to the in-memory path.
func (j *Job[I, K, V, O]) reducePhase(ctx context.Context, mapOut [][]run[K, V], cfg Config[K], inj *fault.Injector, ext *extShuffle[K, V]) ([]O, Stats, error) {
	if cfg.ReferenceShuffle {
		return j.naiveReducePhase(ctx, mapOut, cfg, inj)
	}
	var (
		stats   Stats
		statsMu sync.Mutex
		redDone atomic.Int64
	)
	tr := cfg.Obs.Tracer
	pr := cfg.Obs.Progress
	hGroup := cfg.Obs.Metrics.Histogram("mapreduce.group_size", nil) // nil-safe
	partOut := make([][]O, cfg.ReduceTasks)
	err := runTasks(ctx, cfg.ReduceTasks, cfg.Parallelism, func(p int) error {
		shufTS := tr.Now()
		var (
			out     []O
			retries int
		)
		emit := func(o O) { out = append(out, o) }
		group := func(key K, values []V, gi int) error {
			hGroup.Observe(float64(len(values)))
			attempts, rerr := retryTask(ctx, cfg.MaxAttempts, cfg.RetryBackoff,
				retrySeed(cfg), fmt.Sprintf("reduce:%d:%d", p, gi), func(attempt int) error {
				if inj.TaskFails("reduce", attempt, p, gi) {
					return fault.ErrInjected
				}
				checkpoint := len(out)
				if err := j.Reduce(key, values, emit); err != nil {
					out = out[:checkpoint] // discard partial emissions
					return err
				}
				return nil
			})
			retries += attempts - 1
			if rerr != nil {
				return fmt.Errorf("mapreduce: reduce partition %d key %v: %w", p, key, rerr)
			}
			return nil
		}
		var pairs, groups, nRuns, passes int
		var err error
		if ext != nil && ext.hasDisk(p) {
			pairs, groups, nRuns, passes, err = ext.mergePartition(p, mapOut, group)
		} else {
			runs := make([]*run[K, V], 0, len(mapOut))
			for t := range mapOut {
				if p < len(mapOut[t]) && len(mapOut[t][p].keys) > 0 {
					runs = append(runs, &mapOut[t][p])
				}
			}
			nRuns = len(runs)
			if nRuns > 0 {
				passes = 1
			}
			pairs, groups, err = mergeRuns(runs, group)
		}
		if tr != nil {
			now := tr.Now()
			// Shuffle and reduce are fused, so the per-partition spans
			// cover the same interval on their two tracks; the shuffle
			// span carries the merge shape.
			tr.Span(tr.Track("mapreduce-shuffle", p, fmt.Sprintf("shuffle %d", p)),
				"shuffle", shufTS, now-shufTS,
				obs.Arg{Key: "runs", Value: int64(nRuns)},
				obs.Arg{Key: "pairs", Value: int64(pairs)},
				obs.Arg{Key: "groups", Value: int64(groups)})
			tr.Span(tr.Track("mapreduce-reduce", p, fmt.Sprintf("reduce %d", p)),
				"reduce", shufTS, now-shufTS,
				obs.Arg{Key: "groups", Value: int64(groups)})
		}
		statsMu.Lock()
		stats.CombineOutputs += pairs
		stats.ReduceGroups += groups
		stats.TaskRetries += retries
		stats.ShuffleRuns += nRuns
		stats.MergePasses += passes
		statsMu.Unlock()
		if err != nil {
			return err
		}
		partOut[p] = out
		pr.Update("mapreduce", obs.F("reduce_done", float64(redDone.Add(1))))
		return nil
	})
	if err != nil {
		return nil, stats, err
	}

	var out []O
	for _, po := range partOut {
		out = append(out, po...)
	}
	return out, stats, nil
}

// runTasks executes fn(task) for task in [0, n), at most parallelism
// at a time, skipping tasks queued after ctx is cancelled (ctx.Err()
// becomes the result). The first error wins; later tasks still run —
// the map/reduce retry semantics are per task, not per phase. It is
// the shared skeleton of the map phase, the shuffle-reduce phase, and
// the naive reference reduce loop.
func runTasks(ctx context.Context, n, parallelism int, fn func(task int) error) error {
	var (
		wg      sync.WaitGroup
		sem     = make(chan struct{}, parallelism)
		errMu   sync.Mutex
		firstEr error
	)
	record := func(err error) {
		errMu.Lock()
		if firstEr == nil {
			firstEr = err
		}
		errMu.Unlock()
	}
	for t := 0; t < n; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				record(err)
				return
			}
			if err := fn(t); err != nil {
				record(err)
			}
		}(t)
	}
	wg.Wait()
	return firstEr
}

// runMapTask executes one map task (with retry): maps every record of
// the split, partitions the result, and turns each partition slice
// into a sorted, span-compressed run (with map-side combining applied
// as the spans are built, so combiner jobs shrink data before the
// shuffle ever sees it). The sort happens here, at map-task
// granularity, inside the already-parallel map phase — the shuffle
// then only merges. It returns the per-partition runs, the raw
// emission count, the number of attempts, and the final error.
func (j *Job[I, K, V, O]) runMapTask(ctx context.Context, t int, split []I, cfg Config[K], inj *fault.Injector) ([]run[K, V], int, int, error) {
	var parts []run[K, V]
	emitted := 0
	attempts, err := retryTask(ctx, cfg.MaxAttempts, cfg.RetryBackoff,
		retrySeed(cfg), fmt.Sprintf("map:%d", t), func(attempt int) error {
		if inj.TaskFails("map", attempt, t) {
			return fault.ErrInjected
		}
		var pairs []KV[K, V]
		emit := func(k K, v V) { pairs = append(pairs, KV[K, V]{k, v}) }
		for _, rec := range split {
			if err := j.Map(rec, emit); err != nil {
				return err
			}
		}
		emitted = len(pairs)

		flat := make([][]prefKV[K, V], cfg.ReduceTasks)
		for i, kv := range pairs {
			p := cfg.Partitioner(kv.Key, cfg.ReduceTasks)
			if p < 0 || p >= cfg.ReduceTasks {
				return fmt.Errorf("partitioner returned %d for %d partitions", p, cfg.ReduceTasks)
			}
			flat[p] = append(flat[p], prefKV[K, V]{pref: keyPrefix(kv.Key), seq: int32(i), kv: kv})
		}
		parts = make([]run[K, V], cfg.ReduceTasks)
		cmpPairs := pairCmp[K, V]()
		for p, fp := range flat {
			// The emission-sequence tie-break makes this unstable (and
			// faster) sort produce a stable order.
			slices.SortFunc(fp, cmpPairs)
			r, err := buildRun(fp, j.Combine)
			if err != nil {
				return err
			}
			parts[p] = r
		}
		return nil
	})
	return parts, emitted, attempts, err
}

// retrySeed picks the jitter seed for a config: the fault plan's seed
// when injection is on (so a replayed plan reproduces the exact retry
// timeline), zero otherwise.
func retrySeed[K cmp.Ordered](cfg Config[K]) int64 {
	if cfg.Faults != nil {
		return cfg.Faults.Seed
	}
	return 0
}

// retryTask runs fn up to maxAttempts times (fn receives the 1-based
// attempt number), returning the number of attempts made and the last
// error (nil on success). Between attempts it sleeps a jittered
// exponential backoff keyed by the task identity (see backoffDelay;
// zero backoff disables the sleep) — and the sleep is context-aware:
// ctx cancellation aborts the wait immediately and surfaces ctx.Err()
// instead of burning the remaining attempts.
func retryTask(ctx context.Context, maxAttempts int, backoff time.Duration, seed int64, key string, fn func(attempt int) error) (int, error) {
	var err error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if err = fn(attempt); err == nil {
			return attempt, nil
		}
		if attempt == maxAttempts {
			break
		}
		if cerr := sleepContext(ctx, backoffDelay(backoff, seed, key, attempt)); cerr != nil {
			return attempt, cerr
		}
	}
	return maxAttempts, err
}

// backoffDelay is the attempt'th retry delay: base·2^(attempt-1)
// capped at 32·base, scaled by a jitter factor in [0.5, 1.0) so a
// wave of simultaneously failing tasks does not retry in lockstep.
// The jitter is a pure function of (seed, key, attempt) — the same
// deterministic recipe the transport's reconnect backoff uses — so a
// replayed fault schedule reproduces the exact retry timeline.
func backoffDelay(base time.Duration, seed int64, key string, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	return pnet.Backoff{Base: base, Max: base << 5, Seed: seed}.Delay(key, attempt)
}

// sleepContext waits d or until ctx is cancelled, whichever comes
// first, returning ctx.Err() on cancellation (also when d is zero and
// ctx is already dead — a cancelled job never starts another
// attempt).
func sleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// splitInputs partitions inputs into n contiguous splits (or one
// record per split when n <= 0 is resolved to len(inputs) capped at
// a sane default).
func splitInputs[I any](inputs []I, n int) [][]I {
	if len(inputs) == 0 {
		return nil
	}
	if n <= 0 {
		n = min(len(inputs), runtime.GOMAXPROCS(0)*4)
	}
	if n > len(inputs) {
		n = len(inputs)
	}
	splits := make([][]I, 0, n)
	base := len(inputs) / n
	extra := len(inputs) % n
	pos := 0
	for i := 0; i < n; i++ {
		size := base
		if i < extra {
			size++
		}
		splits = append(splits, inputs[pos:pos+size])
		pos += size
	}
	return splits
}

// SortOutputs sorts job outputs with the given less function; a
// convenience for callers that want a global order over partitioned
// results.
func SortOutputs[O any](outputs []O, less func(a, b O) bool) {
	slices.SortStableFunc(outputs, func(a, b O) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	})
}
