package mapreduce

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/fault"
)

var faultLines = []string{
	"to be or not to be",
	"that is the question",
	"whether tis nobler in the mind to suffer",
	"the slings and arrows of outrageous fortune",
}

func TestInjectedTaskFailuresAbsorbedByRetry(t *testing.T) {
	plain, _, err := wordCountJob(Config[string]{MapTasks: 4, ReduceTasks: 3}).Run(faultLines)
	if err != nil {
		t.Fatal(err)
	}
	job := wordCountJob(Config[string]{
		MapTasks: 4, ReduceTasks: 3, MaxAttempts: 8,
		Faults: &fault.Plan{Seed: 11, TaskFail: 0.4},
	})
	faulty, stats, err := job.Run(faultLines)
	if err != nil {
		t.Fatalf("injected failures leaked past the retry budget: %v", err)
	}
	if !reflect.DeepEqual(plain, faulty) {
		t.Fatalf("injection changed the output:\n%v\n%v", plain, faulty)
	}
	if stats.TaskRetries == 0 {
		t.Fatal("40% task-failure rate caused zero retries")
	}
}

func TestInjectedFailuresDeterministic(t *testing.T) {
	run := func() (Stats, []KV[string, int]) {
		out, stats, err := wordCountJob(Config[string]{
			MapTasks: 4, ReduceTasks: 3, MaxAttempts: 8,
			Faults: &fault.Plan{Seed: 5, TaskFail: 0.4},
		}).Run(faultLines)
		if err != nil {
			t.Fatal(err)
		}
		return stats, out
	}
	sa, oa := run()
	sb, ob := run()
	if sa != sb {
		t.Fatalf("same seed, different stats: %+v vs %+v", sa, sb)
	}
	if !reflect.DeepEqual(oa, ob) {
		t.Fatal("same seed, different outputs")
	}
}

func TestInjectedFailuresExhaustBudget(t *testing.T) {
	// TaskFail = 1 fails every attempt; the explicit 2-attempt budget
	// cannot absorb it, so the job must surface ErrInjected.
	_, _, err := wordCountJob(Config[string]{
		MaxAttempts: 2,
		Faults:      &fault.Plan{Seed: 1, TaskFail: 1},
	}).Run(faultLines)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestRunContextCancelledMapReduce(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := wordCountJob(Config[string]{}).RunContext(ctx, faultLines)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
