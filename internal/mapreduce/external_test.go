package mapreduce

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/fault"
)

// The out-of-core shuffle must be observationally identical to the
// in-memory sorted-run path: same outputs byte for byte, same stats
// (minus the spill accounting it alone owns), same errors under
// deterministic fault injection — across random jobs, budgets small
// enough that most tasks spill, and merge fan-ins small enough to
// force multi-pass merging.

func TestExternalShuffleOracleRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4711))
	for trial := 0; trial < 40; trial++ {
		records := rng.Intn(400)
		inputs := make([]int, records)
		for i := range inputs {
			inputs[i] = rng.Intn(1 << 20)
		}
		vocab := 1 + rng.Intn(200)
		hot := 0
		if rng.Intn(2) == 1 {
			hot = 1 + rng.Intn(3)
		}
		combine := rng.Intn(2) == 1
		cfg := Config[string]{
			MapTasks:    rng.Intn(10),
			ReduceTasks: 1 + rng.Intn(8),
			Parallelism: 1 + rng.Intn(4),
		}
		if rng.Intn(2) == 1 {
			cfg.Faults = &fault.Plan{Seed: int64(trial), TaskFail: 0.2}
			cfg.MaxAttempts = 10
		}

		extCfg := cfg
		extCfg.MaxShuffleBytes = 1 + int64(rng.Intn(4096)) // tiny: most tasks spill
		extCfg.MergeFanIn = 2 + rng.Intn(3)                // tiny: multi-pass merges
		desc := fmt.Sprintf("trial %d (records=%d vocab=%d hot=%d combine=%v budget=%d fanIn=%d cfg=%+v)",
			trial, records, vocab, hot, combine, extCfg.MaxShuffleBytes, extCfg.MergeFanIn, cfg)

		memOut, memStats, memErr := oracleJob(vocab, hot, combine, cfg).Run(inputs)
		extJob := oracleJob(vocab, hot, combine, extCfg)
		extJob.External = NewStringIntExternal(t.TempDir(), fmt.Sprintf("oracle%d", trial))
		extOut, extStats, extErr := extJob.Run(inputs)

		if (memErr == nil) != (extErr == nil) {
			t.Fatalf("%s: error mismatch: mem=%v ext=%v", desc, memErr, extErr)
		}
		if memErr != nil {
			continue // both failed identically (deterministic injection)
		}
		if !reflect.DeepEqual(memOut, extOut) {
			for i := range memOut {
				if i >= len(extOut) || memOut[i] != extOut[i] {
					t.Fatalf("%s: outputs diverge at %d:\n mem: %q\n ext: %q", desc, i, memOut[i], extOut[i])
				}
			}
			t.Fatalf("%s: output lengths diverge: mem=%d ext=%d", desc, len(memOut), len(extOut))
		}
		// Multi-pass merging and spill accounting are external-only;
		// every other stat — runs, retries, groups — must agree.
		extStats.MergePasses, extStats.SpilledRuns, extStats.SpilledBytes = memStats.MergePasses, 0, 0
		if memStats != extStats {
			t.Fatalf("%s: stats diverge:\n mem: %+v\n ext: %+v", desc, memStats, extStats)
		}
		if left, _ := filepath.Glob(filepath.Join(extJob.External.Dir, "*.run")); memErr == nil && len(left) > 0 {
			t.Fatalf("%s: scratch files left behind: %v", desc, left)
		}
	}
}

// Adversarial string keys must round-trip the wire codec and the
// external merge exactly like the in-memory prefix machinery.
func TestExternalShuffleAdversarialKeys(t *testing.T) {
	job := func() *Job[int, string, int, string] {
		return &Job[int, string, int, string]{
			Name: "adversarial",
			Map: func(r int, emit func(string, int)) error {
				emit(adversarialKeys[r%len(adversarialKeys)], r)
				emit(adversarialKeys[(r*7)%len(adversarialKeys)], -r)
				return nil
			},
			Reduce: func(key string, values []int, emit func(string)) error {
				emit(fmt.Sprintf("%q=%v", key, values))
				return nil
			},
			Config: Config[string]{MapTasks: 7, ReduceTasks: 3, Parallelism: 2},
		}
	}
	inputs := make([]int, 300)
	for i := range inputs {
		inputs[i] = i
	}
	memOut, _, err := job().Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	ext := job()
	ext.Config.MaxShuffleBytes = 1 // everything spills
	ext.Config.MergeFanIn = 2
	ext.External = NewStringIntExternal(t.TempDir(), "adv")
	extOut, stats, err := ext.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(memOut, extOut) {
		t.Fatalf("outputs diverge:\n mem: %v\n ext: %v", memOut, extOut)
	}
	if stats.SpilledRuns == 0 {
		t.Fatalf("budget of 1 byte spilled nothing: %+v", stats)
	}
}

// wordCountJob is the canonical external-shuffle workload: word count
// over generated text.
func extWordCountJob(cfg Config[string]) *Job[string, string, int, KV[string, int]] {
	return &Job[string, string, int, KV[string, int]]{
		Name: "wordcount-ext",
		Map: func(line string, emit func(string, int)) error {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
			return nil
		},
		Combine: func(key string, values []int) ([]int, error) {
			sum := 0
			for _, v := range values {
				sum += v
			}
			return []int{sum}, nil
		},
		Reduce: func(key string, values []int, emit func(KV[string, int])) error {
			sum := 0
			for _, v := range values {
				sum += v
			}
			emit(KV[string, int]{key, sum})
			return nil
		},
		Config: cfg,
	}
}

func extCorpus(lines, wordsPerLine, vocab int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, lines)
	var sb strings.Builder
	for i := range out {
		sb.Reset()
		for w := 0; w < wordsPerLine; w++ {
			if w > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString("word-")
			sb.WriteString(strconv.Itoa(rng.Intn(vocab)))
		}
		out[i] = sb.String()
	}
	return out
}

// TestExternalShuffleLargerThanBudget runs a word count whose shuffle
// volume is several times the enforced budget and checks the external
// path end to end: resident bytes stayed bounded (spills happened),
// the merge went multi-pass, and the output is byte-identical to the
// unconstrained in-memory run. EXT_SMOKE_LINES scales the corpus up
// for the CI memory-capped smoke job (scripts/external_smoke.sh).
func TestExternalShuffleLargerThanBudget(t *testing.T) {
	lines := 4000
	if s := os.Getenv("EXT_SMOKE_LINES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad EXT_SMOKE_LINES %q: %v", s, err)
		}
		lines = n
	}
	corpus := extCorpus(lines, 16, 5000, 99)

	cfg := Config[string]{MapTasks: 32, ReduceTasks: 4, Parallelism: 2}
	memOut, memStats, err := extWordCountJob(cfg).Run(corpus)
	if err != nil {
		t.Fatal(err)
	}

	// Budget the external run at a quarter of what the in-memory run
	// holds resident, so the shuffle is ≥4× the budget by construction.
	var resident int64
	{
		probe := extWordCountJob(cfg)
		mapOut := make([][]run[string, int], 32)
		splits := splitInputs(corpus, 32)
		for i, split := range splits {
			out, _, _, err := probe.runMapTask(t.Context(), i, split, cfg.withDefaults(), nil)
			if err != nil {
				t.Fatal(err)
			}
			resident += runsResidentBytes(out)
			mapOut[i] = out
		}
	}
	budget := resident / 4

	extCfg := cfg
	extCfg.MaxShuffleBytes = budget
	extCfg.MergeFanIn = 4
	job := extWordCountJob(extCfg)
	job.External = NewStringIntExternal(t.TempDir(), "wc")
	extOut, extStats, err := job.Run(corpus)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(memOut, extOut) {
		t.Fatalf("external output diverges from in-memory (%d vs %d records)", len(extOut), len(memOut))
	}
	if extStats.SpilledRuns == 0 || extStats.SpilledBytes == 0 {
		t.Fatalf("shuffle %dB against budget %dB spilled nothing: %+v", resident, budget, extStats)
	}
	if extStats.MergePasses <= memStats.MergePasses {
		t.Fatalf("expected multi-pass external merges (fan-in 4): ext passes %d, mem passes %d",
			extStats.MergePasses, memStats.MergePasses)
	}
	t.Logf("shuffle resident=%dB budget=%dB spilled=%d runs / %dB, merge passes %d (in-memory %d)",
		resident, budget, extStats.SpilledRuns, extStats.SpilledBytes, extStats.MergePasses, memStats.MergePasses)
}

// A run file damaged on disk — bit rot, truncation, wrong file — must
// surface as a clear error from the external merge, never as silently
// wrong output.
func TestExternalRunFileCorruption(t *testing.T) {
	dir := t.TempDir()
	cfg := NewStringIntExternal(dir, "corrupt")
	if err := cfg.prepare(); err != nil {
		t.Fatal(err)
	}
	writeRun := func(t *testing.T, name string, pairs []KV[string, int]) string {
		t.Helper()
		r := makeRun(pairs)
		path := filepath.Join(dir, name)
		if _, err := writeRunFile(cfg, path, &r); err != nil {
			t.Fatal(err)
		}
		return path
	}
	drain := func(path string) error {
		rd, err := openRun(cfg, path)
		if err != nil {
			return err
		}
		defer rd.close()
		src := &extSource[string, int]{rd: rd, path: path}
		_, _, err = extMerge([]*extSource[string, int]{src}, func(string, []int, int) error { return nil })
		return err
	}
	pairs := []KV[string, int]{{"alpha", 1}, {"beta", 2}, {"beta", 3}, {"gamma", 4}}

	t.Run("clean", func(t *testing.T) {
		if err := drain(writeRun(t, "clean.run", pairs)); err != nil {
			t.Fatalf("clean run failed to read: %v", err)
		}
	})
	t.Run("crc-mismatch", func(t *testing.T) {
		path := writeRun(t, "crc.run", pairs)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-12] ^= 0x40 // inside the last payload block
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		err = drain(path)
		if err == nil || !strings.Contains(err.Error(), "CRC mismatch") {
			t.Fatalf("corrupted payload: err = %v, want CRC mismatch", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		path := writeRun(t, "short.run", pairs)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Cut the end-of-run marker and part of the final block: the
		// shape a crashed writer leaves behind.
		if err := os.WriteFile(path, raw[:len(raw)-12], 0o644); err != nil {
			t.Fatal(err)
		}
		err = drain(path)
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("truncated file: err = %v, want truncation error", err)
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		path := filepath.Join(dir, "magic.run")
		if err := os.WriteFile(path, []byte("NOPE\x01\x00\x00\x00"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := drain(path); err == nil || !strings.Contains(err.Error(), "bad magic") {
			t.Fatalf("bad magic: err = %v", err)
		}
	})
	t.Run("empty-file", func(t *testing.T) {
		path := filepath.Join(dir, "empty.run")
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := drain(path); err == nil || !strings.Contains(err.Error(), "truncated header") {
			t.Fatalf("empty file: err = %v", err)
		}
	})
}

// The corruption error must also propagate out of a full job run, not
// just the reader in isolation.
func TestExternalMergeSurfacesCorruptRun(t *testing.T) {
	dir := t.TempDir()
	cfg := Config[string]{MapTasks: 8, ReduceTasks: 1, Parallelism: 1,
		MaxShuffleBytes: 1, MergeFanIn: 2}
	ext := NewStringIntExternal(dir, "job")
	x, err := newExtShuffle(ext, cfg.MaxShuffleBytes, cfg.MergeFanIn, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	mapOut := make([][]run[string, int], 2)
	for tsk := 0; tsk < 2; tsk++ {
		mapOut[tsk] = []run[string, int]{makeRun([]KV[string, int]{{"k", tsk}})}
		if err := x.admit(tsk, mapOut[tsk]); err != nil {
			t.Fatal(err)
		}
	}
	// Damage task 1's spilled run, then merge the partition.
	raw, err := os.ReadFile(x.files[1][0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-10] ^= 0x01
	if err := os.WriteFile(x.files[1][0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, _, err = x.mergePartition(0, mapOut, func(string, []int, int) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "CRC mismatch") {
		t.Fatalf("merge over corrupt run: err = %v, want CRC mismatch", err)
	}
}

func TestExternalConfigValidation(t *testing.T) {
	inputs := []int{1, 2, 3}
	t.Run("budget-without-external", func(t *testing.T) {
		j := oracleJob(10, 0, false, Config[string]{MaxShuffleBytes: 1 << 20})
		if _, _, err := j.Run(inputs); err == nil || !strings.Contains(err.Error(), "Job.External") {
			t.Fatalf("err = %v, want Job.External requirement", err)
		}
	})
	t.Run("reference-shuffle-conflict", func(t *testing.T) {
		j := oracleJob(10, 0, false, Config[string]{MaxShuffleBytes: 1 << 20, ReferenceShuffle: true})
		j.External = NewStringIntExternal(t.TempDir(), "x")
		if _, _, err := j.Run(inputs); err == nil || !strings.Contains(err.Error(), "ReferenceShuffle") {
			t.Fatalf("err = %v, want ReferenceShuffle conflict", err)
		}
	})
	t.Run("missing-codec", func(t *testing.T) {
		j := oracleJob(10, 0, false, Config[string]{MaxShuffleBytes: 1 << 20})
		j.External = &External[string, int]{Dir: t.TempDir(), AppendKey: AppendString}
		if _, _, err := j.Run(inputs); err == nil || !strings.Contains(err.Error(), "codec") {
			t.Fatalf("err = %v, want codec requirement", err)
		}
	})
}
