package mapreduce

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestJobReportsObs(t *testing.T) {
	sink := obs.Sink{Metrics: obs.NewRegistry(), Tracer: obs.NewTracer(nil)}
	job := &Job[string, string, int, KV[string, int]]{
		Name: "wordcount",
		Map: func(line string, emit func(string, int)) error {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
			return nil
		},
		Reduce: func(k string, vs []int, emit func(KV[string, int])) error {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			emit(KV[string, int]{k, sum})
			return nil
		},
		Config: Config[string]{MapTasks: 3, ReduceTasks: 2, Obs: sink},
	}
	_, stats, err := job.Run([]string{"a b a", "b c", "a"})
	if err != nil {
		t.Fatal(err)
	}

	s := sink.Metrics.Snapshot()
	if s.Counters["mapreduce.tasks.map"] != int64(stats.MapTasks) || stats.MapTasks == 0 {
		t.Fatalf("map task counter = %d, stats = %d", s.Counters["mapreduce.tasks.map"], stats.MapTasks)
	}
	if s.Counters["mapreduce.records.in"] != 3 {
		t.Fatalf("records.in = %d, want 3", s.Counters["mapreduce.records.in"])
	}
	if s.Counters["mapreduce.groups"] != 3 { // a, b, c
		t.Fatalf("groups = %d, want 3", s.Counters["mapreduce.groups"])
	}
	hs := s.Histograms["mapreduce.group_size"]
	if hs.Count != 3 || hs.Sum != 6 { // group sizes 3(a)+2(b)+1(c)
		t.Fatalf("group_size histogram = %+v, want count 3 sum 6", hs)
	}
	if s.Counters["mapreduce.shuffle.runs"] != int64(stats.ShuffleRuns) || stats.ShuffleRuns == 0 {
		t.Fatalf("shuffle.runs counter = %d, stats = %d", s.Counters["mapreduce.shuffle.runs"], stats.ShuffleRuns)
	}
	if s.Counters["mapreduce.shuffle.merge_passes"] != int64(stats.MergePasses) || stats.MergePasses == 0 {
		t.Fatalf("merge_passes counter = %d, stats = %d", s.Counters["mapreduce.shuffle.merge_passes"], stats.MergePasses)
	}

	phases := map[string]int{}
	for _, sp := range sink.Tracer.Spans() {
		phases[sp.Name]++
	}
	if phases["map"] != stats.MapTasks {
		t.Fatalf("map spans = %d, want %d", phases["map"], stats.MapTasks)
	}
	// The merge shuffle emits one span per partition (the old serial
	// shuffle emitted a single span for the whole phase).
	if phases["shuffle"] != stats.ReduceTasks {
		t.Fatalf("shuffle spans = %d, want %d", phases["shuffle"], stats.ReduceTasks)
	}
	if phases["reduce"] != stats.ReduceTasks {
		t.Fatalf("reduce spans = %d, want %d", phases["reduce"], stats.ReduceTasks)
	}
}
