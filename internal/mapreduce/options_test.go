package mapreduce

import (
	"testing"
	"time"
)

// TestNewConfigMatchesLiteral pins the option spellings to the struct
// fields they set, so wire decoding through options can't drift from
// a hand-written Config.
func TestNewConfigMatchesLiteral(t *testing.T) {
	got := NewConfig(
		WithMapTasks[string](8),
		WithReduceTasks[string](4),
		WithParallelism[string](2),
		WithMaxAttempts[string](3),
		WithRetryBackoff[string](time.Millisecond),
		WithMaxShuffleBytes[string](1<<20),
		WithMergeFanIn[string](4),
		WithReferenceShuffle[string](),
	)
	want := Config[string]{
		MapTasks: 8, ReduceTasks: 4, Parallelism: 2, MaxAttempts: 3,
		RetryBackoff: time.Millisecond, MaxShuffleBytes: 1 << 20,
		MergeFanIn: 4, ReferenceShuffle: true,
	}
	if got.MapTasks != want.MapTasks || got.ReduceTasks != want.ReduceTasks ||
		got.Parallelism != want.Parallelism || got.MaxAttempts != want.MaxAttempts ||
		got.RetryBackoff != want.RetryBackoff || got.MaxShuffleBytes != want.MaxShuffleBytes ||
		got.MergeFanIn != want.MergeFanIn || got.ReferenceShuffle != want.ReferenceShuffle {
		t.Fatalf("NewConfig = %+v, want %+v", got, want)
	}
	if NewConfig[string]().MapTasks != 0 {
		t.Fatal("zero NewConfig should equal zero Config")
	}
}

// TestNewConfigRunsJob is the end-to-end check: a job configured via
// options produces the same output as the literal-config word count
// the rest of the suite runs.
func TestNewConfigRunsJob(t *testing.T) {
	job := &Job[string, string, int, KV[string, int]]{
		Name: "wc-options",
		Map: func(line string, emit func(string, int)) error {
			emit(line, 1)
			return nil
		},
		Reduce: func(k string, vs []int, emit func(KV[string, int])) error {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			emit(KV[string, int]{k, sum})
			return nil
		},
		Config: NewConfig(WithMapTasks[string](4), WithReduceTasks[string](2)),
	}
	out, _, err := job.Run([]string{"a", "b", "a", "c", "b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, kv := range out {
		counts[kv.Key] = kv.Value
	}
	if counts["a"] != 3 || counts["b"] != 2 || counts["c"] != 1 {
		t.Fatalf("word count = %v", counts)
	}
}
