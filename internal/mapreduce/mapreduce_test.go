package mapreduce

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// wordCountJob is the canonical MapReduce example, used as the test
// workhorse.
func wordCountJob(cfg Config[string]) *Job[string, string, int, KV[string, int]] {
	return &Job[string, string, int, KV[string, int]]{
		Name:   "wordcount",
		Config: cfg,
		Map: func(line string, emit func(string, int)) error {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
			return nil
		},
		Reduce: func(key string, values []int, emit func(KV[string, int])) error {
			sum := 0
			for _, v := range values {
				sum += v
			}
			emit(KV[string, int]{key, sum})
			return nil
		},
	}
}

func runWordCount(t *testing.T, cfg Config[string], lines []string) map[string]int {
	t.Helper()
	out, _, err := wordCountJob(cfg).Run(lines)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]int{}
	for _, kv := range out {
		if _, dup := m[kv.Key]; dup {
			t.Fatalf("key %q reduced twice", kv.Key)
		}
		m[kv.Key] = kv.Value
	}
	return m
}

var corpus = []string{
	"the quick brown fox",
	"jumps over the lazy dog",
	"the dog barks",
	"", // empty line: no emissions
	"fox fox fox",
}

var wantCounts = map[string]int{
	"the": 3, "quick": 1, "brown": 1, "fox": 4, "jumps": 1,
	"over": 1, "lazy": 1, "dog": 2, "barks": 1,
}

func TestWordCountBasic(t *testing.T) {
	got := runWordCount(t, Config[string]{}, corpus)
	if len(got) != len(wantCounts) {
		t.Fatalf("got %v, want %v", got, wantCounts)
	}
	for k, v := range wantCounts {
		if got[k] != v {
			t.Fatalf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
}

func TestResultInvariantUnderParallelismAndPartitions(t *testing.T) {
	for _, mt := range []int{0, 1, 2, 5} {
		for _, rt := range []int{1, 2, 4, 7} {
			for _, par := range []int{1, 4} {
				got := runWordCount(t, Config[string]{MapTasks: mt, ReduceTasks: rt, Parallelism: par}, corpus)
				for k, v := range wantCounts {
					if got[k] != v {
						t.Fatalf("mt=%d rt=%d par=%d: count[%q] = %d, want %d", mt, rt, par, k, got[k], v)
					}
				}
			}
		}
	}
}

func TestCombinerDoesNotChangeResultButShrinksShuffle(t *testing.T) {
	plain := wordCountJob(Config[string]{MapTasks: 2})
	_, plainStats, err := plain.Run(corpus)
	if err != nil {
		t.Fatal(err)
	}

	combined := wordCountJob(Config[string]{MapTasks: 2})
	combined.Combine = func(key string, values []int) ([]int, error) {
		sum := 0
		for _, v := range values {
			sum += v
		}
		return []int{sum}, nil
	}
	out, combStats, err := combined.Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, kv := range out {
		got[kv.Key] = kv.Value
	}
	for k, v := range wantCounts {
		if got[k] != v {
			t.Fatalf("combiner changed result: count[%q] = %d, want %d", k, got[k], v)
		}
	}
	if combStats.CombineOutputs >= plainStats.CombineOutputs {
		t.Fatalf("combiner did not shrink shuffle: %d vs %d",
			combStats.CombineOutputs, plainStats.CombineOutputs)
	}
}

func TestOutputDeterministicOrder(t *testing.T) {
	job := wordCountJob(Config[string]{MapTasks: 3, ReduceTasks: 4})
	a, _, err := job.Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b, _, err := wordCountJob(Config[string]{MapTasks: 3, ReduceTasks: 4}).Run(corpus)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("run %d: output %d differs: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
}

func TestKeysSortedWithinPartition(t *testing.T) {
	job := wordCountJob(Config[string]{ReduceTasks: 1})
	out, _, err := job.Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Key < out[i-1].Key {
			t.Fatalf("keys not sorted: %q before %q", out[i-1].Key, out[i].Key)
		}
	}
}

func TestValueOrderPreservedByMapTaskOrder(t *testing.T) {
	// Map emits (constant key, record index); the reducer must see
	// values in input order because splits are contiguous and merged
	// in task order.
	job := &Job[int, string, int, []int]{
		Map: func(i int, emit func(string, int)) error {
			emit("k", i)
			return nil
		},
		Reduce: func(key string, values []int, emit func([]int)) error {
			emit(append([]int(nil), values...))
			return nil
		},
		Config: Config[string]{MapTasks: 4, Parallelism: 4},
	}
	inputs := make([]int, 100)
	for i := range inputs {
		inputs[i] = i
	}
	out, _, err := job.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("groups = %d, want 1", len(out))
	}
	for i, v := range out[0] {
		if v != i {
			t.Fatalf("value order broken at %d: %v", i, out[0][:min(10, len(out[0]))])
		}
	}
}

func TestMapErrorPropagates(t *testing.T) {
	job := wordCountJob(Config[string]{})
	job.Map = func(line string, emit func(string, int)) error {
		return errors.New("boom")
	}
	_, _, err := job.Run(corpus)
	if err == nil || !strings.Contains(err.Error(), "map task") {
		t.Fatalf("err = %v", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	job := wordCountJob(Config[string]{})
	job.Reduce = func(key string, values []int, emit func(KV[string, int])) error {
		if key == "fox" {
			return errors.New("bad key")
		}
		emit(KV[string, int]{key, len(values)})
		return nil
	}
	_, _, err := job.Run(corpus)
	if err == nil || !strings.Contains(err.Error(), "fox") {
		t.Fatalf("err = %v", err)
	}
}

func TestRetryRecoversTransientMapFailure(t *testing.T) {
	var failures atomic.Int32
	job := wordCountJob(Config[string]{MapTasks: 1, MaxAttempts: 3})
	inner := job.Map
	job.Map = func(line string, emit func(string, int)) error {
		if failures.Add(1) <= 2 { // first two calls fail
			return errors.New("transient")
		}
		return inner(line, emit)
	}
	out, stats, err := job.Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TaskRetries == 0 {
		t.Fatal("no retries recorded")
	}
	got := map[string]int{}
	for _, kv := range out {
		got[kv.Key] = kv.Value
	}
	if got["fox"] != 4 {
		t.Fatalf("retried job wrong result: %v", got)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	job := wordCountJob(Config[string]{MaxAttempts: 2})
	job.Map = func(line string, emit func(string, int)) error {
		return errors.New("permanent")
	}
	_, _, err := job.Run(corpus)
	if err == nil {
		t.Fatal("permanently failing job succeeded")
	}
}

func TestReduceRetryDiscardsPartialEmissions(t *testing.T) {
	var calls atomic.Int32
	job := &Job[string, string, int, string]{
		Map: func(line string, emit func(string, int)) error {
			emit("k", 1)
			return nil
		},
		Reduce: func(key string, values []int, emit func(string)) error {
			emit("partial")
			if calls.Add(1) == 1 {
				return errors.New("fail after emitting")
			}
			emit("final")
			return nil
		},
		Config: Config[string]{MaxAttempts: 2},
	}
	out, _, err := job.Run([]string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != "partial" || out[1] != "final" {
		t.Fatalf("partial emissions not discarded on retry: %v", out)
	}
}

func TestCustomPartitionerUsed(t *testing.T) {
	var hits atomic.Int32
	job := wordCountJob(Config[string]{
		ReduceTasks: 3,
		Partitioner: func(key string, n int) int {
			hits.Add(1)
			return len(key) % n
		},
	})
	if _, _, err := job.Run(corpus); err != nil {
		t.Fatal(err)
	}
	if hits.Load() == 0 {
		t.Fatal("custom partitioner never called")
	}
}

func TestBadPartitionerRejected(t *testing.T) {
	job := wordCountJob(Config[string]{
		ReduceTasks: 2,
		Partitioner: func(key string, n int) int { return 99 },
	})
	if _, _, err := job.Run(corpus); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}

func TestMissingPhases(t *testing.T) {
	job := &Job[string, string, int, string]{}
	if _, _, err := job.Run([]string{"x"}); err == nil {
		t.Fatal("job without phases ran")
	}
}

func TestEmptyInput(t *testing.T) {
	out, stats, err := wordCountJob(Config[string]{}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || stats.MapTasks != 0 {
		t.Fatalf("empty input produced %v, %+v", out, stats)
	}
}

func TestCountersAggregation(t *testing.T) {
	job := wordCountJob(Config[string]{MapTasks: 2})
	_, stats, err := job.Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if got := job.Counters.Get("map.outputs"); got != int64(stats.MapOutputs) {
		t.Fatalf("counter map.outputs = %d, stats say %d", got, stats.MapOutputs)
	}
	snap := job.Counters.Snapshot()
	if snap["map.outputs"] != job.Counters.Get("map.outputs") {
		t.Fatal("snapshot mismatch")
	}
}

func TestStatsAccounting(t *testing.T) {
	_, stats, err := wordCountJob(Config[string]{MapTasks: 2, ReduceTasks: 3}).Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MapInputs != len(corpus) {
		t.Fatalf("MapInputs = %d, want %d", stats.MapInputs, len(corpus))
	}
	if stats.MapOutputs != 15 { // total words in corpus
		t.Fatalf("MapOutputs = %d, want 15", stats.MapOutputs)
	}
	if stats.ReduceGroups != len(wantCounts) {
		t.Fatalf("ReduceGroups = %d, want %d", stats.ReduceGroups, len(wantCounts))
	}
	if stats.Outputs != len(wantCounts) {
		t.Fatalf("Outputs = %d, want %d", stats.Outputs, len(wantCounts))
	}
}

func TestSplitInputsShapes(t *testing.T) {
	in := []int{1, 2, 3, 4, 5, 6, 7}
	splits := splitInputs(in, 3)
	if len(splits) != 3 {
		t.Fatalf("splits = %d, want 3", len(splits))
	}
	var flat []int
	for _, s := range splits {
		flat = append(flat, s...)
	}
	for i, v := range flat {
		if v != in[i] {
			t.Fatalf("splits reorder input: %v", splits)
		}
	}
	if got := splitInputs(in, 100); len(got) != len(in) {
		t.Fatalf("oversplit: %d splits for %d inputs", len(got), len(in))
	}
	if got := splitInputs([]int{}, 3); got != nil {
		t.Fatalf("empty input splits = %v", got)
	}
}

func TestHashPartitionerInRangeAndDeterministic(t *testing.T) {
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		p := HashPartitioner(key, 7)
		if p < 0 || p >= 7 {
			t.Fatalf("partition %d out of range", p)
		}
		if p != HashPartitioner(key, 7) {
			t.Fatal("partitioner not deterministic")
		}
	}
}

func TestSortOutputs(t *testing.T) {
	xs := []int{3, 1, 2}
	SortOutputs(xs, func(a, b int) bool { return a < b })
	if xs[0] != 1 || xs[2] != 3 {
		t.Fatalf("sorted = %v", xs)
	}
}

// quick-check: summing per-key counts over random corpora matches a
// direct sequential count, for random engine configurations.
func TestQuickWordCountMatchesDirect(t *testing.T) {
	words := []string{"a", "b", "c", "dd", "eee"}
	f := func(seed int64, mt, rt, par uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		lines := make([]string, n)
		direct := map[string]int{}
		for i := range lines {
			k := rng.Intn(6)
			var sb []string
			for j := 0; j < k; j++ {
				w := words[rng.Intn(len(words))]
				sb = append(sb, w)
				direct[w]++
			}
			lines[i] = strings.Join(sb, " ")
		}
		cfg := Config[string]{
			MapTasks:    int(mt) % 8,
			ReduceTasks: int(rt)%6 + 1,
			Parallelism: int(par)%4 + 1,
		}
		out, _, err := wordCountJob(cfg).Run(lines)
		if err != nil {
			return false
		}
		got := map[string]int{}
		for _, kv := range out {
			got[kv.Key] = kv.Value
		}
		if len(got) != len(direct) {
			return false
		}
		for k, v := range direct {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// quick-check: every key lands in exactly one partition (no key is
// split across reducers).
func TestQuickPartitionConsistency(t *testing.T) {
	f := func(keys []string, rtRaw uint8) bool {
		rt := int(rtRaw)%8 + 1
		seen := map[string]int{}
		for _, k := range keys {
			p := HashPartitioner(k, rt)
			if p < 0 || p >= rt {
				return false
			}
			if prev, ok := seen[k]; ok && prev != p {
				return false
			}
			seen[k] = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGroupValuesCompleteAcrossPartitions(t *testing.T) {
	// Every emitted value must arrive at exactly one reducer: reduce
	// concatenation of all group sizes equals total map outputs.
	job := &Job[int, string, int, int]{
		Map: func(i int, emit func(string, int)) error {
			emit(fmt.Sprintf("k%d", i%10), i)
			return nil
		},
		Reduce: func(key string, values []int, emit func(int)) error {
			emit(len(values))
			return nil
		},
		Config: Config[string]{MapTasks: 5, ReduceTasks: 4},
	}
	inputs := make([]int, 237)
	for i := range inputs {
		inputs[i] = i
	}
	out, stats, err := job.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range out {
		total += n
	}
	if total != stats.MapOutputs || total != 237 {
		t.Fatalf("values lost in shuffle: %d reduced, %d emitted", total, stats.MapOutputs)
	}
}

func TestLargeScaleStress(t *testing.T) {
	n := 20000
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i
	}
	job := &Job[int, int, int, KV[int, int]]{
		Map: func(i int, emit func(int, int)) error {
			emit(i%100, 1)
			return nil
		},
		Reduce: func(key int, values []int, emit func(KV[int, int])) error {
			emit(KV[int, int]{key, len(values)})
			return nil
		},
		Config: Config[int]{MapTasks: 16, ReduceTasks: 8, Parallelism: 8},
	}
	out, _, err := job.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("groups = %d, want 100", len(out))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	for _, kv := range out {
		if kv.Value != n/100 {
			t.Fatalf("group %d size %d, want %d", kv.Key, kv.Value, n/100)
		}
	}
}
