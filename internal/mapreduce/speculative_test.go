package mapreduce

import (
	"testing"
	"time"
)

func TestSpeculativeSameResultAsPlainRun(t *testing.T) {
	plain, _, err := wordCountJob(Config[string]{MapTasks: 4}).Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	spec, stats, err := wordCountJob(Config[string]{MapTasks: 4}).RunSpeculative(corpus, SpecConfig{
		SpeculationAfter: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(spec) {
		t.Fatalf("lengths differ: %d vs %d", len(plain), len(spec))
	}
	for i := range plain {
		if plain[i] != spec[i] {
			t.Fatalf("output %d differs: %v vs %v", i, plain[i], spec[i])
		}
	}
	if stats.MapInputs != len(corpus) {
		t.Fatalf("MapInputs = %d, want %d", stats.MapInputs, len(corpus))
	}
}

func TestSpeculationRescuesStraggler(t *testing.T) {
	// Task 0's original attempt hangs for 2 s; its backup is instant.
	// With speculation after 20 ms the job must finish far sooner
	// than the straggler would allow, with the identical result.
	straggle := func(task, attempt int) time.Duration {
		if task == 0 && attempt == 0 {
			return 2 * time.Second
		}
		return 0
	}
	job := wordCountJob(Config[string]{MapTasks: 3, Parallelism: 4})
	start := time.Now()
	out, stats, err := job.RunSpeculative(corpus, SpecConfig{
		SpeculationAfter: 20 * time.Millisecond,
		InjectDelay:      straggle,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > time.Second {
		t.Fatalf("speculation did not rescue the straggler: took %v", elapsed)
	}
	if stats.BackupsLaunched == 0 {
		t.Fatal("no backup launched for the straggler")
	}
	if stats.BackupsWon == 0 {
		t.Fatal("the instant backup should have won")
	}
	got := map[string]int{}
	for _, kv := range out {
		got[kv.Key] = kv.Value
	}
	for k, v := range wantCounts {
		if got[k] != v {
			t.Fatalf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
}

func TestNoSpeculationWithoutTimeout(t *testing.T) {
	job := wordCountJob(Config[string]{MapTasks: 2})
	_, stats, err := job.RunSpeculative(corpus, SpecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BackupsLaunched != 0 || stats.BackupsWon != 0 {
		t.Fatalf("speculation fired with zero timeout: %+v", stats)
	}
}

func TestFastTasksDontSpawnBackups(t *testing.T) {
	job := wordCountJob(Config[string]{MapTasks: 4})
	_, stats, err := job.RunSpeculative(corpus, SpecConfig{
		SpeculationAfter: 5 * time.Second, // far beyond any task's runtime
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BackupsLaunched != 0 {
		t.Fatalf("backups launched for fast tasks: %d", stats.BackupsLaunched)
	}
}

func TestSpeculativeErrorsPropagate(t *testing.T) {
	job := wordCountJob(Config[string]{MapTasks: 2})
	job.Map = func(line string, emit func(string, int)) error {
		return errTransient
	}
	if _, _, err := job.RunSpeculative(corpus, SpecConfig{SpeculationAfter: time.Millisecond}); err == nil {
		t.Fatal("failing job succeeded")
	}
}

func TestSpeculativeMissingPhases(t *testing.T) {
	job := &Job[string, string, int, string]{}
	if _, _, err := job.RunSpeculative([]string{"x"}, SpecConfig{}); err == nil {
		t.Fatal("job without phases ran")
	}
}

var errTransient = errFixed("transient")

type errFixed string

func (e errFixed) Error() string { return string(e) }
