package mapreduce

// spill.go makes map-task output durable (the Parsl-style task
// checkpointing of PR 5): with Job.Spill set, every completed map
// task's sorted runs are persisted as one CRC-framed ckpt file, and a
// re-run of the same job resumes from the first unfinished task —
// valid spill files short-circuit their tasks, everything else
// re-executes. Because runs are persisted after sorting and
// combining, a resumed job feeds byte-identical runs into the shuffle
// merge and therefore produces byte-identical output (the merge is
// deterministic given its input runs).
//
// Resume assumes the re-run presents the same inputs and Config (task
// count, partitioner, reduce fan-out): a spill whose epoch or
// partition count disagrees is ignored, but content-level divergence
// is the caller's contract, exactly as in Hadoop task re-execution.

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/ckpt"
)

// Spill configures durable map-task output. Dir receives one file per
// map task (<name>-map-<task>.ckpt); the four codec functions embed
// keys and values into the spill frame. Append* must be the exact
// inverse of Read* (Read consumes one element from the front and
// returns the rest).
type Spill[K cmp.Ordered, V any] struct {
	Dir  string
	Name string // file prefix; defaults to "job"

	AppendKey func([]byte, K) []byte
	ReadKey   func([]byte) (K, []byte, error)
	AppendVal func([]byte, V) []byte
	ReadVal   func([]byte) (V, []byte, error)
}

const spillVersion = 1

func (s *Spill[K, V]) prepare() error {
	if s.AppendKey == nil || s.ReadKey == nil || s.AppendVal == nil || s.ReadVal == nil {
		return fmt.Errorf("mapreduce: Spill needs all four key/value codec functions")
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return fmt.Errorf("mapreduce: spill dir: %w", err)
	}
	return nil
}

func (s *Spill[K, V]) path(task int) string {
	name := s.Name
	if name == "" {
		name = "job"
	}
	name = strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ' ', '.':
			return '-'
		}
		return r
	}, name)
	return filepath.Join(s.Dir, fmt.Sprintf("%s-map-%04d.ckpt", name, task))
}

// save persists one completed map task's per-partition runs. Layout
// after the ckpt frame (epoch = task index):
//
//	u32 spillVersion | u32 nparts | u64 emitted
//	per partition: u32 nkeys | keys... | u32 noffs | offs (u32 each) |
//	               u32 nvals | vals...
//
// prefs are not stored — they are a pure function of the keys
// (keyPrefix) and are recomputed on load.
func (s *Spill[K, V]) save(task int, parts []run[K, V], emitted int) error {
	buf := make([]byte, 0, 1024)
	buf = binary.LittleEndian.AppendUint32(buf, spillVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(parts)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(emitted))
	for _, r := range parts {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.keys)))
		for _, k := range r.keys {
			buf = s.AppendKey(buf, k)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.offs)))
		for _, o := range r.offs {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(o))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.vals)))
		for _, v := range r.vals {
			buf = s.AppendVal(buf, v)
		}
	}
	return ckpt.WriteFile(s.path(task), uint64(task), buf)
}

// load reads a task's spill if present and valid. Any defect —
// missing file, CRC mismatch, wrong task epoch, partition-count
// mismatch, codec error — yields ok=false and the task simply
// re-executes; durable resume never turns a bad file into a failure.
func (s *Spill[K, V]) load(task, nparts int) (parts []run[K, V], emitted int, ok bool) {
	epoch, buf, err := ckpt.ReadFile(s.path(task))
	if err != nil || epoch != uint64(task) {
		return nil, 0, false
	}
	u32 := func() (uint32, bool) {
		if len(buf) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		return v, true
	}
	ver, ok1 := u32()
	np, ok2 := u32()
	if !ok1 || !ok2 || ver != spillVersion || int(np) != nparts || len(buf) < 8 {
		return nil, 0, false
	}
	emitted = int(binary.LittleEndian.Uint64(buf))
	buf = buf[8:]
	parts = make([]run[K, V], nparts)
	for p := range parts {
		nk, ok := u32()
		if !ok {
			return nil, 0, false
		}
		r := run[K, V]{keys: make([]K, nk), prefs: make([]uint64, nk)}
		for i := range r.keys {
			k, rest, err := s.ReadKey(buf)
			if err != nil {
				return nil, 0, false
			}
			r.keys[i] = k
			r.prefs[i] = keyPrefix(k)
			buf = rest
		}
		no, ok := u32()
		if !ok || (nk > 0 && int(no) != int(nk)+1) || (nk == 0 && no > 1) {
			return nil, 0, false
		}
		r.offs = make([]int32, no)
		for i := range r.offs {
			o, ok := u32()
			if !ok {
				return nil, 0, false
			}
			r.offs[i] = int32(o)
		}
		nv, ok := u32()
		if !ok {
			return nil, 0, false
		}
		r.vals = make([]V, nv)
		for i := range r.vals {
			v, rest, err := s.ReadVal(buf)
			if err != nil {
				return nil, 0, false
			}
			r.vals[i] = v
			buf = rest
		}
		if nk > 0 && int(r.offs[nk]) != int(nv) {
			return nil, 0, false
		}
		parts[p] = r
	}
	return parts, emitted, len(buf) == 0
}

// AppendString / ReadString are the length-prefixed string codec for
// spills.
func AppendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// ReadString consumes one AppendString-encoded string.
func ReadString(buf []byte) (string, []byte, error) {
	if len(buf) < 4 {
		return "", nil, fmt.Errorf("mapreduce: short string header")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if n < 0 || n > len(buf) {
		return "", nil, fmt.Errorf("mapreduce: short string body")
	}
	return string(buf[:n]), buf[n:], nil
}

// AppendInt / ReadInt are the fixed 8-byte integer codec for spills.
func AppendInt(buf []byte, v int) []byte {
	return binary.LittleEndian.AppendUint64(buf, uint64(int64(v)))
}

// ReadInt consumes one AppendInt-encoded integer.
func ReadInt(buf []byte) (int, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, fmt.Errorf("mapreduce: short int")
	}
	return int(int64(binary.LittleEndian.Uint64(buf))), buf[8:], nil
}

// NewStringIntSpill returns the ready-made spill config for
// string-keyed integer-valued jobs (word count and friends).
func NewStringIntSpill(dir, name string) *Spill[string, int] {
	return &Spill[string, int]{
		Dir: dir, Name: name,
		AppendKey: AppendString, ReadKey: ReadString,
		AppendVal: AppendInt, ReadVal: ReadInt,
	}
}
