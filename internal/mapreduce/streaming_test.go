package mapreduce

import (
	"strings"
	"testing"
)

func streamWordCount() *StreamJob {
	return &StreamJob{
		Name: "stream-wordcount",
		Map: func(line string, emit func(string, string)) error {
			for _, w := range strings.Fields(line) {
				emit(w, "1")
			}
			return nil
		},
		Reduce: func(key string, values []string, emit func(string)) error {
			emit(FormatKV(key, itoa(len(values))))
			return nil
		},
		Config: Config[string]{MapTasks: 2, ReduceTasks: 2},
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestStreamJobRunLines(t *testing.T) {
	out, stats, err := streamWordCount().RunLines([]string{"a b a", "b a"})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, line := range out {
		k, v := ParseKV(line)
		got[k] = v
	}
	if got["a"] != "3" || got["b"] != "2" {
		t.Fatalf("got %v", got)
	}
	if stats.MapInputs != 2 {
		t.Fatalf("MapInputs = %d, want 2", stats.MapInputs)
	}
}

func TestStreamJobRunReaders(t *testing.T) {
	r1 := strings.NewReader("x y\nz\n")
	r2 := strings.NewReader("x\n")
	out, _, err := streamWordCount().RunReaders(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, line := range out {
		k, v := ParseKV(line)
		got[k] = v
	}
	if got["x"] != "2" || got["y"] != "1" || got["z"] != "1" {
		t.Fatalf("got %v", got)
	}
}

func TestStreamCountersSurvive(t *testing.T) {
	j := streamWordCount()
	if _, _, err := j.RunLines([]string{"a a a"}); err != nil {
		t.Fatal(err)
	}
	if j.Counters == nil || j.Counters.Get("map.outputs") != 3 {
		t.Fatalf("counters not propagated: %+v", j.Counters)
	}
}

func TestParseKV(t *testing.T) {
	k, v := ParseKV("year\t12.5")
	if k != "year" || v != "12.5" {
		t.Fatalf("ParseKV = %q,%q", k, v)
	}
	k, v = ParseKV("noTabHere")
	if k != "noTabHere" || v != "" {
		t.Fatalf("tabless ParseKV = %q,%q", k, v)
	}
	k, v = ParseKV("a\tb\tc")
	if k != "a" || v != "b\tc" {
		t.Fatalf("multi-tab ParseKV = %q,%q", k, v)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	line := FormatKV("k", "v1\tv2")
	k, v := ParseKV(line)
	if k != "k" || v != "v1\tv2" {
		t.Fatalf("round trip = %q,%q", k, v)
	}
}
