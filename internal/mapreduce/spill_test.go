package mapreduce

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
)

func spillWordCount(spill *Spill[string, int]) *Job[string, string, int, string] {
	return &Job[string, string, int, string]{
		Name: "wc",
		Map: func(line string, emit func(string, int)) error {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
			return nil
		},
		Combine: func(k string, vs []int) ([]int, error) {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			return []int{sum}, nil
		},
		Reduce: func(k string, vs []int, emit func(string)) error {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			emit(fmt.Sprintf("%s %d", k, sum))
			return nil
		},
		Config: Config[string]{MapTasks: 8, ReduceTasks: 3},
		Spill:  spill,
	}
}

func spillCorpus(seed int64, lines int) []string {
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog", "peachy", "parallel"}
	out := make([]string, lines)
	for i := range out {
		var b strings.Builder
		for w := 0; w < 5+rng.Intn(10); w++ {
			b.WriteString(vocab[rng.Intn(len(vocab))])
			b.WriteByte(' ')
		}
		out[i] = b.String()
	}
	return out
}

// A job with spills enabled must produce output identical to one
// without, persist one file per map task, and — after some spills are
// lost or corrupted — resume the surviving tasks while silently
// re-executing the damaged ones.
func TestSpillResumeProducesIdenticalOutput(t *testing.T) {
	inputs := spillCorpus(1, 64)
	ref, refStats, err := spillWordCount(nil).Run(inputs)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	out1, stats1, err := spillWordCount(NewStringIntSpill(dir, "wc")).Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out1) != fmt.Sprint(ref) {
		t.Fatalf("spill-enabled output diverged:\n%v\nvs\n%v", out1, ref)
	}
	if stats1.MapTasksResumed != 0 {
		t.Fatalf("fresh run resumed %d tasks", stats1.MapTasksResumed)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "wc-map-*.ckpt"))
	if len(files) != refStats.MapTasks {
		t.Fatalf("spill files = %d, want %d", len(files), refStats.MapTasks)
	}

	// Simulate a killed run: lose one spill, truncate another, flip a
	// byte in a third. The resumed job must re-execute exactly those
	// three tasks and still match the reference byte for byte.
	os.Remove(files[0])
	os.Truncate(files[1], 7)
	buf, _ := os.ReadFile(files[2])
	buf[len(buf)/2] ^= 0xff
	os.WriteFile(files[2], buf, 0o644)

	out2, stats2, err := spillWordCount(NewStringIntSpill(dir, "wc")).Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out2) != fmt.Sprint(ref) {
		t.Fatalf("resumed output diverged:\n%v\nvs\n%v", out2, ref)
	}
	if want := refStats.MapTasks - 3; stats2.MapTasksResumed != want {
		t.Fatalf("resumed %d tasks, want %d", stats2.MapTasksResumed, want)
	}

	// A fully-spilled rerun resumes every task.
	out3, stats3, err := spillWordCount(NewStringIntSpill(dir, "wc")).Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out3) != fmt.Sprint(ref) || stats3.MapTasksResumed != refStats.MapTasks {
		t.Fatalf("full resume: resumed=%d want=%d", stats3.MapTasksResumed, refStats.MapTasks)
	}
}

// Spills interoperate with fault injection: the injected failure
// schedule is keyed by attempt, so a resumed run (which skips the
// whole task) still converges on the identical output.
func TestSpillWithFaultInjection(t *testing.T) {
	inputs := spillCorpus(2, 48)
	mk := func(spill *Spill[string, int]) *Job[string, string, int, string] {
		j := spillWordCount(spill)
		j.Config.Faults = &fault.Plan{Seed: 1, TaskFail: 0.3, Retry: fault.RetryPolicy{MaxAttempts: 6}}
		return j
	}
	ref, _, err := mk(nil).Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, _, err := mk(NewStringIntSpill(dir, "wc")).Run(inputs); err != nil {
		t.Fatal(err)
	}
	out, stats, err := mk(NewStringIntSpill(dir, "wc")).Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out) != fmt.Sprint(ref) {
		t.Fatal("fault-injected resume diverged from reference")
	}
	if stats.MapTasksResumed == 0 {
		t.Fatal("no tasks resumed")
	}
}

// The int codec round-trips negative and large values; the string
// codec rejects truncation.
func TestSpillCodecs(t *testing.T) {
	for _, v := range []int{0, -1, 1 << 40, -(1 << 40)} {
		buf := AppendInt(nil, v)
		got, rest, err := ReadInt(buf)
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("int %d: got %d err %v", v, got, err)
		}
	}
	buf := AppendString(nil, "héllo wörld")
	got, rest, err := ReadString(buf)
	if err != nil || got != "héllo wörld" || len(rest) != 0 {
		t.Fatalf("string round trip: %q %v", got, err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := ReadString(buf[:cut]); err == nil {
			t.Fatalf("cut=%d: truncation accepted", cut)
		}
	}
}
