package mapreduce

// external.go makes the sorted-run shuffle out-of-core. The PR-4
// pipeline holds every map task's runs in RAM until the reduce phase
// merges them, so the largest job a machine can shuffle is bounded by
// memory. With Config.MaxShuffleBytes set (and Job.External supplying
// the key/value wire codecs), the map phase keeps an approximate
// resident-bytes account of the buffered runs; a completed task that
// pushes the account past the budget writes its per-partition runs to
// disk instead of retaining them — CRC-framed streaming run files in
// the internal/ckpt discipline — and the reduce phase merges a
// partition's mixture of in-memory and on-disk runs with a bounded
// fan-in, multi-pass k-way external merge (intermediate merged runs
// are re-spilled until at most Config.MergeFanIn sources remain, then
// the final pass streams groups straight into the reducer).
//
// The external path is byte-identical to the in-memory one: runs hold
// the same sorted span-compressed content on disk as in RAM, the merge
// drains equal keys in map-task order (multi-pass merges always take a
// contiguous prefix of task-ordered sources, so the ordering argument
// of merge.go survives re-spilling), no combiner is re-applied during
// intermediate merges, and group ordinals stay the ascending-key
// per-partition ordinals deterministic fault injection is keyed on.
// The randomized shuffle oracle enforces all of this.
//
// Run file wire format (scratch files — no fsync, deleted as they are
// consumed):
//
//	"PRN1" | u32 version
//	blocks: u32 payloadLen | u32 crc32(payload) | payload
//	end:    u32 0 | u32 0
//
// A payload is a sequence of complete spans, each `key | u32 nvals |
// vals...` in the External codec. Spans never straddle blocks, so a
// reader verifies one CRC per ~64 KiB and decodes from a verified
// buffer. A missing end marker means the writer died mid-file; both
// that and a CRC mismatch surface as clear errors — an external merge
// never turns a bad file into silent wrong output.

import (
	"bufio"
	"cmp"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"unsafe"
)

// External configures the out-of-core shuffle: Dir receives the
// spilled run files (scratch — written without fsync and removed as
// the merge consumes them), and the four codec functions define the
// on-disk key/value encoding, with the same inverse contract as
// Spill's. It only takes effect together with Config.MaxShuffleBytes.
type External[K cmp.Ordered, V any] struct {
	Dir  string
	Name string // file prefix; defaults to "job"

	AppendKey func([]byte, K) []byte
	ReadKey   func([]byte) (K, []byte, error)
	AppendVal func([]byte, V) []byte
	ReadVal   func([]byte) (V, []byte, error)
}

func (x *External[K, V]) prepare() error {
	if x.AppendKey == nil || x.ReadKey == nil || x.AppendVal == nil || x.ReadVal == nil {
		return fmt.Errorf("mapreduce: External needs all four key/value codec functions")
	}
	if err := os.MkdirAll(x.Dir, 0o755); err != nil {
		return fmt.Errorf("mapreduce: external dir: %w", err)
	}
	return nil
}

// NewStringIntExternal returns the ready-made external-shuffle config
// for string-keyed integer-valued jobs (word count and friends).
func NewStringIntExternal(dir, name string) *External[string, int] {
	return &External[string, int]{
		Dir: dir, Name: name,
		AppendKey: AppendString, ReadKey: ReadString,
		AppendVal: AppendInt, ReadVal: ReadInt,
	}
}

const (
	runVersion     = 1
	runBlockTarget = 64 << 10 // flush threshold; single huge spans may exceed it
	defaultFanIn   = 16
)

var runMagic = [4]byte{'P', 'R', 'N', '1'}

// extShuffle is the per-execution state of the out-of-core shuffle:
// the resident-bytes account the map phase debits against, and the
// per-(task, partition) paths of spilled run files.
type extShuffle[K cmp.Ordered, V any] struct {
	cfg    *External[K, V]
	budget int64
	fanIn  int

	resident     atomic.Int64
	files        [][]string // [task][partition] -> run file path, "" if in memory/empty
	spilledRuns  atomic.Int64
	spilledBytes atomic.Int64
	extraPasses  atomic.Int64 // intermediate (non-final) merge passes
}

func newExtShuffle[K cmp.Ordered, V any](cfg *External[K, V], budget int64, fanIn, tasks, parts int) (*extShuffle[K, V], error) {
	if err := cfg.prepare(); err != nil {
		return nil, err
	}
	if fanIn < 2 {
		fanIn = defaultFanIn
	}
	files := make([][]string, tasks)
	for t := range files {
		files[t] = make([]string, parts)
	}
	return &extShuffle[K, V]{cfg: cfg, budget: budget, fanIn: fanIn, files: files}, nil
}

func (x *extShuffle[K, V]) name() string {
	if x.cfg.Name != "" {
		return x.cfg.Name
	}
	return "job"
}

// admit charges task t's completed runs against the resident budget.
// If the account overflows, the task's non-empty partition runs are
// written to disk and dropped from memory (parts[p] zeroed), keeping
// resident bytes bounded by roughly budget plus one task's output.
// Which tasks spill depends on completion order, but the merge output
// does not — a run's content is the same on disk as in RAM.
func (x *extShuffle[K, V]) admit(task int, parts []run[K, V]) error {
	size := runsResidentBytes(parts)
	if x.resident.Add(size) <= x.budget {
		return nil
	}
	x.resident.Add(-size)
	for p := range parts {
		r := &parts[p]
		if len(r.keys) == 0 {
			continue
		}
		path := filepath.Join(x.cfg.Dir, fmt.Sprintf("%s-t%04d-p%03d.run", x.name(), task, p))
		n, err := writeRunFile(x.cfg, path, r)
		if err != nil {
			return fmt.Errorf("mapreduce: map task %d partition %d spill: %w", task, p, err)
		}
		x.files[task][p] = path
		x.spilledRuns.Add(1)
		x.spilledBytes.Add(n)
		*r = run[K, V]{}
	}
	return nil
}

// hasDisk reports whether partition p has at least one on-disk run.
func (x *extShuffle[K, V]) hasDisk(p int) bool {
	for t := range x.files {
		if x.files[t][p] != "" {
			return true
		}
	}
	return false
}

// cleanup removes any spilled files still on disk (merge errors leave
// partially consumed inputs behind). Best effort.
func (x *extShuffle[K, V]) cleanup() {
	for t := range x.files {
		for _, path := range x.files[t] {
			if path != "" {
				os.Remove(path)
			}
		}
	}
}

// runsResidentBytes estimates the resident footprint of a task's runs:
// array backing for keys, prefixes, offsets, and values, plus string
// bytes where K or V is a string. An estimate is all the budget needs
// — the point is bounding RAM to the right order, not byte accounting.
func runsResidentBytes[K cmp.Ordered, V any](parts []run[K, V]) int64 {
	var kz K
	var vz V
	keyFixed := int64(unsafe.Sizeof(kz)) + 12 // + pref (8) + off (4)
	valFixed := int64(unsafe.Sizeof(vz))
	total := int64(0)
	for i := range parts {
		r := &parts[i]
		total += int64(len(r.keys))*keyFixed + int64(len(r.vals))*valFixed
		if ks, ok := any(r.keys).([]string); ok {
			for _, s := range ks {
				total += int64(len(s))
			}
		}
		if vs, ok := any(r.vals).([]string); ok {
			for _, s := range vs {
				total += int64(len(s))
			}
		}
	}
	return total
}

// ---- streaming run files -------------------------------------------

// runWriter streams spans into a CRC-block-framed run file.
type runWriter[K cmp.Ordered, V any] struct {
	cfg   *External[K, V]
	f     *os.File
	w     *bufio.Writer
	block []byte
	bytes int64
}

func newRunWriter[K cmp.Ordered, V any](cfg *External[K, V], path string) (*runWriter[K, V], error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &runWriter[K, V]{cfg: cfg, f: f, w: bufio.NewWriterSize(f, 128<<10)}
	var hdr [8]byte
	copy(hdr[:4], runMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:], runVersion)
	if _, err := w.w.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	w.bytes = 8
	return w, nil
}

// writeSpan appends one (key, values) span to the current block,
// flushing the block once it reaches the target size.
func (w *runWriter[K, V]) writeSpan(key K, vals []V) error {
	buf := w.cfg.AppendKey(w.block, key)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(vals)))
	for _, v := range vals {
		buf = w.cfg.AppendVal(buf, v)
	}
	w.block = buf
	if len(w.block) >= runBlockTarget {
		return w.flushBlock()
	}
	return nil
}

func (w *runWriter[K, V]) flushBlock() error {
	if len(w.block) == 0 {
		return nil
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(w.block)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(w.block))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.block); err != nil {
		return err
	}
	w.bytes += int64(8 + len(w.block))
	w.block = w.block[:0]
	return nil
}

// close flushes the final block, writes the end-of-run marker, and
// closes the file. A file without the marker is detectably truncated.
func (w *runWriter[K, V]) close() error {
	if err := w.flushBlock(); err != nil {
		w.f.Close()
		return err
	}
	var end [8]byte
	if _, err := w.w.Write(end[:]); err != nil {
		w.f.Close()
		return err
	}
	w.bytes += 8
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// writeRunFile spills one in-memory run to path, returning the file
// size in bytes.
func writeRunFile[K cmp.Ordered, V any](cfg *External[K, V], path string, r *run[K, V]) (int64, error) {
	w, err := newRunWriter(cfg, path)
	if err != nil {
		return 0, err
	}
	for i := range r.keys {
		if err := w.writeSpan(r.keys[i], r.vals[r.offs[i]:r.offs[i+1]]); err != nil {
			w.f.Close()
			os.Remove(path)
			return 0, err
		}
	}
	if err := w.close(); err != nil {
		os.Remove(path)
		return 0, err
	}
	return w.bytes, nil
}

// runReader streams spans back out of a run file, verifying one CRC
// per block. Every defect — short header, bad magic, truncation (no
// end marker), CRC mismatch, codec error — is a hard error naming the
// file: external merges fail loudly rather than merge corrupt data.
type runReader[K cmp.Ordered, V any] struct {
	cfg   *External[K, V]
	path  string
	f     *os.File
	r     *bufio.Reader
	block []byte // undecoded remainder of the current verified block
	buf   []byte // reusable block backing
	done  bool
}

func openRun[K cmp.Ordered, V any](cfg *External[K, V], path string) (*runReader[K, V], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: external run: %w", err)
	}
	r := &runReader[K, V]{cfg: cfg, path: path, f: f, r: bufio.NewReaderSize(f, 128<<10)}
	var hdr [8]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("mapreduce: external run %s: truncated header: %w", path, err)
	}
	if [4]byte(hdr[:4]) != runMagic {
		f.Close()
		return nil, fmt.Errorf("mapreduce: external run %s: bad magic %q", path, hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != runVersion {
		f.Close()
		return nil, fmt.Errorf("mapreduce: external run %s: unsupported version %d", path, v)
	}
	return r, nil
}

func (r *runReader[K, V]) close() error { return r.f.Close() }

// nextBlock reads and verifies the next block into r.block, setting
// done on the clean end-of-run marker.
func (r *runReader[K, V]) nextBlock() error {
	var hdr [8]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return fmt.Errorf("mapreduce: external run %s: truncated (missing end-of-run marker): %w", r.path, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	want := binary.LittleEndian.Uint32(hdr[4:])
	if n == 0 {
		r.done = true
		return nil
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return fmt.Errorf("mapreduce: external run %s: truncated block: %w", r.path, err)
	}
	if got := crc32.ChecksumIEEE(r.buf); got != want {
		return fmt.Errorf("mapreduce: external run %s: block CRC mismatch (got %08x, want %08x)", r.path, got, want)
	}
	r.block = r.buf
	return nil
}

// nextSpan decodes the next (key, values) span, appending values to
// dst. ok=false with a nil error is the clean end of the run.
func (r *runReader[K, V]) nextSpan(dst []V) (key K, vals []V, ok bool, err error) {
	for len(r.block) == 0 {
		if r.done {
			return key, dst, false, nil
		}
		if err := r.nextBlock(); err != nil {
			return key, dst, false, err
		}
	}
	corrupt := func(what string, err error) error {
		return fmt.Errorf("mapreduce: external run %s: corrupt span (%s): %w", r.path, what, err)
	}
	key, rest, err := r.cfg.ReadKey(r.block)
	if err != nil {
		return key, dst, false, corrupt("key", err)
	}
	if len(rest) < 4 {
		return key, dst, false, corrupt("value count", io.ErrUnexpectedEOF)
	}
	n := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	for i := uint32(0); i < n; i++ {
		var v V
		v, rest, err = r.cfg.ReadVal(rest)
		if err != nil {
			return key, dst, false, corrupt("value", err)
		}
		dst = append(dst, v)
	}
	r.block = rest
	return key, dst, true, nil
}

// ---- external merge ------------------------------------------------

// extSource is one merge input: an in-memory run or a streaming
// on-disk run. Sources are kept (and merged) in map-task order so the
// value-ordering guarantee of merge.go survives the external path.
type extSource[K cmp.Ordered, V any] struct {
	mem *run[K, V]
	pos int

	rd      *runReader[K, V]
	rdSpan  []V // disk: current span's values (reused)
	path    string
	pref    uint64
	key     K
	done    bool
	primedK bool
}

// next loads the source's next span head, marking done at the end.
func (s *extSource[K, V]) next() error {
	if s.mem != nil {
		if s.primedK {
			s.pos++
		}
		s.primedK = true
		if s.pos >= len(s.mem.keys) {
			s.done = true
			return nil
		}
		s.key, s.pref = s.mem.keys[s.pos], s.mem.prefs[s.pos]
		return nil
	}
	key, vals, ok, err := s.rd.nextSpan(s.rdSpan[:0])
	if err != nil {
		return err
	}
	if !ok {
		s.done = true
		return nil
	}
	s.key, s.rdSpan, s.pref = key, vals, keyPrefix(key)
	return nil
}

// appendSpan appends the current span's values to dst.
func (s *extSource[K, V]) appendSpan(dst []V) []V {
	if s.mem != nil {
		return append(dst, s.mem.vals[s.mem.offs[s.pos]:s.mem.offs[s.pos+1]]...)
	}
	return append(dst, s.rdSpan...)
}

// extMerge merges task-ordered sources, calling group once per
// distinct key with values in (task, emission) order — the streaming
// analogue of scanMerge over mixed memory/disk inputs. Fan-in is
// bounded by the caller (Config.MergeFanIn), so a head scan is always
// the right shape.
func extMerge[K cmp.Ordered, V any](sources []*extSource[K, V], group func(key K, values []V, gi int) error) (pairs, groups int, err error) {
	class := prefixClass[K]()
	cs := make([]*extSource[K, V], 0, len(sources))
	for _, s := range sources {
		if err := s.next(); err != nil {
			return 0, 0, err
		}
		if !s.done {
			cs = append(cs, s)
		}
	}
	var values []V
	for len(cs) > 0 {
		minPref := cs[0].pref
		for _, s := range cs[1:] {
			if s.pref < minPref {
				minPref = s.pref
			}
		}
		exact := prefProvesEqual(class, minPref)
		var key K
		found := false
		for _, s := range cs {
			if s.pref != minPref {
				continue
			}
			if !found || (!exact && s.key < key) {
				key, found = s.key, true
				if exact {
					break
				}
			}
		}
		values = values[:0]
		drained := false
		for _, s := range cs {
			if s.pref != minPref || (!exact && s.key != key) {
				continue
			}
			values = s.appendSpan(values)
			if err := s.next(); err != nil {
				return pairs, groups, err
			}
			if s.done {
				drained = true
			}
		}
		pairs += len(values)
		gi := groups
		groups++
		if err := group(key, values, gi); err != nil {
			return pairs, groups, err
		}
		if drained {
			n := 0
			for _, s := range cs {
				if !s.done {
					cs[n] = s
					n++
				}
			}
			cs = cs[:n]
		}
	}
	return pairs, groups, nil
}

// mergePartition runs partition p's external merge: sources are the
// task-ordered mixture of in-memory runs and spilled run files; while
// more than fanIn sources remain, the first fanIn are merged into a
// new on-disk run that replaces them (a contiguous task-prefix, so
// ordering is preserved), and the final pass streams groups into
// group. It returns pairs and groups delivered, the initial run count,
// and the total number of merge passes (intermediate + final).
func (x *extShuffle[K, V]) mergePartition(p int, mapOut [][]run[K, V], group func(key K, values []V, gi int) error) (pairs, groups, nRuns, passes int, err error) {
	var sources []*extSource[K, V]
	closeAll := func() {
		for _, s := range sources {
			if s.rd != nil {
				s.rd.close()
			}
		}
	}
	// On any error, close and delete whatever scratch files this
	// partition still holds open (success nils the slice first).
	defer func() {
		closeAll()
		for _, s := range sources {
			if s.rd != nil {
				os.Remove(s.path)
			}
		}
	}()

	for t := range mapOut {
		if path := x.files[t][p]; path != "" {
			rd, err := openRun(x.cfg, path)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			sources = append(sources, &extSource[K, V]{rd: rd, path: path})
		} else if p < len(mapOut[t]) && len(mapOut[t][p].keys) > 0 {
			sources = append(sources, &extSource[K, V]{mem: &mapOut[t][p]})
		}
	}
	nRuns = len(sources)
	if nRuns == 0 {
		return 0, 0, 0, 0, nil
	}

	seq := 0
	for len(sources) > x.fanIn {
		batch := sources[:x.fanIn]
		path := filepath.Join(x.cfg.Dir, fmt.Sprintf("%s-p%03d-m%04d.run", x.name(), p, seq))
		seq++
		w, err := newRunWriter(x.cfg, path)
		if err != nil {
			return 0, 0, nRuns, passes, err
		}
		_, _, err = extMerge(batch, func(key K, values []V, _ int) error {
			return w.writeSpan(key, values)
		})
		if err != nil {
			w.f.Close()
			os.Remove(path)
			return 0, 0, nRuns, passes, err
		}
		if err := w.close(); err != nil {
			os.Remove(path)
			return 0, 0, nRuns, passes, err
		}
		x.spilledBytes.Add(w.bytes)
		for _, s := range batch {
			if s.rd != nil {
				s.rd.close()
				os.Remove(s.path)
			}
		}
		rd, err := openRun(x.cfg, path)
		if err != nil {
			return 0, 0, nRuns, passes, err
		}
		merged := &extSource[K, V]{rd: rd, path: path}
		rest := sources[x.fanIn:]
		sources = append(make([]*extSource[K, V], 0, len(rest)+1), merged)
		sources = append(sources, rest...)
		passes++
		x.extraPasses.Add(1)
	}

	pairs, groups, err = extMerge(sources, group)
	passes++
	if err != nil {
		return pairs, groups, nRuns, passes, err
	}
	closeAll()
	for _, s := range sources {
		if s.rd != nil {
			os.Remove(s.path)
		}
	}
	sources = nil
	return pairs, groups, nRuns, passes, nil
}
