package mapreduce

import (
	"os/exec"
	"testing"
)

// requireTools skips the test when the external commands the Hadoop
// Streaming analogy shells out to are unavailable.
func requireTools(t *testing.T, tools ...string) {
	t.Helper()
	for _, tool := range tools {
		if _, err := exec.LookPath(tool); err != nil {
			t.Skipf("%s not available: %v", tool, err)
		}
	}
}

func TestExecMapperIdentity(t *testing.T) {
	requireTools(t, "cat")
	m := ExecMapper("cat")
	var got []string
	if err := m("year\t7.5", func(k, v string) { got = append(got, FormatKV(k, v)) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "year\t7.5" {
		t.Fatalf("got %v", got)
	}
}

func TestExecMapperCommandFailure(t *testing.T) {
	requireTools(t, "false")
	m := ExecMapper("false")
	if err := m("x", func(k, v string) {}); err == nil {
		t.Fatal("failing command accepted")
	}
}

func TestExecReducerPassThrough(t *testing.T) {
	requireTools(t, "cat")
	r := ExecReducer("cat")
	var got []string
	if err := r("k", []string{"1", "2"}, func(l string) { got = append(got, l) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "k\t1" || got[1] != "k\t2" {
		t.Fatalf("got %v", got)
	}
}

// TestStreamingPipelineWordCount runs the canonical Hadoop Streaming
// demo with real subprocesses: a tr|awk-free pure-shell mapper is
// overkill, so the mapper is awk emitting one word per line and the
// reducer is awk summing counts — the exact programs the Hadoop docs
// show.
func TestStreamingPipelineWordCount(t *testing.T) {
	requireTools(t, "awk")
	mapper := []string{"awk", `{for (i = 1; i <= NF; i++) print $i "\t1"}`}
	reducer := []string{"awk", `-F`, `\t`, `{sum[$1] += $2} END {for (k in sum) print k "\t" sum[k]}`}
	out, stats, err := RunStreamingPipeline(corpus, mapper, reducer, Config[string]{MapTasks: 2, ReduceTasks: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, line := range out {
		k, v := ParseKV(line)
		got[k] = v
	}
	if got["fox"] != "4" || got["the"] != "3" || got["dog"] != "2" {
		t.Fatalf("wordcount wrong: %v", got)
	}
	if stats.MapOutputs != 15 {
		t.Fatalf("MapOutputs = %d, want 15", stats.MapOutputs)
	}
	if stats.ReduceGroups == 0 {
		t.Fatal("no reduce groups")
	}
}

func TestStreamingPipelineMapperFailure(t *testing.T) {
	requireTools(t, "false", "cat")
	if _, _, err := RunStreamingPipeline([]string{"x"}, []string{"false"}, []string{"cat"}, Config[string]{}); err == nil {
		t.Fatal("failing mapper accepted")
	}
}

func TestStreamingPipelineMatchesInProcess(t *testing.T) {
	requireTools(t, "awk")
	mapper := []string{"awk", `{for (i = 1; i <= NF; i++) print $i "\t1"}`}
	reducer := []string{"awk", `-F`, `\t`, `{sum[$1] += $2} END {for (k in sum) print k "\t" sum[k]}`}
	ext, _, err := RunStreamingPipeline(corpus, mapper, reducer, Config[string]{MapTasks: 3, ReduceTasks: 2})
	if err != nil {
		t.Fatal(err)
	}
	inProc, _, err := streamWordCount().RunLines(corpus)
	if err != nil {
		t.Fatal(err)
	}
	a := map[string]string{}
	for _, l := range ext {
		k, v := ParseKV(l)
		a[k] = v
	}
	b := map[string]string{}
	for _, l := range inProc {
		k, v := ParseKV(l)
		b[k] = v
	}
	if len(a) != len(b) {
		t.Fatalf("external %d keys, in-process %d", len(a), len(b))
	}
	for k, v := range b {
		if a[k] != v {
			t.Fatalf("key %q: external %q vs in-process %q", k, a[k], v)
		}
	}
}

func TestRunCommandEmptyArgv(t *testing.T) {
	if _, err := runCommand(nil, []string{"x"}); err == nil {
		t.Fatal("empty argv accepted")
	}
}

func TestExecMapperTablessLine(t *testing.T) {
	requireTools(t, "echo")
	m := ExecMapper("echo", "solo")
	var k, v string
	if err := m("ignored", func(key, value string) { k, v = key, value }); err != nil {
		t.Fatal(err)
	}
	if k != "solo" || v != "" {
		t.Fatalf("got %q=%q", k, v)
	}
}
