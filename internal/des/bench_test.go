package des

import "testing"

// Event-kernel benchmarks: the per-event overheads that bound
// simulator throughput (E20's exhaustive sweep runs ~10^7 events).

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s Simulation
		for e := 0; e < 1000; e++ {
			s.Schedule(float64(e%97), func() {})
		}
		s.Run()
	}
}

func BenchmarkNestedCascade(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s Simulation
		var depth int
		var spawn func()
		spawn = func() {
			if depth < 1000 {
				depth++
				s.Schedule(1, spawn)
			}
		}
		s.Schedule(0, spawn)
		s.Run()
	}
}

func BenchmarkCancelHeavy(b *testing.B) {
	// Half the scheduled events are cancelled before they fire — the
	// pattern the link model produced before its single-wake rewrite.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s Simulation
		events := make([]*Event, 1000)
		for e := range events {
			events[e] = s.Schedule(float64(e), func() {})
		}
		for e := 0; e < len(events); e += 2 {
			s.Cancel(events[e])
		}
		s.Run()
	}
}
