package des

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/obs"
)

// ---------------------------------------------------------------
// Deterministic fuzz model: each LP is a hash accumulator whose
// handler derives everything — how many messages to send, to whom,
// with which quantized delay — from (state, payload). Quantized
// delays manufacture simultaneous timestamps on purpose; zero-delay
// sends exercise the depth ordering; a "cancel" kind exercises
// model-level cancellation (a flag that turns a later event into a
// no-op, the way wfsched cancels link wake-ups). Because the model is
// a pure function of the committed order, byte-equal final states
// across worker counts prove the canonical order is what committed.
// ---------------------------------------------------------------

const (
	fuzzKindWork   = 0
	fuzzKindCancel = 1
)

type fuzzState struct {
	hash      uint64
	events    int64
	cancelled map[int32]bool // epochs switched off by fuzzKindCancel
	skipped   int64
}

func (s *fuzzState) Clone() State {
	c := &fuzzState{hash: s.hash, events: s.events, skipped: s.skipped}
	c.cancelled = make(map[int32]bool, len(s.cancelled))
	for k, v := range s.cancelled {
		c.cancelled[k] = v
	}
	return c
}

func mix(h uint64, vs ...uint64) uint64 {
	for _, v := range vs {
		h ^= v
		h *= 0x9E3779B97F4A7C15
		h ^= h >> 29
	}
	return h
}

// fuzzModel builds a Warp over nLP hash LPs seeded from seed.
func fuzzModel(t *testing.T, seed uint64, nLP, nSeeds, workers int, snapEvery int, window float64, sink obs.Sink) *Warp {
	t.Helper()
	w := NewWarp(WarpConfig{Workers: workers, SnapEvery: snapEvery, Window: window, Obs: sink})
	for i := 0; i < nLP; i++ {
		w.AddLP(fmt.Sprintf("lp%d", i),
			&fuzzState{cancelled: map[int32]bool{}},
			func(p *Proc, at float64, pl Payload) {
				st := p.State().(*fuzzState)
				st.events++
				if pl.Kind == fuzzKindCancel {
					st.cancelled[pl.A] = true
					return
				}
				if st.cancelled[pl.B] {
					st.skipped++ // event arrived after its epoch was cancelled
					return
				}
				st.hash = mix(st.hash, math.Float64bits(at), uint64(pl.A), uint64(pl.B), math.Float64bits(pl.F))
				ttl := pl.A
				if ttl <= 0 {
					return
				}
				h := st.hash
				for n := int(h % 3); n > 0; n-- {
					h = mix(h, uint64(n))
					dst := LPID(h % uint64(len(p.w.lps)))
					// Quantized delays force timestamp collisions;
					// ~1/6 of sends are zero-delay chains.
					delay := []float64{0, 0.25, 0.25, 0.5, 1, 1.5}[(h>>8)%6]
					kind := uint8(fuzzKindWork)
					if (h>>16)%11 == 0 {
						kind = fuzzKindCancel
					}
					p.Send(dst, delay, Payload{
						Kind: kind,
						A:    ttl - 1,
						B:    int32(h % 7),
						F:    float64((h>>24)%1000) / 16,
					})
				}
			})
	}
	h := seed
	for i := 0; i < nSeeds; i++ {
		h = mix(h, uint64(i))
		w.SeedAt(LPID(h%uint64(nLP)), float64((h>>8)%8)/2, Payload{
			Kind: fuzzKindWork, A: int32(6 + h%5), B: int32(h % 7), F: float64(h % 97),
		})
	}
	return w
}

// fingerprint serializes every LP's final state.
func fingerprint(w *Warp) string {
	out := ""
	for i := range w.lps {
		st := w.LPState(LPID(i)).(*fuzzState)
		out += fmt.Sprintf("lp%d hash=%016x events=%d skipped=%d\n", i, st.hash, st.events, st.skipped)
	}
	return out
}

// TestWarpFuzzCrossWorkers is the kernel half of the randomized
// cross-kernel oracle: random event schedules (simultaneous
// timestamps, zero-delay chains, model-level cancellation) must
// produce byte-equal outcomes and identical committed step counts at
// workers 1, 2, 4 and 8 — workers=1 being the sequential kernel path.
func TestWarpFuzzCrossWorkers(t *testing.T) {
	var totalRollbacks int64
	for trial := 0; trial < 12; trial++ {
		seed := mix(0xC0FFEE, uint64(trial))
		nLP := 2 + int(seed%7)
		nSeeds := 3 + int((seed>>8)%6)
		snapEvery := []int{1, 4, 64}[trial%3]
		window := []float64{0, 2.5}[trial%2]

		ref := fuzzModel(t, seed, nLP, nSeeds, 1, 64, 0, obs.Sink{})
		if err := ref.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		want := fingerprint(ref)
		wantSteps := ref.Stats().Committed
		if wantSteps == 0 {
			t.Fatalf("trial %d: degenerate schedule (0 events)", trial)
		}

		for _, workers := range []int{2, 4, 8} {
			w := fuzzModel(t, seed, nLP, nSeeds, workers, snapEvery, window, obs.Sink{})
			if err := w.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(w); got != want {
				t.Fatalf("trial %d workers=%d snap=%d window=%v: outcome diverged\n got:\n%s\nwant:\n%s",
					trial, workers, snapEvery, window, got, want)
			}
			st := w.Stats()
			if st.Committed != wantSteps {
				t.Fatalf("trial %d workers=%d: committed %d steps, sequential did %d",
					trial, workers, st.Committed, wantSteps)
			}
			totalRollbacks += st.Rollbacks
		}
	}
	// Speculation must actually have been exercised somewhere in the
	// suite, or the oracle proves nothing about rollback.
	if totalRollbacks == 0 {
		t.Log("warning: no rollbacks across the whole fuzz suite; oracle ran but speculation untested")
	} else {
		t.Logf("fuzz suite exercised %d rollbacks", totalRollbacks)
	}
}

// TestWarpGVTStress shrinks the batch size and GVT cadence to one so
// passes interleave with nearly every event, hammering the quiesce
// rendezvous and the transient-message window a non-quiescing scan
// would race against (an event executed from a not-yet-scanned LP
// delivering into an already-scanned one). Byte-equality with the
// sequential kernel plus the absence of the rollback-below-GVT panic
// is the oracle; CI runs this under -race.
func TestWarpGVTStress(t *testing.T) {
	oldBatch, oldEvery := batchSize, gvtEvery
	batchSize, gvtEvery = 1, 1
	defer func() { batchSize, gvtEvery = oldBatch, oldEvery }()

	for trial := 0; trial < 6; trial++ {
		seed := mix(0xD15EA5E, uint64(trial))
		nLP := 3 + int(seed%5)
		nSeeds := 4 + int((seed>>8)%5)

		ref := fuzzModel(t, seed, nLP, nSeeds, 1, 64, 0, obs.Sink{})
		if err := ref.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		want := fingerprint(ref)

		for _, workers := range []int{2, 8} {
			for _, window := range []float64{0, 1.5} {
				w := fuzzModel(t, seed, nLP, nSeeds, workers, 2, window, obs.Sink{})
				if err := w.Run(context.Background()); err != nil {
					t.Fatal(err)
				}
				if got := fingerprint(w); got != want {
					t.Fatalf("trial %d workers=%d window=%v: outcome diverged under gvtEvery=1\n got:\n%s\nwant:\n%s",
						trial, workers, window, got, want)
				}
				if w.Stats().Committed != ref.Stats().Committed {
					t.Fatalf("trial %d workers=%d window=%v: committed %d, want %d",
						trial, workers, window, w.Stats().Committed, ref.Stats().Committed)
				}
				if w.Stats().GVTPasses == 0 {
					t.Fatalf("trial %d workers=%d: no GVT passes despite gvtEvery=1", trial, workers)
				}
			}
		}
	}
}

// TestWarpPingPong checks a minimal two-LP exchange commits the exact
// event count and final times on both paths.
func TestWarpPingPong(t *testing.T) {
	for _, workers := range []int{1, 4} {
		w := NewWarp(WarpConfig{Workers: workers})
		mk := func(self string) Handler {
			return func(p *Proc, at float64, pl Payload) {
				st := p.State().(*fuzzState)
				st.events++
				st.hash = mix(st.hash, math.Float64bits(at), uint64(pl.A))
				if pl.A > 0 {
					p.Send(1-p.ID(), 0.5, Payload{A: pl.A - 1})
				}
			}
		}
		a := w.AddLP("a", &fuzzState{cancelled: map[int32]bool{}}, mk("a"))
		w.AddLP("b", &fuzzState{cancelled: map[int32]bool{}}, mk("b"))
		w.SeedAt(a, 0, Payload{A: 100})
		if err := w.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if got := w.Stats().Committed; got != 101 {
			t.Fatalf("workers=%d: committed %d events, want 101", workers, got)
		}
		sa := w.LPState(0).(*fuzzState)
		sb := w.LPState(1).(*fuzzState)
		if sa.events != 51 || sb.events != 50 {
			t.Fatalf("workers=%d: events a=%d b=%d, want 51/50", workers, sa.events, sb.events)
		}
	}
}

// TestWarpZeroDelayDepth pins the canonical order of a zero-delay
// chain: at one instant, a cause commits before its effects, and
// same-depth effects commit in (src, seq) order.
func TestWarpZeroDelayDepth(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var order []int32
		w := NewWarp(WarpConfig{Workers: workers})
		lp := w.AddLP("chain", nil, func(p *Proc, at float64, pl Payload) {
			order = append(order, pl.A)
			if pl.A == 0 {
				p.Send(p.ID(), 0, Payload{A: 2}) // depth 1, seq 0
				p.Send(p.ID(), 0, Payload{A: 3}) // depth 1, seq 1
			}
			if pl.A == 2 {
				p.Send(p.ID(), 0, Payload{A: 4}) // depth 2
			}
		})
		w.SeedAt(lp, 1, Payload{A: 0})
		w.SeedAt(lp, 1, Payload{A: 1}) // same instant, seed order
		if err := w.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprint([]int32{0, 1, 2, 3, 4})
		if got := fmt.Sprint(order); got != want {
			t.Fatalf("workers=%d: zero-delay order %v, want %v", workers, got, want)
		}
	}
}

// TestWarpContextCancel checks both paths honour cancellation, and
// that both still record the partial step count in des.committed —
// telemetry from a cancelled run must not silently read zero.
func TestWarpContextCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		reg := obs.NewRegistry()
		w := NewWarp(WarpConfig{Workers: workers, Obs: obs.Sink{Metrics: reg}})
		lp := w.AddLP("spin", nil, func(p *Proc, at float64, pl Payload) {
			p.Send(p.ID(), 1, pl) // run forever
		})
		w.SeedAt(lp, 0, Payload{})
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- w.Run(ctx) }()
		cancel()
		if err := <-done; err != context.Canceled {
			t.Fatalf("workers=%d: Run = %v, want context.Canceled", workers, err)
		}
		if got, want := reg.Counter("des.committed").Value(), w.Stats().Committed; got != want {
			t.Fatalf("workers=%d: des.committed = %d after cancel, want %d", workers, got, want)
		}
	}
}

// TestWarpMetrics checks the speculation instruments are wired.
func TestWarpMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	seed := mix(0xC0FFEE, 3)
	w := fuzzModel(t, seed, 6, 6, 4, 4, 0, obs.Sink{Metrics: reg})
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("des.committed").Value(); got != w.Stats().Committed {
		t.Fatalf("des.committed = %d, want %d", got, w.Stats().Committed)
	}
	if got := reg.Counter("des.rollbacks").Value(); got != w.Stats().Rollbacks {
		t.Fatalf("des.rollbacks = %d, want %d", got, w.Stats().Rollbacks)
	}
	if got := reg.Counter("des.antimessages").Value(); got != w.Stats().AntiMessages {
		t.Fatalf("des.antimessages = %d, want %d", got, w.Stats().AntiMessages)
	}
	if w.Stats().GVTPasses > 0 {
		if got, want := reg.Gauge("des.gvt").Value(), w.GVT(); got != want && !math.IsInf(want, -1) {
			t.Fatalf("des.gvt = %v, want %v", got, want)
		}
	}
}

// TestWarpPanics pins the API misuse panics.
func TestWarpPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	w := NewWarp(WarpConfig{})
	lp := w.AddLP("a", nil, func(p *Proc, at float64, pl Payload) {
		p.Send(p.ID(), -1, Payload{})
	})
	expectPanic("negative seed time", func() { w.SeedAt(lp, -1, Payload{}) })
	expectPanic("Inf seed time", func() { w.SeedAt(lp, math.Inf(1), Payload{}) })
	expectPanic("NaN seed time", func() { w.SeedAt(lp, math.NaN(), Payload{}) })
	expectPanic("unknown LP", func() { w.SeedAt(lp+1, 0, Payload{}) })
	w.SeedAt(lp, 0, Payload{})
	expectPanic("negative delay", func() { _ = w.Run(context.Background()) })

	w2 := NewWarp(WarpConfig{Workers: 4})
	lp2 := w2.AddLP("b", nil, func(p *Proc, at float64, pl Payload) {
		if at > 0 {
			panic("model panic")
		}
		p.Send(p.ID(), 1, Payload{})
	})
	w2.SeedAt(lp2, 0, Payload{})
	expectPanic("model panic propagates from workers", func() { _ = w2.Run(context.Background()) })
}

// TestRunUntilContext covers the satellite: cancellable RunUntil with
// identical semantics to RunUntil on a clean drain.
func TestRunUntilContext(t *testing.T) {
	build := func() (*Simulation, *[]float64) {
		s := &Simulation{}
		var fired []float64
		for i := 1; i <= 10; i++ {
			tt := float64(i)
			s.Schedule(tt, func() { fired = append(fired, tt) })
		}
		ev := s.Schedule(4.5, func() { fired = append(fired, -1) })
		s.Cancel(ev)
		return s, &fired
	}

	// Clean drain matches RunUntil.
	s1, f1 := build()
	s1.RunUntil(5.5)
	s2, f2 := build()
	if err := s2.RunUntilContext(context.Background(), 5.5); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(*f1) != fmt.Sprint(*f2) || s1.Now() != s2.Now() {
		t.Fatalf("RunUntilContext diverged: %v@%v vs %v@%v", *f2, s2.Now(), *f1, s1.Now())
	}
	if s2.Now() != 5.5 {
		t.Fatalf("clock = %v, want 5.5", s2.Now())
	}

	// Pre-cancelled ctx stops before any step and reports the error.
	s3, f3 := build()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s3.RunUntilContext(ctx, 5.5); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(*f3) != 0 {
		t.Fatalf("cancelled run fired events: %v", *f3)
	}
	if s3.Now() == 5.5 {
		t.Fatal("cancelled run advanced the clock to the target")
	}
}
