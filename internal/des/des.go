// Package des is a minimal discrete-event simulation kernel, the
// stand-in for SimGrid underneath the carbon-footprint workflow
// assignment. It provides a simulated clock, an event queue ordered
// by (time, insertion sequence) for deterministic tie-breaking, and
// cancellable timers — enough to build the platform and scheduler
// models on top.
package des

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/obs"
)

// Simulation owns the clock and the pending-event queue. The zero
// value is ready to use. Simulations are single-goroutine by design,
// as DES logic is inherently sequential in simulated time.
type Simulation struct {
	now    float64
	seq    int64
	queue  eventHeap
	live   int // queued, non-cancelled events — Pending() in O(1)
	steps  int64
	cSteps *obs.Counter // nil unless Observe attached metrics
}

// Event is a scheduled callback. Cancel it via Cancel; a cancelled
// event stays in the queue but is skipped when popped.
type Event struct {
	time      float64
	seq       int64
	fn        func()
	cancelled bool
	index     int
}

// Time returns the simulated time the event fires at.
func (e *Event) Time() float64 { return e.time }

// Cancelled reports whether the event was cancelled.
func (e *Event) Cancelled() bool { return e.cancelled }

// Now returns the current simulated time in seconds.
func (s *Simulation) Now() float64 { return s.now }

// Steps returns the number of events executed so far.
func (s *Simulation) Steps() int64 { return s.steps }

// Clock returns an obs.Clock that reads the simulation's virtual
// time, so a tracer built on it timestamps spans in simulated seconds
// rather than wall time.
func (s *Simulation) Clock() obs.Clock {
	return obs.ClockFunc(func() time.Duration { return obs.Seconds(s.now) })
}

// Observe attaches the observability layer: every executed event
// increments the des.events counter. A zero Sink detaches.
func (s *Simulation) Observe(sink obs.Sink) {
	s.cSteps = sink.Metrics.Counter("des.events") // nil registry -> nil counter
}

// Schedule enqueues fn to run after delay seconds of simulated time
// and returns a handle for cancellation. It panics on negative or NaN
// delays — scheduling into the past is always a model bug.
func (s *Simulation) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("des: invalid delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// At enqueues fn at absolute simulated time t (>= Now).
func (s *Simulation) At(t float64, fn func()) *Event {
	if t < s.now || math.IsNaN(t) {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("des: nil event function")
	}
	e := &Event{time: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	s.live++
	return e
}

// Cancel marks an event so it will not fire. Cancelling an already-
// fired or already-cancelled event is a no-op. A still-queued event
// is decounted immediately (Pending stays O(1)); its entry is lazily
// skipped when it reaches the head of the queue.
func (s *Simulation) Cancel(e *Event) {
	if e != nil && !e.cancelled {
		e.cancelled = true
		if e.index >= 0 {
			s.live--
		}
	}
}

// Step executes the next non-cancelled event, advancing the clock to
// its timestamp. It reports whether an event ran. When only cancelled
// entries remain, it releases them wholesale instead of draining the
// heap one pop at a time.
func (s *Simulation) Step() bool {
	if s.live == 0 {
		for _, e := range s.queue {
			e.index = -1
		}
		s.queue = s.queue[:0]
		return false
	}
	for {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancelled {
			continue
		}
		s.live--
		s.now = e.time
		s.steps++
		s.cSteps.Inc()
		e.fn()
		return true
	}
}

// Run executes events until the queue drains.
func (s *Simulation) Run() {
	for s.Step() {
	}
}

// RunContext executes events until the queue drains or ctx is
// cancelled, polling ctx between batches of events (cancellation is
// checked every 64 steps, so a cancelled run stops promptly without
// paying a per-event check). It returns ctx.Err() if cancellation cut
// the run short, else nil.
func (s *Simulation) RunContext(ctx context.Context) error {
	for i := 0; ; i++ {
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if !s.Step() {
			return nil
		}
	}
}

// RunUntil executes events with timestamps <= t, then advances the
// clock to exactly t (if it is ahead of the last event). The live
// counter lets it stop as soon as only cancelled events remain, not
// just when the queue is physically empty.
func (s *Simulation) RunUntil(t float64) {
	for s.live > 0 {
		next := s.queue[0]
		if next.cancelled {
			heap.Pop(&s.queue)
			continue
		}
		if next.time > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunUntilContext is RunUntil with cancellation: it executes events
// with timestamps <= t until either they drain or ctx is cancelled,
// polling ctx every 64 steps like RunContext. On a clean drain the
// clock advances to exactly t and the return is nil; on cancellation
// the clock stays at the last executed event and the return is
// ctx.Err().
func (s *Simulation) RunUntilContext(ctx context.Context, t float64) error {
	for i := 0; s.live > 0; i++ {
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		next := s.queue[0]
		if next.cancelled {
			heap.Pop(&s.queue)
			continue
		}
		if next.time > t {
			break
		}
		s.Step()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if t > s.now {
		s.now = t
	}
	return nil
}

// Pending returns the number of queued, non-cancelled events. It is
// O(1): the count is maintained by At, Cancel, and Step rather than
// scanned out of the queue.
func (s *Simulation) Pending() int { return s.live }

// eventHeap orders events by (time, seq) so simultaneous events fire
// in scheduling order — determinism the cross-run tests rely on.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	e.index = -1 // no longer queued: Cancel must not decrement live
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
