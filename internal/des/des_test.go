package des

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	var s Simulation
	if s.Now() != 0 {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	var s Simulation
	var order []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		s.Schedule(d, func() { order = append(order, d) })
	}
	s.Run()
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events out of order: %v", order)
	}
	if s.Now() != 5 {
		t.Fatalf("final time %v, want 5", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var s Simulation
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var s Simulation
	var times []float64
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(2, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("nested times = %v, want [1 3]", times)
	}
}

func TestCancelledEventSkipped(t *testing.T) {
	var s Simulation
	fired := false
	e := s.Schedule(1, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	s.Cancel(nil) // must not panic
}

func TestRunUntil(t *testing.T) {
	var s Simulation
	var fired []float64
	for _, d := range []float64{1, 2, 3, 4} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 1 and 2", fired)
	}
	if s.Now() != 2.5 {
		t.Fatalf("clock = %v, want 2.5", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	s.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	var s Simulation
	s.RunUntil(10)
	if s.Now() != 10 {
		t.Fatalf("idle clock = %v, want 10", s.Now())
	}
	// RunUntil into the past does not rewind.
	s.RunUntil(5)
	if s.Now() != 10 {
		t.Fatalf("clock rewound to %v", s.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	var s Simulation
	for _, bad := range []float64{-1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("delay %v did not panic", bad)
				}
			}()
			s.Schedule(bad, func() {})
		}()
	}
}

func TestAtBeforeNowPanics(t *testing.T) {
	var s Simulation
	s.Schedule(5, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	s.At(1, func() {})
}

func TestNilFnPanics(t *testing.T) {
	var s Simulation
	defer func() {
		if recover() == nil {
			t.Fatal("nil fn did not panic")
		}
	}()
	s.Schedule(1, nil)
}

func TestStepReturnsFalseWhenDrained(t *testing.T) {
	var s Simulation
	if s.Step() {
		t.Fatal("empty queue stepped")
	}
	s.Schedule(1, func() {})
	if !s.Step() {
		t.Fatal("step with pending event returned false")
	}
	if s.Steps() != 1 {
		t.Fatalf("steps = %d", s.Steps())
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	var s Simulation
	e1 := s.Schedule(1, func() {})
	s.Schedule(2, func() {})
	s.Cancel(e1)
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
}

// quick-check: time is non-decreasing across any random schedule,
// including events scheduled from inside events.
func TestQuickMonotonicClock(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Simulation
		ok := true
		last := -1.0
		var spawn func(depth int)
		spawn = func(depth int) {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
			if depth < 3 {
				for i := 0; i < rng.Intn(3); i++ {
					s.Schedule(rng.Float64()*10, func() { spawn(depth + 1) })
				}
			}
		}
		for i := 0; i < 5+rng.Intn(10); i++ {
			s.Schedule(rng.Float64()*100, func() { spawn(0) })
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEventTimeAccessor(t *testing.T) {
	var s Simulation
	e := s.Schedule(3.5, func() {})
	if e.Time() != 3.5 {
		t.Fatalf("Time = %v", e.Time())
	}
}

func TestRunContextDrainsWhenUncancelled(t *testing.T) {
	var s Simulation
	ran := 0
	for i := 0; i < 200; i++ {
		s.Schedule(float64(i), func() { ran++ })
	}
	if err := s.RunContext(context.Background()); err != nil {
		t.Fatalf("RunContext = %v", err)
	}
	if ran != 200 {
		t.Fatalf("ran %d of 200 events", ran)
	}
}

func TestRunContextStopsOnCancel(t *testing.T) {
	var s Simulation
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	// A self-perpetuating event stream: without cancellation this
	// would never drain.
	var tick func()
	tick = func() {
		ran++
		if ran == 100 {
			cancel()
		}
		s.Schedule(1, tick)
	}
	s.Schedule(0, tick)
	if err := s.RunContext(ctx); err != context.Canceled {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	// Cancellation is polled every 64 steps, so at most one extra
	// batch runs past the cancel point.
	if ran < 100 || ran > 200 {
		t.Fatalf("ran %d events, want ~100", ran)
	}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	var s Simulation
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Schedule(0, func() { t.Fatal("event ran under cancelled context") })
	if err := s.RunContext(ctx); err != context.Canceled {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
}

// The live counter behind O(1) Pending must survive every transition:
// double cancels, cancels after firing, and queues reduced to an
// all-cancelled residue.
func TestPendingCounterTransitions(t *testing.T) {
	var s Simulation
	e1 := s.Schedule(1, func() {})
	e2 := s.Schedule(2, func() {})
	e3 := s.Schedule(3, func() {})
	if s.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", s.Pending())
	}
	s.Cancel(e2)
	s.Cancel(e2) // double cancel must not decrement twice
	if s.Pending() != 2 {
		t.Fatalf("pending after double cancel = %d, want 2", s.Pending())
	}
	if !s.Step() { // fires e1
		t.Fatal("step returned false with live events")
	}
	s.Cancel(e1) // cancel after firing must not decrement
	if s.Pending() != 1 {
		t.Fatalf("pending after fire = %d, want 1", s.Pending())
	}
	s.Cancel(e3)
	if s.Pending() != 0 {
		t.Fatalf("pending after last cancel = %d, want 0", s.Pending())
	}
	if s.Step() { // only cancelled residue left
		t.Fatal("step fired a cancelled event")
	}
	if s.Now() != 1 {
		t.Fatalf("clock moved by cancelled events: now = %v", s.Now())
	}
}

// RunUntil on a queue whose prefix (or entirety) is cancelled must
// stop via the live counter, not execute anything, and still advance
// the clock to the target time.
func TestRunUntilAllCancelled(t *testing.T) {
	var s Simulation
	var fired bool
	events := make([]*Event, 10)
	for i := range events {
		events[i] = s.Schedule(float64(i), func() { fired = true })
	}
	for _, e := range events {
		s.Cancel(e)
	}
	s.RunUntil(100)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if s.Pending() != 0 || s.Now() != 100 {
		t.Fatalf("pending = %d now = %v, want 0 and 100", s.Pending(), s.Now())
	}
	if s.Steps() != 0 {
		t.Fatalf("steps = %d, want 0", s.Steps())
	}
}

// Pending must agree with a brute-force queue scan under a random
// interleaving of schedules, cancels, and steps.
func TestQuickPendingMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var s Simulation
	var handles []*Event
	for op := 0; op < 5000; op++ {
		switch rng.Intn(4) {
		case 0, 1:
			handles = append(handles, s.Schedule(rng.Float64()*10, func() {}))
		case 2:
			if len(handles) > 0 {
				s.Cancel(handles[rng.Intn(len(handles))])
			}
		case 3:
			s.Step()
		}
		n := 0
		for _, e := range s.queue {
			if !e.cancelled {
				n++
			}
		}
		if n != s.Pending() {
			t.Fatalf("op %d: Pending() = %d, scan = %d", op, s.Pending(), n)
		}
	}
}
