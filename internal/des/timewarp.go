// timewarp.go is the optimistic parallel execution mode of the DES
// kernel: Jefferson's Time Warp. A simulation is partitioned into
// logical processes (LPs), each owning a disjoint slice of model
// state and a local virtual clock. LPs run speculatively on a worker
// pool, exchanging timestamped messages; when a message arrives in an
// LP's simulated past (a straggler), the LP rolls back to a saved
// state, un-sends what it sent since (anti-messages), and re-executes.
// A periodically computed global virtual time (GVT) lower-bounds every
// future message, letting the kernel reclaim history (fossil
// collection) and bound optimism (the window throttle).
//
// # Determinism
//
// Committed outcomes are byte-identical across worker counts. Every
// event carries a canonical key
//
//	(time, depth, src LP, per-src sequence)
//
// where depth counts the zero-delay causal chain within one instant
// (a cause always orders before its same-time effects) and the
// sequence number is each LP's deterministic send counter, restored
// on rollback. Each LP processes — after all rollbacks settle — its
// events in exactly ascending key order, and the workers=1 fast path
// executes the same order on a single heap with none of the
// speculation machinery. Models therefore see one canonical
// serialization regardless of Workers, which is what the wfsched
// byte-equality oracles assert.
//
// Anti-message annihilation is by a globally unique message id that
// is *not* part of the key (re-executed sends get fresh ids but the
// same key, so ordering is stable while stale speculation is
// cancelled exactly).
package des

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// LPID identifies a logical process within one Warp.
type LPID int32

// initSrc is the pseudo-source of seed events scheduled before Run.
const initSrc LPID = -1

// Key is the canonical event order: (time, zero-delay causal depth,
// sending LP, per-sender sequence). Keys are unique per message and
// totally ordered; an LP commits its events in ascending Key order.
type Key struct {
	At    float64
	Depth int32
	Src   LPID
	Seq   uint64
}

// Before reports whether a orders strictly before b.
func (a Key) Before(b Key) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Depth != b.Depth {
		return a.Depth < b.Depth
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Seq < b.Seq
}

// Payload is the fixed-shape message body. A concrete struct (rather
// than an interface) keeps the hot path free of boxing allocations;
// models pack their own meaning into the fields.
type Payload struct {
	Kind    uint8
	A, B, C int32
	F       float64
}

// State is the rollback-able model state of one LP. Clone must return
// a deep copy sharing no mutable memory with the receiver; the kernel
// snapshots by cloning and restores by cloning back.
type State interface{ Clone() State }

// Handler processes one event for one LP. It must be deterministic —
// a pure function of the LP state and the payload — because rollback
// re-executes it during coast-forward, and it must touch no state
// outside p.State() other than sending messages via p.Send.
type Handler func(p *Proc, at float64, pl Payload)

// message is one timestamped event in flight or queued.
type message struct {
	key     Key
	dst     LPID
	uid     uint64 // annihilation identity; not part of the order
	neg     bool   // anti-message
	payload Payload
}

// procRec is one processed (possibly still speculative) event plus
// everything needed to un-process it: the message itself (re-queued
// on rollback) and the sends it produced (anti-messaged on rollback).
type procRec struct {
	m     message
	sends []message
}

// snapRec is a state snapshot taken before processing absolute event
// position pos.
type snapRec struct {
	pos     int64
	state   State
	sendSeq uint64
	lastKey Key
	hasRun  bool
}

// Proc is one logical process: state, clock, input/output queues, and
// the snapshot stack. All fields below mu are guarded by it.
type Proc struct {
	id   LPID
	name string
	w    *Warp
	h    Handler

	mu        sync.Mutex
	state     State
	pending   msgHeap
	pendKeys  map[Key]uint64      // uid of each pending positive, by canonical key
	dead      map[uint64]struct{} // annihilated uids not yet popped / not yet arrived
	processed []procRec
	base      int64 // fossil-collected events before processed[0]
	snaps     []snapRec
	sinceSnap int
	sendSeq   uint64
	lastKey   Key
	hasRun    bool
	running   bool
	inQueue   bool
	queuedKey Key

	// per-event scratch, owned by the executing worker:
	outbox    []message
	replaying bool
	curDepth  int32
	curTime   float64
}

// ID returns the LP's identifier.
func (p *Proc) ID() LPID { return p.id }

// Name returns the LP's debug name.
func (p *Proc) Name() string { return p.name }

// Now returns the LP's local virtual time: the timestamp of the event
// being processed.
func (p *Proc) Now() float64 { return p.curTime }

// State returns the LP's model state for the handler to mutate.
func (p *Proc) State() State { return p.state }

// Send schedules a payload on dst after delay simulated seconds.
// Zero-delay sends are ordered after their cause by the depth field
// of the canonical key. Negative and NaN delays panic as in the
// sequential kernel; +Inf panics too — an event at infinity can
// never commit, and a handler that reacts to it by sending again
// would cascade forever, so it is always a model bug.
func (p *Proc) Send(dst LPID, delay float64, pl Payload) {
	if delay < 0 || math.IsNaN(delay) || math.IsInf(delay, 1) {
		panic(fmt.Sprintf("des: invalid delay %v", delay))
	}
	if dst < 0 || int(dst) >= len(p.w.lps) {
		panic(fmt.Sprintf("des: send to unknown LP %d", dst))
	}
	depth := int32(0)
	if delay == 0 {
		depth = p.curDepth + 1
	}
	k := Key{At: p.curTime + delay, Depth: depth, Src: p.id, Seq: p.sendSeq}
	p.sendSeq++
	if p.replaying {
		return // coast-forward: the original sends still stand
	}
	p.outbox = append(p.outbox, message{
		key: k, dst: dst, uid: p.w.uid.Add(1), payload: pl,
	})
}

// WarpConfig configures a Warp.
type WarpConfig struct {
	// Workers is the parallelism. Values <= 1 select the sequential
	// fast path: one event heap, no snapshots, no rollback machinery.
	Workers int
	// SnapEvery is how many events an LP processes between state
	// snapshots (coast-forward re-executes at most SnapEvery-1 events
	// on rollback). 0 means 64.
	SnapEvery int
	// Window bounds optimism: no LP executes an event more than
	// Window simulated seconds past the current GVT. 0 disables the
	// throttle.
	Window float64
	// Obs attaches metrics (des.committed, des.rollbacks,
	// des.rolled_back, des.antimessages, des.gvt) and rollback spans.
	Obs obs.Sink
}

// WarpStats reports one run's speculation behaviour.
type WarpStats struct {
	// Committed is the number of events in the final (committed)
	// execution — comparable across worker counts and equal to the
	// workers=1 step count.
	Committed int64
	// Rollbacks counts rollback episodes; RolledBack counts events
	// undone (and later re-executed) by them.
	Rollbacks  int64
	RolledBack int64
	// AntiMessages counts anti-messages sent.
	AntiMessages int64
	// GVTPasses counts global-virtual-time computations.
	GVTPasses int64
}

// Warp is an optimistic parallel simulation: a set of LPs, their seed
// events, and the execution engine. Build with NewWarp, add LPs, seed
// initial events, then Run once.
type Warp struct {
	cfg  WarpConfig
	lps  []*Proc
	seed []message
	uid  atomic.Uint64

	gvtBits    atomic.Uint64
	rollbacks  atomic.Int64
	rolledBack atomic.Int64
	antis      atomic.Int64
	gvtPasses  atomic.Int64
	batches    atomic.Int64

	runq    lpHeap
	qmu     sync.Mutex
	qcond   *sync.Cond
	waiting int
	stopped bool
	runErr  error
	panicV  any

	gvtMu   sync.Mutex // serializes GVT passes
	gvtWant bool       // guarded by qmu: a pass is waiting for quiescence
	gvtSafe int        // guarded by qmu: workers parked at the safe point

	cCommitted, cRollbacks, cRolled, cAntis *obs.Counter
	gGVT                                    *obs.Gauge
	tr                                      *obs.Tracer
	track                                   obs.TrackID

	ran bool
}

type warpWorker struct {
	queue []message // undelivered sends + cascading anti-messages
}

// NewWarp creates an empty Time Warp simulation.
func NewWarp(cfg WarpConfig) *Warp {
	if cfg.SnapEvery <= 0 {
		cfg.SnapEvery = 64
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	w := &Warp{cfg: cfg}
	w.qcond = sync.NewCond(&w.qmu)
	w.gvtBits.Store(math.Float64bits(math.Inf(-1)))
	m := cfg.Obs.Metrics
	w.cCommitted = m.Counter("des.committed")
	w.cRollbacks = m.Counter("des.rollbacks")
	w.cRolled = m.Counter("des.rolled_back")
	w.cAntis = m.Counter("des.antimessages")
	w.gGVT = m.Gauge("des.gvt")
	if tr := cfg.Obs.Tracer; tr != nil {
		w.tr = tr
		w.track = tr.Track("timewarp", 0, "rollbacks")
	}
	return w
}

// AddLP registers a logical process with its state and handler and
// returns its id. State may be nil for stateless LPs (then nothing is
// snapshotted and the handler must be memoryless). All LPs must be
// added before Run.
func (w *Warp) AddLP(name string, st State, h Handler) LPID {
	if h == nil {
		panic("des: nil LP handler")
	}
	id := LPID(len(w.lps))
	p := &Proc{
		id: id, name: name, w: w, h: h, state: st,
		pendKeys: map[Key]uint64{}, dead: map[uint64]struct{}{},
	}
	w.lps = append(w.lps, p)
	return id
}

// SeedAt schedules an initial event at absolute time t (>= 0) on lp.
// Seeds fire before any same-time model sends (depth 0, source -1) in
// seeding order. +Inf is rejected for the same reason Send rejects an
// +Inf delay: an event at infinity can never commit, and handlers it
// triggers would cascade further Inf-time sends past Send's checks.
func (w *Warp) SeedAt(lp LPID, t float64, pl Payload) {
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 1) {
		panic(fmt.Sprintf("des: invalid seed time %v", t))
	}
	if lp < 0 || int(lp) >= len(w.lps) {
		panic(fmt.Sprintf("des: seed for unknown LP %d", lp))
	}
	w.seed = append(w.seed, message{
		key: Key{At: t, Depth: 0, Src: initSrc, Seq: uint64(len(w.seed))},
		dst: lp, uid: w.uid.Add(1), payload: pl,
	})
}

// LPState returns an LP's state (for reading results after Run).
func (w *Warp) LPState(id LPID) State { return w.lps[id].state }

// GVT returns the last computed global virtual time (-Inf before the
// first pass; only meaningful with Workers > 1).
func (w *Warp) GVT() float64 { return math.Float64frombits(w.gvtBits.Load()) }

// Stats returns the run's speculation statistics.
func (w *Warp) Stats() WarpStats {
	var committed int64
	for _, p := range w.lps {
		committed += p.base + int64(len(p.processed))
	}
	return WarpStats{
		Committed:    committed,
		Rollbacks:    w.rollbacks.Load(),
		RolledBack:   w.rolledBack.Load(),
		AntiMessages: w.antis.Load(),
		GVTPasses:    w.gvtPasses.Load(),
	}
}

// Run executes the simulation until every LP drains, or ctx is
// cancelled (returning ctx.Err()). It may be called once.
func (w *Warp) Run(ctx context.Context) error {
	if w.ran {
		panic("des: Warp.Run called twice")
	}
	w.ran = true
	if w.cfg.Workers <= 1 {
		return w.runSequential(ctx)
	}
	return w.runParallel(ctx)
}

// ---------------------------------------------------------------
// Sequential fast path: the plain kernel. One heap ordered by the
// canonical key, no locks, no snapshots, no rollbacks — and exactly
// the per-LP event order the parallel path commits.
// ---------------------------------------------------------------

func (w *Warp) runSequential(ctx context.Context) error {
	var q msgHeap
	for _, m := range w.seed {
		heap.Push(&q, m)
	}
	var steps int64
	for i := 0; ; i++ {
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				w.commitSeqCount(steps)
				return err
			}
		}
		if q.Len() == 0 {
			break
		}
		m := heap.Pop(&q).(message)
		p := w.lps[m.dst]
		p.curTime = m.key.At
		p.curDepth = m.key.Depth
		p.outbox = p.outbox[:0]
		p.h(p, m.key.At, m.payload)
		p.base++ // base doubles as the committed count here
		steps++
		for _, s := range p.outbox {
			heap.Push(&q, s)
		}
		p.outbox = p.outbox[:0]
	}
	w.commitSeqCount(steps)
	return nil
}

func (w *Warp) commitSeqCount(steps int64) {
	w.cCommitted.Add(steps)
}

// ---------------------------------------------------------------
// Parallel path.
// ---------------------------------------------------------------

// batchSize bounds how many events a worker processes per LP
// acquisition; small enough to keep cross-LP messages flowing,
// large enough to amortize queue locking. gvtEvery triggers a
// GVT/fossil pass every this many batches (counted across all
// workers). Variables rather than constants so stress tests can
// shrink them to interleave GVT passes with nearly every event.
var (
	batchSize = 32
	gvtEvery  = int64(64)
)

func (w *Warp) runParallel(ctx context.Context) error {
	// Deliver seeds directly: nothing is running yet.
	for _, m := range w.seed {
		w.lps[m.dst].pushPending(m)
	}
	for _, p := range w.lps {
		if p.pending.Len() > 0 {
			k, _ := p.pending.peekKey()
			p.inQueue = true
			p.queuedKey = k
			heap.Push(&w.runq, lpEntry{p: p, key: k})
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < w.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.workerLoop(ctx, &warpWorker{})
		}()
	}
	wg.Wait()
	if w.panicV != nil {
		panic(w.panicV)
	}
	// Record committed work even on a cancelled/failed run, mirroring
	// the sequential path's partial count.
	w.cCommitted.Add(w.Stats().Committed)
	return w.runErr
}

// abort stops every worker, recording why.
func (w *Warp) abort(err error, panicV any) {
	w.qmu.Lock()
	if !w.stopped {
		w.stopped = true
		w.runErr = err
		w.panicV = panicV
	}
	w.qmu.Unlock()
	w.qcond.Broadcast()
}

func (w *Warp) workerLoop(ctx context.Context, ww *warpWorker) {
	defer func() {
		if r := recover(); r != nil {
			w.abort(nil, r)
		}
	}()
	for {
		if err := ctx.Err(); err != nil {
			w.abort(err, nil)
			return
		}
		p := w.acquire()
		if p == nil {
			return // drained or stopped
		}
		w.runBatch(p, ww)
		if n := w.batches.Add(1); n%gvtEvery == 0 {
			w.gvtPass()
		}
	}
}

// acquire pops the lowest-timestamp runnable LP, blocking until one
// exists, the simulation drains, or the run stops. It marks the LP
// running. A nil return means stop.
//
// Lock order is always p.mu before qmu (deliver and enqueueLocked
// nest that way), so acquire releases qmu before touching an LP.
func (w *Warp) acquire() *Proc {
	for {
		w.qmu.Lock()
		for !w.stopped {
			if w.gvtWant {
				// A GVT pass is quiescing the pool. This worker
				// holds no LP and has delivered every send it
				// produced, so it is exactly the consistent-cut
				// participant the pass needs: park here until the
				// pass completes.
				w.gvtSafe++
				w.qcond.Broadcast() // the pass waits on gvtSafe
				for w.gvtWant && !w.stopped {
					w.qcond.Wait()
				}
				w.gvtSafe--
				continue
			}
			if w.runq.Len() > 0 {
				break
			}
			// Queue empty: if every other worker is also waiting,
			// the simulation has drained (any LP with live pending
			// events is either queued or running, and a running
			// worker is not waiting).
			w.waiting++
			if w.waiting == w.cfg.Workers {
				w.stopped = true
				w.qcond.Broadcast()
				break
			}
			w.qcond.Wait()
			w.waiting--
		}
		if w.stopped {
			w.qmu.Unlock()
			return nil
		}
		e := heap.Pop(&w.runq).(lpEntry)
		w.qmu.Unlock()
		p := e.p
		p.mu.Lock()
		if p.running || !p.inQueue || e.key != p.queuedKey {
			p.mu.Unlock() // stale entry
			continue
		}
		// Window throttle: defer LPs too far past GVT. The minimum
		// LP is always within the window (GVT never trails it), so a
		// GVT pass here makes progress, never livelock: either this
		// call runs one, or the concurrent pass it yields to
		// publishes a fresh GVT before this worker's next attempt.
		if w.cfg.Window > 0 {
			gvt := math.Float64frombits(w.gvtBits.Load())
			if !math.IsInf(gvt, -1) && e.key.At > gvt+w.cfg.Window {
				p.mu.Unlock()
				w.qmu.Lock()
				heap.Push(&w.runq, e)
				w.qmu.Unlock()
				w.gvtPass()
				runtime.Gosched()
				continue
			}
		}
		p.running = true
		p.inQueue = false
		p.mu.Unlock()
		return p
	}
}

// enqueueLocked (re)inserts p into the run queue; p.mu must be held.
func (w *Warp) enqueueLocked(p *Proc) {
	k, ok := p.peekPending()
	if !ok || p.running {
		return
	}
	if p.inQueue && !k.Before(p.queuedKey) {
		return
	}
	p.inQueue = true
	p.queuedKey = k
	w.qmu.Lock()
	heap.Push(&w.runq, lpEntry{p: p, key: k})
	w.qmu.Unlock()
	w.qcond.Signal()
}

// runBatch processes up to batchSize events on p, then delivers the
// sends they produced.
func (w *Warp) runBatch(p *Proc, ww *warpWorker) {
	sends := w.runBatchLocked(p)
	w.deliverAll(ww, sends)
}

// runBatchLocked is the under-lock half of runBatch. The unlock is
// deferred (not inline) so that a panicking model handler releases
// p.mu on the way out — sibling workers then observe the abort
// instead of deadlocking on the LP.
func (w *Warp) runBatchLocked(p *Proc) []message {
	p.mu.Lock()
	defer p.mu.Unlock()
	var horizon float64
	if w.cfg.Window > 0 {
		gvt := math.Float64frombits(w.gvtBits.Load())
		if math.IsInf(gvt, -1) {
			horizon = math.Inf(1)
		} else {
			horizon = gvt + w.cfg.Window
		}
	} else {
		horizon = math.Inf(1)
	}
	for n := 0; n < batchSize; n++ {
		m, ok := p.popPending()
		if !ok {
			break
		}
		if m.key.At > horizon {
			p.pushPending(m) // beyond the optimism window
			break
		}
		w.execLocked(p, m)
	}
	sends := p.outbox
	p.outbox = nil
	p.running = false
	w.enqueueLocked(p)
	return sends
}

// execLocked runs one event on p (p.mu held), recording it for
// rollback. Cross-LP sends accumulate in p.outbox for delivery after
// the batch releases p.
func (w *Warp) execLocked(p *Proc, m message) {
	// Snapshot before the event when the cadence says so (and always
	// before the very first).
	pos := p.base + int64(len(p.processed))
	if p.sinceSnap >= w.cfg.SnapEvery || len(p.snaps) == 0 {
		var st State
		if p.state != nil {
			st = p.state.Clone()
		}
		p.snaps = append(p.snaps, snapRec{
			pos: pos, state: st, sendSeq: p.sendSeq, lastKey: p.lastKey, hasRun: p.hasRun,
		})
		p.sinceSnap = 0
	}
	p.sinceSnap++
	p.curTime = m.key.At
	p.curDepth = m.key.Depth
	mark := len(p.outbox)
	p.h(p, m.key.At, m.payload)
	sends := p.outbox[mark:]
	rec := procRec{m: m}
	if len(sends) > 0 {
		rec.sends = append([]message(nil), sends...)
		// Self-sends go straight into this LP's pending queue: their
		// keys are strictly after the current event's, so they can
		// never be stragglers, and skipping the delivery round-trip
		// avoids rolling back a batch that ran past them.
		kept := p.outbox[:mark]
		for _, s := range sends {
			if s.dst == p.id {
				p.pushPending(s)
			} else {
				kept = append(kept, s)
			}
		}
		p.outbox = kept
	}
	p.processed = append(p.processed, rec)
	p.lastKey = m.key
	p.hasRun = true
}

// deliverAll routes messages (and any antis cascading from the
// rollbacks they cause) until the worker's delivery queue drains.
func (w *Warp) deliverAll(ww *warpWorker, msgs []message) {
	ww.queue = append(ww.queue, msgs...)
	for len(ww.queue) > 0 {
		m := ww.queue[len(ww.queue)-1]
		ww.queue = ww.queue[:len(ww.queue)-1]
		w.deliver(ww, m)
	}
}

// deliver hands one message to its destination, rolling the
// destination back if the message lands in its past.
func (w *Warp) deliver(ww *warpWorker, m message) {
	p := w.lps[m.dst]
	p.mu.Lock()
	// Deferred so a handler panic during coast-forward releases p.mu.
	defer p.mu.Unlock()
	if m.neg {
		w.antis.Add(1)
		w.cAntis.Inc()
		if _, dead := p.dead[m.uid]; dead {
			// The positive was already annihilated (a stale
			// incarnation dropped by pushPending).
			delete(p.dead, m.uid)
			return
		}
		// Annihilate: processed -> roll back past it, then kill the
		// re-queued positive; pending or not-yet-arrived -> dead set.
		// The uid must match: a same-key processed event may be a
		// newer (live) incarnation this anti has no business undoing.
		if p.hasRun && !p.lastKey.Before(m.key) {
			if i, ok := p.findProcessed(m.key); ok && p.processed[i].m.uid == m.uid {
				w.rollbackLocked(p, ww, p.base+int64(i))
			}
		}
		p.dead[m.uid] = struct{}{}
		w.enqueueLocked(p) // min key may have changed
		return
	}
	if _, dead := p.dead[m.uid]; dead {
		delete(p.dead, m.uid) // annihilated before arrival
		return
	}
	if p.hasRun && !p.lastKey.Before(m.key) {
		i := p.searchProcessed(m.key)
		if i < len(p.processed) && p.processed[i].m.key == m.key {
			if p.processed[i].m.uid > m.uid {
				// m is a stale incarnation of an already-executed
				// event; drop it and let its in-flight anti consume
				// the tombstone.
				p.tombstone(m.uid)
				return
			}
			// The processed copy is the stale incarnation: roll back
			// past it. Its re-queued positive collides with m in
			// pushPending below and is annihilated there.
			w.rollbackLocked(p, ww, p.base+int64(i))
		} else if m.key.Before(p.lastKey) {
			w.rollbackLocked(p, ww, p.base+int64(i)) // straggler
		}
	}
	p.pushPending(m)
	w.enqueueLocked(p)
}

// tombstone flips a uid's annihilation parity: the first of the pair
// (a dropped positive, or its anti-message) to be seen sets the mark,
// the second consumes it. Every uid sees at most one positive drop
// and at most one anti, so the mark never dangles ambiguously.
func (p *Proc) tombstone(uid uint64) {
	if _, ok := p.dead[uid]; ok {
		delete(p.dead, uid)
	} else {
		p.dead[uid] = struct{}{}
	}
}

// pushPending inserts a positive message into p's pending queue,
// annihilating stale incarnations first. Canonical keys are unique
// per logical event, so two positives sharing a key are an old and a
// new incarnation of a send that was rolled back and re-issued at its
// source; only the largest uid can be live, and an anti-message for
// each smaller one is already in flight. Annihilating the loser here
// — rather than when that anti lands — keeps duplicate keys out of
// the LP's executed sequence, so speculative model state never sees
// the same logical event twice. p.mu must be held.
func (p *Proc) pushPending(m message) {
	if old, ok := p.pendKeys[m.key]; ok {
		if old > m.uid {
			// m itself is the stale incarnation, arriving late.
			p.tombstone(m.uid)
			return
		}
		p.pending.removeUID(old)
		p.tombstone(old)
	}
	p.pendKeys[m.key] = m.uid
	heap.Push(&p.pending, m)
}

// popPending pops the minimum live pending message, lazily discarding
// annihilated entries. p.mu must be held.
func (p *Proc) popPending() (message, bool) {
	for p.pending.Len() > 0 {
		m := heap.Pop(&p.pending).(message)
		if p.pendKeys[m.key] == m.uid {
			delete(p.pendKeys, m.key)
		}
		if _, d := p.dead[m.uid]; d {
			delete(p.dead, m.uid)
			continue
		}
		return m, true
	}
	return message{}, false
}

// peekPending returns the minimum live pending key, lazily discarding
// annihilated entries from the top. p.mu must be held.
func (p *Proc) peekPending() (Key, bool) {
	for p.pending.Len() > 0 {
		top := p.pending[0]
		if _, d := p.dead[top.uid]; !d {
			return top.key, true
		}
		delete(p.dead, top.uid)
		if p.pendKeys[top.key] == top.uid {
			delete(p.pendKeys, top.key)
		}
		heap.Pop(&p.pending)
	}
	return Key{}, false
}

// searchProcessed returns the first index whose key is >= k.
func (p *Proc) searchProcessed(k Key) int {
	lo, hi := 0, len(p.processed)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.processed[mid].m.key.Before(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findProcessed locates the processed event with exactly key k.
func (p *Proc) findProcessed(k Key) (int, bool) {
	i := p.searchProcessed(k)
	if i < len(p.processed) && p.processed[i].m.key == k {
		return i, true
	}
	return 0, false
}

// rollbackLocked rewinds p to just before absolute position pos:
// restore the latest snapshot at or before pos, coast-forward re-run
// (sends suppressed) up to pos, re-queue the undone events' messages,
// and anti-message their sends. p.mu must be held; antis go out via
// the worker's delivery queue after the caller releases p.
func (w *Warp) rollbackLocked(p *Proc, ww *warpWorker, pos int64) {
	i := int(pos - p.base)
	if i < 0 {
		panic(fmt.Sprintf("des: rollback of %q below GVT (pos %d < base %d)", p.name, pos, p.base))
	}
	if i >= len(p.processed) {
		return
	}
	w.rollbacks.Add(1)
	w.rolledBack.Add(int64(len(p.processed) - i))
	w.cRollbacks.Inc()
	w.cRolled.Add(int64(len(p.processed) - i))
	if w.tr != nil {
		w.tr.Instant(w.track, fmt.Sprintf("rollback %s depth=%d", p.name, len(p.processed)-i), w.tr.Now())
	}

	// Latest snapshot at or before pos.
	s := len(p.snaps) - 1
	for s >= 0 && p.snaps[s].pos > pos {
		s--
	}
	if s < 0 {
		panic(fmt.Sprintf("des: no snapshot for rollback of %q to pos %d", p.name, pos))
	}
	snap := p.snaps[s]
	p.snaps = p.snaps[:s+1]
	if p.state != nil {
		p.state = snap.state.Clone()
	}
	p.sendSeq = snap.sendSeq
	p.lastKey = snap.lastKey
	p.hasRun = snap.hasRun

	// Coast-forward: re-execute the surviving suffix without
	// re-sending (the original sends still stand).
	p.replaying = true
	from := int(snap.pos - p.base)
	for j := from; j < i; j++ {
		rec := &p.processed[j]
		p.curTime = rec.m.key.At
		p.curDepth = rec.m.key.Depth
		seq0 := p.sendSeq
		p.h(p, rec.m.key.At, rec.m.payload)
		if got, want := int(p.sendSeq-seq0), len(rec.sends); got != want {
			panic(fmt.Sprintf("des: nondeterministic handler on %q: replay sent %d messages, original sent %d", p.name, got, want))
		}
		p.lastKey = rec.m.key
		p.hasRun = true
	}
	p.replaying = false
	p.sinceSnap = i - from

	// Undo the rolled-back suffix: messages back to pending, sends
	// anti-messaged.
	undone := p.processed[i:]
	for j := range undone {
		p.pushPending(undone[j].m)
		for _, sm := range undone[j].sends {
			anti := sm
			anti.neg = true
			ww.queue = append(ww.queue, anti)
		}
		undone[j].sends = nil
	}
	p.processed = p.processed[:i]
}

// gvtPass computes a new GVT — a lower bound on the timestamp of any
// event that can still be executed or arrive — and fossil-collects
// history older than it.
//
// The pass quiesces the pool first: every other worker parks at the
// safe point in acquire (holding no LP, with every send it produced
// delivered), and the caller itself only runs between batches, so
// once the rendezvous completes nothing is executing and nothing is
// in flight — every live event sits in some LP's pending queue and
// the scan observes a consistent cut. Scanning a running pool
// instead (worker in-flight minima, then LP queues) is racy: a batch
// starting after its worker's minimum was read can execute an event
// from a not-yet-scanned LP, deliver its sends into an
// already-scanned one and reset the minimum, leaving a live message
// the pass never saw — and a GVT above it, which breaks fossil
// collection's "no rollback below GVT" contract.
//
// Passes are serialized by gvtMu. A caller finding one already in
// progress returns immediately and relies on that pass's result; it
// parks at its next acquire until the pass finishes.
func (w *Warp) gvtPass() {
	if !w.gvtMu.TryLock() {
		return
	}
	defer w.gvtMu.Unlock()

	w.qmu.Lock()
	w.gvtWant = true
	w.qcond.Broadcast() // flush queue-waiters into the safe park
	for w.gvtSafe < w.cfg.Workers-1 && !w.stopped {
		w.qcond.Wait()
	}
	stopped := w.stopped
	w.qmu.Unlock()
	defer func() {
		w.qmu.Lock()
		w.gvtWant = false
		w.qcond.Broadcast()
		w.qmu.Unlock()
	}()
	if stopped {
		return
	}
	w.gvtPasses.Add(1)

	min := math.Inf(1)
	for _, p := range w.lps {
		p.mu.Lock()
		if k, ok := p.peekPending(); ok && k.At < min {
			min = k.At
		}
		p.mu.Unlock()
	}
	if math.IsInf(min, 1) {
		return // drained; nothing to bound
	}
	old := math.Float64frombits(w.gvtBits.Load())
	if min < old {
		min = old // GVT is monotone; a conservative stale min is fine
	}
	w.gvtBits.Store(math.Float64bits(min))
	w.gGVT.Set(min)

	// Fossil collection: drop history strictly older than GVT. Events
	// at or after GVT stay, as do the snapshot they coast-forward
	// from and everything after it.
	for _, p := range w.lps {
		p.mu.Lock()
		cut := 0
		for cut < len(p.processed) && p.processed[cut].m.key.At < min {
			cut++
		}
		s := len(p.snaps) - 1
		for s >= 0 && p.snaps[s].pos > p.base+int64(cut) {
			s--
		}
		if s > 0 {
			drop := int(p.snaps[s].pos - p.base)
			p.snaps = p.snaps[s:]
			p.processed = p.processed[drop:]
			p.base += int64(drop)
		}
		p.mu.Unlock()
	}
}

// ---------------------------------------------------------------
// Heaps.
// ---------------------------------------------------------------

// msgHeap orders messages by canonical key.
type msgHeap []message

func (h msgHeap) Len() int           { return len(h) }
func (h msgHeap) Less(i, j int) bool { return h[i].key.Before(h[j].key) }
func (h msgHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x any)        { *h = append(*h, x.(message)) }
func (h *msgHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}

// peekKey returns the minimum key without skipping dead entries.
func (h *msgHeap) peekKey() (Key, bool) {
	if len(*h) == 0 {
		return Key{}, false
	}
	return (*h)[0].key, true
}

// removeUID deletes the entry with the given uid, if present. Linear
// — only stale-incarnation annihilation pays it, and duplicates are
// rare (they need a rollback racing its own anti-messages).
func (h *msgHeap) removeUID(uid uint64) {
	for i := range *h {
		if (*h)[i].uid == uid {
			heap.Remove(h, i)
			return
		}
	}
}

// lpEntry is one run-queue entry; stale entries (key no longer the
// LP's queued key) are dropped at pop.
type lpEntry struct {
	p   *Proc
	key Key
}

type lpHeap []lpEntry

func (h lpHeap) Len() int           { return len(h) }
func (h lpHeap) Less(i, j int) bool { return h[i].key.Before(h[j].key) }
func (h lpHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *lpHeap) Push(x any)        { *h = append(*h, x.(lpEntry)) }
func (h *lpHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
