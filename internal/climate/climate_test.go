package climate

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateShape(t *testing.T) {
	d := Generate(Params{Seed: 1})
	wantYears := 2019 - 1881 + 1
	if got := len(d.Records); got != wantYears*12*16 {
		t.Fatalf("records = %d, want %d", got, wantYears*12*16)
	}
	lo, hi := d.Years()
	if lo != 1881 || hi != 2019 {
		t.Fatalf("years = %d..%d", lo, hi)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Params{Seed: 7})
	b := Generate(Params{Seed: 7})
	if len(a.Records) != len(b.Records) {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %v vs %v", i, a.Records[i], b.Records[i])
		}
	}
	c := Generate(Params{Seed: 8})
	same := true
	for i := range a.Records {
		if a.Records[i].Temp != c.Records[i].Temp {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestAnnualMeansInPaperRange(t *testing.T) {
	// "The annual temperature ranges from a low around 7 °C to a high
	// around 10 °C" (Fig 6 caption context).
	d := Generate(Params{Seed: 42})
	means := d.AnnualMeans()
	if len(means) != 139 {
		t.Fatalf("years with means = %d, want 139", len(means))
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, m := range means {
		min = math.Min(min, m)
		max = math.Max(max, m)
	}
	if min < 6.0 || min > 8.5 {
		t.Fatalf("coldest annual mean %.2f outside plausible 6..8.5", min)
	}
	if max < 9.0 || max > 11.0 {
		t.Fatalf("warmest annual mean %.2f outside plausible 9..11", max)
	}
}

func TestWarmingTrendVisible(t *testing.T) {
	d := Generate(Params{Seed: 3})
	means := d.AnnualMeans()
	// First and last 30-year climatologies must differ by over 1 °C.
	var early, late float64
	for y := 1881; y < 1911; y++ {
		early += means[y]
	}
	for y := 1990; y < 2020; y++ {
		late += means[y]
	}
	early /= 30
	late /= 30
	if late-early < 1.0 {
		t.Fatalf("warming %.2f °C between 1881-1910 and 1990-2019; want > 1", late-early)
	}
}

func TestSeasonalCycleShape(t *testing.T) {
	d := Generate(Params{Seed: 5})
	sums := map[int]float64{}
	counts := map[int]int{}
	for _, r := range d.Records {
		sums[r.Month] += r.Temp
		counts[r.Month]++
	}
	jan := sums[1] / float64(counts[1])
	jul := sums[7] / float64(counts[7])
	if jul-jan < 12 {
		t.Fatalf("July-January gap %.1f °C; want a real seasonal cycle", jul-jan)
	}
	if jan > 3 {
		t.Fatalf("January mean %.1f °C too warm for Germany", jan)
	}
}

func TestMissingFinalMonths(t *testing.T) {
	d := Generate(Params{Seed: 1, EndYear: 2020, MissingFinalMonths: 3})
	present := d.MonthsPresent()
	last := present[2020]
	if len(last) != 9 {
		t.Fatalf("2020 has %d months, want 9", len(last))
	}
	for m := 10; m <= 12; m++ {
		if last[m] {
			t.Fatalf("month %d of 2020 should be missing", m)
		}
	}
	inc := d.IncompleteYears()
	if len(inc) != 1 || inc[0] != 2020 {
		t.Fatalf("incomplete years = %v, want [2020]", inc)
	}
}

func TestIncompleteYearBiasesWarm(t *testing.T) {
	// The assignment's validation lesson: dropping winter months
	// inflates the annual mean.
	full := Generate(Params{Seed: 9, EndYear: 2020})
	broken := Generate(Params{Seed: 9, EndYear: 2020, MissingFinalMonths: 3})
	fm := full.AnnualMeans()[2020]
	bm := broken.AnnualMeans()[2020]
	if bm <= fm+0.5 {
		t.Fatalf("missing Oct-Dec should inflate the mean: full=%.2f broken=%.2f", fm, bm)
	}
}

func TestNoIncompleteYearsByDefault(t *testing.T) {
	d := Generate(Params{Seed: 2})
	if inc := d.IncompleteYears(); len(inc) != 0 {
		t.Fatalf("default dataset has incomplete years: %v", inc)
	}
}

func TestStatesDistinctOffsets(t *testing.T) {
	if len(States) != 16 {
		t.Fatalf("Germany has 16 states, got %d", len(States))
	}
	if len(stateOffsets) != 16 {
		t.Fatalf("offsets = %d, want 16", len(stateOffsets))
	}
	seen := map[string]bool{}
	for _, s := range States {
		if seen[s] {
			t.Fatalf("duplicate state %q", s)
		}
		seen[s] = true
	}
}

func TestSeasonalMeanZero(t *testing.T) {
	var sum float64
	for _, s := range seasonal {
		sum += s
	}
	if math.Abs(sum) > 0.5 {
		t.Fatalf("seasonal cycle mean %.2f; should be near zero so baseMean is the annual mean", sum/12)
	}
}

func TestMonthNameValid(t *testing.T) {
	if MonthName(1) != "Januar" || MonthName(12) != "Dezember" {
		t.Fatal("month names wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MonthName(13) did not panic")
		}
	}()
	MonthName(13)
}

func TestQuickAnnualMeansMatchManual(t *testing.T) {
	f := func(seedRaw uint32) bool {
		d := Generate(Params{Seed: int64(seedRaw), StartYear: 1990, EndYear: 1995})
		means := d.AnnualMeans()
		// Manual recomputation for one year.
		var sum float64
		n := 0
		for _, r := range d.Records {
			if r.Year == 1993 {
				sum += r.Temp
				n++
			}
		}
		return n == 12*16 && math.Abs(means[1993]-sum/float64(n)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestShortSpanGeneration(t *testing.T) {
	d := Generate(Params{Seed: 1, StartYear: 2000, EndYear: 2000})
	if len(d.Records) != 12*16 {
		t.Fatalf("single-year records = %d, want %d", len(d.Records), 12*16)
	}
	years := map[int]bool{}
	for _, r := range d.Records {
		years[r.Year] = true
	}
	if len(years) != 1 || !years[2000] {
		t.Fatalf("unexpected years: %v", years)
	}
}

func TestRecordsSortedByYearMonth(t *testing.T) {
	d := Generate(Params{Seed: 1, StartYear: 2000, EndYear: 2002})
	sorted := sort.SliceIsSorted(d.Records, func(i, j int) bool {
		a, b := d.Records[i], d.Records[j]
		if a.Year != b.Year {
			return a.Year < b.Year
		}
		return a.Month < b.Month
	})
	if !sorted {
		t.Fatal("records not ordered by (year, month)")
	}
}

func TestTrendMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for y := 1881; y <= 2019; y++ {
		v := trend(y)
		if v < prev {
			t.Fatalf("trend not monotone at %d", y)
		}
		prev = v
	}
	if trend(1881) != 0 {
		t.Fatalf("trend(1881) = %v, want 0", trend(1881))
	}
	if total := trend(2019); total < 1.2 || total > 1.8 {
		t.Fatalf("total warming %.2f outside 1.2..1.8 °C", total)
	}
}

func TestTempsPlausible(t *testing.T) {
	d := Generate(Params{Seed: 11})
	for _, r := range d.Records {
		if r.Temp < -25 || r.Temp > 35 {
			t.Fatalf("implausible monthly mean %.1f °C (%v)", r.Temp, r)
		}
	}
}

func TestStateIndex(t *testing.T) {
	if stateIndex("Bayern") != 1 {
		t.Fatalf("stateIndex(Bayern) = %d", stateIndex("Bayern"))
	}
	if stateIndex("Atlantis") != -1 {
		t.Fatal("unknown state found")
	}
	if !strings.Contains(strings.Join(States, ","), "Berlin") {
		t.Fatal("Berlin missing")
	}
}
