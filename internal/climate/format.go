package climate

// format.go implements the two file layouts of the assignment and
// their parsers. Both render to DWD-style semicolon-separated text.
//
// Month layout (12 files, one per month; the course's handout shape):
//
//	Jahr;Baden-Wuerttemberg;Bayern;...;Thueringen
//	1881;6.93;6.21;...;6.90
//
// Station layout (one file per state):
//
//	Jahr;Monat;Temperatur
//	1881;1;-1.52
//
// Cells may be empty (missing observations render as an empty field).

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// MonthFiles renders the dataset in the month layout: the returned
// map has one entry per month name (12 files), each a complete text
// file. Years with no observations for a month are omitted from that
// month's file; missing single cells are empty fields.
func MonthFiles(d *Dataset) map[string]string {
	// index[month][year][stateIdx] = temp
	type cell struct {
		temp float64
		ok   bool
	}
	index := map[int]map[int][]cell{}
	for _, r := range d.Records {
		byYear, ok := index[r.Month]
		if !ok {
			byYear = map[int][]cell{}
			index[r.Month] = byYear
		}
		row, ok := byYear[r.Year]
		if !ok {
			row = make([]cell, len(States))
			byYear[r.Year] = row
		}
		if si := stateIndex(r.State); si >= 0 {
			row[si] = cell{r.Temp, true}
		}
	}
	out := map[string]string{}
	header := "Jahr;" + strings.Join(States, ";")
	for m := 1; m <= 12; m++ {
		var sb strings.Builder
		sb.WriteString(header)
		sb.WriteByte('\n')
		byYear := index[m]
		years := make([]int, 0, len(byYear))
		for y := range byYear {
			years = append(years, y)
		}
		sort.Ints(years)
		for _, y := range years {
			sb.WriteString(strconv.Itoa(y))
			for _, c := range byYear[y] {
				sb.WriteByte(';')
				if c.ok {
					sb.WriteString(strconv.FormatFloat(c.temp, 'f', 2, 64))
				}
			}
			sb.WriteByte('\n')
		}
		out[MonthName(m)] = sb.String()
	}
	return out
}

// StationFiles renders the dataset in the station layout: one file
// per state, rows year;month;temp sorted by (year, month).
func StationFiles(d *Dataset) map[string]string {
	byState := map[string][]Record{}
	for _, r := range d.Records {
		byState[r.State] = append(byState[r.State], r)
	}
	out := map[string]string{}
	for _, state := range States {
		recs := byState[state]
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].Year != recs[j].Year {
				return recs[i].Year < recs[j].Year
			}
			return recs[i].Month < recs[j].Month
		})
		var sb strings.Builder
		sb.WriteString("Jahr;Monat;Temperatur\n")
		for _, r := range recs {
			fmt.Fprintf(&sb, "%d;%d;%s\n", r.Year, r.Month, strconv.FormatFloat(r.Temp, 'f', 2, 64))
		}
		out[state] = sb.String()
	}
	return out
}

// ParseMonthFile parses one month-layout file. The month number must
// be supplied by the caller (it is carried by the file name, as in
// the real dataset).
func ParseMonthFile(r io.Reader, month int) ([]Record, error) {
	if month < 1 || month > 12 {
		return nil, fmt.Errorf("climate: invalid month %d", month)
	}
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("climate: reading header: %w", err)
		}
		return nil, fmt.Errorf("climate: empty month file")
	}
	header := strings.Split(strings.TrimSpace(sc.Text()), ";")
	if len(header) < 2 || header[0] != "Jahr" {
		return nil, fmt.Errorf("climate: malformed month header %q", sc.Text())
	}
	states := header[1:]
	var recs []Record
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ";")
		if len(fields) != len(states)+1 {
			return nil, fmt.Errorf("climate: line %d: %d fields, want %d", lineNo, len(fields), len(states)+1)
		}
		year, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("climate: line %d: bad year %q", lineNo, fields[0])
		}
		for i, f := range fields[1:] {
			if f == "" {
				continue // missing cell
			}
			temp, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("climate: line %d: bad temperature %q", lineNo, f)
			}
			recs = append(recs, Record{Year: year, Month: month, State: states[i], Temp: temp})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("climate: scanning: %w", err)
	}
	return recs, nil
}

// ParseStationFile parses one station-layout file for the named state.
func ParseStationFile(r io.Reader, state string) ([]Record, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("climate: reading header: %w", err)
		}
		return nil, fmt.Errorf("climate: empty station file")
	}
	if got := strings.TrimSpace(sc.Text()); got != "Jahr;Monat;Temperatur" {
		return nil, fmt.Errorf("climate: malformed station header %q", got)
	}
	var recs []Record
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ";")
		if len(fields) != 3 {
			return nil, fmt.Errorf("climate: line %d: %d fields, want 3", lineNo, len(fields))
		}
		year, err1 := strconv.Atoi(fields[0])
		month, err2 := strconv.Atoi(fields[1])
		temp, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil || month < 1 || month > 12 {
			return nil, fmt.Errorf("climate: line %d: malformed record %q", lineNo, line)
		}
		recs = append(recs, Record{Year: year, Month: month, State: state, Temp: temp})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("climate: scanning: %w", err)
	}
	return recs, nil
}

// ParseMonthFiles parses the full month-layout dataset (as produced
// by MonthFiles) back into records.
func ParseMonthFiles(files map[string]string) ([]Record, error) {
	var recs []Record
	for m := 1; m <= 12; m++ {
		content, ok := files[MonthName(m)]
		if !ok {
			return nil, fmt.Errorf("climate: missing month file %s", MonthName(m))
		}
		r, err := ParseMonthFile(strings.NewReader(content), m)
		if err != nil {
			return nil, fmt.Errorf("climate: %s: %w", MonthName(m), err)
		}
		recs = append(recs, r...)
	}
	return recs, nil
}

// ParseStationFiles parses the full station-layout dataset.
func ParseStationFiles(files map[string]string) ([]Record, error) {
	var recs []Record
	for _, state := range States {
		content, ok := files[state]
		if !ok {
			return nil, fmt.Errorf("climate: missing station file %s", state)
		}
		r, err := ParseStationFile(strings.NewReader(content), state)
		if err != nil {
			return nil, fmt.Errorf("climate: %s: %w", state, err)
		}
		recs = append(recs, r...)
	}
	return recs, nil
}
