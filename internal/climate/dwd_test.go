package climate

import (
	"strings"
	"testing"
)

func TestDWDFileName(t *testing.T) {
	if DWDFileName(1) != "regional_averages_tm_01.txt" || DWDFileName(12) != "regional_averages_tm_12.txt" {
		t.Fatal("file names wrong")
	}
}

func TestDWDRoundTrip(t *testing.T) {
	d := Generate(Params{Seed: 6, StartYear: 2000, EndYear: 2005})
	files := DWDFiles(d)
	if len(files) != 12 {
		t.Fatalf("files = %d, want 12", len(files))
	}
	recs, err := ParseDWDFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	a, b := canonical(d.Records), canonical(recs)
	if len(a) != len(b) {
		t.Fatalf("round trip lost records: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDWDFileShape(t *testing.T) {
	d := Generate(Params{Seed: 1, StartYear: 2019, EndYear: 2019})
	f := DWDFiles(d)[DWDFileName(7)]
	lines := strings.Split(strings.TrimRight(f, "\n"), "\n")
	if len(lines) != 3 { // description + header + one year row
		t.Fatalf("lines = %d:\n%s", len(lines), f)
	}
	if !strings.HasPrefix(lines[1], "Jahr;Monat;") || !strings.Contains(lines[1], ";Deutschland;") {
		t.Fatalf("header wrong: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "2019; 7;") {
		t.Fatalf("row wrong: %q", lines[2])
	}
	// Trailing semicolon like the real files.
	if !strings.HasSuffix(lines[2], ";") {
		t.Fatalf("row not semicolon-terminated: %q", lines[2])
	}
}

func TestDWDAggregateValidated(t *testing.T) {
	d := Generate(Params{Seed: 2, StartYear: 2000, EndYear: 2000})
	files := DWDFiles(d)
	name := DWDFileName(3)
	// Corrupt the Deutschland column of the data row.
	lines := strings.Split(files[name], "\n")
	fields := strings.Split(lines[2], ";")
	fields[len(fields)-2] = "99.99"
	lines[2] = strings.Join(fields, ";")
	files[name] = strings.Join(lines, "\n")
	if _, err := ParseDWDFiles(files); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("corrupted aggregate accepted: %v", err)
	}
}

func TestDWDParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"no header":      "desc;\n",
		"bad header":     "desc;\nYear;Month;A;Deutschland;\n",
		"no aggregate":   "desc;\nJahr;Monat;A;B;\n",
		"short row":      "desc;\nJahr;Monat;A;B;Deutschland;\n2000;1;5.0;\n",
		"bad year":       "desc;\nJahr;Monat;A;B;Deutschland;\nabcd;1;5.0;6.0;5.50;\n",
		"wrong month":    "desc;\nJahr;Monat;A;B;Deutschland;\n2000;2;5.0;6.0;5.50;\n",
		"bad temp":       "desc;\nJahr;Monat;A;B;Deutschland;\n2000;1;xx;6.0;6.00;\n",
		"bad aggregate":  "desc;\nJahr;Monat;A;B;Deutschland;\n2000;1;5.0;6.0;zz;\n",
		"wrong aggvalue": "desc;\nJahr;Monat;A;B;Deutschland;\n2000;1;5.0;6.0;9.99;\n",
	}
	for name, content := range cases {
		if _, err := ParseDWDFile(strings.NewReader(content), 1); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestDWDParseValid(t *testing.T) {
	content := "desc;\nJahr;Monat;A;B;Deutschland;\n2000;1;5.0;6.0;5.50;\n\n2001;1;;4.0;4.00;\n"
	recs, err := ParseDWDFile(strings.NewReader(content), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3 (one missing cell)", len(recs))
	}
	if recs[2].Year != 2001 || recs[2].State != "B" || recs[2].Temp != 4.0 {
		t.Fatalf("unexpected record %v", recs[2])
	}
}

func TestDWDMissingFileRejected(t *testing.T) {
	files := DWDFiles(Generate(Params{Seed: 1, StartYear: 2000, EndYear: 2000}))
	delete(files, DWDFileName(5))
	if _, err := ParseDWDFiles(files); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDWDHandlesMissingMonths(t *testing.T) {
	d := Generate(Params{Seed: 3, StartYear: 2019, EndYear: 2020, MissingFinalMonths: 2})
	recs, err := ParseDWDFiles(DWDFiles(d))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Year == 2020 && r.Month > 10 {
			t.Fatalf("missing month resurfaced: %v", r)
		}
	}
}
