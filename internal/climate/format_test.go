package climate

import (
	"sort"
	"strings"
	"testing"
)

// canonical sorts records into a comparable order.
func canonical(recs []Record) []Record {
	out := append([]Record(nil), recs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Year != b.Year {
			return a.Year < b.Year
		}
		if a.Month != b.Month {
			return a.Month < b.Month
		}
		return a.State < b.State
	})
	return out
}

func TestMonthFilesRoundTrip(t *testing.T) {
	d := Generate(Params{Seed: 1, StartYear: 2000, EndYear: 2004})
	files := MonthFiles(d)
	if len(files) != 12 {
		t.Fatalf("month files = %d, want 12", len(files))
	}
	recs, err := ParseMonthFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	a, b := canonical(d.Records), canonical(recs)
	if len(a) != len(b) {
		t.Fatalf("round trip lost records: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStationFilesRoundTrip(t *testing.T) {
	d := Generate(Params{Seed: 2, StartYear: 2010, EndYear: 2012})
	files := StationFiles(d)
	if len(files) != 16 {
		t.Fatalf("station files = %d, want 16", len(files))
	}
	recs, err := ParseStationFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	a, b := canonical(d.Records), canonical(recs)
	if len(a) != len(b) {
		t.Fatalf("round trip lost records: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLayoutsCarrySameData(t *testing.T) {
	d := Generate(Params{Seed: 3, StartYear: 2015, EndYear: 2016})
	fromMonth, err := ParseMonthFiles(MonthFiles(d))
	if err != nil {
		t.Fatal(err)
	}
	fromStation, err := ParseStationFiles(StationFiles(d))
	if err != nil {
		t.Fatal(err)
	}
	a, b := canonical(fromMonth), canonical(fromStation)
	if len(a) != len(b) {
		t.Fatalf("layouts disagree on record count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("layouts disagree at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMissingCellsRenderEmpty(t *testing.T) {
	d := Generate(Params{Seed: 4, StartYear: 2019, EndYear: 2020, MissingFinalMonths: 2})
	files := MonthFiles(d)
	nov := files[MonthName(11)]
	if strings.Contains(nov, "2020") {
		t.Fatalf("November file should not have a 2020 row:\n%s", nov)
	}
	recs, err := ParseMonthFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Year == 2020 && r.Month > 10 {
			t.Fatalf("missing month resurfaced: %v", r)
		}
	}
}

func TestParseMonthFileErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "NotJahr;A;B\n2000;1;2\n",
		"short row":     "Jahr;A;B\n2000;1\n",
		"bad year":      "Jahr;A;B\nabc;1;2\n",
		"bad temp":      "Jahr;A;B\n2000;x;2\n",
		"single column": "Jahr\n2000\n",
	}
	for name, content := range cases {
		if _, err := ParseMonthFile(strings.NewReader(content), 1); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	if _, err := ParseMonthFile(strings.NewReader("Jahr;A\n2000;1.5\n"), 13); err == nil {
		t.Fatal("month 13 accepted")
	}
}

func TestParseStationFileErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "Year;Month;Temp\n",
		"short row":  "Jahr;Monat;Temperatur\n2000;1\n",
		"bad month":  "Jahr;Monat;Temperatur\n2000;13;5.0\n",
		"bad temp":   "Jahr;Monat;Temperatur\n2000;1;abc\n",
	}
	for name, content := range cases {
		if _, err := ParseStationFile(strings.NewReader(content), "X"); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestParseMonthFileSkipsBlankLines(t *testing.T) {
	recs, err := ParseMonthFile(strings.NewReader("Jahr;A;B\n\n2000;1.5;2.5\n\n"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].Month != 3 || recs[0].State != "A" || recs[0].Temp != 1.5 {
		t.Fatalf("unexpected record %v", recs[0])
	}
}

func TestParseMonthFilesMissingFile(t *testing.T) {
	files := MonthFiles(Generate(Params{Seed: 1, StartYear: 2000, EndYear: 2000}))
	delete(files, "Juli")
	if _, err := ParseMonthFiles(files); err == nil {
		t.Fatal("missing month file accepted")
	}
}

func TestParseStationFilesMissingFile(t *testing.T) {
	files := StationFiles(Generate(Params{Seed: 1, StartYear: 2000, EndYear: 2000}))
	delete(files, "Berlin")
	if _, err := ParseStationFiles(files); err == nil {
		t.Fatal("missing station file accepted")
	}
}

func TestMonthFileHeaderListsAllStates(t *testing.T) {
	files := MonthFiles(Generate(Params{Seed: 1, StartYear: 2000, EndYear: 2000}))
	header := strings.SplitN(files["Januar"], "\n", 2)[0]
	for _, s := range States {
		if !strings.Contains(header, s) {
			t.Fatalf("header missing state %s: %s", s, header)
		}
	}
}
