package climate

// dwd.go renders and parses the layout the real assignment downloads:
// DWD's "regional_averages_tm_MM.txt" files. Compared to the
// simplified month layout, the authentic shape has a description line,
// a header carrying a Monat column, and a trailing "Deutschland"
// aggregate column — all details the pre-processing phase must cope
// with, which is exactly the point of the format-invariance exercise.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// DWDFileName returns the canonical file name for month m, e.g.
// "regional_averages_tm_01.txt".
func DWDFileName(m int) string {
	return fmt.Sprintf("regional_averages_tm_%02d.txt", m)
}

// DWDFiles renders the dataset in the authentic DWD regional-averages
// layout: 12 files keyed by DWDFileName, each with a description line,
// a header line, and rows "year;month;state temps...;Deutschland;".
// The Deutschland column is the mean of the state columns present in
// the row, rounded to 0.01 °C like the real files.
func DWDFiles(d *Dataset) map[string]string {
	type cell struct {
		temp float64
		ok   bool
	}
	index := map[int]map[int][]cell{}
	for _, r := range d.Records {
		byYear, ok := index[r.Month]
		if !ok {
			byYear = map[int][]cell{}
			index[r.Month] = byYear
		}
		row, ok := byYear[r.Year]
		if !ok {
			row = make([]cell, len(States))
			byYear[r.Year] = row
		}
		if si := stateIndex(r.State); si >= 0 {
			row[si] = cell{r.Temp, true}
		}
	}
	out := map[string]string{}
	for m := 1; m <= 12; m++ {
		var sb strings.Builder
		fmt.Fprintf(&sb, "Regionaler Mittelwert der Lufttemperatur (tm), Monat %02d, synthetisch;\n", m)
		sb.WriteString("Jahr;Monat;" + strings.Join(States, ";") + ";Deutschland;\n")
		byYear := index[m]
		years := make([]int, 0, len(byYear))
		for y := range byYear {
			years = append(years, y)
		}
		sort.Ints(years)
		for _, y := range years {
			fmt.Fprintf(&sb, "%d;%2d;", y, m)
			sum, n := 0.0, 0
			for _, c := range byYear[y] {
				if c.ok {
					sb.WriteString(strconv.FormatFloat(c.temp, 'f', 2, 64))
					sum += c.temp
					n++
				}
				sb.WriteByte(';')
			}
			if n > 0 {
				sb.WriteString(strconv.FormatFloat(math.Round(sum/float64(n)*100)/100, 'f', 2, 64))
			}
			sb.WriteString(";\n")
		}
		out[DWDFileName(m)] = sb.String()
	}
	return out
}

// ParseDWDFile parses one regional-averages file. The Deutschland
// aggregate column is validated against the row mean (to 0.011 °C)
// and then dropped — downstream analysis recomputes national means
// itself, which is how the course avoids trusting derived columns.
func ParseDWDFile(r io.Reader, wantMonth int) ([]Record, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() { // description line
		return nil, fmt.Errorf("climate: empty DWD file")
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("climate: DWD file missing header")
	}
	header := strings.Split(strings.TrimRight(strings.TrimSpace(sc.Text()), ";"), ";")
	if len(header) < 4 || header[0] != "Jahr" || header[1] != "Monat" {
		return nil, fmt.Errorf("climate: malformed DWD header %q", sc.Text())
	}
	if header[len(header)-1] != "Deutschland" {
		return nil, fmt.Errorf("climate: DWD header missing Deutschland aggregate")
	}
	states := header[2 : len(header)-1]
	var recs []Record
	lineNo := 2
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(strings.TrimRight(line, ";"), ";")
		if len(fields) != len(states)+3 {
			return nil, fmt.Errorf("climate: line %d: %d fields, want %d", lineNo, len(fields), len(states)+3)
		}
		year, err1 := strconv.Atoi(strings.TrimSpace(fields[0]))
		month, err2 := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("climate: line %d: bad year/month %q %q", lineNo, fields[0], fields[1])
		}
		if month != wantMonth {
			return nil, fmt.Errorf("climate: line %d: month %d in file for month %d", lineNo, month, wantMonth)
		}
		sum, n := 0.0, 0
		for i, f := range fields[2 : len(fields)-1] {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			temp, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("climate: line %d: bad temperature %q", lineNo, f)
			}
			recs = append(recs, Record{Year: year, Month: month, State: states[i], Temp: temp})
			sum += temp
			n++
		}
		agg := strings.TrimSpace(fields[len(fields)-1])
		if agg != "" && n > 0 {
			de, err := strconv.ParseFloat(agg, 64)
			if err != nil {
				return nil, fmt.Errorf("climate: line %d: bad Deutschland value %q", lineNo, agg)
			}
			if math.Abs(de-sum/float64(n)) > 0.011 {
				return nil, fmt.Errorf("climate: line %d: Deutschland %.2f inconsistent with row mean %.2f",
					lineNo, de, sum/float64(n))
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("climate: scanning: %w", err)
	}
	return recs, nil
}

// ParseDWDFiles parses the full 12-file regional-averages dataset.
func ParseDWDFiles(files map[string]string) ([]Record, error) {
	var recs []Record
	for m := 1; m <= 12; m++ {
		content, ok := files[DWDFileName(m)]
		if !ok {
			return nil, fmt.Errorf("climate: missing DWD file %s", DWDFileName(m))
		}
		r, err := ParseDWDFile(strings.NewReader(content), m)
		if err != nil {
			return nil, fmt.Errorf("climate: %s: %w", DWDFileName(m), err)
		}
		recs = append(recs, r...)
	}
	return recs, nil
}
