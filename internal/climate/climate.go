// Package climate generates and parses the DWD-like temperature data
// the Warming-Stripes assignment is built on. The real assignment
// downloads monthly average temperatures per German state from
// Deutscher Wetterdienst (1881 onward); this package synthesizes a
// deterministic dataset with the same shape, units, and defects:
//
//   - 16 constituent states, each with its own climatological base;
//   - a seasonal cycle (cold winters, ~18 °C Julys);
//   - an accelerating long-term warming trend calibrated so the
//     Germany-wide annual means span roughly 7–10 °C over 1881–2019,
//     matching the paper's Figure 6 description;
//   - weather noise, deterministic per seed;
//   - optional missing months at the end of the series (the "students
//     downloaded 2020 data in late 2020" validation pitfall).
//
// Two file layouts are provided because the assignment asks for a
// format-invariant pipeline: one file per month (rows = years,
// columns = states — the layout the course hands out) and one file
// per state/station (rows = year;month;temp).
package climate

import (
	"fmt"
	"math"
	"math/rand"
)

// States are the 16 German constituent states, in the column order of
// the month-file layout.
var States = []string{
	"Baden-Wuerttemberg", "Bayern", "Berlin", "Brandenburg",
	"Bremen", "Hamburg", "Hessen", "Mecklenburg-Vorpommern",
	"Niedersachsen", "Nordrhein-Westfalen", "Rheinland-Pfalz", "Saarland",
	"Sachsen", "Sachsen-Anhalt", "Schleswig-Holstein", "Thueringen",
}

// stateOffsets are per-state deviations from the national base (°C),
// roughly tracking geography (maritime north-west mild, elevated
// south/east cooler).
var stateOffsets = []float64{
	-0.3, -1.1, 0.5, 0.3,
	0.6, 0.6, -0.1, 0.1,
	0.4, 0.8, 0.3, 0.4,
	-0.4, 0.2, 0.3, -0.9,
}

// seasonal is the monthly deviation from the annual mean (°C),
// January..December, a Germany-like cycle with mean zero.
var seasonal = [12]float64{
	-9.1, -8.1, -4.5, -0.4, 4.2, 7.3,
	9.1, 8.7, 4.9, 0.2, -4.4, -7.9,
}

// Record is one observation: the monthly average temperature of one
// state in one year.
type Record struct {
	Year  int
	Month int // 1..12
	State string
	Temp  float64 // °C
}

// Params configures the generator.
type Params struct {
	// StartYear and EndYear bound the series (inclusive). Defaults
	// 1881 and 2019, the span of the paper's Figure 6.
	StartYear, EndYear int
	// Seed makes the weather noise reproducible.
	Seed int64
	// NoiseStdDev is the per-month weather noise (°C); default 1.2.
	NoiseStdDev float64
	// MissingFinalMonths drops the last N months of EndYear from the
	// generated dataset, reproducing the incomplete-download pitfall.
	MissingFinalMonths int
}

func (p Params) withDefaults() Params {
	if p.StartYear == 0 {
		p.StartYear = 1881
	}
	if p.EndYear == 0 {
		p.EndYear = 2019
	}
	if p.NoiseStdDev == 0 {
		p.NoiseStdDev = 1.2
	}
	return p
}

// baseMean is the Germany-wide annual mean at the start of the series
// (°C).
const baseMean = 7.9

// trend returns the warming anomaly (°C) for a year: slow warming
// until the mid-20th century, accelerating afterwards — the shape
// that makes warming stripes striking.
func trend(year int) float64 {
	t := float64(year-1881) / float64(2019-1881) // 0..1 over the span
	return 0.35*t + 1.15*t*t*t
}

// Dataset is a fully generated series.
type Dataset struct {
	Params  Params
	Records []Record
}

// Generate builds the synthetic dataset. Records are ordered by year,
// then month, then state (column order of States).
func Generate(p Params) *Dataset {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	var recs []Record
	for year := p.StartYear; year <= p.EndYear; year++ {
		for m := 1; m <= 12; m++ {
			// Shared national weather for the month plus smaller
			// per-state wiggle, so states correlate like real weather.
			national := rng.NormFloat64() * p.NoiseStdDev
			for si, state := range States {
				if year == p.EndYear && m > 12-p.MissingFinalMonths {
					continue
				}
				local := rng.NormFloat64() * p.NoiseStdDev * 0.4
				temp := baseMean + stateOffsets[si] + seasonal[m-1] + trend(year) + national + local
				recs = append(recs, Record{Year: year, Month: m, State: state, Temp: round2(temp)})
			}
		}
	}
	return &Dataset{Params: p, Records: recs}
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }

// Years returns the inclusive year span of the parameters.
func (d *Dataset) Years() (int, int) { return d.Params.StartYear, d.Params.EndYear }

// AnnualMeans computes, directly and sequentially, the Germany-wide
// annual mean temperature per year: the mean over all (state, month)
// observations of that year. It is the oracle the MapReduce pipeline
// is validated against. Years with no observations are absent from
// the map.
func (d *Dataset) AnnualMeans() map[int]float64 {
	sums := map[int]float64{}
	counts := map[int]int{}
	for _, r := range d.Records {
		sums[r.Year] += r.Temp
		counts[r.Year]++
	}
	out := make(map[int]float64, len(sums))
	for y, s := range sums {
		out[y] = s / float64(counts[y])
	}
	return out
}

// MonthsPresent returns, per year, the set of months that have at
// least one observation — the completeness information the validation
// phase of the assignment inspects.
func (d *Dataset) MonthsPresent() map[int]map[int]bool {
	out := map[int]map[int]bool{}
	for _, r := range d.Records {
		m, ok := out[r.Year]
		if !ok {
			m = map[int]bool{}
			out[r.Year] = m
		}
		m[r.Month] = true
	}
	return out
}

// IncompleteYears lists years that are missing one or more months,
// sorted ascending.
func (d *Dataset) IncompleteYears() []int {
	present := d.MonthsPresent()
	var out []int
	for y := d.Params.StartYear; y <= d.Params.EndYear; y++ {
		months, ok := present[y]
		if !ok || len(months) < 12 {
			out = append(out, y)
		}
	}
	return out
}

// stateIndex maps a state name to its column, or -1.
func stateIndex(name string) int {
	for i, s := range States {
		if s == name {
			return i
		}
	}
	return -1
}

// MonthName returns the German month-file label for month m (1..12).
func MonthName(m int) string {
	names := [12]string{
		"Januar", "Februar", "Maerz", "April", "Mai", "Juni",
		"Juli", "August", "September", "Oktober", "November", "Dezember",
	}
	if m < 1 || m > 12 {
		panic(fmt.Sprintf("climate: invalid month %d", m))
	}
	return names[m-1]
}
