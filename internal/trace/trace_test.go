package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Record(Event{}) // must not panic
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Now() != 0 {
		t.Fatal("nil recorder Now != 0")
	}
	if r.Events() != nil || r.Len() != 0 {
		t.Fatal("nil recorder has events")
	}
}

func TestRecordAndSortByStart(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{Tile: 2, Start: 20})
	r.Record(Event{Tile: 0, Start: 5})
	r.Record(Event{Tile: 1, Start: 10})
	ev := r.Events()
	if len(ev) != 3 || r.Len() != 3 {
		t.Fatalf("recorded %d events, want 3", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Start < ev[i-1].Start {
			t.Fatalf("events not sorted: %v", ev)
		}
	}
	if ev[0].Tile != 0 || ev[2].Tile != 2 {
		t.Fatalf("sort order wrong: %v", ev)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Worker: w, Tile: i})
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("lost events: %d, want 800", r.Len())
	}
}

func TestNowMonotonic(t *testing.T) {
	r := NewRecorder()
	a := r.Now()
	time.Sleep(time.Millisecond)
	b := r.Now()
	if b <= a {
		t.Fatalf("Now not increasing: %v then %v", a, b)
	}
}

func sampleEvents() []Event {
	return []Event{
		{Kind: "tile", Iteration: 5, Worker: 0, Tile: 0, Start: 0, Duration: 10 * time.Millisecond, Cells: 100},
		{Kind: "tile", Iteration: 5, Worker: 0, Tile: 1, Start: 10 * time.Millisecond, Duration: 10 * time.Millisecond, Cells: 100},
		{Kind: "tile", Iteration: 5, Worker: 1, Tile: 2, Start: 0, Duration: 5 * time.Millisecond, Cells: 50},
		{Kind: "tile", Iteration: 5, Worker: 1, Tile: 3, Start: 5 * time.Millisecond, Duration: 0, Cells: 0}, // skipped tile
		{Kind: "tile", Iteration: 6, Worker: 0, Tile: 0, Start: 30 * time.Millisecond, Duration: 10 * time.Millisecond, Cells: 100},
	}
}

func TestIterationStats(t *testing.T) {
	st := Iteration(sampleEvents(), 5)
	if st.Tasks != 4 {
		t.Fatalf("tasks = %d, want 4", st.Tasks)
	}
	if st.ActiveTile != 3 {
		t.Fatalf("active tiles = %d, want 3 (one skipped)", st.ActiveTile)
	}
	if st.Cells != 250 {
		t.Fatalf("cells = %d, want 250", st.Cells)
	}
	if st.Workers != 2 {
		t.Fatalf("workers = %d, want 2", st.Workers)
	}
	if st.Span != 20*time.Millisecond {
		t.Fatalf("span = %v, want 20ms", st.Span)
	}
	if st.BusyTotal != 25*time.Millisecond {
		t.Fatalf("busy = %v, want 25ms", st.BusyTotal)
	}
	// busy: worker0=20ms worker1=5ms, mean 12.5 -> imbalance 0.6
	if got := st.Imbalance; got < 0.59 || got > 0.61 {
		t.Fatalf("imbalance = %v, want 0.6", got)
	}
}

func TestIterationStatsEmpty(t *testing.T) {
	st := Iteration(sampleEvents(), 99)
	if st.Tasks != 0 || st.Span != 0 || st.Workers != 0 || st.Imbalance != 0 {
		t.Fatalf("stats of absent iteration not zero: %+v", st)
	}
}

func TestWorkerBusy(t *testing.T) {
	busy := WorkerBusy(sampleEvents())
	if busy[0] != 30*time.Millisecond {
		t.Fatalf("worker 0 busy = %v, want 30ms", busy[0])
	}
	if busy[1] != 5*time.Millisecond {
		t.Fatalf("worker 1 busy = %v, want 5ms", busy[1])
	}
}

func TestTileOwnersLatestWins(t *testing.T) {
	events := []Event{
		{Worker: 0, Tile: 7, Start: 0, Cells: 10},
		{Worker: 1, Tile: 7, Start: 10, Cells: 10}, // later: worker 1 owns tile 7
		{Worker: 2, Tile: 8, Start: 5, Cells: 0},   // skipped: never owned
	}
	owners := TileOwners(events)
	if owners[7] != 1 {
		t.Fatalf("tile 7 owner = %d, want 1", owners[7])
	}
	if _, ok := owners[8]; ok {
		t.Fatal("skipped tile should have no owner")
	}
}

func TestCompareRendersBothColumns(t *testing.T) {
	a := Iteration(sampleEvents(), 5)
	b := Iteration(sampleEvents(), 6)
	out := Compare("32x32", a, "64x64", b)
	for _, want := range []string{"32x32", "64x64", "tasks", "imbalance", "active tiles"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Compare output missing %q:\n%s", want, out)
		}
	}
}
