package trace

import (
	"strings"
	"testing"
	"time"
)

func timelineEvents() []Event {
	return []Event{
		{Iteration: 1, Worker: 0, Tile: 0, Start: 0, Duration: 50 * time.Millisecond, Cells: 10},
		{Iteration: 1, Worker: 1, Tile: 1, Start: 50 * time.Millisecond, Duration: 50 * time.Millisecond, Cells: 10},
		{Iteration: 1, Worker: -1, Tile: 2, Start: 0, Duration: 100 * time.Millisecond, Cells: 10},
		{Iteration: 1, Worker: 2, Tile: 3, Start: 25 * time.Millisecond, Duration: 0, Cells: 0},
		{Iteration: 2, Worker: 0, Tile: 0, Start: 200 * time.Millisecond, Duration: 10 * time.Millisecond, Cells: 5},
	}
}

func TestTimelineStructure(t *testing.T) {
	out := Timeline(timelineEvents(), 1, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + dev + w0 + w1 + w2
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], " dev") {
		t.Fatalf("device row should sort first: %q", lines[1])
	}
	// Device is busy the whole span: its row is solid '#'.
	devBar := lines[1][strings.Index(lines[1], "|")+1 : strings.LastIndex(lines[1], "|")]
	if strings.ContainsAny(devBar, ".o") {
		t.Fatalf("device row should be fully busy: %q", devBar)
	}
	// Worker 0 busy first half, idle second half.
	w0 := lines[2][strings.Index(lines[2], "|")+1 : strings.LastIndex(lines[2], "|")]
	if w0[0] != '#' || w0[len(w0)-1] != '.' {
		t.Fatalf("w0 pattern wrong: %q", w0)
	}
	// Worker 2's zero-cell task renders as 'o'.
	if !strings.Contains(lines[4], "o") {
		t.Fatalf("skipped task not marked: %q", lines[4])
	}
}

func TestTimelineEmptyIteration(t *testing.T) {
	out := Timeline(timelineEvents(), 99, 40)
	if !strings.Contains(out, "no events") {
		t.Fatalf("empty iteration output: %q", out)
	}
}

func TestTimelineMinWidth(t *testing.T) {
	out := Timeline(timelineEvents(), 1, 1)
	if !strings.Contains(out, "|") {
		t.Fatal("degenerate width broke rendering")
	}
}

func TestUtilization(t *testing.T) {
	u := Utilization(timelineEvents(), 1)
	if len(u) != 4 {
		t.Fatalf("workers = %d, want 4", len(u))
	}
	if u[-1] < 0.99 || u[-1] > 1.01 {
		t.Fatalf("device utilization = %v, want ~1", u[-1])
	}
	if u[0] < 0.49 || u[0] > 0.51 {
		t.Fatalf("w0 utilization = %v, want ~0.5", u[0])
	}
	if u[2] != 0 {
		t.Fatalf("skipped-only worker utilization = %v, want 0", u[2])
	}
	if Utilization(nil, 1) != nil {
		t.Fatal("empty events should return nil")
	}
}
