// Package trace records per-task execution events the way EASYPAP's
// trace explorer does: each scheduled unit of work (a tile, in the
// sandpile engine) is logged with its worker, iteration, tile id, and
// begin/end timestamps. The analyses the students perform on EASYPAP
// traces — how many tasks ran in an iteration, how busy each worker
// was, how balanced the iteration was, which tiles were skipped by the
// lazy variant (the black areas of the paper's Figures 3 and 4) — are
// provided as queries over the recorded events.
package trace

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// DefaultKind is the event kind assumed when none is given — the tile
// tasks the original recorder was built for.
const DefaultKind = "tile"

// Event is one executed task.
type Event struct {
	Kind      string // task kind ("" means DefaultKind, "tile")
	Iteration int
	Worker    int           // worker id, or the hetero device id
	Tile      int           // dense tile index
	Start     time.Duration // offset from trace start
	Duration  time.Duration
	Cells     int // cells actually computed (0 for skipped/stable tiles)
}

// Recorder collects events from concurrently running workers. It is a
// thin adapter over the unified obs.Tracer event model: every Record
// becomes a span on the worker's track, so a recorded run can be
// exported both as the legacy JSON-lines trace and as a Chrome trace
// via Tracer(). The zero value is invalid; use NewRecorder. A nil
// *Recorder is a valid no-op sink, so engines can leave tracing off
// with no branching.
type Recorder struct {
	tr *obs.Tracer
}

// Span arg keys under which Event fields ride on the obs span.
const (
	argIter  = "iter"
	argTile  = "tile"
	argCells = "cells"
)

// NewRecorder returns an empty recorder whose clock starts now.
func NewRecorder() *Recorder {
	return &Recorder{tr: obs.NewTracer(nil)}
}

// Tracer exposes the underlying obs tracer, e.g. for Chrome trace
// export of a recorded kernel run. Nil for a nil recorder.
func (r *Recorder) Tracer() *obs.Tracer {
	if r == nil {
		return nil
	}
	return r.tr
}

func workerThreadName(w int) string {
	if w < 0 {
		return "device"
	}
	return fmt.Sprintf("worker %d", w)
}

// Record appends an event; it is safe for concurrent use. The event's
// Start is expected to be relative to the recorder's epoch (see Now).
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	kind := e.Kind
	if kind == "" {
		kind = DefaultKind
	}
	track := r.tr.Track("kernel", e.Worker, workerThreadName(e.Worker))
	r.tr.Span(track, kind, e.Start, e.Duration,
		obs.Arg{Key: argIter, Value: int64(e.Iteration)},
		obs.Arg{Key: argTile, Value: int64(e.Tile)},
		obs.Arg{Key: argCells, Value: int64(e.Cells)})
}

// Now returns the current offset from the recorder's epoch. A nil
// recorder returns 0, letting callers compute timestamps only when
// tracing is on.
func (r *Recorder) Now() time.Duration {
	if r == nil {
		return 0
	}
	return r.tr.Now()
}

// Enabled reports whether events are actually being kept.
func (r *Recorder) Enabled() bool { return r != nil }

// Events returns a copy of all recorded events sorted by start time.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	spans := r.tr.Spans()
	out := make([]Event, 0, len(spans))
	for _, s := range spans {
		e := Event{Kind: s.Name, Worker: s.Track.TID, Start: s.Start, Duration: s.Dur}
		for _, a := range s.Args {
			switch a.Key {
			case argIter:
				e.Iteration = int(a.Value)
			case argTile:
				e.Tile = int(a.Value)
			case argCells:
				e.Cells = int(a.Value)
			}
		}
		out = append(out, e)
	}
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.tr.Len()
}

// IterationStats aggregates the events of a single iteration, the
// unit of comparison in the paper's Figure 3 (two traces of the same
// 500th iteration under different tile sizes).
type IterationStats struct {
	Iteration  int
	Tasks      int           // tasks executed
	ActiveTile int           // tiles that computed at least one cell
	Cells      int           // total cells computed
	Workers    int           // distinct workers that ran at least one task
	Span       time.Duration // last end − first start
	BusyTotal  time.Duration // summed task durations
	Imbalance  float64       // stats.Imbalance over per-worker busy time
}

// Iteration filters the recorder's events to one iteration and
// aggregates them.
func Iteration(events []Event, iter int) IterationStats {
	st := IterationStats{Iteration: iter}
	var first, last time.Duration
	firstSet := false
	busy := map[int]time.Duration{}
	for _, e := range events {
		if e.Iteration != iter {
			continue
		}
		st.Tasks++
		st.Cells += e.Cells
		if e.Cells > 0 {
			st.ActiveTile++
		}
		if !firstSet || e.Start < first {
			first = e.Start
			firstSet = true
		}
		if end := e.Start + e.Duration; end > last {
			last = end
		}
		busy[e.Worker] += e.Duration
		st.BusyTotal += e.Duration
	}
	if firstSet {
		st.Span = last - first
	}
	st.Workers = len(busy)
	per := make([]float64, 0, len(busy))
	for _, d := range busy {
		per = append(per, float64(d))
	}
	st.Imbalance = stats.Imbalance(per)
	return st
}

// WorkerBusy returns per-worker total busy time across all events.
func WorkerBusy(events []Event) map[int]time.Duration {
	busy := map[int]time.Duration{}
	for _, e := range events {
		busy[e.Worker] += e.Duration
	}
	return busy
}

// TileOwners returns, for each tile id present in events, the worker
// that executed it most recently — the coloring of the paper's
// Figure 4 tile-distribution view. Tiles absent from the map were
// never computed in the traced window (stable/black tiles).
func TileOwners(events []Event) map[int]int {
	lastStart := map[int]time.Duration{}
	owners := map[int]int{}
	for _, e := range events {
		if e.Cells == 0 {
			continue
		}
		if s, ok := lastStart[e.Tile]; !ok || e.Start >= s {
			lastStart[e.Tile] = e.Start
			owners[e.Tile] = e.Worker
		}
	}
	return owners
}

// Compare renders a side-by-side comparison of the same iteration
// under two labelled traces, the textual equivalent of Figure 3's two
// stacked trace views.
func Compare(labelA string, a IterationStats, labelB string, b IterationStats) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "iteration %d: %-18s vs %-18s\n", a.Iteration, labelA, labelB)
	row := func(name, av, bv string) {
		fmt.Fprintf(&sb, "  %-14s %-18s %-18s\n", name, av, bv)
	}
	row("tasks", fmt.Sprint(a.Tasks), fmt.Sprint(b.Tasks))
	row("active tiles", fmt.Sprint(a.ActiveTile), fmt.Sprint(b.ActiveTile))
	row("cells", fmt.Sprint(a.Cells), fmt.Sprint(b.Cells))
	row("workers", fmt.Sprint(a.Workers), fmt.Sprint(b.Workers))
	row("span", a.Span.String(), b.Span.String())
	row("busy total", a.BusyTotal.String(), b.BusyTotal.String())
	row("imbalance", fmt.Sprintf("%.3f", a.Imbalance), fmt.Sprintf("%.3f", b.Imbalance))
	return sb.String()
}
