package trace

// io.go persists traces for off-line exploration, the counterpart of
// EASYPAP's trace files: a run records events once, and students dig
// through them afterwards (Fig 3 is exactly such a post-mortem). The
// format is JSON lines — one event per line — so traces stream, diff,
// and grep well.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// wireEvent is the serialized form of Event; times are nanoseconds.
// Kind was added after the first trace release: Write always emits it,
// and Read defaults a missing kind to DefaultKind so traces written by
// older versions still load.
type wireEvent struct {
	Kind      string `json:"kind,omitempty"`
	Iteration int    `json:"iter"`
	Worker    int    `json:"worker"`
	Tile      int    `json:"tile"`
	StartNS   int64  `json:"start_ns"`
	DurNS     int64  `json:"dur_ns"`
	Cells     int    `json:"cells"`
}

// Write streams events to w as JSON lines.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, e := range events {
		kind := e.Kind
		if kind == "" {
			kind = DefaultKind
		}
		we := wireEvent{
			Kind:      kind,
			Iteration: e.Iteration, Worker: e.Worker, Tile: e.Tile,
			StartNS: int64(e.Start), DurNS: int64(e.Duration), Cells: e.Cells,
		}
		if err := enc.Encode(we); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSON-lines trace back into events.
func Read(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var we wireEvent
		if err := json.Unmarshal(sc.Bytes(), &we); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if we.Kind == "" {
			we.Kind = DefaultKind
		}
		events = append(events, Event{
			Kind:      we.Kind,
			Iteration: we.Iteration, Worker: we.Worker, Tile: we.Tile,
			Start: time.Duration(we.StartNS), Duration: time.Duration(we.DurNS),
			Cells: we.Cells,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scanning: %w", err)
	}
	return events, nil
}

// Save writes a recorder's events to a trace file.
func Save(path string, r *Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := Write(f, r.Events()); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a trace file.
func Load(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return Read(f)
}
