package trace

// timeline.go renders per-worker timelines as ASCII art — the textual
// counterpart of EASYPAP's trace-explorer view that the paper's
// Figure 3 screenshots. Each worker gets one row; time runs left to
// right; a filled cell means the worker was executing a task during
// that time slice, '.' means idle.

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Timeline renders the events of one iteration as an ASCII Gantt
// chart with the given width in character columns. Workers are sorted
// by id; the device id -1 sorts first and is labelled "dev".
func Timeline(events []Event, iteration, width int) string {
	if width < 10 {
		width = 10
	}
	var filtered []Event
	var first, last time.Duration
	firstSet := false
	for _, e := range events {
		if e.Iteration != iteration {
			continue
		}
		filtered = append(filtered, e)
		if !firstSet || e.Start < first {
			first, firstSet = e.Start, true
		}
		if end := e.Start + e.Duration; end > last {
			last = end
		}
	}
	if len(filtered) == 0 {
		return fmt.Sprintf("iteration %d: no events\n", iteration)
	}
	span := last - first
	if span <= 0 {
		span = 1
	}

	workers := map[int][]Event{}
	for _, e := range filtered {
		workers[e.Worker] = append(workers[e.Worker], e)
	}
	ids := make([]int, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	var sb strings.Builder
	fmt.Fprintf(&sb, "iteration %d: %d tasks over %s\n", iteration, len(filtered), span)
	for _, id := range ids {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range workers[id] {
			lo := int(float64(e.Start-first) / float64(span) * float64(width))
			hi := int(float64(e.Start+e.Duration-first) / float64(span) * float64(width))
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			glyph := byte('#')
			if e.Cells == 0 {
				glyph = 'o' // skipped tile: scheduled but no compute
			}
			for i := lo; i < hi && i < width; i++ {
				row[i] = glyph
			}
		}
		label := fmt.Sprintf("w%d", id)
		if id < 0 {
			label = "dev"
		}
		fmt.Fprintf(&sb, "%4s |%s|\n", label, row)
	}
	return sb.String()
}

// Utilization returns each worker's busy fraction of the iteration's
// wall-clock span — the quantity a student reads off the EASYPAP
// timeline when diagnosing load imbalance.
func Utilization(events []Event, iteration int) map[int]float64 {
	st := Iteration(events, iteration)
	if st.Span <= 0 {
		return nil
	}
	busy := map[int]time.Duration{}
	for _, e := range events {
		if e.Iteration == iteration {
			busy[e.Worker] += e.Duration
		}
	}
	out := make(map[int]float64, len(busy))
	for id, d := range busy {
		out[id] = float64(d) / float64(st.Span)
	}
	return out
}
