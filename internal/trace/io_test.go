package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, back[i], events[i])
		}
	}
}

// TestKindRoundTrip covers both generations of the wire format: lines
// written before the kind field existed must load with Kind defaulting
// to "tile", and new lines must preserve an explicit kind.
func TestKindRoundTrip(t *testing.T) {
	oldLine := `{"iter":1,"worker":0,"tile":2,"start_ns":5,"dur_ns":7,"cells":3}`
	newLine := `{"kind":"halo","iter":1,"worker":3,"tile":0,"start_ns":9,"dur_ns":1,"cells":0}`
	events, err := Read(strings.NewReader(oldLine + "\n" + newLine + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].Kind != "tile" {
		t.Fatalf("old-format line kind = %q, want tile", events[0].Kind)
	}
	if events[1].Kind != "halo" {
		t.Fatalf("new-format line kind = %q, want halo", events[1].Kind)
	}

	// Writing an event with an empty kind normalizes it to "tile", so
	// re-written old traces stay stable.
	var buf bytes.Buffer
	if err := Write(&buf, []Event{{Iteration: 1, Tile: 2}, {Kind: "halo", Worker: 3}}); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Kind != "tile" || back[1].Kind != "halo" {
		t.Fatalf("write round trip kinds: %q, %q", back[0].Kind, back[1].Kind)
	}
}

func TestReadSkipsBlankLinesAndRejectsGarbage(t *testing.T) {
	good := `{"iter":1,"worker":0,"tile":2,"start_ns":5,"dur_ns":7,"cells":3}`
	events, err := Read(strings.NewReader(good + "\n\n" + good + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].Tile != 2 || events[0].Start != 5*time.Nanosecond {
		t.Fatalf("decoded wrong: %+v", events[0])
	}
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	rec := NewRecorder()
	for _, e := range sampleEvents() {
		rec.Record(e)
	}
	path := filepath.Join(t.TempDir(), "run.trace")
	if err := Save(path, rec); err != nil {
		t.Fatal(err)
	}
	events, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != rec.Len() {
		t.Fatalf("loaded %d events, recorded %d", len(events), rec.Len())
	}
	// Off-line analysis works on the loaded trace.
	st := Iteration(events, 5)
	if st.Tasks != 4 {
		t.Fatalf("post-mortem stats wrong: %+v", st)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.trace")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWriteEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	events, err := Read(&buf)
	if err != nil || len(events) != 0 {
		t.Fatalf("empty round trip: %v, %d events", err, len(events))
	}
}
