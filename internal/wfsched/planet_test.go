package wfsched

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// planetTestConfig is small enough to run the full worker sweep in
// seconds but deep enough (10 layers, cross-cluster degree 3) to force
// real speculation and rollback traffic.
func planetTestConfig() PlanetConfig {
	return PlanetConfig{
		Clusters: 8, Hosts: 4, Tasks: 200,
		Layers: 10, Degree: 3,
		Latency: 0.02, Speed: 5, BusyW: 90,
		Seed: 0xDA7ACE47E5,
	}
}

// TestPlanetMatchesAcrossWorkers is the planet-scale half of the
// cross-kernel oracle: the committed PlanetOutcome — including the
// order-sensitive digest over every cluster's completion stream —
// must be byte-identical at every worker count.
func TestPlanetMatchesAcrossWorkers(t *testing.T) {
	cfg := planetTestConfig()
	want := SimulatePlanet(cfg)
	if want.Tasks != int64(cfg.Clusters*cfg.Tasks) {
		t.Fatalf("sequential run completed %d tasks, want %d", want.Tasks, cfg.Clusters*cfg.Tasks)
	}
	if want.Makespan <= 0 || want.EnergyJ <= 0 || want.Digest == 0 {
		t.Fatalf("degenerate sequential outcome: %+v", want)
	}
	for _, workers := range []int{2, 4, 8} {
		c := cfg
		c.Workers = workers
		got := SimulatePlanet(c)
		if got != want {
			t.Errorf("workers=%d: planet outcome diverged\n got: %+v\nwant: %+v", workers, got, want)
		}
	}
}

// TestPlanetSeedsChangeOutcome guards the procedural generator: a
// different seed must produce a different workload, or the oracle
// above could pass vacuously on a constant.
func TestPlanetSeedsChangeOutcome(t *testing.T) {
	a, b := planetTestConfig(), planetTestConfig()
	b.Seed++
	if SimulatePlanet(a) == SimulatePlanet(b) {
		t.Fatal("adjacent seeds produced identical outcomes")
	}
}

// TestPlanetContextCancel checks a cancelled run surfaces the context
// error instead of spinning through millions of events.
func TestPlanetContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := planetTestConfig()
	if _, err := SimulatePlanetContext(ctx, cfg); err == nil {
		t.Fatal("cancelled sequential run returned nil error")
	}
	cfg.Workers = 4
	if _, err := SimulatePlanetContext(ctx, cfg); err == nil {
		t.Fatal("cancelled parallel run returned nil error")
	}
}

// TestPlanetRollbackMetrics confirms the parallel run actually
// exercises the optimistic machinery on this topology (committed
// events and GVT advance; the run is not secretly sequential).
func TestPlanetRollbackMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := planetTestConfig()
	cfg.Workers = 4
	cfg.Obs = obs.Sink{Metrics: reg}
	SimulatePlanet(cfg)
	if c := reg.Counter("des.committed").Value(); c == 0 {
		t.Error("des.committed = 0; parallel kernel committed nothing")
	}
}
