package wfsched

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSimulateReportsObs checks the virtual-clock contract: task spans
// land on per-slot site tracks with timestamps in simulated seconds
// (bounded by the makespan), and the energy gauges mirror the outcome.
func TestSimulateReportsObs(t *testing.T) {
	sc := smallScenario()
	sink := obs.Sink{Metrics: obs.NewRegistry(), Tracer: obs.NewTracer(nil)}
	sc.Obs = sink
	out := Simulate(sc, AllCloud)

	s := sink.Metrics.Snapshot()
	if s.Counters["platform.tasks"] != int64(sc.Workflow.NumTasks()) {
		t.Fatalf("platform.tasks = %d, want %d", s.Counters["platform.tasks"], sc.Workflow.NumTasks())
	}
	if s.Counters["des.events"] == 0 {
		t.Fatal("des.events counter empty")
	}
	if g := s.Gauges["wfsched.makespan_s"]; g != out.Makespan {
		t.Fatalf("makespan gauge = %v, outcome = %v", g, out.Makespan)
	}
	if s.Gauges["wfsched.co2.total_g"] != out.CO2 || out.CO2 == 0 {
		t.Fatalf("co2 gauge = %v, outcome = %v", s.Gauges["wfsched.co2.total_g"], out.CO2)
	}
	if s.Counters["wfsched.tasks.cloud"] != int64(out.TasksCloud) {
		t.Fatalf("cloud task counter = %d, outcome = %d", s.Counters["wfsched.tasks.cloud"], out.TasksCloud)
	}

	makespan := obs.Seconds(out.Makespan)
	taskSpans := 0
	slots := map[obs.TrackID]bool{}
	for _, sp := range sink.Tracer.Spans() {
		if sp.Name != "task" {
			continue
		}
		taskSpans++
		slots[sp.Track] = true
		if sp.Start < 0 || sp.Start+sp.Dur > makespan+time.Millisecond {
			t.Fatalf("span outside simulated run: start=%v dur=%v makespan=%v", sp.Start, sp.Dur, makespan)
		}
		if sink.Tracer.ProcessName(sp.Track.PID) != "site:cloud" {
			t.Fatalf("all-cloud run has span on %q", sink.Tracer.ProcessName(sp.Track.PID))
		}
	}
	if taskSpans != sc.Workflow.NumTasks() {
		t.Fatalf("task spans = %d, want %d", taskSpans, sc.Workflow.NumTasks())
	}
	if len(slots) < 2 {
		t.Fatalf("all tasks on %d slot(s); expected parallel slot usage", len(slots))
	}
}
