package wfsched

import (
	"context"
	"strings"
	"testing"

	"repro/internal/fault"
)

// faultyScenario is smallScenario with a 10% host-failure rate — the
// acceptance scenario: every workflow must still complete via retry,
// with wasted-work energy reported separately.
func faultyScenario(seed int64) Scenario {
	sc := smallScenario()
	sc.Faults = &fault.Plan{Seed: seed, HostFail: 0.10}
	return sc
}

func TestHostFailuresCompleteViaRetry(t *testing.T) {
	sc := faultyScenario(42)
	// Simulate panics on deadlock (tasks not all completed), so merely
	// returning proves every workflow task finished despite the kills.
	out := Simulate(sc, AllCloud)

	if out.Retries == 0 {
		t.Fatal("10% host-failure rate injected zero retries")
	}
	if out.EnergyWastedKWh <= 0 {
		t.Fatalf("retries without wasted energy: %+v", out)
	}
	total := out.EnergyLocalKWh + out.EnergyCloudKWh
	if out.EnergyWastedKWh >= total {
		t.Fatalf("wasted %.4f kWh >= total %.4f kWh", out.EnergyWastedKWh, total)
	}

	// Failures only ever add work: the faulty makespan and energy must
	// dominate the fault-free run's.
	ref := Simulate(smallScenario(), AllCloud)
	if out.Makespan < ref.Makespan {
		t.Fatalf("faulty makespan %.1f < fault-free %.1f", out.Makespan, ref.Makespan)
	}
	if total < ref.EnergyLocalKWh+ref.EnergyCloudKWh {
		t.Fatalf("faulty energy %.4f < fault-free %.4f", total, ref.EnergyLocalKWh+ref.EnergyCloudKWh)
	}
}

func TestHostFailuresDeterministic(t *testing.T) {
	a := Simulate(faultyScenario(7), AllCloud)
	b := Simulate(faultyScenario(7), AllCloud)
	if a != b {
		t.Fatalf("same seed, different outcomes:\n%v\n%v", a, b)
	}
	c := Simulate(faultyScenario(8), AllCloud)
	if a == c {
		t.Fatal("different seeds produced identical faulty outcomes")
	}
}

func TestNilFaultsUnchanged(t *testing.T) {
	plain := Simulate(smallScenario(), AllLocal)
	sc := smallScenario()
	sc.Faults = &fault.Plan{Seed: 1} // plan armed, but HostFail = 0
	armed := Simulate(sc, AllLocal)
	if plain != armed {
		t.Fatalf("zero-rate fault plan changed the outcome:\n%v\n%v", plain, armed)
	}
	if armed.Retries != 0 || armed.EnergyWastedKWh != 0 {
		t.Fatalf("zero-rate plan reported failures: %+v", armed)
	}
}

func TestSimulateContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SimulateContext(ctx, smallScenario(), AllLocal)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestHostFailuresWithTransfers(t *testing.T) {
	// Mixed placement exercises kills on both sites plus link staging.
	sc := faultyScenario(3)
	place := LevelFractions(sc.Workflow, []float64{0, 0.5, 0.5, 0.5})
	out := Simulate(sc, place)
	if out.TasksLocal == 0 || out.TasksCloud == 0 {
		t.Fatalf("expected mixed placement: %+v", out)
	}
	if out.Retries == 0 {
		t.Fatalf("no retries at 10%% failure over %d tasks", sc.Workflow.NumTasks())
	}
}

func TestFaultyOutcomeStringShowsWaste(t *testing.T) {
	out := Simulate(faultyScenario(42), AllCloud)
	s := out.String()
	if out.Retries > 0 {
		for _, want := range []string{"retries=", "wasted="} {
			if !strings.Contains(s, want) {
				t.Fatalf("outcome string %q missing %q", s, want)
			}
		}
	}
}
