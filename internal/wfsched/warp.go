// warp.go is the Time Warp execution mode of the workflow simulator:
// the same model Simulate runs on one goroutine, re-expressed as
// three logical processes on des.Warp so one big simulation can use
// every core. Scenario.DESWorkers > 1 selects it; the sequential
// kernel stays the workers<=1 fast path.
//
// # LP partition
//
// One LP per simulated site plus one controller:
//
//	ctl   — the scheduler: DAG readiness, file presence, in-flight
//	        transfer dedup, and the fluid link model (the link lives
//	        inside ctl so flow arithmetic is single-owner).
//	local — the cluster's slots, queue, energy meter, fault machinery.
//	cloud — ditto for the VMs (only when the scenario has a cloud).
//
// Cross-LP edges are exactly the model's natural messages: ctl
// submits a task to a site (zero-delay), a site reports a completion
// back (zero-delay), and each site talks only to itself for compute
// completions, kills, repairs, and retry backoffs.
//
// # Why outcomes are byte-identical to Simulate
//
// Every float accumulator has a single owner (a site owns its joules,
// wasted energy, and downtime; ctl owns transferred bytes and the
// flow remainders), so each accumulation sequence happens in its
// owner's committed event order — ascending canonical key — which for
// same-site same-time events equals the legacy kernel's (time, seq)
// order. The Outcome is assembled after the run by the identical
// arithmetic, in the identical order, Simulate uses. Host-failure
// decisions use the injector's pure half (HostFailureDecision) during
// speculation, and the fired-fault schedule is replayed from
// committed state afterwards, so fault.Schedule() is byte-identical
// too.
package wfsched

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/carbon"
	"repro/internal/ckpt"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/workflow"
)

// Message kinds of the wfsched Time Warp protocol.
const (
	kReady    = iota // ctl: a root task becomes ready (seed)
	kFinished        // ctl: site reports task A finished
	kJoin            // ctl: transfer of file A to site B joins the link
	kWake            // ctl: link wake for settle epoch A
	kSubmit          // site: ctl submits task A
	kDone            // site: compute of task A completes
	kKill            // site: host failure kills task A (ord B, attempt C) at frac F
	kRepair          // site: a failed slot comes back
	kRetry           // site: task A (ord B, attempt C) re-enters the queue
)

// twFlow mirrors platform.Link's flow: one in-flight file transfer.
type twFlow struct {
	key                 int32 // fileIdx*2 + destination site
	original, remaining float64
}

// ctlState is the controller LP's rollback-able state.
type ctlState struct {
	pending  []int32 // per task: unfinished parent count
	missing  []int32 // per task: inputs still staging
	finished []byte  // per task: 1 once its kFinished is processed
	done     int32
	lastDone float64

	present  [2][]byte         // [site][fileIdx]: 1 if staged there
	inflight map[int32][]int32 // fileIdx*2+site -> tasks awaiting it

	// The fluid link (platform.Link's model, single-owner here).
	flows     []twFlow
	lastTouch float64
	wakeEpoch int32

	bytes     float64
	transfers int32
}

func (s *ctlState) Clone() des.State {
	// Snapshot via the ckpt codec: encode to the same byte layout a
	// durable checkpoint would use, decode into a fresh state. Keeps
	// Clone honest (no shared mutable memory survives a round-trip).
	var e ckpt.Enc
	s.encode(&e)
	c := &ctlState{}
	d := ckpt.NewDec(e.Bytes())
	c.decode(d)
	if d.Err() != nil {
		panic("wfsched: ctl snapshot codec mismatch")
	}
	return c
}

func (s *ctlState) encode(e *ckpt.Enc) {
	e.I32s(s.pending)
	e.I32s(s.missing)
	e.Str(string(s.finished))
	e.I64(int64(s.done))
	e.F64(s.lastDone)
	e.Str(string(s.present[0]))
	e.Str(string(s.present[1]))
	keys := make([]int32, 0, len(s.inflight))
	for k := range s.inflight {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.U32(uint32(k))
		e.I32s(s.inflight[k])
	}
	e.U32(uint32(len(s.flows)))
	for _, f := range s.flows {
		e.U32(uint32(f.key))
		e.F64(f.original)
		e.F64(f.remaining)
	}
	e.F64(s.lastTouch)
	e.U32(uint32(s.wakeEpoch))
	e.F64(s.bytes)
	e.I64(int64(s.transfers))
}

func (s *ctlState) decode(d *ckpt.Dec) {
	s.pending = d.I32s()
	s.missing = d.I32s()
	s.finished = []byte(d.Str())
	s.done = int32(d.I64())
	s.lastDone = d.F64()
	s.present[0] = []byte(d.Str())
	s.present[1] = []byte(d.Str())
	n := int(d.U32())
	s.inflight = make(map[int32][]int32, n)
	for i := 0; i < n; i++ {
		k := int32(d.U32())
		s.inflight[k] = d.I32s()
	}
	s.flows = make([]twFlow, d.U32())
	for i := range s.flows {
		s.flows[i] = twFlow{key: int32(d.U32()), original: d.F64(), remaining: d.F64()}
	}
	s.lastTouch = d.F64()
	s.wakeEpoch = int32(d.U32())
	s.bytes = d.F64()
	s.transfers = int32(d.I64())
}

// twQueued mirrors platform.Site's queuedTask.
type twQueued struct {
	task, ord, attempt int32
}

// twDown is one slot-repair window.
type twDown struct {
	start, dur float64
}

// twKill records a committed host failure for post-run note replay.
type twKill struct {
	ord, attempt int32
	frac         float64
}

// siteState is a site LP's rollback-able state — platform.Site's
// mutable half. Slot identity is dropped (free slots are a count):
// it only ever keyed trace lanes, never outcomes.
type siteState struct {
	freeSlots int32
	queue     []twQueued
	nextOrd   int32
	retries   int32
	tasksRun  int32
	wastedJ   float64
	meterJ    float64 // joules, accumulated in legacy add order
	downtime  []twDown

	// Post-run reporting, accumulated speculatively and committed
	// with the state: fired-fault notes and an attempts-exhausted
	// task (legacy panics inline; Time Warp panics after the run).
	kills            []twKill
	retryNotes       []twQueued
	exhausted        bool
	exhaustedOrd     int32
	exhaustedAttempt int32
}

func (s *siteState) Clone() des.State {
	var e ckpt.Enc
	s.encode(&e)
	c := &siteState{}
	d := ckpt.NewDec(e.Bytes())
	c.decode(d)
	if d.Err() != nil {
		panic("wfsched: site snapshot codec mismatch")
	}
	return c
}

func (s *siteState) encode(e *ckpt.Enc) {
	e.I64(int64(s.freeSlots))
	e.I64(int64(s.nextOrd))
	e.I64(int64(s.retries))
	e.I64(int64(s.tasksRun))
	e.F64(s.wastedJ)
	e.F64(s.meterJ)
	e.U32(uint32(len(s.queue)))
	for _, q := range s.queue {
		e.U32(uint32(q.task))
		e.U32(uint32(q.ord))
		e.U32(uint32(q.attempt))
	}
	e.U32(uint32(len(s.downtime)))
	for _, dn := range s.downtime {
		e.F64(dn.start)
		e.F64(dn.dur)
	}
	e.U32(uint32(len(s.kills)))
	for _, k := range s.kills {
		e.U32(uint32(k.ord))
		e.U32(uint32(k.attempt))
		e.F64(k.frac)
	}
	e.U32(uint32(len(s.retryNotes)))
	for _, q := range s.retryNotes {
		e.U32(uint32(q.task))
		e.U32(uint32(q.ord))
		e.U32(uint32(q.attempt))
	}
	flag := uint8(0)
	if s.exhausted {
		flag = 1
	}
	e.U8(flag)
	e.U32(uint32(s.exhaustedOrd))
	e.U32(uint32(s.exhaustedAttempt))
}

func (s *siteState) decode(d *ckpt.Dec) {
	s.freeSlots = int32(d.I64())
	s.nextOrd = int32(d.I64())
	s.retries = int32(d.I64())
	s.tasksRun = int32(d.I64())
	s.wastedJ = d.F64()
	s.meterJ = d.F64()
	s.queue = make([]twQueued, d.U32())
	for i := range s.queue {
		s.queue[i] = twQueued{task: int32(d.U32()), ord: int32(d.U32()), attempt: int32(d.U32())}
	}
	s.downtime = make([]twDown, d.U32())
	for i := range s.downtime {
		s.downtime[i] = twDown{start: d.F64(), dur: d.F64()}
	}
	s.kills = make([]twKill, d.U32())
	for i := range s.kills {
		s.kills[i] = twKill{ord: int32(d.U32()), attempt: int32(d.U32()), frac: d.F64()}
	}
	s.retryNotes = make([]twQueued, d.U32())
	for i := range s.retryNotes {
		s.retryNotes[i] = twQueued{task: int32(d.U32()), ord: int32(d.U32()), attempt: int32(d.U32())}
	}
	s.exhausted = d.U8() != 0
	s.exhaustedOrd = int32(d.U32())
	s.exhaustedAttempt = int32(d.U32())
}

// warpModel is the immutable context every handler closes over:
// static DAG/platform tables plus the injector (queried only through
// its pure methods during the run).
type warpModel struct {
	sc    Scenario
	tasks []*workflow.Task
	files []*workflow.File

	gflop     []float64 // per task
	inputs    [][]int32 // per task: file indices
	outputs   [][]int32
	children  [][]int32
	placement []SiteID
	fileBytes []float64

	siteLP [2]des.LPID // des LP id per SiteID (cloud unset if absent)
	ctl    des.LPID

	inj *fault.Injector
}

type siteParams struct {
	name       string
	slots      int
	speed      float64
	busy, idle float64
}

func (m *warpModel) params(s SiteID) siteParams {
	if s == Local {
		return siteParams{"local", m.sc.LocalNodes, m.sc.PState.Speed, m.sc.PState.BusyPower, m.sc.PState.IdlePower}
	}
	return siteParams{"cloud", m.sc.CloudVMs, m.sc.VMSpeed, m.sc.VMBusyPower, m.sc.VMIdlePower}
}

// simulateWarp runs the scenario on the Time Warp kernel. Reached
// from SimulateContext when sc.DESWorkers > 1.
func simulateWarp(ctx context.Context, sc Scenario, place Placement) (Outcome, error) {
	w := sc.Workflow
	m := &warpModel{sc: sc, tasks: w.Tasks, files: w.Files}
	m.inj = fault.NewInjector(sc.Faults, sc.Obs)

	// Index the DAG into flat tables the handlers can share.
	taskIdx := make(map[*workflow.Task]int32, len(w.Tasks))
	for i, t := range w.Tasks {
		taskIdx[t] = int32(i)
	}
	fileIdx := make(map[*workflow.File]int32, len(w.Files))
	for i, f := range w.Files {
		fileIdx[f] = int32(i)
	}
	m.gflop = make([]float64, len(w.Tasks))
	m.inputs = make([][]int32, len(w.Tasks))
	m.outputs = make([][]int32, len(w.Tasks))
	m.children = make([][]int32, len(w.Tasks))
	m.placement = make([]SiteID, len(w.Tasks))
	var out Outcome
	for i, t := range w.Tasks {
		m.gflop[i] = t.Gflop
		for _, f := range t.Inputs {
			m.inputs[i] = append(m.inputs[i], fileIdx[f])
		}
		for _, f := range t.Outputs {
			m.outputs[i] = append(m.outputs[i], fileIdx[f])
		}
		for _, c := range t.Children {
			m.children[i] = append(m.children[i], taskIdx[c])
		}
		m.placement[i] = place(t)
		if m.placement[i] == Cloud {
			out.TasksCloud++
		} else {
			out.TasksLocal++
		}
	}
	m.fileBytes = make([]float64, len(w.Files))
	for i, f := range w.Files {
		m.fileBytes[i] = f.Bytes
	}

	// Build the LPs.
	eng := des.NewWarp(des.WarpConfig{Workers: sc.DESWorkers, Obs: sc.Obs})
	cst := &ctlState{
		pending:  make([]int32, len(w.Tasks)),
		missing:  make([]int32, len(w.Tasks)),
		finished: make([]byte, len(w.Tasks)),
		inflight: map[int32][]int32{},
	}
	cst.present[Local] = make([]byte, len(w.Files))
	cst.present[Cloud] = make([]byte, len(w.Files))
	for i, f := range w.Files {
		if f.Producer == nil {
			cst.present[Local][i] = 1 // inputs staged on local storage
		}
	}
	for i, t := range w.Tasks {
		cst.pending[i] = int32(len(t.Parents))
	}
	m.ctl = eng.AddLP("ctl", cst, m.ctlHandler)
	m.siteLP[Local] = eng.AddLP("local", &siteState{freeSlots: int32(sc.LocalNodes)},
		m.siteHandler(Local))
	if sc.CloudVMs > 0 {
		m.siteLP[Cloud] = eng.AddLP("cloud", &siteState{freeSlots: int32(sc.CloudVMs)},
			m.siteHandler(Cloud))
	}

	// Seed the roots in task order, as Simulate schedules them.
	for i := range w.Tasks {
		if cst.pending[i] == 0 {
			eng.SeedAt(m.ctl, 0, des.Payload{Kind: kReady, A: int32(i)})
		}
	}

	if err := eng.Run(ctx); err != nil {
		return out, err
	}

	// Commit: read the final LP states and assemble the Outcome with
	// Simulate's exact arithmetic, in Simulate's exact order.
	ctl := eng.LPState(m.ctl).(*ctlState)
	local := eng.LPState(m.siteLP[Local]).(*siteState)
	var cloud *siteState
	if sc.CloudVMs > 0 {
		cloud = eng.LPState(m.siteLP[Cloud]).(*siteState)
	}
	for _, st := range []*siteState{local, cloud} {
		if st != nil && st.exhausted {
			name := "local"
			if st == cloud {
				name = "cloud"
			}
			panic(fmt.Sprintf("platform: task %d on %q exhausted %d attempts",
				st.exhaustedOrd, name, st.exhaustedAttempt))
		}
	}
	if int(ctl.done) != len(w.Tasks) {
		panic(fmt.Sprintf("wfsched: deadlock: %d of %d tasks completed", ctl.done, len(w.Tasks)))
	}
	out.Makespan = ctl.lastDone
	out.BytesTransferred = ctl.bytes
	out.Transfers = int(ctl.transfers)

	// Replay committed fault notes so Schedule(), counters, and the
	// live event stream match a sequential run's (Schedule sorts, so
	// replay order is immaterial).
	for _, st := range []*siteState{local, cloud} {
		if st == nil {
			continue
		}
		name := "local"
		if st == cloud {
			name = "cloud"
		}
		for _, k := range st.kills {
			m.inj.NoteHostFailure(name, int(k.ord), int(k.attempt), k.frac)
		}
		for _, r := range st.retryNotes {
			m.inj.NoteTaskRetry(name, int(r.ord), int(r.attempt))
		}
	}

	// FinalizeIdle, re-expressed on the committed joules.
	finalize := func(st *siteState, p siteParams) {
		idleSec := float64(p.slots) * out.Makespan
		for _, d := range st.downtime {
			end := d.start + d.dur
			if end > out.Makespan {
				end = out.Makespan
			}
			if end > d.start {
				idleSec -= end - d.start
			}
		}
		if idleSec < 0 {
			idleSec = 0
		}
		st.meterJ += p.idle * idleSec
	}
	wastedJ := 0.0
	finalize(local, m.params(Local))
	out.EnergyLocalKWh = carbon.JoulesToKWh(local.meterJ)
	out.CO2Local = carbon.Emissions(local.meterJ, sc.LocalIntensity)
	out.Retries = int(local.retries)
	wastedJ = local.wastedJ
	if cloud != nil {
		finalize(cloud, m.params(Cloud))
		out.EnergyCloudKWh = carbon.JoulesToKWh(cloud.meterJ)
		out.CO2Cloud = carbon.Emissions(cloud.meterJ, sc.CloudIntensity)
		out.Retries += int(cloud.retries)
		wastedJ += cloud.wastedJ
	}
	out.EnergyWastedKWh = wastedJ / 3.6e6
	out.CO2 = out.CO2Local + out.CO2Cloud
	if reg := sc.Obs.Metrics; reg != nil {
		reg.Gauge("wfsched.makespan_s").Set(out.Makespan)
		reg.Gauge("wfsched.energy.local_kwh").Set(out.EnergyLocalKWh)
		reg.Gauge("wfsched.energy.cloud_kwh").Set(out.EnergyCloudKWh)
		reg.Gauge("wfsched.co2.total_g").Set(out.CO2)
		reg.Counter("wfsched.tasks.local").Add(int64(out.TasksLocal))
		reg.Counter("wfsched.tasks.cloud").Add(int64(out.TasksCloud))
		reg.Counter("wfsched.transfers").Add(int64(out.Transfers))
		reg.Counter("wfsched.retries").Add(int64(out.Retries))
		reg.Gauge("fault.energy.wasted_kwh").Set(out.EnergyWastedKWh)
	}
	return out, nil
}

// ctlHandler is the controller LP: DAG readiness, staging, and the
// fluid link.
func (m *warpModel) ctlHandler(p *des.Proc, at float64, pl des.Payload) {
	st := p.State().(*ctlState)
	switch pl.Kind {
	case kReady:
		m.runTask(p, st, pl.A)
	case kFinished:
		// Idempotence guard: under speculation a site can report one
		// task finished twice with *different* keys (a false early
		// finish plus its re-execution, before the anti-message
		// lands). Never in a committed history — but until the repair
		// rollback arrives a duplicate must not double-count, or a
		// child readies while a real parent is still unfinished.
		if st.finished[pl.A] != 0 {
			return
		}
		st.finished[pl.A] = 1
		site := SiteID(pl.B)
		for _, f := range m.outputs[pl.A] {
			st.present[site][f] = 1
		}
		st.done++
		if at > st.lastDone {
			st.lastDone = at
		}
		for _, c := range m.children[pl.A] {
			st.pending[c]--
			if st.pending[c] == 0 {
				m.runTask(p, st, c)
			}
		}
	case kJoin:
		key := pl.A*2 + pl.B
		m.advance(p, st)
		st.flows = append(st.flows, twFlow{key: key, original: m.fileBytes[pl.A], remaining: m.fileBytes[pl.A]})
		m.settle(p, st)
	case kWake:
		if pl.A != st.wakeEpoch {
			return // superseded wake (platform.Link cancels; we epoch)
		}
		m.advance(p, st)
		m.settle(p, st)
	default:
		panic(fmt.Sprintf("wfsched: ctl got unknown message kind %d", pl.Kind))
	}
}

// runTask mirrors Simulate's runTask closure: stage missing inputs,
// then submit to the placed site.
func (m *warpModel) runTask(p *des.Proc, st *ctlState, task int32) {
	site := m.placement[task]
	if site == Cloud && m.sc.CloudVMs == 0 {
		panic(fmt.Sprintf("wfsched: task %s placed on absent cloud", m.tasks[task].ID))
	}
	if site == Local && m.sc.LocalNodes == 0 {
		panic(fmt.Sprintf("wfsched: task %s placed on powered-off cluster", m.tasks[task].ID))
	}
	missing := int32(0)
	for _, f := range m.inputs[task] {
		if st.present[site][f] != 0 {
			continue
		}
		missing++
		key := f*2 + int32(site)
		if waiters, ok := st.inflight[key]; ok {
			st.inflight[key] = append(waiters, task)
			continue
		}
		st.inflight[key] = []int32{task}
		// platform.Link.Transfer: the flow joins after the latency.
		p.Send(m.ctl, m.sc.LinkLatency, des.Payload{Kind: kJoin, A: f, B: int32(site)})
	}
	st.missing[task] = missing
	if missing == 0 {
		m.submit(p, st, task)
	}
}

func (m *warpModel) submit(p *des.Proc, st *ctlState, task int32) {
	p.Send(m.siteLP[m.placement[task]], 0, des.Payload{Kind: kSubmit, A: task})
}

// advance and settle are platform.Link's fluid model verbatim, over
// ctl-owned state.
func (m *warpModel) advance(p *des.Proc, st *ctlState) {
	now := p.Now()
	if n := len(st.flows); n > 0 {
		rate := m.sc.LinkBandwidth / float64(n)
		dt := now - st.lastTouch
		for i := range st.flows {
			st.flows[i].remaining -= rate * dt
		}
	}
	st.lastTouch = now
}

const twFinishEps = 1e-6 // platform.Link's finishEps

func (m *warpModel) settle(p *des.Proc, st *ctlState) {
	st.wakeEpoch++ // supersede any outstanding wake (Link cancels it)
	var finished []twFlow
	for {
		n := len(st.flows)
		if n == 0 {
			break
		}
		rate := m.sc.LinkBandwidth / float64(n)
		thresh := math.Max(twFinishEps, rate*1e-6)
		kept := st.flows[:0]
		removed := false
		for _, f := range st.flows {
			if f.remaining <= thresh {
				finished = append(finished, f)
				removed = true
			} else {
				kept = append(kept, f)
			}
		}
		st.flows = kept
		if removed {
			continue // survivors' rate rose; re-evaluate thresholds
		}
		minRemaining := math.Inf(1)
		for _, f := range st.flows {
			if f.remaining < minRemaining {
				minRemaining = f.remaining
			}
		}
		p.Send(m.ctl, minRemaining/rate, des.Payload{Kind: kWake, A: st.wakeEpoch})
		break
	}
	for _, f := range finished {
		st.bytes += f.original
		st.transfers++
		// The transfer's done callback: the file is now present; wake
		// the tasks that were waiting on it.
		file, site := f.key/2, SiteID(f.key%2)
		st.present[site][file] = 1
		waiters := st.inflight[f.key]
		delete(st.inflight, f.key)
		for _, t := range waiters {
			if st.missing[t] == 0 {
				continue // false duplicate finish (see kFinished guard)
			}
			st.missing[t]--
			if st.missing[t] == 0 {
				m.submit(p, st, t)
			}
		}
	}
}

// siteHandler builds the handler for one site LP — platform.Site's
// submit/start/kill/repair/retry machinery over siteState.
func (m *warpModel) siteHandler(site SiteID) des.Handler {
	sp := m.params(site)
	return func(p *des.Proc, at float64, pl des.Payload) {
		st := p.State().(*siteState)
		switch pl.Kind {
		case kSubmit:
			if sp.slots == 0 {
				panic(fmt.Sprintf("platform: submit to powered-off site %q", sp.name))
			}
			q := twQueued{task: pl.A, ord: st.nextOrd}
			st.nextOrd++
			m.enqueue(p, st, sp, q)
		case kDone:
			duration := m.gflop[pl.A] / sp.speed
			st.meterJ += (sp.busy - sp.idle) * duration
			st.tasksRun++
			m.release(p, st, sp)
			p.Send(m.ctl, 0, des.Payload{Kind: kFinished, A: pl.A, B: int32(site)})
		case kKill:
			duration := m.gflop[pl.A] / sp.speed
			partial := pl.F * duration
			st.meterJ += (sp.busy - sp.idle) * partial
			st.wastedJ += sp.busy * partial
			repair := m.inj.RepairSec()
			st.downtime = append(st.downtime, twDown{start: at, dur: repair})
			p.Send(p.ID(), repair, des.Payload{Kind: kRepair})

			retry := m.inj.Retry()
			if retry.MaxAttempts > 0 && int(pl.C) >= retry.MaxAttempts {
				// Simulate panics here; under speculation the verdict
				// only stands if this event commits, so record it and
				// let simulateWarp panic after the run.
				if !st.exhausted {
					st.exhausted = true
					st.exhaustedOrd = pl.B
					st.exhaustedAttempt = pl.C
				}
				return
			}
			st.retries++
			st.retryNotes = append(st.retryNotes, twQueued{task: pl.A, ord: pl.B, attempt: pl.C})
			p.Send(p.ID(), retry.Backoff(int(pl.C)),
				des.Payload{Kind: kRetry, A: pl.A, B: pl.B, C: pl.C})
		case kRepair:
			m.release(p, st, sp)
		case kRetry:
			m.enqueue(p, st, sp, twQueued{task: pl.A, ord: pl.B, attempt: pl.C})
		default:
			panic(fmt.Sprintf("wfsched: site %q got unknown message kind %d", sp.name, pl.Kind))
		}
	}
}

func (m *warpModel) enqueue(p *des.Proc, st *siteState, sp siteParams, q twQueued) {
	if st.freeSlots > 0 {
		m.start(p, st, sp, q)
		return
	}
	st.queue = append(st.queue, q)
}

func (m *warpModel) release(p *des.Proc, st *siteState, sp siteParams) {
	st.freeSlots++
	if len(st.queue) > 0 {
		next := st.queue[0]
		st.queue = st.queue[1:]
		m.start(p, st, sp, next)
	}
}

func (m *warpModel) start(p *des.Proc, st *siteState, sp siteParams, q twQueued) {
	st.freeSlots--
	duration := m.gflop[q.task] / sp.speed
	attempt := q.attempt + 1
	if frac, fails := m.inj.HostFailureDecision(sp.name, int(q.ord), int(attempt)); fails {
		partial := frac * duration
		st.kills = append(st.kills, twKill{ord: q.ord, attempt: attempt, frac: frac})
		p.Send(p.ID(), partial, des.Payload{Kind: kKill, A: q.task, B: q.ord, C: attempt, F: frac})
		return
	}
	p.Send(p.ID(), duration, des.Payload{Kind: kDone, A: q.task})
}
