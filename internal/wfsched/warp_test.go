package wfsched

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/workflow"
)

// warpWorkerSweep is the worker grid every oracle below compares
// against the sequential kernel.
var warpWorkerSweep = []int{2, 4, 8}

// assertWarpMatches runs the scenario sequentially and on Time Warp
// at each worker count, asserting bit-identical Outcomes (Outcome is
// all floats and ints, so == is byte equality).
func assertWarpMatches(t *testing.T, name string, sc Scenario, place Placement) {
	t.Helper()
	sc.DESWorkers = 0
	want := Simulate(sc, place)
	for _, workers := range warpWorkerSweep {
		scw := sc
		scw.DESWorkers = workers
		got := Simulate(scw, place)
		if got != want {
			t.Errorf("%s workers=%d: Time Warp diverged from sequential\n got: %+v\nwant: %+v",
				name, workers, got, want)
		}
	}
}

// TestWarpMatchesTab1 pins byte-equality on the Tab 1 platform —
// cluster-only, across node counts and p-states.
func TestWarpMatchesTab1(t *testing.T) {
	base, pstates := Tab1Base()
	for _, nodes := range []int{1, 7, 64} {
		for _, psi := range []int{0, len(pstates) - 1} {
			sc := base
			sc.LocalNodes = nodes
			sc.PState = pstates[psi]
			assertWarpMatches(t, "tab1", sc, AllLocal)
		}
	}
}

// TestWarpMatchesTab2 pins byte-equality on the Tab 2 platform —
// local+cloud with link staging — across placements.
func TestWarpMatchesTab2(t *testing.T) {
	sc := Tab2Scenario()
	w := sc.Workflow
	places := map[string]Placement{
		"all-local": AllLocal,
		"all-cloud": AllCloud,
		"half":      LevelFractions(w, []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}),
		"mixed":     LevelFractions(w, []float64{1, 0.25, 0, 0.75, 0.5, 1, 0, 0.25, 1}),
	}
	for name, place := range places {
		assertWarpMatches(t, "tab2/"+name, sc, place)
	}
}

// TestWarpMatchesWithFaults pins byte-equality under injected host
// failures — kills, repairs, backoff retries, wasted energy — and
// checks the fired-fault schedule (counters) matches too.
func TestWarpMatchesWithFaults(t *testing.T) {
	for _, tc := range []struct {
		name  string
		plan  string
		setup func() (Scenario, Placement)
	}{
		{"tab1-hostfail", "seed=7,hostfail=0.15,repair=4", func() (Scenario, Placement) {
			base, ps := Tab1Base()
			base.LocalNodes = 16
			base.PState = ps[len(ps)-1]
			return base, AllLocal
		}},
		{"tab2-hostfail", "seed=11,hostfail=0.1,repair=6,retrybase=2", func() (Scenario, Placement) {
			sc := Tab2Scenario()
			return sc, LevelFractions(sc.Workflow, []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := fault.Parse(tc.plan)
			if err != nil {
				t.Fatal(err)
			}
			sc, place := tc.setup()
			sc.Faults = plan

			faultCounters := func(sc Scenario) (Outcome, map[string]int64) {
				reg := obs.NewRegistry()
				sc.Obs = obs.Sink{Metrics: reg}
				out := Simulate(sc, place)
				return out, map[string]int64{
					"injected": reg.Counter("fault.injected").Value(),
					"hostfail": reg.Counter("fault.host.failures").Value(),
					"retries":  reg.Counter("fault.task.retries").Value(),
				}
			}
			sc.DESWorkers = 0
			want, wantFaults := faultCounters(sc)
			if want.Retries == 0 {
				t.Fatal("fault plan injected nothing; oracle has no teeth")
			}
			for _, workers := range warpWorkerSweep {
				scw := sc
				scw.DESWorkers = workers
				got, gotFaults := faultCounters(scw)
				if got != want {
					t.Errorf("workers=%d: outcome diverged under faults\n got: %+v\nwant: %+v", workers, got, want)
				}
				for k, v := range wantFaults {
					if gotFaults[k] != v {
						t.Errorf("workers=%d: fault counter %s = %d, want %d", workers, k, gotFaults[k], v)
					}
				}
			}
		})
	}
}

// TestWarpMatchesRandomized is the wfsched half of the randomized
// cross-kernel oracle: random workflow shapes, platforms, placements,
// and fault plans, each required byte-identical across the worker
// sweep.
func TestWarpMatchesRandomized(t *testing.T) {
	rng := uint64(0x5EED)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	for trial := 0; trial < 6; trial++ {
		w := workflow.Montage(workflow.MontageParams{
			Projections: 8 + int(next(40)),
			TargetBytes: 1e9 + float64(next(8))*1e9,
			FlopScale:   0.5 + float64(next(4))*0.5,
		})
		ps := platform.DefaultPStates()
		sc := Scenario{
			Workflow:      w,
			LocalNodes:    1 + int(next(24)),
			PState:        ps[next(uint64(len(ps)))],
			CloudVMs:      int(next(20)), // 0 = no cloud
			VMSpeed:       4 + float64(next(8)),
			VMBusyPower:   120 + float64(next(80)),
			VMIdlePower:   5 + float64(next(20)),
			LinkBandwidth: 10e6 + float64(next(40))*1e6,
			LinkLatency:   float64(next(100)) / 1000,
		}
		var place Placement
		if sc.CloudVMs == 0 {
			place = AllLocal
		} else {
			fr := make([]float64, len(w.Levels))
			for i := range fr {
				fr[i] = float64(next(5)) / 4
			}
			place = LevelFractions(w, fr)
		}
		if next(2) == 0 {
			sc.Faults = &fault.Plan{
				Seed:      int64(next(1 << 30)),
				HostFail:  float64(next(20)) / 100,
				RepairSec: 1 + float64(next(10)),
			}
		}
		assertWarpMatches(t, "randomized", sc, place)
	}
}
