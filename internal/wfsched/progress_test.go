package wfsched

import (
	"testing"

	"repro/internal/obs"
)

// Probe that the exhaustive sweep publishes its fraction progress.
func TestSweepPublishesProgress(t *testing.T) {
	pr := obs.NewProgress(nil)
	sc := Tab2Scenario()
	sc.Obs = obs.Sink{Progress: pr}
	choices := [][]float64{{0, 0.5, 1}, {0, 1}, {0, 1}}
	if res := EvaluateFractions(sc, choices); len(res) != 12 {
		t.Fatalf("got %d results, want 12", len(res))
	}
	snap := pr.Snapshot()
	st, ok := snap["wfsched"]
	if !ok {
		t.Fatalf("no wfsched stage in %v", snap)
	}
	if st.Fields["sweep_fraction"] != 1 {
		t.Fatalf("sweep_fraction = %v, want 1", st.Fields["sweep_fraction"])
	}
	if st.Fields["evaluated"] != st.Fields["total"] || st.Fields["total"] == 0 {
		t.Fatalf("evaluated=%v total=%v", st.Fields["evaluated"], st.Fields["total"])
	}
}
