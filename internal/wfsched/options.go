package wfsched

// options.go gives Scenario the functional-options constructor idiom
// the other substrates use (sched.New, ghost.New, hetero.New), so a
// job submission decoded from the wire maps field-for-field onto
// option calls. Scenario literals keep working; NewScenario and
// Scenario.With are the preferred spellings.

import (
	"repro/internal/carbon"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/workflow"
)

// ScenarioOption mutates a Scenario under construction.
type ScenarioOption func(*Scenario)

// NewScenario assembles a Scenario for a workflow from options.
// Defaults match a zero Scenario literal — intensity defaults are
// applied at simulation time, not here.
func NewScenario(w *workflow.Workflow, opts ...ScenarioOption) Scenario {
	sc := Scenario{Workflow: w}
	for _, o := range opts {
		o(&sc)
	}
	return sc
}

// With returns a copy of sc with the options applied — the spelling
// for deriving a variant from a canonical template such as
// Tab2Scenario().
func (sc Scenario) With(opts ...ScenarioOption) Scenario {
	for _, o := range opts {
		o(&sc)
	}
	return sc
}

// WithLocalNodes sets the number of powered-on cluster nodes.
func WithLocalNodes(n int) ScenarioOption {
	return func(sc *Scenario) { sc.LocalNodes = n }
}

// WithPState sets the uniform p-state of the powered-on nodes.
func WithPState(ps platform.PState) ScenarioOption {
	return func(sc *Scenario) { sc.PState = ps }
}

// WithLocalIntensity sets the cluster power source's carbon intensity.
func WithLocalIntensity(i carbon.Intensity) ScenarioOption {
	return func(sc *Scenario) { sc.LocalIntensity = i }
}

// WithCloudVMs provisions n cloud VM instances at speed Gflop/s each.
func WithCloudVMs(n int, speed float64) ScenarioOption {
	return func(sc *Scenario) {
		sc.CloudVMs = n
		sc.VMSpeed = speed
	}
}

// WithVMPower sets the cloud-side busy/idle draw in watts.
func WithVMPower(busy, idle float64) ScenarioOption {
	return func(sc *Scenario) {
		sc.VMBusyPower = busy
		sc.VMIdlePower = idle
	}
}

// WithCloudIntensity sets the cloud source's carbon intensity.
func WithCloudIntensity(i carbon.Intensity) ScenarioOption {
	return func(sc *Scenario) { sc.CloudIntensity = i }
}

// WithLink describes the cluster<->cloud connection: bandwidth in
// bytes/s and latency in seconds.
func WithLink(bandwidth, latency float64) ScenarioOption {
	return func(sc *Scenario) {
		sc.LinkBandwidth = bandwidth
		sc.LinkLatency = latency
	}
}

// WithObs attaches the observability layer.
func WithObs(sink obs.Sink) ScenarioOption {
	return func(sc *Scenario) { sc.Obs = sink }
}

// WithFaults enables deterministic host-failure injection.
func WithFaults(plan *fault.Plan) ScenarioOption {
	return func(sc *Scenario) { sc.Faults = plan }
}

// WithDESWorkers selects the DES execution mode: n > 1 runs the
// simulation on the optimistic Time Warp kernel with n workers; 0 or
// 1 keeps the sequential fast path. Outcomes are byte-identical
// either way.
func WithDESWorkers(n int) ScenarioOption {
	return func(sc *Scenario) { sc.DESWorkers = n }
}
