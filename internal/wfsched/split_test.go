package wfsched

import (
	"math"
	"testing"

	"repro/internal/platform"
	"repro/internal/workflow"
)

func splitBase() Scenario {
	base, _ := Tab1Base()
	base.Workflow = workflow.Montage(workflow.MontageParams{Projections: 30})
	return base
}

func TestSplitWithEmptyBMatchesHomogeneous(t *testing.T) {
	base := splitBase()
	ps := platform.DefaultPStates()
	for _, cfg := range []ClusterConfig{{8, 6}, {16, 3}, {4, 0}} {
		uniform := SimulateCluster(base, ps, cfg)
		split := SimulateSplitCluster(base, ps, SplitConfig{A: cfg})
		if math.Abs(uniform.Makespan-split.Makespan) > 1e-9 {
			t.Fatalf("%v: makespan %.3f vs %.3f", cfg, uniform.Makespan, split.Makespan)
		}
		if math.Abs(uniform.CO2-split.CO2) > 1e-6 {
			t.Fatalf("%v: CO2 %.4f vs %.4f", cfg, uniform.CO2, split.CO2)
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	base := splitBase()
	ps := platform.DefaultPStates()
	cfg := SplitConfig{A: ClusterConfig{8, 6}, B: ClusterConfig{8, 2}}
	a := SimulateSplitCluster(base, ps, cfg)
	b := SimulateSplitCluster(base, ps, cfg)
	if a != b {
		t.Fatalf("split simulation not deterministic: %v vs %v", a, b)
	}
}

func TestSplitFasterGroupPreferred(t *testing.T) {
	// One fast node + many slow nodes must beat many slow nodes alone
	// on makespan: the serial levels ride the fast node.
	base := splitBase()
	ps := platform.DefaultPStates()
	slowOnly := SimulateSplitCluster(base, ps, SplitConfig{A: ClusterConfig{16, 0}})
	mixed := SimulateSplitCluster(base, ps, SplitConfig{A: ClusterConfig{16, 0}, B: ClusterConfig{1, 6}})
	if mixed.Makespan >= slowOnly.Makespan {
		t.Fatalf("adding a fast node did not help: %.1f vs %.1f", mixed.Makespan, slowOnly.Makespan)
	}
}

func TestSplitRespectsWorkBound(t *testing.T) {
	base := splitBase()
	ps := platform.DefaultPStates()
	cfg := SplitConfig{A: ClusterConfig{8, 6}, B: ClusterConfig{8, 0}}
	out := SimulateSplitCluster(base, ps, cfg)
	capacity := 8*ps[6].Speed + 8*ps[0].Speed
	if bound := base.Workflow.TotalGflop() / capacity; out.Makespan < bound-1e-9 {
		t.Fatalf("makespan %.2f below work bound %.2f", out.Makespan, bound)
	}
	if out.CO2 <= 0 || out.TasksLocal != base.Workflow.NumTasks() {
		t.Fatalf("accounting broken: %+v", out)
	}
}

func TestSplitPanicsWithoutGroupA(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty group A accepted")
		}
	}()
	SimulateSplitCluster(splitBase(), platform.DefaultPStates(), SplitConfig{})
}

func TestHeterogeneousAblationNeverWorse(t *testing.T) {
	base := splitBase()
	res, err := HeterogeneousAblation(base, 24, 150)
	if err != nil {
		t.Fatal(err)
	}
	if res.SplitOutcome.CO2 > res.HomogeneousOutcome.CO2+1e-9 {
		t.Fatalf("split optimum (%.2fg) worse than homogeneous (%.2fg); the split space contains homogeneous",
			res.SplitOutcome.CO2, res.HomogeneousOutcome.CO2)
	}
	if res.SplitOutcome.Makespan > 150 || res.HomogeneousOutcome.Makespan > 150 {
		t.Fatal("ablation returned bound-violating configs")
	}
	if res.Split.String() == "" || res.Homogeneous.String() == "" {
		t.Fatal("empty config strings")
	}
}

func TestHeterogeneousAblationInfeasibleBound(t *testing.T) {
	if _, err := HeterogeneousAblation(splitBase(), 8, 0.001); err == nil {
		t.Fatal("impossible bound accepted")
	}
}

func TestSplitConfigString(t *testing.T) {
	s := SplitConfig{A: ClusterConfig{8, 6}, B: ClusterConfig{4, 1}}
	if s.String() != "8 nodes @ p6 + 4 nodes @ p1" {
		t.Fatalf("String = %q", s.String())
	}
	homog := SplitConfig{A: ClusterConfig{8, 6}}
	if homog.String() != "8 nodes @ p6" {
		t.Fatalf("homogeneous String = %q", homog.String())
	}
}
