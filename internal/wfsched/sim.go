// Package wfsched binds the workflow DAG to the platform model and
// implements the scheduling/placement policies of the carbon-footprint
// assignment: Tab 1's cluster sizing and p-state selection (including
// the binary searches and the boss heuristic that combines powering
// off with downclocking) and Tab 2's local-vs-cloud task placement
// with per-level cloud fractions, data locality, and the exhaustive
// CO2 optimizer the paper lists as future work.
package wfsched

import (
	"context"
	"fmt"
	"math"

	"repro/internal/carbon"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/workflow"
)

// SiteID distinguishes the two execution sites.
type SiteID int

const (
	// Local is the organization's own cluster (non-green power).
	Local SiteID = iota
	// Cloud is the remote green cloud.
	Cloud
)

func (s SiteID) String() string {
	if s == Local {
		return "local"
	}
	return "cloud"
}

// Scenario describes the platform a workflow runs on.
type Scenario struct {
	Workflow *workflow.Workflow

	// LocalNodes is the number of powered-on cluster nodes (the rest
	// are off and draw nothing).
	LocalNodes int
	// PState is the (uniform) p-state of the powered-on nodes, per
	// the assignment's homogeneity assumption.
	PState platform.PState
	// LocalIntensity is the cluster power source's carbon intensity.
	// Zero means the paper's 291 gCO2e/kWh.
	LocalIntensity carbon.Intensity

	// CloudVMs is the number of cloud VM instances (0 = no cloud).
	CloudVMs int
	// VMSpeed is the per-VM speed in Gflop/s.
	VMSpeed float64
	// VMBusyPower/VMIdlePower model the cloud-side draw (charged at
	// the green intensity).
	VMBusyPower, VMIdlePower float64
	// CloudIntensity is the cloud source's intensity; zero means the
	// green default.
	CloudIntensity carbon.Intensity

	// LinkBandwidth (bytes/s) and LinkLatency (s) describe the
	// cluster<->cloud connection.
	LinkBandwidth, LinkLatency float64

	// Obs attaches the observability layer: per-slot task spans in
	// simulated time on the "site:*" tracks, des.events/platform.tasks
	// counters, and wfsched.* energy/CO2 gauges. The zero Sink
	// disables it.
	Obs obs.Sink

	// Faults enables deterministic host-failure injection: task
	// attempts are killed mid-run per the plan's HostFail rate,
	// realized as DES events; the failed slot repairs for RepairSec
	// while the task retries under the plan's backoff policy. Wasted
	// energy is reported separately in the Outcome. nil disables.
	Faults *fault.Plan

	// DESWorkers selects the DES execution mode: values > 1 run the
	// simulation on the optimistic Time Warp kernel (des.Warp) with
	// that many workers — outcomes stay byte-identical to the
	// sequential kernel. 0 or 1 is the sequential fast path. The
	// Placement must be a pure function of the task (every Placement
	// in this package is) — Time Warp may evaluate it on speculative
	// paths.
	DESWorkers int
}

func (sc Scenario) withDefaults() Scenario {
	if sc.LocalIntensity == 0 {
		sc.LocalIntensity = carbon.LocalGrid
	}
	if sc.CloudIntensity == 0 {
		sc.CloudIntensity = carbon.GreenCloud
	}
	return sc
}

// Placement decides, per task, whether it runs on the cloud.
type Placement func(t *workflow.Task) SiteID

// AllLocal places every task on the cluster.
func AllLocal(*workflow.Task) SiteID { return Local }

// AllCloud places every task on the cloud.
func AllCloud(*workflow.Task) SiteID { return Cloud }

// LevelFractions places the first fraction[L] share of each level L's
// tasks (in deterministic ID order) on the cloud — the knob the
// assignment's Tab 2 simulator exposes. Levels beyond the slice run
// locally.
func LevelFractions(w *workflow.Workflow, fractions []float64) Placement {
	cloudSet := make(map[*workflow.Task]bool)
	for li, level := range w.Levels {
		if li >= len(fractions) {
			break
		}
		f := fractions[li]
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		n := int(math.Round(f * float64(len(level))))
		for i := 0; i < n; i++ {
			cloudSet[level[i]] = true
		}
	}
	return func(t *workflow.Task) SiteID {
		if cloudSet[t] {
			return Cloud
		}
		return Local
	}
}

// Outcome reports one simulated execution.
type Outcome struct {
	// Makespan is the workflow execution time in seconds.
	Makespan float64
	// EnergyLocalKWh and EnergyCloudKWh are the energy drawn by each
	// site over the makespan (busy + idle).
	EnergyLocalKWh, EnergyCloudKWh float64
	// CO2Local, CO2Cloud, and CO2 are emissions in gCO2e.
	CO2Local, CO2Cloud, CO2 float64
	// TasksLocal and TasksCloud count task placements.
	TasksLocal, TasksCloud int
	// BytesTransferred and Transfers describe link usage.
	BytesTransferred float64
	Transfers        int
	// Retries counts task re-executions caused by injected host
	// failures; EnergyWastedKWh is the energy their killed attempts
	// drew. Wasted energy is part of the Energy*KWh totals (it was
	// really consumed) — this field breaks it out.
	Retries         int
	EnergyWastedKWh float64
}

func (o Outcome) String() string {
	s := fmt.Sprintf("time=%.1fs energy=%.3f+%.3fkWh co2=%.1fg (local %.1f + cloud %.1f) tasks=%d/%d xfer=%.2fGB",
		o.Makespan, o.EnergyLocalKWh, o.EnergyCloudKWh, o.CO2, o.CO2Local, o.CO2Cloud,
		o.TasksLocal, o.TasksCloud, o.BytesTransferred/1e9)
	if o.Retries > 0 {
		s += fmt.Sprintf(" retries=%d wasted=%.4fkWh", o.Retries, o.EnergyWastedKWh)
	}
	return s
}

// Simulate executes the scenario's workflow under the placement and
// returns the outcome. The execution model: a task becomes ready when
// all parents finish; a ready task's missing input files are staged
// to its site over the link (concurrently, fair-shared); it then
// occupies one slot until its compute finishes; outputs materialize
// at its site. Workflow input files start on local storage.
func Simulate(sc Scenario, place Placement) Outcome {
	out, err := SimulateContext(context.Background(), sc, place)
	if err != nil {
		// Unreachable: only cancellation produces an error, and the
		// background context cannot be cancelled.
		panic(err)
	}
	return out
}

// SimulateContext is Simulate with cancellation: the event loop stops
// promptly once ctx is cancelled and the (partial, unfinalized)
// outcome is returned alongside ctx.Err().
func SimulateContext(ctx context.Context, sc Scenario, place Placement) (Outcome, error) {
	sc = sc.withDefaults()
	w := sc.Workflow
	if w == nil {
		panic("wfsched: nil workflow")
	}
	if sc.LocalNodes <= 0 && sc.CloudVMs <= 0 {
		panic("wfsched: no compute anywhere")
	}
	if sc.DESWorkers > 1 {
		return simulateWarp(ctx, sc, place)
	}

	sim := &des.Simulation{}
	meter := carbon.NewMeter()
	sim.Observe(sc.Obs)
	inj := fault.NewInjector(sc.Faults, sc.Obs)

	local := platform.NewSite(sim, meter, "local", sc.LocalNodes,
		sc.PState.Speed, sc.PState.BusyPower, sc.PState.IdlePower, sc.LocalIntensity)
	local.Observe(sc.Obs)
	local.SetFaults(inj)
	var cloud *platform.Site
	var link *platform.Link
	if sc.CloudVMs > 0 {
		cloud = platform.NewSite(sim, meter, "cloud", sc.CloudVMs,
			sc.VMSpeed, sc.VMBusyPower, sc.VMIdlePower, sc.CloudIntensity)
		cloud.Observe(sc.Obs)
		cloud.SetFaults(inj)
		link = platform.NewLink(sim, sc.LinkBandwidth, sc.LinkLatency)
	}

	// File presence per site, plus in-flight transfer deduplication.
	present := map[SiteID]map[*workflow.File]bool{Local: {}, Cloud: {}}
	for _, f := range w.Files {
		if f.Producer == nil {
			present[Local][f] = true // inputs staged on local storage
		}
	}
	type xferKey struct {
		file *workflow.File
		to   SiteID
	}
	inflight := map[xferKey][]func(){}

	var out Outcome
	pendingParents := make(map[*workflow.Task]int, len(w.Tasks))
	done := 0
	// The makespan is the last task completion, NOT the last DES
	// event: trailing slot repairs after the final task must not
	// inflate it.
	lastDone := 0.0

	var runTask func(t *workflow.Task)
	taskFinished := func(t *workflow.Task) {
		done++
		if now := sim.Now(); now > lastDone {
			lastDone = now
		}
		for _, c := range t.Children {
			pendingParents[c]--
			if pendingParents[c] == 0 {
				runTask(c)
			}
		}
	}

	runTask = func(t *workflow.Task) {
		site := place(t)
		if site == Cloud && cloud == nil {
			panic(fmt.Sprintf("wfsched: task %s placed on absent cloud", t.ID))
		}
		if site == Local && sc.LocalNodes == 0 {
			panic(fmt.Sprintf("wfsched: task %s placed on powered-off cluster", t.ID))
		}
		// Stage missing inputs, then submit.
		missing := 0
		submit := func() {
			target := local
			if site == Cloud {
				target = cloud
			}
			target.Submit(t.Gflop, func() {
				for _, f := range t.Outputs {
					present[site][f] = true
				}
				taskFinished(t)
			})
		}
		onStaged := func() {
			missing--
			if missing == 0 {
				submit()
			}
		}
		for _, f := range t.Inputs {
			if present[site][f] {
				continue
			}
			missing++
			key := xferKey{f, site}
			if waiters, ok := inflight[key]; ok {
				inflight[key] = append(waiters, onStaged)
				continue
			}
			inflight[key] = []func(){onStaged}
			f := f
			site := site
			link.Transfer(f.Bytes, func() {
				present[site][f] = true
				out.BytesTransferred += f.Bytes
				out.Transfers++
				waiters := inflight[xferKey{f, site}]
				delete(inflight, xferKey{f, site})
				for _, w := range waiters {
					w()
				}
			})
		}
		if missing == 0 {
			submit()
		}
	}

	// Seed: count parents, launch the roots.
	for _, t := range w.Tasks {
		pendingParents[t] = len(t.Parents)
		if place(t) == Cloud {
			out.TasksCloud++
		} else {
			out.TasksLocal++
		}
	}
	for _, t := range w.Tasks {
		if pendingParents[t] == 0 {
			t := t
			sim.Schedule(0, func() { runTask(t) })
		}
	}

	if err := sim.RunContext(ctx); err != nil {
		return out, err
	}
	if done != len(w.Tasks) {
		panic(fmt.Sprintf("wfsched: deadlock: %d of %d tasks completed", done, len(w.Tasks)))
	}
	out.Makespan = lastDone

	wastedJ := 0.0
	local.FinalizeIdle(out.Makespan)
	out.EnergyLocalKWh = meter.EnergyKWh("local")
	out.CO2Local = meter.SourceEmissions("local")
	out.Retries = local.Retries()
	wastedJ = local.WastedJoules()
	if cloud != nil {
		cloud.FinalizeIdle(out.Makespan)
		out.EnergyCloudKWh = meter.EnergyKWh("cloud")
		out.CO2Cloud = meter.SourceEmissions("cloud")
		out.Retries += cloud.Retries()
		wastedJ += cloud.WastedJoules()
	}
	out.EnergyWastedKWh = wastedJ / 3.6e6
	out.CO2 = out.CO2Local + out.CO2Cloud
	if m := sc.Obs.Metrics; m != nil {
		m.Gauge("wfsched.makespan_s").Set(out.Makespan)
		m.Gauge("wfsched.energy.local_kwh").Set(out.EnergyLocalKWh)
		m.Gauge("wfsched.energy.cloud_kwh").Set(out.EnergyCloudKWh)
		m.Gauge("wfsched.co2.total_g").Set(out.CO2)
		m.Counter("wfsched.tasks.local").Add(int64(out.TasksLocal))
		m.Counter("wfsched.tasks.cloud").Add(int64(out.TasksCloud))
		m.Counter("wfsched.transfers").Add(int64(out.Transfers))
		m.Counter("wfsched.retries").Add(int64(out.Retries))
		m.Gauge("fault.energy.wasted_kwh").Set(out.EnergyWastedKWh)
	}
	return out, nil
}
