package wfsched

import (
	"math"
	"testing"

	"repro/internal/workflow"
)

func TestMinNodesBinarySearchMatchesLinearScan(t *testing.T) {
	base, ps := Tab1Base()
	base.Workflow = workflow.Montage(workflow.MontageParams{Projections: 40})
	const bound = 120.0
	cfg, out, ok := MinNodesUnderBound(base, ps, 6, 32, bound)
	if !ok {
		t.Fatal("no feasible node count found")
	}
	if out.Makespan > bound {
		t.Fatalf("returned config misses bound: %v", out)
	}
	// Linear verification: cfg.Nodes is feasible, cfg.Nodes-1 is not.
	if cfg.Nodes > 1 {
		below := SimulateCluster(base, ps, ClusterConfig{cfg.Nodes - 1, 6})
		if below.Makespan <= bound {
			t.Fatalf("%d nodes already meets the bound (%.1fs); binary search overshot", cfg.Nodes-1, below.Makespan)
		}
	}
}

func TestMinNodesInfeasibleBound(t *testing.T) {
	base, ps := Tab1Base()
	base.Workflow = workflow.Montage(workflow.MontageParams{Projections: 40})
	_, _, ok := MinNodesUnderBound(base, ps, 6, 32, 1.0) // 1 second: impossible
	if ok {
		t.Fatal("impossible bound reported feasible")
	}
}

func TestMinPStateBinarySearchMatchesLinearScan(t *testing.T) {
	base, ps := Tab1Base()
	base.Workflow = workflow.Montage(workflow.MontageParams{Projections: 40})
	const bound = 90.0
	cfg, out, ok := MinPStateUnderBound(base, ps, 32, bound)
	if !ok {
		t.Fatal("no feasible p-state found")
	}
	if out.Makespan > bound {
		t.Fatalf("returned config misses bound: %v", out)
	}
	if cfg.PState > 0 {
		below := SimulateCluster(base, ps, ClusterConfig{32, cfg.PState - 1})
		if below.Makespan <= bound {
			t.Fatalf("p%d already meets the bound; binary search overshot", cfg.PState-1)
		}
	}
}

// TestTab1PaperShape is experiments E14-E16: the full Tab 1 story on
// the paper's platform (Montage-738, 64 nodes, 180 s bound).
func TestTab1PaperShape(t *testing.T) {
	base, ps := Tab1Base()

	// Q1: the high-performance baseline parallelizes well but far
	// from perfectly (Montage has serial bottleneck levels).
	t1 := SimulateCluster(base, ps, ClusterConfig{1, 6})
	t64 := SimulateCluster(base, ps, ClusterConfig{64, 6})
	speedup := t1.Makespan / t64.Makespan
	if speedup < 10 || speedup > 60 {
		t.Fatalf("64-node speedup %.1f implausible for Montage", speedup)
	}
	if t64.Makespan > Tab1BoundSec {
		t.Fatalf("baseline %.1fs misses the 3-minute bound; platform miscalibrated", t64.Makespan)
	}

	// Q2: both pure options are feasible.
	offCfg, offOut, ok1 := MinNodesUnderBound(base, ps, 6, Tab1MaxNodes, Tab1BoundSec)
	if !ok1 {
		t.Fatal("power-off option infeasible")
	}
	downCfg, downOut, ok2 := MinPStateUnderBound(base, ps, Tab1MaxNodes, Tab1BoundSec)
	if !ok2 {
		t.Fatal("downclock option infeasible")
	}
	if offCfg.Nodes >= Tab1MaxNodes {
		t.Fatalf("power-off option did not power anything off: %v", offCfg)
	}
	if downCfg.PState >= len(ps)-1 {
		t.Fatalf("downclock option did not downclock: %v", downCfg)
	}
	// Powering off unused nodes always helps (less idle draw). The
	// downclocking option need not beat the baseline — with all 64
	// nodes powered on, the longer makespan can cost more idle energy
	// than the lower clock saves, which is exactly the comparison the
	// assignment asks students to report on.
	if offOut.CO2 >= t64.CO2 {
		t.Fatalf("powering off did not reduce CO2: baseline %.1f, off %.1f", t64.CO2, offOut.CO2)
	}
	t.Logf("Q2: off=%v %.1fg, down=%v %.1fg, baseline %.1fg",
		offCfg, offOut.CO2, downCfg, downOut.CO2, t64.CO2)

	// Q3: the boss heuristic beats both pure options — the paper:
	// "it leads to lower CO2 emission than both previously evaluated
	// options".
	bossCfg, bossOut, ok3 := BossHeuristic(base, ps, Tab1MaxNodes, Tab1BoundSec)
	if !ok3 {
		t.Fatal("boss heuristic found nothing")
	}
	if bossOut.Makespan > Tab1BoundSec {
		t.Fatalf("boss config misses bound: %v", bossOut)
	}
	if bossOut.CO2 > offOut.CO2 || bossOut.CO2 > downOut.CO2 {
		t.Fatalf("boss heuristic (%.1fg, %v) worse than a pure option (off %.1fg, down %.1fg)",
			bossOut.CO2, bossCfg, offOut.CO2, downOut.CO2)
	}
	// It must genuinely combine the techniques.
	if bossCfg.Nodes >= Tab1MaxNodes || bossCfg.PState >= len(ps)-1 {
		t.Fatalf("boss config %v uses only one knob", bossCfg)
	}
}

func TestExhaustiveClusterIsLowerBoundForHeuristics(t *testing.T) {
	base, ps := Tab1Base()
	base.Workflow = workflow.Montage(workflow.MontageParams{Projections: 40})
	const bound = 100.0
	_, bossOut, ok := BossHeuristic(base, ps, 24, bound)
	if !ok {
		t.Skip("bound infeasible on reduced workflow")
	}
	_, exOut, ok2 := ExhaustiveCluster(base, ps, 24, bound)
	if !ok2 {
		t.Fatal("exhaustive found nothing but heuristic did")
	}
	if exOut.CO2 > bossOut.CO2+1e-9 {
		t.Fatalf("exhaustive (%.2fg) worse than heuristic (%.2fg)", exOut.CO2, bossOut.CO2)
	}
	if exOut.Makespan > bound {
		t.Fatal("exhaustive returned infeasible config")
	}
}

// TestTab2PaperShape is experiments E17-E19: baselines and the
// treasure-hunt landscape on the reduced workflow (fast), asserting
// the qualitative orderings the assignment teaches.
func TestTab2PaperShape(t *testing.T) {
	sc := smallScenario()
	allLocal := Simulate(sc, AllLocal)
	allCloud := Simulate(sc, AllCloud)

	// The cloud is greener despite moving data.
	if allCloud.CO2 >= allLocal.CO2 {
		t.Fatalf("all-cloud (%.1fg) not cleaner than all-local (%.1fg)", allCloud.CO2, allLocal.CO2)
	}
	// Greedy mixed placement beats all-local (its starting point).
	gr, sims := GreedyFractions(sc, Tab2Choices(sc.Workflow))
	if gr.Outcome.CO2 > allLocal.CO2 {
		t.Fatalf("greedy (%.1fg) worse than its all-local start (%.1fg)", gr.Outcome.CO2, allLocal.CO2)
	}
	if sims < 2 {
		t.Fatalf("greedy did not explore: %d sims", sims)
	}
	// The exhaustive optimum beats every baseline and the greedy
	// climber (it is a global minimum over a superset of options).
	best := ExhaustiveFractions(sc, Tab2Choices(sc.Workflow))
	for name, co2 := range map[string]float64{
		"all-local": allLocal.CO2, "all-cloud": allCloud.CO2, "greedy": gr.Outcome.CO2,
	} {
		if best.Outcome.CO2 > co2+1e-9 {
			t.Fatalf("exhaustive optimum (%.2fg) worse than %s (%.2fg)", best.Outcome.CO2, name, co2)
		}
	}
	// The optimum is a genuine mix: it uses both sites.
	if best.Outcome.TasksLocal == 0 || best.Outcome.TasksCloud == 0 {
		t.Logf("note: optimum is a pure placement: %+v", best.Outcome)
	}
}

func TestSweepLevelFraction(t *testing.T) {
	sc := smallScenario()
	res := SweepLevelFraction(sc, 0, []float64{0, 0.5, 1})
	if len(res) != 3 {
		t.Fatalf("results = %d, want 3", len(res))
	}
	if res[0].Outcome.TasksCloud != 0 {
		t.Fatalf("fraction 0 placed %d tasks on cloud", res[0].Outcome.TasksCloud)
	}
	if res[2].Outcome.TasksCloud != len(sc.Workflow.Levels[0]) {
		t.Fatalf("fraction 1 placed %d tasks on cloud, want the whole level", res[2].Outcome.TasksCloud)
	}
	if res[1].Fractions[0] != 0.5 {
		t.Fatalf("fraction vector wrong: %v", res[1].Fractions)
	}
}

func TestExhaustiveFractionsDeterministic(t *testing.T) {
	sc := smallScenario()
	choices := [][]float64{{0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}}
	a := ExhaustiveFractions(sc, choices)
	b := ExhaustiveFractions(sc, choices)
	if a.Outcome != b.Outcome {
		t.Fatalf("exhaustive not deterministic: %v vs %v", a.Outcome, b.Outcome)
	}
	for i := range a.Fractions {
		if a.Fractions[i] != b.Fractions[i] {
			t.Fatalf("fraction vectors differ: %v vs %v", a.Fractions, b.Fractions)
		}
	}
}

func TestExhaustiveFractionsPanicsOnEmptyChoices(t *testing.T) {
	sc := smallScenario()
	defer func() {
		if recover() == nil {
			t.Fatal("empty choices accepted")
		}
	}()
	ExhaustiveFractions(sc, [][]float64{{}})
}

func TestClusterConfigString(t *testing.T) {
	if s := (ClusterConfig{12, 3}).String(); s != "12 nodes @ p3" {
		t.Fatalf("String = %q", s)
	}
}

func TestTab2ChoicesShape(t *testing.T) {
	sc := smallScenario()
	choices := Tab2Choices(sc.Workflow)
	if len(choices) != len(sc.Workflow.Levels) {
		t.Fatalf("choices = %d levels, want %d", len(choices), len(sc.Workflow.Levels))
	}
	for l, c := range choices {
		if len(sc.Workflow.Levels[l]) > 1 && len(c) != 5 {
			t.Fatalf("wide level %d has %d choices, want 5", l, len(c))
		}
		if len(sc.Workflow.Levels[l]) == 1 && len(c) != 2 {
			t.Fatalf("single-task level %d has %d choices, want 2", l, len(c))
		}
	}
}

func TestBoundEdgeCases(t *testing.T) {
	base, ps := Tab1Base()
	base.Workflow = workflow.Montage(workflow.MontageParams{Projections: 10})
	// A huge bound: one node at the lowest p-state suffices and the
	// searches return the very cheapest configurations.
	cfg, _, ok := MinNodesUnderBound(base, ps, 6, 16, math.Inf(1))
	if !ok || cfg.Nodes != 1 {
		t.Fatalf("infinite bound should yield 1 node, got %v ok=%v", cfg, ok)
	}
	cfgP, _, okP := MinPStateUnderBound(base, ps, 16, math.Inf(1))
	if !okP || cfgP.PState != 0 {
		t.Fatalf("infinite bound should yield p0, got %v ok=%v", cfgP, okP)
	}
}
