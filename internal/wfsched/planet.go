package wfsched

// planet.go is the planet-scale stress scenario for the Time Warp
// kernel: a synthetic planetary grid of compute clusters running one
// enormous layered workflow. Unlike the Montage scenarios — whose
// single controller LP serializes most events — every cluster here is
// its own logical process, talking to the others only through
// positive-latency completion credits, so the event population spreads
// across as many LPs as the config asks for and the optimistic kernel
// has real parallelism to mine. Millions of tasks and hosts are just
// numbers in the config; per-task state is a handful of bytes.
//
// The DAG is procedural: task identity plus the seed determines its
// duration and its successor edges, so nothing quadratic is ever
// materialized and the same config always builds the same workload.

import (
	"context"
	"math"

	"repro/internal/des"
	"repro/internal/obs"
)

// PlanetConfig sizes the synthetic planetary datacenter.
type PlanetConfig struct {
	Clusters int // compute clusters; one LP each
	Hosts    int // parallel slots per cluster
	Tasks    int // tasks per cluster (Clusters x Tasks total)
	Layers   int // DAG depth; each cluster's tasks split evenly across layers
	Degree   int // successor credits per task, hashed across clusters

	Latency float64 // inter-cluster credit latency, seconds (> 0)
	Speed   float64 // Gflop/s per host
	BusyW   float64 // watts per busy host

	Seed uint64 // topology and duration randomness

	Workers   int     // DES workers; <= 1 runs the sequential kernel
	SnapEvery int     // snapshot cadence override (0 = kernel default)
	Window    float64 // optimism window in simulated seconds (0 = off)
	Obs       obs.Sink
}

func (c PlanetConfig) withDefaults() PlanetConfig {
	if c.Clusters <= 0 {
		c.Clusters = 4
	}
	if c.Hosts <= 0 {
		c.Hosts = 8
	}
	if c.Tasks <= 0 {
		c.Tasks = 1000
	}
	if c.Layers <= 0 {
		c.Layers = 8
	}
	if c.Layers > c.Tasks {
		c.Layers = c.Tasks
	}
	if c.Degree <= 0 {
		c.Degree = 2
	}
	if c.Latency <= 0 {
		c.Latency = 0.05
	}
	if c.Speed <= 0 {
		c.Speed = 5
	}
	if c.BusyW <= 0 {
		c.BusyW = 90
	}
	return c
}

// PlanetOutcome is the committed result of a planet run. All fields
// are scalars so == is byte equality; Digest folds every cluster's
// committed completion stream in order, which pins the entire
// execution, not just its aggregates.
type PlanetOutcome struct {
	Makespan float64
	Tasks    int64
	EnergyJ  float64
	Digest   uint64
}

// Planet message kinds.
const (
	kPCredit = iota // one parent edge satisfied for local task A
	kPDone          // compute of local task A completes
)

// planetMix is a splitmix64-style hash: the procedural source of task
// durations and successor edges.
func planetMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// planetState is one cluster's rollback-able state. Cloned by direct
// deep copy: at planet scale the state is two flat slices and a few
// scalars, and the copy is what a codec round-trip would produce
// anyway — minus the megabytes of transient encoding.
type planetState struct {
	pending  []int32 // per local task: unsatisfied parent credits
	free     int32
	queue    []int32 // ready local tasks, FIFO
	tasksRun int64
	energyJ  float64
	lastDone float64
	digest   uint64
}

func (s *planetState) Clone() des.State {
	c := &planetState{
		pending: append([]int32(nil), s.pending...),
		free:    s.free, queue: append([]int32(nil), s.queue...),
		tasksRun: s.tasksRun, energyJ: s.energyJ,
		lastDone: s.lastDone, digest: s.digest,
	}
	return c
}

// planetModel is the immutable context: sizing, the seed, and the LP
// table.
type planetModel struct {
	cfg PlanetConfig
	lps []des.LPID
}

func (m *planetModel) layerOf(i int) int { return i * m.cfg.Layers / m.cfg.Tasks }

func (m *planetModel) layerBounds(l int) (int, int) {
	return l * m.cfg.Tasks / m.cfg.Layers, (l + 1) * m.cfg.Tasks / m.cfg.Layers
}

// duration returns global task g's compute time: 1-11 Gflop over the
// host speed, hashed from the seed.
func (m *planetModel) duration(g int) float64 {
	gflop := 1 + float64(planetMix(m.cfg.Seed^uint64(g)*2654435761)%1000)/100
	return gflop / m.cfg.Speed
}

// successors visits global task g's outgoing credit edges: Degree
// targets in the next layer, each in a hashed (usually different)
// cluster.
func (m *planetModel) successors(g int, visit func(cluster, local int)) {
	i := g % m.cfg.Tasks
	l := m.layerOf(i)
	if l+1 >= m.cfg.Layers {
		return
	}
	lo, hi := m.layerBounds(l + 1)
	for j := 0; j < m.cfg.Degree; j++ {
		h := planetMix(m.cfg.Seed ^ uint64(g)<<8 ^ uint64(j))
		cc := int(h % uint64(m.cfg.Clusters))
		li := lo + int((h>>24)%uint64(hi-lo))
		visit(cc, li)
	}
}

func (m *planetModel) handler(cluster int) des.Handler {
	cfg := m.cfg
	return func(p *des.Proc, at float64, pl des.Payload) {
		st := p.State().(*planetState)
		switch pl.Kind {
		case kPCredit:
			i := int(pl.A)
			if st.pending[i] == 0 {
				return // duplicate credit from false speculation
			}
			st.pending[i]--
			if st.pending[i] > 0 {
				return
			}
			if st.free > 0 {
				m.start(p, st, i)
			} else {
				st.queue = append(st.queue, pl.A)
			}
		case kPDone:
			i := int(pl.A)
			g := cluster*cfg.Tasks + i
			st.tasksRun++
			st.energyJ += cfg.BusyW * m.duration(g)
			if at > st.lastDone {
				st.lastDone = at
			}
			st.digest = planetMix(st.digest ^ uint64(g)<<1 ^ math.Float64bits(at))
			st.free++
			if len(st.queue) > 0 {
				next := st.queue[0]
				st.queue = st.queue[1:]
				m.start(p, st, int(next))
			}
			m.successors(g, func(cc, li int) {
				p.Send(m.lps[cc], cfg.Latency, des.Payload{Kind: kPCredit, A: int32(li)})
			})
		}
	}
}

func (m *planetModel) start(p *des.Proc, st *planetState, i int) {
	st.free--
	g := int(p.ID())*m.cfg.Tasks + i
	p.Send(p.ID(), m.duration(g), des.Payload{Kind: kPDone, A: int32(i)})
}

// SimulatePlanet runs the planetary grid to completion and returns
// its committed outcome — byte-identical for every cfg.Workers.
func SimulatePlanet(cfg PlanetConfig) PlanetOutcome {
	out, err := SimulatePlanetContext(context.Background(), cfg)
	if err != nil {
		panic(err) // unreachable: background ctx cannot cancel
	}
	return out
}

// SimulatePlanetContext is SimulatePlanet with cancellation.
func SimulatePlanetContext(ctx context.Context, cfg PlanetConfig) (PlanetOutcome, error) {
	cfg = cfg.withDefaults()
	m := &planetModel{cfg: cfg}

	// Count each task's parent credits by walking every edge once.
	states := make([]*planetState, cfg.Clusters)
	for c := range states {
		states[c] = &planetState{
			pending: make([]int32, cfg.Tasks),
			free:    int32(cfg.Hosts),
		}
	}
	total := cfg.Clusters * cfg.Tasks
	for g := 0; g < total; g++ {
		m.successors(g, func(cc, li int) { states[cc].pending[li]++ })
	}

	eng := des.NewWarp(des.WarpConfig{
		Workers: cfg.Workers, SnapEvery: cfg.SnapEvery,
		Window: cfg.Window, Obs: cfg.Obs,
	})
	m.lps = make([]des.LPID, cfg.Clusters)
	for c := range m.lps {
		m.lps[c] = eng.AddLP("cluster", states[c], m.handler(c))
	}

	// Roots (no incoming credits) get one synthetic credit each so the
	// ready path is uniform; seeded in global task order.
	for c := 0; c < cfg.Clusters; c++ {
		for i := 0; i < cfg.Tasks; i++ {
			if states[c].pending[i] == 0 {
				states[c].pending[i] = 1
				eng.SeedAt(m.lps[c], 0, des.Payload{Kind: kPCredit, A: int32(i)})
			}
		}
	}

	var out PlanetOutcome
	if err := eng.Run(ctx); err != nil {
		return out, err
	}
	for c := 0; c < cfg.Clusters; c++ {
		st := eng.LPState(m.lps[c]).(*planetState)
		if st.lastDone > out.Makespan {
			out.Makespan = st.lastDone
		}
		out.Tasks += st.tasksRun
		out.EnergyJ += st.energyJ
		out.Digest = planetMix(out.Digest ^ st.digest)
	}
	return out, nil
}
