package wfsched

import (
	"testing"

	"repro/internal/workflow"
)

// Simulator throughput benchmarks: simulations per second bound how
// large a placement search (E20) can afford to be.

func BenchmarkSimulateTab1Full(b *testing.B) {
	base, ps := Tab1Base()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SimulateCluster(base, ps, ClusterConfig{Nodes: 64, PState: 6})
	}
}

func BenchmarkSimulateTab2AllCloud(b *testing.B) {
	sc := Tab2Scenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Simulate(sc, AllCloud)
	}
}

func BenchmarkSimulateTab2Mixed(b *testing.B) {
	sc := Tab2Scenario()
	fr := []float64{0.5, 0.75, 1, 1, 1, 1, 1, 1, 1}
	place := LevelFractions(sc.Workflow, fr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Simulate(sc, place)
	}
}

func BenchmarkBossHeuristicFull(b *testing.B) {
	base, ps := Tab1Base()
	for i := 0; i < b.N; i++ {
		if _, _, ok := BossHeuristic(base, ps, Tab1MaxNodes, Tab1BoundSec); !ok {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkGreedyFractionsSmall(b *testing.B) {
	sc := Tab2Scenario()
	sc.Workflow = workflow.Montage(workflow.MontageParams{Projections: 20, TargetBytes: 1e9})
	choices := Tab2Choices(sc.Workflow)
	for i := 0; i < b.N; i++ {
		GreedyFractions(sc, choices)
	}
}
