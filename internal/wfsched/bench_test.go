package wfsched

import (
	"fmt"
	"testing"

	"repro/internal/workflow"
)

// Simulator throughput benchmarks: simulations per second bound how
// large a placement search (E20) can afford to be.

func BenchmarkSimulateTab1Full(b *testing.B) {
	base, ps := Tab1Base()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SimulateCluster(base, ps, ClusterConfig{Nodes: 64, PState: 6})
	}
}

func BenchmarkSimulateTab2AllCloud(b *testing.B) {
	sc := Tab2Scenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Simulate(sc, AllCloud)
	}
}

func BenchmarkSimulateTab2Mixed(b *testing.B) {
	sc := Tab2Scenario()
	fr := []float64{0.5, 0.75, 1, 1, 1, 1, 1, 1, 1}
	place := LevelFractions(sc.Workflow, fr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Simulate(sc, place)
	}
}

func BenchmarkBossHeuristicFull(b *testing.B) {
	base, ps := Tab1Base()
	for i := 0; i < b.N; i++ {
		if _, _, ok := BossHeuristic(base, ps, Tab1MaxNodes, Tab1BoundSec); !ok {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkTimeWarpSweep runs the planet-scale datacenter scenario
// (16 clusters, 16k tasks, cross-cluster layered DAG) across the DES
// worker grid. workers=1 is the sequential kernel baseline; the
// parallel entries measure Time Warp end-to-end — speculation,
// snapshots, rollback, GVT. Speedup is what this machine's cores
// allow: on a single-vCPU runner the parallel entries price the
// optimism overhead instead.
func BenchmarkTimeWarpSweep(b *testing.B) {
	cfg := PlanetConfig{
		Clusters: 16, Hosts: 32, Tasks: 1000,
		Layers: 16, Degree: 2,
		Latency: 0.05, Speed: 5, BusyW: 90,
		Seed: 0xB0A7,
		// Bound optimism to two credit latencies past GVT. Unthrottled
		// speculation on an oversubscribed core cascades into rollback
		// storms (100x); the window keeps mis-speculation proportional
		// to the real lookahead of the topology.
		Window: 0.1,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := cfg
			c.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SimulatePlanet(c)
			}
		})
	}
}

func BenchmarkGreedyFractionsSmall(b *testing.B) {
	sc := Tab2Scenario()
	sc.Workflow = workflow.Montage(workflow.MontageParams{Projections: 20, TargetBytes: 1e9})
	choices := Tab2Choices(sc.Workflow)
	for i := 0; i < b.N; i++ {
		GreedyFractions(sc, choices)
	}
}
