package wfsched

// pareto.go extends the treasure hunt with the time/CO2 trade-off
// analysis: the assignment optimizes CO2 alone, but a student (or
// their hypothetical boss) ultimately faces a bi-objective choice —
// how much execution time must be given up for each gram saved. The
// Pareto frontier over the exhaustive sweep makes that explicit.

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// EvaluateFractions simulates every combination of the per-level
// choices and returns all results in deterministic (mixed-radix
// index) order, fanning the independent simulations out over all
// CPUs. It is the data source for ParetoFrontier and for exhaustive
// optimization over criteria other than CO2.
func EvaluateFractions(sc Scenario, choices [][]float64) []FractionResult {
	total, _ := fractionSpace(choices)
	results := make([]FractionResult, total)
	evaluateRange(sc, choices, results, 0, total)
	return results
}

// fractionSpace sizes the mixed-radix placement space and returns the
// index decoder (index -> per-level fractions).
func fractionSpace(choices [][]float64) (total int, decode func(int) []float64) {
	depth := len(choices)
	total = 1
	for _, c := range choices {
		if len(c) == 0 {
			panic("wfsched: empty choice list")
		}
		total *= len(c)
	}
	decode = func(idx int) []float64 {
		fr := make([]float64, depth)
		for l := depth - 1; l >= 0; l-- {
			n := len(choices[l])
			fr[l] = choices[l][idx%n]
			idx /= n
		}
		return fr
	}
	return total, decode
}

// evaluateRange simulates placements [lo, hi) into results, fanning
// out over all CPUs. Entries outside the range are left untouched, so
// a checkpointed sweep can fill the space chunk by chunk.
func evaluateRange(sc Scenario, choices [][]float64, results []FractionResult, lo, hi int) {
	total, decode := fractionSpace(choices)
	next := atomic.Int64{}
	next.Store(int64(lo))
	// Live sweep progress: workers bump a shared completion counter and
	// publish the covered fraction of the whole placement space every
	// pubEvery placements (chunked sweeps resume mid-space, hence lo).
	// All of it is nil-safe no-ops when no Progress reporter is attached.
	var done atomic.Int64
	pr := sc.Obs.Progress
	pubEvery := int64(total / 256)
	if pubEvery < 1 {
		pubEvery = 1
	}
	publish := func(n int64) {
		pr.Update("wfsched",
			obs.F("evaluated", float64(lo)+float64(n)),
			obs.F("total", float64(total)),
			obs.F("sweep_fraction", (float64(lo)+float64(n))/float64(total)))
	}
	if pr != nil {
		publish(0)
	}
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= hi {
					return
				}
				fr := decode(i)
				results[i] = FractionResult{fr, Simulate(sc, LevelFractions(sc.Workflow, fr))}
				if n := done.Add(1); pr != nil && (n%pubEvery == 0 || int(n) == hi-lo) {
					publish(n)
				}
			}
		}()
	}
	wg.Wait()
}

// ParetoFrontier filters results down to the placements that are not
// dominated in (Makespan, CO2): no other placement is at least as
// good on both objectives and strictly better on one. The frontier is
// returned sorted by makespan ascending (hence CO2 descending).
func ParetoFrontier(results []FractionResult) []FractionResult {
	if len(results) == 0 {
		return nil
	}
	sorted := append([]FractionResult(nil), results...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i].Outcome, sorted[j].Outcome
		if a.Makespan != b.Makespan {
			return a.Makespan < b.Makespan
		}
		return a.CO2 < b.CO2
	})
	var frontier []FractionResult
	bestCO2 := sorted[0].Outcome.CO2 + 1
	for _, r := range sorted {
		if r.Outcome.CO2 < bestCO2 {
			frontier = append(frontier, r)
			bestCO2 = r.Outcome.CO2
		}
	}
	return frontier
}
