package wfsched

import (
	"testing"

	"repro/internal/ckpt"
)

func sweepCheckpointer(t *testing.T, dir string, every int64) *ckpt.Checkpointer {
	t.Helper()
	store, err := ckpt.Open(dir, "sweep")
	if err != nil {
		t.Fatal(err)
	}
	return ckpt.NewCheckpointer(store, every, true)
}

// A sweep interrupted mid-way (simulated by running only its first
// chunks through the persistence path, then re-running) must produce
// results identical to the uninterrupted sweep, with the restored
// prefix byte-equal rather than re-simulated.
func TestCheckpointedSweepMatchesUninterrupted(t *testing.T) {
	sc := smallScenario()
	choices := paretoChoices()
	want := EvaluateFractions(sc, choices)

	// Uninterrupted checkpointed run: identical output.
	dir := t.TempDir()
	got, err := EvaluateFractionsCheckpointed(sc, choices, sweepCheckpointer(t, dir, 128), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("results = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Outcome != want[i].Outcome {
			t.Fatalf("result %d diverged: %+v vs %+v", i, got[i].Outcome, want[i].Outcome)
		}
	}

	// The run above saved intermediate prefixes; a fresh call resumes
	// from the newest one and still matches.
	resumed, err := EvaluateFractionsCheckpointed(sc, choices, sweepCheckpointer(t, dir, 128), 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resumed {
		if resumed[i].Outcome != want[i].Outcome {
			t.Fatalf("resumed result %d diverged", i)
		}
		if len(resumed[i].Fractions) != len(want[i].Fractions) {
			t.Fatalf("resumed result %d missing fractions", i)
		}
		for l := range resumed[i].Fractions {
			if resumed[i].Fractions[l] != want[i].Fractions[l] {
				t.Fatalf("resumed result %d fractions %v, want %v",
					i, resumed[i].Fractions, want[i].Fractions)
			}
		}
	}
}

// A snapshot from a differently-shaped sweep is rejected.
func TestCheckpointedSweepShapeMismatch(t *testing.T) {
	sc := smallScenario()
	dir := t.TempDir()
	if _, err := EvaluateFractionsCheckpointed(sc, paretoChoices(), sweepCheckpointer(t, dir, 64), 64); err != nil {
		t.Fatal(err)
	}
	small := [][]float64{{0, 1}, {0, 1}}
	if _, err := EvaluateFractionsCheckpointed(sc, small, sweepCheckpointer(t, dir, 64), 64); err == nil {
		t.Fatal("mismatched sweep shape resumed without error")
	}
}

// nil checkpointer degrades to the plain sweep.
func TestCheckpointedSweepNilCheckpointer(t *testing.T) {
	sc := smallScenario()
	choices := [][]float64{{0, 1}, {0, 1}, {0, 1}}
	want := EvaluateFractions(sc, choices)
	got, err := EvaluateFractionsCheckpointed(sc, choices, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Outcome != want[i].Outcome {
			t.Fatalf("result %d diverged", i)
		}
	}
}
