package wfsched

// split.go relaxes Tab 1's homogeneity assumption ("all powered on
// nodes operate in the same p-state"). A split cluster runs one group
// of nodes at one p-state and a second group at another; the greedy
// list scheduler prefers the faster free slot. Since the search space
// includes every homogeneous configuration (empty second group), the
// split optimum can only improve on the homogeneous one — the
// ablation quantifies by how much.

import (
	"fmt"

	"repro/internal/carbon"
	"repro/internal/des"
	"repro/internal/platform"
	"repro/internal/workflow"
)

// SplitConfig is a two-group cluster configuration.
type SplitConfig struct {
	A, B ClusterConfig // B.Nodes may be 0 (homogeneous)
}

func (s SplitConfig) String() string {
	if s.B.Nodes == 0 {
		return s.A.String()
	}
	return fmt.Sprintf("%s + %s", s.A.String(), s.B.String())
}

// SimulateSplitCluster executes the workflow all-local on a cluster
// split into two p-state groups. Ready tasks go to the fastest free
// slot; when no slot is free they wait in a FIFO queue drained on
// completions.
func SimulateSplitCluster(base Scenario, pstates []platform.PState, cfg SplitConfig) Outcome {
	base = base.withDefaults()
	w := base.Workflow
	if w == nil {
		panic("wfsched: nil workflow")
	}
	if cfg.A.Nodes <= 0 {
		panic("wfsched: split group A must have nodes")
	}

	sim := &des.Simulation{}
	meter := carbon.NewMeter()
	psA := pstates[cfg.A.PState]
	siteA := platform.NewSite(sim, meter, "local-a", cfg.A.Nodes,
		psA.Speed, psA.BusyPower, psA.IdlePower, base.LocalIntensity)
	var siteB *platform.Site
	var psB platform.PState
	if cfg.B.Nodes > 0 {
		psB = pstates[cfg.B.PState]
		siteB = platform.NewSite(sim, meter, "local-b", cfg.B.Nodes,
			psB.Speed, psB.BusyPower, psB.IdlePower, base.LocalIntensity)
	}

	freeA, freeB := cfg.A.Nodes, cfg.B.Nodes
	var pending []*workflow.Task
	pendingParents := make(map[*workflow.Task]int, len(w.Tasks))
	done := 0
	var out Outcome

	var dispatch func(t *workflow.Task)
	var onReady func(t *workflow.Task)

	finish := func(t *workflow.Task) {
		done++
		for _, c := range t.Children {
			pendingParents[c]--
			if pendingParents[c] == 0 {
				onReady(c)
			}
		}
	}

	dispatch = func(t *workflow.Task) {
		// Prefer the faster group among those with a free slot.
		useA := freeA > 0
		if useA && freeB > 0 && psB.Speed > psA.Speed {
			useA = false
		}
		if useA {
			freeA--
			siteA.Submit(t.Gflop, func() {
				freeA++
				finish(t)
				if len(pending) > 0 && (freeA > 0 || freeB > 0) {
					next := pending[0]
					pending = pending[1:]
					dispatch(next)
				}
			})
			return
		}
		freeB--
		siteB.Submit(t.Gflop, func() {
			freeB++
			finish(t)
			if len(pending) > 0 && (freeA > 0 || freeB > 0) {
				next := pending[0]
				pending = pending[1:]
				dispatch(next)
			}
		})
	}

	onReady = func(t *workflow.Task) {
		if freeA > 0 || freeB > 0 {
			dispatch(t)
		} else {
			pending = append(pending, t)
		}
	}

	out.TasksLocal = len(w.Tasks)
	for _, t := range w.Tasks {
		pendingParents[t] = len(t.Parents)
	}
	for _, t := range w.Tasks {
		if pendingParents[t] == 0 {
			t := t
			sim.Schedule(0, func() { onReady(t) })
		}
	}
	sim.Run()
	if done != len(w.Tasks) {
		panic(fmt.Sprintf("wfsched: split deadlock: %d of %d tasks completed", done, len(w.Tasks)))
	}
	out.Makespan = sim.Now()
	siteA.FinalizeIdle(out.Makespan)
	out.EnergyLocalKWh = meter.EnergyKWh("local-a")
	out.CO2Local = meter.SourceEmissions("local-a")
	if siteB != nil {
		siteB.FinalizeIdle(out.Makespan)
		out.EnergyLocalKWh += meter.EnergyKWh("local-b")
		out.CO2Local += meter.SourceEmissions("local-b")
	}
	out.CO2 = out.CO2Local
	return out
}

// AblationResult compares the homogeneous and split-cluster optima.
type AblationResult struct {
	Homogeneous        ClusterConfig
	HomogeneousOutcome Outcome
	Split              SplitConfig
	SplitOutcome       Outcome
}

// HeterogeneousAblation finds the bound-feasible minimum-CO2
// configuration in both decision spaces: homogeneous (nodes, p-state)
// and split (two groups, node counts in steps of nodeStep). The split
// space contains every homogeneous point, so SplitOutcome.CO2 ≤
// HomogeneousOutcome.CO2 whenever both are feasible.
func HeterogeneousAblation(base Scenario, maxNodes int, bound float64) (AblationResult, error) {
	pstates := platform.DefaultPStates()
	homCfg, homOut, ok := ExhaustiveCluster(base, pstates, maxNodes, bound)
	if !ok {
		return AblationResult{}, fmt.Errorf("wfsched: bound %.0fs infeasible even homogeneously", bound)
	}
	res := AblationResult{
		Homogeneous: homCfg, HomogeneousOutcome: homOut,
		Split:        SplitConfig{A: homCfg},
		SplitOutcome: homOut,
	}
	const nodeStep = 4
	for pA := range pstates {
		for pB := 0; pB < pA; pB++ {
			for nA := 1; nA <= maxNodes; nA += nodeStep {
				for nB := nodeStep; nA+nB <= maxNodes; nB += nodeStep {
					cfg := SplitConfig{A: ClusterConfig{nA, pA}, B: ClusterConfig{nB, pB}}
					out := SimulateSplitCluster(base, pstates, cfg)
					if out.Makespan > bound {
						continue
					}
					if out.CO2 < res.SplitOutcome.CO2 {
						res.Split, res.SplitOutcome = cfg, out
					}
				}
			}
		}
	}
	return res, nil
}
