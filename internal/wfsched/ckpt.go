package wfsched

// ckpt.go adds durable checkpoint/restart to the exhaustive sweep —
// the long-running piece of the carbon treasure hunt. The sweep's
// results arrive in deterministic mixed-radix index order, so its
// durable unit is simply a prefix: every `chunk` placements the
// completed prefix of outcomes is persisted (epoch = results done),
// and a resumed sweep re-evaluates nothing before that point. The
// fractions themselves are not stored — they are a pure function of
// the index — only the simulated outcomes are.

import (
	"fmt"

	"repro/internal/ckpt"
)

// wfPayload tags sweep snapshots inside the ckpt frame.
const wfPayload uint32 = 3

// EvaluateFractionsCheckpointed is EvaluateFractions with durable
// progress: placements are simulated in chunks of `chunk` (minimum 1;
// a non-positive value picks 64), the completed prefix is persisted
// through ck at its cadence after each chunk, and a resuming
// checkpointer restores the newest valid prefix instead of
// re-simulating it. A nil ck degrades to EvaluateFractions.
func EvaluateFractionsCheckpointed(sc Scenario, choices [][]float64, ck *ckpt.Checkpointer, chunk int) ([]FractionResult, error) {
	if ck == nil {
		return EvaluateFractions(sc, choices), nil
	}
	if chunk <= 0 {
		chunk = 64
	}
	total, decode := fractionSpace(choices)
	results := make([]FractionResult, total)
	done, err := restoreSweep(ck, choices, results)
	if err != nil {
		return nil, err
	}
	for i := 0; i < done; i++ {
		results[i].Fractions = decode(i)
	}
	for done < total {
		hi := done + chunk
		if hi > total {
			hi = total
		}
		evaluateRange(sc, choices, results, done, hi)
		done = hi
		// The finished sweep is not saved: the caller has the results,
		// and the snapshots only exist to shorten a re-run.
		if done < total && ck.Due(int64(done)) {
			if err := ck.Save(uint64(done), encodeSweep(total, results[:done])); err != nil {
				return nil, fmt.Errorf("wfsched: checkpoint: %w", err)
			}
		}
	}
	return results, nil
}

// encodeSweep serializes a completed prefix of sweep outcomes.
func encodeSweep(total int, prefix []FractionResult) []byte {
	var e ckpt.Enc
	e.U32(wfPayload)
	e.U64(uint64(total))
	e.U64(uint64(len(prefix)))
	for i := range prefix {
		o := &prefix[i].Outcome
		e.F64(o.Makespan)
		e.F64(o.EnergyLocalKWh)
		e.F64(o.EnergyCloudKWh)
		e.F64(o.CO2Local)
		e.F64(o.CO2Cloud)
		e.F64(o.CO2)
		e.I64(int64(o.TasksLocal))
		e.I64(int64(o.TasksCloud))
		e.F64(o.BytesTransferred)
		e.I64(int64(o.Transfers))
		e.I64(int64(o.Retries))
		e.F64(o.EnergyWastedKWh)
	}
	return e.Bytes()
}

// restoreSweep loads the newest valid prefix into results and returns
// how many entries it filled (0 when not resuming or no snapshot).
func restoreSweep(ck *ckpt.Checkpointer, choices [][]float64, results []FractionResult) (int, error) {
	epoch, payload, ok, err := ck.Load()
	if err != nil || !ok {
		return 0, err
	}
	dec := ckpt.NewDec(payload)
	if tag := dec.U32(); tag != wfPayload {
		return 0, fmt.Errorf("wfsched: snapshot has payload tag %d, want %d", tag, wfPayload)
	}
	total := int(dec.U64())
	done := int(dec.U64())
	if total != len(results) || done > total {
		return 0, fmt.Errorf("wfsched: snapshot covers %d of %d placements but the sweep has %d (resume needs the same choice lists)",
			done, total, len(results))
	}
	for i := 0; i < done; i++ {
		o := &results[i].Outcome
		o.Makespan = dec.F64()
		o.EnergyLocalKWh = dec.F64()
		o.EnergyCloudKWh = dec.F64()
		o.CO2Local = dec.F64()
		o.CO2Cloud = dec.F64()
		o.CO2 = dec.F64()
		o.TasksLocal = int(dec.I64())
		o.TasksCloud = int(dec.I64())
		o.BytesTransferred = dec.F64()
		o.Transfers = int(dec.I64())
		o.Retries = int(dec.I64())
		o.EnergyWastedKWh = dec.F64()
	}
	if err := dec.Err(); err != nil {
		return 0, fmt.Errorf("wfsched: snapshot epoch %d: %w", epoch, err)
	}
	if uint64(done) != epoch {
		return 0, fmt.Errorf("wfsched: snapshot epoch %d holds %d results", epoch, done)
	}
	return done, nil
}
