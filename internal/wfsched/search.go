package wfsched

// search.go implements the decision procedures the assignment walks
// students through: the binary searches of Tab 1 Question 2, the boss
// heuristic of Question 3, and the Tab 2 "treasure hunt" optimizers,
// including the exhaustive search the paper names as future work
// ("we will run our simulator to exhaustively evaluate all possible
// options so as to compute the actual optimal CO2 emission").

import (
	"context"
	"fmt"
	"math"

	"repro/internal/platform"
)

// ClusterConfig is one point of Tab 1's decision space.
type ClusterConfig struct {
	Nodes  int
	PState int // index into the p-state table
}

func (c ClusterConfig) String() string {
	return fmt.Sprintf("%d nodes @ p%d", c.Nodes, c.PState)
}

// Tab1Scenario builds the Tab 1 platform: a cluster-only scenario
// with the given powered-on node count and p-state.
func Tab1Scenario(base Scenario, pstates []platform.PState, cfg ClusterConfig) Scenario {
	sc := base
	sc.LocalNodes = cfg.Nodes
	sc.PState = pstates[cfg.PState]
	sc.CloudVMs = 0
	return sc
}

// SimulateCluster runs the workflow all-local under cfg.
func SimulateCluster(base Scenario, pstates []platform.PState, cfg ClusterConfig) Outcome {
	return Simulate(Tab1Scenario(base, pstates, cfg), AllLocal)
}

// SimulateClusterContext is SimulateCluster with cancellation,
// mirroring SimulateContext's contract.
func SimulateClusterContext(ctx context.Context, base Scenario, pstates []platform.PState, cfg ClusterConfig) (Outcome, error) {
	return SimulateContext(ctx, Tab1Scenario(base, pstates, cfg), AllLocal)
}

// MinNodesUnderBound binary-searches the minimum number of powered-on
// nodes (at the given p-state) whose makespan meets the bound, as Tab
// 1 Question 2 asks. It returns the config and outcome, or ok=false
// if even all maxNodes nodes miss the bound. Makespan is monotone
// non-increasing in the node count under list scheduling of a fixed
// DAG, which is what makes binary search valid here.
func MinNodesUnderBound(base Scenario, pstates []platform.PState, pstate, maxNodes int, bound float64) (ClusterConfig, Outcome, bool) {
	lo, hi := 1, maxNodes
	best := -1
	var bestOut Outcome
	if out := SimulateCluster(base, pstates, ClusterConfig{maxNodes, pstate}); out.Makespan > bound {
		return ClusterConfig{}, out, false
	}
	for lo <= hi {
		mid := (lo + hi) / 2
		out := SimulateCluster(base, pstates, ClusterConfig{mid, pstate})
		if out.Makespan <= bound {
			best, bestOut = mid, out
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return ClusterConfig{best, pstate}, bestOut, true
}

// MinPStateUnderBound finds the lowest p-state index (with the given
// node count) whose makespan meets the bound — the downclocking
// option of Tab 1 Question 2. Binary search applies because makespan
// is non-increasing in p-state speed.
func MinPStateUnderBound(base Scenario, pstates []platform.PState, nodes int, bound float64) (ClusterConfig, Outcome, bool) {
	lo, hi := 0, len(pstates)-1
	best := -1
	var bestOut Outcome
	if out := SimulateCluster(base, pstates, ClusterConfig{nodes, hi}); out.Makespan > bound {
		return ClusterConfig{}, out, false
	}
	for lo <= hi {
		mid := (lo + hi) / 2
		out := SimulateCluster(base, pstates, ClusterConfig{nodes, mid})
		if out.Makespan <= bound {
			best, bestOut = mid, out
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return ClusterConfig{nodes, best}, bestOut, true
}

// BossHeuristic is Tab 1 Question 3's combined strategy: for every
// p-state, find the minimum node count that meets the bound, then
// keep the (p-state, nodes) pair with the lowest CO2. It subsumes the
// two pure options (p-state fixed at max ≡ power off only; nodes
// fixed at max ≡ downclock only are both evaluated along the way),
// so it can only do better — the lesson of the question.
func BossHeuristic(base Scenario, pstates []platform.PState, maxNodes int, bound float64) (ClusterConfig, Outcome, bool) {
	bestCO2 := math.Inf(1)
	var bestCfg ClusterConfig
	var bestOut Outcome
	found := false
	for p := range pstates {
		cfg, out, ok := MinNodesUnderBound(base, pstates, p, maxNodes, bound)
		if !ok {
			continue
		}
		if out.CO2 < bestCO2 {
			bestCO2, bestCfg, bestOut, found = out.CO2, cfg, out, true
		}
	}
	return bestCfg, bestOut, found
}

// ExhaustiveCluster evaluates every (nodes, p-state) pair and returns
// the bound-feasible config with minimum CO2 — the ground truth the
// heuristics are judged against.
func ExhaustiveCluster(base Scenario, pstates []platform.PState, maxNodes int, bound float64) (ClusterConfig, Outcome, bool) {
	bestCO2 := math.Inf(1)
	var bestCfg ClusterConfig
	var bestOut Outcome
	found := false
	for p := range pstates {
		for n := 1; n <= maxNodes; n++ {
			out := SimulateCluster(base, pstates, ClusterConfig{n, p})
			if out.Makespan > bound {
				continue
			}
			if out.CO2 < bestCO2 {
				bestCO2, bestCfg, bestOut, found = out.CO2, ClusterConfig{n, p}, out, true
			}
		}
	}
	return bestCfg, bestOut, found
}

// FractionResult pairs a placement vector with its outcome.
type FractionResult struct {
	Fractions []float64
	Outcome   Outcome
}

// SweepLevelFraction varies the cloud fraction of one level over the
// given values (all other levels local) — the guided exploration of
// Tab 2's middle questions.
func SweepLevelFraction(sc Scenario, level int, values []float64) []FractionResult {
	depth := len(sc.Workflow.Levels)
	out := make([]FractionResult, 0, len(values))
	for _, v := range values {
		fr := make([]float64, depth)
		fr[level] = v
		res := Simulate(sc, LevelFractions(sc.Workflow, fr))
		out = append(out, FractionResult{fr, res})
	}
	return out
}

// ExhaustiveFractions evaluates every combination of the given
// fraction choices per level and returns the minimum-CO2 assignment —
// the paper's stated future work ("run our simulator to exhaustively
// evaluate all possible options so as to compute the actual optimal
// CO2 emission"), feasible here because the simulator is fast and the
// independent simulations fan out over all CPUs. choices[l] lists the
// allowed fractions for level l; single-task levels are naturally
// restricted to {0, 1} by callers. The number of simulations is the
// product of the choice counts. Ties in CO2 break toward the
// lexicographically smallest fraction vector, keeping the result
// deterministic under parallel evaluation.
func ExhaustiveFractions(sc Scenario, choices [][]float64) FractionResult {
	results := EvaluateFractions(sc, choices)
	best := results[0]
	for _, r := range results[1:] {
		if r.Outcome.CO2 < best.Outcome.CO2 {
			best = r
		}
	}
	return best
}

// GreedyFractions hill-climbs the per-level fractions: starting from
// all-local, it repeatedly applies the single-level fraction change
// that lowers CO2 the most, until no change helps. Far cheaper than
// the exhaustive search and the natural "smart student" strategy of
// the treasure hunt.
func GreedyFractions(sc Scenario, choices [][]float64) (FractionResult, int) {
	depth := len(choices)
	cur := make([]float64, depth)
	best := Simulate(sc, LevelFractions(sc.Workflow, cur))
	sims := 1
	for {
		improved := false
		bestLevel, bestVal := -1, 0.0
		bestCO2 := best.CO2
		for l := 0; l < depth; l++ {
			for _, v := range choices[l] {
				if v == cur[l] {
					continue
				}
				trial := append([]float64(nil), cur...)
				trial[l] = v
				res := Simulate(sc, LevelFractions(sc.Workflow, trial))
				sims++
				if res.CO2 < bestCO2 {
					bestCO2, bestLevel, bestVal = res.CO2, l, v
					improved = true
				}
			}
		}
		if !improved {
			return FractionResult{cur, best}, sims
		}
		cur[bestLevel] = bestVal
		best = Simulate(sc, LevelFractions(sc.Workflow, cur))
		sims++
	}
}
