package wfsched

import (
	"math"
	"testing"

	"repro/internal/workflow"
)

// smallScenario builds a fast Tab-2-like scenario over a reduced
// Montage instance for unit tests.
func smallScenario() Scenario {
	sc := Tab2Scenario()
	sc.Workflow = workflow.Montage(workflow.MontageParams{Projections: 20, TargetBytes: 1e9})
	return sc
}

func TestSimulateDeterministic(t *testing.T) {
	sc := smallScenario()
	a := Simulate(sc, AllCloud)
	b := Simulate(sc, AllCloud)
	if a != b {
		t.Fatalf("two identical simulations differ:\n%v\n%v", a, b)
	}
}

func TestAllLocalNoTransfers(t *testing.T) {
	sc := smallScenario()
	out := Simulate(sc, AllLocal)
	if out.Transfers != 0 || out.BytesTransferred != 0 {
		t.Fatalf("all-local moved data: %+v", out)
	}
	if out.TasksCloud != 0 || out.TasksLocal != sc.Workflow.NumTasks() {
		t.Fatalf("placement accounting wrong: %+v", out)
	}
	if out.EnergyCloudKWh == 0 {
		// 16 idle VMs still draw their idle power.
		t.Fatal("cloud idle energy missing")
	}
}

func TestAllCloudStagesInputsOnce(t *testing.T) {
	sc := smallScenario()
	out := Simulate(sc, AllCloud)
	if out.TasksLocal != 0 {
		t.Fatalf("all-cloud ran local tasks: %+v", out)
	}
	// Exactly the 20 raw input files cross the link (all intermediate
	// data stays cloud-side thanks to locality), each exactly once.
	if out.Transfers != 20 {
		t.Fatalf("transfers = %d, want 20 input files", out.Transfers)
	}
}

func TestMakespanRespectsLowerBounds(t *testing.T) {
	sc := smallScenario()
	w := sc.Workflow
	for _, place := range []Placement{AllLocal, AllCloud} {
		out := Simulate(sc, place)
		// Critical path at the fastest slot speed involved.
		speed := math.Max(sc.PState.Speed, sc.VMSpeed)
		if cpBound := w.CriticalPathGflop() / speed; out.Makespan < cpBound-1e-9 {
			t.Fatalf("makespan %.2f below critical-path bound %.2f", out.Makespan, cpBound)
		}
		// Total-work bound over all slots.
		capacity := float64(sc.LocalNodes)*sc.PState.Speed + float64(sc.CloudVMs)*sc.VMSpeed
		if wBound := w.TotalGflop() / capacity; out.Makespan < wBound-1e-9 {
			t.Fatalf("makespan %.2f below work bound %.2f", out.Makespan, wBound)
		}
	}
}

func TestCO2Additive(t *testing.T) {
	out := Simulate(smallScenario(), AllCloud)
	if math.Abs(out.CO2-(out.CO2Local+out.CO2Cloud)) > 1e-9 {
		t.Fatalf("CO2 not additive: %+v", out)
	}
	if out.CO2Local < 0 || out.CO2Cloud < 0 || out.EnergyLocalKWh < 0 {
		t.Fatalf("negative accounting: %+v", out)
	}
}

func TestMoreNodesNeverSlower(t *testing.T) {
	base, ps := Tab1Base()
	base.Workflow = workflow.Montage(workflow.MontageParams{Projections: 30})
	prev := math.Inf(1)
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		out := SimulateCluster(base, ps, ClusterConfig{n, 6})
		if out.Makespan > prev+1e-9 {
			t.Fatalf("%d nodes slower than fewer: %.2f > %.2f", n, out.Makespan, prev)
		}
		prev = out.Makespan
	}
}

func TestHigherPStateNeverSlower(t *testing.T) {
	base, ps := Tab1Base()
	base.Workflow = workflow.Montage(workflow.MontageParams{Projections: 30})
	prev := math.Inf(1)
	for p := range ps {
		out := SimulateCluster(base, ps, ClusterConfig{16, p})
		if out.Makespan > prev+1e-9 {
			t.Fatalf("p%d slower than p%d: %.2f > %.2f", p, p-1, out.Makespan, prev)
		}
		prev = out.Makespan
	}
}

func TestLocalityCoPlacementAvoidsBackhaul(t *testing.T) {
	// With L0 (producers of the projected files) and L4 (their other
	// consumers) on the cloud, inserting L1 locally forces the
	// projected files across the link; keeping L1 on the cloud too
	// keeps them cloud-side ("the output of a task executed on the
	// cloud is available locally to a subsequent child task").
	sc := smallScenario()
	depth := len(sc.Workflow.Levels)
	colocated := make([]float64, depth)
	colocated[0], colocated[1], colocated[4] = 1, 1, 1
	a := Simulate(sc, LevelFractions(sc.Workflow, colocated))
	split := make([]float64, depth)
	split[0], split[4] = 1, 1 // L1 local
	b := Simulate(sc, LevelFractions(sc.Workflow, split))
	if a.BytesTransferred >= b.BytesTransferred {
		t.Fatalf("locality broken: co-located moved %.0f bytes, split moved %.0f",
			a.BytesTransferred, b.BytesTransferred)
	}
	// In the split run, the projected files cross the link exactly
	// once (to local for L1) and are reused from cloud storage by L4:
	// 20 raw + 20 proj + 1 corrections + 20 corrected back = 61.
	if b.Transfers != 61 {
		t.Fatalf("split transfers = %d, want 61 (each file crosses at most once per site)", b.Transfers)
	}
}

func TestSharedInputTransferredOnce(t *testing.T) {
	// The bgModel corrections file feeds every mBackground task; with
	// all of L4 on the cloud it must cross the link exactly once.
	sc := smallScenario()
	depth := len(sc.Workflow.Levels)
	fr := make([]float64, depth)
	fr[4] = 1
	out := Simulate(sc, LevelFractions(sc.Workflow, fr))
	// Transfers: 20 projected files + 1 corrections file to cloud,
	// then 20 corrected files back for L5/L6 locally.
	if out.Transfers != 41 {
		t.Fatalf("transfers = %d, want 41 (20 proj + 1 corrections + 20 corrected back)", out.Transfers)
	}
}

func TestLevelFractionsPlacementCounts(t *testing.T) {
	sc := smallScenario()
	w := sc.Workflow
	depth := len(w.Levels)
	fr := make([]float64, depth)
	fr[0], fr[1] = 0.5, 0.25
	place := LevelFractions(w, fr)
	cloud0, cloud1 := 0, 0
	for _, task := range w.Levels[0] {
		if place(task) == Cloud {
			cloud0++
		}
	}
	for _, task := range w.Levels[1] {
		if place(task) == Cloud {
			cloud1++
		}
	}
	if cloud0 != 10 {
		t.Fatalf("level 0 cloud tasks = %d, want 10 (half of 20)", cloud0)
	}
	want1 := int(math.Round(0.25 * float64(len(w.Levels[1]))))
	if cloud1 != want1 {
		t.Fatalf("level 1 cloud tasks = %d, want %d", cloud1, want1)
	}
	// Short fraction vectors leave deeper levels local; out-of-range
	// values clamp.
	clamped := LevelFractions(w, []float64{-1, 2})
	if clamped(w.Levels[0][0]) != Local {
		t.Fatal("fraction -1 did not clamp to 0")
	}
	if clamped(w.Levels[1][0]) != Cloud {
		t.Fatal("fraction 2 did not clamp to 1")
	}
	if clamped(w.Levels[4][0]) != Local {
		t.Fatal("level beyond vector not local")
	}
}

func TestSimulatePanicsOnImpossiblePlacement(t *testing.T) {
	base, ps := Tab1Base()
	base.Workflow = workflow.Montage(workflow.MontageParams{Projections: 5})
	sc := Tab1Scenario(base, ps, ClusterConfig{4, 6})
	defer func() {
		if recover() == nil {
			t.Fatal("cloud placement without a cloud did not panic")
		}
	}()
	Simulate(sc, AllCloud)
}

func TestSimulatePanicsWithoutCompute(t *testing.T) {
	sc := smallScenario()
	sc.LocalNodes = 0
	sc.CloudVMs = 0
	defer func() {
		if recover() == nil {
			t.Fatal("empty platform did not panic")
		}
	}()
	Simulate(sc, AllLocal)
}

func TestOutcomeString(t *testing.T) {
	if Simulate(smallScenario(), AllLocal).String() == "" {
		t.Fatal("empty outcome string")
	}
	if Local.String() != "local" || Cloud.String() != "cloud" {
		t.Fatal("site names wrong")
	}
}

func TestIdleClusterStillEmits(t *testing.T) {
	// The Tab 2 insight: even an all-cloud run pays the local
	// cluster's idle draw for the whole makespan.
	out := Simulate(smallScenario(), AllCloud)
	if out.CO2Local <= 0 {
		t.Fatalf("idle local cluster emitted nothing: %+v", out)
	}
}

func TestDefaultPStatesUsedBySimulator(t *testing.T) {
	base, ps := Tab1Base()
	if len(ps) != 7 {
		t.Fatalf("p-states = %d", len(ps))
	}
	if base.Workflow.NumTasks() != 738 {
		t.Fatalf("base workflow tasks = %d", base.Workflow.NumTasks())
	}
}
