package wfsched

import (
	"testing"

	"repro/internal/platform"
)

// TestNewScenarioMatchesTab2Literal pins the option spellings to the
// fields Tab2Scenario sets positionally: building the same platform
// through options must simulate to the identical outcome.
func TestNewScenarioMatchesTab2Literal(t *testing.T) {
	want := Tab2Scenario()
	ps := platform.DefaultPStates()
	got := NewScenario(want.Workflow,
		WithLocalNodes(Tab2LocalNodes),
		WithPState(ps[0]),
		WithCloudVMs(Tab2CloudVMs, Tab2VMSpeed),
		WithVMPower(Tab2VMBusyPower, Tab2VMIdlePower),
		WithLink(Tab2LinkBandwidth, Tab2LinkLatency),
	)
	if got != want {
		t.Fatalf("NewScenario = %+v\nwant %+v", got, want)
	}

	a := Simulate(want, AllLocal)
	b := Simulate(got, AllLocal)
	if a != b {
		t.Fatalf("outcomes differ: %+v vs %+v", a, b)
	}
}

// TestScenarioWithDerivesVariant checks the template-derivation
// spelling used by the job adapters.
func TestScenarioWithDerivesVariant(t *testing.T) {
	base := Tab2Scenario()
	sc := base.With(WithLocalNodes(4))
	if sc.LocalNodes != 4 {
		t.Fatalf("With(WithLocalNodes(4)).LocalNodes = %d", sc.LocalNodes)
	}
	if base.LocalNodes != Tab2LocalNodes {
		t.Fatal("With mutated its receiver")
	}
	if sc.CloudVMs != base.CloudVMs {
		t.Fatal("With dropped unrelated fields")
	}
}
