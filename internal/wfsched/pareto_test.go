package wfsched

import (
	"math"
	"testing"
)

func paretoChoices() [][]float64 {
	return [][]float64{{0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}}
}

func TestEvaluateFractionsCountAndOrder(t *testing.T) {
	sc := smallScenario()
	results := EvaluateFractions(sc, paretoChoices())
	if len(results) != 512 {
		t.Fatalf("results = %d, want 2^9", len(results))
	}
	// First combination is all-zero (all-local), last is all-one.
	for _, f := range results[0].Fractions {
		if f != 0 {
			t.Fatalf("first combination not all-local: %v", results[0].Fractions)
		}
	}
	for _, f := range results[len(results)-1].Fractions {
		if f != 1 {
			t.Fatalf("last combination not all-cloud: %v", results[len(results)-1].Fractions)
		}
	}
	// Deterministic across calls.
	again := EvaluateFractions(sc, paretoChoices())
	for i := range results {
		if results[i].Outcome != again[i].Outcome {
			t.Fatalf("evaluation %d not deterministic", i)
		}
	}
}

func TestParetoFrontierNoDominatedPoints(t *testing.T) {
	sc := smallScenario()
	results := EvaluateFractions(sc, paretoChoices())
	frontier := ParetoFrontier(results)
	if len(frontier) == 0 {
		t.Fatal("empty frontier")
	}
	if len(frontier) > len(results) {
		t.Fatal("frontier larger than input")
	}
	// Frontier is sorted by makespan ascending with strictly
	// decreasing CO2.
	for i := 1; i < len(frontier); i++ {
		if frontier[i].Outcome.Makespan < frontier[i-1].Outcome.Makespan {
			t.Fatal("frontier not sorted by makespan")
		}
		if frontier[i].Outcome.CO2 >= frontier[i-1].Outcome.CO2 {
			t.Fatal("frontier CO2 not strictly decreasing")
		}
	}
	// No frontier point is dominated by any evaluated point.
	for _, f := range frontier {
		for _, r := range results {
			if r.Outcome.Makespan <= f.Outcome.Makespan && r.Outcome.CO2 <= f.Outcome.CO2 &&
				(r.Outcome.Makespan < f.Outcome.Makespan || r.Outcome.CO2 < f.Outcome.CO2) {
				t.Fatalf("frontier point %v dominated by %v", f.Outcome, r.Outcome)
			}
		}
	}
}

func TestParetoFrontierEndpoints(t *testing.T) {
	sc := smallScenario()
	results := EvaluateFractions(sc, paretoChoices())
	frontier := ParetoFrontier(results)
	// The frontier's CO2 minimum must equal the exhaustive optimum.
	best := ExhaustiveFractions(sc, paretoChoices())
	minCO2 := math.Inf(1)
	for _, f := range frontier {
		minCO2 = math.Min(minCO2, f.Outcome.CO2)
	}
	if math.Abs(minCO2-best.Outcome.CO2) > 1e-9 {
		t.Fatalf("frontier min CO2 %.3f != exhaustive optimum %.3f", minCO2, best.Outcome.CO2)
	}
	// The fastest placement overall must be on the frontier.
	fastest := math.Inf(1)
	for _, r := range results {
		fastest = math.Min(fastest, r.Outcome.Makespan)
	}
	if frontier[0].Outcome.Makespan != fastest {
		t.Fatalf("frontier head %.2f is not the fastest placement %.2f",
			frontier[0].Outcome.Makespan, fastest)
	}
}

func TestParetoFrontierDegenerate(t *testing.T) {
	if ParetoFrontier(nil) != nil {
		t.Fatal("nil input should yield nil frontier")
	}
	one := []FractionResult{{Fractions: []float64{0}, Outcome: Outcome{Makespan: 1, CO2: 1}}}
	if got := ParetoFrontier(one); len(got) != 1 {
		t.Fatalf("singleton frontier = %d points", len(got))
	}
	// Two mutually non-dominating points both survive; a dominated
	// third does not.
	pts := []FractionResult{
		{Outcome: Outcome{Makespan: 1, CO2: 10}},
		{Outcome: Outcome{Makespan: 10, CO2: 1}},
		{Outcome: Outcome{Makespan: 10, CO2: 10}}, // dominated by both
	}
	got := ParetoFrontier(pts)
	if len(got) != 2 {
		t.Fatalf("frontier = %d points, want 2", len(got))
	}
}
