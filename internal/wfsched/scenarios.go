package wfsched

// scenarios.go pins down the assignment's two canonical platforms so
// every bench, example, and test reproduces the same experiments.

import (
	"repro/internal/platform"
	"repro/internal/workflow"
)

// Tab1 constants: "this workflow is to be executed on a 64-node
// cluster powered by a power plant that generates 291 gCO2e per kWh";
// Question 2 imposes a 3-minute execution bound.
const (
	Tab1MaxNodes = 64
	Tab1BoundSec = 180.0
)

// Tab2 constants: "the organization has purchased 16 virtual machine
// instances on a remote, green cloud ... the organization now only
// powers on 12 nodes of the local cluster, all operating at the
// lowest possible p-state".
const (
	Tab2LocalNodes = 12
	Tab2CloudVMs   = 16
	// Tab2VMSpeed is the per-VM speed (Gflop/s): a bit faster than a
	// downclocked local node, slower than a top-state one.
	Tab2VMSpeed = 6.0
	// Tab2LinkBandwidth (bytes/s) keeps data movement a first-order
	// concern: staging the 7.5 GB footprint is comparable to compute.
	Tab2LinkBandwidth = 25e6
	Tab2LinkLatency   = 0.05
	// Cloud VM power draw (charged at the green intensity).
	Tab2VMBusyPower = 150.0
	Tab2VMIdlePower = 10.0
)

// BaseScenario returns the shared pieces of both tabs: the default
// Montage-738 workflow. Callers override the platform fields.
func BaseScenario() Scenario {
	return Scenario{Workflow: workflow.Montage(workflow.MontageParams{})}
}

// Tab1Base returns the Tab 1 template: cluster only; node count and
// p-state are chosen per experiment via ClusterConfig.
func Tab1Base() (Scenario, []platform.PState) {
	return BaseScenario(), platform.DefaultPStates()
}

// Tab2Scenario returns the Tab 2 platform: 12 local nodes locked at
// the lowest p-state plus 16 green-cloud VMs across the shared link.
func Tab2Scenario() Scenario {
	sc := BaseScenario()
	ps := platform.DefaultPStates()
	sc.LocalNodes = Tab2LocalNodes
	sc.PState = ps[0]
	sc.CloudVMs = Tab2CloudVMs
	sc.VMSpeed = Tab2VMSpeed
	sc.VMBusyPower = Tab2VMBusyPower
	sc.VMIdlePower = Tab2VMIdlePower
	sc.LinkBandwidth = Tab2LinkBandwidth
	sc.LinkLatency = Tab2LinkLatency
	return sc
}

// Tab2Choices returns the per-level fraction choices used by the
// exhaustive optimizer: quartiles for the three wide levels
// (mProject, mDiffFit, mBackground), all-or-nothing for the single-
// task levels.
func Tab2Choices(w *workflow.Workflow) [][]float64 {
	choices := make([][]float64, len(w.Levels))
	for l, level := range w.Levels {
		if len(level) > 1 {
			choices[l] = []float64{0, 0.25, 0.5, 0.75, 1}
		} else {
			choices[l] = []float64{0, 1}
		}
	}
	return choices
}
