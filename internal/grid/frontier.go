package grid

// frontier.go provides the compacted active-id worklist the lazy
// engines iterate over. Instead of sweeping a dirty []bool of size
// NumTiles every iteration (O(grid) even when three tiles are active),
// a Frontier keeps the active ids dense, and the next iteration's set
// is rebuilt in place from the tiles that actually changed — so the
// per-iteration cost is O(active), not O(grid).
//
// The rebuild is deduplicated with an epoch-stamped membership array:
// Begin bumps the epoch, Add records an id only if its stamp is stale,
// and Flip swaps the freshly built set in. No per-iteration clearing
// of the membership array and no allocation: all storage is sized at
// construction.

import "fmt"

// Frontier is a double-buffered worklist of dense ids in [0, n),
// optionally partitioned into lanes (the async-waves engines use one
// lane per checkerboard wave; single-worklist users pass lanes=1 and
// lane 0 everywhere). Build the next set with Begin/Add/Flip while
// reading the current one via Active/Lane. Frontier methods must not
// be called concurrently.
type Frontier struct {
	active [][]int32
	next   [][]int32
	mark   []int32 // mark[id] == epoch means id is already in the next set
	epoch  int32
}

// NewFrontier returns an empty frontier over ids [0, n) with the given
// number of lanes. Every lane is pre-sized to hold all n ids, so
// Add never allocates.
func NewFrontier(n, lanes int) *Frontier {
	if n < 0 || lanes <= 0 {
		panic(fmt.Sprintf("grid: invalid frontier geometry n=%d lanes=%d", n, lanes))
	}
	f := &Frontier{
		active: make([][]int32, lanes),
		next:   make([][]int32, lanes),
		mark:   make([]int32, n),
	}
	for k := 0; k < lanes; k++ {
		f.active[k] = make([]int32, 0, n)
		f.next[k] = make([]int32, 0, n)
	}
	return f
}

// Lanes returns the number of lanes.
func (f *Frontier) Lanes() int { return len(f.active) }

// SeedAll makes every id active, in ascending order within each lane.
// laneOf assigns ids to lanes; nil puts everything in lane 0.
func (f *Frontier) SeedAll(laneOf func(id int32) int) {
	for k := range f.active {
		f.active[k] = f.active[k][:0]
	}
	for id := int32(0); id < int32(len(f.mark)); id++ {
		k := 0
		if laneOf != nil {
			k = laneOf(id)
		}
		f.active[k] = append(f.active[k], id)
	}
}

// Active returns lane 0's current worklist (the whole frontier for
// single-lane users). The slice is owned by the frontier: it is valid
// until the next Flip and must not be mutated.
func (f *Frontier) Active() []int32 { return f.active[0] }

// Lane returns lane k's current worklist, under the same ownership
// rules as Active.
func (f *Frontier) Lane(k int) []int32 { return f.active[k] }

// Len returns the total number of active ids across all lanes.
func (f *Frontier) Len() int {
	n := 0
	for _, l := range f.active {
		n += len(l)
	}
	return n
}

// Begin starts building the next iteration's set: it empties the
// next-side lanes (retaining storage) and invalidates all membership
// stamps by bumping the epoch.
func (f *Frontier) Begin() {
	f.epoch++
	for k := range f.next {
		f.next[k] = f.next[k][:0]
	}
}

// Add inserts id into the next set's given lane if it is not already
// present this epoch. Duplicate adds — the common case when a changed
// tile wakes a neighbor that also changed — are O(1) no-ops.
func (f *Frontier) Add(id int32, lane int) {
	if f.mark[id] == f.epoch {
		return
	}
	f.mark[id] = f.epoch
	f.next[lane] = append(f.next[lane], id)
}

// Flip publishes the set built since Begin as the active one. The
// previously active storage becomes the next build's scratch space.
func (f *Frontier) Flip() {
	f.active, f.next = f.next, f.active
}
