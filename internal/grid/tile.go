package grid

import "fmt"

// Tile is a rectangular block of interior cells, identified by its
// (TY, TX) position in the tile lattice and its cell extent. Tiles on
// the right/bottom edge may be smaller than the nominal tile size.
type Tile struct {
	ID     int // dense index: TY*TilesX + TX
	TY, TX int // tile coordinates
	Y, X   int // top-left interior cell
	H, W   int // extent in cells
}

// Inner reports whether the tile touches no grid border, i.e. none of
// its cells is 4-connected to the sink. Inner tiles can run the
// specialized branch-free kernel (the assignment's "vectorizable"
// inner-tile variant).
func (t Tile) Inner(g *Grid) bool {
	return t.Y > 0 && t.X > 0 && t.Y+t.H < g.H() && t.X+t.W < g.W()
}

func (t Tile) String() string {
	return fmt.Sprintf("tile(%d,%d)@(%d,%d)+%dx%d", t.TY, t.TX, t.Y, t.X, t.H, t.W)
}

// Tiling decomposes a grid into TilesY×TilesX tiles of nominal size
// TileH×TileW.
type Tiling struct {
	GridH, GridW   int
	TileH, TileW   int
	TilesY, TilesX int
	tiles          []Tile
}

// NewTiling builds the tile decomposition of an h×w grid using tiles
// of th×tw cells. Tile sizes are clamped to the grid dimensions.
func NewTiling(h, w, th, tw int) *Tiling {
	if h <= 0 || w <= 0 {
		panic(fmt.Sprintf("grid: invalid grid %dx%d", h, w))
	}
	if th <= 0 || tw <= 0 {
		panic(fmt.Sprintf("grid: invalid tile %dx%d", th, tw))
	}
	if th > h {
		th = h
	}
	if tw > w {
		tw = w
	}
	ty := (h + th - 1) / th
	tx := (w + tw - 1) / tw
	tl := &Tiling{GridH: h, GridW: w, TileH: th, TileW: tw, TilesY: ty, TilesX: tx}
	tl.tiles = make([]Tile, 0, ty*tx)
	for i := 0; i < ty; i++ {
		for j := 0; j < tx; j++ {
			t := Tile{
				ID: i*tx + j,
				TY: i, TX: j,
				Y: i * th, X: j * tw,
				H: th, W: tw,
			}
			if t.Y+t.H > h {
				t.H = h - t.Y
			}
			if t.X+t.W > w {
				t.W = w - t.X
			}
			tl.tiles = append(tl.tiles, t)
		}
	}
	return tl
}

// NumTiles returns the total number of tiles.
func (tl *Tiling) NumTiles() int { return len(tl.tiles) }

// Tile returns the tile with dense index id.
func (tl *Tiling) Tile(id int) Tile { return tl.tiles[id] }

// Tiles returns all tiles in row-major order. The slice is shared; do
// not mutate it.
func (tl *Tiling) Tiles() []Tile { return tl.tiles }

// At returns the tile at tile coordinates (ty, tx).
func (tl *Tiling) At(ty, tx int) Tile { return tl.tiles[ty*tl.TilesX+tx] }

// TileOf returns the tile containing interior cell (y, x).
func (tl *Tiling) TileOf(y, x int) Tile {
	return tl.At(y/tl.TileH, x/tl.TileW)
}

// Neighbors4 appends to dst the dense indices of the up/down/left/right
// neighbors of tile id that exist, and returns the extended slice. The
// lazy engine uses this to wake tiles whose neighborhood changed.
func (tl *Tiling) Neighbors4(id int, dst []int) []int {
	t := tl.tiles[id]
	if t.TY > 0 {
		dst = append(dst, id-tl.TilesX)
	}
	if t.TY < tl.TilesY-1 {
		dst = append(dst, id+tl.TilesX)
	}
	if t.TX > 0 {
		dst = append(dst, id-1)
	}
	if t.TX < tl.TilesX-1 {
		dst = append(dst, id+1)
	}
	return dst
}

// Direction bits selecting a tile's 4-neighbors, used by the frontier
// engines to wake only the neighbors a change can actually reach.
const (
	DirUp uint8 = 1 << iota
	DirDown
	DirLeft
	DirRight
)

// Dirs lists the four direction bits for iteration.
var Dirs = [4]uint8{DirUp, DirDown, DirLeft, DirRight}

// Neighbor returns the dense id of tile id's neighbor in direction
// dir, or -1 when the tile sits on that boundary.
func (tl *Tiling) Neighbor(id int, dir uint8) int {
	t := tl.tiles[id]
	switch dir {
	case DirUp:
		if t.TY > 0 {
			return id - tl.TilesX
		}
	case DirDown:
		if t.TY < tl.TilesY-1 {
			return id + tl.TilesX
		}
	case DirLeft:
		if t.TX > 0 {
			return id - 1
		}
	case DirRight:
		if t.TX < tl.TilesX-1 {
			return id + 1
		}
	}
	return -1
}

// Neighbors4Into writes the dense indices of tile id's existing
// up/down/left/right neighbors into nb and returns how many were
// written. It is the allocation-free counterpart of Neighbors4 for the
// frontier-rebuild hot path.
func (tl *Tiling) Neighbors4Into(id int, nb *[4]int32) int {
	t := tl.tiles[id]
	n := 0
	if t.TY > 0 {
		nb[n] = int32(id - tl.TilesX)
		n++
	}
	if t.TY < tl.TilesY-1 {
		nb[n] = int32(id + tl.TilesX)
		n++
	}
	if t.TX > 0 {
		nb[n] = int32(id - 1)
		n++
	}
	if t.TX < tl.TilesX-1 {
		nb[n] = int32(id + 1)
		n++
	}
	return n
}

// Wave classifies a tile into one of the four checkerboard waves
// (TY parity, TX parity). Tiles within one wave are pairwise
// non-adjacent, so asynchronous in-place kernels may process a whole
// wave concurrently without racing on shared tile borders.
func (tl *Tiling) Wave(id int) int {
	t := tl.tiles[id]
	return (t.TY&1)<<1 | (t.TX & 1)
}

// Waves partitions all tile indices into the four checkerboard waves.
// Some waves may be empty for degenerate tilings (e.g. a single tile
// row).
func (tl *Tiling) Waves() [4][]int {
	var w [4][]int
	for id := range tl.tiles {
		k := tl.Wave(id)
		w[k] = append(w[k], id)
	}
	return w
}
