package grid

import "testing"

// Memory-layout benchmarks for the lattice: the raw access costs every
// kernel sits on.

func BenchmarkRowScan(b *testing.B) {
	g := New(1024, 1024)
	b.SetBytes(1024 * 1024 * 4)
	b.ReportAllocs()
	var sink uint32
	for i := 0; i < b.N; i++ {
		for y := 0; y < g.H(); y++ {
			for _, v := range g.Row(y) {
				sink += v
			}
		}
	}
	_ = sink
}

func BenchmarkGetSetRandomish(b *testing.B) {
	g := New(1024, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		y := (i * 7919) % 1024
		x := (i * 104729) % 1024
		g.Set(y, x, g.Get(x, y)+1)
	}
}

func BenchmarkClone(b *testing.B) {
	g := New(512, 512)
	b.SetBytes(514 * 514 * 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Clone()
	}
}

func BenchmarkTilingConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewTiling(2048, 2048, 32, 32)
	}
}

func BenchmarkNeighbors4(b *testing.B) {
	tl := NewTiling(2048, 2048, 32, 32)
	buf := make([]int, 0, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = tl.Neighbors4(i%tl.NumTiles(), buf[:0])
	}
	_ = buf
}
