// Package grid provides the two-dimensional cell lattice used by the
// Abelian-sandpile assignment, together with the tiling geometry the
// EASYPAP-style engine schedules work over.
//
// A Grid stores an H×W field of uint32 cells surrounded by a one-cell
// halo. The halo plays the role of the sandpile "sink": border cells
// of the automaton are 4-connected to it, grains that land there are
// absorbed, and halo cells are never computed. Interior coordinates
// are addressed as (y, x) with 0 ≤ y < H and 0 ≤ x < W; the underlying
// storage is row-major with stride W+2.
package grid

import (
	"fmt"
	"strings"
)

// Grid is an H×W lattice of uint32 cells with a one-cell absorbing
// halo on all four sides. The zero value is not usable; construct
// grids with New or NewFrom.
type Grid struct {
	h, w   int
	stride int
	cells  []uint32
}

// New returns an all-zero grid with h rows and w columns of interior
// cells. It panics if either dimension is not positive, mirroring the
// EASYPAP convention that kernel geometry is validated at setup time.
func New(h, w int) *Grid {
	if h <= 0 || w <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d", h, w))
	}
	return &Grid{
		h:      h,
		w:      w,
		stride: w + 2,
		cells:  make([]uint32, (h+2)*(w+2)),
	}
}

// NewFrom builds a grid from a rectangular slice of rows. All rows
// must have the same length.
func NewFrom(rows [][]uint32) *Grid {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("grid: NewFrom requires a non-empty rectangle")
	}
	g := New(len(rows), len(rows[0]))
	for y, row := range rows {
		if len(row) != g.w {
			panic(fmt.Sprintf("grid: ragged row %d: got %d cells, want %d", y, len(row), g.w))
		}
		copy(g.Row(y), row)
	}
	return g
}

// H returns the number of interior rows.
func (g *Grid) H() int { return g.h }

// W returns the number of interior columns.
func (g *Grid) W() int { return g.w }

// Stride returns the row stride of the underlying storage (W+2).
func (g *Grid) Stride() int { return g.stride }

// Cells exposes the raw backing slice, halo included. Kernels that
// need maximal throughput index it directly via Idx.
func (g *Grid) Cells() []uint32 { return g.cells }

// Idx converts interior coordinates to an index into Cells.
func (g *Grid) Idx(y, x int) int { return (y+1)*g.stride + (x + 1) }

// Get returns the value of interior cell (y, x).
func (g *Grid) Get(y, x int) uint32 { return g.cells[g.Idx(y, x)] }

// Set assigns interior cell (y, x).
func (g *Grid) Set(y, x int, v uint32) { g.cells[g.Idx(y, x)] = v }

// Add adds v to interior cell (y, x).
func (g *Grid) Add(y, x int, v uint32) { g.cells[g.Idx(y, x)] += v }

// Row returns the interior cells of row y as a slice aliasing the
// grid's storage, so writes through it mutate the grid.
func (g *Grid) Row(y int) []uint32 {
	start := (y+1)*g.stride + 1
	return g.cells[start : start+g.w : start+g.w]
}

// Fill sets every interior cell to v.
func (g *Grid) Fill(v uint32) {
	for y := 0; y < g.h; y++ {
		row := g.Row(y)
		for x := range row {
			row[x] = v
		}
	}
}

// Clone returns a deep copy of the grid, halo included.
func (g *Grid) Clone() *Grid {
	c := New(g.h, g.w)
	copy(c.cells, g.cells)
	return c
}

// CopyFrom copies the full contents (halo included) of src, which must
// have identical dimensions.
func (g *Grid) CopyFrom(src *Grid) {
	if g.h != src.h || g.w != src.w {
		panic(fmt.Sprintf("grid: CopyFrom dimension mismatch %dx%d vs %dx%d", g.h, g.w, src.h, src.w))
	}
	copy(g.cells, src.cells)
}

// ClearHalo zeroes the absorbing halo. The sandpile automaton never
// reads grains back out of the sink, but asynchronous kernels do write
// into it; clearing keeps grain-accounting queries meaningful.
func (g *Grid) ClearHalo() {
	top := g.cells[0:g.stride]
	bot := g.cells[(g.h+1)*g.stride:]
	for i := range top {
		top[i] = 0
	}
	for i := range bot {
		bot[i] = 0
	}
	for y := 1; y <= g.h; y++ {
		g.cells[y*g.stride] = 0
		g.cells[y*g.stride+g.stride-1] = 0
	}
}

// HaloSum returns the number of grains currently sitting in the sink
// halo (grains absorbed since the halo was last cleared).
func (g *Grid) HaloSum() uint64 {
	var s uint64
	for i, v := range g.cells {
		y := i / g.stride
		x := i % g.stride
		if y == 0 || y == g.h+1 || x == 0 || x == g.w+1 {
			s += uint64(v)
		}
	}
	return s
}

// Sum returns the total number of grains on interior cells.
func (g *Grid) Sum() uint64 {
	var s uint64
	for y := 0; y < g.h; y++ {
		for _, v := range g.Row(y) {
			s += uint64(v)
		}
	}
	return s
}

// Equal reports whether two grids have identical dimensions and
// identical interior contents. Halo contents are ignored: variants
// differ in what they leave in the sink.
func (g *Grid) Equal(o *Grid) bool {
	if g.h != o.h || g.w != o.w {
		return false
	}
	for y := 0; y < g.h; y++ {
		a, b := g.Row(y), o.Row(y)
		for x := range a {
			if a[x] != b[x] {
				return false
			}
		}
	}
	return true
}

// Diff returns the coordinates of up to max interior cells on which
// the two grids differ, for test diagnostics.
func (g *Grid) Diff(o *Grid, max int) []string {
	var out []string
	if g.h != o.h || g.w != o.w {
		return []string{fmt.Sprintf("dimensions differ: %dx%d vs %dx%d", g.h, g.w, o.h, o.w)}
	}
	for y := 0; y < g.h && len(out) < max; y++ {
		a, b := g.Row(y), o.Row(y)
		for x := range a {
			if a[x] != b[x] {
				out = append(out, fmt.Sprintf("(%d,%d): %d vs %d", y, x, a[x], b[x]))
				if len(out) >= max {
					break
				}
			}
		}
	}
	return out
}

// Histogram counts interior cells by value for values < buckets; cells
// with larger values are accumulated in the final bucket.
func (g *Grid) Histogram(buckets int) []int {
	h := make([]int, buckets)
	for y := 0; y < g.h; y++ {
		for _, v := range g.Row(y) {
			if int(v) < buckets-1 {
				h[v]++
			} else {
				h[buckets-1]++
			}
		}
	}
	return h
}

// String renders small grids for debugging; large grids are summarized.
func (g *Grid) String() string {
	if g.h > 32 || g.w > 32 {
		return fmt.Sprintf("Grid(%dx%d, sum=%d)", g.h, g.w, g.Sum())
	}
	var b strings.Builder
	for y := 0; y < g.h; y++ {
		for x, v := range g.Row(y) {
			if x > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
