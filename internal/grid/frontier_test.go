package grid

import "testing"

func ids(f *Frontier, lane int) []int32 {
	out := make([]int32, len(f.Lane(lane)))
	copy(out, f.Lane(lane))
	return out
}

func TestFrontierSeedAllSingleLane(t *testing.T) {
	f := NewFrontier(5, 1)
	if f.Len() != 0 {
		t.Fatalf("new frontier Len = %d, want 0", f.Len())
	}
	f.SeedAll(nil)
	got := ids(f, 0)
	if len(got) != 5 || f.Len() != 5 {
		t.Fatalf("seeded = %v (Len %d), want all 5 ids", got, f.Len())
	}
	for i, id := range got {
		if id != int32(i) {
			t.Fatalf("seeded[%d] = %d, want %d", i, id, i)
		}
	}
}

func TestFrontierSeedAllLanes(t *testing.T) {
	f := NewFrontier(10, 2)
	f.SeedAll(func(id int32) int { return int(id % 2) })
	if f.Lanes() != 2 {
		t.Fatalf("Lanes = %d, want 2", f.Lanes())
	}
	if len(f.Lane(0)) != 5 || len(f.Lane(1)) != 5 || f.Len() != 10 {
		t.Fatalf("lane split = %d/%d (Len %d), want 5/5 (10)",
			len(f.Lane(0)), len(f.Lane(1)), f.Len())
	}
	for _, id := range f.Lane(1) {
		if id%2 != 1 {
			t.Fatalf("even id %d in odd lane", id)
		}
	}
}

func TestFrontierAddDedupsWithinEpoch(t *testing.T) {
	f := NewFrontier(8, 1)
	f.Begin()
	f.Add(3, 0)
	f.Add(5, 0)
	f.Add(3, 0) // duplicate
	f.Add(5, 0) // duplicate
	f.Flip()
	got := ids(f, 0)
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("active = %v, want [3 5]", got)
	}

	// A fresh epoch must forget the previous stamps.
	f.Begin()
	f.Add(3, 0)
	f.Flip()
	if got := ids(f, 0); len(got) != 1 || got[0] != 3 {
		t.Fatalf("after re-add, active = %v, want [3]", got)
	}
}

func TestFrontierFlipRetainsStorage(t *testing.T) {
	f := NewFrontier(100, 1)
	f.SeedAll(nil)
	base := &f.Active()[0]
	f.Begin()
	for id := int32(0); id < 100; id++ {
		f.Add(id, 0)
	}
	f.Flip()
	f.Begin()
	f.Add(7, 0)
	f.Flip()
	// Two flips later we are back on the original backing array.
	if &f.Active()[0] != base {
		t.Fatal("Flip allocated new storage instead of reusing the seeded array")
	}
	if got := ids(f, 0); len(got) != 1 || got[0] != 7 {
		t.Fatalf("active = %v, want [7]", got)
	}
}

// TestFrontierRebuildZeroAlloc pins the tentpole contract: one full
// Begin/Add(+neighbors)/Flip rebuild cycle — the per-iteration work of
// the lazy engines — allocates nothing.
func TestFrontierRebuildZeroAlloc(t *testing.T) {
	tl := NewTiling(64, 64, 8, 8)
	n := tl.NumTiles()
	f := NewFrontier(n, 1)
	f.SeedAll(nil)
	var nb [4]int32
	allocs := testing.AllocsPerRun(100, func() {
		active := f.Active()
		f.Begin()
		for _, id := range active {
			if id%3 == 0 { // pretend every third tile changed
				f.Add(id, 0)
				for i, cnt := 0, tl.Neighbors4Into(int(id), &nb); i < cnt; i++ {
					f.Add(nb[i], 0)
				}
			}
		}
		f.Flip()
	})
	if allocs != 0 {
		t.Fatalf("frontier rebuild allocates %.1f per iteration, want 0", allocs)
	}
}

func TestFrontierBadGeometryPanics(t *testing.T) {
	for _, tc := range []struct{ n, lanes int }{{-1, 1}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFrontier(%d, %d) did not panic", tc.n, tc.lanes)
				}
			}()
			NewFrontier(tc.n, tc.lanes)
		}()
	}
}

func TestNeighbors4IntoMatchesNeighbors4(t *testing.T) {
	tl := NewTiling(50, 70, 16, 16)
	var nb [4]int32
	for id := 0; id < tl.NumTiles(); id++ {
		want := tl.Neighbors4(id, nil)
		cnt := tl.Neighbors4Into(id, &nb)
		if cnt != len(want) {
			t.Fatalf("tile %d: count %d, want %d", id, cnt, len(want))
		}
		for i := 0; i < cnt; i++ {
			if int(nb[i]) != want[i] {
				t.Fatalf("tile %d: neighbor[%d] = %d, want %d", id, i, nb[i], want[i])
			}
		}
	}
}
