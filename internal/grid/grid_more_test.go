package grid

import (
	"strings"
	"testing"
)

func TestAdd(t *testing.T) {
	g := New(2, 2)
	g.Set(0, 1, 3)
	g.Add(0, 1, 4)
	if g.Get(0, 1) != 7 {
		t.Fatalf("Add: got %d, want 7", g.Get(0, 1))
	}
}

func TestNewFromEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty NewFrom did not panic")
		}
	}()
	NewFrom(nil)
}

func TestCopyFromRoundTrip(t *testing.T) {
	src := NewFrom([][]uint32{{1, 2}, {3, 4}})
	dst := New(2, 2)
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatal("CopyFrom did not copy")
	}
}

func TestEqualDimensionMismatch(t *testing.T) {
	if New(2, 3).Equal(New(3, 2)) {
		t.Fatal("different shapes reported equal")
	}
}

func TestDiffDimensionMismatch(t *testing.T) {
	d := New(2, 2).Diff(New(2, 3), 5)
	if len(d) != 1 || !strings.Contains(d[0], "dimensions differ") {
		t.Fatalf("dim mismatch diff = %v", d)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := NewFrom([][]uint32{{1, 2}, {3, 4}})
	if got := small.String(); got != "1 2\n3 4\n" {
		t.Fatalf("small String = %q", got)
	}
	large := New(100, 100)
	if got := large.String(); !strings.Contains(got, "Grid(100x100") {
		t.Fatalf("large String = %q", got)
	}
}

func TestTileString(t *testing.T) {
	tl := NewTiling(8, 8, 4, 4)
	s := tl.At(1, 1).String()
	if !strings.Contains(s, "tile(1,1)") || !strings.Contains(s, "4x4") {
		t.Fatalf("tile String = %q", s)
	}
}

func TestNewTilingBadGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTiling with zero grid did not panic")
		}
	}()
	NewTiling(0, 8, 4, 4)
}
