package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTilingExactDivision(t *testing.T) {
	tl := NewTiling(64, 64, 16, 16)
	if tl.TilesY != 4 || tl.TilesX != 4 {
		t.Fatalf("tiles = %dx%d, want 4x4", tl.TilesY, tl.TilesX)
	}
	if tl.NumTiles() != 16 {
		t.Fatalf("NumTiles = %d, want 16", tl.NumTiles())
	}
	for _, tile := range tl.Tiles() {
		if tile.H != 16 || tile.W != 16 {
			t.Fatalf("tile %v has wrong extent", tile)
		}
	}
}

func TestTilingRaggedEdges(t *testing.T) {
	tl := NewTiling(10, 7, 4, 3)
	if tl.TilesY != 3 || tl.TilesX != 3 {
		t.Fatalf("tiles = %dx%d, want 3x3", tl.TilesY, tl.TilesX)
	}
	last := tl.At(2, 2)
	if last.H != 2 || last.W != 1 {
		t.Fatalf("edge tile extent = %dx%d, want 2x1", last.H, last.W)
	}
}

func TestTilingCoversGridExactlyOnce(t *testing.T) {
	for _, c := range []struct{ h, w, th, tw int }{
		{128, 128, 32, 32}, {100, 51, 16, 8}, {1, 1, 4, 4}, {7, 7, 7, 7}, {9, 5, 2, 2},
	} {
		tl := NewTiling(c.h, c.w, c.th, c.tw)
		seen := make([]int, c.h*c.w)
		for _, tile := range tl.Tiles() {
			for y := tile.Y; y < tile.Y+tile.H; y++ {
				for x := tile.X; x < tile.X+tile.W; x++ {
					seen[y*c.w+x]++
				}
			}
		}
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("%dx%d/%dx%d: cell %d covered %d times", c.h, c.w, c.th, c.tw, i, n)
			}
		}
	}
}

func TestTileClampedToGrid(t *testing.T) {
	tl := NewTiling(4, 4, 100, 100)
	if tl.NumTiles() != 1 {
		t.Fatalf("NumTiles = %d, want 1", tl.NumTiles())
	}
	tile := tl.Tile(0)
	if tile.H != 4 || tile.W != 4 {
		t.Fatalf("clamped tile = %dx%d, want 4x4", tile.H, tile.W)
	}
}

func TestTileOf(t *testing.T) {
	tl := NewTiling(64, 64, 16, 16)
	tile := tl.TileOf(17, 33)
	if tile.TY != 1 || tile.TX != 2 {
		t.Fatalf("TileOf(17,33) = (%d,%d), want (1,2)", tile.TY, tile.TX)
	}
	for _, tile := range tl.Tiles() {
		if got := tl.TileOf(tile.Y, tile.X); got.ID != tile.ID {
			t.Fatalf("TileOf top-left of %v returned %v", tile, got)
		}
	}
}

func TestInnerTiles(t *testing.T) {
	g := New(64, 64)
	tl := NewTiling(64, 64, 16, 16)
	inner := 0
	for _, tile := range tl.Tiles() {
		if tile.Inner(g) {
			inner++
			if tile.TY == 0 || tile.TX == 0 || tile.TY == tl.TilesY-1 || tile.TX == tl.TilesX-1 {
				t.Fatalf("border tile %v classified inner", tile)
			}
		}
	}
	if inner != 4 { // 2x2 interior block of a 4x4 tiling
		t.Fatalf("inner tiles = %d, want 4", inner)
	}
}

func TestNeighbors4(t *testing.T) {
	tl := NewTiling(30, 30, 10, 10) // 3x3 tiles
	center := tl.At(1, 1).ID
	n := tl.Neighbors4(center, nil)
	if len(n) != 4 {
		t.Fatalf("center neighbors = %v, want 4", n)
	}
	corner := tl.At(0, 0).ID
	n = tl.Neighbors4(corner, nil)
	if len(n) != 2 {
		t.Fatalf("corner neighbors = %v, want 2", n)
	}
	// Symmetry: if b is a neighbor of a, a is a neighbor of b.
	for id := 0; id < tl.NumTiles(); id++ {
		for _, nb := range tl.Neighbors4(id, nil) {
			back := tl.Neighbors4(nb, nil)
			found := false
			for _, b := range back {
				if b == id {
					found = true
				}
			}
			if !found {
				t.Fatalf("neighbor relation not symmetric: %d -> %d", id, nb)
			}
		}
	}
}

func TestWavesPartitionAndNonAdjacency(t *testing.T) {
	tl := NewTiling(100, 80, 16, 16)
	waves := tl.Waves()
	total := 0
	for k, wave := range waves {
		total += len(wave)
		// No two tiles in the same wave are 4-adjacent.
		inWave := make(map[int]bool, len(wave))
		for _, id := range wave {
			inWave[id] = true
		}
		for _, id := range wave {
			for _, nb := range tl.Neighbors4(id, nil) {
				if inWave[nb] {
					t.Fatalf("wave %d contains adjacent tiles %d and %d", k, id, nb)
				}
			}
		}
	}
	if total != tl.NumTiles() {
		t.Fatalf("waves cover %d tiles, want %d", total, tl.NumTiles())
	}
}

func TestQuickTilingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, w := 1+rng.Intn(200), 1+rng.Intn(200)
		th, tw := 1+rng.Intn(64), 1+rng.Intn(64)
		tl := NewTiling(h, w, th, tw)
		// Cell count conservation.
		cells := 0
		for _, tile := range tl.Tiles() {
			if tile.H <= 0 || tile.W <= 0 {
				return false
			}
			cells += tile.H * tile.W
		}
		return cells == h*w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBadTilingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTiling with zero tile did not panic")
		}
	}()
	NewTiling(10, 10, 0, 4)
}
