package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	g := New(3, 5)
	if g.H() != 3 || g.W() != 5 {
		t.Fatalf("got %dx%d, want 3x5", g.H(), g.W())
	}
	if g.Stride() != 7 {
		t.Fatalf("stride = %d, want 7", g.Stride())
	}
	if len(g.Cells()) != 5*7 {
		t.Fatalf("cells len = %d, want 35", len(g.Cells()))
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 3}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	g := New(4, 6)
	g.Set(0, 0, 7)
	g.Set(3, 5, 9)
	g.Set(2, 2, 11)
	if g.Get(0, 0) != 7 || g.Get(3, 5) != 9 || g.Get(2, 2) != 11 {
		t.Fatalf("round trip failed: %v %v %v", g.Get(0, 0), g.Get(3, 5), g.Get(2, 2))
	}
}

func TestIdxMatchesGet(t *testing.T) {
	g := New(3, 3)
	g.Set(1, 2, 42)
	if g.Cells()[g.Idx(1, 2)] != 42 {
		t.Fatal("Idx does not address the same cell as Set/Get")
	}
}

func TestHaloSeparateFromInterior(t *testing.T) {
	g := New(2, 2)
	g.Fill(3)
	if got := g.Sum(); got != 12 {
		t.Fatalf("Sum = %d, want 12", got)
	}
	if got := g.HaloSum(); got != 0 {
		t.Fatalf("HaloSum = %d, want 0", got)
	}
	// Write into halo directly and check it is not counted as interior.
	g.Cells()[0] = 99
	if got := g.Sum(); got != 12 {
		t.Fatalf("Sum after halo write = %d, want 12", got)
	}
	if got := g.HaloSum(); got != 99 {
		t.Fatalf("HaloSum = %d, want 99", got)
	}
	g.ClearHalo()
	if got := g.HaloSum(); got != 0 {
		t.Fatalf("HaloSum after ClearHalo = %d, want 0", got)
	}
	if got := g.Sum(); got != 12 {
		t.Fatalf("interior disturbed by ClearHalo: Sum = %d, want 12", got)
	}
}

func TestRowAliasesStorage(t *testing.T) {
	g := New(3, 4)
	r := g.Row(1)
	r[2] = 5
	if g.Get(1, 2) != 5 {
		t.Fatal("Row does not alias grid storage")
	}
	if len(r) != 4 {
		t.Fatalf("row length = %d, want 4", len(r))
	}
}

func TestNewFrom(t *testing.T) {
	g := NewFrom([][]uint32{{1, 2}, {3, 4}})
	if g.Get(0, 0) != 1 || g.Get(0, 1) != 2 || g.Get(1, 0) != 3 || g.Get(1, 1) != 4 {
		t.Fatalf("NewFrom misplaced values:\n%s", g)
	}
}

func TestNewFromRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged NewFrom did not panic")
		}
	}()
	NewFrom([][]uint32{{1, 2}, {3}})
}

func TestCloneIsDeep(t *testing.T) {
	g := New(2, 2)
	g.Set(0, 0, 1)
	c := g.Clone()
	c.Set(0, 0, 9)
	if g.Get(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
	if !g.Equal(g.Clone()) {
		t.Fatal("Clone not equal to original")
	}
}

func TestCopyFromMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with mismatched dims did not panic")
		}
	}()
	New(2, 2).CopyFrom(New(2, 3))
}

func TestEqualIgnoresHalo(t *testing.T) {
	a, b := New(2, 2), New(2, 2)
	a.Cells()[0] = 77 // halo-only difference
	if !a.Equal(b) {
		t.Fatal("Equal should ignore halo contents")
	}
	b.Set(1, 1, 1)
	if a.Equal(b) {
		t.Fatal("Equal missed interior difference")
	}
}

func TestDiffReportsMismatches(t *testing.T) {
	a, b := New(2, 2), New(2, 2)
	b.Set(0, 1, 5)
	b.Set(1, 0, 6)
	d := a.Diff(b, 10)
	if len(d) != 2 {
		t.Fatalf("Diff returned %d entries, want 2: %v", len(d), d)
	}
	if got := a.Diff(b, 1); len(got) != 1 {
		t.Fatalf("Diff max not honored: %v", got)
	}
}

func TestHistogram(t *testing.T) {
	g := NewFrom([][]uint32{{0, 1, 2}, {3, 3, 9}})
	h := g.Histogram(5)
	want := []int{1, 1, 1, 2, 1} // 9 falls in the overflow bucket
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("Histogram = %v, want %v", h, want)
		}
	}
}

func TestSumMatchesManualCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := New(13, 17)
	var want uint64
	for y := 0; y < 13; y++ {
		for x := 0; x < 17; x++ {
			v := uint32(rng.Intn(10))
			g.Set(y, x, v)
			want += uint64(v)
		}
	}
	if got := g.Sum(); got != want {
		t.Fatalf("Sum = %d, want %d", got, want)
	}
}

func TestFillOverwritesEverything(t *testing.T) {
	g := New(5, 5)
	g.Set(2, 2, 9)
	g.Fill(4)
	if got := g.Sum(); got != 100 {
		t.Fatalf("Sum after Fill(4) = %d, want 100", got)
	}
}

// quick-check: Set followed by Get is identity for arbitrary coords.
func TestQuickSetGet(t *testing.T) {
	f := func(yRaw, xRaw uint16, v uint32) bool {
		g := New(37, 53)
		y, x := int(yRaw)%37, int(xRaw)%53
		g.Set(y, x, v)
		return g.Get(y, x) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// quick-check: Clone always compares Equal and Sum-identical.
func TestQuickCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(1+rng.Intn(20), 1+rng.Intn(20))
		for y := 0; y < g.H(); y++ {
			for x := 0; x < g.W(); x++ {
				g.Set(y, x, uint32(rng.Intn(100)))
			}
		}
		c := g.Clone()
		return c.Equal(g) && c.Sum() == g.Sum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
