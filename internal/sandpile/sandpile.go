// Package sandpile implements the Bak–Tang–Wiesenfeld Abelian sandpile
// automaton (Bak, Tang, Wiesenfeld 1988; Dhar 1990) on a 4-connected
// N×M lattice whose border cells are connected to an absorbing sink.
//
// A cell holding fewer than 4 grains is stable. An unstable cell
// topples: it keeps grains%4 and gives grains/4 to each of its four
// neighbors. Grains pushed past the border fall into the sink and are
// lost. Dhar proved the final stable configuration is independent of
// the order in which unstable cells topple (the Abelian property),
// which is exactly what makes the model a good parallelism exercise —
// any schedule is correct, so all optimization effort can go into
// performance.
//
// This package provides the sequential kernels of the assignment's
// Figure 2 (synchronous with an auxiliary array, asynchronous
// in-place), the specialized inner-region kernel the vectorization
// assignment asks for, and the reference solver used as the oracle in
// cross-variant tests.
package sandpile

import (
	"repro/internal/grid"
)

// Threshold is the toppling threshold of the BTW model: a cell is
// stable iff it holds fewer than Threshold grains.
const Threshold = 4

// SyncStep performs one synchronous step of the automaton: every
// interior cell of cur is recomputed simultaneously into next using
//
//	next(y,x) = cur(y,x)%4 + cur(y,x-1)/4 + cur(y,x+1)/4
//	          + cur(y-1,x)/4 + cur(y+1,x)/4
//
// (the sync_compute_new_state kernel of the paper's Figure 2). The
// halo of cur acts as the sink and contributes nothing. It returns the
// number of cells whose value changed; zero means cur is stable.
func SyncStep(cur, next *grid.Grid) int {
	changes := 0
	for y := 0; y < cur.H(); y++ {
		changes += SyncRow(cur, next, y, 0, cur.W())
	}
	return changes
}

// SyncRow applies the synchronous kernel to cells [x0, x1) of row y,
// returning the number of changed cells. Parallel variants carve the
// grid into row/tile ranges and call this from multiple goroutines;
// it only writes to next, so concurrent calls on disjoint ranges are
// race-free.
//
// The row is pre-sliced to its exact extent so the compiler drops the
// per-cell bounds checks, and the left/center/right cells ride a
// sliding window: each step loads only the incoming right cell plus
// the up/down rows instead of re-reading all five stencil points. On
// amd64 rows of at least four cells take the packed two-cells-per-
// uint64 path (syncrow_amd64.go).
func SyncRow(cur, next *grid.Grid, y, x0, x1 int) int {
	stride := cur.Stride()
	c := cur.Cells()
	base := cur.Idx(y, x0)
	w := x1 - x0
	if w <= 0 {
		return 0
	}
	if usePackedRow && w >= 4 {
		return syncRowPacked(c, next.Cells(), base, stride, w)
	}
	// The explicit re-slices pin each slice's length to w (w+2 for the
	// shifted mid row), which is what lets the compiler prove every
	// index below in bounds and drop the per-cell checks.
	mid := c[base-1 : base+w+1][: w+2 : w+2] // shifted: mid[k+1] holds cell x0+k
	up := c[base-stride : base-stride+w][:w:w]
	down := c[base+stride : base+stride+w][:w:w]
	out := next.Cells()[base : base+w][:w:w]
	changes := 0
	left := mid[0]
	center := mid[1]
	for k := range out {
		right := mid[k+2]
		v := center%Threshold + left/Threshold + right/Threshold +
			up[k]/Threshold + down[k]/Threshold
		out[k] = v
		if v != center {
			changes++
		}
		left, center = center, right
	}
	return changes
}

// AsyncCell topples interior cell (y, x) in place if it is unstable
// (the async_compute_new_state kernel of the paper's Figure 2),
// distributing grains/4 to each 4-neighbor — including halo cells,
// which act as the sink. It reports whether the cell toppled.
func AsyncCell(g *grid.Grid, y, x int) bool {
	c := g.Cells()
	i := g.Idx(y, x)
	v := c[i]
	if v < Threshold {
		return false
	}
	div4 := v / Threshold
	stride := g.Stride()
	c[i-1] += div4
	c[i+1] += div4
	c[i-stride] += div4
	c[i+stride] += div4
	c[i] = v % Threshold
	return true
}

// AsyncRegion sweeps the asynchronous kernel over the cell rectangle
// [y0,y1)×[x0,x1) in row-major order, toppling in place, and returns
// the number of topplings performed. One sweep does not generally
// stabilize the region: topplings re-destabilize earlier cells.
func AsyncRegion(g *grid.Grid, y0, y1, x0, x1 int) int {
	c := g.Cells()
	stride := g.Stride()
	topples := 0
	for y := y0; y < y1; y++ {
		i := g.Idx(y, x0)
		for x := x0; x < x1; x++ {
			if v := c[i]; v >= Threshold {
				div4 := v / Threshold
				c[i-1] += div4
				c[i+1] += div4
				c[i-stride] += div4
				c[i+stride] += div4
				c[i] = v % Threshold
				topples++
			}
			i++
		}
	}
	return topples
}

// SyncRegionInner is the specialized "inner tile" synchronous kernel
// of the third assignment: it assumes the rectangle [y0,y1)×[x0,x1)
// touches no grid border, so no sink handling is required and the loop
// body is branch-free and straight-line — the shape a vectorizing
// compiler (or, here, the Go compiler's BCE) wants. Callers must
// guarantee 0 < y0, y1 < H, 0 < x0, x1 < W... the weaker and
// sufficient condition is simply that reads at ±1/±stride stay inside
// the halo, which holds for any interior rectangle. It returns the
// number of changed cells.
func SyncRegionInner(cur, next *grid.Grid, y0, y1, x0, x1 int) int {
	stride := cur.Stride()
	c := cur.Cells()
	n := next.Cells()
	changes := 0
	w := x1 - x0
	if w <= 0 {
		return 0
	}
	for y := y0; y < y1; y++ {
		base := (y+1)*stride + x0 + 1
		mid := c[base-1 : base+w+1][: w+2 : w+2] // shifted: mid[k+1] holds cell x0+k
		up := c[base-stride : base-stride+w][:w:w]
		down := c[base+stride : base+stride+w][:w:w]
		out := n[base : base+w][:w:w]
		left := mid[0]
		center := mid[1]
		for k := range out {
			right := mid[k+2]
			v := center%Threshold + left/Threshold + right/Threshold +
				up[k]/Threshold + down[k]/Threshold
			out[k] = v
			if v != center {
				changes++
			}
			left, center = center, right
		}
	}
	return changes
}

// SyncRegion applies the synchronous kernel to an arbitrary rectangle
// (outer tiles included — the halo supplies the missing neighbors). It
// is the general-purpose counterpart of SyncRegionInner.
func SyncRegion(cur, next *grid.Grid, y0, y1, x0, x1 int) int {
	changes := 0
	for y := y0; y < y1; y++ {
		changes += SyncRow(cur, next, y, x0, x1)
	}
	return changes
}

// SyncEdgeMask reports which edges of the region [y0,y1)×[x0,x1)
// changed their outward contribution between cur and next, as
// grid.Dir* bits. The synchronous kernel reads neighboring cells only
// through their value/Threshold quotient, so after a tile step the
// adjacent tile's inputs changed iff the facing bit is set — the
// frontier engines use this to wake only neighbors a change can reach.
func SyncEdgeMask(cur, next *grid.Grid, y0, y1, x0, x1 int) uint8 {
	c := cur.Cells()
	n := next.Cells()
	stride := cur.Stride()
	var m uint8
	w := x1 - x0
	top := cur.Idx(y0, x0)
	for k := 0; k < w; k++ {
		if c[top+k]/Threshold != n[top+k]/Threshold {
			m |= grid.DirUp
			break
		}
	}
	bot := cur.Idx(y1-1, x0)
	for k := 0; k < w; k++ {
		if c[bot+k]/Threshold != n[bot+k]/Threshold {
			m |= grid.DirDown
			break
		}
	}
	h := y1 - y0
	left := cur.Idx(y0, x0)
	for k, i := 0, left; k < h; k, i = k+1, i+stride {
		if c[i]/Threshold != n[i]/Threshold {
			m |= grid.DirLeft
			break
		}
	}
	right := cur.Idx(y0, x1-1)
	for k, i := 0, right; k < h; k, i = k+1, i+stride {
		if c[i]/Threshold != n[i]/Threshold {
			m |= grid.DirRight
			break
		}
	}
	return m
}

// RegionUnstable reports whether any cell in [y0,y1)×[x0,x1) holds at
// least Threshold grains. The frontier engines use it on single edge
// lines: an asleep tile can only be destabilized by grains arriving on
// a boundary line, so scanning that line decides whether a wake-up is
// needed.
func RegionUnstable(g *grid.Grid, y0, y1, x0, x1 int) bool {
	c := g.Cells()
	for y := y0; y < y1; y++ {
		base := g.Idx(y, x0)
		for i := base; i < base+(x1-x0); i++ {
			if c[i] >= Threshold {
				return true
			}
		}
	}
	return false
}

// Stable reports whether every interior cell holds fewer than
// Threshold grains.
func Stable(g *grid.Grid) bool {
	for y := 0; y < g.H(); y++ {
		for _, v := range g.Row(y) {
			if v >= Threshold {
				return false
			}
		}
	}
	return true
}

// Unstable returns the number of interior cells at or above Threshold.
func Unstable(g *grid.Grid) int {
	n := 0
	for y := 0; y < g.H(); y++ {
		for _, v := range g.Row(y) {
			if v >= Threshold {
				n++
			}
		}
	}
	return n
}
