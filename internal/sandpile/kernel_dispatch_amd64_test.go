package sandpile

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// Dispatch-selection logic: the pure function behind startup and the
// SANDPILE_KERNEL override, including the graceful non-AVX2 fallback.
func TestSelectKernel(t *testing.T) {
	cases := []struct {
		avx2  bool
		force string
		want  int
	}{
		{true, "", kernelAVX2},
		{false, "", kernelSSE2},
		{true, "avx2", kernelAVX2},
		{false, "avx2", kernelSSE2}, // requested but unavailable: fall back, don't crash
		{true, "sse2", kernelSSE2},
		{false, "sse2", kernelSSE2},
		{true, "scalar", kernelScalar},
		{false, "scalar", kernelScalar},
		{true, "bogus", kernelAVX2}, // unrecognized override: best available
		{false, "bogus", kernelSSE2},
	}
	for _, c := range cases {
		if got := selectKernel(c.avx2, c.force); got != c.want {
			t.Errorf("selectKernel(avx2=%v, force=%q) = %d, want %d", c.avx2, c.force, got, c.want)
		}
	}
}

func TestKernelNameTracksLevel(t *testing.T) {
	for _, c := range []struct {
		level int
		want  string
	}{{kernelScalar, "scalar"}, {kernelSSE2, "sse2"}, {kernelAVX2, "avx2"}} {
		restore := forceKernel(c.level)
		if got := KernelName(); got != c.want {
			t.Errorf("KernelName at level %d = %q, want %q", c.level, got, c.want)
		}
		restore()
	}
}

// availableKernels lists every dispatch level this machine can
// actually execute (scalar and SSE2 always; AVX2 when detected).
func availableKernels() []int {
	ks := []int{kernelScalar, kernelSSE2}
	if hasAVX2 {
		ks = append(ks, kernelAVX2)
	}
	return ks
}

// TestKernelCrossVariantOracle force-selects each available kernel and
// runs the same random rows through SyncRow, requiring every variant
// to agree with the scalar reference cell for cell — the randomized
// oracle the SSE2 kernel was landed under, now spanning the whole
// dispatch matrix (widths cross both the 4-lane and 8-lane
// boundaries, so AVX2 body + SSE2 remainder + scalar tail all run).
func TestKernelCrossVariantOracle(t *testing.T) {
	if !hasAVX2 {
		t.Log("AVX2 unavailable; oracle covers scalar and sse2 only")
	}
	for _, level := range availableKernels() {
		restore := forceKernel(level)
		t.Run(KernelName(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + level)))
			for trial := 0; trial < 200; trial++ {
				h := 3 + rng.Intn(6)
				w := 3 + rng.Intn(60)
				cur := grid.New(h, w)
				cells := cur.Cells()
				for i := range cells {
					cells[i] = uint32(rng.Intn(12))
				}
				next := grid.New(h, w)
				ref := grid.New(h, w)
				next.CopyFrom(cur)
				ref.CopyFrom(cur)

				y := rng.Intn(h)
				x0 := rng.Intn(w)
				x1 := x0 + 1 + rng.Intn(w-x0)

				got := SyncRow(cur, next, y, x0, x1)
				want := scalarRowRef(cur, ref, y, x0, x1)
				if got != want {
					t.Fatalf("trial %d (y=%d x=[%d,%d) of %dx%d): change count %d, want %d",
						trial, y, x0, x1, h, w, got, want)
				}
				nc, rc := next.Cells(), ref.Cells()
				for i := range nc {
					if nc[i] != rc[i] {
						t.Fatalf("trial %d (y=%d x=[%d,%d) of %dx%d): cell %d = %d, want %d",
							trial, y, x0, x1, h, w, i, nc[i], rc[i])
					}
				}
			}
		})
		restore()
	}
}

// TestKernelVariantsAgreeOnFullRelaxation runs a whole avalanche to
// fixpoint under each kernel and requires byte-identical final grids
// and identical change counts per step — variant divergence that a
// single-row oracle could miss compounds over thousands of steps.
func TestKernelVariantsAgreeOnFullRelaxation(t *testing.T) {
	type result struct {
		name    string
		steps   int
		changes []int
		cells   []uint32
	}
	var results []result
	for _, level := range availableKernels() {
		restore := forceKernel(level)
		cur := grid.New(33, 67)
		next := grid.New(33, 67)
		cur.Set(16, 33, 50000)
		cur.Set(5, 60, 9999)
		var changes []int
		steps := 0
		for {
			ch := 0
			for y := 0; y < 33; y++ {
				ch += SyncRow(cur, next, y, 0, 67)
			}
			changes = append(changes, ch)
			cur, next = next, cur
			steps++
			if ch == 0 || steps > 200000 {
				break
			}
		}
		cells := append([]uint32(nil), cur.Cells()...)
		results = append(results, result{KernelName(), steps, changes, cells})
		restore()
	}
	for _, r := range results[1:] {
		if r.steps != results[0].steps {
			t.Fatalf("%s relaxed in %d steps, %s in %d", r.name, r.steps, results[0].name, results[0].steps)
		}
		for i := range r.changes {
			if r.changes[i] != results[0].changes[i] {
				t.Fatalf("step %d: %s changed %d cells, %s changed %d",
					i, r.name, r.changes[i], results[0].name, results[0].changes[i])
			}
		}
		for i := range r.cells {
			if r.cells[i] != results[0].cells[i] {
				t.Fatalf("final grids diverge at cell %d: %s=%d %s=%d",
					i, r.name, r.cells[i], results[0].name, results[0].cells[i])
			}
		}
	}
	if testing.Verbose() {
		fmt.Printf("relaxation agreed across %d kernels in %d steps\n", len(results), results[0].steps)
	}
}
