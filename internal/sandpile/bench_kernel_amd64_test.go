package sandpile

import (
	"testing"

	"repro/internal/grid"
)

// Forced-variant benchmarks: the same row and region sweeps pinned to
// each dispatch level, so the AVX2-over-SSE2 multiple is a recorded
// number in the benchmark snapshots rather than a claim. The unforced
// BenchmarkSyncRow/BenchmarkSyncRegion* measure whatever dispatch
// picked (KernelName()).

func benchSyncRowKernel(b *testing.B, level int) {
	b.Helper()
	if level == kernelAVX2 && !hasAVX2 {
		b.Skip("AVX2 unavailable on this machine")
	}
	restore := forceKernel(level)
	defer restore()
	cur := benchGrid(1024)
	next := grid.New(1024, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SyncRow(cur, next, i%1024, 0, 1024)
	}
	b.SetBytes(1024 * 4)
}

func BenchmarkSyncRowScalar(b *testing.B) { benchSyncRowKernel(b, kernelScalar) }
func BenchmarkSyncRowSSE2(b *testing.B)   { benchSyncRowKernel(b, kernelSSE2) }
func BenchmarkSyncRowAVX2(b *testing.B)   { benchSyncRowKernel(b, kernelAVX2) }

func benchSyncRegionKernel(b *testing.B, level int) {
	b.Helper()
	if level == kernelAVX2 && !hasAVX2 {
		b.Skip("AVX2 unavailable on this machine")
	}
	restore := forceKernel(level)
	defer restore()
	cur := benchGrid(512)
	next := grid.New(512, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SyncRegionInner(cur, next, 1, 511, 1, 511)
	}
	b.SetBytes(510 * 510 * 4)
}

func BenchmarkSyncRegionInnerSSE2(b *testing.B) { benchSyncRegionKernel(b, kernelSSE2) }
func BenchmarkSyncRegionInnerAVX2(b *testing.B) { benchSyncRegionKernel(b, kernelAVX2) }
