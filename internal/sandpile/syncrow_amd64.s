//go:build amd64

#include "textflag.h"

// func syncRowSSE2(cur, nxt unsafe.Pointer, strideBytes, n uintptr) uintptr
//
// Four cells per iteration of the five-point sandpile stencil:
//
//	v = center&3 + left>>2 + right>>2 + up>>2 + down>>2   (per lane)
//
// The left/right taps are unaligned loads one cell off the center
// pointer; the caller guarantees every 16-byte window stays inside the
// halo'd grid. Unchanged cells are counted branch-free: PCMPEQL yields
// -1 per equal lane and PSUBL accumulates those into X6, so each lane
// of X6 ends up holding the count of unchanged cells at its position
// mod 4; a horizontal add folds them together.
TEXT ·syncRowSSE2(SB), NOSPLIT, $0-40
	MOVQ cur+0(FP), SI
	MOVQ nxt+8(FP), DI
	MOVQ strideBytes+16(FP), DX
	MOVQ n+24(FP), CX

	MOVQ SI, R12
	SUBQ DX, R12          // up row
	MOVQ SI, R13
	ADDQ DX, R13          // down row

	PCMPEQL X7, X7
	PSRLL   $30, X7       // X7 = 0x00000003 in every lane
	PXOR    X6, X6        // unchanged-lane accumulator
	XORQ    R9, R9        // byte offset
	SHLQ    $2, CX        // cell count -> byte count

loop:
	CMPQ R9, CX
	JGE  done
	MOVOU (SI)(R9*1), X0  // center
	MOVOU -4(SI)(R9*1), X1 // left
	MOVOU 4(SI)(R9*1), X2 // right
	MOVOU (R12)(R9*1), X3 // up
	MOVOU (R13)(R9*1), X4 // down
	PSRLL $2, X1
	PSRLL $2, X2
	PSRLL $2, X3
	PSRLL $2, X4
	MOVO  X0, X5
	PAND  X7, X5          // center % 4
	PADDL X1, X5
	PADDL X2, X5
	PADDL X3, X5
	PADDL X4, X5
	MOVOU X5, (DI)(R9*1)
	PCMPEQL X0, X5        // -1 per unchanged lane
	PSUBL X5, X6          // accumulate +1 per unchanged lane
	ADDQ  $16, R9
	JMP   loop

done:
	// Horizontal sum of X6's four lanes into every lane.
	PSHUFD $0x4E, X6, X0  // swap 64-bit halves
	PADDL  X0, X6
	PSHUFD $0xB1, X6, X0  // swap adjacent dwords
	PADDL  X0, X6
	MOVQ   X6, AX
	MOVL   AX, AX         // low lane only, zero-extended
	MOVQ   AX, ret+32(FP)
	RET
