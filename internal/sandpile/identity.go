package sandpile

// identity.go computes the identity element of the Abelian sandpile
// group — the classic extension of the sandpile exercise. Stable
// configurations under "add cellwise, then stabilize" (⊕) form a
// monoid; restricted to recurrent configurations it is a group (Dhar
// 1990), and its identity is itself a striking fractal image, very
// much in the paper's "cool and inspirational" spirit.
//
// The identity is computed with Creutz's recipe: with σ the maximal
// stable configuration (3 grains everywhere) and S(·) the
// stabilization operator,
//
//	e = S(2σ − S(2σ))
//
// 2σ − S(2σ) is the net amount stabilization "burns off", which lies
// in the recurrent class; stabilizing it yields the group identity.

import "repro/internal/grid"

// MaxStable returns σ: the all-3s maximal stable configuration.
func MaxStable(h, w int) *grid.Grid {
	g := grid.New(h, w)
	g.Fill(Threshold - 1)
	return g
}

// Add returns the cellwise sum a + b (no stabilization). Grids must
// have identical dimensions.
func Add(a, b *grid.Grid) *grid.Grid {
	out := a.Clone()
	for y := 0; y < out.H(); y++ {
		dst, src := out.Row(y), b.Row(y)
		for x := range dst {
			dst[x] += src[x]
		}
	}
	return out
}

// StableAdd returns a ⊕ b: cellwise addition followed by
// stabilization — the sandpile monoid operation.
func StableAdd(a, b *grid.Grid) *grid.Grid {
	out := Add(a, b)
	StabilizeAsyncSeq(out)
	return out
}

// Identity returns the identity element of the h×w sandpile group.
// It satisfies Identity ⊕ Identity = Identity and c ⊕ Identity = c
// for every recurrent configuration c (for example MaxStable).
func Identity(h, w int) *grid.Grid {
	sigma2 := grid.New(h, w)
	sigma2.Fill(2 * (Threshold - 1)) // 2σ
	burned := sigma2.Clone()
	StabilizeAsyncSeq(burned) // S(2σ)

	// e = S(2σ − S(2σ)), computed cellwise; 2σ ≥ S(2σ) does not hold
	// per cell in general, but the difference is taken in the group
	// sense: 2σ − S(2σ) has non-negative entries because S only moves
	// grains outward from each cell's surplus... in fact per-cell
	// 2σ(x) = 6 and S(2σ)(x) ≤ 3, so the difference is ≥ 3 > 0.
	diff := grid.New(h, w)
	for y := 0; y < h; y++ {
		d, s2, b := diff.Row(y), sigma2.Row(y), burned.Row(y)
		for x := range d {
			d[x] = s2[x] - b[x]
		}
	}
	StabilizeAsyncSeq(diff)
	return diff
}

// IsIdentityFor reports whether e is neutral for configuration c,
// i.e. c ⊕ e == c. For recurrent c this must hold for the group
// identity.
func IsIdentityFor(e, c *grid.Grid) bool {
	return StableAdd(c, e).Equal(c)
}
