package sandpile

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// scalarRowRef is the obviously-correct five-point kernel, kept free of
// windowing and slicing tricks so it can referee the packed variant.
func scalarRowRef(cur, next *grid.Grid, y, x0, x1 int) int {
	c := cur.Cells()
	n := next.Cells()
	stride := cur.Stride()
	changes := 0
	for x := x0; x < x1; x++ {
		i := cur.Idx(y, x)
		v := c[i]%Threshold + c[i-1]/Threshold + c[i+1]/Threshold +
			c[i-stride]/Threshold + c[i+stride]/Threshold
		n[i] = v
		if v != c[i] {
			changes++
		}
	}
	return changes
}

// TestSyncRowMatchesScalarReference drives SyncRow (which dispatches to
// the packed SWAR kernel on amd64) against the plain scalar kernel on
// random rows: random widths including odd ones and widths below the
// packed cutoff, random offsets so rows start at both uint64 parities,
// and values well past Threshold.
func TestSyncRowMatchesScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		h := 3 + rng.Intn(6)
		w := 3 + rng.Intn(40)
		cur := grid.New(h, w)
		cells := cur.Cells()
		for i := range cells {
			cells[i] = uint32(rng.Intn(12)) // halo too: sink cells hold junk safely below overflow
		}
		next := grid.New(h, w)
		ref := grid.New(h, w)
		next.CopyFrom(cur)
		ref.CopyFrom(cur)

		y := rng.Intn(h)
		x0 := rng.Intn(w)
		x1 := x0 + 1 + rng.Intn(w-x0)

		got := SyncRow(cur, next, y, x0, x1)
		want := scalarRowRef(cur, ref, y, x0, x1)
		if got != want {
			t.Fatalf("trial %d (y=%d x=[%d,%d) of %dx%d): change count %d, want %d",
				trial, y, x0, x1, h, w, got, want)
		}
		nc, rc := next.Cells(), ref.Cells()
		for i := range nc {
			if nc[i] != rc[i] {
				t.Fatalf("trial %d (y=%d x=[%d,%d) of %dx%d): cell %d = %d, want %d",
					trial, y, x0, x1, h, w, i, nc[i], rc[i])
			}
		}
	}
}

// TestPackedRowMatchesScalarReference exercises syncRowPacked directly
// (bypassing SyncRow's width cutoff) where the packed kernel exists.
func TestPackedRowMatchesScalarReference(t *testing.T) {
	if !hasPackedSyncRow {
		t.Skip("no packed kernel on this architecture")
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		h := 3 + rng.Intn(5)
		w := 4 + rng.Intn(60)
		cur := grid.New(h, w)
		cells := cur.Cells()
		for i := range cells {
			cells[i] = uint32(rng.Intn(9))
		}
		next := grid.New(h, w)
		ref := grid.New(h, w)
		next.CopyFrom(cur)
		ref.CopyFrom(cur)

		y := rng.Intn(h)
		x0 := rng.Intn(w - 2)
		span := 2 + rng.Intn(w-x0-2+1)
		x1 := x0 + span

		got := syncRowPacked(cur.Cells(), next.Cells(), cur.Idx(y, x0), cur.Stride(), span)
		want := scalarRowRef(cur, ref, y, x0, x1)
		if got != want {
			t.Fatalf("trial %d (y=%d x=[%d,%d) of %dx%d): change count %d, want %d",
				trial, y, x0, x1, h, w, got, want)
		}
		nc, rc := next.Cells(), ref.Cells()
		for i := range nc {
			if nc[i] != rc[i] {
				t.Fatalf("trial %d (y=%d x=[%d,%d) of %dx%d): cell %d = %d, want %d",
					trial, y, x0, x1, h, w, i, nc[i], rc[i])
			}
		}
	}
}
