package sandpile

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// Kernel micro-benchmarks: the per-cell costs the tiling and
// vectorization sub-assignments optimize.

func benchGrid(n int) *grid.Grid {
	return Random(12).Build(n, n, rand.New(rand.NewSource(1)))
}

func BenchmarkSyncRow(b *testing.B) {
	cur := benchGrid(1024)
	next := grid.New(1024, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SyncRow(cur, next, i%1024, 0, 1024)
	}
	b.SetBytes(1024 * 4)
}

func BenchmarkSyncRegionGuarded(b *testing.B) {
	cur := benchGrid(512)
	next := grid.New(512, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SyncRegion(cur, next, 1, 511, 1, 511)
	}
	b.SetBytes(510 * 510 * 4)
}

func BenchmarkSyncRegionInner(b *testing.B) {
	cur := benchGrid(512)
	next := grid.New(512, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SyncRegionInner(cur, next, 1, 511, 1, 511)
	}
	b.SetBytes(510 * 510 * 4)
}

// BenchmarkSyncRegionTile32 measures the kernel at the frontier
// engines' actual call shape: one 32×32 tile inside a 512-wide grid.
func BenchmarkSyncRegionTile32(b *testing.B) {
	cur := benchGrid(512)
	next := grid.New(512, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SyncRegion(cur, next, 64, 96, 64, 96)
	}
	b.SetBytes(32 * 32 * 4)
}

func BenchmarkAsyncRegionSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := benchGrid(512)
		b.StartTimer()
		AsyncRegion(g, 0, 512, 0, 512)
	}
	b.SetBytes(512 * 512 * 4)
}

func BenchmarkStabilizeAsyncCenter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := Center(10000).Build(128, 128, nil)
		b.StartTimer()
		StabilizeAsyncSeq(g)
	}
}

func BenchmarkStabilizeSyncCenter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := Center(10000).Build(128, 128, nil)
		b.StartTimer()
		StabilizeSyncSeq(g)
	}
}
