//go:build !amd64

package sandpile

// Architectures without guaranteed-cheap unaligned 8-byte loads use
// the scalar row kernel; see syncrow_amd64.go for the packed variant.

const hasPackedSyncRow = false

// usePackedRow mirrors the amd64 dispatch gate; constant false keeps
// the packed call dead-code-eliminated here.
const usePackedRow = false

// KernelName reports the selected row kernel; always "scalar" off
// amd64.
func KernelName() string { return "scalar" }

func syncRowPacked(c, n []uint32, base, stride, w int) int {
	panic("sandpile: packed kernel unavailable on this architecture")
}
