//go:build amd64

package sandpile

import "unsafe"

// Vectorized synchronous kernel: the five-point BTW stencil is
// embarrassingly lane-parallel — each output cell is
//
//	center%4 + left/4 + right/4 + up/4 + down/4
//
// with %4 = AND 3 and /4 = logical shift, both of which SSE2 applies
// per 32-bit lane with no cross-lane interaction. The assembly kernel
// (syncrow_amd64.s) processes four cells per iteration with unaligned
// 16-byte loads (the left/right taps are the center load shifted one
// cell, always inside the halo'd backing array) and counts changed
// cells branch-free by accumulating PCMPEQL masks. SSE2 is part of the
// amd64 baseline, so no feature detection is needed; other
// architectures use the scalar row kernel.

const hasPackedSyncRow = true

// syncRowSSE2 computes n cells (n % 4 == 0) of an interior row, where
// cur/nxt point at the first cell in the current/next buffers and
// strideBytes is the row stride in bytes. It returns the number of
// UNchanged cells (the natural output of accumulating equality masks).
// All 16-byte taps must stay inside the backing arrays; syncRowPacked
// establishes that.
//
//go:noescape
func syncRowSSE2(cur, nxt unsafe.Pointer, strideBytes, n uintptr) uintptr

// syncRowPacked computes w cells of an interior row (base is the flat
// index of the first cell) via the SSE2 kernel plus a scalar tail.
// Requires w >= 2 and a halo cell on each side of the row.
func syncRowPacked(c, n []uint32, base, stride, w int) int {
	// Touch the extreme indices once so the raw-pointer kernel below
	// is covered by real bounds checks. The furthest taps are the
	// right load of the last vector group (cell base+w at most) and
	// the down load (base+stride+w-1 at most).
	_ = c[base+stride+w-1]
	_ = c[base-stride-1]
	_ = c[base+w]
	_ = n[base+w-1]

	changes := 0
	w4 := w &^ 3
	if w4 > 0 {
		unchanged := syncRowSSE2(
			unsafe.Pointer(&c[base]), unsafe.Pointer(&n[base]),
			uintptr(stride)*4, uintptr(w4))
		changes = w4 - int(unchanged)
	}
	// Scalar tail for the last w%4 cells.
	for k := w4; k < w; k++ {
		i := base + k
		v := c[i]%Threshold + c[i-1]/Threshold + c[i+1]/Threshold +
			c[i-stride]/Threshold + c[i+stride]/Threshold
		n[i] = v
		if v != c[i] {
			changes++
		}
	}
	return changes
}
