//go:build amd64

package sandpile

import (
	"os"
	"unsafe"
)

// Vectorized synchronous kernel: the five-point BTW stencil is
// embarrassingly lane-parallel — each output cell is
//
//	center%4 + left/4 + right/4 + up/4 + down/4
//
// with %4 = AND 3 and /4 = logical shift, both of which SIMD applies
// per 32-bit lane with no cross-lane interaction. Two assembly
// kernels implement it: the SSE2 baseline (syncrow_amd64.s, four
// cells per iteration — SSE2 is part of the amd64 baseline, always
// safe) and an AVX2 widening (syncrow_avx2_amd64.s, eight cells per
// iteration) selected at startup when CPUID/XGETBV prove the CPU and
// OS both support YMM state (cpu_amd64.go). Both use unaligned loads
// for the left/right taps (the center load shifted one cell, always
// inside the halo'd backing array) and count changed cells
// branch-free by accumulating compare masks. Other architectures use
// the scalar row kernel.

const hasPackedSyncRow = true

// Row-kernel dispatch levels, ascending capability. Startup picks the
// best the machine supports; SANDPILE_KERNEL=scalar|sse2|avx2
// force-selects one for tests and benchmarking (requesting avx2 on a
// machine without it falls back to sse2, never crashes).
const (
	kernelScalar = iota
	kernelSSE2
	kernelAVX2
)

var (
	hasAVX2      = detectAVX2()
	kernelLevel  = selectKernel(hasAVX2, os.Getenv("SANDPILE_KERNEL"))
	usePackedRow = kernelLevel > kernelScalar
)

// selectKernel resolves the dispatch level from the detected features
// and the SANDPILE_KERNEL override. Pure function; tested directly.
func selectKernel(avx2 bool, force string) int {
	switch force {
	case "scalar":
		return kernelScalar
	case "sse2":
		return kernelSSE2
	case "avx2":
		if avx2 {
			return kernelAVX2
		}
		return kernelSSE2 // graceful fallback, not a crash
	}
	// Empty or unrecognized override: best available.
	if avx2 {
		return kernelAVX2
	}
	return kernelSSE2
}

// forceKernel pins the dispatch to level and returns a restore func;
// tests use it to drive every variant on one machine. Not safe under
// concurrent Sync calls.
func forceKernel(level int) func() {
	prevLevel, prevUse := kernelLevel, usePackedRow
	kernelLevel, usePackedRow = level, level > kernelScalar
	return func() { kernelLevel, usePackedRow = prevLevel, prevUse }
}

// KernelName reports the selected row kernel: "scalar", "sse2", or
// "avx2".
func KernelName() string {
	switch kernelLevel {
	case kernelAVX2:
		return "avx2"
	case kernelSSE2:
		return "sse2"
	}
	return "scalar"
}

// syncRowSSE2 computes n cells (n % 4 == 0) of an interior row, where
// cur/nxt point at the first cell in the current/next buffers and
// strideBytes is the row stride in bytes. It returns the number of
// UNchanged cells (the natural output of accumulating equality masks).
// All 16-byte taps must stay inside the backing arrays; syncRowPacked
// establishes that.
//
//go:noescape
func syncRowSSE2(cur, nxt unsafe.Pointer, strideBytes, n uintptr) uintptr

// syncRowAVX2 is the same contract as syncRowSSE2 with n % 8 == 0 and
// 32-byte taps; callers must have verified detectAVX2.
//
//go:noescape
func syncRowAVX2(cur, nxt unsafe.Pointer, strideBytes, n uintptr) uintptr

// syncRowPacked computes w cells of an interior row (base is the flat
// index of the first cell) through the dispatched kernels: AVX2 over
// the 8-aligned prefix when selected, SSE2 over the remaining
// 4-aligned chunk, scalar for the tail. Requires w >= 2 and a halo
// cell on each side of the row.
func syncRowPacked(c, n []uint32, base, stride, w int) int {
	// Touch the extreme indices once so the raw-pointer kernels below
	// are covered by real bounds checks. The furthest taps are the
	// right load of the last vector group (cell base+w at most) and
	// the down load (base+stride+w-1 at most).
	_ = c[base+stride+w-1]
	_ = c[base-stride-1]
	_ = c[base+w]
	_ = n[base+w-1]

	changes, k := 0, 0
	if kernelLevel >= kernelAVX2 {
		if w8 := w &^ 7; w8 > 0 {
			unchanged := syncRowAVX2(
				unsafe.Pointer(&c[base]), unsafe.Pointer(&n[base]),
				uintptr(stride)*4, uintptr(w8))
			changes, k = w8-int(unchanged), w8
		}
	}
	if rem := (w - k) &^ 3; rem > 0 {
		unchanged := syncRowSSE2(
			unsafe.Pointer(&c[base+k]), unsafe.Pointer(&n[base+k]),
			uintptr(stride)*4, uintptr(rem))
		changes += rem - int(unchanged)
		k += rem
	}
	// Scalar tail for the cells no vector width covers.
	for ; k < w; k++ {
		i := base + k
		v := c[i]%Threshold + c[i-1]/Threshold + c[i+1]/Threshold +
			c[i-stride]/Threshold + c[i+stride]/Threshold
		n[i] = v
		if v != c[i] {
			changes++
		}
	}
	return changes
}
