//go:build amd64

package sandpile

// Runtime CPU-feature detection via raw CPUID/XGETBV (cpu_amd64.s) —
// the same checks golang.org/x/sys/cpu performs, done directly so the
// module stays dependency-free.

func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// detectAVX2 reports whether AVX2 kernels may run: the CPU must
// advertise AVX2, and the OS must have enabled saving the XMM and YMM
// register state (OSXSAVE set and XCR0 bits 1–2 set) — AVX
// instructions fault on kernels that don't context-switch YMM state,
// however capable the silicon.
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&(osxsave|avx) != osxsave|avx {
		return false
	}
	if xeax, _ := xgetbv0(); xeax&6 != 6 { // XMM and YMM state enabled
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}
