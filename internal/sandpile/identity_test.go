package sandpile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func TestIdentityIsStable(t *testing.T) {
	e := Identity(32, 32)
	if !Stable(e) {
		t.Fatal("identity not stable")
	}
}

func TestIdentityIdempotent(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 32} {
		e := Identity(n, n)
		if !StableAdd(e, e).Equal(e) {
			t.Fatalf("%dx%d: e ⊕ e != e", n, n)
		}
	}
}

func TestIdentityNeutralOnMaxStable(t *testing.T) {
	// σ (all 3s) is always recurrent; the identity must fix it.
	for _, n := range []int{2, 8, 24} {
		e := Identity(n, n)
		sigma := MaxStable(n, n)
		if !IsIdentityFor(e, sigma) {
			t.Fatalf("%dx%d: σ ⊕ e != σ", n, n)
		}
	}
}

func TestIdentityNeutralOnRecurrentConfigs(t *testing.T) {
	// Recurrent configurations are exactly those reachable as
	// S(σ + a) for a ≥ 0; the identity must fix all of them.
	rng := rand.New(rand.NewSource(4))
	e := Identity(20, 20)
	for trial := 0; trial < 5; trial++ {
		c := StableAdd(MaxStable(20, 20), Random(6).Build(20, 20, rng))
		if !IsIdentityFor(e, c) {
			t.Fatalf("trial %d: recurrent c ⊕ e != c", trial)
		}
	}
}

func TestIdentityNotNeutralOnTransientConfig(t *testing.T) {
	// The empty configuration is transient (not recurrent) on any
	// grid large enough that e != 0, so e does not fix it — the
	// group structure only exists on the recurrent class.
	e := Identity(16, 16)
	zero := grid.New(16, 16)
	if e.Sum() == 0 {
		t.Fatal("16x16 identity should be non-trivial")
	}
	if IsIdentityFor(e, zero) {
		t.Fatal("identity fixed the transient empty configuration")
	}
}

func TestIdentityRectangular(t *testing.T) {
	e := Identity(12, 30)
	if !Stable(e) || !StableAdd(e, e).Equal(e) {
		t.Fatal("rectangular identity broken")
	}
	if !IsIdentityFor(e, MaxStable(12, 30)) {
		t.Fatal("rectangular identity not neutral on σ")
	}
}

func TestIdentity1x1IsZero(t *testing.T) {
	e := Identity(1, 1)
	if e.Get(0, 0) != 0 {
		t.Fatalf("1x1 identity = %d, want 0", e.Get(0, 0))
	}
}

func TestAddAndStableAdd(t *testing.T) {
	a := grid.NewFrom([][]uint32{{2, 3}, {1, 0}})
	b := grid.NewFrom([][]uint32{{1, 1}, {2, 3}})
	sum := Add(a, b)
	want := grid.NewFrom([][]uint32{{3, 4}, {3, 3}})
	if !sum.Equal(want) {
		t.Fatalf("Add wrong:\n%v", sum)
	}
	if a.Get(0, 0) != 2 || b.Get(0, 0) != 1 {
		t.Fatal("Add mutated its inputs")
	}
	st := StableAdd(a, b)
	if !Stable(st) {
		t.Fatal("StableAdd result unstable")
	}
}

// quick-check: ⊕ is commutative and associative on stabilized
// results — the monoid laws the sandpile group is built on.
func TestQuickMonoidLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		a := Random(5).Build(n, n, rng)
		b := Random(5).Build(n, n, rng)
		c := Random(5).Build(n, n, rng)
		StabilizeAsyncSeq(a)
		StabilizeAsyncSeq(b)
		StabilizeAsyncSeq(c)
		if !StableAdd(a, b).Equal(StableAdd(b, a)) {
			return false
		}
		return StableAdd(StableAdd(a, b), c).Equal(StableAdd(a, StableAdd(b, c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityMatchesKnownSmallCase(t *testing.T) {
	// The 2x2 sandpile identity is the all-2 configuration (a small
	// classic; e.g. Perkinson's notes).
	e := Identity(2, 2)
	for y := 0; y < 2; y++ {
		for x := 0; x < 2; x++ {
			if e.Get(y, x) != 2 {
				t.Fatalf("2x2 identity:\n%v\nwant all 2s", e)
			}
		}
	}
}
