//go:build amd64

#include "textflag.h"

// func syncRowAVX2(cur, nxt unsafe.Pointer, strideBytes, n uintptr) uintptr
//
// Eight cells per iteration of the five-point sandpile stencil — the
// YMM widening of syncRowSSE2 (same register roles, same branch-free
// unchanged-count):
//
//	v = center&3 + left>>2 + right>>2 + up>>2 + down>>2   (per lane)
//
// The left/right taps are unaligned loads one cell off the center
// pointer; the caller guarantees every 32-byte window stays inside the
// halo'd grid. VPCMPEQD yields -1 per unchanged lane and VPSUBD
// accumulates those into Y6; the horizontal sum folds the eight lanes
// through an XMM reduction. VZEROUPPER before returning keeps the
// SSE2 kernel (which may run next for the remainder) off the
// AVX-to-SSE transition penalty.
TEXT ·syncRowAVX2(SB), NOSPLIT, $0-40
	MOVQ cur+0(FP), SI
	MOVQ nxt+8(FP), DI
	MOVQ strideBytes+16(FP), DX
	MOVQ n+24(FP), CX

	MOVQ SI, R12
	SUBQ DX, R12          // up row
	MOVQ SI, R13
	ADDQ DX, R13          // down row

	VPCMPEQD Y7, Y7, Y7
	VPSRLD   $30, Y7, Y7  // Y7 = 0x00000003 in every lane
	VPXOR    Y6, Y6, Y6   // unchanged-lane accumulator
	XORQ     R9, R9       // byte offset
	SHLQ     $2, CX       // cell count -> byte count

loop:
	CMPQ R9, CX
	JGE  done
	VMOVDQU (SI)(R9*1), Y0   // center
	VMOVDQU -4(SI)(R9*1), Y1 // left
	VMOVDQU 4(SI)(R9*1), Y2  // right
	VMOVDQU (R12)(R9*1), Y3  // up
	VMOVDQU (R13)(R9*1), Y4  // down
	VPSRLD  $2, Y1, Y1
	VPSRLD  $2, Y2, Y2
	VPSRLD  $2, Y3, Y3
	VPSRLD  $2, Y4, Y4
	VPAND   Y7, Y0, Y5       // center % 4
	VPADDD  Y1, Y5, Y5
	VPADDD  Y2, Y5, Y5
	VPADDD  Y3, Y5, Y5
	VPADDD  Y4, Y5, Y5
	VMOVDQU Y5, (DI)(R9*1)
	VPCMPEQD Y0, Y5, Y5      // -1 per unchanged lane
	VPSUBD  Y5, Y6, Y6       // accumulate +1 per unchanged lane
	ADDQ    $32, R9
	JMP     loop

done:
	// Horizontal sum of Y6's eight lanes.
	VEXTRACTI128 $1, Y6, X0
	VPADDD  X0, X6, X6    // fold high 128 into low
	VPSHUFD $0x4E, X6, X0 // swap 64-bit halves
	VPADDD  X0, X6, X6
	VPSHUFD $0xB1, X6, X0 // swap adjacent dwords
	VPADDD  X0, X6, X6
	VMOVD   X6, AX        // low lane, zero-extended
	VZEROUPPER
	MOVQ    AX, ret+32(FP)
	RET
