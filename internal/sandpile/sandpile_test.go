package sandpile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func TestAsyncCellPaperExample(t *testing.T) {
	// The paper's example: a cell with 11 grains gives 2 to each
	// neighbor and keeps 3.
	g := grid.New(3, 3)
	g.Set(1, 1, 11)
	if !AsyncCell(g, 1, 1) {
		t.Fatal("unstable cell did not topple")
	}
	if got := g.Get(1, 1); got != 3 {
		t.Fatalf("center kept %d grains, want 3", got)
	}
	for _, nb := range [][2]int{{0, 1}, {2, 1}, {1, 0}, {1, 2}} {
		if got := g.Get(nb[0], nb[1]); got != 2 {
			t.Fatalf("neighbor %v got %d grains, want 2", nb, got)
		}
	}
}

func TestAsyncCellStableNoop(t *testing.T) {
	g := grid.New(3, 3)
	for v := uint32(0); v < Threshold; v++ {
		g.Set(1, 1, v)
		if AsyncCell(g, 1, 1) {
			t.Fatalf("stable cell with %d grains toppled", v)
		}
		if g.Get(1, 1) != v {
			t.Fatalf("stable cell mutated: %d -> %d", v, g.Get(1, 1))
		}
	}
}

func TestAsyncCellBorderSpillsToSink(t *testing.T) {
	g := grid.New(2, 2)
	g.Set(0, 0, 8) // corner: two neighbors are sink
	AsyncCell(g, 0, 0)
	if got := g.Get(0, 0); got != 0 {
		t.Fatalf("corner kept %d, want 0", got)
	}
	if got := g.Get(0, 1); got != 2 {
		t.Fatalf("right neighbor = %d, want 2", got)
	}
	if got := g.Get(1, 0); got != 2 {
		t.Fatalf("down neighbor = %d, want 2", got)
	}
	if got := g.HaloSum(); got != 4 {
		t.Fatalf("sink absorbed %d, want 4", got)
	}
}

func TestSyncStepMatchesFormula(t *testing.T) {
	// 1x3 strip: [5, 0, 4] -> center receives 5/4 + 4/4 = 2.
	g := grid.NewFrom([][]uint32{{5, 0, 4}})
	next := grid.New(1, 3)
	ch := SyncStep(g, next)
	want := []uint32{1, 2, 0}
	for x, v := range want {
		if got := next.Get(0, x); got != v {
			t.Fatalf("next[%d] = %d, want %d", x, got, v)
		}
	}
	if ch != 3 {
		t.Fatalf("changed = %d, want 3", ch)
	}
}

func TestSyncStepStableFixedPoint(t *testing.T) {
	g := grid.NewFrom([][]uint32{{3, 2, 1}, {0, 3, 2}})
	next := grid.New(2, 3)
	if ch := SyncStep(g, next); ch != 0 {
		t.Fatalf("stable grid changed %d cells", ch)
	}
	if !next.Equal(g) {
		t.Fatal("stable grid not preserved by sync step")
	}
}

func TestStableUnstable(t *testing.T) {
	g := grid.New(4, 4)
	g.Fill(3)
	if !Stable(g) || Unstable(g) != 0 {
		t.Fatal("all-3 grid should be stable")
	}
	g.Set(2, 2, 4)
	if Stable(g) {
		t.Fatal("grid with a 4 should be unstable")
	}
	if Unstable(g) != 1 {
		t.Fatalf("Unstable = %d, want 1", Unstable(g))
	}
}

func TestStabilizeUniform4Empties16x16ToStable(t *testing.T) {
	g := Uniform(4).Build(16, 16, nil)
	res := StabilizeAsyncSeq(g)
	if !Stable(g) {
		t.Fatal("not stable after StabilizeAsyncSeq")
	}
	if res.Absorbed == 0 {
		t.Fatal("uniform-4 on a finite grid must shed grains into the sink")
	}
	if res.Absorbed+g.Sum() != 4*16*16 {
		t.Fatalf("grain accounting broken: absorbed=%d + remaining=%d != %d",
			res.Absorbed, g.Sum(), 4*16*16)
	}
}

func TestSyncAsyncSameFixedPointSmall(t *testing.T) {
	for _, cfg := range []Config{Center(64), Center(1000), Uniform(4), Uniform(6)} {
		a := cfg.Build(17, 17, nil)
		b := a.Clone()
		StabilizeAsyncSeq(a)
		StabilizeSyncSeq(b)
		if !a.Equal(b) {
			t.Fatalf("%s: sync and async fixed points differ: %v", cfg.Name, a.Diff(b, 5))
		}
	}
}

// TestQuickAbelianSyncAsync is the master property test for the Dhar
// theorem: the fixed point is schedule-independent, so the synchronous
// and asynchronous solvers must agree on random configurations.
func TestQuickAbelianSyncAsync(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, w := 1+rng.Intn(24), 1+rng.Intn(24)
		a := Random(12).Build(h, w, rng)
		b := a.Clone()
		StabilizeAsyncSeq(a)
		StabilizeSyncSeq(b)
		return a.Equal(b) && Stable(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAbelianSweepOrder checks schedule independence another way:
// stabilizing by column-major region sweeps must match row-major.
func TestQuickAbelianSweepOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, w := 2+rng.Intn(20), 2+rng.Intn(20)
		a := Random(10).Build(h, w, rng)
		b := a.Clone()
		StabilizeAsyncSeq(a)
		// Column-by-column async stabilization.
		for it := 0; ; it++ {
			topples := 0
			for x := 0; x < w; x++ {
				topples += AsyncRegion(b, 0, h, x, x+1)
			}
			if topples == 0 {
				break
			}
			if it > MaxIterations {
				return false
			}
		}
		b.ClearHalo()
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGrainConservation(t *testing.T) {
	// Grains never appear from nowhere: absorbed + remaining == initial.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random(20).Build(1+rng.Intn(16), 1+rng.Intn(16), rng)
		initial := g.Sum()
		res := StabilizeAsyncSeq(g)
		return res.Absorbed+g.Sum() == initial
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSyncRegionInnerMatchesGuarded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cur := Random(15).Build(24, 24, rng)
	a := grid.New(24, 24)
	b := grid.New(24, 24)
	// Interior rectangle only (inner kernel's contract).
	chA := SyncRegion(cur, a, 4, 20, 4, 20)
	chB := SyncRegionInner(cur, b, 4, 20, 4, 20)
	if chA != chB {
		t.Fatalf("change counts differ: guarded=%d inner=%d", chA, chB)
	}
	for y := 4; y < 20; y++ {
		for x := 4; x < 20; x++ {
			if a.Get(y, x) != b.Get(y, x) {
				t.Fatalf("cell (%d,%d): guarded=%d inner=%d", y, x, a.Get(y, x), b.Get(y, x))
			}
		}
	}
}

func TestQuickInnerKernelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, w := 6+rng.Intn(20), 6+rng.Intn(20)
		cur := Random(9).Build(h, w, rng)
		y0, x0 := 1+rng.Intn(2), 1+rng.Intn(2)
		y1, x1 := h-1-rng.Intn(2), w-1-rng.Intn(2)
		a, b := grid.New(h, w), grid.New(h, w)
		if SyncRegion(cur, a, y0, y1, x0, x1) != SyncRegionInner(cur, b, y0, y1, x0, x1) {
			return false
		}
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				if a.Get(y, x) != b.Get(y, x) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCenterConfigPlacement(t *testing.T) {
	g := Center(25000).Build(128, 128, nil)
	if g.Get(64, 64) != 25000 {
		t.Fatalf("center cell = %d, want 25000", g.Get(64, 64))
	}
	if g.Sum() != 25000 {
		t.Fatalf("total grains = %d, want 25000", g.Sum())
	}
}

func TestSparseConfigDeterministicWithSeed(t *testing.T) {
	a := Sparse(0.01, 400).Build(64, 64, rand.New(rand.NewSource(5)))
	b := Sparse(0.01, 400).Build(64, 64, rand.New(rand.NewSource(5)))
	if !a.Equal(b) {
		t.Fatal("Sparse with identical seeds produced different grids")
	}
	if a.Sum() == 0 {
		t.Fatal("Sparse produced an empty grid")
	}
}

func TestSparseNilRngDefaults(t *testing.T) {
	a := Sparse(0.01, 100).Build(32, 32, nil)
	b := Sparse(0.01, 100).Build(32, 32, nil)
	if !a.Equal(b) {
		t.Fatal("Sparse with nil rng should be deterministic")
	}
}

func TestResultStringIsInformative(t *testing.T) {
	s := Result{Iterations: 3, Topples: 10, Absorbed: 2}.String()
	if s != "iterations=3 topples=10 absorbed=2" {
		t.Fatalf("unexpected Result string %q", s)
	}
}

func TestStabilizeCenter25000Is128Reproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig 1a stabilization in -short mode")
	}
	g := Center(25000).Build(128, 128, nil)
	res := StabilizeAsyncSeq(g)
	if !Stable(g) {
		t.Fatal("not stable")
	}
	// The pile fits the 128x128 grid: nothing reaches the sink, so the
	// fractal is complete and conservation is exact.
	if res.Absorbed != 0 {
		t.Fatalf("absorbed = %d, want 0 (pile should fit the grid)", res.Absorbed)
	}
	if g.Sum() != 25000 {
		t.Fatalf("grains = %d, want 25000", g.Sum())
	}
	// Deterministic artifact: the four-fold symmetry of the fixed point.
	for y := 0; y < 128; y++ {
		for x := 0; x < 128; x++ {
			if g.Get(y, x) != g.Get(x, y) {
				t.Fatalf("fixed point not symmetric at (%d,%d)", y, x)
			}
		}
	}
}
