package sandpile

import (
	"fmt"
	"math/rand"

	"repro/internal/grid"
)

// Config names an initial sandpile configuration. The two headline
// configurations are the ones in the paper's Figure 1; Sparse is the
// load-imbalance workload of Figure 3; Random drives property tests.
type Config struct {
	// Name identifies the configuration in CLIs and bench output.
	Name string
	// Build fills an h×w grid with the initial grains. The rng is
	// only consulted by stochastic configurations and may be nil for
	// deterministic ones.
	Build func(h, w int, rng *rand.Rand) *grid.Grid
}

// Center returns the Figure 1a configuration generalized to any grain
// count: all grains stacked on the single center cell.
func Center(grains uint32) Config {
	return Config{
		Name: fmt.Sprintf("center-%d", grains),
		Build: func(h, w int, _ *rand.Rand) *grid.Grid {
			g := grid.New(h, w)
			g.Set(h/2, w/2, grains)
			return g
		},
	}
}

// Uniform returns the Figure 1b configuration generalized to any
// per-cell grain count: every cell starts with the same number of
// grains. The paper uses 4, the smallest uniformly unstable value.
func Uniform(grains uint32) Config {
	return Config{
		Name: fmt.Sprintf("uniform-%d", grains),
		Build: func(h, w int, _ *rand.Rand) *grid.Grid {
			g := grid.New(h, w)
			g.Fill(grains)
			return g
		},
	}
}

// Sparse returns the Figure 3 workload: a small number of distant tall
// piles on an otherwise empty grid, which produces the strong load
// imbalance the lazy/scheduling assignment studies. density is the
// fraction of cells seeded (e.g. 0.001); height is the pile height.
func Sparse(density float64, height uint32) Config {
	return Config{
		Name: fmt.Sprintf("sparse-%g-%d", density, height),
		Build: func(h, w int, rng *rand.Rand) *grid.Grid {
			if rng == nil {
				rng = rand.New(rand.NewSource(42))
			}
			g := grid.New(h, w)
			n := int(float64(h*w) * density)
			if n < 1 {
				n = 1
			}
			for k := 0; k < n; k++ {
				g.Set(rng.Intn(h), rng.Intn(w), height)
			}
			return g
		},
	}
}

// Random returns a configuration with every cell drawn uniformly from
// [0, max]. It is the workhorse of the Abelian-property tests.
func Random(max uint32) Config {
	return Config{
		Name: fmt.Sprintf("random-%d", max),
		Build: func(h, w int, rng *rand.Rand) *grid.Grid {
			if rng == nil {
				rng = rand.New(rand.NewSource(42))
			}
			g := grid.New(h, w)
			for y := 0; y < h; y++ {
				row := g.Row(y)
				for x := range row {
					row[x] = uint32(rng.Int63n(int64(max) + 1))
				}
			}
			return g
		},
	}
}
