package sandpile

// reference.go holds the oracle solver every optimized variant is
// validated against. It is deliberately simple: repeated full-grid
// asynchronous sweeps until no cell topples.

import (
	"fmt"

	"repro/internal/grid"
)

// Result summarizes a run to stability.
type Result struct {
	// Iterations is the number of full-grid steps (synchronous steps
	// or asynchronous sweeps) executed, including the final step that
	// observed stability.
	Iterations int
	// Topples is the total number of cell topplings (asynchronous
	// kernels) or changed-cell observations (synchronous kernels).
	Topples uint64
	// Absorbed is the number of grains that fell into the sink.
	Absorbed uint64
}

func (r Result) String() string {
	return fmt.Sprintf("iterations=%d topples=%d absorbed=%d", r.Iterations, r.Topples, r.Absorbed)
}

// MaxIterations bounds run-to-stability loops. Stabilization of an
// N×N pile with k grains takes O(k·N²) single topplings in the worst
// case; the bound below is far above anything the test and bench
// workloads need, so hitting it indicates a broken kernel rather than
// a slow one.
const MaxIterations = 50_000_000

// StabilizeAsyncSeq runs asynchronous row-major sweeps over the whole
// grid until stable, mutating g in place. This is the package oracle:
// by the Abelian property every correct variant must produce exactly
// this final configuration. It returns run statistics.
func StabilizeAsyncSeq(g *grid.Grid) Result {
	before := g.Sum()
	var res Result
	for {
		res.Iterations++
		t := AsyncRegion(g, 0, g.H(), 0, g.W())
		res.Topples += uint64(t)
		if t == 0 {
			break
		}
		if res.Iterations >= MaxIterations {
			panic("sandpile: StabilizeAsyncSeq exceeded MaxIterations; kernel is broken")
		}
	}
	g.ClearHalo()
	res.Absorbed = before - g.Sum()
	return res
}

// StabilizeSyncSeq runs synchronous steps, ping-ponging between g and
// an auxiliary buffer, until a step changes nothing. The final
// configuration is written back into g.
func StabilizeSyncSeq(g *grid.Grid) Result {
	before := g.Sum()
	next := grid.New(g.H(), g.W())
	cur := g
	var res Result
	for {
		res.Iterations++
		ch := SyncStep(cur, next)
		res.Topples += uint64(ch)
		cur, next = next, cur
		if ch == 0 {
			break
		}
		if res.Iterations >= MaxIterations {
			panic("sandpile: StabilizeSyncSeq exceeded MaxIterations; kernel is broken")
		}
	}
	if cur != g {
		g.CopyFrom(cur)
	}
	g.ClearHalo()
	res.Absorbed = before - g.Sum()
	return res
}
