package job

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestAPI(t *testing.T, opts ...Option) (*API, *httptest.Server, *Manager) {
	t.Helper()
	m, err := NewManager(opts...)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAPI(m)
	a.pollEvery = 5 * time.Millisecond
	ts := httptest.NewServer(a)
	t.Cleanup(ts.Close)
	return a, ts, m
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

func TestAPISubmitGetResult(t *testing.T) {
	_, ts, m := newTestAPI(t, WithRunner("t", okRunner{}), WithExecutors(1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	resp, body := post(t, ts.URL+"/v1/jobs", `{"kind":"t","tenant":"alice","name":"n1"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d, body %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+v.ID {
		t.Fatalf("Location = %q", loc)
	}
	await(t, m, v.ID)

	// GET /v1/jobs/{id} sees the terminal state.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var got View
	if err := json.Unmarshal(b2, &got); err != nil {
		t.Fatal(err)
	}
	if got.State != StateSucceeded || got.Result == nil {
		t.Fatalf("GET view = %+v", got)
	}

	// GET result serves exactly json.Marshal(Result) — the wire bytes
	// the byte-identical CLI/HTTP guarantee compares.
	resp3, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	b3, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	want, _ := json.Marshal(got.Result)
	if !bytes.Equal(b3, want) {
		t.Fatalf("result bytes = %s, want %s", b3, want)
	}

	// List includes it.
	resp4, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	b4, _ := io.ReadAll(resp4.Body)
	resp4.Body.Close()
	var list []View
	if err := json.Unmarshal(b4, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != v.ID {
		t.Fatalf("list = %+v", list)
	}
}

func TestAPIErrors(t *testing.T) {
	_, ts, _ := newTestAPI(t, WithRunner("t", okRunner{}),
		WithExecutors(-1), WithQueueDepth(1))

	cases := []struct {
		name string
		body string
		code int
	}{
		{"bad JSON", `{`, http.StatusBadRequest},
		{"unknown kind", `{"kind":"zzz","tenant":"a"}`, http.StatusBadRequest},
		{"missing tenant", `{"kind":"t"}`, http.StatusBadRequest},
		{"bad priority", `{"kind":"t","tenant":"a","priority":"max"}`, http.StatusBadRequest},
		{"oversized body", `{"kind":"t","tenant":"a","params":{"pad":"` +
			strings.Repeat("x", MaxSpecBytes) + `"}}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+"/v1/jobs", tc.body)
			if resp.StatusCode != tc.code {
				t.Fatalf("code = %d, want %d (body %s)", resp.StatusCode, tc.code, body)
			}
			var e map[string]string
			if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
				t.Fatalf("error body not JSON: %s", body)
			}
		})
	}

	// Queue depth 1, queue-only mode: the second submission answers
	// 429 with Retry-After.
	if resp, body := post(t, ts.URL+"/v1/jobs", `{"kind":"t","tenant":"a"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d %s", resp.StatusCode, body)
	}
	resp, _ := post(t, ts.URL+"/v1/jobs", `{"kind":"t","tenant":"b"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backpressure code = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Unknown ids 404 on every per-job route.
	for _, path := range []string{"/v1/jobs/j-999999", "/v1/jobs/j-999999/result", "/v1/jobs/j-999999/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestAPICancel(t *testing.T) {
	_, ts, _ := newTestAPI(t, WithRunner("t", okRunner{}), WithExecutors(-1))
	_, body := post(t, ts.URL+"/v1/jobs", `{"kind":"t","tenant":"a"}`)
	var v View
	json.Unmarshal(body, &v)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var got View
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("cancel -> %s, want cancelled", got.State)
	}
}

// TestAPIEvents watches a job over SSE and requires the stream to
// carry a state event, at least one progress event, and the final
// result event before closing.
func TestAPIEvents(t *testing.T) {
	_, ts, m := newTestAPI(t, WithRunner("t", &seqRunner{}), WithExecutors(1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	_, body := post(t, ts.URL+"/v1/jobs", `{"kind":"t","tenant":"a","name":"sse"}`)
	var v View
	json.Unmarshal(body, &v)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			events[name]++
		}
	}
	// The stream closed by itself after the terminal event.
	if events["state"] == 0 || events["progress"] == 0 || events["result"] != 1 {
		t.Fatalf("events = %v, want state>=1 progress>=1 result==1", events)
	}
}

// TestAPIStopEndsEventStreams: Stop() must end an open SSE watch so
// server drain can finish even with clients attached.
func TestAPIStopEndsEventStreams(t *testing.T) {
	a, ts, m := newTestAPI(t, WithRunner("t", &seqRunner{gate: make(chan struct{})}), WithExecutors(1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	_, body := post(t, ts.URL+"/v1/jobs", `{"kind":"t","tenant":"a"}`)
	var v View
	json.Unmarshal(body, &v)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan struct{})
	go func() {
		io.Copy(io.Discard, resp.Body) // blocks while the stream lives
		close(done)
	}()
	time.Sleep(20 * time.Millisecond) // let the watch settle in its poll loop
	a.Stop()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream survived API.Stop")
	}
}

// TestRetryAfterScalesWithBacklog pins the derived Retry-After: the
// hint is 1 + queued/executors seconds, so a saturated queue tells
// clients to stay away proportionally longer, an idle service answers
// the one-second floor, and a queue-only manager (which never drains)
// answers the 60-second cap.
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	_, ts, m := newTestAPI(t, WithRunner("t", okRunner{}),
		WithExecutors(1), WithQueueDepth(8))
	// Not started: one executor, nothing draining. Fill the class queue.
	for i := 0; i < 8; i++ {
		resp, body := post(t, ts.URL+"/v1/jobs", `{"kind":"t","tenant":"a"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d %s", i, resp.StatusCode, body)
		}
	}
	if got := m.RetryAfter(); got != 9 {
		t.Fatalf("RetryAfter with 8 queued / 1 executor = %d, want 9", got)
	}
	resp, _ := post(t, ts.URL+"/v1/jobs", `{"kind":"t","tenant":"b"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "9" {
		t.Fatalf("Retry-After = %q, want \"9\" (1s floor + 8 queued / 1 executor)", got)
	}

	// An idle manager answers the floor.
	m2, err := NewManager(WithRunner("t", okRunner{}), WithExecutors(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.RetryAfter(); got != 1 {
		t.Fatalf("idle RetryAfter = %d, want 1", got)
	}

	// Queue-only mode never drains: the hint saturates at the cap.
	m3, err := NewManager(WithRunner("t", okRunner{}), WithExecutors(-1))
	if err != nil {
		t.Fatal(err)
	}
	if got := m3.RetryAfter(); got != 60 {
		t.Fatalf("queue-only RetryAfter = %d, want 60", got)
	}
}
