package job

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// seqRunner records execution order and can block until released.
type seqRunner struct {
	mu    sync.Mutex
	order []string
	gate  chan struct{} // non-nil: Run waits here (or for ctx)
}

func (r *seqRunner) Validate(Spec) error { return nil }
func (r *seqRunner) Run(ctx context.Context, spec Spec, prog *obs.Progress) (Result, error) {
	r.mu.Lock()
	r.order = append(r.order, spec.Name)
	gate := r.gate
	r.mu.Unlock()
	prog.Update("test", obs.F("ran", 1))
	if gate != nil {
		select {
		case <-ctx.Done():
			return Result{}, ctx.Err()
		case <-gate:
		}
	}
	return Result{Kind: spec.Kind, Output: json.RawMessage(`{"name":"` + spec.Name + `"}`)}, nil
}

func (r *seqRunner) ran() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

func await(t *testing.T, m *Manager, id string) View {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := m.Await(ctx, id)
	if err != nil {
		t.Fatalf("Await(%s): %v (state %s)", id, err, v.State)
	}
	return v
}

func TestSubmitRunAwait(t *testing.T) {
	r := &seqRunner{}
	m, err := NewManager(WithRunner("t", r), WithExecutors(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	v, err := m.Submit(Spec{Kind: "t", Name: "a", Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	done := await(t, m, v.ID)
	if done.State != StateSucceeded {
		t.Fatalf("state = %s, want succeeded", done.State)
	}
	if done.Result == nil || string(done.Result.Output) != `{"name":"a"}` {
		t.Fatalf("result = %+v", done.Result)
	}
	if snap, ok := m.Progress(v.ID); !ok || snap["test"].Updates == 0 {
		t.Fatalf("progress not recorded: %+v", snap)
	}
}

// TestPriorityDrainOrder blocks the single executor with one job,
// queues low before high, and checks high drains first.
func TestPriorityDrainOrder(t *testing.T) {
	gate := make(chan struct{})
	r := &seqRunner{gate: gate}
	m, err := NewManager(WithRunner("t", r), WithExecutors(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	first, _ := m.Submit(Spec{Kind: "t", Name: "first", Tenant: "a"})
	// Wait until the executor holds the gate so the rest truly queue.
	for {
		if v, _ := m.Get(first.ID); v.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	lo, _ := m.Submit(Spec{Kind: "t", Name: "lo", Tenant: "a", Priority: PriorityLow})
	hi, _ := m.Submit(Spec{Kind: "t", Name: "hi", Tenant: "a", Priority: PriorityHigh})
	close(gate)
	r.mu.Lock()
	r.gate = nil
	r.mu.Unlock()

	await(t, m, lo.ID)
	await(t, m, hi.ID)
	order := r.ran()
	if len(order) != 3 || order[0] != "first" || order[1] != "hi" || order[2] != "lo" {
		t.Fatalf("execution order = %v, want [first hi lo]", order)
	}
}

func TestQueueDepthAndTenantQuota(t *testing.T) {
	m, err := NewManager(WithRunner("t", &seqRunner{}),
		WithExecutors(-1), // queue-only: nothing drains
		WithQueueDepth(3), WithTenantQuota(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Spec{Kind: "t", Tenant: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Spec{Kind: "t", Tenant: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Spec{Kind: "t", Tenant: "a"}); err != ErrTenantQuota {
		t.Fatalf("3rd job for tenant a: %v, want ErrTenantQuota", err)
	}
	// Another tenant still fits, then the class queue itself fills.
	if _, err := m.Submit(Spec{Kind: "t", Tenant: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Spec{Kind: "t", Tenant: "b"}); err != ErrQueueFull {
		t.Fatalf("4th queued job: %v, want ErrQueueFull", err)
	}
	// A different priority class has its own queue.
	if _, err := m.Submit(Spec{Kind: "t", Tenant: "b", Priority: PriorityHigh}); err != nil {
		t.Fatalf("high-priority job: %v", err)
	}
}

func TestCancelQueuedReleasesQuota(t *testing.T) {
	m, err := NewManager(WithRunner("t", &seqRunner{}),
		WithExecutors(-1), WithTenantQuota(1))
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Submit(Spec{Kind: "t", Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	cv, err := m.Cancel(v.ID)
	if err != nil || cv.State != StateCancelled {
		t.Fatalf("Cancel = %+v, %v", cv, err)
	}
	// The quota slot came back.
	if _, err := m.Submit(Spec{Kind: "t", Tenant: "a"}); err != nil {
		t.Fatalf("submit after cancel: %v", err)
	}
}

func TestCancelRunning(t *testing.T) {
	r := &seqRunner{gate: make(chan struct{})}
	m, err := NewManager(WithRunner("t", r), WithExecutors(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	v, _ := m.Submit(Spec{Kind: "t", Name: "x", Tenant: "a"})
	for {
		if got, _ := m.Get(v.ID); got.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	done := await(t, m, v.ID)
	if done.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", done.State)
	}
}

// TestRestartResumesQueuedJobs is the durability contract: a manager
// dies (simulated by dropping it) with journalled queued jobs; a new
// manager on the same state dir re-admits and runs them.
func TestRestartResumesQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	m1, err := NewManager(WithRunner("t", &seqRunner{}),
		WithExecutors(-1), WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	a, err := m1.Submit(Spec{Kind: "t", Name: "a", Tenant: "x"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m1.Submit(Spec{Kind: "t", Name: "b", Tenant: "x"})
	if err != nil {
		t.Fatal(err)
	}
	// m1 is never started; its journal holds both jobs queued. A new
	// manager (same dir) replays and an executor fleet drains them.
	r := &seqRunner{}
	m2, err := NewManager(WithRunner("t", r),
		WithExecutors(1), WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m2.Start(ctx)
	if v := await(t, m2, a.ID); v.State != StateSucceeded {
		t.Fatalf("job a after restart: %s", v.State)
	}
	if v := await(t, m2, b.ID); v.State != StateSucceeded {
		t.Fatalf("job b after restart: %s", v.State)
	}
	if got := r.ran(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("resume order = %v, want [a b]", got)
	}
}

// TestShutdownRequeuesRunningJob: cancelling the fleet's context mid
// run journals the job back to queued (not cancelled/failed), which
// is what lets a restarted server pick it up.
func TestShutdownRequeuesRunningJob(t *testing.T) {
	dir := t.TempDir()
	r := &seqRunner{gate: make(chan struct{})} // blocks until ctx fires
	m, err := NewManager(WithRunner("t", r),
		WithExecutors(1), WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m.Start(ctx)
	v, _ := m.Submit(Spec{Kind: "t", Name: "x", Tenant: "a"})
	for {
		if got, _ := m.Get(v.ID); got.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-m.Done()
	got, _ := m.Get(v.ID)
	if got.State != StateQueued {
		t.Fatalf("state after shutdown = %s, want queued", got.State)
	}

	// And the journal agrees: a fresh manager re-admits it.
	m2, err := NewManager(WithRunner("t", &seqRunner{}),
		WithExecutors(1), WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	m2.Start(ctx2)
	if got := await(t, m2, v.ID); got.State != StateSucceeded {
		t.Fatalf("state after restart = %s, want succeeded", got.State)
	}
}

func TestCloseIntake(t *testing.T) {
	m, err := NewManager(WithRunner("t", &seqRunner{}), WithExecutors(-1))
	if err != nil {
		t.Fatal(err)
	}
	m.CloseIntake()
	if _, err := m.Submit(Spec{Kind: "t", Tenant: "a"}); err != ErrClosed {
		t.Fatalf("Submit after CloseIntake = %v, want ErrClosed", err)
	}
}
