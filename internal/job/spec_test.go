package job

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// okRunner accepts everything and echoes a fixed output.
type okRunner struct{}

func (okRunner) Validate(Spec) error { return nil }
func (okRunner) Run(ctx context.Context, spec Spec, prog *obs.Progress) (Result, error) {
	return Result{Kind: spec.Kind, Output: json.RawMessage(`{"ok":true}`)}, nil
}

// pickyRunner rejects params containing "bad".
type pickyRunner struct{ okRunner }

func (pickyRunner) Validate(spec Spec) error {
	if bytes.Contains(spec.Params, []byte("bad")) {
		return Badf("picky: bad params")
	}
	return nil
}

// TestSpecValidation drives Submit through every kind-independent
// rejection and checks both the typed error and the HTTP status it
// maps to.
func TestSpecValidation(t *testing.T) {
	m, err := NewManager(
		WithRunner("ok", okRunner{}),
		WithRunner("picky", pickyRunner{}),
		WithExecutors(-1),
	)
	if err != nil {
		t.Fatal(err)
	}
	huge := json.RawMessage(`{"pad":"` + strings.Repeat("x", MaxSpecBytes) + `"}`)
	cases := []struct {
		name string
		spec Spec
		want error
		code int
	}{
		{"unknown kind", Spec{Kind: "nope", Tenant: "t"}, ErrUnknownKind, http.StatusBadRequest},
		{"missing kind", Spec{Tenant: "t"}, ErrBadSpec, http.StatusBadRequest},
		{"missing tenant", Spec{Kind: "ok"}, ErrBadSpec, http.StatusBadRequest},
		{"tenant too long", Spec{Kind: "ok", Tenant: strings.Repeat("t", 65)}, ErrBadSpec, http.StatusBadRequest},
		{"bad priority", Spec{Kind: "ok", Tenant: "t", Priority: "urgent"}, ErrBadSpec, http.StatusBadRequest},
		{"bad apiVersion", Spec{APIVersion: "v2", Kind: "ok", Tenant: "t"}, ErrBadSpec, http.StatusBadRequest},
		{"negative checkpointEvery", Spec{Kind: "ok", Tenant: "t", CheckpointEvery: -1}, ErrBadSpec, http.StatusBadRequest},
		{"oversized params", Spec{Kind: "ok", Tenant: "t", Params: huge}, ErrTooLarge, http.StatusRequestEntityTooLarge},
		{"runner rejects params", Spec{Kind: "picky", Tenant: "t", Params: json.RawMessage(`{"x":"bad"}`)}, ErrBadSpec, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := m.Submit(tc.spec)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Submit = %v, want %v", err, tc.want)
			}
			if got := status(err); got != tc.code {
				t.Fatalf("status(%v) = %d, want %d", err, got, tc.code)
			}
		})
	}

	// The happy path still admits.
	v, err := m.Submit(Spec{Kind: "ok", Tenant: "t", Priority: PriorityHigh})
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if v.State != StateQueued {
		t.Fatalf("state = %q, want queued", v.State)
	}
}

// TestAdmissionErrorStatuses covers the 429 and 503 mappings the
// validation table can't reach.
func TestAdmissionErrorStatuses(t *testing.T) {
	for err, code := range map[error]int{
		ErrQueueFull:       http.StatusTooManyRequests,
		ErrTenantQuota:     http.StatusTooManyRequests,
		ErrNotFound:        http.StatusNotFound,
		ErrClosed:          http.StatusServiceUnavailable,
		errors.New("boom"): http.StatusInternalServerError,
	} {
		if got := status(fmt.Errorf("wrapped: %w", err)); got != code {
			t.Errorf("status(%v) = %d, want %d", err, got, code)
		}
	}
}

// wireSpec is the canonical Spec used for the wire-schema goldens:
// every field populated, so any tag rename or type change shows up as
// a golden diff.
func wireSpec() Spec {
	return Spec{
		APIVersion:      APIVersion,
		Kind:            "sandpile",
		Name:            "smoke",
		Tenant:          "alice",
		Priority:        PriorityHigh,
		CheckpointEvery: 10,
		Params:          json.RawMessage(`{"size":64,"grains":5000}`),
	}
}

// wireWfsimSpec pins the wfsim kind's parameter surface — including
// the desWorkers kernel selector — the same way wireSpec pins the
// envelope.
func wireWfsimSpec() Spec {
	return Spec{
		APIVersion: APIVersion,
		Kind:       "wfsim",
		Name:       "placement",
		Tenant:     "alice",
		Params: json.RawMessage(
			`{"mode":"tab2","fractions":[0.5,1],"faults":"seed=7,hostfail=0.1,repair=5","desWorkers":4}`),
	}
}

func wireResult() Result {
	return Result{
		Kind:   "sandpile",
		Output: json.RawMessage(`{"iterations":516,"topples":307656}`),
	}
}

// TestWireSchemaGolden pins the JSON wire schema of Spec and Result
// to golden files. A failing diff means the API changed shape; that
// is a compatibility event, not a test to silently regenerate
// (update testdata/*.golden.json deliberately, with a version bump
// when the change is breaking).
func TestWireSchemaGolden(t *testing.T) {
	for _, tc := range []struct {
		golden string
		v      any
	}{
		{"spec.golden.json", wireSpec()},
		{"spec_wfsim.golden.json", wireWfsimSpec()},
		{"result.golden.json", wireResult()},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			got, err := json.MarshalIndent(tc.v, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", tc.golden)
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate deliberately): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire schema drifted from %s:\n got: %s\nwant: %s", path, got, want)
			}
		})
	}
}

// TestWireSchemaRoundTrip checks decode(encode(x)) is lossless for
// the wire structs.
func TestWireSchemaRoundTrip(t *testing.T) {
	enc, _ := json.Marshal(wireSpec())
	var s2 Spec
	if err := json.Unmarshal(enc, &s2); err != nil {
		t.Fatal(err)
	}
	if s2.Kind != "sandpile" || s2.Tenant != "alice" || s2.Priority != PriorityHigh ||
		s2.CheckpointEvery != 10 || string(s2.Params) != `{"size":64,"grains":5000}` {
		t.Fatalf("round trip lost fields: %+v", s2)
	}
	enc, _ = json.Marshal(wireResult())
	var r2 Result
	if err := json.Unmarshal(enc, &r2); err != nil {
		t.Fatal(err)
	}
	if r2.Kind != "sandpile" || string(r2.Output) != `{"iterations":516,"topples":307656}` {
		t.Fatalf("round trip lost fields: %+v", r2)
	}
}
