package job

// manager.go owns the job table and the executor fleet. Jobs move
// queued -> running -> {succeeded, failed, cancelled}; every
// transition is journalled through internal/ckpt when a state
// directory is configured, so a SIGKILLed server re-opens its journal
// and re-enqueues whatever was queued or running — running jobs
// resume from their own per-job checkpoint directory rather than
// starting over. The fleet is a shared sched.Pool: each worker index
// is one executor looping over the admission queues.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/obs"
	"repro/internal/sched"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCancelled
}

// View is a point-in-time snapshot of one job, the unit the HTTP
// layer serves and the journal persists.
type View struct {
	ID     string  `json:"id"`
	Spec   Spec    `json:"spec"`
	State  State   `json:"state"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
}

// record is the manager's mutable side of a job; all fields are
// guarded by Manager.mu.
type record struct {
	view       View
	prog       *obs.Progress
	cancel     context.CancelFunc // non-nil while running
	userCancel bool               // Cancel() was called (vs shutdown)
}

// Manager admits, schedules, and tracks jobs.
type Manager struct {
	runners   map[string]Runner
	executors int
	obs       obs.Sink
	stateDir  string
	defEvery  int64

	adm *admission

	mu    sync.Mutex
	jobs  map[string]*record
	seq   int64
	store *ckpt.Store // jobs journal; nil when not durable
	epoch uint64
	open  bool

	fleetOnce sync.Once
	done      chan struct{} // closed when the fleet has exited
}

// Option configures a Manager.
type Option func(*Manager)

// WithRunner registers the Runner for one kind.
func WithRunner(kind string, r Runner) Option {
	return func(m *Manager) { m.runners[kind] = r }
}

// WithExecutors sets the fleet size; 0 means GOMAXPROCS, negative
// means no executors at all (queue-only mode — jobs are admitted and
// journalled but never started, which makes kill/restart tests
// deterministic).
func WithExecutors(n int) Option {
	return func(m *Manager) { m.executors = n }
}

// WithQueueDepth bounds each priority class's queue.
func WithQueueDepth(n int) Option {
	return func(m *Manager) {
		if n > 0 {
			m.adm.classCap = n
		}
	}
}

// WithTenantQuota bounds one tenant's queued+running jobs.
func WithTenantQuota(n int) Option {
	return func(m *Manager) {
		if n > 0 {
			m.adm.tenantCap = n
		}
	}
}

// WithStateDir makes the manager durable: the job table is
// journalled under dir and each job checkpoints under dir/jobs/<id>.
func WithStateDir(dir string) Option {
	return func(m *Manager) { m.stateDir = dir }
}

// WithManagerObs attaches the process observability sink: job
// counters and queue gauges on Metrics, runner spans on Tracer.
func WithManagerObs(sink obs.Sink) Option {
	return func(m *Manager) { m.obs = sink }
}

// WithDefaultCheckpointEvery sets the snapshot cadence used when a
// Spec doesn't name one.
func WithDefaultCheckpointEvery(every int64) Option {
	return func(m *Manager) {
		if every > 0 {
			m.defEvery = every
		}
	}
}

// NewManager builds a Manager and, when durable, replays its journal:
// terminal jobs become queryable history, queued and running jobs are
// re-admitted in their original order.
func NewManager(opts ...Option) (*Manager, error) {
	m := &Manager{
		runners:  map[string]Runner{},
		adm:      newAdmission(256, 32),
		jobs:     map[string]*record{},
		defEvery: 25,
		open:     true,
		done:     make(chan struct{}),
	}
	for _, o := range opts {
		o(m)
	}
	if m.executors == 0 {
		m.executors = runtime.GOMAXPROCS(0)
	}
	if m.stateDir != "" {
		store, err := ckpt.Open(filepath.Join(m.stateDir, "journal"), "jobs",
			ckpt.WithObs(m.obs))
		if err != nil {
			return nil, fmt.Errorf("job journal: %w", err)
		}
		m.store = store
		if err := m.replay(); err != nil {
			return nil, err
		}
	}
	m.gauges()
	return m, nil
}

// journal is the persisted job table.
type journal struct {
	Seq  int64  `json:"seq"`
	Jobs []View `json:"jobs"`
}

// replay loads the newest journal snapshot into the job table.
func (m *Manager) replay() error {
	epoch, payload, ok, err := m.store.Load()
	if err != nil {
		return fmt.Errorf("job journal: %w", err)
	}
	if !ok {
		return nil
	}
	var j journal
	if err := json.Unmarshal(payload, &j); err != nil {
		return fmt.Errorf("job journal: %w", err)
	}
	m.epoch = epoch
	m.seq = j.Seq
	for _, v := range j.Jobs {
		v := v
		rec := &record{view: v, prog: obs.NewProgress(nil)}
		m.jobs[v.ID] = rec
		if v.State == StateQueued || v.State == StateRunning {
			// The process died with this job live; run it (again).
			// Its per-job checkpointer resumes from the last snapshot.
			rec.view.State = StateQueued
			class, _ := v.Spec.Priority.class()
			if err := m.adm.admit(v.ID, v.Spec.Tenant, class); err != nil {
				rec.view.State = StateFailed
				rec.view.Error = fmt.Sprintf("not re-admitted after restart: %v", err)
			}
		}
	}
	return nil
}

// persist journals the job table; callers hold m.mu.
func (m *Manager) persist() {
	if m.store == nil {
		return
	}
	j := journal{Seq: m.seq, Jobs: make([]View, 0, len(m.jobs))}
	for _, rec := range m.jobs {
		j.Jobs = append(j.Jobs, rec.view)
	}
	// Deterministic order keeps snapshots diffable.
	for i := 1; i < len(j.Jobs); i++ {
		for k := i; k > 0 && j.Jobs[k-1].ID > j.Jobs[k].ID; k-- {
			j.Jobs[k-1], j.Jobs[k] = j.Jobs[k], j.Jobs[k-1]
		}
	}
	payload, err := json.Marshal(j)
	if err != nil {
		return
	}
	m.epoch++
	if err := m.store.Save(m.epoch, payload); err != nil && m.obs.Log != nil {
		m.obs.Log.Event(obs.LevelError, "job", "journal save failed: "+err.Error())
	}
}

// counter bumps a jobs.* counter when metrics are attached.
func (m *Manager) counter(name string) {
	if m.obs.Metrics != nil {
		m.obs.Metrics.Counter(name).Inc()
	}
}

// gauges refreshes the queue-depth gauges; callers need not hold
// m.mu (the admission layer has its own lock and gauge writes are
// atomic).
func (m *Manager) gauges() {
	if m.obs.Metrics == nil {
		return
	}
	m.obs.Metrics.Gauge("jobs.queued").Set(float64(m.adm.queued()))
}

// RetryAfter estimates, in whole seconds, how long a rejected client
// should wait before resubmitting: one second of slack plus the
// queued backlog divided across the executor fleet, clamped to
// [1, 60]. The estimate only needs the right order of magnitude — an
// empty queue (a tenant-quota rejection) answers 1, a saturated queue
// answers proportionally more. Queue-only managers (negative
// executors) never drain, so the hint saturates at the cap.
func (m *Manager) RetryAfter() int {
	if m.executors <= 0 {
		return 60
	}
	d := 1 + m.adm.queued()/m.executors
	return min(d, 60)
}

// Submit validates, admits, and journals a job, returning its View.
func (m *Manager) Submit(spec Spec) (View, error) {
	if err := spec.validate(); err != nil {
		return View{}, err
	}
	runner, ok := m.runners[spec.Kind]
	if !ok {
		return View{}, fmt.Errorf("%w: %q", ErrUnknownKind, spec.Kind)
	}
	if err := runner.Validate(spec); err != nil {
		return View{}, err
	}
	class, _ := spec.Priority.class()

	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.open {
		return View{}, ErrClosed
	}
	id := fmt.Sprintf("j-%06d", m.seq+1)
	if err := m.adm.admit(id, spec.Tenant, class); err != nil {
		m.counter("jobs.rejected")
		return View{}, err
	}
	m.seq++
	rec := &record{
		view: View{ID: id, Spec: spec, State: StateQueued},
		prog: obs.NewProgress(nil),
	}
	m.jobs[id] = rec
	m.persist()
	m.counter("jobs.submitted")
	m.gauges()
	return rec.view, nil
}

// Get returns a job's current View.
func (m *Manager) Get(id string) (View, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.jobs[id]
	if !ok {
		return View{}, false
	}
	return rec.view, true
}

// List returns every job's View in id order.
func (m *Manager) List() []View {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]View, 0, len(m.jobs))
	for _, rec := range m.jobs {
		out = append(out, rec.view)
	}
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k-1].ID > out[k].ID; k-- {
			out[k-1], out[k] = out[k], out[k-1]
		}
	}
	return out
}

// Progress snapshots a job's live progress stages.
func (m *Manager) Progress(id string) (map[string]obs.StageSnapshot, bool) {
	m.mu.Lock()
	rec, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	return rec.prog.Snapshot(), true
}

// Cancel stops a job: queued jobs go terminal immediately, running
// jobs get their context cancelled (the executor marks them
// cancelled when the runner returns). Cancelling a terminal job is a
// no-op.
func (m *Manager) Cancel(id string) (View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.jobs[id]
	if !ok {
		return View{}, ErrNotFound
	}
	rec.userCancel = true
	switch {
	case rec.view.State == StateQueued && m.adm.remove(id):
		rec.view.State = StateCancelled
		m.adm.release(rec.view.Spec.Tenant)
		m.persist()
		m.counter("jobs.cancelled")
		m.gauges()
	case rec.view.State == StateRunning && rec.cancel != nil:
		rec.cancel()
	}
	return rec.view, nil
}

// Await polls until the job is terminal or ctx fires.
func (m *Manager) Await(ctx context.Context, id string) (View, error) {
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		v, ok := m.Get(id)
		if !ok {
			return View{}, ErrNotFound
		}
		if v.State.Terminal() {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-tick.C:
		}
	}
}

// Start launches the executor fleet; it returns immediately and the
// fleet runs until ctx is cancelled. Running jobs interrupted by
// cancellation are journalled back to queued so a restart resumes
// them. Start is idempotent; only the first call takes effect.
func (m *Manager) Start(ctx context.Context) {
	m.fleetOnce.Do(func() {
		if m.executors < 0 {
			close(m.done)
			return
		}
		pool := sched.New(
			sched.WithWorkers(m.executors),
			sched.WithPolicy(sched.Static),
			sched.WithChunkSize(1),
		)
		go func() {
			defer close(m.done)
			defer pool.Close()
			// One iteration per executor: sched hands each worker
			// exactly one index, and each index is a dequeue loop.
			_ = pool.RunContext(context.Background(), m.executors, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					m.executorLoop(ctx)
				}
			})
		}()
	})
}

// Done is closed once the fleet has fully exited after Start's ctx
// was cancelled.
func (m *Manager) Done() <-chan struct{} { return m.done }

// CloseIntake rejects further Submits; inflight work is untouched.
func (m *Manager) CloseIntake() {
	m.mu.Lock()
	m.open = false
	m.mu.Unlock()
}

// executorLoop is one fleet worker: pop, execute, repeat.
func (m *Manager) executorLoop(ctx context.Context) {
	for {
		id := m.adm.pop()
		if id == "" {
			select {
			case <-ctx.Done():
				return
			case <-m.adm.notify:
				continue
			}
		}
		// A single notify token can absorb several pushes; hand the
		// token back so sibling executors wake for the rest.
		if m.adm.queued() > 0 {
			select {
			case m.adm.notify <- struct{}{}:
			default:
			}
		}
		m.execute(ctx, id)
		if ctx.Err() != nil {
			return
		}
	}
}

// execute runs one admitted job end to end.
func (m *Manager) execute(ctx context.Context, id string) {
	m.mu.Lock()
	rec, ok := m.jobs[id]
	if !ok || rec.view.State != StateQueued || rec.userCancel {
		// Cancelled in the pop window.
		if ok && !rec.view.State.Terminal() {
			rec.view.State = StateCancelled
			m.adm.release(rec.view.Spec.Tenant)
			m.persist()
			m.counter("jobs.cancelled")
		}
		m.mu.Unlock()
		m.gauges()
		return
	}
	jctx, cancel := context.WithCancel(ctx)
	rec.cancel = cancel
	rec.view.State = StateRunning
	spec := rec.view.Spec
	prog := rec.prog
	m.persist()
	m.mu.Unlock()
	m.gauges()
	defer cancel()

	if m.obs.Metrics != nil {
		m.obs.Metrics.Gauge("jobs.running").Add(1)
		defer m.obs.Metrics.Gauge("jobs.running").Add(-1)
	}
	prog.Update("job", obs.F("running", 1))

	env := Env{Obs: obs.Sink{
		Metrics:  m.obs.Metrics,
		Tracer:   m.obs.Tracer,
		Progress: prog, // per-job stream: stage names can't collide across jobs
		Log:      m.obs.Log,
	}}
	var ckErr error
	if env.Ckpt, ckErr = m.checkpointer(spec, id); ckErr != nil {
		m.finish(id, Result{}, fmt.Errorf("checkpointer: %w", ckErr))
		return
	}

	res, err := m.runners[spec.Kind].Run(WithEnv(jctx, env), spec, prog)
	if err == nil {
		err = jctx.Err() // belt and braces: a runner may swallow cancellation
	}
	m.finish(id, res, err)
}

// checkpointer builds the per-job checkpointer, primed to resume.
func (m *Manager) checkpointer(spec Spec, id string) (*ckpt.Checkpointer, error) {
	if m.stateDir == "" {
		return nil, nil
	}
	store, err := ckpt.Open(filepath.Join(m.stateDir, "jobs", id), spec.Kind,
		ckpt.WithObs(m.obs))
	if err != nil {
		return nil, err
	}
	every := spec.CheckpointEvery
	if every <= 0 {
		every = m.defEvery
	}
	return ckpt.NewCheckpointer(store, every, true), nil
}

// finish records a job's terminal state (or re-queues it when the
// fleet itself was shut down under it).
func (m *Manager) finish(id string, res Result, err error) {
	m.mu.Lock()
	defer func() {
		m.mu.Unlock()
		m.gauges()
	}()
	rec := m.jobs[id]
	rec.cancel = nil
	switch {
	case err == nil:
		rec.view.State = StateSucceeded
		rec.view.Result = &res
		m.counter("jobs.completed")
	case rec.userCancel || !errors.Is(err, context.Canceled):
		if rec.userCancel {
			rec.view.State = StateCancelled
			m.counter("jobs.cancelled")
		} else {
			rec.view.State = StateFailed
			rec.view.Error = err.Error()
			m.counter("jobs.failed")
		}
	default:
		// Shutdown cancellation: journal it back to queued so the
		// next process run re-admits and resumes it.
		rec.view.State = StateQueued
		m.persist()
		return
	}
	rec.prog.Update("job", obs.F("done", 1))
	m.adm.release(rec.view.Spec.Tenant)
	m.persist()
}
