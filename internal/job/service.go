package job

// service.go ties the three long-lived pieces of a job server — the
// API listener, the telemetry listener, and the executor fleet —
// into one lifecycle. Start brings them up together; Close tears
// them down in dependency order under a drain timeout, so neither
// listener is yanked while the other half still serves and a slow
// runner can't wedge shutdown forever. The group type is the
// stdlib-only errgroup shape: first error wins, Wait blocks for all.

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// group runs goroutines and collects the first error.
type group struct {
	wg   sync.WaitGroup
	once sync.Once
	err  error
}

// Go runs fn, keeping its error if it is the group's first.
func (g *group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.once.Do(func() { g.err = err })
		}
	}()
}

// Wait blocks until every Go'd function returned.
func (g *group) Wait() error {
	g.wg.Wait()
	return g.err
}

// ServiceConfig configures StartService.
type ServiceConfig struct {
	// Manager is the configured (not yet started) job manager.
	Manager *Manager
	// APIAddr is the job API listen address (e.g. "127.0.0.1:8080";
	// port 0 picks one).
	APIAddr string
	// TelemetryAddr serves the obs plane (/metrics /progress
	// /events); "" disables it.
	TelemetryAddr string
	// Obs is the process sink, shared with the Manager; the
	// telemetry server upgrades it in place.
	Obs *obs.Sink
	// DrainTimeout bounds Close: in-flight HTTP requests and the
	// fleet get this long to drain before being abandoned. 0 means
	// 5s.
	DrainTimeout time.Duration
}

// Service is a running job server.
type Service struct {
	cfg       ServiceConfig
	handler   *API
	api       *http.Server
	apiLis    net.Listener
	telemetry *obs.Server
	cancel    context.CancelFunc
	serveErrs group
	closeOnce sync.Once
	closeErr  error
}

// StartService binds both listeners, starts the fleet, and returns.
// On any startup error, everything already started is closed before
// returning — no half-up server.
func StartService(cfg ServiceConfig) (*Service, error) {
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.Obs == nil {
		cfg.Obs = &obs.Sink{}
	}
	lis, err := net.Listen("tcp", cfg.APIAddr)
	if err != nil {
		return nil, err
	}
	telemetry, err := obs.ServeTelemetry(cfg.Obs, cfg.TelemetryAddr)
	if err != nil {
		lis.Close()
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	handler := NewAPI(cfg.Manager)
	s := &Service{
		cfg:       cfg,
		handler:   handler,
		api:       &http.Server{Handler: handler},
		apiLis:    lis,
		telemetry: telemetry,
		cancel:    cancel,
	}
	cfg.Manager.Start(ctx)
	s.serveErrs.Go(func() error {
		if err := s.api.Serve(lis); !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	})
	return s, nil
}

// Addr is the bound API address.
func (s *Service) Addr() string { return s.apiLis.Addr().String() }

// Close shuts the service down jointly: stop intake, drain the API
// listener, stop the fleet (running jobs are journalled back to
// queued), then close telemetry last so /metrics stays observable
// through the drain. Safe to call more than once.
func (s *Service) Close() error {
	s.closeOnce.Do(func() {
		drainCtx, done := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer done()

		s.cfg.Manager.CloseIntake()
		s.handler.Stop()

		var g group
		g.Go(func() error {
			// Shutdown closes the listener and waits for in-flight
			// requests (SSE streams exit when their clients do; the
			// drain deadline bounds stragglers).
			return s.api.Shutdown(drainCtx)
		})
		g.Go(func() error {
			s.cancel()
			select {
			case <-s.cfg.Manager.Done():
				return nil
			case <-drainCtx.Done():
				return errors.New("job fleet did not drain in time")
			}
		})
		err := g.Wait()
		if serveErr := s.serveErrs.Wait(); err == nil {
			err = serveErr
		}
		if s.telemetry != nil {
			if terr := s.telemetry.Close(); err == nil {
				err = terr
			}
		}
		s.closeErr = err
	})
	return s.closeErr
}
