package job

// admission.go is the gate between Submit and the executor fleet:
// three bounded FIFO queues (one per priority class) and a per-tenant
// live-jobs account. Rejections are typed — ErrQueueFull and
// ErrTenantQuota — so the HTTP layer can answer 429 with Retry-After
// instead of letting load build up invisibly, and the caps make the
// server's memory footprint a configuration fact rather than an
// emergent one.

import "sync"

type admission struct {
	mu sync.Mutex
	// queues[c] holds queued job ids of class c, FIFO.
	queues [numClasses][]string
	// live counts queued+running jobs per tenant; the quota releases
	// only when a job reaches a terminal state, so a tenant cannot
	// hold more than tenantCap in flight no matter how it times
	// submissions.
	live map[string]int

	classCap  int // max queued per class
	tenantCap int // max live per tenant

	// notify wakes one idle executor after a push; buffered so a push
	// with no waiter doesn't block.
	notify chan struct{}
}

func newAdmission(classCap, tenantCap int) *admission {
	return &admission{
		live:      map[string]int{},
		classCap:  classCap,
		tenantCap: tenantCap,
		notify:    make(chan struct{}, 1),
	}
}

// admit queues a job id, charging the tenant. The class index must
// come from Priority.class.
func (a *admission) admit(id, tenant string, class int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.queues[class]) >= a.classCap {
		return ErrQueueFull
	}
	if a.live[tenant] >= a.tenantCap {
		return ErrTenantQuota
	}
	a.queues[class] = append(a.queues[class], id)
	a.live[tenant]++
	select {
	case a.notify <- struct{}{}:
	default:
	}
	return nil
}

// pop removes and returns the next job id — strictest class first,
// FIFO within a class — or "" when everything is empty.
func (a *admission) pop() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	for c := range a.queues {
		if q := a.queues[c]; len(q) > 0 {
			id := q[0]
			a.queues[c] = q[1:]
			return id
		}
	}
	return ""
}

// remove deletes a queued id (cancellation before execution) and
// reports whether it was found.
func (a *admission) remove(id string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for c, q := range a.queues {
		for i, v := range q {
			if v == id {
				a.queues[c] = append(q[:i:i], q[i+1:]...)
				return true
			}
		}
	}
	return false
}

// release returns a tenant's quota slot when its job goes terminal.
func (a *admission) release(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.live[tenant] > 1 {
		a.live[tenant]--
	} else {
		delete(a.live, tenant)
	}
}

// queued reports the total queued jobs across classes.
func (a *admission) queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, q := range a.queues {
		n += len(q)
	}
	return n
}
