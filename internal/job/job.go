// Package job is the unified submission API over the repo's compute
// substrates. A client describes work as a versioned Spec (a kind
// plus kind-specific params), an admission controller decides whether
// it may queue (per-tenant quotas, priority classes, bounded queues),
// and a Manager executes admitted jobs on a shared sched.Pool fleet
// through one Runner interface per substrate. The same Runner
// adapters back both the HTTP server (cmd/peachyd) and the one-shot
// CLIs, so a job submitted over the wire computes byte-for-byte what
// the equivalent command-line invocation computes.
package job

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/obs"
)

// APIVersion is the wire-schema version this package speaks. Specs
// with an empty apiVersion are taken as current; anything else must
// match exactly.
const APIVersion = "v1"

// MaxSpecBytes bounds the encoded size of one Spec; larger
// submissions are rejected with ErrTooLarge before decoding work is
// attempted.
const MaxSpecBytes = 1 << 20

// Priority is a job's scheduling class. Admitted jobs drain
// strictly by class (all queued high jobs before any normal job),
// FIFO within a class.
type Priority string

const (
	PriorityLow    Priority = "low"
	PriorityNormal Priority = "normal"
	PriorityHigh   Priority = "high"
)

// class maps a priority to its queue index, 0 draining first.
func (p Priority) class() (int, bool) {
	switch p {
	case PriorityHigh:
		return 0, true
	case PriorityNormal, "":
		return 1, true
	case PriorityLow:
		return 2, true
	}
	return 0, false
}

// numClasses is the number of priority queues.
const numClasses = 3

// Spec is one job submission: everything needed to reproduce the
// computation. Params is opaque here — each kind's Runner owns its
// schema — so new substrates extend the API without touching it.
type Spec struct {
	// APIVersion is the wire-schema version; "" or "v1".
	APIVersion string `json:"apiVersion,omitempty"`
	// Kind selects the Runner: "sandpile", "mapreduce", "wfsim", or
	// "peachy".
	Kind string `json:"kind"`
	// Name is an optional human label echoed back in status.
	Name string `json:"name,omitempty"`
	// Tenant attributes the job for quota accounting. Required.
	Tenant string `json:"tenant"`
	// Priority is the scheduling class; "" means normal.
	Priority Priority `json:"priority,omitempty"`
	// CheckpointEvery overrides the kind's snapshot cadence (units
	// are the kind's natural progress step); 0 keeps the default.
	CheckpointEvery int64 `json:"checkpointEvery,omitempty"`
	// Params is the kind-specific parameter object.
	Params json.RawMessage `json:"params,omitempty"`
}

// Result is a finished job's output: the kind it came from plus the
// kind-specific output object. Marshalling a Result is the wire
// contract the byte-identical CLI/HTTP guarantee rests on.
type Result struct {
	Kind   string          `json:"kind"`
	Output json.RawMessage `json:"output"`
}

// Runner executes one kind of job. Implementations live in
// job/runners, one per substrate.
type Runner interface {
	// Validate rejects a malformed Spec before admission; errors wrap
	// ErrBadSpec.
	Validate(spec Spec) error
	// Run executes the job, publishing through prog (never nil) and
	// honouring ctx cancellation. The Env in ctx carries the
	// observability sink and the job's checkpointer, when any.
	Run(ctx context.Context, spec Spec, prog *obs.Progress) (Result, error)
}

// Typed errors the HTTP layer maps onto status codes.
var (
	// ErrBadSpec: the submission is malformed — 400.
	ErrBadSpec = errors.New("invalid job spec")
	// ErrUnknownKind: no Runner for spec.Kind — 400.
	ErrUnknownKind = errors.New("unknown job kind")
	// ErrTooLarge: the encoded spec exceeds MaxSpecBytes — 413.
	ErrTooLarge = errors.New("job spec too large")
	// ErrQueueFull: the priority class's queue is at capacity — 429.
	ErrQueueFull = errors.New("job queue full")
	// ErrTenantQuota: the tenant is at its live-jobs quota — 429.
	ErrTenantQuota = errors.New("tenant quota exceeded")
	// ErrNotFound: no such job id — 404.
	ErrNotFound = errors.New("no such job")
	// ErrClosed: the manager is shutting down — 503.
	ErrClosed = errors.New("job manager closed")
)

// Badf wraps ErrBadSpec with detail; runners use it from Validate.
func Badf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrBadSpec}, args...)...)
}

// validate checks the kind-independent half of a Spec. Size is
// checked against the re-encoded spec so the bound holds regardless
// of transport framing.
func (s Spec) validate() error {
	if s.APIVersion != "" && s.APIVersion != APIVersion {
		return Badf("apiVersion %q (want %q)", s.APIVersion, APIVersion)
	}
	if s.Kind == "" {
		return Badf("kind is required")
	}
	if s.Tenant == "" {
		return Badf("tenant is required")
	}
	if len(s.Tenant) > 64 {
		return Badf("tenant longer than 64 bytes")
	}
	if _, ok := s.Priority.class(); !ok {
		return Badf("priority %q (want low|normal|high)", s.Priority)
	}
	if s.CheckpointEvery < 0 {
		return Badf("checkpointEvery must be >= 0")
	}
	if enc, err := json.Marshal(s); err != nil {
		return Badf("unencodable spec: %v", err)
	} else if len(enc) > MaxSpecBytes {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrTooLarge, len(enc), MaxSpecBytes)
	}
	return nil
}

// Env is the execution environment a Runner reads from its context:
// the process observability sink and, when the manager is durable,
// the job's checkpointer (already primed to resume).
type Env struct {
	Obs  obs.Sink
	Ckpt *ckpt.Checkpointer
}

type envKey struct{}

// WithEnv returns ctx carrying env for a Runner.
func WithEnv(ctx context.Context, env Env) context.Context {
	return context.WithValue(ctx, envKey{}, env)
}

// EnvFrom extracts the Env from ctx; the zero Env when absent, so
// runners work under plain contexts (tests, CLIs without telemetry).
func EnvFrom(ctx context.Context) Env {
	env, _ := ctx.Value(envKey{}).(Env)
	return env
}
