package job

// server.go is the HTTP/JSON face of the Manager: submit, inspect,
// cancel, and stream. Errors map onto status codes through the typed
// errors in job.go — admission rejections answer 429 with a
// Retry-After so well-behaved clients back off instead of hammering
// a full queue.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// API wraps a Manager in an http.Handler.
type API struct {
	m   *Manager
	mux *http.ServeMux
	// pollEvery paces the SSE poll loop; tests shrink it.
	pollEvery time.Duration
	// stop ends open SSE streams so http.Server.Shutdown's drain
	// isn't held hostage by a long-lived watch.
	stop     chan struct{}
	stopOnce sync.Once
}

// Stop ends the API's open event streams; idempotent.
func (a *API) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
}

// NewAPI builds the job-service handler:
//
//	POST   /v1/jobs             submit a Spec           -> 202 View
//	GET    /v1/jobs             list jobs               -> 200 []View
//	GET    /v1/jobs/{id}        job status              -> 200 View
//	GET    /v1/jobs/{id}/result finished job's Result   -> 200 Result
//	GET    /v1/jobs/{id}/events live progress via SSE
//	DELETE /v1/jobs/{id}        cancel                  -> 200 View
func NewAPI(m *Manager) *API {
	a := &API{
		m:         m,
		mux:       http.NewServeMux(),
		pollEvery: 150 * time.Millisecond,
		stop:      make(chan struct{}),
	}
	a.mux.HandleFunc("POST /v1/jobs", a.submit)
	a.mux.HandleFunc("GET /v1/jobs", a.list)
	a.mux.HandleFunc("GET /v1/jobs/{id}", a.get)
	a.mux.HandleFunc("GET /v1/jobs/{id}/result", a.result)
	a.mux.HandleFunc("GET /v1/jobs/{id}/events", a.events)
	a.mux.HandleFunc("DELETE /v1/jobs/{id}", a.cancel)
	a.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return a
}

func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mux.ServeHTTP(w, r)
}

// status maps a typed job error onto its HTTP status code.
func status(err error) int {
	switch {
	case errors.Is(err, ErrBadSpec), errors.Is(err, ErrUnknownKind):
		return http.StatusBadRequest
	case errors.Is(err, ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQuota):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func (a *API) writeErr(w http.ResponseWriter, err error) {
	code := status(err)
	if code == http.StatusTooManyRequests {
		// Explicit backpressure: the queue is full or the tenant is at
		// quota. The hint scales with how much queued work stands
		// between the client and an admission slot — retrying a
		// saturated queue after one second cannot succeed.
		w.Header().Set("Retry-After", strconv.Itoa(a.m.RetryAfter()))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (a *API) submit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, MaxSpecBytes+1)
	var spec Spec
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			a.writeErr(w, fmt.Errorf("%w: body over %d bytes", ErrTooLarge, MaxSpecBytes))
			return
		}
		a.writeErr(w, Badf("bad JSON: %v", err))
		return
	}
	v, err := a.m.Submit(spec)
	if err != nil {
		a.writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+v.ID)
	writeJSON(w, http.StatusAccepted, v)
}

func (a *API) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.m.List())
}

func (a *API) get(w http.ResponseWriter, r *http.Request) {
	v, ok := a.m.Get(r.PathValue("id"))
	if !ok {
		a.writeErr(w, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// result serves exactly json.Marshal(Result) — the bytes the
// equivalent CLI one-shot prints, which the smoke test diffs.
func (a *API) result(w http.ResponseWriter, r *http.Request) {
	v, ok := a.m.Get(r.PathValue("id"))
	if !ok {
		a.writeErr(w, ErrNotFound)
		return
	}
	if v.Result == nil {
		a.writeErr(w, fmt.Errorf("%w: job %s is %s, no result", ErrNotFound, v.ID, v.State))
		return
	}
	out, err := json.Marshal(v.Result)
	if err != nil {
		a.writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

func (a *API) cancel(w http.ResponseWriter, r *http.Request) {
	v, err := a.m.Cancel(r.PathValue("id"))
	if err != nil {
		a.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// events streams a job's life as server-sent events: a "state" event
// on every transition, a "progress" event whenever the job publishes,
// and a final "result" event when it goes terminal, after which the
// stream closes. The loop polls — the progress plane is a snapshot
// API — so cadence is bounded by pollEvery.
func (a *API) events(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := a.m.Get(id); !ok {
		a.writeErr(w, ErrNotFound)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		a.writeErr(w, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		flusher.Flush()
	}

	var lastState State
	var lastProg int64 = -1
	tick := time.NewTicker(a.pollEvery)
	defer tick.Stop()
	for {
		v, ok := a.m.Get(id)
		if !ok {
			return
		}
		if v.State != lastState {
			lastState = v.State
			emit("state", v)
		}
		if snap, ok := a.m.Progress(id); ok {
			var version int64
			for _, st := range snap {
				version += st.Updates
			}
			if version != lastProg && len(snap) > 0 {
				lastProg = version
				emit("progress", snap)
			}
		}
		if v.State.Terminal() {
			emit("result", v)
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-a.stop:
			return
		case <-tick.C:
		}
	}
}
