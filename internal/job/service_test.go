package job

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestServiceStartStop brings the joint API+telemetry lifecycle up
// and down repeatedly with live traffic. Run under -race (make race /
// CI) this is the regression net for listener-shutdown races: the two
// servers and the fleet must come down jointly without leaking
// goroutines into each other's teardown.
func TestServiceStartStop(t *testing.T) {
	for i := 0; i < 3; i++ {
		sink := obs.Sink{Metrics: obs.NewRegistry()}
		m, err := NewManager(
			WithRunner("t", &seqRunner{}),
			WithExecutors(2),
			WithManagerObs(sink),
		)
		if err != nil {
			t.Fatal(err)
		}
		svc, err := StartService(ServiceConfig{
			Manager:       m,
			APIAddr:       "127.0.0.1:0",
			TelemetryAddr: "127.0.0.1:0",
			Obs:           &sink,
			DrainTimeout:  5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}

		// Live traffic while the service is up: a completed job, a
		// watch on its event stream, and telemetry scrapes.
		resp, err := http.Post("http://"+svc.Addr()+"/v1/jobs", "application/json",
			strings.NewReader(`{"kind":"t","tenant":"race"}`))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var v View
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("submit: %v (%s)", err, body)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if _, err := m.Await(ctx, v.ID); err != nil {
			t.Fatal(err)
		}
		cancel()

		// An open SSE stream on a queued job must not wedge Close.
		hang, err := http.Post("http://"+svc.Addr()+"/v1/jobs", "application/json",
			strings.NewReader(`{"kind":"t","tenant":"race","priority":"low"}`))
		if err != nil {
			t.Fatal(err)
		}
		var hv View
		hb, _ := io.ReadAll(hang.Body)
		hang.Body.Close()
		json.Unmarshal(hb, &hv)
		watch, err := http.Get("http://" + svc.Addr() + "/v1/jobs/" + hv.ID + "/events")
		if err != nil {
			t.Fatal(err)
		}
		go io.Copy(io.Discard, watch.Body)
		defer watch.Body.Close()

		closed := make(chan error, 1)
		go func() { closed <- svc.Close() }()
		select {
		case err := <-closed:
			if err != nil {
				t.Fatalf("iteration %d: Close: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("iteration %d: Close wedged", i)
		}

		// Closed means closed: the API socket no longer accepts.
		if _, err := http.Get("http://" + svc.Addr() + "/healthz"); err == nil {
			t.Fatalf("iteration %d: API still serving after Close", i)
		}
	}
}

// TestServiceDoubleClose: Close is idempotent and returns the same
// result.
func TestServiceDoubleClose(t *testing.T) {
	m, err := NewManager(WithRunner("t", okRunner{}), WithExecutors(1))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := StartService(ServiceConfig{Manager: m, APIAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceRejectsAfterIntakeClose: once Close begins, submissions
// answer 503 rather than silently queueing into a dying server.
func TestServiceIntakeCloses(t *testing.T) {
	m, err := NewManager(WithRunner("t", okRunner{}), WithExecutors(1))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := StartService(ServiceConfig{Manager: m, APIAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	m.CloseIntake()
	resp, err := http.Post("http://"+svc.Addr()+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"t","tenant":"a"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after intake close = %d, want 503", resp.StatusCode)
	}
}
