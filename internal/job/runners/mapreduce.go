package runners

import (
	"context"
	"math/rand"
	"path/filepath"
	"strings"

	"repro/internal/fault"
	"repro/internal/job"
	"repro/internal/mapreduce"
	"repro/internal/obs"
)

// MapReduceParams is the "mapreduce" kind's parameter schema. The
// only built-in job is the canonical word count over a deterministic
// synthetic corpus — same seed, same corpus, same counts — which
// keeps server results reproducible without shipping input files
// over the wire.
type MapReduceParams struct {
	// Job names the computation; only "wordcount" exists.
	Job string `json:"job,omitempty"`
	// Docs is the synthetic corpus size in documents; default 500.
	Docs int `json:"docs,omitempty"`
	// Seed drives corpus generation; default 99.
	Seed *int64 `json:"seed,omitempty"`
	// MapTasks/ReduceTasks shape the run; defaults 16 and 4.
	MapTasks    int `json:"mapTasks,omitempty"`
	ReduceTasks int `json:"reduceTasks,omitempty"`
	// Parallelism bounds concurrent tasks; 0 means GOMAXPROCS.
	Parallelism int `json:"parallelism,omitempty"`
	// MaxAttempts is the per-task retry budget.
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// TopK bounds the ranked word list in the output; default 10.
	TopK int `json:"topK,omitempty"`
	// Faults is a fault-plan string enabling task-failure injection.
	Faults string `json:"faults,omitempty"`
}

func (p *MapReduceParams) withDefaults() {
	if p.Job == "" {
		p.Job = "wordcount"
	}
	if p.Docs == 0 {
		p.Docs = 500
	}
	if p.Seed == nil {
		s := int64(99)
		p.Seed = &s
	}
	if p.MapTasks == 0 {
		p.MapTasks = 16
	}
	if p.ReduceTasks == 0 {
		p.ReduceTasks = 4
	}
	if p.TopK == 0 {
		p.TopK = 10
	}
}

// WordCount is one ranked entry in the output.
type WordCount struct {
	Word  string `json:"word"`
	Count int    `json:"count"`
}

// MapReduceOutput is the "mapreduce" kind's result schema.
type MapReduceOutput struct {
	Job         string      `json:"job"`
	Docs        int         `json:"docs"`
	Records     int         `json:"records"`
	Words       int         `json:"words"`
	UniqueWords int         `json:"uniqueWords"`
	TaskRetries int         `json:"taskRetries"`
	Top         []WordCount `json:"top"`
}

// MapReduce adapts the MapReduce runtime to job.Runner.
type MapReduce struct{}

func (r *MapReduce) decode(spec job.Spec) (MapReduceParams, error) {
	var p MapReduceParams
	if err := decodeParams(spec, &p); err != nil {
		return p, err
	}
	p.withDefaults()
	if p.Job != "wordcount" {
		return p, job.Badf("unknown mapreduce job %q (only wordcount)", p.Job)
	}
	if p.Docs < 1 || p.Docs > 1_000_000 {
		return p, job.Badf("docs must be 1..1000000")
	}
	if p.Faults != "" {
		if _, err := fault.Parse(p.Faults); err != nil {
			return p, job.Badf("%v", err)
		}
	}
	return p, nil
}

func (r *MapReduce) Validate(spec job.Spec) error {
	_, err := r.decode(spec)
	return err
}

// corpus builds the deterministic synthetic document set.
func corpus(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"peachy", "parallel", "assignments", "sandpile", "montage",
		"ghost", "cells", "carbon", "treasure", "hunt", "stripes", "workflow"}
	lines := make([]string, n)
	for i := range lines {
		var b strings.Builder
		for w := 0; w < 6+rng.Intn(10); w++ {
			b.WriteString(vocab[rng.Intn(len(vocab))])
			b.WriteByte(' ')
		}
		lines[i] = strings.TrimSpace(b.String())
	}
	return lines
}

func (r *MapReduce) Run(ctx context.Context, spec job.Spec, prog *obs.Progress) (job.Result, error) {
	p, err := r.decode(spec)
	if err != nil {
		return job.Result{}, err
	}
	env := job.EnvFrom(ctx)
	var plan *fault.Plan
	if p.Faults != "" {
		plan, _ = fault.Parse(p.Faults)
	}
	docs := corpus(p.Docs, *p.Seed)
	prog.Update("mapreduce", obs.F("docs", float64(p.Docs)))

	wc := &mapreduce.Job[string, string, int, mapreduce.KV[string, int]]{
		Name: "wordcount",
		Map: func(line string, emit func(string, int)) error {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
			return nil
		},
		Combine: func(k string, vs []int) ([]int, error) {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			return []int{sum}, nil
		},
		Reduce: func(k string, vs []int, emit func(mapreduce.KV[string, int])) error {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			emit(mapreduce.KV[string, int]{Key: k, Value: sum})
			return nil
		},
		Config: mapreduce.NewConfig(
			mapreduce.WithMapTasks[string](p.MapTasks),
			mapreduce.WithReduceTasks[string](p.ReduceTasks),
			mapreduce.WithParallelism[string](p.Parallelism),
			mapreduce.WithMaxAttempts[string](p.MaxAttempts),
			mapreduce.WithObs[string](env.Obs),
			mapreduce.WithFaults[string](plan),
		),
	}
	if env.Ckpt != nil {
		// Durable map output: a restarted job resumes from the first
		// unfinished map task instead of remapping the corpus.
		wc.Spill = mapreduce.NewStringIntSpill(
			filepath.Join(env.Ckpt.Store().Dir(), "spill"), "wordcount")
	}

	out, stats, err := wc.RunContext(ctx, docs)
	if err != nil {
		return job.Result{}, err
	}
	res := MapReduceOutput{
		Job: p.Job, Docs: p.Docs,
		Records:     stats.MapInputs,
		Words:       stats.MapOutputs,
		UniqueWords: stats.ReduceGroups,
		TaskRetries: stats.TaskRetries,
	}
	// Rank by count descending, ties by word ascending; the reduce
	// output is already key-sorted so the sort is stable across runs.
	ranked := make([]WordCount, len(out))
	for i, kv := range out {
		ranked[i] = WordCount{Word: kv.Key, Count: kv.Value}
	}
	for i := 1; i < len(ranked); i++ {
		for k := i; k > 0 && less(ranked[k], ranked[k-1]); k-- {
			ranked[k-1], ranked[k] = ranked[k], ranked[k-1]
		}
	}
	if len(ranked) > p.TopK {
		ranked = ranked[:p.TopK]
	}
	res.Top = ranked
	prog.Update("mapreduce", obs.F("uniqueWords", float64(res.UniqueWords)))
	return marshalOutput("mapreduce", res)
}

func less(a, b WordCount) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return a.Word < b.Word
}

var _ job.Runner = (*MapReduce)(nil)
