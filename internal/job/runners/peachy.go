package runners

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/job"
	"repro/internal/obs"
)

// PeachyParams is the "peachy" kind's parameter schema: run a set of
// the reproduction's experiments (every figure and table of the
// paper) and return their rendered reports.
type PeachyParams struct {
	// Experiments lists experiment IDs (E1, E5, ...); empty runs all.
	Experiments []string `json:"experiments,omitempty"`
	// Quick shrinks workloads to CI size.
	Quick bool `json:"quick,omitempty"`
	// Faults overrides the fault plans of fault-aware experiments.
	Faults string `json:"faults,omitempty"`
}

// ExperimentOutput is one experiment's slot in the output, in
// submission order.
type ExperimentOutput struct {
	ID       string `json:"id"`
	Artifact string `json:"artifact"`
	Title    string `json:"title"`
	// Report is the rendered text result (tables and notes).
	Report string `json:"report,omitempty"`
	// Artifacts names the image/SVG files the experiment produced;
	// the bytes themselves only materialize under the CLI, which
	// saves them through the OnResult hook.
	Artifacts []string `json:"artifacts,omitempty"`
	// Skipped marks experiments a resumed run found already done.
	Skipped bool `json:"skipped,omitempty"`
	// Error records a failed experiment; the set keeps going.
	Error string `json:"error,omitempty"`
}

// PeachyOutput is the "peachy" kind's result schema.
type PeachyOutput struct {
	Experiments []ExperimentOutput `json:"experiments"`
	Completed   int                `json:"completed"`
	Skipped     int                `json:"skipped,omitempty"`
	Failed      int                `json:"failed,omitempty"`
}

// Peachy adapts the experiment registry (internal/core) to
// job.Runner. The hook fields are CLI-only: live per-experiment
// reporting and artifact saving. Under the job server they stay nil
// and the result document carries the rendered reports.
type Peachy struct {
	// OnStart fires before an experiment runs.
	OnStart func(e core.Experiment)
	// OnSkip fires for experiments a resumed run skips.
	OnSkip func(e core.Experiment)
	// OnResult receives each successful experiment's full result —
	// including the image/SVG artifacts the JSON output reduces to
	// names — before the adapter moves on.
	OnResult func(e core.Experiment, r *core.Result)
}

func (a *Peachy) decode(spec job.Spec) (PeachyParams, error) {
	var p PeachyParams
	if err := decodeParams(spec, &p); err != nil {
		return p, err
	}
	for _, id := range p.Experiments {
		if _, err := core.Lookup(id); err != nil {
			return p, job.Badf("%v", err)
		}
	}
	if p.Faults != "" {
		if _, err := fault.Parse(p.Faults); err != nil {
			return p, job.Badf("%v", err)
		}
	}
	return p, nil
}

func (a *Peachy) Validate(spec job.Spec) error {
	_, err := a.decode(spec)
	return err
}

// The done-set snapshot: which experiment IDs already completed, so a
// resumed run (CLI -resume, or a job the server restarts) skips them.
const peachyPayload uint32 = 5

func encodeDone(done []string) []byte {
	var e ckpt.Enc
	e.U32(peachyPayload)
	e.U64(uint64(len(done)))
	for _, id := range done {
		e.Str(id)
	}
	return e.Bytes()
}

func decodeDone(payload []byte, epoch uint64) ([]string, error) {
	dec := ckpt.NewDec(payload)
	if tag := dec.U32(); tag != peachyPayload {
		return nil, fmt.Errorf("snapshot has payload tag %d, want %d", tag, peachyPayload)
	}
	n := dec.U64()
	ids := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		ids = append(ids, dec.Str())
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if n != epoch {
		return nil, fmt.Errorf("snapshot epoch %d holds %d experiments", epoch, n)
	}
	return ids, nil
}

func (a *Peachy) Run(ctx context.Context, spec job.Spec, prog *obs.Progress) (job.Result, error) {
	p, err := a.decode(spec)
	if err != nil {
		return job.Result{}, err
	}
	env := job.EnvFrom(ctx)
	ids := p.Experiments
	if len(ids) == 0 {
		for _, e := range core.All() {
			ids = append(ids, e.ID)
		}
	}

	var done []string
	completed := map[string]bool{}
	if env.Ckpt != nil {
		if epoch, payload, ok, err := env.Ckpt.Load(); err != nil {
			return job.Result{}, err
		} else if ok {
			if done, err = decodeDone(payload, epoch); err != nil {
				return job.Result{}, err
			}
			for _, id := range done {
				completed[id] = true
			}
		}
	}

	cfg := core.Config{Quick: p.Quick, Obs: env.Obs}
	if p.Faults != "" {
		cfg.Faults, _ = fault.Parse(p.Faults)
	}

	out := PeachyOutput{Experiments: make([]ExperimentOutput, 0, len(ids))}
	prog.Update("peachy", obs.F("experiments", float64(len(ids))))
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return job.Result{}, err
		}
		e, _ := core.Lookup(id)
		slot := ExperimentOutput{ID: e.ID, Artifact: e.Artifact, Title: e.Title}
		if completed[e.ID] {
			slot.Skipped = true
			out.Skipped++
			out.Experiments = append(out.Experiments, slot)
			if a.OnSkip != nil {
				a.OnSkip(e)
			}
			continue
		}
		if a.OnStart != nil {
			a.OnStart(e)
		}
		res, err := e.Run(cfg)
		if err != nil {
			slot.Error = err.Error()
			out.Failed++
			out.Experiments = append(out.Experiments, slot)
			continue
		}
		slot.Report = res.Render()
		for name := range res.Images {
			slot.Artifacts = append(slot.Artifacts, name)
		}
		for name := range res.SVGs {
			slot.Artifacts = append(slot.Artifacts, name)
		}
		sort.Strings(slot.Artifacts)
		out.Completed++
		out.Experiments = append(out.Experiments, slot)
		if a.OnResult != nil {
			a.OnResult(e, res)
		}
		prog.Update("peachy", obs.F("done", float64(out.Completed+out.Skipped)))
		if env.Ckpt != nil {
			done = append(done, e.ID)
			if err := env.Ckpt.Save(uint64(len(done)), encodeDone(done)); err != nil {
				return job.Result{}, err
			}
		}
	}
	return marshalOutput("peachy", out)
}

var _ job.Runner = (*Peachy)(nil)
