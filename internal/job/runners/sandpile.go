package runners

import (
	"context"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/ghost"
	"repro/internal/grid"
	"repro/internal/hetero"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/sandpile"
	"repro/internal/sched"
	"repro/internal/trace"
)

// SandpileParams is the "sandpile" kind's parameter schema: the same
// knobs cmd/sandpile exposes as flags, minus the output artifacts
// (PNG/GIF/trace files), which stay CLI-only through the adapter's
// hook fields.
type SandpileParams struct {
	// Variant is the kernel variant name (engine.Names); default
	// "seq-async". Ignored when Ranks > 0 or Hetero is set.
	Variant string `json:"variant,omitempty"`
	// Config is the initial pile: center|uniform|sparse|random.
	Config string `json:"config,omitempty"`
	// Grains seeds the pile; default 25000.
	Grains uint32 `json:"grains,omitempty"`
	// Size is the grid edge length; default 128.
	Size int `json:"size,omitempty"`
	// Tile is the tile edge for tiled variants; default 32.
	Tile int `json:"tile,omitempty"`
	// Workers is the worker-team size; 0 means GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Policy is the loop schedule; default "dynamic".
	Policy string `json:"policy,omitempty"`
	// Seed drives stochastic configurations; default 42.
	Seed *int64 `json:"seed,omitempty"`
	// MaxIters caps iterations; 0 runs to stability.
	MaxIters int `json:"maxIters,omitempty"`
	// Ranks > 0 selects the simulated-MPI ghost-cell engine.
	Ranks int `json:"ranks,omitempty"`
	// GhostWidth is the ghost band width for Ranks mode; default 1.
	GhostWidth int `json:"ghostWidth,omitempty"`
	// Hetero selects the hybrid CPU+device engine.
	Hetero bool `json:"hetero,omitempty"`
	// DeviceWorkers is the simulated device parallelism; default 4.
	DeviceWorkers int `json:"deviceWorkers,omitempty"`
	// Faults is a fault-plan string for Ranks/Hetero modes (see
	// internal/fault).
	Faults string `json:"faults,omitempty"`
}

func (p *SandpileParams) withDefaults() {
	if p.Variant == "" {
		p.Variant = "seq-async"
	}
	if p.Config == "" {
		p.Config = "center"
	}
	if p.Grains == 0 {
		p.Grains = 25000
	}
	if p.Size == 0 {
		p.Size = 128
	}
	if p.Tile == 0 {
		p.Tile = 32
	}
	if p.Policy == "" {
		p.Policy = "dynamic"
	}
	if p.Seed == nil {
		s := int64(42)
		p.Seed = &s
	}
	if p.GhostWidth == 0 {
		p.GhostWidth = 1
	}
	if p.DeviceWorkers == 0 {
		p.DeviceWorkers = 4
	}
}

// BuildConfig maps the config name to its sandpile.Config. Exported
// so cmd/sandpile can reuse the mapping (it prints cfg.Name).
func (p SandpileParams) BuildConfig() (sandpile.Config, error) {
	switch p.Config {
	case "center":
		return sandpile.Center(p.Grains), nil
	case "uniform":
		return sandpile.Uniform(p.Grains), nil
	case "sparse":
		return sandpile.Sparse(0.001, p.Grains), nil
	case "random":
		return sandpile.Random(p.Grains), nil
	}
	return sandpile.Config{}, job.Badf("unknown sandpile config %q", p.Config)
}

// SandpileOutput is the "sandpile" kind's result schema.
type SandpileOutput struct {
	Mode       string `json:"mode"` // variant|ghost|hetero
	Variant    string `json:"variant,omitempty"`
	Iterations int    `json:"iterations"`
	Topples    uint64 `json:"topples"`
	Absorbed   uint64 `json:"absorbed"`
	// InitialGrains is the pile's grain count at build time (the
	// conservation check: InitialGrains = FinalGrains + Absorbed).
	InitialGrains uint64 `json:"initialGrains"`
	// FinalGrains and Cells describe the stable configuration:
	// remaining grains and the cell count per value 0..3.
	FinalGrains uint64 `json:"finalGrains"`
	Cells       []int  `json:"cells"`
	Stable      bool   `json:"stable"`
	// Ghost carries the distributed-mode communication report.
	Ghost *GhostOutput `json:"ghost,omitempty"`
	// Hetero carries the hybrid-mode split report.
	Hetero *HeteroOutput `json:"hetero,omitempty"`
}

// GhostOutput is the Ranks-mode extra: the communication ledger.
type GhostOutput struct {
	Ranks          int    `json:"ranks"`
	GhostWidth     int    `json:"ghostWidth"`
	Exchanges      int    `json:"exchanges"`
	Messages       int    `json:"messages"`
	BytesSent      uint64 `json:"bytesSent"`
	RedundantCells uint64 `json:"redundantCells"`
	Recoveries     int    `json:"recoveries"`
	// FaultSchedule is the injector's fired-fault log (reproducible:
	// same seed, same schedule); empty without faults.
	FaultSchedule []string `json:"faultSchedule,omitempty"`
}

// HeteroOutput is the Hetero-mode extra: the CPU/device split.
type HeteroOutput struct {
	DeviceTiles   int     `json:"deviceTiles"`
	CPUTiles      int     `json:"cpuTiles"`
	FinalFraction float64 `json:"finalFraction"`
	DeviceStalled bool    `json:"deviceStalled,omitempty"`
}

// Sandpile adapts the sandpile engines to job.Runner. The exported
// hook fields are CLI-only extras — live monitoring, trace capture,
// and access to the final grid for image output — and stay zero under
// the job server.
type Sandpile struct {
	// OnIteration observes every engine iteration (variant mode).
	OnIteration func(engine.IterStats)
	// Recorder captures tile-task events for iterations in
	// [TraceFrom, TraceTo] (variant mode).
	Recorder           *trace.Recorder
	TraceFrom, TraceTo int
	// GridSink receives the final grid before Run returns.
	GridSink func(*grid.Grid)
}

func (s *Sandpile) decode(spec job.Spec) (SandpileParams, error) {
	var p SandpileParams
	if err := decodeParams(spec, &p); err != nil {
		return p, err
	}
	p.withDefaults()
	if p.Size < 1 {
		return p, job.Badf("size must be >= 1")
	}
	if p.Size > 1<<14 {
		return p, job.Badf("size %d over the 16384 limit", p.Size)
	}
	if _, err := sched.ParsePolicy(p.Policy); err != nil {
		return p, job.Badf("%v", err)
	}
	if _, err := p.BuildConfig(); err != nil {
		return p, err
	}
	if p.Ranks > 0 && p.Hetero {
		return p, job.Badf("ranks and hetero are mutually exclusive")
	}
	if p.Ranks == 0 && !p.Hetero {
		if _, err := engine.Lookup(p.Variant); err != nil {
			return p, job.Badf("%v", err)
		}
	}
	if p.Faults != "" {
		if p.Ranks == 0 && !p.Hetero {
			return p, job.Badf("faults need ranks or hetero mode")
		}
		if _, err := fault.Parse(p.Faults); err != nil {
			return p, job.Badf("%v", err)
		}
	}
	return p, nil
}

func (s *Sandpile) Validate(spec job.Spec) error {
	_, err := s.decode(spec)
	return err
}

func (s *Sandpile) Run(ctx context.Context, spec job.Spec, prog *obs.Progress) (job.Result, error) {
	p, err := s.decode(spec)
	if err != nil {
		return job.Result{}, err
	}
	env := job.EnvFrom(ctx)
	cfg, _ := p.BuildConfig()
	var plan *fault.Plan
	if p.Faults != "" {
		plan, _ = fault.Parse(p.Faults)
	}
	g := cfg.Build(p.Size, p.Size, rand.New(rand.NewSource(*p.Seed)))
	initial := g.Sum()
	prog.Update("sandpile",
		obs.F("size", float64(p.Size)),
		obs.F("grains", float64(initial)))

	out := SandpileOutput{Mode: "variant", Variant: p.Variant}
	switch {
	case p.Ranks > 0:
		out.Mode, out.Variant = "ghost", ""
		rep, err := ghost.New(g,
			ghost.WithRanks(p.Ranks),
			ghost.WithWidth(p.GhostWidth),
			ghost.WithMaxIters(p.MaxIters),
			ghost.WithFaults(plan),
			ghost.WithObs(env.Obs),
			ghost.WithCheckpoint(env.Ckpt),
		).RunContext(ctx)
		if err != nil {
			return job.Result{}, err
		}
		out.Iterations, out.Topples, out.Absorbed = rep.Iterations, rep.Topples, rep.Absorbed
		out.Ghost = &GhostOutput{
			Ranks: rep.Ranks, GhostWidth: rep.GhostWidth,
			Exchanges: rep.Exchanges, Messages: rep.Messages,
			BytesSent: rep.BytesSent, RedundantCells: rep.RedundantCells,
			Recoveries: rep.Recoveries, FaultSchedule: rep.FaultSchedule,
		}
	case p.Hetero:
		out.Mode, out.Variant = "hetero", ""
		rep, err := hetero.New(g,
			hetero.WithTile(p.Tile, p.Tile),
			hetero.WithCPUWorkers(p.Workers),
			hetero.WithDevice(p.DeviceWorkers, 0),
			hetero.WithMaxIters(p.MaxIters),
			hetero.WithFaults(plan),
			hetero.WithObs(env.Obs),
			hetero.WithRecorder(s.Recorder),
		).RunContext(ctx)
		if err != nil {
			return job.Result{}, err
		}
		out.Iterations, out.Topples, out.Absorbed = rep.Iterations, rep.Topples, rep.Absorbed
		out.Hetero = &HeteroOutput{
			DeviceTiles:   rep.DeviceTiles,
			CPUTiles:      rep.CPUTiles,
			FinalFraction: rep.FinalFraction,
			DeviceStalled: rep.DeviceStalled,
		}
	default:
		pol, _ := sched.ParsePolicy(p.Policy)
		params := engine.Params{
			TileH: p.Tile, TileW: p.Tile,
			Workers: p.Workers, Policy: pol, MaxIters: p.MaxIters,
			Obs: env.Obs, Ckpt: env.Ckpt,
			Recorder: s.Recorder, TraceFrom: s.TraceFrom, TraceTo: s.TraceTo,
			OnIteration: s.OnIteration,
		}
		res, err := engine.RunContext(ctx, p.Variant, g, params)
		if err != nil {
			return job.Result{}, err
		}
		out.Iterations, out.Topples, out.Absorbed = res.Iterations, res.Topples, res.Absorbed
	}

	out.InitialGrains = initial
	out.FinalGrains = g.Sum()
	out.Cells = g.Histogram(4)[:4]
	out.Stable = sandpile.Stable(g)
	prog.Update("sandpile", obs.F("iterations", float64(out.Iterations)))
	if s.GridSink != nil {
		s.GridSink(g)
	}
	return marshalOutput("sandpile", out)
}

var _ job.Runner = (*Sandpile)(nil)
