package runners

import (
	"context"

	"repro/internal/fault"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/wfsched"
)

// WfsimParams is the "wfsim" kind's parameter schema: the modes of
// cmd/wfsim as one enum plus their knobs.
type WfsimParams struct {
	// Mode selects the experiment:
	//   tab1      - cluster sizing: Nodes powered-on nodes at PState
	//   tab2      - hybrid placement with per-level Fractions (or
	//               AllCloud); empty fractions means all-local
	//   optimize  - Tab 2 exhaustive CO2 optimizer (checkpointed)
	//   pareto    - Tab 2 time/CO2 Pareto frontier (checkpointed)
	//   greedy    - Tab 2 greedy hill-climb
	Mode string `json:"mode,omitempty"`
	// Nodes and PState configure tab1; defaults 64 and 6.
	Nodes  *int `json:"nodes,omitempty"`
	PState *int `json:"pstate,omitempty"`
	// Fractions are tab2's per-level cloud shares.
	Fractions []float64 `json:"fractions,omitempty"`
	// AllCloud places every tab2 task on the cloud.
	AllCloud bool `json:"allCloud,omitempty"`
	// Faults is a host-failure plan string (see internal/fault).
	Faults string `json:"faults,omitempty"`
	// DESWorkers selects the simulator's execution kernel: > 1 runs
	// the optimistic Time Warp engine with that many workers, 0 or 1
	// the sequential fast path. Outcomes are byte-identical either
	// way, so this is purely a throughput knob.
	DESWorkers *int `json:"desWorkers,omitempty"`
}

func (p *WfsimParams) withDefaults() {
	if p.Mode == "" {
		p.Mode = "tab1"
	}
	if p.Nodes == nil {
		n := wfsched.Tab1MaxNodes
		p.Nodes = &n
	}
	if p.PState == nil {
		ps := 6
		p.PState = &ps
	}
}

// WfsimOutput is the "wfsim" kind's result schema. Outcome fields
// are the simulator's (makespan seconds, energy kWh, gCO2e).
type WfsimOutput struct {
	Mode    string          `json:"mode"`
	Outcome wfsched.Outcome `json:"outcome"`
	// Fractions echoes the simulated (tab2) or best-found
	// (optimize/greedy) placement.
	Fractions []float64 `json:"fractions,omitempty"`
	// Frontier is the pareto mode's time/CO2 frontier.
	Frontier []FrontierPoint `json:"frontier,omitempty"`
	// Simulations counts placements evaluated (greedy, optimize,
	// pareto).
	Simulations int `json:"simulations,omitempty"`
	// MeetsBound reports the Tab 1 3-minute execution bound.
	MeetsBound *bool `json:"meetsBound,omitempty"`
}

// FrontierPoint is one Pareto-optimal placement.
type FrontierPoint struct {
	Fractions []float64 `json:"fractions"`
	Makespan  float64   `json:"makespan"`
	CO2       float64   `json:"co2"`
}

// Wfsim adapts the workflow-scheduling simulator to job.Runner.
type Wfsim struct{}

func (r *Wfsim) decode(spec job.Spec) (WfsimParams, error) {
	var p WfsimParams
	if err := decodeParams(spec, &p); err != nil {
		return p, err
	}
	p.withDefaults()
	switch p.Mode {
	case "tab1":
		_, ps := wfsched.Tab1Base()
		if *p.PState < 0 || *p.PState >= len(ps) {
			return p, job.Badf("pstate must be 0..%d", len(ps)-1)
		}
		if *p.Nodes < 1 || *p.Nodes > wfsched.Tab1MaxNodes {
			return p, job.Badf("nodes must be 1..%d", wfsched.Tab1MaxNodes)
		}
	case "tab2", "optimize", "pareto", "greedy":
		for _, f := range p.Fractions {
			if f < 0 || f > 1 {
				return p, job.Badf("fractions must be in [0,1]")
			}
		}
	default:
		return p, job.Badf("unknown wfsim mode %q", p.Mode)
	}
	if p.Faults != "" {
		if _, err := fault.Parse(p.Faults); err != nil {
			return p, job.Badf("%v", err)
		}
	}
	if p.DESWorkers != nil && *p.DESWorkers < 0 {
		return p, job.Badf("desWorkers must be >= 0")
	}
	return p, nil
}

// desWorkers returns the decoded worker count, 0 (sequential) when
// the field was absent.
func (p *WfsimParams) desWorkers() int {
	if p.DESWorkers == nil {
		return 0
	}
	return *p.DESWorkers
}

func (r *Wfsim) Validate(spec job.Spec) error {
	_, err := r.decode(spec)
	return err
}

func (r *Wfsim) Run(ctx context.Context, spec job.Spec, prog *obs.Progress) (job.Result, error) {
	p, err := r.decode(spec)
	if err != nil {
		return job.Result{}, err
	}
	env := job.EnvFrom(ctx)
	var plan *fault.Plan
	if p.Faults != "" {
		plan, _ = fault.Parse(p.Faults)
	}
	out := WfsimOutput{Mode: p.Mode}
	prog.Update("wfsim", obs.F("started", 1))

	if p.Mode == "tab1" {
		base, ps := wfsched.Tab1Base()
		base = base.With(wfsched.WithObs(env.Obs), wfsched.WithFaults(plan),
			wfsched.WithDESWorkers(p.desWorkers()))
		cfg := wfsched.ClusterConfig{Nodes: *p.Nodes, PState: *p.PState}
		o, err := wfsched.SimulateClusterContext(ctx, base, ps, cfg)
		if err != nil {
			return job.Result{}, err
		}
		out.Outcome = o
		meets := o.Makespan <= wfsched.Tab1BoundSec
		out.MeetsBound = &meets
		prog.Update("wfsim", obs.F("makespan", o.Makespan))
		return marshalOutput("wfsim", out)
	}

	sc := wfsched.Tab2Scenario().With(wfsched.WithObs(env.Obs), wfsched.WithFaults(plan),
		wfsched.WithDESWorkers(p.desWorkers()))
	switch p.Mode {
	case "tab2":
		place := wfsched.AllLocal
		switch {
		case p.AllCloud:
			place = wfsched.AllCloud
		case len(p.Fractions) > 0:
			place = wfsched.LevelFractions(sc.Workflow, p.Fractions)
			out.Fractions = p.Fractions
		}
		o, err := wfsched.SimulateContext(ctx, sc, place)
		if err != nil {
			return job.Result{}, err
		}
		out.Outcome = o
	case "greedy":
		best, sims := wfsched.GreedyFractions(sc, wfsched.Tab2Choices(sc.Workflow))
		out.Outcome = best.Outcome
		out.Fractions = best.Fractions
		out.Simulations = sims
	case "optimize", "pareto":
		chunk := int(spec.CheckpointEvery)
		if chunk <= 0 {
			chunk = 256
		}
		results, err := wfsched.EvaluateFractionsCheckpointed(
			sc, wfsched.Tab2Choices(sc.Workflow), env.Ckpt, chunk)
		if err != nil {
			return job.Result{}, err
		}
		if err := ctx.Err(); err != nil {
			return job.Result{}, err
		}
		out.Simulations = len(results)
		if p.Mode == "optimize" {
			best := results[0]
			for _, fr := range results[1:] {
				if fr.Outcome.CO2 < best.Outcome.CO2 {
					best = fr
				}
			}
			out.Outcome = best.Outcome
			out.Fractions = best.Fractions
		} else {
			frontier := wfsched.ParetoFrontier(results)
			out.Frontier = make([]FrontierPoint, len(frontier))
			for i, fr := range frontier {
				out.Frontier[i] = FrontierPoint{
					Fractions: fr.Fractions,
					Makespan:  fr.Outcome.Makespan,
					CO2:       fr.Outcome.CO2,
				}
			}
			if len(frontier) > 0 {
				out.Outcome = frontier[0].Outcome
			}
		}
	}
	prog.Update("wfsim", obs.F("makespan", out.Outcome.Makespan))
	return marshalOutput("wfsim", out)
}

var _ job.Runner = (*Wfsim)(nil)
