package runners

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/wfsched"
)

func spec(kind, params string) job.Spec {
	return job.Spec{Kind: kind, Tenant: "test", Params: json.RawMessage(params)}
}

// TestValidateRejections: every adapter turns malformed params into
// job.ErrBadSpec (the HTTP 400 class), including unknown keys — a
// typo'd parameter must fail the submission, not silently run
// defaults.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		kind   string
		params string
	}{
		{"sandpile typo'd key", "sandpile", `{"siez":64}`},
		{"sandpile bad config", "sandpile", `{"config":"spiral"}`},
		{"sandpile bad policy", "sandpile", `{"policy":"chaotic"}`},
		{"sandpile bad variant", "sandpile", `{"variant":"nope"}`},
		{"sandpile size over limit", "sandpile", `{"size":99999}`},
		{"sandpile ranks+hetero", "sandpile", `{"ranks":4,"hetero":true}`},
		{"sandpile faults without mode", "sandpile", `{"faults":"seed=7,crash=1@3"}`},
		{"sandpile bad fault plan", "sandpile", `{"ranks":4,"faults":"explode=now"}`},
		{"mapreduce typo'd key", "mapreduce", `{"documents":5}`},
		{"mapreduce unknown job", "mapreduce", `{"job":"grep"}`},
		{"mapreduce docs out of range", "mapreduce", `{"docs":2000000}`},
		{"wfsim unknown mode", "wfsim", `{"mode":"tab3"}`},
		{"wfsim pstate out of range", "wfsim", `{"pstate":99}`},
		{"wfsim nodes out of range", "wfsim", `{"nodes":1000}`},
		{"wfsim fraction out of range", "wfsim", `{"mode":"tab2","fractions":[1.5]}`},
		{"wfsim negative desWorkers", "wfsim", `{"desWorkers":-1}`},
		{"peachy unknown experiment", "peachy", `{"experiments":["E999"]}`},
		{"peachy bad fault plan", "peachy", `{"faults":"zap"}`},
	}
	table := Defaults()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := table[tc.kind].Validate(spec(tc.kind, tc.params))
			if !errors.Is(err, job.ErrBadSpec) {
				t.Fatalf("Validate = %v, want ErrBadSpec", err)
			}
		})
	}
	// Empty params mean all-defaults and validate clean.
	for kind, r := range table {
		if err := r.Validate(job.Spec{Kind: kind, Tenant: "test"}); err != nil {
			t.Errorf("%s with no params: %v", kind, err)
		}
	}
}

// TestManagerMatchesDirectRun is the unit-level half of the
// byte-identical guarantee: the Result a Manager produces for a spec
// equals the Result of calling the adapter directly (what the CLIs
// and peachyd -oneshot do).
func TestManagerMatchesDirectRun(t *testing.T) {
	specs := []job.Spec{
		spec("sandpile", `{"size":64,"grains":5000}`),
		spec("sandpile", `{"ranks":4,"size":64,"grains":20000}`),
		spec("mapreduce", `{"docs":100}`),
		spec("wfsim", `{"mode":"tab2","fractions":[0.5,1,1,1,1,1,1,1,1]}`),
		// Same placement on the Time Warp kernel: the byte-identical
		// guarantee extends through the job plane.
		spec("wfsim", `{"mode":"tab2","fractions":[0.5,1,1,1,1,1,1,1,1],"desWorkers":4}`),
	}

	opts := append(Register(), job.WithExecutors(2))
	m, err := job.NewManager(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	for _, s := range specs {
		t.Run(s.Kind+string(s.Params), func(t *testing.T) {
			direct, err := Defaults()[s.Kind].Run(context.Background(), s, obs.NewProgress(nil))
			if err != nil {
				t.Fatal(err)
			}
			directBytes, _ := json.Marshal(direct)

			v, err := m.Submit(s)
			if err != nil {
				t.Fatal(err)
			}
			actx, acancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer acancel()
			done, err := m.Await(actx, v.ID)
			if err != nil {
				t.Fatal(err)
			}
			if done.State != job.StateSucceeded {
				t.Fatalf("job %s: %s (%s)", v.ID, done.State, done.Error)
			}
			managed, _ := json.Marshal(done.Result)
			if !bytes.Equal(directBytes, managed) {
				t.Fatalf("managed result differs from direct run:\n direct: %s\nmanaged: %s",
					directBytes, managed)
			}
		})
	}
}

// TestWfsimMatchesLibrary pins the adapter to the library it wraps:
// tab1 output must equal a direct SimulateCluster call.
func TestWfsimMatchesLibrary(t *testing.T) {
	var w Wfsim
	res, err := w.Run(context.Background(),
		spec("wfsim", `{"nodes":21,"pstate":6}`), obs.NewProgress(nil))
	if err != nil {
		t.Fatal(err)
	}
	var out WfsimOutput
	if err := json.Unmarshal(res.Output, &out); err != nil {
		t.Fatal(err)
	}
	base, ps := wfsched.Tab1Base()
	want := wfsched.SimulateCluster(base, ps, wfsched.ClusterConfig{Nodes: 21, PState: 6})
	if out.Outcome != want {
		t.Fatalf("adapter outcome %+v != library outcome %+v", out.Outcome, want)
	}
	if out.MeetsBound == nil || *out.MeetsBound != (want.Makespan <= wfsched.Tab1BoundSec) {
		t.Fatalf("meetsBound = %v", out.MeetsBound)
	}
}

// TestWfsimTimeWarpOutputParity: a spec that differs only in
// desWorkers produces byte-identical Result JSON — the kernel choice
// is invisible on the wire.
func TestWfsimTimeWarpOutputParity(t *testing.T) {
	var w Wfsim
	seq, err := w.Run(context.Background(),
		spec("wfsim", `{"nodes":16,"pstate":4,"faults":"seed=7,hostfail=0.15,repair=4"}`),
		obs.NewProgress(nil))
	if err != nil {
		t.Fatal(err)
	}
	tw, err := w.Run(context.Background(),
		spec("wfsim", `{"nodes":16,"pstate":4,"faults":"seed=7,hostfail=0.15,repair=4","desWorkers":4}`),
		obs.NewProgress(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Output, tw.Output) {
		t.Fatalf("Time Warp output differs from sequential:\n seq: %s\n  tw: %s", seq.Output, tw.Output)
	}
}

// TestMapReduceDeterminism: same spec, same corpus, same counts —
// the property the synthetic-corpus design exists for.
func TestMapReduceDeterminism(t *testing.T) {
	var r MapReduce
	s := spec("mapreduce", `{"docs":200,"seed":7,"topK":5}`)
	a, err := r.Run(context.Background(), s, obs.NewProgress(nil))
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(context.Background(), s, obs.NewProgress(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Output, b.Output) {
		t.Fatalf("nondeterministic output:\n%s\n%s", a.Output, b.Output)
	}
	var out MapReduceOutput
	json.Unmarshal(a.Output, &out)
	if out.Docs != 200 || out.Words == 0 || len(out.Top) != 5 {
		t.Fatalf("output = %+v", out)
	}
	for i := 1; i < len(out.Top); i++ {
		if out.Top[i].Count > out.Top[i-1].Count {
			t.Fatalf("top list not ranked: %+v", out.Top)
		}
	}
}

// TestSandpileCancellation: a cancelled context stops a run with
// context.Canceled instead of computing to stability.
func TestSandpileCancellation(t *testing.T) {
	var sp Sandpile
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sp.Run(ctx, spec("sandpile", `{"size":256,"grains":2000000}`), obs.NewProgress(nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx = %v, want context.Canceled", err)
	}
}
