// Package runners adapts the repo's compute substrates — the sandpile
// engines, the MapReduce runtime, and the workflow-scheduling
// simulator — to the job.Runner interface, so one Manager executes
// all of them and one Spec schema submits them. Each adapter is also
// what the corresponding CLI calls directly: the command-line paths
// and the HTTP paths run the same code, which is what makes the
// byte-identical result guarantee checkable.
package runners

import (
	"bytes"
	"encoding/json"

	"repro/internal/job"
)

// Defaults returns the standard kind -> Runner table.
func Defaults() map[string]job.Runner {
	return map[string]job.Runner{
		"sandpile":  &Sandpile{},
		"mapreduce": &MapReduce{},
		"wfsim":     &Wfsim{},
		"peachy":    &Peachy{},
	}
}

// Register returns the manager options installing every default
// runner — sugar for job.NewManager(append(runners.Register(), ...)...).
func Register() []job.Option {
	var opts []job.Option
	for kind, r := range Defaults() {
		opts = append(opts, job.WithRunner(kind, r))
	}
	return opts
}

// decodeParams strictly decodes a Spec's params into dst: unknown
// fields are a validation error, so a typo'd parameter fails the
// submission instead of silently running defaults. A missing params
// object decodes as all-defaults.
func decodeParams(spec job.Spec, dst any) error {
	if len(spec.Params) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(spec.Params))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return job.Badf("%s params: %v", spec.Kind, err)
	}
	return nil
}

// marshalOutput wraps a kind's output object into a job.Result.
func marshalOutput(kind string, out any) (job.Result, error) {
	raw, err := json.Marshal(out)
	if err != nil {
		return job.Result{}, err
	}
	return job.Result{Kind: kind, Output: raw}, nil
}
