package stripes

import (
	"math"
	"testing"

	"repro/internal/climate"
	"repro/internal/mapreduce"
)

func genFiles(t *testing.T, p climate.Params, layout Layout) (*climate.Dataset, map[string]string) {
	t.Helper()
	d := climate.Generate(p)
	switch layout {
	case MonthLayout:
		return d, climate.MonthFiles(d)
	case StationLayout:
		return d, climate.StationFiles(d)
	case DWDLayout:
		return d, climate.DWDFiles(d)
	}
	t.Fatal("bad layout")
	return nil, nil
}

func TestComputeSeriesMatchesDirectOracle(t *testing.T) {
	d, files := genFiles(t, climate.Params{Seed: 5, StartYear: 1990, EndYear: 2000}, MonthLayout)
	s, stats, err := ComputeSeries(MonthLayout, files, mapreduce.Config[string]{MapTasks: 4, ReduceTasks: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := d.AnnualMeans()
	if s.StartYear != 1990 || s.EndYear() != 2000 {
		t.Fatalf("span %d..%d, want 1990..2000", s.StartYear, s.EndYear())
	}
	for y := 1990; y <= 2000; y++ {
		if math.Abs(s.Year(y)-want[y]) > 0.005 {
			t.Fatalf("year %d: mapreduce %.4f vs direct %.4f", y, s.Year(y), want[y])
		}
	}
	if stats.ReduceGroups != 11 {
		t.Fatalf("reduce groups = %d, want 11 years", stats.ReduceGroups)
	}
	if stats.MapInputs != 11*12*16 {
		t.Fatalf("map inputs = %d, want %d", stats.MapInputs, 11*12*16)
	}
}

// TestFormatInvariance is experiment E13: every file layout —
// including the authentic DWD regional-averages shape — must produce
// the identical series through the same pipeline.
func TestFormatInvariance(t *testing.T) {
	p := climate.Params{Seed: 8, StartYear: 1950, EndYear: 1970}
	_, monthFiles := genFiles(t, p, MonthLayout)
	a, _, err := ComputeSeries(MonthLayout, monthFiles, mapreduce.Config[string]{})
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range []Layout{StationLayout, DWDLayout} {
		_, files := genFiles(t, p, layout)
		b, _, err := ComputeSeries(layout, files, mapreduce.Config[string]{})
		if err != nil {
			t.Fatal(err)
		}
		if a.StartYear != b.StartYear || len(a.Means) != len(b.Means) {
			t.Fatalf("%v: spans differ: %d+%d vs %d+%d", layout,
				a.StartYear, len(a.Means), b.StartYear, len(b.Means))
		}
		for i := range a.Means {
			if math.Abs(a.Means[i]-b.Means[i]) > 1e-9 {
				t.Fatalf("year %d: month layout %.4f vs %v %.4f",
					a.StartYear+i, a.Means[i], layout, b.Means[i])
			}
		}
	}
}

func TestSeriesInvariantUnderEngineConfig(t *testing.T) {
	_, files := genFiles(t, climate.Params{Seed: 2, StartYear: 2000, EndYear: 2005}, MonthLayout)
	ref, _, err := ComputeSeries(MonthLayout, files, mapreduce.Config[string]{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []mapreduce.Config[string]{
		{MapTasks: 1, ReduceTasks: 1},
		{MapTasks: 7, ReduceTasks: 5, Parallelism: 8},
		{MapTasks: 3, ReduceTasks: 2, Parallelism: 1},
	} {
		s, _, err := ComputeSeries(MonthLayout, files, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Means {
			if math.Abs(s.Means[i]-ref.Means[i]) > 1e-9 {
				t.Fatalf("config %+v changed the result at year %d", cfg, ref.StartYear+i)
			}
		}
	}
}

// TestValidationIncompleteYearDetected is experiment E12: the
// incomplete final year must be flagged and shown to bias warm.
func TestValidationIncompleteYearDetected(t *testing.T) {
	p := climate.Params{Seed: 9, StartYear: 2000, EndYear: 2020, MissingFinalMonths: 3}
	_, files := genFiles(t, p, MonthLayout)
	s, _, err := ComputeSeries(MonthLayout, files, mapreduce.Config[string]{})
	if err != nil {
		t.Fatal(err)
	}
	v := Validate(s)
	if v.ExpectedCount != 12*16 {
		t.Fatalf("expected count = %d, want %d", v.ExpectedCount, 12*16)
	}
	if len(v.SuspectYears) != 1 || v.SuspectYears[0] != 2020 {
		t.Fatalf("suspect years = %v, want [2020]", v.SuspectYears)
	}
	// The biased year must read warmer than the same year computed
	// from the complete dataset (same seed: the present months'
	// temperatures are identical; dropping winter inflates the mean).
	pFull := p
	pFull.MissingFinalMonths = 0
	_, fullFiles := genFiles(t, pFull, MonthLayout)
	full, _, err := ComputeSeries(MonthLayout, fullFiles, mapreduce.Config[string]{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Year(2020) < full.Year(2020)+0.5 {
		t.Fatalf("incomplete 2020 (%.2f) should be biased warm vs complete 2020 (%.2f)",
			s.Year(2020), full.Year(2020))
	}
	// Excluding it yields NaN and a clean re-validation.
	clean := s.Exclude(v.SuspectYears)
	if !math.IsNaN(clean.Year(2020)) {
		t.Fatal("excluded year still has a value")
	}
}

func TestValidateCleanSeries(t *testing.T) {
	_, files := genFiles(t, climate.Params{Seed: 1, StartYear: 2000, EndYear: 2010}, MonthLayout)
	s, _, err := ComputeSeries(MonthLayout, files, mapreduce.Config[string]{})
	if err != nil {
		t.Fatal(err)
	}
	if v := Validate(s); len(v.SuspectYears) != 0 {
		t.Fatalf("clean series flagged: %v", v.SuspectYears)
	}
}

func TestColorScaleMeanPlusMinus15(t *testing.T) {
	s := &Series{StartYear: 2000, Means: []float64{8, 9, 10}, Counts: []int{1, 1, 1}}
	lo, hi := ColorScale(s)
	if math.Abs(lo-7.5) > 1e-9 || math.Abs(hi-10.5) > 1e-9 {
		t.Fatalf("scale = [%v, %v], want [7.5, 10.5]", lo, hi)
	}
}

func TestColorScaleIgnoresMissing(t *testing.T) {
	s := &Series{StartYear: 2000, Means: []float64{8, math.NaN(), 10}, Counts: []int{1, 0, 1}}
	lo, hi := ColorScale(s)
	if math.Abs(lo-7.5) > 1e-9 || math.Abs(hi-10.5) > 1e-9 {
		t.Fatalf("scale = [%v, %v], want [7.5, 10.5]", lo, hi)
	}
	empty := &Series{StartYear: 2000, Means: []float64{math.NaN()}, Counts: []int{0}}
	if lo, hi := ColorScale(empty); lo != 0 || hi != 0 {
		t.Fatalf("empty scale = [%v, %v]", lo, hi)
	}
}

func TestRenderFig6Geometry(t *testing.T) {
	_, files := genFiles(t, climate.Params{Seed: 4}, MonthLayout)
	s, _, err := ComputeSeries(MonthLayout, files, mapreduce.Config[string]{MapTasks: 8, ReduceTasks: 4})
	if err != nil {
		t.Fatal(err)
	}
	im := Render(s, 2, 40)
	if im.Bounds().Dx() != 139*2 || im.Bounds().Dy() != 40 {
		t.Fatalf("image %dx%d, want %dx40", im.Bounds().Dx(), im.Bounds().Dy(), 139*2)
	}
	// The last stripe (2019) must be redder than the first (1881).
	first := im.NRGBAAt(0, 0)
	last := im.NRGBAAt(im.Bounds().Dx()-1, 0)
	redFirst := int(first.R) - int(first.B)
	redLast := int(last.R) - int(last.B)
	if redLast <= redFirst {
		t.Fatalf("warming not visible: first %v last %v", first, last)
	}
}

func TestNormalizeErrors(t *testing.T) {
	if _, err := Normalize(Layout(99), nil); err == nil {
		t.Fatal("unknown layout accepted")
	}
	if _, err := Normalize(MonthLayout, map[string]string{}); err == nil {
		t.Fatal("missing month files accepted")
	}
}

func TestAnnualMeanJobRejectsGarbage(t *testing.T) {
	job := AnnualMeanJob(mapreduce.Config[string]{})
	if _, _, err := job.RunLines([]string{"notyear\t5.0"}); err == nil {
		t.Fatal("bad year accepted")
	}
	job = AnnualMeanJob(mapreduce.Config[string]{})
	if _, _, err := job.RunLines([]string{"2000\tnottemp"}); err == nil {
		t.Fatal("bad temp accepted")
	}
	job = AnnualMeanJob(mapreduce.Config[string]{})
	if _, _, err := job.RunLines([]string{"plainline"}); err == nil {
		t.Fatal("tabless line accepted")
	}
}

func TestSeriesYearOutOfRange(t *testing.T) {
	s := &Series{StartYear: 2000, Means: []float64{8}, Counts: []int{1}}
	if !math.IsNaN(s.Year(1999)) || !math.IsNaN(s.Year(2001)) {
		t.Fatal("out-of-range year not NaN")
	}
	if s.Year(2000) != 8 {
		t.Fatal("in-range year wrong")
	}
}

func TestLayoutString(t *testing.T) {
	if MonthLayout.String() != "month-files" || StationLayout.String() != "station-files" ||
		DWDLayout.String() != "dwd-regional-averages" {
		t.Fatal("layout names wrong")
	}
	if Layout(9).String() == "" {
		t.Fatal("unknown layout empty")
	}
}
