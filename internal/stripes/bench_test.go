package stripes

import (
	"testing"

	"repro/internal/climate"
	"repro/internal/mapreduce"
)

// Pipeline benchmarks: the cost of the four-phase warming-stripes
// workflow at the paper's full 1881-2019 span.

func BenchmarkPipelineMonthLayout(b *testing.B) {
	d := climate.Generate(climate.Params{Seed: 42})
	files := climate.MonthFiles(d)
	cfg := mapreduce.Config[string]{MapTasks: 8, ReduceTasks: 4, Parallelism: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ComputeSeries(MonthLayout, files, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineStationLayout(b *testing.B) {
	d := climate.Generate(climate.Params{Seed: 42})
	files := climate.StationFiles(d)
	cfg := mapreduce.Config[string]{MapTasks: 8, ReduceTasks: 4, Parallelism: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ComputeSeries(StationLayout, files, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateDataset(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		climate.Generate(climate.Params{Seed: int64(i)})
	}
}

func BenchmarkRenderStripes(b *testing.B) {
	d := climate.Generate(climate.Params{Seed: 42})
	s, _, err := ComputeSeries(MonthLayout, climate.MonthFiles(d), mapreduce.Config[string]{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Render(s, 4, 120)
	}
}
