// Package stripes implements the Warming-Stripes assignment end to
// end: the four phases of the data-science workflow the course walks
// students through — (1) data acquisition (a climate.Dataset), (2)
// pre-processing (normalizing either file layout into canonical
// records, the assignment's "format-invariant mapper" requirement),
// (3) analysis (a MapReduce job computing annual means), and (4)
// result validation (detecting incomplete years that would bias the
// averages).
//
// The output is the paper's Figure 6: one stripe per year, colored on
// a diverging scale whose range is the whole-span mean temperature
// ± 1.5 °C, exactly as the paper specifies.
package stripes

import (
	"fmt"
	"image"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/climate"
	"repro/internal/img"
	"repro/internal/mapreduce"
)

// Layout names an input file layout.
type Layout int

const (
	// MonthLayout is 12 files, one per month (rows = years, columns =
	// states).
	MonthLayout Layout = iota
	// StationLayout is one file per state (rows = year;month;temp).
	StationLayout
	// DWDLayout is the authentic Deutscher Wetterdienst
	// regional-averages shape (description line, Monat column,
	// Deutschland aggregate) the real assignment downloads.
	DWDLayout
)

func (l Layout) String() string {
	switch l {
	case MonthLayout:
		return "month-files"
	case StationLayout:
		return "station-files"
	case DWDLayout:
		return "dwd-regional-averages"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// Series is the analysis result: Germany-wide annual mean temperature
// per year. Missing years hold NaN.
type Series struct {
	StartYear int
	Means     []float64 // index i is year StartYear+i
	// Counts is the number of observations behind each mean, used by
	// validation.
	Counts []int
}

// Year returns the mean for a calendar year (NaN if out of range or
// missing).
func (s *Series) Year(y int) float64 {
	i := y - s.StartYear
	if i < 0 || i >= len(s.Means) {
		return math.NaN()
	}
	return s.Means[i]
}

// EndYear returns the last year of the series.
func (s *Series) EndYear() int { return s.StartYear + len(s.Means) - 1 }

// Normalize is the pre-processing phase: it parses files in the given
// layout and re-emits every observation as a canonical "year<TAB>temp"
// line, so the analysis job is identical no matter how the input was
// shaped — the assignment's software-engineering requirement that the
// mapper "be capable of averaging any kind of data".
func Normalize(layout Layout, files map[string]string) ([]string, error) {
	var recs []climate.Record
	var err error
	switch layout {
	case MonthLayout:
		recs, err = climate.ParseMonthFiles(files)
	case StationLayout:
		recs, err = climate.ParseStationFiles(files)
	case DWDLayout:
		recs, err = climate.ParseDWDFiles(files)
	default:
		return nil, fmt.Errorf("stripes: unknown layout %v", layout)
	}
	if err != nil {
		return nil, fmt.Errorf("stripes: normalize: %w", err)
	}
	// Canonical (year, month, state) order makes the pipeline
	// bit-identical across layouts: float summation order in the
	// reducer no longer depends on how the input files were shaped.
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Year != b.Year {
			return a.Year < b.Year
		}
		if a.Month != b.Month {
			return a.Month < b.Month
		}
		return a.State < b.State
	})
	lines := make([]string, len(recs))
	for i, r := range recs {
		lines[i] = fmt.Sprintf("%d\t%s", r.Year, strconv.FormatFloat(r.Temp, 'f', 2, 64))
	}
	return lines, nil
}

// AnnualMeanJob builds the analysis-phase MapReduce job: the mapper
// forwards (year, temp) pairs from canonical lines; the reducer
// averages all observations of a year and emits
// "year<TAB>mean<TAB>count".
func AnnualMeanJob(cfg mapreduce.Config[string]) *mapreduce.StreamJob {
	return &mapreduce.StreamJob{
		Name:   "annual-means",
		Config: cfg,
		Map: func(line string, emit func(string, string)) error {
			key, value := mapreduce.ParseKV(line)
			if key == "" || value == "" {
				return fmt.Errorf("stripes: malformed canonical line %q", line)
			}
			if _, err := strconv.Atoi(key); err != nil {
				return fmt.Errorf("stripes: bad year %q", key)
			}
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				return fmt.Errorf("stripes: bad temperature %q", value)
			}
			emit(key, value)
			return nil
		},
		Reduce: func(year string, values []string, emit func(string)) error {
			var sum float64
			for _, v := range values {
				t, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return fmt.Errorf("stripes: bad temperature %q for %s", v, year)
				}
				sum += t
			}
			mean := sum / float64(len(values))
			emit(fmt.Sprintf("%s\t%.4f\t%d", year, mean, len(values)))
			return nil
		},
	}
}

// ComputeSeries runs pre-processing + analysis over a dataset in the
// given layout and returns the annual-mean series.
func ComputeSeries(layout Layout, files map[string]string, cfg mapreduce.Config[string]) (*Series, mapreduce.Stats, error) {
	lines, err := Normalize(layout, files)
	if err != nil {
		return nil, mapreduce.Stats{}, err
	}
	out, stats, err := AnnualMeanJob(cfg).RunLines(lines)
	if err != nil {
		return nil, stats, err
	}
	return seriesFromOutput(out, stats)
}

func seriesFromOutput(out []string, stats mapreduce.Stats) (*Series, mapreduce.Stats, error) {
	type row struct {
		year, count int
		mean        float64
	}
	rows := make([]row, 0, len(out))
	for _, line := range out {
		fields := strings.Split(line, "\t")
		if len(fields) != 3 {
			return nil, stats, fmt.Errorf("stripes: malformed output %q", line)
		}
		y, err1 := strconv.Atoi(fields[0])
		m, err2 := strconv.ParseFloat(fields[1], 64)
		c, err3 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, stats, fmt.Errorf("stripes: malformed output %q", line)
		}
		rows = append(rows, row{y, c, m})
	}
	if len(rows) == 0 {
		return nil, stats, fmt.Errorf("stripes: job produced no years")
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].year < rows[j].year })
	start, end := rows[0].year, rows[len(rows)-1].year
	s := &Series{
		StartYear: start,
		Means:     make([]float64, end-start+1),
		Counts:    make([]int, end-start+1),
	}
	for i := range s.Means {
		s.Means[i] = math.NaN()
	}
	for _, r := range rows {
		s.Means[r.year-start] = r.mean
		s.Counts[r.year-start] = r.count
	}
	return s, stats, nil
}

// Validation is the result of the fourth workflow phase.
type Validation struct {
	// SuspectYears have fewer observations than the series' typical
	// year (e.g. a partially downloaded final year) or none at all.
	SuspectYears []int
	// ExpectedCount is the per-year observation count of a complete
	// year (the modal count).
	ExpectedCount int
}

// Validate flags years whose observation count deviates from the
// modal count — the "critically evaluate the data set" lesson: an
// incomplete final year silently biases its average.
func Validate(s *Series) Validation {
	counts := map[int]int{}
	for i, c := range s.Counts {
		if !math.IsNaN(s.Means[i]) {
			counts[c]++
		}
	}
	modal, best := 0, 0
	for c, n := range counts {
		if n > best || (n == best && c > modal) {
			modal, best = c, n
		}
	}
	v := Validation{ExpectedCount: modal}
	for i := range s.Means {
		if math.IsNaN(s.Means[i]) || s.Counts[i] != modal {
			v.SuspectYears = append(v.SuspectYears, s.StartYear+i)
		}
	}
	return v
}

// Exclude returns a copy of the series with the given years blanked
// to NaN (used to re-run the analysis after validation flags years).
func (s *Series) Exclude(years []int) *Series {
	out := &Series{
		StartYear: s.StartYear,
		Means:     append([]float64(nil), s.Means...),
		Counts:    append([]int(nil), s.Counts...),
	}
	for _, y := range years {
		if i := y - s.StartYear; i >= 0 && i < len(out.Means) {
			out.Means[i] = math.NaN()
			out.Counts[i] = 0
		}
	}
	return out
}

// ColorScale returns the stripe color range per the paper: "first
// computing the average temperature of the whole time span and then
// adding and subtracting 1.5 °C". Missing years are ignored.
func ColorScale(s *Series) (lo, hi float64) {
	var sum float64
	n := 0
	for _, m := range s.Means {
		if !math.IsNaN(m) {
			sum += m
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	mean := sum / float64(n)
	return mean - 1.5, mean + 1.5
}

// Render draws the Figure 6 image: one barWidth×height stripe per
// year on the ColorScale range.
func Render(s *Series, barWidth, height int) *image.NRGBA {
	lo, hi := ColorScale(s)
	return img.Stripes(s.Means, lo, hi, barWidth, height)
}
