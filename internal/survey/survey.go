// Package survey archives the paper's two non-computational
// artifacts — the EASYPAP student survey summarized in Figure 5 and
// the Table I student-feedback results of the workflow assignment
// (n = 11) — and renders them as aligned text tables. These are
// classroom measurements, not system outputs; reproducing them means
// reprinting the published numbers, which the bench harness does so
// that every figure and table of the paper has a regeneration target.
package survey

import (
	"fmt"
	"strings"
)

// Question is one multiple-choice survey item with its response
// counts, answer-choice order preserved.
type Question struct {
	Text    string
	Choices []string
	Counts  []int
}

// Survey is a titled set of questions with a sample size.
type Survey struct {
	Title string
	N     int
	Items []Question
}

// TableI returns the paper's Table I verbatim: "Student feedback
// (n = 11)" for the carbon-footprint workflow assignment at the
// University of Hawai'i at Mānoa, Fall 2021.
func TableI() Survey {
	likert := func(a, b, c, d, e string) []string { return []string{a, b, c, d, e} }
	return Survey{
		Title: "Table I: Student feedback (n = 11)",
		N:     11,
		Items: []Question{
			{
				Text:    "How easy / difficult is the assignment?",
				Choices: likert("very easy", "somewhat easy", "neither easy nor difficult", "somewhat difficult", "very difficult"),
				Counts:  []int{1, 6, 4, 0, 0},
			},
			{
				Text:    "How useful is the assignment?",
				Choices: likert("very useful", "useful", "somewhat useful", "of little use", "not useful"),
				Counts:  []int{5, 3, 3, 0, 0},
			},
			{
				Text:    "To what extent did the assignment help you learn new things?",
				Choices: likert("to a great extent", "to a moderate extent", "to some extent", "to a small extent", "not at all"),
				Counts:  []int{5, 4, 2, 0, 0},
			},
			{
				Text:    "Are you interested in learning more about this topic?",
				Choices: []string{"yes", "no"},
				Counts:  []int{10, 1},
			},
			{
				Text:    "How useful is simulation in this assignment?",
				Choices: likert("very useful", "useful", "somewhat useful", "of little use", "not useful"),
				Counts:  []int{6, 3, 3, 0, 0},
			},
			{
				Text:    "How valuable is the overall learning experience in the module?",
				Choices: likert("very much", "quite a bit", "somewhat", "a little", "not at all"),
				Counts:  []int{7, 3, 1, 0, 0},
			},
		},
	}
}

// Fig5 returns the EASYPAP survey of the sandpile assignment
// (Figure 5) as reported in the paper's narrative: the published
// figure is a graphic; the counts below encode its headline findings
// (students found EASYPAP helpful and its learning curve gentle) for
// the MapReduce-course companion survey the paper details in prose.
func Fig5() Survey {
	return Survey{
		Title: "Fig 5 companion: Warming-Stripes course survey (n = 8, winter 2021/22)",
		N:     8,
		Items: []Question{
			{
				Text:    "Were the prerequisites taught in class sufficient?",
				Choices: []string{"absolutely sufficient", "sufficient", "neutral", "insufficient", "absolutely insufficient"},
				Counts:  []int{2, 6, 0, 0, 0},
			},
			{
				Text:    "How difficult was the assignment?",
				Choices: []string{"too difficult", "difficult", "reasonable", "easy", "too easy"},
				Counts:  []int{0, 1, 7, 0, 0},
			},
			{
				Text:    "Did the assignment increase your interest in MapReduce?",
				Choices: []string{"increased", "unchanged/decreased"},
				Counts:  []int{7, 1},
			},
			{
				Text:    "Did it help understand the steps of a data-science project?",
				Choices: []string{"yes", "no/unsure"},
				Counts:  []int{7, 1},
			},
			{
				Text:    "How cool was the assignment?",
				Choices: []string{"very cool", "mostly cool", "okay", "mostly boring", "very boring"},
				Counts:  []int{1, 7, 0, 0, 0},
			},
		},
	}
}

// Validate checks structural consistency: every question's counts
// line up with its choices and no count is negative. It deliberately
// does not require totals to equal N: the published Table I itself
// sums one question ("How useful is simulation...") to 12 responses
// for n = 11, and this package archives the paper's numbers verbatim;
// use Inconsistencies to surface such rows.
func (s Survey) Validate() error {
	for _, q := range s.Items {
		if len(q.Choices) != len(q.Counts) {
			return fmt.Errorf("survey: %q has %d choices but %d counts", q.Text, len(q.Choices), len(q.Counts))
		}
		for _, c := range q.Counts {
			if c < 0 {
				return fmt.Errorf("survey: %q has a negative count", q.Text)
			}
		}
	}
	return nil
}

// Inconsistencies returns the questions whose response totals differ
// from the sample size, with their totals — the published Table I has
// exactly one such row.
func (s Survey) Inconsistencies() map[string]int {
	out := map[string]int{}
	for _, q := range s.Items {
		total := 0
		for _, c := range q.Counts {
			total += c
		}
		if total != s.N {
			out[q.Text] = total
		}
	}
	return out
}

// Render prints the survey as an aligned text table.
func (s Survey) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", s.Title)
	width := 0
	for _, q := range s.Items {
		for _, c := range q.Choices {
			if len(c) > width {
				width = len(c)
			}
		}
	}
	for _, q := range s.Items {
		fmt.Fprintf(&sb, "\n%s\n", q.Text)
		for i, c := range q.Choices {
			count := "-"
			if q.Counts[i] > 0 {
				count = fmt.Sprint(q.Counts[i])
			}
			fmt.Fprintf(&sb, "  %-*s %s\n", width, c, count)
		}
	}
	return sb.String()
}
