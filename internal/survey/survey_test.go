package survey

import (
	"strings"
	"testing"
)

func TestTableIMatchesPaper(t *testing.T) {
	s := TableI()
	if s.N != 11 {
		t.Fatalf("n = %d, want 11", s.N)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Items) != 6 {
		t.Fatalf("questions = %d, want 6", len(s.Items))
	}
	// Spot-check the published counts.
	if s.Items[0].Counts[1] != 6 { // "somewhat easy": 6
		t.Fatalf("somewhat easy = %d, want 6", s.Items[0].Counts[1])
	}
	if s.Items[3].Counts[0] != 10 { // interested: yes 10
		t.Fatalf("interested yes = %d, want 10", s.Items[3].Counts[0])
	}
	if s.Items[5].Counts[0] != 7 { // "very much": 7
		t.Fatalf("very much = %d, want 7", s.Items[5].Counts[0])
	}
	// The published table has exactly one internally inconsistent row
	// ("How useful is simulation..." sums to 12 for n = 11); every
	// other question sums to exactly n. We archive it verbatim and
	// surface it via Inconsistencies.
	inc := s.Inconsistencies()
	if len(inc) != 1 {
		t.Fatalf("inconsistencies = %v, want exactly the one the paper published", inc)
	}
	if got := inc["How useful is simulation in this assignment?"]; got != 12 {
		t.Fatalf("simulation-usefulness total = %d, want the paper's 12", got)
	}
}

func TestFig5CompanionMatchesPaperProse(t *testing.T) {
	s := Fig5()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.N != 8 {
		t.Fatalf("n = %d, want 8", s.N)
	}
	// "Six students thought ... sufficient, while two absolutely".
	if s.Items[0].Counts[0] != 2 || s.Items[0].Counts[1] != 6 {
		t.Fatalf("prerequisites counts = %v", s.Items[0].Counts)
	}
	// "Seven ... reasonable and one ... difficult".
	if s.Items[1].Counts[1] != 1 || s.Items[1].Counts[2] != 7 {
		t.Fatalf("difficulty counts = %v", s.Items[1].Counts)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := TableI()
	s.Items[0].Counts = s.Items[0].Counts[:2]
	if err := s.Validate(); err == nil {
		t.Fatal("mismatched counts accepted")
	}
	s = TableI()
	s.Items[0].Counts[0] = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative count accepted")
	}
	s = TableI()
	s.Items[0].Counts[0] = 100
	if len(s.Inconsistencies()) < 2 {
		t.Fatal("inflated count not surfaced as inconsistency")
	}
}

func TestRenderContainsEverything(t *testing.T) {
	out := TableI().Render()
	for _, want := range []string{
		"Table I", "somewhat easy", "very useful", "not at all", "yes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Zero counts render as dashes, like the paper's table.
	if !strings.Contains(out, " -") {
		t.Fatal("zero counts should render as '-'")
	}
}
