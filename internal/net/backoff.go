package net

// backoff.go: capped exponential backoff with deterministic jitter.
// Jitter prevents the thundering herd — a fleet of workers orphaned by
// one coordinator restart must not redial in lockstep — but this
// repository's fault story is replayable, so the jitter is a pure
// function of (seed, identity, attempt) rather than a random draw:
// same seed, same retry timeline, byte-identical fault schedules.

import (
	"hash/fnv"
	"io"
	"strconv"
	"time"
)

// Backoff computes retry delays: min(Base << (attempt-1), Max) scaled
// by a jitter factor in [0.5, 1.0) derived from (Seed, key, attempt).
// The zero value is usable and means 50ms base, 5s cap, seed 0.
type Backoff struct {
	Base time.Duration
	Max  time.Duration
	Seed int64
}

// Delay returns the wait before the attempt'th retry (1-based) of the
// operation identified by key. Deterministic and side-effect free.
func (b Backoff) Delay(key string, attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Scale into [d/2, d): full jitter on the top half keeps the
	// exponential envelope while decorrelating peers.
	u := jitter01(b.Seed, key, attempt)
	return d/2 + time.Duration(float64(d/2)*u)
}

// jitter01 maps (seed, key, attempt) to a uniform float in [0, 1):
// FNV-1a over the identity, mixed with the seed through a splitmix64
// finalizer — the same recipe internal/fault uses for its decisions.
func jitter01(seed int64, key string, attempt int) float64 {
	f := fnv.New64a()
	io.WriteString(f, key)
	io.WriteString(f, ":")
	io.WriteString(f, strconv.Itoa(attempt))
	x := f.Sum64() ^ uint64(seed)*0x9E3779B97F4A7C15
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
