// Package net is the multi-process transport layer: length-prefixed,
// CRC-framed messages over TCP or Unix sockets (or an in-process
// channel pair — the fast path), plus the coordinator/worker fleet
// protocol built on top: worker registration, heartbeat leases,
// death detection, respawn supervision, and reconnection with capped
// exponential backoff. It is what turns the simulated ranks of the
// ghost and mapreduce substrates into real OS processes whose SIGKILL
// is a real lost peer.
//
// The wire format deliberately reuses the ckpt frame discipline
// (magic, version, CRC-32, little-endian fixed-width integers) so a
// frame is auditable with xxd and corruption is always a named error,
// never a silent misparse. A clean shutdown sends an explicit close
// marker; a peer that vanishes mid-frame (SIGKILL, cut cable)
// surfaces as ErrTruncated — the two are never conflated.
package net

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layout (little-endian):
//
//	magic   [4]byte "PFR1"
//	version uint32  (1)
//	type    uint8   (control < FrameApp, application >= FrameApp)
//	length  uint32  payload bytes
//	payload [length]byte
//	crc     uint32  CRC-32 (IEEE) over everything before it
const (
	frameMagic   = "PFR1"
	frameVersion = 1
	headerLen    = 4 + 4 + 1 + 4
	// maxFramePayload bounds a frame so a corrupt length field cannot
	// trigger a giant allocation.
	maxFramePayload = 1 << 28
)

// Control frame types. Application messages must use types >= FrameApp;
// the rest of the byte space belongs to the protocol.
const (
	frameClose     uint8 = 0 // explicit close marker, empty payload
	frameHello     uint8 = 1 // worker -> coordinator registration
	frameWelcome   uint8 = 2 // coordinator -> worker lease grant
	frameHeartbeat uint8 = 3 // either direction, proves liveness
	// FrameApp is the first frame type available to applications.
	FrameApp uint8 = 16
)

// Named transport errors. Every failure mode of a read has exactly one
// of these in its chain, so callers can switch on errors.Is.
var (
	// ErrPeerClosed: the peer sent the explicit close marker — a clean,
	// intentional shutdown.
	ErrPeerClosed = errors.New("net: peer closed the connection")
	// ErrTruncated: the stream ended (or errored) mid-frame without a
	// close marker — the peer died or the link was cut.
	ErrTruncated = errors.New("net: truncated frame")
	// ErrCorrupt: bad magic, unsupported version, absurd length, or a
	// CRC mismatch — bytes arrived but they are not a valid frame.
	ErrCorrupt = errors.New("net: corrupt frame")
)

// writeFrame assembles and writes one frame as a single Write call.
func writeFrame(w io.Writer, typ uint8, payload []byte) error {
	buf := make([]byte, 0, headerLen+len(payload)+4)
	buf = append(buf, frameMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, frameVersion)
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame. A close marker returns ErrPeerClosed; any
// short read returns ErrTruncated; malformed bytes return ErrCorrupt.
func readFrame(r io.Reader) (uint8, []byte, error) {
	head := make([]byte, headerLen)
	if _, err := io.ReadFull(r, head); err != nil {
		return 0, nil, truncated(err)
	}
	if string(head[:4]) != frameMagic {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, head[:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != frameVersion {
		return 0, nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, frameVersion)
	}
	typ := head[8]
	n := binary.LittleEndian.Uint32(head[9:13])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: payload length %d exceeds %d", ErrCorrupt, n, maxFramePayload)
	}
	body := make([]byte, n+4) // payload + trailing CRC
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, truncated(err)
	}
	sum := crc32.ChecksumIEEE(head)
	sum = crc32.Update(sum, crc32.IEEETable, body[:n])
	if got := binary.LittleEndian.Uint32(body[n:]); got != sum {
		return 0, nil, fmt.Errorf("%w: CRC %08x, want %08x", ErrCorrupt, got, sum)
	}
	if typ == frameClose {
		return typ, nil, ErrPeerClosed
	}
	return typ, body[:n:n], nil
}

// truncated wraps a stream error so it carries ErrTruncated in its
// chain while keeping the original cause unwrappable (socket deadline
// errors must stay reachable for the ErrTimeout mapping).
func truncated(cause error) error {
	return fmt.Errorf("%w: %w", ErrTruncated, cause)
}
