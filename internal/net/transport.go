package net

// transport.go defines the transport abstraction and its socket
// implementation. A Transport makes Listeners and dials Conns; a Conn
// moves typed frames. The socket transport runs the frame codec over
// TCP or Unix stream sockets; chan.go provides the in-process fast
// path behind the same interface, so substrates pick per run without
// code changes.

import (
	"bufio"
	"errors"
	"fmt"
	gonet "net"
	"sync"
	"time"
)

// Msg is one application message: a frame type (>= FrameApp) and its
// payload. Payload encoding is the application's business — the ghost
// and mapreduce protocols use the ckpt codec.
type Msg struct {
	Type    uint8
	Payload []byte
}

// ErrTimeout is returned by Conn.Recv when the timeout elapses with no
// frame; the connection is still usable.
var ErrTimeout = fmt.Errorf("net: receive timed out")

// Conn is one framed, bidirectional connection. Send is safe for
// concurrent use (heartbeats and application traffic share a conn);
// Recv must be called from one goroutine at a time.
type Conn interface {
	Send(m Msg) error
	// Recv returns the next application or control frame. timeout 0
	// blocks forever; otherwise ErrTimeout after the deadline.
	Recv(timeout time.Duration) (Msg, error)
	// Close sends the close marker (best effort) and tears down the
	// connection. Idempotent.
	Close() error
	RemoteAddr() string
}

// Listener accepts inbound Conns.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the bound address in the transport's own notation —
	// handed to workers as their -join target.
	Addr() string
}

// Transport binds and dials one address family.
type Transport interface {
	Scheme() string
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// New returns the transport for a scheme: "tcp", "unix", or "chan".
func New(scheme string) (Transport, error) {
	switch scheme {
	case "tcp", "unix":
		return &sockTransport{network: scheme}, nil
	case "chan":
		return ChanTransport{}, nil
	}
	return nil, fmt.Errorf("net: unknown transport %q (want tcp, unix, or chan)", scheme)
}

// dialTimeout bounds a single socket connect; reconnect policy above
// this layer decides how often to try again.
const dialTimeout = 5 * time.Second

type sockTransport struct{ network string }

func (t *sockTransport) Scheme() string { return t.network }

func (t *sockTransport) Listen(addr string) (Listener, error) {
	ln, err := gonet.Listen(t.network, addr)
	if err != nil {
		return nil, fmt.Errorf("net: listen %s %s: %w", t.network, addr, err)
	}
	return &sockListener{ln: ln}, nil
}

func (t *sockTransport) Dial(addr string) (Conn, error) {
	c, err := gonet.DialTimeout(t.network, addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("net: dial %s %s: %w", t.network, addr, err)
	}
	if tc, ok := c.(*gonet.TCPConn); ok {
		tc.SetNoDelay(true) // round-trip latency matters more than packing
	}
	return newSockConn(c), nil
}

type sockListener struct{ ln gonet.Listener }

func (l *sockListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*gonet.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return newSockConn(c), nil
}

func (l *sockListener) Close() error { return l.ln.Close() }
func (l *sockListener) Addr() string { return l.ln.Addr().String() }

// sockConn frames a stream socket. The write mutex serializes the
// heartbeat goroutine with application sends; reads buffer through
// bufio so small frames don't pay a syscall per header.
type sockConn struct {
	c  gonet.Conn
	br *bufio.Reader

	wmu    sync.Mutex
	closed bool
	once   sync.Once
}

func newSockConn(c gonet.Conn) *sockConn {
	return &sockConn{c: c, br: bufio.NewReaderSize(c, 1<<16)}
}

func (s *sockConn) Send(m Msg) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed {
		return ErrPeerClosed
	}
	return writeFrame(s.c, m.Type, m.Payload)
}

func (s *sockConn) Recv(timeout time.Duration) (Msg, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if err := s.c.SetReadDeadline(deadline); err != nil {
		return Msg{}, err
	}
	typ, payload, err := readFrame(s.br)
	if err != nil {
		var ne gonet.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return Msg{}, ErrTimeout
		}
		return Msg{}, err
	}
	return Msg{Type: typ, Payload: payload}, nil
}

func (s *sockConn) Close() error {
	s.once.Do(func() {
		s.wmu.Lock()
		if !s.closed {
			s.closed = true
			// Best-effort close marker so the peer sees a clean shutdown
			// rather than a truncation.
			s.c.SetWriteDeadline(time.Now().Add(time.Second))
			writeFrame(s.c, frameClose, nil)
		}
		s.wmu.Unlock()
		s.c.Close()
	})
	return nil
}

func (s *sockConn) RemoteAddr() string { return s.c.RemoteAddr().String() }
