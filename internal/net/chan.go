package net

// chan.go is the in-process transport: the same Conn/Listener/
// Transport contract over a pair of buffered channels, with no
// serialization beyond a defensive payload copy. It is the fast path
// for single-process runs and the deterministic substrate the fleet
// tests run on — byte-equality between a "chan" run and a socket run
// is exactly the tentpole's acceptance criterion.

import (
	"fmt"
	"sync"
	"time"
)

// chanReg is the process-wide name registry chan listeners bind into.
var chanReg = struct {
	mu sync.Mutex
	ls map[string]*chanListener
}{ls: map[string]*chanListener{}}

// ChanTransport is the in-process channel transport. Addresses are
// arbitrary names in a process-wide namespace.
type ChanTransport struct{}

func (ChanTransport) Scheme() string { return "chan" }

func (ChanTransport) Listen(addr string) (Listener, error) {
	if addr == "" {
		return nil, fmt.Errorf("net: chan listen needs a nonempty name")
	}
	l := &chanListener{addr: addr, accept: make(chan *chanConn), done: make(chan struct{})}
	chanReg.mu.Lock()
	defer chanReg.mu.Unlock()
	if _, taken := chanReg.ls[addr]; taken {
		return nil, fmt.Errorf("net: chan address %q already bound", addr)
	}
	chanReg.ls[addr] = l
	return l, nil
}

func (ChanTransport) Dial(addr string) (Conn, error) {
	chanReg.mu.Lock()
	l := chanReg.ls[addr]
	chanReg.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("net: chan dial %q: connection refused", addr)
	}
	a2b := newChanPipe()
	b2a := newChanPipe()
	client := &chanConn{send: a2b, recv: b2a, addr: addr}
	server := &chanConn{send: b2a, recv: a2b, addr: addr + ":client"}
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("net: chan dial %q: connection refused", addr)
	}
}

type chanListener struct {
	addr   string
	accept chan *chanConn
	done   chan struct{}
	once   sync.Once
}

func (l *chanListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("net: chan listener %q closed", l.addr)
	}
}

func (l *chanListener) Close() error {
	l.once.Do(func() {
		chanReg.mu.Lock()
		delete(chanReg.ls, l.addr)
		chanReg.mu.Unlock()
		close(l.done)
	})
	return nil
}

func (l *chanListener) Addr() string { return l.addr }

// chanPipe is one direction of a chan connection. done is closed by
// the writing side's Close — the channel equivalent of the close
// marker: the reader drains what is buffered, then sees ErrPeerClosed.
type chanPipe struct {
	ch   chan Msg
	done chan struct{}
	once sync.Once
}

func newChanPipe() *chanPipe {
	return &chanPipe{ch: make(chan Msg, 1024), done: make(chan struct{})}
}

func (p *chanPipe) close() { p.once.Do(func() { close(p.done) }) }

type chanConn struct {
	send *chanPipe // we write send.ch and own send.done
	recv *chanPipe // the peer's send pipe
	addr string
}

func (c *chanConn) Send(m Msg) error {
	// Copy the payload: socket sends serialize, so the channel path must
	// not let sender and receiver alias one buffer.
	if m.Payload != nil {
		m.Payload = append([]byte(nil), m.Payload...)
	}
	select {
	case <-c.send.done:
		return ErrPeerClosed
	default:
	}
	select {
	case c.send.ch <- m:
		return nil
	case <-c.send.done: // we closed
		return ErrPeerClosed
	case <-c.recv.done: // peer closed; nobody will read this
		return ErrPeerClosed
	}
}

func (c *chanConn) Recv(timeout time.Duration) (Msg, error) {
	var expire <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case m := <-c.recv.ch:
		return m, nil
	case <-c.recv.done:
		// Peer closed — but deliver anything still buffered first, the
		// way a socket delivers bytes queued before the close marker.
		select {
		case m := <-c.recv.ch:
			return m, nil
		default:
			return Msg{}, ErrPeerClosed
		}
	case <-c.send.done: // local Close unblocks a pending read
		return Msg{}, ErrPeerClosed
	case <-expire:
		return Msg{}, ErrTimeout
	}
}

func (c *chanConn) Close() error {
	c.send.close()
	return nil
}

func (c *chanConn) RemoteAddr() string { return c.addr }
