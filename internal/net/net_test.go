package net

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ckpt"
)

// --- frame codec ---

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if err := writeFrame(&buf, FrameApp+uint8(i), p); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i, p := range payloads {
		typ, got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if typ != FrameApp+uint8(i) {
			t.Fatalf("frame %d: type %d, want %d", i, typ, FrameApp+uint8(i))
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload %q, want %q", i, got, p)
		}
	}
}

func TestFrameCloseMarker(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameClose, nil); err != nil {
		t.Fatal(err)
	}
	_, _, err := readFrame(&buf)
	if !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("close marker read: %v, want ErrPeerClosed", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, FrameApp, []byte("important bytes")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Every proper prefix must surface as ErrTruncated, never as a
	// parse of partial data and never as a clean close.
	for cut := 0; cut < len(whole); cut++ {
		_, _, err := readFrame(bytes.NewReader(whole[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix %d/%d: %v, want ErrTruncated", cut, len(whole), err)
		}
	}
}

func TestFrameCorruption(t *testing.T) {
	pristine := func() []byte {
		var buf bytes.Buffer
		writeFrame(&buf, FrameApp, []byte("checksummed"))
		return buf.Bytes()
	}
	cases := []struct {
		name string
		mut  func(b []byte)
	}{
		{"magic", func(b []byte) { b[0] ^= 0xFF }},
		{"version", func(b []byte) { b[4] = 99 }},
		{"payload", func(b []byte) { b[headerLen] ^= 0x01 }},
		{"type", func(b []byte) { b[8] ^= 0x01 }}, // CRC covers the header too
		{"crc", func(b []byte) { b[len(b)-1] ^= 0x01 }},
	}
	for _, tc := range cases {
		b := pristine()
		tc.mut(b)
		_, _, err := readFrame(bytes.NewReader(b))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s flip: %v, want ErrCorrupt", tc.name, err)
		}
	}
}

// --- transports ---

// transportsUnderTest yields each scheme with a fresh listen address.
func transportsUnderTest(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	return map[string]string{
		"tcp":  "127.0.0.1:0",
		"unix": filepath.Join(dir, "t.sock"),
		"chan": fmt.Sprintf("test-%s", t.Name()),
	}
}

func TestTransportRoundTrip(t *testing.T) {
	for scheme, addr := range transportsUnderTest(t) {
		t.Run(scheme, func(t *testing.T) {
			tr, err := New(scheme)
			if err != nil {
				t.Fatal(err)
			}
			ln, err := tr.Listen(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			done := make(chan error, 1)
			go func() {
				c, err := ln.Accept()
				if err != nil {
					done <- err
					return
				}
				defer c.Close()
				for {
					m, err := c.Recv(2 * time.Second)
					if err != nil {
						done <- err
						return
					}
					m.Type++ // echo with a visible transform
					if err := c.Send(m); err != nil {
						done <- err
						return
					}
				}
			}()
			c, err := tr.Dial(ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				want := []byte(fmt.Sprintf("msg-%d", i))
				if err := c.Send(Msg{Type: FrameApp, Payload: want}); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
				m, err := c.Recv(2 * time.Second)
				if err != nil {
					t.Fatalf("recv %d: %v", i, err)
				}
				if m.Type != FrameApp+1 || !bytes.Equal(m.Payload, want) {
					t.Fatalf("echo %d: type %d payload %q", i, m.Type, m.Payload)
				}
			}
			c.Close()
			if err := <-done; !errors.Is(err, ErrPeerClosed) {
				t.Fatalf("server saw %v after client close, want ErrPeerClosed", err)
			}
		})
	}
}

func TestTransportRecvTimeout(t *testing.T) {
	for scheme, addr := range transportsUnderTest(t) {
		t.Run(scheme, func(t *testing.T) {
			tr, _ := New(scheme)
			ln, err := tr.Listen(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			go ln.Accept()
			c, err := tr.Dial(ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			start := time.Now()
			_, err = c.Recv(50 * time.Millisecond)
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("Recv: %v, want ErrTimeout", err)
			}
			if time.Since(start) > 2*time.Second {
				t.Fatalf("timeout took %v", time.Since(start))
			}
			// The connection survives a timeout.
			if err := c.Send(Msg{Type: FrameApp}); err != nil {
				t.Fatalf("send after timeout: %v", err)
			}
		})
	}
}

func TestChanCloseDeliversBuffered(t *testing.T) {
	tr, _ := New("chan")
	ln, err := tr.Listen("buffered-close")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, _ := ln.Accept()
		accepted <- c
	}()
	c, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	// Queue a message, then close: the reader must still get the
	// message before seeing ErrPeerClosed — mirroring a socket that
	// delivers bytes queued ahead of the close marker.
	if err := c.Send(Msg{Type: FrameApp, Payload: []byte("last words")}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	m, err := srv.Recv(time.Second)
	if err != nil || string(m.Payload) != "last words" {
		t.Fatalf("buffered recv: %q, %v", m.Payload, err)
	}
	if _, err := srv.Recv(time.Second); !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("post-close recv: %v, want ErrPeerClosed", err)
	}
}

// --- backoff ---

func TestBackoffDeterministicAndCapped(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Max: 5 * time.Second, Seed: 7}
	for attempt := 1; attempt <= 12; attempt++ {
		d1 := b.Delay("dial:3", attempt)
		d2 := b.Delay("dial:3", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: nondeterministic delay %v vs %v", attempt, d1, d2)
		}
		envelope := 50 * time.Millisecond << min(attempt-1, 30)
		if envelope > b.Max {
			envelope = b.Max
		}
		if d1 < envelope/2 || d1 >= envelope {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d1, envelope/2, envelope)
		}
	}
	if d := b.Delay("dial:3", 40); d >= b.Max {
		t.Fatalf("capped delay %v not under max %v", d, b.Max)
	}
}

func TestBackoffJitterSpreadsPeers(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Minute}
	seen := map[time.Duration]bool{}
	for rank := 0; rank < 16; rank++ {
		seen[b.Delay(fmt.Sprintf("dial:%d", rank), 3)] = true
	}
	if len(seen) < 12 {
		t.Fatalf("16 peers share %d distinct delays; jitter is not spreading", len(seen))
	}
}

func TestBackoffZeroValue(t *testing.T) {
	var b Backoff
	if d := b.Delay("x", 1); d < 25*time.Millisecond || d >= 50*time.Millisecond {
		t.Fatalf("zero-value first delay %v outside [25ms, 50ms)", d)
	}
}

// --- fleet: coordinator + worker over the chan transport ---

// echoWorker runs a RunWorker that answers every app frame by echoing
// the payload at type+1, stopping on FrameApp+7.
func echoWorker(ctx context.Context, tr Transport, addr string, rank int) error {
	return RunWorker(ctx, WorkerConfig{
		Transport: tr, Join: addr, Rank: rank, Proto: "test/1",
		Backoff: Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
	}, func(m Msg, send func(Msg) error) error {
		if m.Type == FrameApp+7 {
			return ErrWorkerDone
		}
		return send(Msg{Type: m.Type + 1, Payload: m.Payload})
	})
}

func TestFleetRegisterAndEcho(t *testing.T) {
	tr, _ := New("chan")
	co, err := NewCoordinator(FleetConfig{
		Transport: tr, Listen: "fleet-echo", Workers: 2, Proto: "test/1",
		Lease: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for r := 0; r < 2; r++ {
		go echoWorker(ctx, tr, co.Addr(), r)
	}
	joined := 0
	for joined < 2 {
		ev := waitEvent(t, co)
		if ev.Kind != PeerJoined {
			t.Fatalf("unexpected event before joins: %+v", ev)
		}
		if ev.Rejoin {
			t.Fatalf("first join of rank %d flagged as rejoin", ev.Rank)
		}
		joined++
	}
	for r := 0; r < 2; r++ {
		if err := co.Send(r, Msg{Type: FrameApp, Payload: []byte("ping")}); err != nil {
			t.Fatalf("send to %d: %v", r, err)
		}
	}
	got := 0
	for got < 2 {
		ev := waitEvent(t, co)
		if ev.Kind != PeerMsg {
			continue
		}
		if ev.Msg.Type != FrameApp+1 || string(ev.Msg.Payload) != "ping" {
			t.Fatalf("echo from %d: type %d payload %q", ev.Rank, ev.Msg.Type, ev.Msg.Payload)
		}
		got++
	}
	st := co.Stats()
	if st.Sent != 2 || st.Received != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFleetLeaseExpiryAndRejoin(t *testing.T) {
	tr, _ := New("chan")
	co, err := NewCoordinator(FleetConfig{
		Transport: tr, Listen: "fleet-lease", Workers: 1, Proto: "test/1",
		Lease: 120 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	// A raw client that registers but never heartbeats: the lease must
	// expire it.
	conn, err := tr.Dial(co.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(Msg{Type: frameHello, Payload: helloPayload("test/1", 0)}); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, co); ev.Kind != PeerJoined {
		t.Fatalf("want join, got %+v", ev)
	}
	if ev := waitEvent(t, co); ev.Kind != PeerDead {
		t.Fatalf("want lease death, got %+v", ev)
	}
	if st := co.Stats(); st.LeaseExpired == 0 {
		t.Fatalf("lease expiry not counted: %+v", st)
	}
	conn.Close()

	// A real worker now rejoins the same rank; the join must carry the
	// rejoin flag.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go echoWorker(ctx, tr, co.Addr(), 0)
	ev := waitEvent(t, co)
	if ev.Kind != PeerJoined || !ev.Rejoin {
		t.Fatalf("want rejoin, got %+v", ev)
	}
	if err := co.Send(0, Msg{Type: FrameApp, Payload: []byte("alive?")}); err != nil {
		t.Fatal(err)
	}
	for {
		ev := waitEvent(t, co)
		if ev.Kind == PeerMsg {
			if string(ev.Msg.Payload) != "alive?" {
				t.Fatalf("echo payload %q", ev.Msg.Payload)
			}
			break
		}
	}
}

func TestFleetSupervisorRespawnsAndGivesUp(t *testing.T) {
	tr, _ := New("chan")
	var launches atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Rank 0's spawn starts a real worker; rank 1's spawn is a no-op,
	// so after MaxRespawns join timeouts the rank must be declared lost.
	co, err := NewCoordinator(FleetConfig{
		Transport: tr, Listen: "fleet-spawn", Workers: 2, Proto: "test/1",
		Lease: 150 * time.Millisecond, JoinTimeout: 100 * time.Millisecond,
		MaxRespawns: 3,
		Backoff:     Backoff{Base: 2 * time.Millisecond, Max: 10 * time.Millisecond},
		Spawn: func(rank int, addr string) error {
			launches.Add(1)
			if rank == 0 {
				go echoWorker(ctx, tr, addr, 0)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	sawJoin, sawLost := false, false
	deadline := time.After(10 * time.Second)
	for !(sawJoin && sawLost) {
		select {
		case ev := <-co.Events():
			switch {
			case ev.Kind == PeerJoined && ev.Rank == 0:
				sawJoin = true
			case ev.Kind == PeerLost && ev.Rank == 1:
				sawLost = true
			case ev.Kind == PeerLost && ev.Rank == 0:
				t.Fatal("healthy rank 0 declared lost")
			}
		case <-deadline:
			t.Fatalf("timeout; join=%v lost=%v after %d launches", sawJoin, sawLost, launches.Load())
		}
	}
	if st := co.Stats(); st.Lost != 1 {
		t.Fatalf("stats lost=%d, want 1", st.Lost)
	}
	// Late hellos from a lost rank are rejected: lost is sticky.
	conn, err := tr.Dial(co.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Send(Msg{Type: frameHello, Payload: helloPayload("test/1", 1)})
	if _, err := conn.Recv(300 * time.Millisecond); err == nil {
		t.Fatal("lost rank received a welcome")
	}
	conn.Close()
}

func TestFleetWorkerSurvivesCoordinatorRestart(t *testing.T) {
	tr, _ := New("chan")
	mk := func() *Coordinator {
		co, err := NewCoordinator(FleetConfig{
			Transport: tr, Listen: "fleet-restart", Workers: 1, Proto: "test/1",
			Lease: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return co
	}
	co := mk()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerErr := make(chan error, 1)
	go func() { workerErr <- echoWorker(ctx, tr, co.Addr(), 0) }()
	if ev := waitEvent(t, co); ev.Kind != PeerJoined {
		t.Fatalf("want join, got %+v", ev)
	}
	co.Close() // coordinator dies; worker must redial with backoff
	co = mk()
	defer co.Close()
	if ev := waitEvent(t, co); ev.Kind != PeerJoined {
		t.Fatalf("want join on the new coordinator, got %+v", ev)
	}
	// The worker is functional on the new incarnation; then stop it.
	if err := co.Send(0, Msg{Type: FrameApp + 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-workerErr:
		if err != nil {
			t.Fatalf("worker exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not stop")
	}
}

func TestWorkerGivesUpWithoutCoordinator(t *testing.T) {
	tr, _ := New("chan")
	err := RunWorker(context.Background(), WorkerConfig{
		Transport: tr, Join: "nobody-home", Rank: 0, Proto: "test/1",
		Backoff:         Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		MaxDialAttempts: 3,
	}, func(m Msg, send func(Msg) error) error { return nil })
	if err == nil {
		t.Fatal("worker returned nil with no coordinator")
	}
}

func TestHelloRejectsWrongProto(t *testing.T) {
	tr, _ := New("chan")
	co, err := NewCoordinator(FleetConfig{
		Transport: tr, Listen: "fleet-proto", Workers: 1, Proto: "test/1",
		Lease: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	conn, err := tr.Dial(co.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var e ckpt.Enc
	e.Str("other/9")
	e.I64(0)
	e.I64(1234)
	conn.Send(Msg{Type: frameHello, Payload: e.Bytes()})
	if _, err := conn.Recv(300 * time.Millisecond); err == nil {
		t.Fatal("wrong-proto hello received a welcome")
	}
}

func waitEvent(t *testing.T, co *Coordinator) Event {
	t.Helper()
	select {
	case ev := <-co.Events():
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("no fleet event within 10s")
		return Event{}
	}
}
