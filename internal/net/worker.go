package net

// worker.go is the worker half of the fleet protocol: dial the
// coordinator, register, adopt the lease the welcome carries, then
// pump frames into a handler while a background goroutine heartbeats.
// Any connection failure — dial refused, lease severed, coordinator
// restarting — feeds one reconnection loop with capped, deterministic
// backoff; only a handler error or the coordinator's clean shutdown
// ends the worker.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/ckpt"
	"repro/internal/obs"
)

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	Transport Transport
	// Join is the coordinator's address.
	Join string
	Rank int
	// Proto must match the coordinator's FleetConfig.Proto.
	Proto string
	// Backoff paces reconnection attempts; the zero value means 50ms
	// base, 5s cap.
	Backoff Backoff
	// MaxDialAttempts caps consecutive failed connection attempts
	// before the worker gives up (default 10). A completed session
	// resets the count.
	MaxDialAttempts int
	Obs             obs.Sink
}

// Handler processes one application frame. send delivers frames back
// to the coordinator on the same connection. Returning an error stops
// the worker; returning ErrWorkerDone stops it cleanly.
type Handler func(m Msg, send func(Msg) error) error

// ErrWorkerDone is the sentinel a Handler returns to stop the worker
// without error — typically on the protocol's stop message.
var ErrWorkerDone = errors.New("net: worker done")

// RunWorker joins the fleet at cfg.Join and serves frames to h until
// the handler finishes, the context is cancelled, or the coordinator
// stays unreachable past MaxDialAttempts. It reconnects through
// crashes on either side; after a rejoin the coordinator re-sends
// whatever the rank needs, so the handler just keeps handling.
func RunWorker(ctx context.Context, cfg WorkerConfig, h Handler) error {
	if cfg.Transport == nil {
		return fmt.Errorf("net: worker needs a transport")
	}
	if cfg.MaxDialAttempts <= 0 {
		cfg.MaxDialAttempts = 10
	}
	fails := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := runSession(ctx, cfg, h)
		switch {
		case err == nil || errors.Is(err, ErrWorkerDone):
			return nil
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return err
		case errors.Is(err, errSessionLive):
			// The connection served traffic before breaking: the
			// coordinator is alive, so the streak resets.
			fails = 0
		default:
			if fatal := (&fatalErr{}); errors.As(err, &fatal) {
				return fatal.err
			}
			fails++
			if fails > cfg.MaxDialAttempts {
				return fmt.Errorf("net: rank %d: coordinator unreachable after %d attempts: %w",
					cfg.Rank, fails-1, err)
			}
		}
		delay := cfg.Backoff.Delay(fmt.Sprintf("dial:%d", cfg.Rank), max(fails, 1))
		cfg.Obs.Log.Event(obs.LevelInfo, "net", "worker reconnecting",
			obs.Arg{Key: "rank", Value: int64(cfg.Rank)},
			obs.Arg{Key: "attempt", Value: int64(fails)},
			obs.Arg{Key: "delay_ms", Value: int64(delay / time.Millisecond)})
		if m := cfg.Obs.Metrics; m != nil {
			m.Counter("net.reconnects").Inc()
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// errSessionLive tags a session that got past registration before its
// connection broke — a reconnect case, not a dial-failure case.
var errSessionLive = errors.New("net: session broke after registration")

// fatalErr tags a handler failure so the reconnect loop propagates it
// instead of retrying.
type fatalErr struct{ err error }

func (f *fatalErr) Error() string { return f.err.Error() }
func (f *fatalErr) Unwrap() error { return f.err }

// runSession runs one connection lifetime: dial, hello/welcome, then
// the frame pump with background heartbeats.
func runSession(ctx context.Context, cfg WorkerConfig, h Handler) error {
	conn, err := cfg.Transport.Dial(cfg.Join)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(Msg{Type: frameHello, Payload: helloPayload(cfg.Proto, cfg.Rank)}); err != nil {
		return fmt.Errorf("net: hello: %w", err)
	}
	m, err := conn.Recv(dialTimeout)
	if err != nil {
		return fmt.Errorf("net: awaiting welcome: %w", err)
	}
	if m.Type != frameWelcome {
		return fmt.Errorf("net: expected welcome, got frame type %d", m.Type)
	}
	dec := ckpt.NewDec(m.Payload)
	lease := time.Duration(dec.I64()) * time.Millisecond
	if dec.Err() != nil || lease <= 0 {
		return fmt.Errorf("net: malformed welcome")
	}

	// From here on the session is live: failures mean reconnect, not
	// give-up.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(lease / 3)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				conn.Close() // unblock the Recv below
				return
			case <-tick.C:
				if conn.Send(Msg{Type: frameHeartbeat}) != nil {
					return
				}
			}
		}
	}()

	send := func(out Msg) error { return conn.Send(out) }
	// The coordinator heartbeats too, so a healthy conn is never idle
	// longer than a lease; 3x is a generous symmetric timeout.
	idle := 3 * lease
	for {
		m, err := conn.Recv(idle)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("%w: %w", errSessionLive, err)
		}
		if m.Type < FrameApp {
			continue // heartbeat or future control traffic
		}
		if err := h(m, send); err != nil {
			if errors.Is(err, ErrWorkerDone) {
				return ErrWorkerDone
			}
			return &fatalErr{err: err}
		}
	}
}
