package net

// fleet.go is the coordinator half of the process-fleet protocol. A
// Coordinator listens on one transport address and supervises a fixed
// set of ranks:
//
//   - registration: a worker's first frame is a hello (proto, rank,
//     pid); the coordinator answers with a welcome carrying the lease
//     duration, so workers need no out-of-band timing configuration.
//   - heartbeat leases: every frame from a worker refreshes its lease;
//     a worker silent for a full lease is declared dead and its
//     connection is severed. Death is also detected eagerly when the
//     connection itself breaks (a SIGKILLed process closes its socket).
//   - respawn supervision: with a Spawn hook, each dead rank is
//     relaunched under capped exponential backoff with deterministic
//     jitter; MaxRespawns consecutive launches that never register
//     declare the rank permanently lost, and the application degrades
//     gracefully (the ghost coordinator computes the lost block
//     itself; mapreduce reassigns or inlines the tasks).
//   - idempotent rejoin: the coordinator only reports Joined/Dead/Lost
//     transitions and delivers frames; the application layer answers a
//     rejoin by re-sending the rank's committed round or task, which
//     the deterministic substrates make safe to recompute.
//
// Everything the application sees arrives on one Events channel, so
// protocol state machines stay single-threaded.

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/obs"
)

// EventKind classifies a fleet event.
type EventKind uint8

const (
	// PeerJoined: the rank registered (Rejoin reports whether it had
	// been connected before — a reconnection rather than a first join).
	PeerJoined EventKind = iota
	// PeerDead: the rank's connection broke or its lease expired.
	PeerDead
	// PeerLost: the supervisor exhausted MaxRespawns consecutive
	// launches without a registration; the rank will not come back.
	PeerLost
	// PeerMsg: an application frame from the rank.
	PeerMsg
)

// Event is one fleet occurrence, delivered on Coordinator.Events.
type Event struct {
	Rank   int
	Kind   EventKind
	Rejoin bool // PeerJoined only
	Msg    Msg  // PeerMsg only
}

// FleetConfig configures a Coordinator.
type FleetConfig struct {
	Transport Transport
	// Listen is the bind address ("" picks a sensible default for the
	// scheme where possible; tcp accepts ":0").
	Listen  string
	Workers int
	// Proto names the application protocol (e.g. "ghost/1"); hellos
	// carrying a different name are rejected.
	Proto string
	// Lease is the heartbeat lease (default 2s): a worker silent this
	// long is dead. Workers heartbeat at a third of it.
	Lease time.Duration
	// JoinTimeout bounds how long a spawned worker may take to
	// register before the launch counts as failed (default 3x Lease).
	JoinTimeout time.Duration
	// Backoff paces respawns (and is echoed to nothing else); the zero
	// value means 50ms base, 5s cap.
	Backoff Backoff
	// Spawn launches the worker process (or goroutine) for a rank,
	// pointed at addr. nil disables supervision: workers join on their
	// own and dead ranks simply wait for a reconnection.
	Spawn func(rank int, addr string) error
	// MaxRespawns caps consecutive launches that never register before
	// the rank is declared lost (default 8). A successful registration
	// resets the count — a crash-looping worker is respawned forever,
	// which is exactly what the chaos harness exercises.
	MaxRespawns int
	Obs         obs.Sink
}

// ErrNotConnected is returned by Coordinator.Send for a rank with no
// live connection; the caller re-sends after the next PeerJoined.
var ErrNotConnected = fmt.Errorf("net: rank not connected")

// peer is the coordinator's per-rank state.
type peer struct {
	rank        int
	conn        Conn // nil while disconnected
	incarnation int  // bumps per registration; stale readers detect themselves
	lastSeen    time.Time
	everJoined  bool
	lost        bool
	joinHint    chan struct{} // buffered-1 nudges for the supervisor;
	deadHint    chan struct{} // authoritative state lives under mu
}

// FleetStats is a snapshot of the coordinator's transport counters.
type FleetStats struct {
	Sent, Received           int64 // application frames
	BytesSent, BytesReceived int64
	Heartbeats               int64
	Rejoins                  int64
	Respawns                 int64
	LeaseExpired             int64
	Deaths                   int64
	Lost                     int64
}

// Coordinator supervises a fleet of ranks over one listener.
type Coordinator struct {
	cfg    FleetConfig
	ln     Listener
	events chan Event
	done   chan struct{}
	wg     sync.WaitGroup

	mu     sync.Mutex
	peers  []*peer
	closed bool
	stats  FleetStats
}

// NewCoordinator binds the listener and starts the accept loop, lease
// checker, and (with a Spawn hook) one supervisor per rank. Callers
// drive the run off Events and must call Close when done.
func NewCoordinator(cfg FleetConfig) (*Coordinator, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("net: coordinator needs a transport")
	}
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("net: coordinator needs Workers >= 1, got %d", cfg.Workers)
	}
	if cfg.Lease <= 0 {
		cfg.Lease = 2 * time.Second
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = 3 * cfg.Lease
	}
	if cfg.MaxRespawns <= 0 {
		cfg.MaxRespawns = 8
	}
	ln, err := cfg.Transport.Listen(cfg.Listen)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:    cfg,
		ln:     ln,
		events: make(chan Event, 64+16*cfg.Workers),
		done:   make(chan struct{}),
		peers:  make([]*peer, cfg.Workers),
	}
	for i := range c.peers {
		c.peers[i] = &peer{
			rank:     i,
			joinHint: make(chan struct{}, 1),
			deadHint: make(chan struct{}, 1),
		}
	}
	c.wg.Add(2)
	go c.acceptLoop()
	go c.leaseLoop()
	if cfg.Spawn != nil {
		for i := 0; i < cfg.Workers; i++ {
			c.wg.Add(1)
			go c.supervise(i)
		}
	}
	return c, nil
}

// Addr is the bound listen address workers should join.
func (c *Coordinator) Addr() string { return c.ln.Addr() }

// Events delivers joins, deaths, losses, and application frames in
// arrival order. The channel is never closed before Close returns.
func (c *Coordinator) Events() <-chan Event { return c.events }

// Stats snapshots the transport counters.
func (c *Coordinator) Stats() FleetStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Send delivers an application frame to a rank, or ErrNotConnected.
// A send error means the connection is going down; the caller will see
// a PeerDead event and can re-send after the rejoin.
func (c *Coordinator) Send(rank int, m Msg) error {
	c.mu.Lock()
	p := c.peers[rank]
	conn := p.conn
	c.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("%w: rank %d", ErrNotConnected, rank)
	}
	if err := conn.Send(m); err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.Sent++
	c.stats.BytesSent += int64(len(m.Payload))
	c.mu.Unlock()
	c.count("net.frames_sent", 1)
	c.count("net.bytes_sent", int64(len(m.Payload)))
	return nil
}

// Connected reports whether the rank currently holds a live
// registered connection.
func (c *Coordinator) Connected(rank int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peers[rank].conn != nil
}

// Close tears the fleet down: listener and every live connection are
// closed (workers see a clean close marker), supervisors stop, and the
// events channel is closed once all internal goroutines have exited.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return
	}
	c.closed = true
	conns := make([]Conn, 0, len(c.peers))
	for _, p := range c.peers {
		if p.conn != nil {
			conns = append(conns, p.conn)
			p.conn = nil
		}
	}
	c.mu.Unlock()
	close(c.done)
	c.ln.Close()
	for _, conn := range conns {
		conn.Close()
	}
	c.wg.Wait()
	close(c.events)
}

// emit delivers an event unless the coordinator is shutting down.
func (c *Coordinator) emit(ev Event) {
	select {
	case c.events <- ev:
	case <-c.done:
	}
}

func (c *Coordinator) count(name string, delta int64) {
	if m := c.cfg.Obs.Metrics; m != nil {
		m.Counter(name).Add(delta)
	}
}

func (c *Coordinator) log(level obs.Level, msg string, args ...obs.Arg) {
	c.cfg.Obs.Log.Event(level, "net", msg, args...) // nil-safe
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go c.register(conn)
	}
}

// register runs the hello/welcome handshake on a fresh connection and
// installs it as its rank's live conn.
func (c *Coordinator) register(conn Conn) {
	defer c.wg.Done()
	m, err := conn.Recv(c.cfg.JoinTimeout)
	if err != nil || m.Type != frameHello {
		conn.Close()
		return
	}
	dec := ckpt.NewDec(m.Payload)
	proto := dec.Str()
	rank := int(dec.I64())
	pid := dec.I64()
	if dec.Err() != nil || proto != c.cfg.Proto || rank < 0 || rank >= c.cfg.Workers {
		c.log(obs.LevelWarn, "rejected hello",
			obs.Arg{Key: "rank", Value: int64(rank)})
		conn.Close()
		return
	}

	c.mu.Lock()
	p := c.peers[rank]
	if c.closed || p.lost {
		c.mu.Unlock()
		conn.Close()
		return
	}
	old := p.conn
	p.conn = conn
	p.incarnation++
	inc := p.incarnation
	p.lastSeen = time.Now()
	rejoin := p.everJoined
	p.everJoined = true
	if rejoin {
		c.stats.Rejoins++
	}
	c.mu.Unlock()

	if old != nil {
		old.Close() // a reconnect supersedes the stale conn
	}
	var e ckpt.Enc
	e.I64(int64(c.cfg.Lease / time.Millisecond))
	if err := conn.Send(Msg{Type: frameWelcome, Payload: e.Bytes()}); err != nil {
		c.peerDown(p, conn, inc, "welcome failed")
		return
	}
	select {
	case p.joinHint <- struct{}{}:
	default:
	}
	if rejoin {
		c.count("net.rejoins", 1)
		c.log(obs.LevelInfo, "worker rejoined",
			obs.Arg{Key: "rank", Value: int64(rank)},
			obs.Arg{Key: "pid", Value: pid},
			obs.Arg{Key: "incarnation", Value: int64(inc)})
	} else {
		c.log(obs.LevelInfo, "worker joined",
			obs.Arg{Key: "rank", Value: int64(rank)},
			obs.Arg{Key: "pid", Value: pid})
	}
	c.emit(Event{Rank: rank, Kind: PeerJoined, Rejoin: rejoin})
	c.reader(p, conn, inc)
}

// reader pumps one registered connection until it dies.
func (c *Coordinator) reader(p *peer, conn Conn, inc int) {
	for {
		m, err := conn.Recv(0)
		if err != nil {
			c.peerDown(p, conn, inc, "connection broke")
			return
		}
		c.mu.Lock()
		if p.conn == conn && p.incarnation == inc {
			p.lastSeen = time.Now()
		}
		c.mu.Unlock()
		switch {
		case m.Type == frameHeartbeat:
			c.mu.Lock()
			c.stats.Heartbeats++
			c.mu.Unlock()
		case m.Type >= FrameApp:
			c.mu.Lock()
			c.stats.Received++
			c.stats.BytesReceived += int64(len(m.Payload))
			c.mu.Unlock()
			c.count("net.frames_recv", 1)
			c.count("net.bytes_recv", int64(len(m.Payload)))
			c.emit(Event{Rank: p.rank, Kind: PeerMsg, Msg: m})
		}
	}
}

// peerDown records a death if (conn, inc) is still the rank's live
// incarnation; stale calls (a reader noticing a conn the lease checker
// already severed, or shutdown) are no-ops beyond closing the conn.
func (c *Coordinator) peerDown(p *peer, conn Conn, inc int, cause string) {
	c.mu.Lock()
	if c.closed || p.conn != conn || p.incarnation != inc {
		c.mu.Unlock()
		conn.Close()
		return
	}
	p.conn = nil
	c.stats.Deaths++
	c.mu.Unlock()
	conn.Close()
	select {
	case p.deadHint <- struct{}{}:
	default:
	}
	c.count("net.deaths", 1)
	c.log(obs.LevelWarn, "worker dead",
		obs.Arg{Key: "rank", Value: int64(p.rank)},
		obs.Arg{Key: "incarnation", Value: int64(inc)})
	_ = cause
	c.emit(Event{Rank: p.rank, Kind: PeerDead})
}

// leaseLoop expires silent workers and heartbeats the live ones (so
// workers can use a symmetric idle timeout on their side).
func (c *Coordinator) leaseLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.Lease / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
		}
		now := time.Now()
		type victim struct {
			p    *peer
			conn Conn
			inc  int
		}
		var expired []victim
		var live []Conn
		c.mu.Lock()
		for _, p := range c.peers {
			if p.conn == nil {
				continue
			}
			if now.Sub(p.lastSeen) > c.cfg.Lease {
				expired = append(expired, victim{p, p.conn, p.incarnation})
			} else {
				live = append(live, p.conn)
			}
		}
		c.mu.Unlock()
		for _, v := range expired {
			c.mu.Lock()
			c.stats.LeaseExpired++
			c.mu.Unlock()
			c.count("net.lease_expired", 1)
			c.log(obs.LevelWarn, "worker lease expired",
				obs.Arg{Key: "rank", Value: int64(v.p.rank)})
			c.peerDown(v.p, v.conn, v.inc, "lease expired")
		}
		for _, conn := range live {
			conn.Send(Msg{Type: frameHeartbeat}) // best effort
		}
	}
}

// supervise keeps one rank populated: spawn, wait for registration,
// wait for death, repeat — with jittered exponential backoff between
// consecutive launches that never register, and a PeerLost verdict
// after MaxRespawns of them.
func (c *Coordinator) supervise(rank int) {
	defer c.wg.Done()
	p := c.peers[rank]
	attempt := 0
	for {
		select {
		case <-c.done:
			return
		default:
		}
		if c.Connected(rank) {
			// Wait for a death hint, then re-check authoritative state.
			select {
			case <-p.deadHint:
			case <-c.done:
				return
			}
			continue
		}
		attempt++
		if attempt > c.cfg.MaxRespawns {
			c.mu.Lock()
			p.lost = true
			c.stats.Lost++
			c.mu.Unlock()
			c.count("net.workers_lost", 1)
			c.log(obs.LevelError, "worker lost",
				obs.Arg{Key: "rank", Value: int64(rank)},
				obs.Arg{Key: "launches", Value: int64(attempt - 1)})
			c.emit(Event{Rank: rank, Kind: PeerLost})
			return
		}
		if attempt > 1 {
			delay := c.cfg.Backoff.Delay(fmt.Sprintf("respawn:%d", rank), attempt-1)
			select {
			case <-time.After(delay):
			case <-c.done:
				return
			}
		}
		c.mu.Lock()
		c.stats.Respawns++
		c.mu.Unlock()
		c.count("net.respawns", 1)
		c.log(obs.LevelInfo, "spawning worker",
			obs.Arg{Key: "rank", Value: int64(rank)},
			obs.Arg{Key: "attempt", Value: int64(attempt)})
		if err := c.cfg.Spawn(rank, c.Addr()); err != nil {
			c.log(obs.LevelError, "spawn failed",
				obs.Arg{Key: "rank", Value: int64(rank)})
			continue
		}
		select {
		case <-p.joinHint:
			attempt = 0 // registered: only consecutive failures count
		case <-time.After(c.cfg.JoinTimeout):
		case <-c.done:
			return
		}
	}
}

// helloPayload encodes a worker's registration.
func helloPayload(proto string, rank int) []byte {
	var e ckpt.Enc
	e.Str(proto)
	e.I64(int64(rank))
	e.I64(int64(os.Getpid()))
	return e.Bytes()
}
