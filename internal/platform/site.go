package platform

import (
	"fmt"

	"repro/internal/carbon"
	"repro/internal/des"
	"repro/internal/obs"
)

// Site is a homogeneous pool of compute slots (cluster nodes or cloud
// VMs) executing tasks under a simple space-shared model: one task
// per slot, FIFO queue when all slots are busy. Energy accounting
// charges each slot's idle power for the whole powered-on duration
// (closed out by FinalizeIdle) plus the busy-idle difference for the
// time slots actually compute — together exactly "busy power while
// computing, idle power otherwise".
type Site struct {
	Name string

	sim       *des.Simulation
	slots     int
	speed     float64 // Gflop/s per slot
	busyPower float64 // W per computing slot
	idlePower float64 // W per powered-on slot
	meter     *carbon.Meter

	freeIDs   []int // free slot ids, LIFO; slot identity keys trace tracks
	queue     []queuedTask
	busyUntil float64 // latest task completion seen (for stats)
	tasksRun  int
	finalized bool

	tr     *obs.Tracer // nil unless Observe attached a tracer
	tracks []obs.TrackID
	cTasks *obs.Counter
}

type queuedTask struct {
	flops float64
	done  func()
}

// NewSite creates a site with the given slot count, per-slot speed
// (Gflop/s), and per-slot busy/idle power (W). Energy is charged to
// the meter under the site's name with the given carbon intensity.
func NewSite(sim *des.Simulation, meter *carbon.Meter, name string, slots int, speed, busyPower, idlePower float64, intensity carbon.Intensity) *Site {
	if slots < 0 || speed <= 0 {
		panic(fmt.Sprintf("platform: invalid site %q: slots=%d speed=%v", name, slots, speed))
	}
	meter.Register(name, intensity)
	free := make([]int, slots)
	for i := range free {
		free[i] = slots - 1 - i // pop order: slot 0 first
	}
	return &Site{
		Name:      name,
		sim:       sim,
		slots:     slots,
		speed:     speed,
		busyPower: busyPower,
		idlePower: idlePower,
		meter:     meter,
		freeIDs:   free,
	}
}

// Observe attaches the observability layer: each executed task becomes
// a span on its slot's lane of the "site:<name>" track, timestamped in
// simulated seconds, and completions bump the platform.tasks counter.
func (s *Site) Observe(sink obs.Sink) {
	if tr := sink.Tracer; tr != nil {
		s.tr = tr
		s.tracks = make([]obs.TrackID, s.slots)
		for i := range s.tracks {
			s.tracks[i] = tr.Track("site:"+s.Name, i, fmt.Sprintf("slot %d", i))
		}
	}
	s.cTasks = sink.Metrics.Counter("platform.tasks") // nil registry -> nil counter
}

// Slots returns the number of compute slots.
func (s *Site) Slots() int { return s.slots }

// Speed returns the per-slot speed in Gflop/s.
func (s *Site) Speed() float64 { return s.speed }

// TasksRun returns how many tasks completed on this site.
func (s *Site) TasksRun() int { return s.tasksRun }

// Submit queues a task of the given size (Gflop) for execution; done
// fires (in simulated time) when it completes. Submitting to a
// zero-slot site panics — the scheduler should never route there.
func (s *Site) Submit(gflop float64, done func()) {
	if s.slots == 0 {
		panic(fmt.Sprintf("platform: submit to powered-off site %q", s.Name))
	}
	if gflop < 0 {
		panic(fmt.Sprintf("platform: negative task size %v", gflop))
	}
	if len(s.freeIDs) > 0 {
		s.start(gflop, done)
		return
	}
	s.queue = append(s.queue, queuedTask{gflop, done})
}

func (s *Site) start(gflop float64, done func()) {
	slot := s.freeIDs[len(s.freeIDs)-1]
	s.freeIDs = s.freeIDs[:len(s.freeIDs)-1]
	duration := gflop / s.speed
	if s.tr != nil {
		// The span is fully known up front: it starts now (virtual
		// time) and lasts exactly the compute duration.
		s.tr.Span(s.tracks[slot], "task", obs.Seconds(s.sim.Now()), obs.Seconds(duration),
			obs.Arg{Key: "gflop", Value: int64(gflop)})
	}
	// Busy energy above idle, charged at completion.
	s.sim.Schedule(duration, func() {
		s.meter.Add(s.Name, (s.busyPower-s.idlePower)*duration)
		s.tasksRun++
		s.cTasks.Inc()
		if end := s.sim.Now(); end > s.busyUntil {
			s.busyUntil = end
		}
		s.freeIDs = append(s.freeIDs, slot)
		if len(s.queue) > 0 {
			next := s.queue[0]
			s.queue = s.queue[1:]
			s.start(next.flops, next.done)
		}
		done()
	})
}

// FinalizeIdle charges the idle draw of every powered-on slot for the
// full makespan. Call exactly once, after the simulation drains.
func (s *Site) FinalizeIdle(makespan float64) {
	if s.finalized {
		panic(fmt.Sprintf("platform: site %q finalized twice", s.Name))
	}
	s.finalized = true
	if makespan < 0 {
		panic("platform: negative makespan")
	}
	s.meter.Add(s.Name, s.idlePower*float64(s.slots)*makespan)
}

// QueueLen returns the number of tasks waiting for a slot.
func (s *Site) QueueLen() int { return len(s.queue) }
