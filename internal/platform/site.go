package platform

import (
	"fmt"

	"repro/internal/carbon"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/obs"
)

// Site is a homogeneous pool of compute slots (cluster nodes or cloud
// VMs) executing tasks under a simple space-shared model: one task
// per slot, FIFO queue when all slots are busy. Energy accounting
// charges each slot's idle power for the whole powered-on duration
// (closed out by FinalizeIdle) plus the busy-idle difference for the
// time slots actually compute — together exactly "busy power while
// computing, idle power otherwise".
type Site struct {
	Name string

	sim       *des.Simulation
	slots     int
	speed     float64 // Gflop/s per slot
	busyPower float64 // W per computing slot
	idlePower float64 // W per powered-on slot
	meter     *carbon.Meter

	freeIDs   []int // free slot ids, LIFO; slot identity keys trace tracks
	queue     []queuedTask
	busyUntil float64 // latest task completion seen (for stats)
	tasksRun  int
	finalized bool

	// Host-failure machinery (inactive without SetFaults): each task
	// attempt may be killed partway by the injector; the slot then
	// goes down for the repair time (drawing nothing) while the task
	// is resubmitted under exponential backoff. Energy drawn by killed
	// attempts is charged to the meter as real consumption AND
	// tracked separately as wasted work.
	inj      *fault.Injector
	nextOrd  int // task ordinals key the injector's failure decisions
	retries  int
	wastedJ  float64
	downtime []downInterval

	tr     *obs.Tracer // nil unless Observe attached a tracer
	tracks []obs.TrackID
	cTasks *obs.Counter
}

// downInterval is one slot-repair window, subtracted from the idle
// draw at finalize (a slot under repair is powered off).
type downInterval struct {
	start, dur float64
}

type queuedTask struct {
	flops   float64
	done    func()
	ord     int
	attempt int // completed attempts so far
}

// NewSite creates a site with the given slot count, per-slot speed
// (Gflop/s), and per-slot busy/idle power (W). Energy is charged to
// the meter under the site's name with the given carbon intensity.
func NewSite(sim *des.Simulation, meter *carbon.Meter, name string, slots int, speed, busyPower, idlePower float64, intensity carbon.Intensity) *Site {
	if slots < 0 || speed <= 0 {
		panic(fmt.Sprintf("platform: invalid site %q: slots=%d speed=%v", name, slots, speed))
	}
	meter.Register(name, intensity)
	free := make([]int, slots)
	for i := range free {
		free[i] = slots - 1 - i // pop order: slot 0 first
	}
	return &Site{
		Name:      name,
		sim:       sim,
		slots:     slots,
		speed:     speed,
		busyPower: busyPower,
		idlePower: idlePower,
		meter:     meter,
		freeIDs:   free,
	}
}

// Observe attaches the observability layer: each executed task becomes
// a span on its slot's lane of the "site:<name>" track, timestamped in
// simulated seconds, and completions bump the platform.tasks counter.
func (s *Site) Observe(sink obs.Sink) {
	if tr := sink.Tracer; tr != nil {
		s.tr = tr
		s.tracks = make([]obs.TrackID, s.slots)
		for i := range s.tracks {
			s.tracks[i] = tr.Track("site:"+s.Name, i, fmt.Sprintf("slot %d", i))
		}
	}
	s.cTasks = sink.Metrics.Counter("platform.tasks") // nil registry -> nil counter
}

// SetFaults arms the host-failure machinery: task attempts may be
// killed by the injector's HostFailure schedule, with the failing
// slot down for inj.RepairSec and the task retried under the
// injector's backoff policy. A nil injector leaves the site reliable.
func (s *Site) SetFaults(inj *fault.Injector) { s.inj = inj }

// Retries returns how many task re-executions host failures caused.
func (s *Site) Retries() int { return s.retries }

// WastedJoules returns the energy drawn by killed task attempts —
// real consumption (it is also on the meter), reported separately so
// outcomes can show the price of failures.
func (s *Site) WastedJoules() float64 { return s.wastedJ }

// Slots returns the number of compute slots.
func (s *Site) Slots() int { return s.slots }

// Speed returns the per-slot speed in Gflop/s.
func (s *Site) Speed() float64 { return s.speed }

// TasksRun returns how many tasks completed on this site.
func (s *Site) TasksRun() int { return s.tasksRun }

// Submit queues a task of the given size (Gflop) for execution; done
// fires (in simulated time) when it completes. Submitting to a
// zero-slot site panics — the scheduler should never route there.
func (s *Site) Submit(gflop float64, done func()) {
	if s.slots == 0 {
		panic(fmt.Sprintf("platform: submit to powered-off site %q", s.Name))
	}
	if gflop < 0 {
		panic(fmt.Sprintf("platform: negative task size %v", gflop))
	}
	t := queuedTask{flops: gflop, done: done, ord: s.nextOrd}
	s.nextOrd++
	s.enqueue(t)
}

// enqueue starts the task if a slot is free, else queues it FIFO.
// Retried tasks re-enter through here after their backoff.
func (s *Site) enqueue(t queuedTask) {
	if len(s.freeIDs) > 0 {
		s.start(t)
		return
	}
	s.queue = append(s.queue, t)
}

// release returns a slot to the pool and drains the queue head.
func (s *Site) release(slot int) {
	s.freeIDs = append(s.freeIDs, slot)
	if len(s.queue) > 0 {
		next := s.queue[0]
		s.queue = s.queue[1:]
		s.start(next)
	}
}

func (s *Site) start(t queuedTask) {
	slot := s.freeIDs[len(s.freeIDs)-1]
	s.freeIDs = s.freeIDs[:len(s.freeIDs)-1]
	duration := t.flops / s.speed
	attempt := t.attempt + 1

	if frac, fails := s.inj.HostFailure(s.Name, t.ord, attempt); fails {
		// The host dies partway through the attempt: the DES kill
		// event charges the partial draw (real consumption, tracked as
		// wasted work), takes the slot down for the repair time, and
		// resubmits the task after the retry policy's backoff. No
		// completion event is ever scheduled for this attempt.
		partial := frac * duration
		if s.tr != nil {
			s.tr.Span(s.tracks[slot], "task (killed)", obs.Seconds(s.sim.Now()), obs.Seconds(partial),
				obs.Arg{Key: "gflop", Value: int64(t.flops)},
				obs.Arg{Key: "attempt", Value: int64(attempt)})
		}
		s.sim.Schedule(partial, func() {
			s.meter.Add(s.Name, (s.busyPower-s.idlePower)*partial)
			s.wastedJ += s.busyPower * partial
			repair := s.inj.RepairSec()
			s.downtime = append(s.downtime, downInterval{start: s.sim.Now(), dur: repair})
			if s.tr != nil {
				s.tr.Span(s.tracks[slot], "repair", obs.Seconds(s.sim.Now()), obs.Seconds(repair))
			}
			s.sim.Schedule(repair, func() { s.release(slot) })

			retry := s.inj.Retry()
			if retry.MaxAttempts > 0 && attempt >= retry.MaxAttempts {
				panic(fmt.Sprintf("platform: task %d on %q exhausted %d attempts", t.ord, s.Name, attempt))
			}
			s.retries++
			s.inj.NoteTaskRetry(s.Name, t.ord, attempt)
			rt := t
			rt.attempt = attempt
			s.sim.Schedule(retry.Backoff(attempt), func() { s.enqueue(rt) })
		})
		return
	}

	if s.tr != nil {
		// The span is fully known up front: it starts now (virtual
		// time) and lasts exactly the compute duration.
		s.tr.Span(s.tracks[slot], "task", obs.Seconds(s.sim.Now()), obs.Seconds(duration),
			obs.Arg{Key: "gflop", Value: int64(t.flops)})
	}
	// Busy energy above idle, charged at completion.
	s.sim.Schedule(duration, func() {
		s.meter.Add(s.Name, (s.busyPower-s.idlePower)*duration)
		s.tasksRun++
		s.cTasks.Inc()
		if end := s.sim.Now(); end > s.busyUntil {
			s.busyUntil = end
		}
		s.release(slot)
		t.done()
	})
}

// FinalizeIdle charges the idle draw of every powered-on slot for the
// full makespan, minus repair downtime (a slot under repair draws
// nothing). Call exactly once, after the simulation drains.
func (s *Site) FinalizeIdle(makespan float64) {
	if s.finalized {
		panic(fmt.Sprintf("platform: site %q finalized twice", s.Name))
	}
	s.finalized = true
	if makespan < 0 {
		panic("platform: negative makespan")
	}
	idleSec := float64(s.slots) * makespan
	for _, d := range s.downtime {
		// Clamp each repair window to [0, makespan]: repairs can
		// outlast the last task completion.
		end := d.start + d.dur
		if end > makespan {
			end = makespan
		}
		if end > d.start {
			idleSec -= end - d.start
		}
	}
	if idleSec < 0 {
		idleSec = 0
	}
	s.meter.Add(s.Name, s.idlePower*idleSec)
}

// QueueLen returns the number of tasks waiting for a slot.
func (s *Site) QueueLen() int { return len(s.queue) }
