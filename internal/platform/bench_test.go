package platform

import (
	"testing"

	"repro/internal/carbon"
	"repro/internal/des"
)

// Platform-model benchmarks: the event costs of the site and link
// fluid models.

func BenchmarkSiteThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sim des.Simulation
		m := carbon.NewMeter()
		s := NewSite(&sim, m, "bench", 16, 10, 200, 80, carbon.LocalGrid)
		for t := 0; t < 1000; t++ {
			s.Submit(50, func() {})
		}
		sim.Run()
		s.FinalizeIdle(sim.Now())
	}
}

func BenchmarkLinkStagingStorm(b *testing.B) {
	// 200 concurrent equal flows: the pattern a wide workflow level
	// staging to the cloud produces; stresses the fair-share model.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sim des.Simulation
		l := NewLink(&sim, 25e6, 0.05)
		for f := 0; f < 200; f++ {
			l.Transfer(14e6, func() {})
		}
		sim.Run()
		if l.Transfers != 200 {
			b.Fatal("lost transfers")
		}
	}
}

func BenchmarkLinkChurn(b *testing.B) {
	// Staggered joins and finishes: every event re-settles the share.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sim des.Simulation
		l := NewLink(&sim, 1e6, 0)
		for f := 0; f < 100; f++ {
			size := float64(1000 * (f + 1))
			delay := float64(f) * 0.01
			sim.Schedule(delay, func() { l.Transfer(size, func() {}) })
		}
		sim.Run()
	}
}
