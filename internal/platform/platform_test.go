package platform

import (
	"math"
	"sort"
	"testing"

	"repro/internal/carbon"
	"repro/internal/des"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDefaultPStatesShape(t *testing.T) {
	ps := DefaultPStates()
	if len(ps) != 7 {
		t.Fatalf("p-states = %d, want 7 (the paper's seven power states)", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Freq <= ps[i-1].Freq || ps[i].Speed <= ps[i-1].Speed || ps[i].BusyPower <= ps[i-1].BusyPower {
			t.Fatalf("p-states not monotone at %d: %v then %v", i, ps[i-1], ps[i])
		}
		if ps[i].IdlePower != ps[i-1].IdlePower {
			t.Fatalf("idle power should be state-independent")
		}
	}
	top := ps[6]
	if !almost(top.Speed, 10, 0.01) {
		t.Fatalf("top speed = %v, want ~10 Gflop/s", top.Speed)
	}
	if !almost(top.BusyPower, 200, 0.5) {
		t.Fatalf("top busy power = %v, want ~200 W", top.BusyPower)
	}
}

func TestPStateEnergyPerWorkImprovesWhenDownclockingFromTop(t *testing.T) {
	// The cubic dynamic term means energy-per-Gflop at the top state
	// exceeds some lower state — otherwise the downclocking option in
	// the assignment would never help.
	ps := DefaultPStates()
	eTop := ps[6].BusyPower / ps[6].Speed
	eMid := ps[3].BusyPower / ps[3].Speed
	if eMid >= eTop {
		t.Fatalf("downclocking never pays: e(top)=%v e(mid)=%v", eTop, eMid)
	}
}

func newTestSite(sim *des.Simulation, slots int, speed float64) (*Site, *carbon.Meter) {
	m := carbon.NewMeter()
	s := NewSite(sim, m, "test", slots, speed, 200, 80, carbon.LocalGrid)
	return s, m
}

func TestSiteSingleTaskTiming(t *testing.T) {
	var sim des.Simulation
	s, _ := newTestSite(&sim, 1, 10)
	var end float64
	s.Submit(100, func() { end = sim.Now() }) // 100 Gflop / 10 Gf/s = 10 s
	sim.Run()
	if !almost(end, 10, 1e-9) {
		t.Fatalf("completion at %v, want 10", end)
	}
	if s.TasksRun() != 1 {
		t.Fatalf("tasks run = %d", s.TasksRun())
	}
}

func TestSiteQueueingWhenSlotsBusy(t *testing.T) {
	var sim des.Simulation
	s, _ := newTestSite(&sim, 2, 10)
	var ends []float64
	for i := 0; i < 4; i++ {
		s.Submit(100, func() { ends = append(ends, sim.Now()) })
	}
	if s.QueueLen() != 2 {
		t.Fatalf("queue = %d, want 2", s.QueueLen())
	}
	sim.Run()
	sort.Float64s(ends)
	want := []float64{10, 10, 20, 20}
	for i := range want {
		if !almost(ends[i], want[i], 1e-9) {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestSiteEnergyAccounting(t *testing.T) {
	var sim des.Simulation
	s, m := newTestSite(&sim, 2, 10)
	s.Submit(100, func() {}) // 10 s busy
	sim.Run()
	s.FinalizeIdle(10)
	// Busy-above-idle: (200-80)*10 = 1200 J; idle: 80*2 slots*10 s = 1600 J.
	if got := m.Energy("test"); !almost(got, 2800, 1e-6) {
		t.Fatalf("energy = %v J, want 2800", got)
	}
}

func TestSiteFinalizeGuards(t *testing.T) {
	var sim des.Simulation
	s, _ := newTestSite(&sim, 1, 10)
	s.FinalizeIdle(5)
	defer func() {
		if recover() == nil {
			t.Fatal("double finalize did not panic")
		}
	}()
	s.FinalizeIdle(5)
}

func TestSubmitToPoweredOffSitePanics(t *testing.T) {
	var sim des.Simulation
	m := carbon.NewMeter()
	s := NewSite(&sim, m, "off", 0, 10, 200, 80, carbon.LocalGrid)
	defer func() {
		if recover() == nil {
			t.Fatal("submit to 0-slot site did not panic")
		}
	}()
	s.Submit(1, func() {})
}

func TestSiteRejectsInvalidConstruction(t *testing.T) {
	var sim des.Simulation
	m := carbon.NewMeter()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid site accepted")
		}
	}()
	NewSite(&sim, m, "bad", 1, 0, 1, 1, carbon.LocalGrid)
}

func TestLinkSingleTransfer(t *testing.T) {
	var sim des.Simulation
	l := NewLink(&sim, 100, 0.5) // 100 B/s, 0.5 s latency
	var end float64
	l.Transfer(200, func() { end = sim.Now() })
	sim.Run()
	if !almost(end, 2.5, 1e-9) {
		t.Fatalf("transfer end = %v, want 2.5 (0.5 latency + 2 s)", end)
	}
	if l.Transfers != 1 || !almost(l.BytesMoved, 200, 1e-9) {
		t.Fatalf("accounting: %d transfers, %v bytes", l.Transfers, l.BytesMoved)
	}
}

func TestLinkFairSharingTwoFlows(t *testing.T) {
	var sim des.Simulation
	l := NewLink(&sim, 100, 0)
	var endA, endB float64
	l.Transfer(100, func() { endA = sim.Now() })
	l.Transfer(100, func() { endB = sim.Now() })
	sim.Run()
	// Both share 50 B/s: both finish at 2 s (vs 1 s alone).
	if !almost(endA, 2, 1e-9) || !almost(endB, 2, 1e-9) {
		t.Fatalf("ends = %v, %v, want 2, 2", endA, endB)
	}
}

func TestLinkFairSharingStaggeredFlows(t *testing.T) {
	var sim des.Simulation
	l := NewLink(&sim, 100, 0)
	var endA, endB float64
	l.Transfer(150, func() { endA = sim.Now() })
	sim.Schedule(1, func() {
		l.Transfer(50, func() { endB = sim.Now() })
	})
	sim.Run()
	// A alone for 1 s (100 B done, 50 left). Then A and B at 50 B/s
	// each: both have 50 B left -> both finish at t=2.
	if !almost(endA, 2, 1e-9) || !almost(endB, 2, 1e-9) {
		t.Fatalf("ends = %v, %v, want 2, 2", endA, endB)
	}
}

func TestLinkConservesBytes(t *testing.T) {
	var sim des.Simulation
	l := NewLink(&sim, 1000, 0.01)
	total := 0.0
	for i := 1; i <= 20; i++ {
		b := float64(i * 37)
		total += b
		delay := float64(i) * 0.1
		b2 := b
		sim.Schedule(delay, func() { l.Transfer(b2, func() {}) })
	}
	sim.Run()
	if l.Transfers != 20 || !almost(l.BytesMoved, total, 1e-6) {
		t.Fatalf("moved %v bytes in %d transfers, want %v in 20", l.BytesMoved, l.Transfers, total)
	}
}

func TestLinkZeroByteTransferPaysLatency(t *testing.T) {
	var sim des.Simulation
	l := NewLink(&sim, 100, 0.25)
	var end float64
	l.Transfer(0, func() { end = sim.Now() })
	sim.Run()
	if !almost(end, 0.25, 1e-9) {
		t.Fatalf("end = %v, want 0.25", end)
	}
}

func TestLinkInvalidConstruction(t *testing.T) {
	var sim des.Simulation
	for _, c := range []struct{ bw, lat float64 }{{0, 0}, {-1, 0}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("link bw=%v lat=%v accepted", c.bw, c.lat)
				}
			}()
			NewLink(&sim, c.bw, c.lat)
		}()
	}
}

func TestLinkNegativeTransferPanics(t *testing.T) {
	var sim des.Simulation
	l := NewLink(&sim, 100, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("negative transfer accepted")
		}
	}()
	l.Transfer(-5, func() {})
}

func TestLinkManyConcurrentFlowsSlowdown(t *testing.T) {
	// n simultaneous equal flows must each take n times as long.
	for _, n := range []int{1, 4, 10} {
		var sim des.Simulation
		l := NewLink(&sim, 100, 0)
		ends := make([]float64, n)
		for i := 0; i < n; i++ {
			i := i
			l.Transfer(100, func() { ends[i] = sim.Now() })
		}
		sim.Run()
		for i, e := range ends {
			if !almost(e, float64(n), 1e-6) {
				t.Fatalf("n=%d flow %d ended at %v, want %d", n, i, e, n)
			}
		}
	}
}
