// Package platform models the hardware of the workflow assignment on
// top of the DES kernel: a local cluster whose nodes expose seven
// p-states (each a speed/power trade-off) and can be powered off, a
// remote green cloud with fixed-speed VMs, and the bandwidth-limited
// network link between them with max–min fair sharing. Energy flows
// into a carbon.Meter, which turns it into gCO2e.
package platform

import "fmt"

// PState is one node performance state: a clock frequency with the
// compute speed and electrical power it implies.
type PState struct {
	// Freq is the core clock in GHz.
	Freq float64
	// Speed is the per-node compute speed in Gflop/s at this state.
	Speed float64
	// BusyPower is node power draw (W) while computing.
	BusyPower float64
	// IdlePower is node power draw (W) while powered on but idle.
	IdlePower float64
}

func (p PState) String() string {
	return fmt.Sprintf("%.1fGHz %.1fGf/s busy=%.0fW idle=%.0fW", p.Freq, p.Speed, p.BusyPower, p.IdlePower)
}

// DefaultPStates returns the assignment's seven p-states, lowest
// (p0) to highest (p6). Speed scales linearly with frequency; dynamic
// power scales cubically (the classic P = C·V²·f ≈ k·f³ model), on
// top of a constant idle draw — which is what makes "power off some
// nodes" and "downclock all nodes" genuinely different strategies:
// downclocking saves dynamic energy per unit work, powering off saves
// the idle draw.
func DefaultPStates() []PState {
	const (
		idle        = 80.0   // W
		dynAtTop    = 120.0  // W of dynamic power at fTop
		fTop        = 2.2    // GHz
		speedPerGHz = 4.5455 // Gflop/s per GHz -> 10 Gf/s at 2.2 GHz
	)
	k := dynAtTop / (fTop * fTop * fTop)
	freqs := []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2}
	out := make([]PState, len(freqs))
	for i, f := range freqs {
		out[i] = PState{
			Freq:      f,
			Speed:     speedPerGHz * f,
			BusyPower: idle + k*f*f*f,
			IdlePower: idle,
		}
	}
	return out
}
