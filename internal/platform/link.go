package platform

import (
	"fmt"
	"math"

	"repro/internal/des"
)

// Link models the bandwidth-limited connection between the local
// cluster and the remote cloud. Concurrent transfers share the
// capacity max–min fairly; on a single link that is an equal split,
// recomputed whenever a flow starts or finishes (the same fluid model
// SimGrid uses for a one-link platform). Each transfer additionally
// pays a fixed latency up front.
//
// Implementation note: instead of one completion event per flow
// (which would be cancelled and rescheduled on every rate change —
// O(flows) event churn per change), the link keeps a single pending
// "wake" event at the earliest completion; on each wake or join it
// advances all flows by the elapsed time and finishes the drained
// ones. This keeps big staging storms (hundreds of concurrent file
// transfers) cheap.
type Link struct {
	sim       *des.Simulation
	bandwidth float64 // bytes/s
	latency   float64 // s

	flows     []*flow // arrival order: determinism requires stable iteration
	lastTouch float64
	wake      *des.Event

	// BytesMoved accumulates completed payload bytes for reporting.
	BytesMoved float64
	// Transfers counts completed transfers.
	Transfers int
}

type flow struct {
	original  float64
	remaining float64
	done      func()
}

// finishEps absorbs float round-off when deciding a flow has drained.
const finishEps = 1e-6

// NewLink creates a link with the given capacity (bytes/second) and
// per-transfer latency (seconds).
func NewLink(sim *des.Simulation, bandwidth, latency float64) *Link {
	if bandwidth <= 0 || latency < 0 {
		panic(fmt.Sprintf("platform: invalid link bw=%v lat=%v", bandwidth, latency))
	}
	return &Link{sim: sim, bandwidth: bandwidth, latency: latency}
}

// Transfer moves bytes across the link; done fires at completion.
// Zero-byte transfers still pay the latency.
func (l *Link) Transfer(bytes float64, done func()) {
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("platform: invalid transfer size %v", bytes))
	}
	l.sim.Schedule(l.latency, func() {
		l.advance()
		l.flows = append(l.flows, &flow{original: bytes, remaining: bytes, done: done})
		l.settle()
	})
}

// InFlight returns the number of active flows.
func (l *Link) InFlight() int { return len(l.flows) }

// advance drains every active flow by the time elapsed since the last
// link event, at the equal-share rate that was in force.
func (l *Link) advance() {
	now := l.sim.Now()
	if n := len(l.flows); n > 0 {
		rate := l.bandwidth / float64(n)
		dt := now - l.lastTouch
		for _, f := range l.flows {
			f.remaining -= rate * dt
		}
	}
	l.lastTouch = now
}

// settle completes drained flows (which raises the share of the
// survivors) and schedules the single wake event at the next earliest
// completion. Completion callbacks run after the link state is
// consistent.
//
// A flow also counts as drained when its remaining ETA is under a
// microsecond: float round-off can leave a residual of a few
// microbytes whose ETA is smaller than the clock's representable
// resolution at large timestamps, and scheduling a wake that cannot
// advance the clock would loop forever.
func (l *Link) settle() {
	if l.wake != nil {
		l.sim.Cancel(l.wake)
		l.wake = nil
	}
	var finished []*flow
	for {
		n := len(l.flows)
		if n == 0 {
			break
		}
		rate := l.bandwidth / float64(n)
		thresh := math.Max(finishEps, rate*1e-6)
		kept := l.flows[:0]
		removed := false
		for _, f := range l.flows {
			if f.remaining <= thresh {
				finished = append(finished, f)
				removed = true
			} else {
				kept = append(kept, f)
			}
		}
		l.flows = kept
		if removed {
			continue // survivors' rate rose; re-evaluate thresholds
		}
		minRemaining := math.Inf(1)
		for _, f := range l.flows {
			if f.remaining < minRemaining {
				minRemaining = f.remaining
			}
		}
		l.wake = l.sim.Schedule(minRemaining/rate, func() {
			l.wake = nil
			l.advance()
			l.settle()
		})
		break
	}
	for _, f := range finished {
		l.BytesMoved += f.original
		l.Transfers++
		f.done()
	}
}
