package plot

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "Tile sweep",
		XLabel: "tile edge",
		YLabel: "time (ms)",
		Series: []Series{
			{Name: "eager", X: []float64{8, 16, 32}, Y: []float64{10, 8, 9}},
			{Name: "lazy", X: []float64{8, 16, 32}, Y: []float64{6, 4, 5}},
		},
	}
}

func TestSVGWellFormedAndComplete(t *testing.T) {
	svg, err := sampleChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<svg", "</svg>", "Tile sweep", "tile edge", "time (ms)",
		"eager", "lazy", "<polyline", "<circle",
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<circle") != 6 {
		t.Fatalf("markers = %d, want 6", strings.Count(svg, "<circle"))
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatalf("polylines = %d, want 2", strings.Count(svg, "<polyline"))
	}
}

func TestScatterHasNoPolyline(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "pts", X: []float64{1, 2}, Y: []float64{3, 4}, Points: true}}}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "<polyline") {
		t.Fatal("scatter series rendered a line")
	}
}

func TestErrors(t *testing.T) {
	if _, err := (&Chart{}).SVG(); err == nil {
		t.Fatal("empty chart accepted")
	}
	bad := &Chart{Series: []Series{{X: []float64{1}, Y: []float64{1, 2}}}}
	if _, err := bad.SVG(); err == nil {
		t.Fatal("ragged series accepted")
	}
	empty := &Chart{Series: []Series{{Name: "e"}}}
	if _, err := empty.SVG(); err == nil {
		t.Fatal("all-empty series accepted")
	}
	logBad := &Chart{LogY: true, Series: []Series{{X: []float64{1}, Y: []float64{0}}}}
	if _, err := logBad.SVG(); err == nil {
		t.Fatal("non-positive value on log axis accepted")
	}
}

func TestDegenerateRanges(t *testing.T) {
	// A single point, identical xs and ys: must still render without
	// NaN coordinates.
	c := &Chart{Series: []Series{{Name: "p", X: []float64{5}, Y: []float64{5}}}}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN coordinates in SVG")
	}
}

func TestLogYScale(t *testing.T) {
	c := &Chart{
		LogY: true,
		Series: []Series{{
			Name: "s", X: []float64{1, 2, 3}, Y: []float64{1, 100, 10000},
		}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	// 100 is the geometric midpoint, so its marker must sit at the
	// vertical center of the plot area, not near the bottom as it
	// would on a linear scale.
	idx := strings.Index(svg, `cy=`)
	if idx < 0 {
		t.Fatal("no markers")
	}
	circles := strings.Split(svg, "<circle")
	if len(circles) < 4 {
		t.Fatalf("markers = %d", len(circles)-1)
	}
	var ys [3]float64
	for i := 1; i <= 3; i++ {
		v, err := circleCY(circles[i])
		if err != nil {
			t.Fatal(err)
		}
		ys[i-1] = v
	}
	mid := (ys[0] + ys[2]) / 2
	if diff := ys[1] - mid; diff < -1 || diff > 1 {
		t.Fatalf("log scale not applied: ys=%v", ys)
	}
}

// circleCY extracts the cy attribute from a circle fragment.
func circleCY(fragment string) (float64, error) {
	i := strings.Index(fragment, `cy="`)
	if i < 0 {
		return 0, os.ErrInvalid
	}
	j := i + 4
	k := j
	for k < len(fragment) && fragment[k] != '"' {
		k++
	}
	return strconv.ParseFloat(fragment[j:k], 64)
}

func TestSaveWritesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "chart.svg")
	if err := sampleChart().Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("saved file is not SVG")
	}
	if err := (&Chart{}).Save(filepath.Join(dir, "bad.svg")); err == nil {
		t.Fatal("Save of empty chart should fail")
	}
}

func TestEscaping(t *testing.T) {
	c := &Chart{
		Title:  "a < b & c > d",
		Series: []Series{{Name: "x<y", X: []float64{1, 2}, Y: []float64{1, 2}}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "a < b") || strings.Contains(svg, "x<y") {
		t.Fatal("unescaped markup in SVG")
	}
	if !strings.Contains(svg, "a &lt; b &amp; c &gt; d") {
		t.Fatal("escaping wrong")
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		2500000: "2.5M", 50000: "50k", 500: "500", 5: "5.0", 0.05: "0.05",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Fatalf("fmtTick(%v) = %q, want %q", v, got, want)
		}
	}
}
