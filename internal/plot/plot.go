// Package plot is a small stdlib-only SVG chart writer, the analog of
// EASYPAP's "performance graph plot tools": the sandpile assignment
// expects students to justify their choices "with the help of
// performance plots", so the harness renders its sweeps (tile sizes,
// ghost widths, Pareto frontiers) as line and scatter charts.
package plot

import (
	"fmt"
	"math"
	"os"
	"strings"
)

// Series is one plotted line or point set.
type Series struct {
	Name   string
	X, Y   []float64
	Points bool // true: markers only (scatter); false: polyline + markers
}

// Chart is a single-panel XY chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogY plots the Y axis on a log10 scale (values must be > 0).
	LogY bool
	// Width and Height are the SVG dimensions; 0 means 640×420.
	Width, Height int
}

// seriesColors is the qualitative palette (shared with the tile-owner
// map aesthetics).
var seriesColors = []string{
	"#e69f00", "#56b4e9", "#009e73", "#d55e00",
	"#0072b2", "#cc79a7", "#f0e442", "#999999",
}

const (
	marginL = 62
	marginR = 16
	marginT = 34
	marginB = 46
)

// SVG renders the chart. It returns an error when there is nothing
// plottable (no series, empty series, or non-positive values under
// LogY).
func (c *Chart) SVG() (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 420
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d xs but %d ys", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			y := s.Y[i]
			if c.LogY {
				if y <= 0 {
					return "", fmt.Errorf("plot: series %q has y=%v on a log axis", s.Name, y)
				}
				y = math.Log10(y)
			}
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
			n++
		}
	}
	if n == 0 {
		return "", fmt.Errorf("plot: all series empty")
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}

	plotW := float64(w - marginL - marginR)
	plotH := float64(h - marginT - marginB)
	px := func(x float64) float64 { return float64(marginL) + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 {
		if c.LogY {
			y = math.Log10(y)
		}
		return float64(marginT) + (1-(y-minY)/(maxY-minY))*plotH
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", w, h)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	if c.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="18" font-size="13" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))
	}

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, h-marginB, w-marginR, h-marginB)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, h-marginB)

	// Ticks: 5 per axis, linear in plot space.
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		X := px(fx)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			X, h-marginB, X, h-marginB+4)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			X, h-marginB+17, fmtTick(fx))

		fy := minY + (maxY-minY)*float64(i)/4
		val := fy
		if c.LogY {
			val = math.Pow(10, fy)
		}
		Y := float64(marginT) + (1-float64(i)/4)*plotH
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-4, Y, marginL, Y)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			marginL-7, Y, fmtTick(val))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			float64(marginL)+plotW/2, h-8, esc(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&sb, `<text x="14" y="%.1f" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
			float64(marginT)+plotH/2, float64(marginT)+plotH/2, esc(c.YLabel))
	}

	// Series.
	for si, s := range c.Series {
		color := seriesColors[si%len(seriesColors)]
		if !s.Points && len(s.X) > 1 {
			var pts []string
			for i := range s.X {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
			}
			fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for i := range s.X {
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				px(s.X[i]), py(s.Y[i]), color)
		}
		// Legend entry.
		ly := marginT + 14*si
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			w-marginR-120, ly, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d">%s</text>`+"\n",
			w-marginR-105, ly+9, esc(s.Name))
	}
	sb.WriteString("</svg>\n")
	return sb.String(), nil
}

// Save writes the chart as an SVG file.
func (c *Chart) Save(path string) error {
	svg, err := c.SVG()
	if err != nil {
		return err
	}
	return os.WriteFile(path, []byte(svg), 0o644)
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}
