package obs

import (
	"fmt"
	"io"
)

// Setup builds a Sink for the CLI convention the repro binaries share:
// -metrics attaches a fresh Registry, -trace FILE attaches a
// wall-clock Tracer. The returned flush saves the Chrome trace to
// tracePath and writes the metrics snapshot (JSON) to w; call it once
// after the work finishes. Both Sink and flush are no-ops when neither
// option is requested.
func Setup(metrics bool, tracePath string) (Sink, func(w io.Writer) error) {
	var s Sink
	if metrics {
		s.Metrics = NewRegistry()
	}
	if tracePath != "" {
		s.Tracer = NewTracer(nil)
	}
	flush := func(w io.Writer) error {
		if s.Tracer != nil {
			if err := s.Tracer.SaveChrome(tracePath); err != nil {
				return fmt.Errorf("saving trace: %w", err)
			}
		}
		if s.Metrics != nil {
			if err := s.Metrics.WriteJSON(w); err != nil {
				return fmt.Errorf("writing metrics: %w", err)
			}
		}
		return nil
	}
	return s, flush
}
