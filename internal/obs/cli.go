package obs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// Setup builds a Sink for the CLI convention the repro binaries share:
// -metrics attaches a fresh Registry, -trace FILE attaches a
// wall-clock Tracer. The returned flush saves the Chrome trace to
// tracePath and writes the metrics snapshot (JSON) to w; call it once
// after the work finishes. A failed trace save no longer short-circuits
// the metrics write — both halves always run and their errors are
// joined, so one broken -trace path can't silently eat the -metrics
// output. Both Sink and flush are no-ops when neither option is
// requested.
func Setup(metrics bool, tracePath string) (Sink, func(w io.Writer) error) {
	var s Sink
	if metrics {
		s.Metrics = NewRegistry()
	}
	if tracePath != "" {
		s.Tracer = NewTracer(nil)
	}
	flush := func(w io.Writer) error {
		var traceErr, metricsErr error
		if s.Tracer != nil {
			if err := s.Tracer.SaveChrome(tracePath); err != nil {
				traceErr = fmt.Errorf("saving trace: %w", err)
			}
		}
		if s.Metrics != nil {
			if err := s.Metrics.WriteJSON(w); err != nil {
				metricsErr = fmt.Errorf("writing metrics: %w", err)
			}
			WriteQuantileSummary(os.Stderr, s.Metrics.Snapshot())
		}
		return errors.Join(traceErr, metricsErr)
	}
	return s, flush
}

// WriteQuantileSummary prints one human-oriented line per histogram
// with its count and interpolated p50/p95/p99. It goes to a side
// channel (stderr in the CLIs) so the machine-readable JSON snapshot
// on stdout stays clean.
func WriteQuantileSummary(w io.Writer, s Snapshot) {
	if len(s.Histograms) == 0 {
		return
	}
	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(w, "obs: %s count=%d p50=%.4g p95=%.4g p99=%.4g\n",
			n, h.Count, h.P50, h.P95, h.P99)
	}
}

// ServeTelemetry starts the live telemetry endpoint on addr (the
// shared -obs-listen flag; "" means disabled and returns a nil server,
// which is safe to Close). It upgrades the sink in place: a Registry,
// Progress reporter, and Logger are attached if not already present,
// so a bare `-obs-listen :9090` gets live /metrics, /progress, and
// /events without also requiring -metrics. The bound address is
// announced on stderr so `-obs-listen :0` users can find the port.
func ServeTelemetry(sink *Sink, addr string) (*Server, error) {
	if addr == "" {
		return nil, nil
	}
	if sink.Metrics == nil {
		sink.Metrics = NewRegistry()
	}
	if sink.Progress == nil {
		sink.Progress = NewProgress(nil)
	}
	if sink.Log == nil {
		sink.Log = NewLogger()
	}
	srv := NewServer(*sink)
	bound, err := srv.Start(addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "obs: live telemetry on http://%s (/metrics /healthz /progress /events /debug/pprof/)\n", bound)
	return srv, nil
}
