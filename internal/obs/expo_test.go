package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixtureRegistry builds a deterministic registry exercising every
// instrument kind plus name sanitization.
func fixtureRegistry() *Registry {
	r := NewRegistry()
	r.Counter("engine.iterations").Add(42)
	r.Counter("engine.topples").Add(1337)
	r.Gauge("engine.frontier_tiles").Set(7)
	r.Gauge("wfsched.sweep-fraction").Set(0.25) // '-' must sanitize to '_'
	h := r.Histogram("shuffle.run_ms", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 0.5, 3, 7, 7, 7, 50} {
		h.Observe(v)
	}
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := fixtureRegistry().WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := sb.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusCumulativeBuckets(t *testing.T) {
	var sb strings.Builder
	if err := fixtureRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Registry stores disjoint counts (2, 1, 3, 1); exposition must
	// integrate them into cumulative 2, 3, 6, 7.
	for _, line := range []string{
		`shuffle_run_ms_bucket{le="1"} 2`,
		`shuffle_run_ms_bucket{le="5"} 3`,
		`shuffle_run_ms_bucket{le="10"} 6`,
		`shuffle_run_ms_bucket{le="+Inf"} 7`,
		`shuffle_run_ms_count 7`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
	if !strings.Contains(out, "wfsched_sweep_fraction 0.25\n") {
		t.Errorf("name sanitization failed:\n%s", out)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"engine.iterations":   "engine_iterations",
		"a-b c/d":             "a_b_c_d",
		"0leading":            "_0leading",
		"ok_name:sub":         "ok_name:sub",
		"runtime.gc_pause_ms": "runtime_gc_pause_ms",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestQuantileEstimates(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{10, 20, 30})
	// 100 samples uniform-ish: 50 in (0,10], 40 in (10,20], 10 in (20,30].
	for i := 0; i < 50; i++ {
		h.Observe(5)
	}
	for i := 0; i < 40; i++ {
		h.Observe(15)
	}
	for i := 0; i < 10; i++ {
		h.Observe(25)
	}
	hs := r.Snapshot().Histograms["q"]
	if hs.P50 != 10 { // rank 50 is exactly the end of bucket (0,10]
		t.Errorf("p50 = %v, want 10", hs.P50)
	}
	// rank 95 = 5 past 90 into the 10-wide (20,30] bucket -> 25.
	if hs.P95 != 25 {
		t.Errorf("p95 = %v, want 25", hs.P95)
	}
	if hs.P99 != 29 {
		t.Errorf("p99 = %v, want 29", hs.P99)
	}

	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{1, 2})
	h.Observe(100) // lands in overflow
	hs := r.Snapshot().Histograms["q"]
	// The histogram can't resolve past its last finite bound.
	if hs.P99 != 2 {
		t.Errorf("overflow p99 = %v, want 2", hs.P99)
	}
}
