package obs

// logger.go is the structured-event half of the live telemetry plane:
// a leveled JSON event log that previously-silent subsystems (ckpt
// saves/loads/GC, fault injections and recoveries, chaos kill/resume)
// publish into. Events carry the logger's clock offset, a source, an
// optional span ID for correlating with tracer spans (emitters attach
// the same ID to both), and integer key/value fields reusing the
// tracer's Arg type.
//
// A Logger is simultaneously:
//   - a fan-out hub: Subscribe hands out buffered channels the SSE
//     /events endpoint streams from (slow subscribers drop events
//     rather than stall the emitting hot path);
//   - an optional JSON-lines mirror: WithLogWriter tees every event
//     to an io.Writer, which is how cmd/chaos makes soak runs
//     greppable without a live subscriber.
//
// As everywhere in obs, a nil *Logger is a zero-cost no-op.

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Level classifies an event.
type Level uint8

// The levels, lowest to highest severity.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// Event is one structured log record.
type Event struct {
	// Seq is the logger-wide sequence number (1-based); the SSE
	// endpoint uses it as the event id.
	Seq int64 `json:"seq"`
	// TMs is the logger clock's offset in milliseconds.
	TMs float64 `json:"t_ms"`
	// Level is the severity name ("debug".."error").
	Level string `json:"level"`
	// Source names the emitting subsystem ("ckpt", "fault", "chaos").
	Source string `json:"source"`
	// Msg is the human-readable event name/description.
	Msg string `json:"msg"`
	// Span, when nonzero, correlates the event with tracer spans
	// carrying the same id in a "span" Arg.
	Span int64 `json:"span,omitempty"`
	// Fields are the integer annotations (epoch, bytes, rank, ...).
	Fields map[string]int64 `json:"fields,omitempty"`
}

// Logger collects and fans out structured events.
type Logger struct {
	clock Clock
	seq   atomic.Int64
	spans atomic.Int64

	mu      sync.Mutex
	w       io.Writer // optional JSON-lines mirror
	subs    map[int]chan Event
	nextSub int
}

// LoggerOption configures NewLogger.
type LoggerOption func(*Logger)

// WithLogClock injects the logger's clock (nil means a wall clock
// started at construction) — virtual-time drivers share their
// tracer's clock.
func WithLogClock(c Clock) LoggerOption {
	return func(l *Logger) {
		if c != nil {
			l.clock = c
		}
	}
}

// WithLogWriter tees every event to w as one JSON object per line.
func WithLogWriter(w io.Writer) LoggerOption {
	return func(l *Logger) { l.w = w }
}

// NewLogger returns an empty event logger.
func NewLogger(opts ...LoggerOption) *Logger {
	l := &Logger{subs: map[int]chan Event{}}
	for _, o := range opts {
		o(l)
	}
	if l.clock == nil {
		l.clock = NewWallClock()
	}
	return l
}

// NextSpan allocates a fresh span-correlation ID (0 on nil). Emitters
// attach it to both an Event and the matching tracer span args.
func (l *Logger) NextSpan() int64 {
	if l == nil {
		return 0
	}
	return l.spans.Add(1)
}

// Event records one event. Args become the event's integer fields.
// No-op on nil.
func (l *Logger) Event(level Level, source, msg string, args ...Arg) {
	l.EventSpan(level, source, msg, 0, args...)
}

// EventSpan is Event with an explicit span-correlation ID.
func (l *Logger) EventSpan(level Level, source, msg string, span int64, args ...Arg) {
	if l == nil {
		return
	}
	e := Event{
		Seq:    l.seq.Add(1),
		TMs:    float64(l.clock.Now()) / float64(time.Millisecond),
		Level:  level.String(),
		Source: source,
		Msg:    msg,
		Span:   span,
	}
	if len(args) > 0 {
		e.Fields = make(map[string]int64, len(args))
		for _, a := range args {
			e.Fields[a.Key] = a.Value
		}
	}
	l.mu.Lock()
	if l.w != nil {
		if buf, err := json.Marshal(e); err == nil {
			l.w.Write(append(buf, '\n'))
		}
	}
	for _, ch := range l.subs {
		select {
		case ch <- e:
		default: // slow subscriber: drop rather than stall the emitter
		}
	}
	l.mu.Unlock()
}

// Subscribe registers a fan-out channel with the given buffer
// (minimum 1) and returns it plus its cancel function. Events emitted
// while the channel is full are dropped for that subscriber. The
// channel is closed by cancel; cancel is idempotent. On a nil logger
// the returned channel is nil (reads block forever) and cancel is a
// no-op — callers gate on the logger's presence.
func (l *Logger) Subscribe(buf int) (<-chan Event, func()) {
	if l == nil {
		return nil, func() {}
	}
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Event, buf)
	l.mu.Lock()
	id := l.nextSub
	l.nextSub++
	l.subs[id] = ch
	l.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			l.mu.Lock()
			delete(l.subs, id)
			l.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}

// Subscribers reports the current fan-out count (0 on nil).
func (l *Logger) Subscribers() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.subs)
}
