package obs

// trace.go is the span/event half of the layer: substrates record
// named spans onto tracks (a Perfetto process/thread pair), with
// timestamps supplied either by the tracer's injected clock (wall
// clock for real goroutine work) or passed explicitly (virtual time
// for the DES/workflow substrates). chrome.go serializes the result.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock supplies span timestamps as offsets from the trace epoch.
type Clock interface {
	Now() time.Duration
}

// ClockFunc adapts a function to a Clock — the hook the DES kernel
// uses to inject simulated time.
type ClockFunc func() time.Duration

// Now implements Clock.
func (f ClockFunc) Now() time.Duration { return f() }

// wallClock measures real time since its creation.
type wallClock struct {
	epoch time.Time
}

// NewWallClock returns a Clock reading real time elapsed since now.
func NewWallClock() Clock { return &wallClock{epoch: time.Now()} }

func (c *wallClock) Now() time.Duration { return time.Since(c.epoch) }

// SimClock is a manually advanced virtual clock, for drivers that own
// a simulated-time loop. Safe for concurrent use.
type SimClock struct {
	now atomic.Int64 // nanoseconds
}

// Set moves the clock to t.
func (c *SimClock) Set(t time.Duration) { c.now.Store(int64(t)) }

// Now implements Clock.
func (c *SimClock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Seconds converts simulated seconds to the trace time unit.
func Seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// TrackID locates one timeline row: Perfetto renders one process
// group per PID and one thread lane per TID within it.
type TrackID struct {
	PID, TID int
}

// Arg is one integer key/value annotation on a span.
type Arg struct {
	Key   string
	Value int64
}

// Span is one completed slice of work on a track.
type Span struct {
	Track TrackID
	Name  string
	Start time.Duration
	Dur   time.Duration
	Args  []Arg
}

// Tracer collects spans from concurrent recorders. A nil *Tracer is a
// valid no-op sink, so instrumented code needs no branching; the
// recording methods on non-nil tracers take a short mutex.
type Tracer struct {
	clock Clock

	mu      sync.Mutex
	spans   []Span
	pids    map[string]int     // process name -> pid
	procs   []string           // pid -> process name
	threads map[TrackID]string // track -> thread name
}

// NewTracer returns an empty tracer using the given clock (nil means
// a wall clock started now).
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		clock = NewWallClock()
	}
	return &Tracer{
		clock:   clock,
		pids:    map[string]int{},
		threads: map[TrackID]string{},
	}
}

// Enabled reports whether spans are actually kept.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the current clock offset (0 on nil), letting callers
// compute timestamps only when tracing is on.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.clock.Now()
}

// Track registers (idempotently) a timeline row for the given process
// name and thread id and returns its TrackID. PIDs are assigned per
// distinct process name in registration order, starting at 1.
func (t *Tracer) Track(process string, tid int, thread string) TrackID {
	if t == nil {
		return TrackID{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pid, ok := t.pids[process]
	if !ok {
		pid = len(t.procs) + 1
		t.pids[process] = pid
		t.procs = append(t.procs, process)
	}
	id := TrackID{PID: pid, TID: tid}
	if _, ok := t.threads[id]; !ok {
		t.threads[id] = thread
	}
	return id
}

// Span records a completed span with explicit timestamps. Use
// tracer.Now() for wall-clock work, or pass virtual timestamps for
// simulated time. Safe for concurrent use; no-op on nil.
func (t *Tracer) Span(track TrackID, name string, start, dur time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Track: track, Name: name, Start: start, Dur: dur, Args: args})
	t.mu.Unlock()
}

// Instant records a zero-duration marker.
func (t *Tracer) Instant(track TrackID, name string, ts time.Duration, args ...Arg) {
	t.Span(track, name, ts, 0, args...)
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of all spans, stably sorted by start time (ties
// keep recording order).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// ProcessName returns the process name registered for pid ("" if
// unknown or nil tracer).
func (t *Tracer) ProcessName(pid int) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if pid < 1 || pid > len(t.procs) {
		return ""
	}
	return t.procs[pid-1]
}

// ThreadName returns the thread name registered for a track.
func (t *Tracer) ThreadName(id TrackID) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.threads[id]
}

// Sink bundles the halves of the layer so substrates can accept a
// single optional parameter. The zero value means "observability
// off", and every field is independently optional: Metrics and Tracer
// are the post-mortem pair PR 1 introduced; Progress and Log are the
// live telemetry plane (obs.Server publishes them at /progress and
// /events).
type Sink struct {
	Metrics  *Registry
	Tracer   *Tracer
	Progress *Progress
	Log      *Logger
}

// Enabled reports whether any half is attached.
func (s Sink) Enabled() bool {
	return s.Metrics != nil || s.Tracer != nil || s.Progress != nil || s.Log != nil
}
