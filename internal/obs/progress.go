package obs

// progress.go is the live-progress half of the telemetry plane: a
// concurrent map of named stages, each holding the latest numeric
// fields its substrate published ("engine" -> iteration + frontier
// size, "ghost" -> committed round, "mapreduce" -> task counts,
// "wfsched" -> sweep fraction). The /progress endpoint snapshots it;
// substrates publish through the Sink unconditionally because a nil
// *Progress is a no-op.

import (
	"sync"
	"time"
)

// Field is one named numeric progress datum.
type Field struct {
	Key   string
	Value float64
}

// F builds a Field — sugar for Update call sites.
func F(key string, v float64) Field { return Field{Key: key, Value: v} }

// Progress holds the latest per-stage progress fields.
type Progress struct {
	clock Clock

	mu     sync.RWMutex
	stages map[string]*stageState
}

type stageState struct {
	fields  map[string]float64
	updates int64
	at      time.Duration // clock offset of the last update
}

// NewProgress returns an empty reporter using the given clock (nil
// means a wall clock started now).
func NewProgress(clock Clock) *Progress {
	if clock == nil {
		clock = NewWallClock()
	}
	return &Progress{clock: clock, stages: map[string]*stageState{}}
}

// Update merges the given fields into the named stage (existing
// fields not named are kept, so different phases of one substrate can
// publish disjoint field sets) and stamps the stage with the clock.
// No-op on nil.
func (p *Progress) Update(stage string, fields ...Field) {
	if p == nil {
		return
	}
	now := p.clock.Now()
	p.mu.Lock()
	st, ok := p.stages[stage]
	if !ok {
		st = &stageState{fields: make(map[string]float64, len(fields))}
		p.stages[stage] = st
	}
	for _, f := range fields {
		st.fields[f.Key] = f.Value
	}
	st.updates++
	st.at = now
	p.mu.Unlock()
}

// StageSnapshot is the exported state of one stage.
type StageSnapshot struct {
	// Updates counts Update calls on the stage.
	Updates int64 `json:"updates"`
	// AgeMs is how long ago (on the reporter's clock) the stage last
	// updated.
	AgeMs float64 `json:"age_ms"`
	// Fields are the latest published values.
	Fields map[string]float64 `json:"fields"`
}

// Snapshot copies the current per-stage state (empty map on nil).
func (p *Progress) Snapshot() map[string]StageSnapshot {
	out := map[string]StageSnapshot{}
	if p == nil {
		return out
	}
	now := p.clock.Now()
	p.mu.RLock()
	defer p.mu.RUnlock()
	for name, st := range p.stages {
		fields := make(map[string]float64, len(st.fields))
		for k, v := range st.fields {
			fields[k] = v
		}
		out[name] = StageSnapshot{
			Updates: st.updates,
			AgeMs:   float64(now-st.at) / float64(time.Millisecond),
			Fields:  fields,
		}
	}
	return out
}
