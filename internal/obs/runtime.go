package obs

// runtime.go feeds the Go runtime's own telemetry (runtime/metrics)
// into a Registry so the /metrics exposition carries heap, GC, and
// scheduler health next to the substrate counters:
//
//	runtime.heap_bytes        gauge     live heap (objects) bytes
//	runtime.mem_total_bytes   gauge     total Go-managed memory
//	runtime.goroutines        gauge     current goroutine count
//	runtime.gc_cycles         gauge     completed GC cycles
//	runtime.gc_cpu_seconds    gauge     cumulative GC CPU seconds
//	runtime.gc_pause_ms       histogram stop-the-world pause durations
//	runtime.sched_latency_ms  histogram goroutine scheduling latency
//
// The two histograms are replayed from the runtime's cumulative
// bucket counts: each collection diffs against the previous sample
// and records the delta at the source bucket's midpoint, so the
// Registry histogram (and its p50/p95/p99 estimates) tracks the live
// distribution without re-observing history.

import (
	"math"
	"runtime/metrics"
	"sync"
)

// msBuckets is the latency ladder for the runtime histograms,
// in milliseconds: sub-10µs scheduling blips up to second-long
// stalls.
var msBuckets = []float64{0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000}

const (
	sampleHeap       = "/memory/classes/heap/objects:bytes"
	sampleMemTotal   = "/memory/classes/total:bytes"
	sampleGoroutines = "/sched/goroutines:goroutines"
	sampleGCCycles   = "/gc/cycles/total:gc-cycles"
	sampleGCCPU      = "/cpu/classes/gc/total:cpu-seconds"
	samplePauses     = "/gc/pauses:seconds"
	sampleSchedLat   = "/sched/latencies:seconds"
)

// runtimeCollector samples runtime/metrics into a Registry.
type runtimeCollector struct {
	mu      sync.Mutex
	samples []metrics.Sample

	gHeap, gMemTotal, gGoroutines, gGCCycles, gGCCPU *Gauge
	hPause, hSched                                   *Histogram

	prevPause, prevSched []uint64 // previous cumulative bucket counts
}

// newRuntimeCollector wires the runtime series into reg. A nil reg
// yields a collector whose instruments are all no-ops (every method
// on them is nil-safe), which keeps the server code branch-free.
func newRuntimeCollector(reg *Registry) *runtimeCollector {
	c := &runtimeCollector{
		samples: []metrics.Sample{
			{Name: sampleHeap},
			{Name: sampleMemTotal},
			{Name: sampleGoroutines},
			{Name: sampleGCCycles},
			{Name: sampleGCCPU},
			{Name: samplePauses},
			{Name: sampleSchedLat},
		},
		gHeap:       reg.Gauge("runtime.heap_bytes"),
		gMemTotal:   reg.Gauge("runtime.mem_total_bytes"),
		gGoroutines: reg.Gauge("runtime.goroutines"),
		gGCCycles:   reg.Gauge("runtime.gc_cycles"),
		gGCCPU:      reg.Gauge("runtime.gc_cpu_seconds"),
		hPause:      reg.Histogram("runtime.gc_pause_ms", msBuckets),
		hSched:      reg.Histogram("runtime.sched_latency_ms", msBuckets),
	}
	return c
}

// collect reads one sample set and updates the instruments. Safe for
// concurrent use (the ticker and ad-hoc /metrics scrapes both call
// it).
func (c *runtimeCollector) collect() {
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics.Read(c.samples)
	for _, s := range c.samples {
		switch s.Name {
		case sampleHeap:
			c.gHeap.Set(float64(s.Value.Uint64()))
		case sampleMemTotal:
			c.gMemTotal.Set(float64(s.Value.Uint64()))
		case sampleGoroutines:
			c.gGoroutines.Set(float64(s.Value.Uint64()))
		case sampleGCCycles:
			c.gGCCycles.Set(float64(s.Value.Uint64()))
		case sampleGCCPU:
			c.gGCCPU.Set(s.Value.Float64())
		case samplePauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				c.prevPause = replayHistogram(c.hPause, s.Value.Float64Histogram(), c.prevPause)
			}
		case sampleSchedLat:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				c.prevSched = replayHistogram(c.hSched, s.Value.Float64Histogram(), c.prevSched)
			}
		}
	}
}

// replayHistogram records the delta between a runtime cumulative
// histogram and its previous sample into dst, valuing each bucket at
// its midpoint converted from seconds to milliseconds. It returns the
// new cumulative counts for the next diff. The runtime may grow a
// histogram's bucket set between reads (it never shrinks); counts
// whose previous value is missing count from zero.
func replayHistogram(dst *Histogram, h *metrics.Float64Histogram, prev []uint64) []uint64 {
	counts := make([]uint64, len(h.Counts))
	copy(counts, h.Counts)
	for i, n := range counts {
		var before uint64
		if i < len(prev) {
			before = prev[i]
		}
		if n <= before {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		v := bucketMid(lo, hi) * 1000 // seconds -> ms
		dst.observeN(v, int64(n-before))
	}
	return counts
}

// bucketMid picks a representative value for a [lo, hi) runtime
// bucket, tolerating the +/-Inf edge buckets.
func bucketMid(lo, hi float64) float64 {
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	default:
		return (lo + hi) / 2
	}
}
