package obs

// server.go is the live telemetry plane's HTTP surface: one embedded
// endpoint per process (enabled by the shared -obs-listen flag)
// serving
//
//	/metrics        Prometheus text exposition of the Sink's Registry
//	/healthz        liveness probe ({"status":"ok",...})
//	/progress       JSON snapshot of the Sink's Progress stages
//	/events         SSE stream of the Sink's Logger events
//	/debug/pprof/*  net/http/pprof (CPU/heap/goroutine profiling)
//
// The server owns a runtime/metrics collector that samples the Go
// runtime into the Registry on a ticker (and once per /metrics scrape,
// so even an idle process exposes fresh heap/GC numbers).

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithServerClock injects the clock behind /healthz uptime and SSE
// heartbeats (nil means a wall clock started at construction). Tests
// use a SimClock.
func WithServerClock(c Clock) ServerOption {
	return func(s *Server) {
		if c != nil {
			s.clock = c
		}
	}
}

// WithCollectInterval sets the runtime/metrics sampling period
// (default 1s; <= 0 disables the ticker, leaving scrape-driven
// collection only).
func WithCollectInterval(d time.Duration) ServerOption {
	return func(s *Server) { s.collectEvery = d }
}

// Server is the embedded telemetry endpoint. Construct with
// NewServer, bind with Start, tear down with Close. A nil *Server is
// a no-op (Close and Addr are nil-safe), so CLIs can hold one
// unconditionally.
type Server struct {
	sink         Sink
	clock        Clock
	collector    *runtimeCollector
	collectEvery time.Duration

	http *http.Server
	ln   net.Listener

	mu     sync.Mutex
	done   chan struct{}
	closed bool
}

// NewServer builds a telemetry server publishing the given sink. The
// sink's fields may be nil — the handlers degrade to empty exposition
// / empty progress / an event stream that only heartbeats.
func NewServer(sink Sink, opts ...ServerOption) *Server {
	s := &Server{
		sink:         sink,
		collector:    newRuntimeCollector(sink.Metrics),
		collectEvery: time.Second,
		done:         make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	if s.clock == nil {
		s.clock = NewWallClock()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.http = &http.Server{Handler: mux}
	return s
}

// Handler exposes the telemetry mux — tests drive it through
// httptest without binding a port.
func (s *Server) Handler() http.Handler { return s.http.Handler }

// Start binds addr (":0" picks a free port) and serves in the
// background. It returns the bound address, which is how callers
// discover the real port.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: telemetry listen %s: %w", addr, err)
	}
	s.ln = ln
	go s.http.Serve(ln)
	if s.collectEvery > 0 {
		go s.collectLoop()
	}
	s.collector.collect()
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start or on nil).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the collector ticker and shuts the HTTP server down,
// waiting briefly for in-flight handlers (SSE streams are woken via
// the done channel). Safe to call twice and on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	s.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.http.Shutdown(ctx)
}

func (s *Server) collectLoop() {
	t := time.NewTicker(s.collectEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.collector.collect()
		case <-s.done:
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.collector.collect() // scrape-fresh runtime series
	w.Header().Set("Content-Type", PromContentType)
	s.sink.Metrics.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Status   string  `json:"status"`
		UptimeMs float64 `json:"uptime_ms"`
	}{"ok", float64(s.clock.Now()) / float64(time.Millisecond)})
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.sink.Progress.Snapshot())
}

// sseHeartbeat is how often an idle /events stream emits a comment
// line so proxies and clients see the connection is alive.
const sseHeartbeat = 15 * time.Second

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprintf(w, ": stream open subscribers=%d\n\n", s.sink.Log.Subscribers()+1)
	flusher.Flush()

	if s.sink.Log == nil {
		// No logger attached: heartbeat until the client or server
		// goes away so curl still sees a well-formed stream.
		s.heartbeatOnly(w, flusher, r.Context().Done())
		return
	}

	ch, cancel := s.sink.Log.Subscribe(256)
	defer cancel()
	hb := time.NewTicker(sseHeartbeat)
	defer hb.Stop()
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				return
			}
			buf, err := json.Marshal(e)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", e.Seq, buf)
			flusher.Flush()
		case <-hb.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		}
	}
}

func (s *Server) heartbeatOnly(w http.ResponseWriter, flusher http.Flusher, clientDone <-chan struct{}) {
	hb := time.NewTicker(sseHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-hb.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			flusher.Flush()
		case <-clientDone:
			return
		case <-s.done:
			return
		}
	}
}
