// Package obs is the unified observability layer every substrate of
// the reproduction reports into: a lock-cheap metrics registry
// (counters, gauges, fixed-bucket histograms) and a span tracer with
// injectable clocks that exports Chrome trace-event JSON loadable in
// Perfetto or chrome://tracing.
//
// The design contract is that *disabled observability costs nothing*:
// every instrument and the tracer are nil-safe, so instrumented code
// can call them unconditionally, and the hot-path methods on nil
// receivers are zero-allocation no-ops. Enabled instruments use
// atomics on the hot path; only instrument creation and snapshotting
// take locks.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value
// is ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64 metric. The zero value is ready
// to use; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add offsets the gauge by delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative-style histogram: bucket i
// counts observations <= Bounds[i], with one extra overflow bucket.
// Observations are atomic; a nil *Histogram is a no-op.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// DefaultBuckets is a decade-ish ladder that suits counts and
// millisecond durations alike.
var DefaultBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// observeN records n samples of value v in one shot — the bulk path
// the runtime/metrics collector uses to replay bucket-count deltas
// from the Go runtime's own histograms without n separate walks.
func (h *Histogram) observeN(v float64, n int64) {
	if h == nil || n <= 0 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Registry holds named instruments. Instruments are created on first
// use and live for the registry's lifetime, so hot paths hold only
// pointers. A nil *Registry hands out nil instruments, keeping every
// call site branch-free.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds if needed (nil bounds means DefaultBuckets).
// Bounds must be sorted ascending; they are fixed at creation.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefaultBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the exported state of one histogram. P50/P95/
// P99 are quantile estimates interpolated from the bucket counts (see
// Quantile); they are computed once at snapshot time so the end-of-run
// JSON and the CLI summaries agree.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets"`
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// counts by linear interpolation inside the bucket holding the target
// rank: observations are assumed uniform within a bucket, the first
// bucket's lower edge is 0 (or its bound, if negative), and ranks
// landing in the overflow bucket report the highest finite bound —
// the histogram cannot resolve beyond it. Returns 0 on an empty
// snapshot.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := int64(0)
	lo := 0.0
	if b := h.Buckets[0].UpperBound; b < 0 {
		lo = b
	}
	for i, b := range h.Buckets {
		if math.IsInf(b.UpperBound, 1) {
			// Overflow bucket: the last finite bound is the best
			// defensible answer.
			if i > 0 {
				return h.Buckets[i-1].UpperBound
			}
			return 0
		}
		next := cum + b.Count
		if float64(next) >= rank && b.Count > 0 {
			frac := (rank - float64(cum)) / float64(b.Count)
			return lo + frac*(b.UpperBound-lo)
		}
		cum = next
		lo = b.UpperBound
	}
	return lo
}

// BucketCount pairs a bucket's inclusive upper bound with its count.
// The overflow bucket reports +Inf as "inf".
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values. Safe to call while
// instruments are being updated (values are read atomically, the set
// of instruments under the lock).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ctrs) > 0 {
		s.Counters = make(map[string]int64, len(r.ctrs))
		for n, c := range r.ctrs {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			hs := HistogramSnapshot{
				Count:   h.count.Load(),
				Sum:     math.Float64frombits(h.sumBits.Load()),
				Buckets: make([]BucketCount, len(h.buckets)),
			}
			for i := range h.buckets {
				ub := math.Inf(1)
				if i < len(h.bounds) {
					ub = h.bounds[i]
				}
				hs.Buckets[i] = BucketCount{UpperBound: ub, Count: h.buckets[i].Load()}
			}
			hs.P50 = hs.Quantile(0.50)
			hs.P95 = hs.Quantile(0.95)
			hs.P99 = hs.Quantile(0.99)
			s.Histograms[n] = hs
		}
	}
	return s
}

// MarshalJSON renders +Inf bucket bounds as the string "inf", which
// plain float64 marshalling would reject.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.UpperBound, 1) {
		return json.Marshal(struct {
			UpperBound string `json:"le"`
			Count      int64  `json:"count"`
		}{"inf", b.Count})
	}
	return json.Marshal(struct {
		UpperBound float64 `json:"le"`
		Count      int64   `json:"count"`
	}{b.UpperBound, b.Count})
}

// WriteJSON writes an indented JSON snapshot (keys sorted, courtesy of
// encoding/json's map ordering).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("obs: encoding metrics snapshot: %w", err)
	}
	return nil
}

// SaveJSON writes the snapshot to a file.
func (r *Registry) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	defer f.Close()
	if err := r.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}
