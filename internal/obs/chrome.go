package obs

// chrome.go serializes a tracer into the Chrome trace-event JSON
// array format (the "JSON Array Format" of the trace-event spec),
// which Perfetto and chrome://tracing load directly: one complete
// "X" event per span with microsecond timestamps, preceded by "M"
// metadata events naming each process and thread track.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// chromeEvent is one entry of the trace array. Field presence follows
// the spec: metadata events carry args.name; complete events carry
// ts/dur in fractional microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChrome writes the tracer's spans as a Chrome trace-event JSON
// array. A nil tracer writes an empty array.
func (t *Tracer) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var events []chromeEvent
	if t != nil {
		t.mu.Lock()
		for pid, proc := range t.procs {
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", PID: pid + 1,
				Args: map[string]any{"name": proc},
			})
		}
		type namedTrack struct {
			id   TrackID
			name string
		}
		tracks := make([]namedTrack, 0, len(t.threads))
		for id, name := range t.threads {
			tracks = append(tracks, namedTrack{id, name})
		}
		sort.Slice(tracks, func(i, j int) bool {
			if tracks[i].id.PID != tracks[j].id.PID {
				return tracks[i].id.PID < tracks[j].id.PID
			}
			return tracks[i].id.TID < tracks[j].id.TID
		})
		for _, tk := range tracks {
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: tk.id.PID, TID: tk.id.TID,
				Args: map[string]any{"name": tk.name},
			})
		}
		spans := append([]Span(nil), t.spans...)
		t.mu.Unlock()
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		for _, s := range spans {
			ev := chromeEvent{
				Name: s.Name, Ph: "X", PID: s.Track.PID, TID: s.Track.TID,
				TS: micros(s.Start), Dur: micros(s.Dur), Cat: t.ProcessName(s.Track.PID),
			}
			if len(s.Args) > 0 {
				ev.Args = make(map[string]any, len(s.Args))
				for _, a := range s.Args {
					ev.Args[a.Key] = a.Value
				}
			}
			events = append(events, ev)
		}
	}

	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("obs: encoding trace event %d: %w", i, err)
		}
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveChrome writes the Chrome trace to a file.
func (t *Tracer) SaveChrome(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	defer f.Close()
	if err := t.WriteChrome(f); err != nil {
		return err
	}
	return f.Close()
}
