package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, sink Sink, opts ...ServerOption) *httptest.Server {
	t.Helper()
	srv := NewServer(sink, opts...)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Close() })
	return ts
}

func TestHealthzUptimeUsesClock(t *testing.T) {
	clk := &SimClock{}
	clk.Set(1500 * time.Millisecond)
	ts := newTestServer(t, Sink{}, WithServerClock(clk), WithCollectInterval(0))

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var body struct {
		Status   string  `json:"status"`
		UptimeMs float64 `json:"uptime_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" {
		t.Errorf("status = %q, want ok", body.Status)
	}
	if body.UptimeMs != 1500 {
		t.Errorf("uptime_ms = %v, want 1500 (from SimClock)", body.UptimeMs)
	}
}

func TestProgressEndpoint(t *testing.T) {
	clk := &SimClock{}
	prog := NewProgress(clk)
	prog.Update("engine", F("iteration", 12), F("frontier_tiles", 3))
	clk.Set(250 * time.Millisecond) // age the stage on the fake clock
	ts := newTestServer(t, Sink{Progress: prog}, WithServerClock(clk), WithCollectInterval(0))

	resp, err := http.Get(ts.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]StageSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	st, ok := got["engine"]
	if !ok {
		t.Fatalf("progress missing engine stage: %v", got)
	}
	if st.Updates != 1 || st.Fields["iteration"] != 12 || st.Fields["frontier_tiles"] != 3 {
		t.Errorf("engine stage = %+v", st)
	}
	if st.AgeMs != 250 {
		t.Errorf("age_ms = %v, want 250 (from SimClock)", st.AgeMs)
	}
}

func TestProgressEndpointEmptySink(t *testing.T) {
	ts := newTestServer(t, Sink{}, WithCollectInterval(0))
	resp, err := http.Get(ts.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]StageSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty sink progress = %v, want {}", got)
	}
}

func TestMetricsEndpointServesRegistryAndRuntime(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("engine.iterations").Add(99)
	reg.Histogram("shuffle.run_ms", nil).Observe(3)
	ts := newTestServer(t, Sink{Metrics: reg}, WithCollectInterval(0))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		"engine_iterations 99",
		`shuffle_run_ms_bucket{le="5"} 1`,
		// The scrape itself triggers a runtime/metrics collection.
		"# TYPE runtime_goroutines gauge",
		"# TYPE runtime_heap_bytes gauge",
		"# TYPE runtime_gc_pause_ms histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
}

func TestEventsSSEStream(t *testing.T) {
	log := NewLogger()
	ts := newTestServer(t, Sink{Log: log}, WithCollectInterval(0))

	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	r := bufio.NewReader(resp.Body)
	// First frame is the ": stream open" comment; wait for it so the
	// subscription is definitely registered before emitting.
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, ":") {
		t.Fatalf("first SSE line = %q, want comment", line)
	}

	log.Event(LevelInfo, "ckpt", "epoch saved", Arg{Key: "epoch", Value: 7})

	deadline := time.After(5 * time.Second)
	lines := make(chan string, 16)
	go func() {
		for {
			l, err := r.ReadString('\n')
			if err != nil {
				close(lines)
				return
			}
			lines <- l
		}
	}()
	for {
		select {
		case l, ok := <-lines:
			if !ok {
				t.Fatal("stream closed before event arrived")
			}
			if !strings.HasPrefix(l, "data: ") {
				continue
			}
			var e Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(l), "data: ")), &e); err != nil {
				t.Fatalf("bad SSE payload %q: %v", l, err)
			}
			if e.Source != "ckpt" || e.Msg != "epoch saved" || e.Fields["epoch"] != 7 {
				t.Errorf("event = %+v", e)
			}
			return
		case <-deadline:
			t.Fatal("timed out waiting for SSE event")
		}
	}
}

// TestLoggerSubscribeConcurrent hammers subscribe/emit/cancel from
// many goroutines; the -race build is the real assertion.
func TestLoggerSubscribeConcurrent(t *testing.T) {
	log := NewLogger()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					log.Event(LevelDebug, "test", "tick", Arg{Key: "n", Value: 1})
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				ch, cancel := log.Subscribe(4)
				// Drain a little, cancel (sometimes twice), repeat.
				select {
				case <-ch:
				default:
				}
				cancel()
				if j%3 == 0 {
					cancel() // idempotent
				}
				// Reading a closed channel must not panic or race.
				for range ch {
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := log.Subscribers(); n != 0 {
		t.Errorf("leaked %d subscribers", n)
	}
}

func TestServerStartStop(t *testing.T) {
	srv := NewServer(Sink{Metrics: NewRegistry()})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr() != addr {
		t.Errorf("Addr() = %q, want %q", srv.Addr(), addr)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz over real listener: %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if nilSrv.Addr() != "" {
		t.Errorf("nil Addr = %q", nilSrv.Addr())
	}
}

func TestServeTelemetryDisabled(t *testing.T) {
	var sink Sink
	srv, err := ServeTelemetry(&sink, "")
	if err != nil || srv != nil {
		t.Fatalf("disabled ServeTelemetry = %v, %v", srv, err)
	}
	if sink.Enabled() {
		t.Error("disabled ServeTelemetry must not touch the sink")
	}
}

func TestServeTelemetryUpgradesSink(t *testing.T) {
	var sink Sink
	srv, err := ServeTelemetry(&sink, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if sink.Metrics == nil || sink.Progress == nil || sink.Log == nil {
		t.Errorf("ServeTelemetry left sink holes: %+v", sink)
	}
}
