package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.count")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("x.count") != c {
		t.Fatal("counter not interned by name")
	}
	g := r.Gauge("x.gauge")
	g.Set(2.5)
	g.Add(1.5)
	if g.Value() != 4 {
		t.Fatalf("gauge = %v, want 4", g.Value())
	}
	h := r.Histogram("x.hist", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d, want 4", h.Count())
	}
	s := r.Snapshot()
	hs := s.Histograms["x.hist"]
	if hs.Sum != 555.5 {
		t.Fatalf("histogram sum = %v, want 555.5", hs.Sum)
	}
	want := []int64{1, 1, 1, 1}
	for i, b := range hs.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d count = %d, want %d", i, b.Count, want[i])
		}
	}
	if !math.IsInf(hs.Buckets[3].UpperBound, 1) {
		t.Fatal("overflow bucket bound not +Inf")
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			for j := 0; j < 1000; j++ {
				c.Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", nil).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("lost counter updates: %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("lost gauge updates: %v, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("lost histogram updates: %d, want 8000", got)
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("sched.steals").Add(7)
	r.Gauge("hetero.fraction").Set(0.25)
	r.Histogram("mr.groups", []float64{2, 4}).Observe(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	ctrs := back["counters"].(map[string]any)
	if ctrs["sched.steals"].(float64) != 7 {
		t.Fatalf("counter lost in JSON: %v", back)
	}
}

// TestNoopZeroAlloc is the disabled-path contract: nil instruments and
// a nil tracer must not allocate per event.
func TestNoopZeroAlloc(t *testing.T) {
	var (
		c   *Counter
		g   *Gauge
		h   *Histogram
		tr  *Tracer
		reg *Registry
	)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(1)
		h.Observe(2)
		tr.Span(TrackID{}, "x", 0, 0)
		tr.Instant(TrackID{}, "y", 0)
		_ = tr.Now()
		_ = tr.Track("p", 0, "t")
		_ = reg.Counter("x")
		_ = reg.Gauge("y")
		_ = reg.Histogram("z", nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled observability allocates %.1f per event, want 0", allocs)
	}
}

func TestTracerTracksAndSpans(t *testing.T) {
	tr := NewTracer(nil)
	w0 := tr.Track("sched", 0, "worker 0")
	w1 := tr.Track("sched", 1, "worker 1")
	r0 := tr.Track("ghost", 0, "rank 0")
	if w0.PID != w1.PID {
		t.Fatalf("same process got different pids: %v %v", w0, w1)
	}
	if w0.PID == r0.PID {
		t.Fatal("distinct processes share a pid")
	}
	if again := tr.Track("sched", 0, "other name"); again != w0 {
		t.Fatalf("re-registration moved the track: %v vs %v", again, w0)
	}
	if tr.ThreadName(w0) != "worker 0" {
		t.Fatalf("thread name = %q", tr.ThreadName(w0))
	}
	if tr.ProcessName(r0.PID) != "ghost" {
		t.Fatalf("process name = %q", tr.ProcessName(r0.PID))
	}

	tr.Span(w1, "chunk", 30*time.Microsecond, 5*time.Microsecond)
	tr.Span(w0, "chunk", 10*time.Microsecond, 20*time.Microsecond, Arg{"lo", 0}, Arg{"hi", 64})
	spans := tr.Spans()
	if len(spans) != 2 || tr.Len() != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Track != w0 || spans[1].Track != w1 {
		t.Fatalf("spans not sorted by start: %+v", spans)
	}
	if spans[0].Args[1].Value != 64 {
		t.Fatalf("span args lost: %+v", spans[0])
	}
}

func TestClockInjection(t *testing.T) {
	// Virtual clock: the tracer reads whatever the driver last set —
	// the DES substrates' contract.
	var sim SimClock
	tr := NewTracer(&sim)
	if tr.Now() != 0 {
		t.Fatalf("fresh sim clock reads %v", tr.Now())
	}
	sim.Set(Seconds(42.5))
	if tr.Now() != 42500*time.Millisecond {
		t.Fatalf("sim clock reads %v, want 42.5s", tr.Now())
	}
	// ClockFunc adapter.
	fixed := NewTracer(ClockFunc(func() time.Duration { return time.Hour }))
	if fixed.Now() != time.Hour {
		t.Fatalf("ClockFunc clock reads %v", fixed.Now())
	}
	// Wall clock: default, monotonic.
	wall := NewTracer(nil)
	a := wall.Now()
	time.Sleep(time.Millisecond)
	if b := wall.Now(); b <= a {
		t.Fatalf("wall clock not increasing: %v then %v", a, b)
	}
}

func TestConcurrentSpanRecording(t *testing.T) {
	tr := NewTracer(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			track := tr.Track("p", w, "t")
			for i := 0; i < 200; i++ {
				tr.Span(track, "s", time.Duration(i), 1)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 1600 {
		t.Fatalf("lost spans: %d, want 1600", tr.Len())
	}
}

func TestWriteChromeFormat(t *testing.T) {
	tr := NewTracer(nil)
	w0 := tr.Track("sched", 0, "worker 0")
	tr.Span(w0, "chunk", 100*time.Microsecond, 50*time.Microsecond, Arg{"lo", 3})
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v\n%s", err, buf.String())
	}
	var meta, complete int
	for _, e := range events {
		switch e["ph"] {
		case "M":
			meta++
		case "X":
			complete++
			if e["ts"].(float64) != 100 || e["dur"].(float64) != 50 {
				t.Fatalf("ts/dur not microseconds: %v", e)
			}
			if e["pid"].(float64) != float64(w0.PID) {
				t.Fatalf("wrong pid: %v", e)
			}
			if e["args"].(map[string]any)["lo"].(float64) != 3 {
				t.Fatalf("args lost: %v", e)
			}
		default:
			t.Fatalf("unexpected phase %v", e["ph"])
		}
	}
	if meta != 2 { // process_name + thread_name
		t.Fatalf("metadata events = %d, want 2", meta)
	}
	if complete != 1 {
		t.Fatalf("complete events = %d, want 1", complete)
	}
}

func TestWriteChromeNilTracer(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil || len(events) != 0 {
		t.Fatalf("nil tracer chrome output: %v, %s", err, buf.String())
	}
}

func TestSinkEnabled(t *testing.T) {
	var s Sink
	if s.Enabled() {
		t.Fatal("zero sink enabled")
	}
	if !(Sink{Metrics: NewRegistry()}).Enabled() {
		t.Fatal("metrics-only sink disabled")
	}
	if !(Sink{Tracer: NewTracer(nil)}).Enabled() {
		t.Fatal("tracer-only sink disabled")
	}
}
