package obs

// expo.go renders a Registry snapshot in the Prometheus text
// exposition format (version 0.0.4, which every OpenMetrics-era
// scraper still ingests). The mapping from the Registry's model:
//
//   - metric names keep their dotted form internally; the exposition
//     rewrites every character outside [a-zA-Z0-9_:] to '_'
//     ("engine.frontier_tiles" -> "engine_frontier_tiles");
//   - Counter  -> `# TYPE x counter` with its current value;
//   - Gauge    -> `# TYPE x gauge`;
//   - Histogram-> `# TYPE x histogram` with *cumulative* `x_bucket`
//     series (the Registry stores disjoint per-bucket counts; the
//     exposition integrates them), a closing `le="+Inf"` bucket equal
//     to `x_count`, plus `x_sum` and `x_count`.
//
// Families are emitted in sorted metric-name order so the output is
// deterministic — the server's golden test depends on that.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// PromContentType is the Content-Type the /metrics endpoint serves.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a Registry metric name into a legal Prometheus
// metric name.
func promName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			out = append(out, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				out = append(out, '_')
			}
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// promFloat formats a value the way Prometheus expects (no exponent
// for integral values, "+Inf" never appears here — bucket bounds are
// handled separately).
func promFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders a point-in-time snapshot of the registry in
// the Prometheus text exposition format. A nil registry writes
// nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WriteSnapshotPrometheus(w, r.Snapshot())
}

// WriteSnapshotPrometheus renders an already-taken snapshot (see
// WritePrometheus). Splitting the two lets tests and the /metrics
// handler render without re-reading the live instruments.
func WriteSnapshotPrometheus(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[n])); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = promFloat(b.UpperBound)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}
