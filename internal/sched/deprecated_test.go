package sched

import (
	"sync/atomic"
	"testing"
)

// The positional entry points (NewPool, Pool.Run, Pool.RunIndexed,
// ForEach) are deprecated but remain supported; every other test runs
// through the context API, so this file is the shims' only coverage.

func TestDeprecatedShimsStillWork(t *testing.T) {
	p := NewPool(Options{Workers: 3, Policy: Dynamic, ChunkSize: 2})
	defer p.Close()

	var sum atomic.Int64
	p.Run(100, func(w, lo, hi int) { sum.Add(int64(hi - lo)) })
	if sum.Load() != 100 {
		t.Fatalf("Run covered %d iterations, want 100", sum.Load())
	}

	ids := []int32{3, 1, 4, 1, 5, 9, 2, 6}
	var idSum atomic.Int64
	p.RunIndexed(ids, func(w int, chunk []int32) {
		for _, id := range chunk {
			idSum.Add(int64(id))
		}
	})
	if idSum.Load() != 31 {
		t.Fatalf("RunIndexed sum = %d, want 31", idSum.Load())
	}

	var feSum atomic.Int64
	ForEach(64, Options{Workers: 4, Policy: Guided}, func(w, lo, hi int) {
		feSum.Add(int64(hi - lo))
	})
	if feSum.Load() != 64 {
		t.Fatalf("ForEach covered %d iterations, want 64", feSum.Load())
	}
}

// TestDeprecatedRunPropagatesBodyPanic pins the shim to the same
// panic contract the context path is tested under.
func TestDeprecatedRunPropagatesBodyPanic(t *testing.T) {
	p := NewPool(Options{Workers: 2, Policy: Static, ChunkSize: 1})
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run swallowed the body panic")
		}
	}()
	p.Run(100, func(w, lo, hi int) { panic("boom") })
}
