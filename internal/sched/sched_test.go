package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// coverage runs the pool over n iterations and returns a per-index
// visit count plus a per-worker iteration tally.
func coverage(t *testing.T, n int, o Options) ([]int32, []int64) {
	t.Helper()
	p := New(WithWorkers(o.Workers), WithPolicy(o.Policy), WithChunkSize(o.ChunkSize))
	defer p.Close()
	counts := make([]int32, n)
	perWorker := make([]int64, p.Workers())
	var mu sync.Mutex
	p.RunContext(context.Background(), n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
		mu.Lock()
		perWorker[w] += int64(hi - lo)
		mu.Unlock()
	})
	return counts, perWorker
}

func assertExactlyOnce(t *testing.T, counts []int32, policy Policy) {
	t.Helper()
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("%v: index %d executed %d times, want 1", policy, i, c)
		}
	}
}

func TestEveryPolicyCoversEveryIndexOnce(t *testing.T) {
	for _, policy := range Policies {
		for _, n := range []int{1, 7, 64, 1000, 4097} {
			for _, workers := range []int{1, 3, 8} {
				counts, _ := coverage(t, n, Options{Workers: workers, Policy: policy, ChunkSize: 5})
				assertExactlyOnce(t, counts, policy)
			}
		}
	}
}

func TestStaticBlocksAreContiguous(t *testing.T) {
	p := New(WithWorkers(4), WithPolicy(Static))
	defer p.Close()
	type span struct{ lo, hi int }
	var mu sync.Mutex
	spans := map[int][]span{}
	p.RunContext(context.Background(), 100, func(w, lo, hi int) {
		mu.Lock()
		spans[w] = append(spans[w], span{lo, hi})
		mu.Unlock()
	})
	for w, ss := range spans {
		if len(ss) != 1 {
			t.Fatalf("static: worker %d got %d spans, want 1", w, len(ss))
		}
		if ss[0].hi-ss[0].lo != 25 {
			t.Fatalf("static: worker %d span %v, want 25 iterations", w, ss[0])
		}
	}
}

func TestCyclicDealsRoundRobin(t *testing.T) {
	p := New(WithWorkers(2), WithPolicy(Cyclic), WithChunkSize(3))
	defer p.Close()
	owner := make([]int32, 12)
	p.RunContext(context.Background(), 12, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.StoreInt32(&owner[i], int32(w))
		}
	})
	want := []int32{0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1}
	for i := range want {
		if owner[i] != want[i] {
			t.Fatalf("cyclic owners = %v, want %v", owner, want)
		}
	}
}

func TestDynamicBalancesSkewedWork(t *testing.T) {
	// One pathological heavy index at the front. Under dynamic
	// scheduling the other workers should absorb nearly all remaining
	// iterations while one worker is stuck.
	p := New(WithWorkers(4), WithPolicy(Dynamic), WithChunkSize(1))
	defer p.Close()
	perWorker := make([]int64, 4)
	p.RunContext(context.Background(), 400, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 0 {
				time.Sleep(30 * time.Millisecond)
			}
		}
		atomic.AddInt64(&perWorker[w], int64(hi-lo))
	})
	var total, max int64
	for _, c := range perWorker {
		total += c
		if c > max {
			max = c
		}
	}
	if total != 400 {
		t.Fatalf("total = %d, want 400", total)
	}
	// The stuck worker should have executed far fewer than a static
	// quarter share; equivalently no single worker ran everything and
	// the minimum is tiny.
	var min int64 = 1 << 62
	for _, c := range perWorker {
		if c < min {
			min = c
		}
	}
	if min > 50 {
		t.Fatalf("dynamic did not offload the stuck worker: per-worker %v", perWorker)
	}
}

func TestGuidedChunksShrink(t *testing.T) {
	p := New(WithWorkers(2), WithPolicy(Guided), WithChunkSize(1))
	defer p.Close()
	var mu sync.Mutex
	var sizes []int
	p.RunContext(context.Background(), 1000, func(w, lo, hi int) {
		mu.Lock()
		sizes = append(sizes, hi-lo)
		mu.Unlock()
	})
	if len(sizes) < 3 {
		t.Fatalf("guided produced only %d chunks", len(sizes))
	}
	// First chunk claimed must be the large initial grab (n/2P = 250)
	// and some later chunk must be the minimum size.
	foundBig, foundSmall := false, false
	for _, s := range sizes {
		if s >= 200 {
			foundBig = true
		}
		if s == 1 {
			foundSmall = true
		}
	}
	if !foundBig || !foundSmall {
		t.Fatalf("guided chunk profile unexpected: %v", sizes)
	}
}

func TestRunZeroAndNegativeN(t *testing.T) {
	p := New(WithWorkers(2))
	defer p.Close()
	ran := false
	p.RunContext(context.Background(), 0, func(w, lo, hi int) { ran = true })
	p.RunContext(context.Background(), -5, func(w, lo, hi int) { ran = true })
	if ran {
		t.Fatal("body ran for n <= 0")
	}
}

func TestPoolReuseAcrossRuns(t *testing.T) {
	p := New(WithWorkers(3), WithPolicy(Dynamic), WithChunkSize(2))
	defer p.Close()
	for rep := 0; rep < 20; rep++ {
		var sum int64
		p.RunContext(context.Background(), 101, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt64(&sum, int64(i))
			}
		})
		if sum != 101*100/2 {
			t.Fatalf("rep %d: sum = %d, want %d", rep, sum, 101*100/2)
		}
	}
}

func TestRunAfterClosePanics(t *testing.T) {
	p := New(WithWorkers(1))
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run on closed pool did not panic")
		}
	}()
	p.RunContext(context.Background(), 1, func(w, lo, hi int) {})
}

func TestCloseIsIdempotent(t *testing.T) {
	p := New(WithWorkers(1))
	p.Close()
	p.Close() // must not panic
}

func TestWorkerIDsInRange(t *testing.T) {
	for _, policy := range Policies {
		p := New(WithWorkers(5), WithPolicy(policy), WithChunkSize(2))
		var bad atomic.Int32
		p.RunContext(context.Background(), 500, func(w, lo, hi int) {
			if w < 0 || w >= 5 {
				bad.Store(1)
			}
		})
		p.Close()
		if bad.Load() != 0 {
			t.Fatalf("%v: worker id out of range", policy)
		}
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, p := range Policies {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip failed for %v: %v %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("mystery"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
	if s := Policy(99).String(); s != "policy(99)" {
		t.Fatalf("unknown policy string = %q", s)
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := New()
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("default workers = %d", p.Workers())
	}
	if p.Policy() != Static {
		t.Fatalf("default policy = %v, want static", p.Policy())
	}
}

// quick-check: arbitrary n/worker/chunk combinations cover [0, n)
// exactly once under every policy.
func TestQuickCoverage(t *testing.T) {
	f := func(nRaw uint16, wRaw, cRaw uint8, pRaw uint8) bool {
		n := int(nRaw)%2000 + 1
		o := Options{
			Workers:   int(wRaw)%8 + 1,
			ChunkSize: int(cRaw)%32 + 1,
			Policy:    Policies[int(pRaw)%len(Policies)],
		}
		counts := make([]int32, n)
		p := New(WithWorkers(o.Workers), WithPolicy(o.Policy), WithChunkSize(o.ChunkSize))
		p.RunContext(context.Background(), n, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		p.Close()
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
