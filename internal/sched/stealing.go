package sched

// stealing.go adds a work-stealing schedule, the policy OpenMP tasks
// and TBB use rather than any `schedule(...)` clause: iterations are
// dealt to per-worker deques up front (giving static's locality);
// workers pop their own deque from the back (LIFO, cache-warm) and
// steal from a victim's front (FIFO, the oldest — and for a
// wavefront workload usually the largest — pending chunk) when their
// own deque drains. Compared to Dynamic there is no single contended
// counter; compared to Static, imbalance is bounded by chunk size.

import "sync"

// Stealing is the work-stealing policy; see the package comment of
// this file. ChunkSize controls the granularity dealt to the deques.
const Stealing Policy = 4

// stealDeque is a mutex-protected chunk deque. A fancier lock-free
// Chase-Lev deque is overkill at tile granularity: the lock is held
// for a few nanoseconds per chunk. The chunk storage persists across
// regions (head marks the consumed prefix) so refilling it reuses the
// backing array instead of reallocating per region.
type stealDeque struct {
	mu     sync.Mutex
	chunks [][2]int // [lo, hi) ranges; live entries are chunks[head:]
	head   int
}

// reset empties the deque, retaining its storage.
func (d *stealDeque) reset() {
	d.chunks = d.chunks[:0]
	d.head = 0
}

// popBack removes the newest chunk (owner side).
func (d *stealDeque) popBack() ([2]int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.chunks)
	if n <= d.head {
		return [2]int{}, false
	}
	c := d.chunks[n-1]
	d.chunks = d.chunks[:n-1]
	return c, true
}

// popFront removes the oldest chunk (thief side).
func (d *stealDeque) popFront() ([2]int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.chunks) <= d.head {
		return [2]int{}, false
	}
	c := d.chunks[d.head]
	d.head++
	return c, true
}

// dealDeques (re)fills the per-worker deques for the current region.
// It is bound to Pool.buildDeques at construction so handing it to
// Once.Do creates no per-region closure. After the first region the
// deque storage is warm and dealing allocates nothing.
func (p *Pool) dealDeques() {
	if p.deques == nil {
		p.deques = make([]*stealDeque, p.workers)
		for w := range p.deques {
			p.deques[w] = &stealDeque{}
		}
	}
	for _, d := range p.deques {
		d.reset()
	}
	// Deal chunks round-robin so each deque holds a spread of the
	// index space (better balance when work clusters spatially).
	w := 0
	for lo := 0; lo < p.n; lo += p.chunk {
		hi := lo + p.chunk
		if hi > p.n {
			hi = p.n
		}
		d := p.deques[w]
		d.chunks = append(d.chunks, [2]int{lo, hi})
		w = (w + 1) % p.workers
	}
}

// runStealing executes one parallel region under the stealing policy.
// Deques are refilled per region; the deal cost is O(n/chunk).
func (p *Pool) runStealing(id int) {
	// The first worker to arrive deals the deques for this region;
	// others wait inside the Once. The sync.Once lives in the region
	// state reset by Run.
	p.stealOnce.Do(p.buildDeques)

	own := p.deques[id]
	for !p.aborted.Load() {
		if c, ok := own.popBack(); ok {
			p.exec(id, c[0], c[1])
			continue
		}
		// Steal sweep: try every victim once; if all empty, the
		// region is done for this worker (chunks in flight on other
		// workers cannot be helped).
		stolen := false
		for off := 1; off < p.workers; off++ {
			victim := p.deques[(id+off)%p.workers]
			if c, ok := victim.popFront(); ok {
				p.cSteals.Inc() // nil-safe: no-op with obs off
				p.exec(id, c[0], c[1])
				stolen = true
				break
			}
		}
		if !stolen {
			return
		}
	}
}
