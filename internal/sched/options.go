package sched

// options.go is the functional-options constructor introduced by the
// fault/recovery PR's API redesign: every substrate now exposes
// New(...With*) so configuration surfaces grow without breaking
// callers. NewPool(Options) remains as a thin deprecated shim.

import "repro/internal/obs"

// Option configures a Pool built with New.
type Option func(*Options)

// WithWorkers sets the team size (0 means GOMAXPROCS).
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithPolicy sets the loop schedule (default Static).
func WithPolicy(p Policy) Option { return func(o *Options) { o.Policy = p } }

// WithChunkSize sets the chunk granularity for Cyclic/Dynamic and the
// minimum chunk for Guided (0 means 1).
func WithChunkSize(n int) Option { return func(o *Options) { o.ChunkSize = n } }

// WithObs attaches the observability layer.
func WithObs(sink obs.Sink) Option { return func(o *Options) { o.Obs = sink } }

// New starts a worker team configured by the options. Callers must
// Close it. This is the preferred constructor; NewPool(Options) is
// the legacy positional-struct form.
func New(opts ...Option) *Pool {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return NewPool(o)
}
