package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The generic policy tests (coverage, worker ids, reuse, quick-check)
// iterate Policies and therefore already exercise Stealing; the tests
// here pin down stealing-specific behavior.

func TestStealingOffloadsStuckWorker(t *testing.T) {
	// One heavy index at the front of worker 0's deque: the other
	// workers must steal the rest of its chunks while it is stuck.
	p := New(WithWorkers(4), WithPolicy(Stealing), WithChunkSize(1))
	defer p.Close()
	perWorker := make([]int64, 4)
	p.RunContext(context.Background(), 400, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 0 {
				time.Sleep(30 * time.Millisecond)
			}
		}
		atomic.AddInt64(&perWorker[w], int64(hi-lo))
	})
	var total, min int64
	min = 1 << 62
	for _, c := range perWorker {
		total += c
		if c < min {
			min = c
		}
	}
	if total != 400 {
		t.Fatalf("total = %d, want 400", total)
	}
	if min > 50 {
		t.Fatalf("stealing did not offload the stuck worker: %v", perWorker)
	}
}

func TestStealingChunkGranularity(t *testing.T) {
	p := New(WithWorkers(2), WithPolicy(Stealing), WithChunkSize(8))
	defer p.Close()
	var mu sync.Mutex
	var sizes []int
	p.RunContext(context.Background(), 100, func(w, lo, hi int) {
		mu.Lock()
		sizes = append(sizes, hi-lo)
		mu.Unlock()
	})
	total := 0
	for _, s := range sizes {
		if s > 8 {
			t.Fatalf("chunk of %d exceeds ChunkSize 8", s)
		}
		total += s
	}
	if total != 100 {
		t.Fatalf("chunks cover %d iterations, want 100", total)
	}
}

func TestStealingSingleWorker(t *testing.T) {
	p := New(WithWorkers(1), WithPolicy(Stealing), WithChunkSize(4))
	defer p.Close()
	var sum int64
	p.RunContext(context.Background(), 37, func(w, lo, hi int) { atomic.AddInt64(&sum, int64(hi-lo)) })
	if sum != 37 {
		t.Fatalf("covered %d, want 37", sum)
	}
}

func TestStealingDequeOps(t *testing.T) {
	d := &stealDeque{}
	if _, ok := d.popBack(); ok {
		t.Fatal("popBack on empty deque")
	}
	if _, ok := d.popFront(); ok {
		t.Fatal("popFront on empty deque")
	}
	d.chunks = [][2]int{{0, 1}, {1, 2}, {2, 3}}
	if c, ok := d.popBack(); !ok || c != [2]int{2, 3} {
		t.Fatalf("popBack = %v, %v", c, ok)
	}
	if c, ok := d.popFront(); !ok || c != [2]int{0, 1} {
		t.Fatalf("popFront = %v, %v", c, ok)
	}
}

func TestStealingParsePolicy(t *testing.T) {
	p, err := ParsePolicy("stealing")
	if err != nil || p != Stealing {
		t.Fatalf("ParsePolicy(stealing) = %v, %v", p, err)
	}
}
