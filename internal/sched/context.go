package sched

// context.go threads context.Context through the pool's entry points.
// Cancellation rides the same abort flag a body panic uses: a watcher
// goroutine trips it when ctx fires, the policy loops drain at the
// next chunk boundary, and RunContext returns ctx.Err(). Completed
// chunks are never rolled back — cancellation is a best-effort early
// exit, matching the fault layer's "stop wasting work" semantics.

import "context"

// RunContext is Run with cancellation: it executes body over [0, n)
// like Run, but stops claiming new chunks once ctx is cancelled and
// then returns ctx.Err(). Chunks already executing run to completion
// (bodies are not interrupted mid-chunk). A body panic propagates to
// the caller exactly as in Run.
func (p *Pool) RunContext(ctx context.Context, n int, body func(worker, lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if ctx.Done() == nil {
		// Background-style contexts can never fire: skip the watcher
		// goroutine entirely so hot loops migrated off the deprecated
		// Run pay nothing for the context plumbing.
		p.run(n, body)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	stopWatch := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			p.abort()
		case <-stopWatch:
		}
	}()
	// The watcher must be fully stopped before RunContext returns:
	// a late abort() would clobber the cursor of the caller's next
	// region. Run's own prologue resets the abort flag, so a watcher
	// firing in the tiny window before that reset only costs the
	// early exit, never correctness.
	defer func() {
		close(stopWatch)
		<-watcherDone
	}()
	p.run(n, body)
	return ctx.Err()
}

// RunIndexedContext is RunIndexed with the RunContext cancellation
// contract.
func (p *Pool) RunIndexedContext(ctx context.Context, ids []int32, body func(worker int, ids []int32)) error {
	if len(ids) == 0 {
		return ctx.Err()
	}
	p.ids = ids
	p.idxBody = body
	defer func() {
		p.ids = nil
		p.idxBody = nil
	}()
	return p.RunContext(ctx, len(ids), p.idxExec)
}
