// Package sched is the parallel-for runtime the sandpile engine
// schedules its iterations over. It stands in for OpenMP's
// `#pragma omp parallel for schedule(...)`: a fixed pool of worker
// goroutines executes index ranges carved from [0, n) according to a
// Policy. Four policies mirror OpenMP's static, static-cyclic
// (schedule(static,1)-style), dynamic, and guided clauses; a fifth,
// work stealing, is the OpenMP-tasks/TBB strategy (stealing.go).
//
// The point of the first sandpile assignment is that policy choice is
// workload-dependent: static wins on uniform work, dynamic/guided win
// on the sparse, imbalanced configurations. This package makes those
// choices first-class and measurable.
package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Policy selects how loop iterations are distributed over workers.
type Policy int

const (
	// Static splits [0, n) into one contiguous block per worker.
	Static Policy = iota
	// Cyclic deals chunks of ChunkSize to workers round-robin,
	// like OpenMP schedule(static, chunk).
	Cyclic
	// Dynamic lets workers grab chunks of ChunkSize from a shared
	// counter, like OpenMP schedule(dynamic, chunk).
	Dynamic
	// Guided grabs exponentially shrinking chunks (remaining/2P,
	// floored at ChunkSize), like OpenMP schedule(guided).
	Guided
	// Stealing (defined in stealing.go) deals chunks to per-worker
	// deques and lets idle workers steal — the OpenMP-tasks/TBB
	// strategy rather than a schedule clause.
)

// Policies lists every policy, in presentation order.
var Policies = []Policy{Static, Cyclic, Dynamic, Guided, Stealing}

// String returns the OpenMP-style policy name.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case Cyclic:
		return "cyclic"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	case Stealing:
		return "stealing"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy converts a policy name to a Policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown policy %q", s)
}

// Pool is a reusable team of worker goroutines, the analog of an
// OpenMP thread team. A Pool is created once per engine run and
// amortizes goroutine start-up across iterations. Pool methods must
// not be called concurrently with each other.
type Pool struct {
	workers int
	policy  Policy
	chunk   int

	body   func(worker, lo, hi int)
	exec   func(worker, lo, hi int) // body, or the obs wrapper around it
	n      int
	cursor atomic.Int64
	done   sync.WaitGroup
	// indexed-run state: RunIndexed stores the id slice and user body
	// here and routes through Run with the pre-built idxExec trampoline,
	// so scheduling an index worklist costs no allocation.
	ids     []int32
	idxBody func(worker int, ids []int32)
	idxExec func(worker, lo, hi int)
	// stealing-policy region state, reset by Run. The deques and their
	// chunk storage are built lazily once and reused across regions
	// (buildDeques is pre-bound so Once.Do gets a loop-invariant func).
	stealOnce   sync.Once
	deques      []*stealDeque
	buildDeques func()
	work        []chan struct{} // one start channel per worker, so each region runs exactly once per worker
	stop        chan struct{}
	closeOnce   sync.Once
	stopped     atomic.Bool

	// abort short-circuits the current region: set when a body panics
	// (the panic is captured and re-raised in Run's caller) or when a
	// RunContext watcher sees cancellation. Policy loops check it per
	// chunk; bumping cursor past n unblocks the counter-based claims.
	aborted  atomic.Bool
	panicMu  sync.Mutex
	panicVal any

	// observability (nil/empty when disabled; the disabled hot path is
	// untouched because exec == body then)
	obsOn    bool
	instr    func(worker, lo, hi int)
	tr       *obs.Tracer
	tracks   []obs.TrackID
	busy     []int64 // per-worker busy ns, strided to avoid false sharing
	cRegions *obs.Counter
	cChunks  *obs.Counter
	cSteals  *obs.Counter
	cBusyNS  *obs.Counter
	cIdleNS  *obs.Counter
}

// busyStride spaces per-worker busy slots one cache line apart.
const busyStride = 8

// Options configures a Pool.
type Options struct {
	// Workers is the team size; 0 means GOMAXPROCS.
	Workers int
	// Policy is the loop schedule; default Static.
	Policy Policy
	// ChunkSize is the chunk granularity for Cyclic/Dynamic and the
	// minimum chunk for Guided; 0 means 1.
	ChunkSize int
	// Obs attaches the observability layer: per-worker chunk spans on
	// the "sched" track, plus sched.* counters (regions, chunks,
	// steals, busy/idle time). The zero Sink disables it at no cost.
	Obs obs.Sink
}

// NewPool starts the worker team. Callers must Close it.
//
// Deprecated: prefer New with functional options (options.go), which
// is the uniform constructor style across the repo's substrates.
// NewPool remains supported as a thin equivalent.
func NewPool(o Options) *Pool {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 1
	}
	p := &Pool{
		workers: o.Workers,
		policy:  o.Policy,
		chunk:   o.ChunkSize,
		work:    make([]chan struct{}, o.Workers),
		stop:    make(chan struct{}),
	}
	if o.Obs.Enabled() {
		p.obsOn = true
		p.tr = o.Obs.Tracer
		p.busy = make([]int64, p.workers*busyStride)
		m := o.Obs.Metrics
		p.cRegions = m.Counter("sched.regions")
		p.cChunks = m.Counter("sched.chunks")
		p.cSteals = m.Counter("sched.steals")
		p.cBusyNS = m.Counter("sched.busy_ns")
		p.cIdleNS = m.Counter("sched.idle_ns")
		if p.tr != nil {
			p.tracks = make([]obs.TrackID, p.workers)
			for w := 0; w < p.workers; w++ {
				p.tracks[w] = p.tr.Track("sched", w, fmt.Sprintf("worker %d", w))
			}
		}
		p.instr = p.observedExec
	}
	p.idxExec = func(worker, lo, hi int) { p.idxBody(worker, p.ids[lo:hi]) }
	p.buildDeques = p.dealDeques
	for w := 0; w < p.workers; w++ {
		p.work[w] = make(chan struct{}, 1)
		go p.worker(w)
	}
	return p
}

// observedExec wraps the region body with per-chunk timing: a span on
// the worker's track and busy-time accounting for the idle counter.
func (p *Pool) observedExec(worker, lo, hi int) {
	t0 := time.Now()
	ts := p.tr.Now() // 0 without a tracer
	p.body(worker, lo, hi)
	el := time.Since(t0)
	p.busy[worker*busyStride] += int64(el)
	p.cChunks.Inc()
	if p.tr != nil {
		p.tr.Span(p.tracks[worker], "chunk", ts, el,
			obs.Arg{Key: "lo", Value: int64(lo)}, obs.Arg{Key: "hi", Value: int64(hi)})
	}
}

// Workers returns the team size.
func (p *Pool) Workers() int { return p.workers }

// Policy returns the configured schedule.
func (p *Pool) Policy() Policy { return p.policy }

// Close terminates the worker team. It is idempotent and safe to call
// from multiple goroutines concurrently. The pool is unusable
// afterwards: Run (and RunIndexed) on a closed pool panics.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		p.stopped.Store(true)
		close(p.stop)
	})
}

// Run executes body over [0, n) according to the pool's policy and
// blocks until all iterations complete (an implicit barrier, like the
// end of an OpenMP parallel-for). body receives the worker id and a
// half-open index range [lo, hi). Run panics if the pool has been
// closed.
//
// Deprecated: prefer RunContext (context.go), the uniform cancellable
// entry point across the repo's substrates. With context.Background()
// it compiles down to exactly this method — no watcher goroutine, no
// extra allocation — so migrating costs nothing on hot paths.
func (p *Pool) Run(n int, body func(worker, lo, hi int)) {
	p.run(n, body)
}

// run is the region execution core behind Run and RunContext.
func (p *Pool) run(n int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.stopped.Load() {
		panic("sched: Run on closed Pool")
	}
	p.body = body
	p.exec = body
	var regionStart time.Time
	if p.obsOn {
		regionStart = time.Now()
		for w := 0; w < p.workers; w++ {
			p.busy[w*busyStride] = 0
		}
		p.exec = p.instr
	}
	p.n = n
	p.cursor.Store(0)
	p.aborted.Store(false)
	p.stealOnce = sync.Once{}
	p.done.Add(p.workers)
	for i := 0; i < p.workers; i++ {
		p.work[i] <- struct{}{}
	}
	p.done.Wait()
	if p.panicVal != nil {
		// A body panicked in a worker: the region was aborted, every
		// worker has joined, and the panic now belongs to the caller.
		// The pool is closed first so it is left in a safe, terminal
		// state (later Runs fail fast instead of computing on a region
		// that half-finished).
		r := p.panicVal
		p.panicVal = nil
		p.body = nil
		p.exec = nil
		p.Close()
		panic(r)
	}
	if p.obsOn {
		wall := time.Since(regionStart)
		var busy int64
		for w := 0; w < p.workers; w++ {
			busy += p.busy[w*busyStride]
		}
		idle := int64(wall)*int64(p.workers) - busy
		if idle < 0 {
			idle = 0
		}
		p.cRegions.Inc()
		p.cBusyNS.Add(busy)
		p.cIdleNS.Add(idle)
	}
	p.body = nil
	p.exec = nil
}

// RunIndexed executes body over an arbitrary id worklist under the
// pool's policy: positions [0, len(ids)) are partitioned exactly as
// Run partitions them, and body receives the worker id plus the
// ids[lo:hi] sub-slice of each chunk. This is how compacted worklists
// (e.g. the lazy engines' active-tile frontier) are scheduled under
// static, cyclic, dynamic, guided, and stealing without copying ids
// per chunk: beyond what Run itself does, RunIndexed allocates
// nothing. Like Run, it panics on a closed pool.
//
// Deprecated: prefer RunIndexedContext (context.go); with
// context.Background() it is exactly this method.
func (p *Pool) RunIndexed(ids []int32, body func(worker int, ids []int32)) {
	p.runIndexed(ids, body)
}

// runIndexed is the worklist core behind RunIndexed and
// RunIndexedContext.
func (p *Pool) runIndexed(ids []int32, body func(worker int, ids []int32)) {
	if len(ids) == 0 {
		return
	}
	p.ids = ids
	p.idxBody = body
	p.run(len(ids), p.idxExec)
	p.ids = nil
	p.idxBody = nil
}

func (p *Pool) worker(id int) {
	for {
		select {
		case <-p.stop:
			return
		case <-p.work[id]:
			p.runRegionGuarded(id)
			p.done.Done()
		}
	}
}

// runRegionGuarded runs one region with panic containment: a body
// panic is captured (first one wins), the region is aborted so the
// other workers drain quickly, and the worker goroutine survives to
// let Run's barrier complete — Run then re-raises the panic in the
// caller. Without this a panicking body would kill the worker before
// done.Done(), leaving Run blocked forever.
func (p *Pool) runRegionGuarded(id int) {
	defer func() {
		if r := recover(); r != nil {
			p.panicMu.Lock()
			if p.panicVal == nil {
				p.panicVal = r
			}
			p.panicMu.Unlock()
			p.abort()
		}
	}()
	p.runRegion(id)
}

// abortCursor is the sentinel abort() pushes into the claim counter:
// far past any region length, so Dynamic's "lo >= n" and Guided's
// "remaining <= 0" exits trip on the very next claim. A sentinel —
// not int64(p.n) — because abort runs on RunContext's watcher
// goroutine, where reading the plain p.n field would race with the
// next Run's prologue write.
const abortCursor = int64(1) << 62

// abort stops the in-flight region: policy loops check the flag per
// chunk, and pushing cursor past any possible n unblocks the
// Dynamic/Guided counter claims immediately. In-flight chunks are
// never interrupted — Run's completion barrier still waits for every
// worker to finish its current body call, so when RunContext returns
// no body is executing and a checkpoint taken right after
// cancellation cannot observe a half-written row.
func (p *Pool) abort() {
	p.aborted.Store(true)
	p.cursor.Store(abortCursor)
}

func (p *Pool) runRegion(id int) {
	switch p.policy {
	case Static:
		per := (p.n + p.workers - 1) / p.workers
		lo := id * per
		hi := lo + per
		if lo >= p.n || p.aborted.Load() {
			return
		}
		if hi > p.n {
			hi = p.n
		}
		p.exec(id, lo, hi)
	case Cyclic:
		stridePer := p.chunk * p.workers
		for base := id * p.chunk; base < p.n && !p.aborted.Load(); base += stridePer {
			hi := base + p.chunk
			if hi > p.n {
				hi = p.n
			}
			p.exec(id, base, hi)
		}
	case Dynamic:
		for !p.aborted.Load() {
			lo := int(p.cursor.Add(int64(p.chunk))) - p.chunk
			if lo >= p.n {
				return
			}
			hi := lo + p.chunk
			if hi > p.n {
				hi = p.n
			}
			p.exec(id, lo, hi)
		}
	case Stealing:
		p.runStealing(id)
	case Guided:
		for !p.aborted.Load() {
			// Estimate remaining work, then claim remaining/(2P)
			// (floored at chunk) with a CAS-free reservation: claim a
			// size first, then check the claimed range.
			for {
				cur := p.cursor.Load()
				remaining := int64(p.n) - cur
				if remaining <= 0 {
					return
				}
				size := remaining / int64(2*p.workers)
				if size < int64(p.chunk) {
					size = int64(p.chunk)
				}
				if p.cursor.CompareAndSwap(cur, cur+size) {
					lo := int(cur)
					hi := int(cur + size)
					if hi > p.n {
						hi = p.n
					}
					p.exec(id, lo, hi)
					break
				}
			}
		}
	default:
		panic(fmt.Sprintf("sched: unknown policy %v", p.policy))
	}
}

// ForEach is a convenience one-shot parallel-for: it builds a
// temporary pool, runs body, and tears the pool down. Engines that
// loop should hold a Pool instead.
//
// Deprecated: build a Pool with New and use RunContext; the one-shot
// convenience hides the pool lifetime and cannot be cancelled.
func ForEach(n int, o Options, body func(worker, lo, hi int)) {
	p := NewPool(o)
	defer p.Close()
	p.run(n, body)
}
