package sched

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunContextDrainsInFlightChunks is the checkpoint-safety
// contract: once RunContext returns — cancelled or not — no body may
// still be executing, so state snapshotted right after cancellation
// can never catch a half-written row. Run under -race this also
// guards abort()'s cursor sentinel: the watcher goroutine fires
// concurrently with Run's prologue, where reading p.n would race.
func TestRunContextDrainsInFlightChunks(t *testing.T) {
	for _, policy := range []Policy{Static, Cyclic, Dynamic, Guided, Stealing} {
		t.Run(policy.String(), func(t *testing.T) {
			p := New(WithWorkers(4), WithPolicy(policy), WithChunkSize(3))
			defer p.Close()

			rng := rand.New(rand.NewSource(1))
			var inFlight atomic.Int32
			for iter := 0; iter < 60; iter++ {
				ctx, cancel := context.WithCancel(context.Background())
				// Cancel from another goroutine at a random point —
				// sometimes before the region starts, sometimes mid-
				// iteration — to exercise the watcher/prologue window.
				delay := time.Duration(rng.Intn(120)) * time.Microsecond
				go func() {
					time.Sleep(delay)
					cancel()
				}()
				err := p.RunContext(ctx, 256, func(worker, lo, hi int) {
					inFlight.Add(1)
					time.Sleep(20 * time.Microsecond)
					inFlight.Add(-1)
				})
				if n := inFlight.Load(); n != 0 {
					t.Fatalf("iter %d: %d bodies still running after RunContext returned", iter, n)
				}
				if err != nil && err != context.Canceled {
					t.Fatalf("iter %d: err = %v", iter, err)
				}
				cancel()
			}
		})
	}
}

// TestRunContextCancelMidIteration pins the "cancel definitely lands
// while chunks are executing" case: the body itself cancels partway
// through, and the region must stop early yet leave every started
// chunk fully applied (begin/end markers both written).
func TestRunContextCancelMidIteration(t *testing.T) {
	for _, policy := range []Policy{Dynamic, Guided, Stealing} {
		t.Run(policy.String(), func(t *testing.T) {
			p := New(WithWorkers(4), WithPolicy(policy), WithChunkSize(1))
			defer p.Close()

			const n = 400
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var began, ended [n]atomic.Bool
			err := p.RunContext(ctx, n, func(worker, lo, hi int) {
				for i := lo; i < hi; i++ {
					began[i].Store(true)
					if i == 37 {
						cancel()
					}
					time.Sleep(5 * time.Microsecond)
					ended[i].Store(true)
				}
			})
			if err != context.Canceled {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			done := 0
			for i := 0; i < n; i++ {
				if began[i].Load() != ended[i].Load() {
					t.Fatalf("index %d: chunk began but did not finish before return", i)
				}
				if ended[i].Load() {
					done++
				}
			}
			if done == n {
				t.Fatal("cancellation did not stop the region early")
			}
		})
	}
}
