package sched

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestPoolObsCountersAndSpans(t *testing.T) {
	sink := obs.Sink{Metrics: obs.NewRegistry(), Tracer: obs.NewTracer(nil)}
	p := New(WithWorkers(4), WithPolicy(Static), WithObs(sink))
	defer p.Close()

	var ran atomic.Int64
	p.RunContext(context.Background(), 64, func(w, lo, hi int) { ran.Add(int64(hi - lo)) })
	if ran.Load() != 64 {
		t.Fatalf("body covered %d iterations, want 64", ran.Load())
	}

	s := sink.Metrics.Snapshot()
	if s.Counters["sched.regions"] != 1 {
		t.Fatalf("regions = %d, want 1", s.Counters["sched.regions"])
	}
	if s.Counters["sched.chunks"] != 4 { // static: one block per worker
		t.Fatalf("chunks = %d, want 4", s.Counters["sched.chunks"])
	}
	if s.Counters["sched.idle_ns"] < 0 || s.Counters["sched.busy_ns"] < 0 {
		t.Fatalf("negative time accounting: %+v", s.Counters)
	}

	// One chunk span per worker on the "sched" process track.
	spans := sink.Tracer.Spans()
	perWorker := map[int]int{}
	for _, sp := range spans {
		if sink.Tracer.ProcessName(sp.Track.PID) != "sched" {
			t.Fatalf("span on unexpected process %q", sink.Tracer.ProcessName(sp.Track.PID))
		}
		if sp.Name != "chunk" {
			t.Fatalf("span name = %q, want chunk", sp.Name)
		}
		perWorker[sp.Track.TID]++
	}
	if len(perWorker) != 4 {
		t.Fatalf("spans cover %d workers, want 4: %v", len(perWorker), perWorker)
	}
}

func TestStealingCountsSteals(t *testing.T) {
	// Skew the work so worker 1 drains its own deque and must steal:
	// round-robin dealing sends even chunks to worker 0's deque, and
	// those are the slow ones. Retry a few times since stealing is
	// timing-dependent.
	for attempt := 0; attempt < 5; attempt++ {
		reg := obs.NewRegistry()
		p := New(WithWorkers(2), WithPolicy(Stealing), WithChunkSize(1),
			WithObs(obs.Sink{Metrics: reg}))
		p.RunContext(context.Background(), 32, func(w, lo, hi int) {
			if lo%2 == 0 {
				time.Sleep(200 * time.Microsecond)
			}
		})
		p.Close()
		if reg.Counter("sched.steals").Value() > 0 {
			return
		}
	}
	t.Fatal("no steals recorded across 5 skewed runs")
}

// TestDisabledPoolZeroAlloc pins the perf contract: with no Sink
// attached, a region run must not allocate — the instrumentation is
// completely absent from the hot path.
func TestDisabledPoolZeroAlloc(t *testing.T) {
	p := New(WithWorkers(2), WithPolicy(Static))
	defer p.Close()
	body := func(w, lo, hi int) {}
	allocs := testing.AllocsPerRun(100, func() {
		p.RunContext(context.Background(), 128, body)
	})
	if allocs != 0 {
		t.Fatalf("disabled pool allocates %.1f per region, want 0", allocs)
	}
}
